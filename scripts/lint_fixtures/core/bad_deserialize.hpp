// Seeded violation for rule reader-deserialize-checks: a length-prefixed
// loop that never consults r.ok()/mark_failed — a corrupt count makes it
// allocate garbage from a truncated buffer (the PR 7 bug class).
#pragma once

#include <cstdint>
#include <vector>

#include "base/serialize.hpp"

namespace fixture {

struct BadDeserialize {
  std::vector<std::uint32_t> values;

  static BadDeserialize Deserialize(Reader& r) {
    BadDeserialize out;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n; ++i) {
      out.values.push_back(r.u32());
    }
    return out;
  }
};

}  // namespace fixture
