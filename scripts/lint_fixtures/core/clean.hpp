// Clean fixture: every rule passes. The self-test requires zero violations
// from this file.
#pragma once

#include <cstdint>
#include <vector>

#include "base/mutex.hpp"
#include "base/serialize.hpp"
#include "base/thread_annotations.hpp"

namespace fixture {

class CleanGuarded {
 public:
  void bump() {
    base::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  base::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

struct CleanDeserialize {
  std::vector<std::uint32_t> values;

  static CleanDeserialize Deserialize(Reader& r) {
    CleanDeserialize out;
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      out.values.push_back(r.u32());
    }
    return out;
  }
};

}  // namespace fixture
