// Seeded violation for rule guarded-by-coverage: a base::Mutex member with
// no GUARDED_BY/REQUIRES user anywhere in the file — the data it is meant
// to protect is silently unannotated.
#pragma once

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace fixture {

class BadUnguarded {
 public:
  void bump() {
    base::MutexLock lock(mutex_);
    ++count_;
  }

 private:
  base::Mutex mutex_;
  int count_ = 0;  // should be: int count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace fixture
