// Seeded violation for rule guarded-by-names-member: GUARDED_BY names a
// mutex that does not exist in this file (typo'd 'mu_' for 'mutex_'), so
// the annotation guards nothing. Also trips guarded-by-coverage, since the
// real mutex ends up with no users.
#pragma once

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace fixture {

class BadGuardTypo {
 private:
  base::Mutex mutex_;
  int count_ GUARDED_BY(mu_) = 0;  // typo: should be GUARDED_BY(mutex_)
};

}  // namespace fixture
