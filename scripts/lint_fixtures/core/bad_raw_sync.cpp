// Seeded violation for rule no-raw-std-sync: raw std primitives outside
// src/base/. The linter self-test requires this file to be flagged.
#include <mutex>

namespace fixture {

class BadRawSync {
 public:
  void touch() {
    std::lock_guard<std::mutex> lock(mutex_);
    ++count_;
  }

 private:
  std::mutex mutex_;
  int count_ = 0;
};

}  // namespace fixture
