// Seeded violation for rule no-blocking-in-sim: a sim-runtime TU blocking
// on wall-clock time. Virtual time must never wait on real time.
#include <chrono>
#include <thread>

namespace fixture {

void advance_badly() {
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
}

}  // namespace fixture
