// Seeded violation for rule fork-safety: a fork() outside the audited
// spawn helper (rt/spawn_child.cpp). This child inherits whatever
// descriptors happen to be open and runs non-fork-safe code before exec —
// exactly the bug class the rule exists to keep out.
#include <unistd.h>

namespace fixture {

int spawn_badly() {
  const int pid = fork();
  if (pid == 0) {
    ::execl("/bin/true", "true", nullptr);
    _exit(127);
  }
  return pid;
}

// Identifiers that merely *end in* fork must not trip the rule.
inline void my_fork() {}
inline void fine() { my_fork(); }

}  // namespace fixture
