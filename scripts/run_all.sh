#!/usr/bin/env bash
# Build, test, run every experiment, and run every example — the full
# reproduction pipeline. Outputs land in test_output.txt / bench_output.txt.
set -euo pipefail
cd "$(dirname "$0")/.."

cmake -B build -G Ninja
cmake --build build

ctest --test-dir build 2>&1 | tee test_output.txt

for b in build/bench/*; do
  [ -f "$b" ] && [ -x "$b" ] && "$b"
done 2>&1 | tee bench_output.txt

for e in quickstart wide_area_farm shared_files trust_market \
         replicated_service; do
  echo "=== examples/$e"
  "build/examples/$e"
done
build/examples/legion_shell --demo
