#!/usr/bin/env python3
"""Bench-shape regression gate.

Runs the deterministic simulator benches (virtual time, seeded RNG — their
output is byte-stable run to run) and diffs every table cell against the
checked-in baseline in bench/baselines.json. A change in any shape-defining
counter (consults per 1k, hit rates, repair totals, per-layer costs, ...)
fails the check: shape inversions — the curve bending the wrong way — cannot
land silently.

Wall-clock benches (E10 bench_micro, E11 bench_thread_runtime,
bench_tcp_throughput) are excluded: their numbers are machine-dependent and
belong to EXPERIMENTS.md, not a CI gate. E17 bench_trace_overhead is gated on
its deterministic hops_recorded cells (the wall-clock columns mask as
unstable) and on its printed "verdict: PASS" budget line.

Usage:
  scripts/check_bench_shapes.py [--build-dir build]          # check
  scripts/check_bench_shapes.py [--build-dir build] --update # re-baseline
  scripts/check_bench_shapes.py --validate-trace trace.json  # exporter check

--update runs every bench twice and records only cells identical across both
runs; a cell that differs (a bench grew a wall-clock column) is stored as
null and skipped by future checks, so the gate never flakes on timing.

--validate-trace checks an exported Chrome trace-event file: well-formed
JSON, a traceEvents list whose events carry the required fields, and
timestamps that are monotone non-decreasing in file order (the exporter
sorts them; a regression there breaks chrome://tracing imports).
"""

import argparse
import json
import os
import subprocess
import sys

# The deterministic sim benches, by experiment number (see EXPERIMENTS.md).
SIM_BENCHES = [
    ("E1", "bench_binding_cache"),
    ("E2", "bench_ba_scaling"),
    ("E3", "bench_combining_tree"),
    ("E4", "bench_class_cloning"),
    ("E5", "bench_distributed_principle"),
    ("E6", "bench_binding_path"),
    ("E7", "bench_lifecycle"),
    ("E8", "bench_replication"),
    ("E9", "bench_stale_bindings"),
    ("E12", "bench_placement"),
    ("E13", "bench_binding_ttl"),
    ("E14", "bench_split"),
    ("E15", "bench_recovery"),
    # E16's table mixes deterministic density cells (bytes/object, allocation
    # counts) with wall-clock lookup columns; the two-run masking in --update
    # stores the timing cells as null so only the density shape is gated.
    ("E16", "bench_memory_per_object"),
    # E17's wall-clock columns mask as unstable; the deterministic
    # hops_recorded ablation cells (off / 1-in-1 / 1-in-64) are the gate.
    ("E17", "bench_trace_overhead"),
    # E18's population/thread-count columns are deterministic (the runtime
    # either adds threads per endpoint or it doesn't); create_us masks as
    # unstable. The 100x resident-object ratio is the printed verdict line.
    ("E18", "bench_epoll_scaling"),
    # E19 spawns real worker processes: spawn latency and calls/s are
    # wall-clock (masked), but the sibling-availability table is exact
    # counts and the verdict line asserts 100% availability across kill -9
    # rounds — the isolation gate the process-isolation CI lane rides on.
    ("E19", "bench_process_isolation"),
]

# Benches whose stdout carries a self-judged budget line; a "verdict: FAIL"
# fails the check even when every gated table cell matches.
VERDICT_BENCHES = {"bench_trace_overhead", "bench_epoll_scaling",
                   "bench_process_isolation"}


def parse_tables(text):
    """Parse sim::Table output: '== title ==', a ' | ' header, a '-+-' rule,
    then rows until the first blank line. Returns a list of
    {title, columns, rows} dicts in order of appearance."""
    tables = []
    lines = text.splitlines()
    i = 0
    while i < len(lines):
        line = lines[i].strip()
        if line.startswith("==") and line.endswith("=="):
            title = line.strip("=").strip()
            if i + 2 >= len(lines) or "-+-" not in lines[i + 2]:
                i += 1
                continue
            columns = [c.strip() for c in lines[i + 1].split("|")]
            rows = []
            i += 3
            while i < len(lines) and lines[i].strip():
                rows.append([c.strip() for c in lines[i].split("|")])
                i += 1
            tables.append({"title": title, "columns": columns, "rows": rows})
        else:
            i += 1
    return tables


def run_bench(build_dir, name):
    path = os.path.join(build_dir, "bench", name)
    if not os.path.exists(path):
        sys.exit(f"FATAL: {path} not found — build the benches first "
                 f"(cmake --build {build_dir})")
    proc = subprocess.run([path], capture_output=True, text=True, timeout=300)
    if proc.returncode != 0:
        sys.exit(f"FATAL: {name} exited {proc.returncode}:\n{proc.stderr}")
    if name in VERDICT_BENCHES:
        verdicts = [ln for ln in proc.stdout.splitlines()
                    if ln.startswith("verdict:")]
        if not verdicts:
            sys.exit(f"FATAL: {name} printed no verdict line")
        for ln in verdicts:
            if "PASS" not in ln:
                sys.exit(f"FATAL: {name} budget exceeded — {ln}")
    return parse_tables(proc.stdout)


def mask_unstable(first, second):
    """Keep a cell only if both runs agree; unstable cells become null."""
    masked = []
    for ta, tb in zip(first, second):
        rows = []
        for ra, rb in zip(ta["rows"], tb["rows"]):
            rows.append([a if a == b else None for a, b in zip(ra, rb)])
        masked.append(
            {"title": ta["title"], "columns": ta["columns"], "rows": rows})
    return masked


def update(build_dir, baseline_path):
    baselines = {}
    for exp, name in SIM_BENCHES:
        first = run_bench(build_dir, name)
        second = run_bench(build_dir, name)
        if [t["title"] for t in first] != [t["title"] for t in second]:
            sys.exit(f"FATAL: {name} emitted different tables across runs")
        tables = mask_unstable(first, second)
        unstable = sum(
            cell is None for t in tables for row in t["rows"] for cell in row)
        total = sum(len(row) for t in tables for row in t["rows"])
        baselines[name] = {"experiment": exp, "tables": tables}
        print(f"  {exp:>4} {name}: {len(tables)} table(s), "
              f"{total - unstable}/{total} stable cells")
    with open(baseline_path, "w") as f:
        json.dump({"comment": "Generated by scripts/check_bench_shapes.py "
                              "--update. Cells stored as null were unstable "
                              "across back-to-back runs and are not checked.",
                   "benches": baselines}, f, indent=1)
        f.write("\n")
    print(f"wrote {baseline_path}")


def check(build_dir, baseline_path):
    try:
        with open(baseline_path) as f:
            baselines = json.load(f)["benches"]
    except (OSError, KeyError, json.JSONDecodeError) as err:
        sys.exit(f"FATAL: cannot read {baseline_path} ({err}); "
                 f"run with --update to (re)generate it")
    failures = []
    checked = 0
    for exp, name in SIM_BENCHES:
        if name not in baselines:
            failures.append(f"{name}: no baseline entry — run --update")
            continue
        want_tables = baselines[name]["tables"]
        got_tables = run_bench(build_dir, name)
        if [t["title"] for t in got_tables] != \
           [t["title"] for t in want_tables]:
            failures.append(
                f"{name}: table set changed "
                f"(baseline {[t['title'] for t in want_tables]}, "
                f"current {[t['title'] for t in got_tables]})")
            continue
        for want, got in zip(want_tables, got_tables):
            where = f"{name} [{exp}] table '{want['title']}'"
            if want["columns"] != got["columns"]:
                failures.append(f"{where}: columns changed "
                                f"({want['columns']} -> {got['columns']})")
                continue
            if len(want["rows"]) != len(got["rows"]):
                failures.append(f"{where}: row count changed "
                                f"({len(want['rows'])} -> "
                                f"{len(got['rows'])})")
                continue
            for r, (wrow, grow) in enumerate(zip(want["rows"], got["rows"])):
                for c, (wcell, gcell) in enumerate(zip(wrow, grow)):
                    if wcell is None:
                        continue  # unstable at baseline time: not a gate
                    checked += 1
                    if wcell != gcell:
                        col = want["columns"][c] if c < len(
                            want["columns"]) else f"col{c}"
                        failures.append(
                            f"{where} row {r} ({wrow[0]}) col '{col}': "
                            f"baseline '{wcell}' != current '{gcell}'")
    if failures:
        print(f"bench-shapes: {len(failures)} mismatch(es) against "
              f"{baseline_path}:", file=sys.stderr)
        for f_ in failures:
            print(f"  FAIL {f_}", file=sys.stderr)
        print("\nIf the new shape is intended (an algorithmic change moved "
              "the curves), regenerate with:\n  scripts/check_bench_shapes.py"
              " --update\nand commit bench/baselines.json alongside the "
              "change.", file=sys.stderr)
        return 1
    print(f"bench-shapes: OK — {checked} stable cells across "
          f"{len(SIM_BENCHES)} benches match {baseline_path}")
    return 0


def validate_trace(path):
    """Checks an exported Chrome trace-event JSON file: parses, has a
    traceEvents list, required per-event fields, and monotone timestamps."""
    try:
        with open(path) as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as err:
        print(f"trace-validate: {path} is not well-formed JSON ({err})",
              file=sys.stderr)
        return 1
    events = doc.get("traceEvents")
    if not isinstance(events, list) or not events:
        print(f"trace-validate: {path} has no traceEvents list",
              file=sys.stderr)
        return 1
    errors = []
    last_ts = None
    spans = 0
    for i, ev in enumerate(events):
        for field in ("ph", "pid", "tid", "ts"):
            if field not in ev:
                errors.append(f"event {i} missing '{field}': {ev}")
                break
        else:
            ph = ev["ph"]
            if ph == "M":
                continue  # metadata rows carry no duration and pin ts 0
            if not isinstance(ev["ts"], (int, float)) or ev["ts"] < 0:
                errors.append(f"event {i} has bad ts {ev['ts']!r}")
                continue
            if last_ts is not None and ev["ts"] < last_ts:
                errors.append(f"event {i} ts {ev['ts']} < predecessor "
                              f"{last_ts} (events must be sorted)")
            last_ts = ev["ts"]
            if ph == "X":
                spans += 1
                if ev.get("dur", -1) < 0:
                    errors.append(f"event {i} 'X' span has bad dur "
                                  f"{ev.get('dur')!r}")
    if errors:
        print(f"trace-validate: {len(errors)} problem(s) in {path}:",
              file=sys.stderr)
        for e in errors[:20]:
            print(f"  FAIL {e}", file=sys.stderr)
        return 1
    print(f"trace-validate: OK — {path}: {len(events)} events "
          f"({spans} complete spans), timestamps monotone")
    return 0


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--baselines", default="bench/baselines.json")
    ap.add_argument("--update", action="store_true",
                    help="regenerate the baseline from the current build")
    ap.add_argument("--validate-trace", metavar="FILE",
                    help="validate an exported Chrome trace instead of "
                         "running the bench gate")
    args = ap.parse_args()
    if args.validate_trace:
        return validate_trace(args.validate_trace)
    if args.update:
        update(args.build_dir, args.baselines)
        return 0
    return check(args.build_dir, args.baselines)


if __name__ == "__main__":
    sys.exit(main())
