#!/usr/bin/env python3
"""Project-invariant linter: mechanical concurrency/serialization rules.

Rules (each can be waived on a specific line with `// NOLINT(<rule>)`):

  no-raw-std-sync          Outside src/base/, code must use base::Mutex /
                           base::MutexLock / base::CondVar — never raw
                           std::mutex, std::lock_guard, std::unique_lock,
                           std::shared_mutex, std::condition_variable, ...
                           (the Clang thread-safety annotations only see the
                           annotated wrappers).
  guarded-by-coverage      Every base::Mutex / base::SharedMutex declared
                           outside src/base/ must have at least one
                           GUARDED_BY / PT_GUARDED_BY / REQUIRES /
                           REQUIRES_SHARED / ACQUIRE user naming it in the
                           same file. A mutex guarding nothing is either
                           dead or its data is silently unguarded.
  reader-deserialize-checks  A `Deserialize(Reader&)` body containing a loop
                           must consult the reader's failure state
                           (`.ok()` or `mark_failed`): length-prefixed loops
                           over a truncated/corrupt buffer otherwise spin or
                           allocate unbounded garbage (the PR 7 bug class).
  no-blocking-in-sim       Simulated-runtime TUs (path contains
                           `sim_runtime` or a `/sim/` component) must not
                           call wall-clock blocking primitives (sleep_for,
                           usleep, select, poll, epoll_wait, socket I/O):
                           virtual time must never block on real time.
  guarded-by-names-member  The argument of every GUARDED_BY /
                           PT_GUARDED_BY must name a base::Mutex /
                           base::SharedMutex declared in the same file —
                           catches annotations that typo the mutex name and
                           therefore guard nothing.
  fork-safety              fork()/vfork() may appear only in
                           rt/spawn_child.cpp, the one audited fork+exec
                           helper (CLOEXEC discipline, ready-pipe dup2,
                           async-signal-safe child path, _exit on failure).
                           A fork anywhere else skips that audit and can
                           leak descriptors or run non-fork-safe code
                           (malloc, locks) in the child.

Usage:
  lint_invariants.py [--root DIR] [--src SUBDIR] [--compile-commands PATH]
  lint_invariants.py --self-test

Exit status: 0 = no violations, 1 = violations found, 2 = usage error.
"""

from __future__ import annotations

import argparse
import json
import re
import sys
from pathlib import Path

RULES = (
    "no-raw-std-sync",
    "guarded-by-coverage",
    "reader-deserialize-checks",
    "no-blocking-in-sim",
    "guarded-by-names-member",
    "fork-safety",
)

CPP_SUFFIXES = {".hpp", ".cpp", ".h", ".cc", ".cxx"}

RAW_SYNC_RE = re.compile(
    r"\bstd::(mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"lock_guard|unique_lock|shared_lock|scoped_lock|"
    r"condition_variable(?:_any)?)\b"
)

MUTEX_DECL_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?:legion::)?base::(?:Shared)?Mutex\s+"
    r"([A-Za-z_]\w*)\s*[;{=]"
)

GUARD_USE_TEMPLATES = (
    "GUARDED_BY({m})",
    "PT_GUARDED_BY({m})",
    "REQUIRES({m})",
    "REQUIRES_SHARED({m})",
    "ACQUIRE({m})",
    "RELEASE({m})",
    "EXCLUDES({m})",
)

GUARDED_BY_ARG_RE = re.compile(r"\b(?:PT_)?GUARDED_BY\(\s*([A-Za-z_]\w*)\s*\)")

BLOCKING_RE = re.compile(
    r"(?:\bstd::this_thread::sleep_(?:for|until)\b"
    r"|(?<![\w.>])::?(?:usleep|nanosleep|select|poll|epoll_wait|"
    r"accept|connect|recv|recvmsg|send|sendmsg)\s*\()"
)

# Bare or ::-qualified fork/vfork calls. The lookbehind rejects members and
# identifiers that merely end in "fork" (obj.fork(), my_fork()); requiring
# the nullary call form `fork()` skips unrelated functions *named* fork that
# take arguments (base::Rng::fork(salt)).
FORK_RE = re.compile(r"(?<![\w.>:])(?:::)?v?fork\s*\(\s*\)")

# The one file allowed to fork: the audited spawn helper.
FORK_ALLOWED_NAME = "spawn_child.cpp"


def fork_is_declaration(code: str, start: int) -> bool:
    """True when the fork() at `start` is a declaration (`pid_t fork()`),
    recognized by a type-ish identifier directly before it; expression
    keywords (`return fork()`) still count as calls."""
    m = re.search(r"([A-Za-z_]\w*)\s*$", code[:start])
    return m is not None and m.group(1) not in {"return", "co_return", "case",
                                                "do", "else"}

LOOP_RE = re.compile(r"\b(?:for|while)\s*\(")
DESERIALIZE_SIG_RE = re.compile(r"\bDeserialize\s*\(\s*(?:\w+::)*Reader\s*&")


class Violation:
    def __init__(self, path: Path, line: int, rule: str, message: str):
        self.path = path
        self.line = line
        self.rule = rule
        self.message = message

    def __str__(self) -> str:
        return f"{self.path}:{self.line}: [{self.rule}] {self.message}"


def strip_comments(text: str) -> str:
    """Blank out comments and string literals, preserving line structure."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append(re.sub(r"[^\n]", " ", text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n and text[j] != quote:
                j += 2 if text[j] == "\\" else 1
            j = min(j + 1, n)
            out.append(quote + " " * (j - i - 2) + (quote if j - i >= 2 else ""))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def nolint_lines(text: str, rule: str) -> set[int]:
    waived = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        m = re.search(r"//\s*NOLINT\(([^)]*)\)", line)
        if m and rule in {r.strip() for r in m.group(1).split(",")}:
            waived.add(lineno)
    return waived


def line_of(offset: int, text: str) -> int:
    return text.count("\n", 0, offset) + 1


def in_base(path: Path) -> bool:
    return "base" in path.parts


def is_sim_tu(path: Path) -> bool:
    return "sim_runtime" in path.name or "sim" in path.parts


def extract_braced_body(code: str, open_brace: int) -> str | None:
    depth = 0
    for i in range(open_brace, len(code)):
        if code[i] == "{":
            depth += 1
        elif code[i] == "}":
            depth -= 1
            if depth == 0:
                return code[open_brace : i + 1]
    return None


def check_file(path: Path, rel: Path, text: str) -> list[Violation]:
    out: list[Violation] = []
    code = strip_comments(text)
    code_lines = code.splitlines()

    def add(rule: str, lineno: int, message: str) -> None:
        if lineno not in nolint_lines(text, rule):
            out.append(Violation(rel, lineno, rule, message))

    # no-raw-std-sync
    if not in_base(rel):
        for m in RAW_SYNC_RE.finditer(code):
            add(
                "no-raw-std-sync",
                line_of(m.start(), code),
                f"raw std::{m.group(1)}; use the annotated base:: wrappers "
                "(base/mutex.hpp)",
            )

    # guarded-by-coverage + guarded-by-names-member
    declared: dict[str, int] = {}
    for lineno, line in enumerate(code_lines, 1):
        m = MUTEX_DECL_RE.match(line)
        if m:
            declared[m.group(1)] = lineno
    if not in_base(rel):
        for name, lineno in declared.items():
            uses = any(t.format(m=name) in code for t in GUARD_USE_TEMPLATES)
            if not uses:
                add(
                    "guarded-by-coverage",
                    lineno,
                    f"mutex '{name}' has no GUARDED_BY/REQUIRES user in this "
                    "file; annotate what it guards",
                )
    for m in GUARDED_BY_ARG_RE.finditer(code):
        lineno = line_of(m.start(), code)
        arg = m.group(1)
        stripped = code_lines[lineno - 1].lstrip()
        if stripped.startswith("#"):
            continue  # macro definitions (thread_annotations.hpp)
        if arg not in declared:
            add(
                "guarded-by-names-member",
                lineno,
                f"GUARDED_BY({arg}) names no base::Mutex/SharedMutex "
                "declared in this file (typo?)",
            )

    # reader-deserialize-checks
    for m in DESERIALIZE_SIG_RE.finditer(code):
        close = code.find(")", m.end())
        if close < 0:
            continue
        brace = None
        for i in range(close + 1, min(close + 120, len(code))):
            if code[i] == "{":
                brace = i
                break
            if code[i] == ";":
                break  # declaration only
        if brace is None:
            continue
        body = extract_braced_body(code, brace)
        if body is None:
            continue
        if LOOP_RE.search(body) and ".ok()" not in body and "mark_failed" not in body:
            add(
                "reader-deserialize-checks",
                line_of(m.start(), code),
                "Deserialize(Reader&) loops without checking r.ok() / "
                "mark_failed: corrupt length prefixes run unchecked",
            )

    # fork-safety
    if rel.name != FORK_ALLOWED_NAME:
        for m in FORK_RE.finditer(code):
            if fork_is_declaration(code, m.start()):
                continue
            add(
                "fork-safety",
                line_of(m.start(), code),
                f"'{m.group(0).strip()}' outside rt/{FORK_ALLOWED_NAME}; "
                "all process creation must go through the audited spawn "
                "helper (CLOEXEC + ready-pipe + async-signal-safe child)",
            )

    # no-blocking-in-sim
    if is_sim_tu(rel):
        for m in BLOCKING_RE.finditer(code):
            add(
                "no-blocking-in-sim",
                line_of(m.start(), code),
                f"blocking call '{m.group(0).strip()}' in a sim-runtime TU; "
                "virtual time must not block on real time",
            )

    return out


def collect_files(src_root: Path, compile_commands: Path | None) -> list[Path]:
    files: set[Path] = set()
    if compile_commands is not None:
        for entry in json.loads(compile_commands.read_text()):
            p = Path(entry["file"])
            if not p.is_absolute():
                p = Path(entry["directory"]) / p
            p = p.resolve()
            if src_root.resolve() in p.parents and p.suffix in CPP_SUFFIXES:
                files.add(p)
        # Headers never appear in compile_commands; always sweep them.
        for p in src_root.rglob("*"):
            if p.suffix in {".hpp", ".h"}:
                files.add(p.resolve())
    else:
        for p in src_root.rglob("*"):
            if p.suffix in CPP_SUFFIXES:
                files.add(p.resolve())
    return sorted(files)


def run_lint(root: Path, src: str, compile_commands: Path | None) -> list[Violation]:
    src_root = root / src
    if not src_root.is_dir():
        print(f"error: source root {src_root} not found", file=sys.stderr)
        sys.exit(2)
    violations: list[Violation] = []
    for path in collect_files(src_root, compile_commands):
        rel = path.relative_to(root.resolve())
        try:
            text = path.read_text(encoding="utf-8", errors="replace")
        except OSError as e:
            print(f"warning: cannot read {path}: {e}", file=sys.stderr)
            continue
        violations.extend(check_file(path, rel, text))
    return violations


def self_test(root: Path) -> int:
    """Each rule must flag its seeded fixture and pass the clean fixture."""
    fixtures = Path(__file__).resolve().parent / "lint_fixtures"
    expected = {
        "no-raw-std-sync": "core/bad_raw_sync.cpp",
        "guarded-by-coverage": "core/bad_unguarded_mutex.hpp",
        "reader-deserialize-checks": "core/bad_deserialize.hpp",
        "no-blocking-in-sim": "rt/sim_runtime_bad.cpp",
        "guarded-by-names-member": "core/bad_guard_typo.hpp",
        "fork-safety": "rt/bad_fork.cpp",
    }
    violations = run_lint(fixtures.parent, "lint_fixtures", None)
    by_key = {(str(v.path), v.rule) for v in violations}
    failures = 0
    for rule, rel in expected.items():
        key = (str(Path("lint_fixtures") / rel), rule)
        if key in by_key:
            print(f"self-test PASS: {rule} flags {rel}")
        else:
            print(f"self-test FAIL: {rule} did NOT flag {rel}")
            failures += 1
    clean = [v for v in violations if "clean" in str(v.path)]
    if clean:
        print("self-test FAIL: clean fixture flagged:")
        for v in clean:
            print(f"  {v}")
        failures += 1
    else:
        print("self-test PASS: clean fixture produces no violations")
    # The seeded fixtures must drive a non-zero exit, end to end.
    if violations:
        print("self-test PASS: seeded fixtures exit non-zero")
    else:
        print("self-test FAIL: seeded fixtures produced no violations at all")
        failures += 1
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", type=Path, default=Path(__file__).resolve().parent.parent)
    parser.add_argument("--src", default="src", help="source subdir under --root")
    parser.add_argument("--compile-commands", type=Path, default=None,
                        help="restrict .cpp sweep to TUs in this compile_commands.json")
    parser.add_argument("--self-test", action="store_true",
                        help="run the seeded-violation fixture suite")
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.root)

    violations = run_lint(args.root, args.src, args.compile_commands)
    for v in violations:
        print(v)
    if violations:
        print(f"{len(violations)} invariant violation(s)", file=sys.stderr)
        return 1
    print("lint_invariants: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
