// E3 — Section 5.2.2: "by constructing a k-ary tree of Binding Agents,
// eliminating traffic from 'leaf' Binding Agents to LegionClass, we can
// arbitrarily reduce the load placed on LegionClass. In essence, Binding
// Agents could be organized to implement a software combining tree."
//
// Fixed workload (every jurisdiction's cold clients resolve instances of
// every class); sweep the agent-tree fan-out. Report messages received by
// the single logical LegionClass object.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kJurisdictions = 16;
constexpr std::size_t kHostsPer = 2;
constexpr std::size_t kClasses = 24;

struct Outcome {
  std::uint64_t legion_class_received = 0;
  std::uint64_t max_ba_received = 0;
};

Outcome RunOnce(std::size_t fanout) {
  core::SystemConfig config;
  config.binding_agents_per_jurisdiction = 1;
  config.ba_tree_fanout = fanout;
  Deployment d = MakeDeployment(kJurisdictions, kHostsPer, config, 31);

  auto setup = d.system->make_client(d.host(0, 0), "setup");
  std::vector<Loid> objects;
  for (std::size_t c = 0; c < kClasses; ++c) {
    const Loid cls = DeriveWorkerClass(*setup, "W" + std::to_string(c),
                                       {d.system->magistrate_of(
                                           d.jurisdictions[c % kJurisdictions])});
    objects.push_back(CreateWorker(*setup, cls));
  }

  const EndpointId legion_class_endpoint =
      d.system->shell_of(core::LegionClassLoid())->endpoint();
  d.runtime->reset_stats();

  // A cold client in every jurisdiction touches every object once: each
  // jurisdiction's agent must bind all the classes from scratch.
  for (std::size_t j = 0; j < kJurisdictions; ++j) {
    core::Client client(*d.runtime, d.host(j, 0), "measured",
                        d.system->handles_for(d.host(j, 0)), /*cache=*/64,
                        Rng(j + 1));
    for (const Loid& object : objects) MustCall(client, object, "Noop");
  }

  Outcome out;
  out.legion_class_received =
      d.runtime->endpoint_stats(legion_class_endpoint).received;
  out.max_ba_received = d.runtime->max_received_with_label("binding-agent");
  return out;
}

void Run() {
  sim::Table table(
      "E3 k-ary Binding-Agent tree shields LegionClass (Sec 5.2.2)",
      {"tree", "fanout", "msgs_at_LegionClass", "max_msgs_at_one_agent"});
  for (const std::size_t fanout :
       {std::size_t{0}, std::size_t{2}, std::size_t{4}, std::size_t{8}}) {
    const Outcome out = RunOnce(fanout);
    table.row({fanout == 0 ? "flat (all agents are roots)" : "k-ary tree",
               sim::Table::num(static_cast<std::uint64_t>(fanout)),
               sim::Table::num(out.legion_class_received),
               sim::Table::num(out.max_ba_received)});
  }
  table.print();
  std::printf("\nexpected shape: LegionClass traffic drops from "
              "~agents x classes (flat)\nto ~classes (any tree): only the "
              "root consults LegionClass, leaves combine\nin their "
              "ancestors' caches. Deeper trees trade root-agent load for "
              "hops.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
