// E19 — the price and the payoff of address-space isolation: what a real
// per-object OS process costs (spawn latency, parent<->child call
// throughput over Unix-domain sockets vs the in-process epoll runtime), and
// what it buys (a kill -9 on one object leaves the host and every sibling
// answering — 100% sibling availability across repeated crash rounds, which
// no in-process runtime can promise).
//
// The availability table is fully deterministic (counts and percentages);
// the latency/throughput columns are wall-clock and mask as unstable in the
// baseline. The verdict line is the gate: it asserts every crash round kept
// every surviving sibling reachable and the parent alive.
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "core/comm.hpp"
#include "core/state_sections.hpp"
#include "persist/opr.hpp"
#include "rt/epoll_runtime.hpp"
#include "rt/messenger.hpp"
#include "rt/process_runtime.hpp"
#include "sim/sample_objects.hpp"
#include "sim/table.hpp"

namespace legion::bench {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t ElapsedUs(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                               t0)
      .count();
}

rt::SpawnSpec WorkerSpec(HostId host, const std::string& label,
                         std::uint64_t loid_suffix) {
  persist::Opr opr;
  opr.loid = Loid{19, loid_suffix};
  opr.implementation = std::string(sim::WorkerImpl::kName);
  opr.state = core::WrapPrimaryState(sim::WorkerInit(0, 0));
  opr.executable = LEGION_OBJECTD_PATH;

  rt::SpawnSpec spec;
  spec.executable = opr.executable;
  spec.host = host;
  spec.label = label;
  spec.opr_bytes = opr.to_bytes();
  Writer hw(spec.handles_bytes);
  core::SystemHandles{}.Serialize(hw);
  return spec;
}

bool AwaitDead(rt::ProcessControl& pc, EndpointId endpoint) {
  const auto deadline = Clock::now() + std::chrono::seconds(5);
  while (Clock::now() < deadline) {
    if (!pc.child_alive(endpoint)) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return false;
}

// One Noop round trip; true if the worker answered within the timeout.
bool Answers(rt::Messenger& client, EndpointId worker) {
  return client
      .call(worker, "Noop", Buffer{}, rt::EnvTriple::System(), 5'000'000)
      .ok();
}

void Run() {
  bool ok = true;

  // ---- spawn latency + UDS call throughput, one parent runtime ----------
  rt::ProcessRuntime runtime;
  auto j = runtime.topology().add_jurisdiction("j");
  const HostId host = runtime.topology().add_host("h", {j}, 1e9);
  rt::ProcessControl* pc = runtime.process_control();
  if (pc == nullptr) std::abort();

  constexpr std::size_t kWorkers = 8;
  std::vector<rt::SpawnInfo> workers;
  std::int64_t spawn_total_us = 0;
  std::int64_t spawn_max_us = 0;
  for (std::size_t i = 0; i < kWorkers; ++i) {
    const auto t0 = Clock::now();
    auto info =
        pc->spawn_object(WorkerSpec(host, "w" + std::to_string(i), i + 1));
    const std::int64_t us = ElapsedUs(t0);
    if (!info.ok()) {
      std::fprintf(stderr, "spawn failed: %s\n",
                   info.status().to_string().c_str());
      std::abort();
    }
    workers.push_back(*info);
    spawn_total_us += us;
    spawn_max_us = std::max(spawn_max_us, us);
  }

  sim::Table spawn_table(
      "E19 per-object process activation cost",
      {"metric", "workers", "avg_us", "max_us"});
  spawn_table.row(
      {"fork/exec + OPR restore + ready handshake",
       sim::Table::num(static_cast<std::int64_t>(kWorkers)),
       sim::Table::num(spawn_total_us / static_cast<std::int64_t>(kWorkers)),
       sim::Table::num(spawn_max_us)});
  spawn_table.print();

  // Throughput: serial Noop round trips parent -> child over the UDS frame
  // path, against the same call shape served in-process by the epoll
  // runtime over loopback TCP. The gap is the documented price of crossing
  // an address-space boundary per call.
  constexpr std::int64_t kCalls = 2000;
  rt::Messenger client(runtime, host, "bench-client",
                       rt::ExecutionMode::kDriver, nullptr);
  std::int64_t uds_calls_per_s = 0;
  {
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < kCalls; ++i) {
      if (!Answers(client, workers[0].endpoint)) std::abort();
    }
    const std::int64_t us = std::max<std::int64_t>(1, ElapsedUs(t0));
    uds_calls_per_s = kCalls * 1'000'000 / us;
  }

  std::int64_t epoll_calls_per_s = 0;
  {
    rt::EpollRuntime epoll;
    auto ej = epoll.topology().add_jurisdiction("j");
    const HostId eh = epoll.topology().add_host("h", {ej}, 1e9);
    rt::Messenger server(epoll, eh, "server", rt::ExecutionMode::kServiced,
                         [](rt::ServerContext&, Reader&) -> Result<Buffer> {
                           return Buffer{};
                         });
    rt::Messenger eclient(epoll, eh, "client", rt::ExecutionMode::kDriver,
                          nullptr);
    const auto t0 = Clock::now();
    for (std::int64_t i = 0; i < kCalls; ++i) {
      if (!eclient
               .call(server.endpoint(), "Noop", Buffer{},
                     rt::EnvTriple::System(), 5'000'000)
               .ok()) {
        std::abort();
      }
    }
    const std::int64_t us = std::max<std::int64_t>(1, ElapsedUs(t0));
    epoll_calls_per_s = kCalls * 1'000'000 / us;
  }

  sim::Table call_table("E19 call throughput across the process boundary",
                        {"path", "calls", "calls_per_s"});
  call_table.row({"process (parent<->child, UDS)", sim::Table::num(kCalls),
                  sim::Table::num(uds_calls_per_s)});
  call_table.row({"epoll (in-process, loopback TCP)", sim::Table::num(kCalls),
                  sim::Table::num(epoll_calls_per_s)});
  call_table.print();

  // ---- the isolation claim: crash rounds vs sibling availability --------
  // Kill one worker per round through the fault plan (the same injector the
  // recovery tests use) and probe every survivor. Any missed answer — or a
  // parent death, which would abort the bench outright — fails the verdict.
  constexpr std::size_t kCrashRounds = 4;
  sim::Table avail_table(
      "E19 sibling availability across kill -9 rounds",
      {"round", "killed_pid_alive", "survivors_probed", "survivors_answering",
       "availability_pct"});
  std::size_t alive_from = 0;
  for (std::size_t round = 0; round < kCrashRounds; ++round) {
    const rt::SpawnInfo& victim = workers[alive_from];
    if (!runtime.faults().kill_child(victim.endpoint.value).ok()) {
      std::abort();
    }
    const bool victim_dead = AwaitDead(*pc, victim.endpoint);
    ok = ok && victim_dead;
    ++alive_from;

    std::int64_t probed = 0;
    std::int64_t answering = 0;
    for (std::size_t i = alive_from; i < workers.size(); ++i) {
      ++probed;
      if (Answers(client, workers[i].endpoint)) ++answering;
    }
    ok = ok && answering == probed;
    avail_table.row({sim::Table::num(static_cast<std::int64_t>(round)),
                     victim_dead ? "no" : "YES",
                     sim::Table::num(probed), sim::Table::num(answering),
                     sim::Table::num(probed > 0 ? answering * 100 / probed
                                                : 0)});
  }
  avail_table.print();

  std::printf("\nexpected shape: every crash round reports 100%% sibling "
              "availability; the\nkilled pid is reaped (killed_pid_alive = "
              "no) before the survivors are probed.\n");
  std::printf("verdict: %s — %zu kill -9 rounds, parent pid %d alive "
              "throughout, every surviving sibling answered every round\n",
              ok ? "PASS" : "FAIL", kCrashRounds,
              static_cast<int>(::getpid()));
  if (!ok) std::exit(1);
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
