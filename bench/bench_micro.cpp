// E10 — micro-benchmarks (google-benchmark) for the primitives that sit on
// every call path: LOIDs (Sec 3.2), bindings and the cache (Sec 3.5/3.6),
// Object Addresses (Sec 3.4), and wire serialization.
#include <benchmark/benchmark.h>

#include "base/loid.hpp"
#include "base/rng.hpp"
#include "core/binding_cache.hpp"
#include "core/object_address.hpp"
#include "net/address.hpp"
#include "sim/workload.hpp"

namespace legion {
namespace {

void BM_LoidHash(benchmark::State& state) {
  Loid loid{42, 12345, {1, 2, 3, 4, 5, 6, 7, 8}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(LoidHash{}(loid));
  }
}
BENCHMARK(BM_LoidHash);

void BM_LoidSerializeRoundTrip(benchmark::State& state) {
  Loid loid{42, 12345, {1, 2, 3, 4, 5, 6, 7, 8}};
  for (auto _ : state) {
    Buffer buf;
    Writer w(buf);
    loid.Serialize(w);
    Reader r(buf);
    benchmark::DoNotOptimize(Loid::Deserialize(r));
  }
}
BENCHMARK(BM_LoidSerializeRoundTrip);

void BM_BindingSerializeRoundTrip(benchmark::State& state) {
  core::Binding binding;
  binding.loid = Loid{42, 1, {1, 2, 3, 4}};
  binding.address = core::ObjectAddress{
      core::ObjectAddressElement::Sim(EndpointId{7})};
  for (auto _ : state) {
    Buffer buf;
    Writer w(buf);
    binding.Serialize(w);
    Reader r(buf);
    benchmark::DoNotOptimize(core::Binding::Deserialize(r));
  }
}
BENCHMARK(BM_BindingSerializeRoundTrip);

void BM_NetworkAddressIpV4Encode(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(net::NetworkAddress::IpV4(0xC0A80001, 8080, 3));
  }
}
BENCHMARK(BM_NetworkAddressIpV4Encode);

void BM_BindingCacheHit(benchmark::State& state) {
  core::BindingCache cache(static_cast<std::size_t>(state.range(0)));
  for (std::int64_t i = 0; i < state.range(0); ++i) {
    core::Binding b;
    b.loid = Loid{9, static_cast<std::uint64_t>(i)};
    b.address = core::ObjectAddress{
        core::ObjectAddressElement::Sim(EndpointId{static_cast<std::uint64_t>(i + 1)})};
    cache.put(b);
  }
  Rng rng(1);
  for (auto _ : state) {
    const Loid key{9, rng.below(static_cast<std::uint64_t>(state.range(0)))};
    benchmark::DoNotOptimize(cache.get(key, 0));
  }
}
BENCHMARK(BM_BindingCacheHit)->Arg(64)->Arg(1024)->Arg(16384);

void BM_BindingCacheChurn(benchmark::State& state) {
  core::BindingCache cache(256);
  Rng rng(1);
  std::uint64_t i = 0;
  for (auto _ : state) {
    core::Binding b;
    b.loid = Loid{9, i++};
    b.address = core::ObjectAddress{
        core::ObjectAddressElement::Sim(EndpointId{i})};
    cache.put(b);  // evicts once full
  }
  benchmark::DoNotOptimize(cache.size());
}
BENCHMARK(BM_BindingCacheChurn);

void BM_SelectTargetsKOfN(benchmark::State& state) {
  std::vector<core::ObjectAddressElement> elements;
  for (std::uint64_t i = 1; i <= 16; ++i) {
    elements.push_back(core::ObjectAddressElement::Sim(EndpointId{i}));
  }
  core::ObjectAddress address{std::move(elements),
                              core::AddressSemantic::kKOfN, 4};
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(address.select_targets(rng));
  }
}
BENCHMARK(BM_SelectTargetsKOfN);

void BM_ZipfSample(benchmark::State& state) {
  sim::ZipfSampler zipf(static_cast<std::size_t>(state.range(0)), 1.0);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(zipf.sample(rng));
  }
}
BENCHMARK(BM_ZipfSample)->Arg(1000)->Arg(100000);

void BM_WireBufferRoundTrip(benchmark::State& state) {
  const std::vector<std::uint8_t> payload(
      static_cast<std::size_t>(state.range(0)), 0x5A);
  for (auto _ : state) {
    Buffer buf;
    Writer w(buf);
    w.u64(1);
    w.str("GetBinding");
    w.bytes(payload);
    Reader r(buf);
    benchmark::DoNotOptimize(r.u64());
    benchmark::DoNotOptimize(r.str());
    benchmark::DoNotOptimize(r.bytes());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_WireBufferRoundTrip)->Arg(64)->Arg(4096);

}  // namespace
}  // namespace legion

BENCHMARK_MAIN();
