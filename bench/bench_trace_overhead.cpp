// Observability must be cheap enough to leave on. This bench runs the same
// warm-cache binding-path workload (the E6 fast path: client cache hit, one
// request/reply pair) with the trace ring enabled and disabled, and reports
// the wall-clock delta. Metrics counters stay on in both runs — they are
// always on in production — so the delta isolates the per-hop trace records.
//
// Verdict line asserts the budget from ISSUE.md: tracing must cost < 5%.
#include <chrono>

#include "support.hpp"

namespace legion::bench {
namespace {

constexpr int kWarmup = 256;
constexpr int kCalls = 20'000;
constexpr int kReps = 3;

// Wall-clock for kCalls warm invocations in a fresh deployment. A fresh
// deployment per rep keeps allocator and cache state comparable between the
// two modes; warmup fills the binding caches so every timed call is the
// two-message fast path.
double RunOnce(bool tracing, std::uint64_t seed, std::uint64_t* hops_out) {
  Deployment d = MakeDeployment(2, 2, core::SystemConfig{}, seed);
  d.runtime->traces().set_enabled(tracing);

  auto setup = d.system->make_client(d.host(0, 0), "setup");
  const Loid cls = DeriveWorkerClass(
      *setup, "Worker", {d.system->magistrate_of(d.jurisdictions[0])});
  const Loid target = CreateWorker(*setup, cls);
  core::Client client(*d.runtime, d.host(1, 0), "m",
                      d.system->handles_for(d.host(1, 0)), 64, Rng(seed));
  for (int i = 0; i < kWarmup; ++i) MustCall(client, target, "Noop");

  const std::uint64_t hops_before = d.runtime->traces().recorded();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) MustCall(client, target, "Noop");
  const auto t1 = std::chrono::steady_clock::now();
  if (hops_out != nullptr) {
    *hops_out = d.runtime->traces().recorded() - hops_before;
  }
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void Run() {
  // Interleave the reps (off, on, off, on, ...) so frequency scaling and
  // machine noise hit both modes evenly, then score each mode by its best
  // rep — the run least disturbed by the outside world.
  double best_off = 0.0;
  double best_on = 0.0;
  std::uint64_t hops_per_rep = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    const double off = RunOnce(false, 100 + rep, nullptr);
    const double on = RunOnce(true, 100 + rep, &hops_per_rep);
    if (rep == 0 || off < best_off) best_off = off;
    if (rep == 0 || on < best_on) best_on = on;
  }

  const double per_call_off = best_off / kCalls;
  const double per_call_on = best_on / kCalls;
  const double overhead_pct = (best_on - best_off) / best_off * 100.0;

  sim::Table table("trace-ring overhead on the warm binding path",
                   {"tracing", "wall_us_total", "ns_per_call", "hops_recorded"});
  table.row({"off", sim::Table::num(static_cast<std::uint64_t>(best_off)),
             sim::Table::num(static_cast<std::uint64_t>(per_call_off * 1000.0)),
             "0"});
  table.row({"on", sim::Table::num(static_cast<std::uint64_t>(best_on)),
             sim::Table::num(static_cast<std::uint64_t>(per_call_on * 1000.0)),
             sim::Table::num(hops_per_rep)});
  table.print();

  std::printf("\noverhead: %+.2f%% (%d warm calls, best of %d reps each)\n",
              overhead_pct, kCalls, kReps);
  std::printf("verdict: %s (budget: < 5%%)\n",
              overhead_pct < 5.0 ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
