// Observability must be cheap enough to leave on. This bench runs the same
// warm-cache binding-path workload (the E6 fast path: client cache hit, one
// request/reply pair) across the tracing ablation — ring disabled, ring on
// sampling every root (1-in-1), ring on head-sampling 1-in-64 — and reports
// wall-clock deltas. Metrics counters stay on in every run — they are always
// on in production — so the deltas isolate the span records.
//
// hops_recorded is deterministic (virtual-time sim, counter-based sampler)
// and is the E17 shape cell CI gates; the wall-clock columns are masked as
// unstable at baseline time. Verdict line asserts the budget from ISSUE.md:
// the always-on configuration (1-in-64) must cost < 5% vs. tracing off.
#include <chrono>
#include <iterator>

#include "support.hpp"

namespace legion::bench {
namespace {

constexpr int kWarmup = 256;
constexpr int kCalls = 20'000;
constexpr int kReps = 3;

struct Mode {
  const char* label;
  bool ring_enabled;
  std::uint64_t sample_every;  // TraceSampler 1-in-N
};

constexpr Mode kModes[] = {
    {"off", false, 1},
    {"on-1in1", true, 1},
    {"on-1in64", true, 64},
};

// Wall-clock for kCalls warm invocations in a fresh deployment. A fresh
// deployment per rep keeps allocator and cache state comparable between the
// modes; warmup fills the binding caches so every timed call is the
// two-message fast path.
double RunOnce(const Mode& mode, std::uint64_t seed,
               std::uint64_t* hops_out) {
  Deployment d = MakeDeployment(2, 2, core::SystemConfig{}, seed);
  d.runtime->traces().set_enabled(mode.ring_enabled);
  d.runtime->sampler().set_every(mode.sample_every);

  auto setup = d.system->make_client(d.host(0, 0), "setup");
  const Loid cls = DeriveWorkerClass(
      *setup, "Worker", {d.system->magistrate_of(d.jurisdictions[0])});
  const Loid target = CreateWorker(*setup, cls);
  core::Client client(*d.runtime, d.host(1, 0), "m",
                      d.system->handles_for(d.host(1, 0)), 64, Rng(seed));
  for (int i = 0; i < kWarmup; ++i) MustCall(client, target, "Noop");

  const std::uint64_t hops_before = d.runtime->traces().recorded();
  const auto t0 = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalls; ++i) MustCall(client, target, "Noop");
  const auto t1 = std::chrono::steady_clock::now();
  if (hops_out != nullptr) {
    *hops_out = d.runtime->traces().recorded() - hops_before;
  }
  return std::chrono::duration<double, std::micro>(t1 - t0).count();
}

void Run() {
  constexpr std::size_t kNumModes = std::size(kModes);
  // Interleave the reps (off, 1in1, 1in64, off, ...) so frequency scaling
  // and machine noise hit every mode evenly, then score each mode by its
  // best rep — the run least disturbed by the outside world.
  double best[kNumModes] = {};
  std::uint64_t hops[kNumModes] = {};
  for (int rep = 0; rep < kReps; ++rep) {
    for (std::size_t m = 0; m < kNumModes; ++m) {
      const double us = RunOnce(kModes[m], 100 + rep, &hops[m]);
      if (rep == 0 || us < best[m]) best[m] = us;
    }
  }

  sim::Table table("trace span overhead on the warm binding path (sampling "
                   "ablation)",
                   {"tracing", "wall_us_total", "ns_per_call",
                    "hops_recorded"});
  for (std::size_t m = 0; m < kNumModes; ++m) {
    const double per_call = best[m] / kCalls;
    table.row({kModes[m].label,
               sim::Table::num(static_cast<std::uint64_t>(best[m])),
               sim::Table::num(static_cast<std::uint64_t>(per_call * 1000.0)),
               sim::Table::num(hops[m])});
  }
  table.print();

  const double full_pct = (best[1] - best[0]) / best[0] * 100.0;
  const double sampled_pct = (best[2] - best[0]) / best[0] * 100.0;
  std::printf("\noverhead vs off: 1-in-1 %+.2f%%, 1-in-64 %+.2f%% "
              "(%d warm calls, best of %d reps each)\n",
              full_pct, sampled_pct, kCalls, kReps);
  std::printf("verdict: %s (budget: 1-in-64 sampling < 5%%)\n",
              sampled_pct < 5.0 ? "PASS" : "FAIL");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
