// E18 — resident-object scalability of the M:N runtime: how many idle
// endpoints (active Legion objects awaiting invocation) one process can
// keep resident, against the thread-per-object baseline.
//
// ThreadRuntime spends an OS thread per serviced endpoint, so its resident
// population is capped by kernel thread limits and stack reservations —
// thousands. EpollRuntime decouples objects from threads (one reactor plus
// a fixed worker pool), so a million idle objects cost a million small
// mailbox structs and zero extra threads. The verdict line asserts the
// headline ratio: >= 100x more resident idle objects than the demonstrated
// thread-per-object ceiling, with a constant runtime thread count.
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "rt/epoll_runtime.hpp"
#include "rt/thread_runtime.hpp"
#include "sim/table.hpp"

namespace legion::bench {
namespace {

// OS threads in this process, from /proc/self/status. Measured as deltas so
// the table gates the runtime's own thread appetite, not the harness's.
long ProcessThreads() {
  std::ifstream in("/proc/self/status");
  std::string key;
  while (in >> key) {
    if (key == "Threads:") {
      long n = 0;
      in >> n;
      return n;
    }
    in.ignore(4096, '\n');
  }
  return -1;
}

long MaxRssKb() {
  rusage ru{};
  ::getrusage(RUSAGE_SELF, &ru);
  return ru.ru_maxrss;
}

struct RowResult {
  long extra_threads = 0;  // threads the runtime added for this population
  std::int64_t create_us = 0;
  bool delivered = false;  // a probe post reached a member of the population
};

// Builds `endpoints` idle serviced endpoints on one host and probes one of
// them, so every scale point is demonstrably a live population, not an
// allocation stunt.
template <typename RuntimeT>
RowResult RunOnce(RuntimeT& runtime, std::size_t endpoints) {
  auto j = runtime.topology().add_jurisdiction("j");
  const HostId host = runtime.topology().add_host("h", {j}, 1e9);
  const HostId client_host = runtime.topology().add_host("c", {j}, 1e9);

  const long threads_before = ProcessThreads();
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<EndpointId> ids;
  ids.reserve(endpoints);
  for (std::size_t i = 0; i < endpoints; ++i) {
    ids.push_back(runtime.create_endpoint(host, "o", [](rt::Envelope&&) {},
                                          rt::ExecutionMode::kServiced));
    if (!ids.back().valid()) std::abort();
  }
  RowResult r;
  r.create_us = std::chrono::duration_cast<std::chrono::microseconds>(
                    std::chrono::steady_clock::now() - t0)
                    .count();
  r.extra_threads = ProcessThreads() - threads_before;

  const EndpointId src = runtime.create_endpoint(
      client_host, "src", nullptr, rt::ExecutionMode::kDriver);
  const EndpointId probe = ids[endpoints / 2];
  if (!runtime
           .post(rt::Envelope{src, probe, rt::DeliveryKind::kData, Buffer{}})
           .ok()) {
    std::abort();
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (runtime.endpoint_stats(probe).received < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  r.delivered = runtime.endpoint_stats(probe).received == 1;
  return r;
}

void Run() {
  sim::Table table(
      "E18 resident idle objects vs runtime threads (M:N ablation)",
      {"runtime", "idle_endpoints", "runtime_threads", "create_us"});

  // Thread-per-object baseline: every serviced endpoint is an OS thread.
  // 4096 is the demonstrated ceiling here — past ~10k, thread-per-object
  // collapses under kernel task limits and stack reservations, which is the
  // point of the comparison.
  constexpr std::size_t kThreadCeiling = 4096;
  bool all_delivered = true;
  long thread_row_threads = 0;
  for (const std::size_t n : {std::size_t{1024}, kThreadCeiling}) {
    rt::ThreadRuntime runtime;
    const RowResult r = RunOnce(runtime, n);
    all_delivered = all_delivered && r.delivered;
    thread_row_threads = r.extra_threads;
    table.row({"thread (1:1)",
               sim::Table::num(static_cast<std::int64_t>(n)),
               sim::Table::num(static_cast<std::int64_t>(r.extra_threads)),
               sim::Table::num(r.create_us)});
  }

  // M:N runtime, fixed 8-worker pool: the thread column must not move as
  // the population scales 100x.
  constexpr std::size_t kWorkers = 8;
  constexpr std::size_t kMaxEndpoints = 1'000'000;
  long epoll_threads_min = 1 << 30, epoll_threads_max = -1;
  for (const std::size_t n :
       {std::size_t{10'000}, std::size_t{100'000}, kMaxEndpoints}) {
    rt::EpollOptions options;
    options.workers = kWorkers;
    rt::EpollRuntime runtime(options);
    const RowResult r = RunOnce(runtime, n);
    all_delivered = all_delivered && r.delivered;
    epoll_threads_min = std::min(epoll_threads_min, r.extra_threads);
    epoll_threads_max = std::max(epoll_threads_max, r.extra_threads);
    table.row({"epoll (M:N, 8 workers)",
               sim::Table::num(static_cast<std::int64_t>(n)),
               sim::Table::num(static_cast<std::int64_t>(r.extra_threads)),
               sim::Table::num(r.create_us)});
  }
  table.print();

  std::printf("\npeak RSS %ld KiB (~%ld bytes per resident object at the "
              "1M point, process-wide upper bound)\n",
              MaxRssKb(), MaxRssKb() * 1024 / kMaxEndpoints);
  std::printf("expected shape: the thread runtime's thread column tracks its "
              "endpoint\ncolumn 1:1; the epoll column stays flat while the "
              "population scales 100x.\n");

  const bool threads_flat = epoll_threads_min == epoll_threads_max &&
                            epoll_threads_max >= 0;
  const bool ratio_ok = kMaxEndpoints >= 100 * kThreadCeiling;
  const bool ok = threads_flat && ratio_ok && all_delivered &&
                  thread_row_threads >= static_cast<long>(kThreadCeiling);
  std::printf("verdict: %s — %zu resident idle objects with %ld threads "
              "added beyond the fixed %zu-worker pool (%zux the %zu "
              "thread-per-object ceiling, probe delivered at every scale)\n",
              ok ? "PASS" : "FAIL", kMaxEndpoints, epoll_threads_max,
              kWorkers, kMaxEndpoints / kThreadCeiling, kThreadCeiling);
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
