// E14 — Section 2.2: "if a Jurisdiction's resources impose a substantial
// load on its Magistrate, the Jurisdiction can be split, and a new
// Magistrate can be created to take over responsibility for some of the
// resources and objects."
//
// A lifecycle-churn workload (deactivate + reactivate cycles, all brokered
// by magistrates) runs twice: once with every object under one magistrate,
// once after Split() handed half of them to a second. Report the busiest
// magistrate's message count and the workload's virtual time.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kObjects = 48;
constexpr int kChurnRounds = 4;

struct Outcome {
  std::uint64_t max_magistrate_msgs = 0;
  SimTime virtual_ms = 0;
};

Outcome RunOnce(bool split) {
  Deployment d = MakeDeployment(2, 4, core::SystemConfig{}, 103);
  auto client = d.system->make_client(d.host(0, 0));
  const Loid mag0 = d.system->magistrate_of(d.jurisdictions[0]);
  const Loid mag1 = d.system->magistrate_of(d.jurisdictions[1]);
  const Loid cls = DeriveWorkerClass(*client, "Worker", {mag0});

  std::vector<Loid> objects;
  for (std::size_t i = 0; i < kObjects; ++i) {
    objects.push_back(CreateWorker(*client, cls, {mag0}));
  }
  if (split) {
    core::wire::LoidRequest req{mag1};
    auto raw = client->ref(mag0).call(core::methods::kSplit, req.to_buffer());
    if (!raw.ok()) {
      std::fprintf(stderr, "split: %s\n", raw.status().to_string().c_str());
      std::abort();
    }
  }
  // One churn driver per jurisdiction, co-located with its magistrate (the
  // Section 5.2 locality assumption: "most accesses will be local").
  auto client0 = d.system->make_client(d.host(0, 1), "churn0");
  auto client1 = d.system->make_client(d.host(1, 1), "churn1");
  d.runtime->reset_stats();
  const SimTime t0 = d.runtime->now();

  // Churn: every round deactivates and reactivates every object through
  // whichever magistrate manages it (explicit Activate, as a Scheduling
  // Agent would issue it — this isolates *magistrate* load from the class
  // object's brokered path, which E6 measures separately).
  for (int round = 0; round < kChurnRounds; ++round) {
    for (const Loid& object : objects) {
      const bool at_j0 =
          d.system->magistrate_impl(d.jurisdictions[0])->manages(object);
      core::Client& driver = at_j0 ? *client0 : *client1;
      const Loid owner = at_j0 ? mag0 : mag1;
      core::wire::LoidRequest deactivate{object};
      if (!driver.ref(owner)
               .call(core::methods::kDeactivate, deactivate.to_buffer())
               .ok()) {
        std::abort();
      }
      core::wire::ActivateRequest activate{object, Loid{}};
      auto raw = driver.ref(owner).call(core::methods::kActivate,
                                        activate.to_buffer());
      if (!raw.ok()) std::abort();
      auto reply = core::wire::BindingReply::from_buffer(*raw);
      if (!reply.ok()) std::abort();
      driver.resolver().add_binding(reply->binding);
      MustCall(driver, object, "Noop");
    }
  }

  Outcome out;
  out.max_magistrate_msgs = d.runtime->max_received_with_label("magistrate");
  out.virtual_ms = (d.runtime->now() - t0) / 1000;
  return out;
}

void Run() {
  sim::Table table(
      "E14 splitting a jurisdiction relieves its magistrate (Sec 2.2)",
      {"configuration", "max_msgs_at_one_magistrate", "churn_virtual_ms"});
  for (const bool split : {false, true}) {
    const Outcome out = RunOnce(split);
    table.row({split ? "after Split() to a second magistrate"
                     : "single loaded magistrate",
               sim::Table::num(out.max_magistrate_msgs),
               sim::Table::num(out.virtual_ms)});
  }
  table.print();
  std::printf("\nexpected shape: the busiest magistrate's message count "
              "drops toward half\nafter the split — control is "
              "decentralized exactly as Section 2.2 claims.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
