// E7 — Sections 3.1 / 3.8: object lifecycle costs. Activation,
// deactivation, and Copy/Move migration through Object Persistent
// Representations, swept over the object's state size, intra- and
// cross-jurisdiction.
#include "support.hpp"

namespace legion::bench {
namespace {

SimTime TimeOp(Deployment& d, const std::function<void()>& op) {
  const SimTime t0 = d.runtime->now();
  op();
  return d.runtime->now() - t0;
}

void Run() {
  sim::Table table("E7 lifecycle costs vs object state size (Sec 3.1, 3.8)",
                   {"state_bytes", "deactivate_us", "reactivate_us",
                    "copy_cross_us", "move_cross_us", "reach_after_move_us"});

  for (const std::size_t state_bytes :
       {std::size_t{0}, std::size_t{1} << 10, std::size_t{16} << 10,
        std::size_t{256} << 10}) {
    Deployment d = MakeDeployment(2, 2, core::SystemConfig{}, 83);
    auto client = d.system->make_client(d.host(0, 0));
    const Loid src_mag = d.system->magistrate_of(d.jurisdictions[0]);
    const Loid dst_mag = d.system->magistrate_of(d.jurisdictions[1]);
    const Loid cls = DeriveWorkerClass(*client, "Worker", {src_mag});

    const Loid object = CreateWorker(*client, cls, {src_mag}, state_bytes);
    MustCall(*client, object, "Noop");

    core::wire::LoidRequest loid_req{object};
    const SimTime deactivate_us = TimeOp(d, [&] {
      if (!client->ref(src_mag)
               .call(core::methods::kDeactivate, loid_req.to_buffer())
               .ok()) {
        std::abort();
      }
    });
    const SimTime reactivate_us =
        TimeOp(d, [&] { MustCall(*client, object, "Noop"); });

    core::wire::TransferRequest copy_req{object, dst_mag};
    const SimTime copy_us = TimeOp(d, [&] {
      if (!client->ref(src_mag)
               .call(core::methods::kCopy, copy_req.to_buffer())
               .ok()) {
        std::abort();
      }
    });
    // Scrub the copy at the destination so Move does not collide.
    {
      core::wire::LoidRequest del{object};
      (void)client->ref(dst_mag).call(core::methods::kDelete, del.to_buffer());
    }

    const SimTime move_us = TimeOp(d, [&] {
      if (!client->ref(src_mag)
               .call(core::methods::kMove, copy_req.to_buffer())
               .ok()) {
        std::abort();
      }
    });
    const SimTime reach_us =
        TimeOp(d, [&] { MustCall(*client, object, "Noop"); });

    table.row({sim::Table::num(static_cast<std::uint64_t>(state_bytes)),
               sim::Table::num(deactivate_us), sim::Table::num(reactivate_us),
               sim::Table::num(copy_us), sim::Table::num(move_us),
               sim::Table::num(reach_us)});
  }
  table.print();
  std::printf("\nexpected shape: deactivation cost grows with state size "
              "(SaveState crosses\nthe LAN to the vault); Copy/Move "
              "additionally pay one cross-jurisdiction\nOPR transfer at WAN "
              "bandwidth — the dominant term for big objects; and\nreaching "
              "a moved object pays the full refresh-and-activate path "
              "once.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
