// E12 (ablation) — placement policies over a heterogeneous jurisdiction.
//
// Section 3.8 deliberately keeps Magistrates simple and pushes policy into
// Scheduling Agents; this ablation shows why the policy choice matters:
// random and round-robin ignore capacity, least-loaded tracks it.
#include <algorithm>

#include "support.hpp"

namespace legion::bench {
namespace {

constexpr int kObjects = 120;

struct Outcome {
  double max_cpu_load = 0;
  double spread = 0;  // max - min active objects, capacity-normalized
};

Outcome RunOnce(const std::string& policy) {
  // One jurisdiction, four hosts with very different capacities (a
  // workstation next to an SMP — the paper's UnixHost vs UnixSMMP).
  auto runtime = std::make_unique<rt::SimRuntime>(101);
  auto& topo = runtime->topology();
  const auto jur = topo.add_jurisdiction("j");
  const HostId hosts[4] = {
      topo.add_host("ws-1", {jur}, 4.0),
      topo.add_host("ws-2", {jur}, 8.0),
      topo.add_host("smp-1", {jur}, 32.0),
      topo.add_host("smp-2", {jur}, 64.0),
  };

  core::SystemConfig config;
  config.placement_policy = policy;
  auto system = std::make_unique<core::LegionSystem>(*runtime, config);
  if (!sim::RegisterSampleObjects(system->registry()).ok()) std::abort();
  if (!system->bootstrap().ok()) std::abort();

  auto client = system->make_client(hosts[0]);
  const Loid cls = DeriveWorkerClass(*client, "Worker");
  for (int i = 0; i < kObjects; ++i) {
    auto reply = client->create(cls, sim::WorkerInit(0, 0));
    if (!reply.ok()) std::abort();
  }

  Outcome out;
  double min_norm = 1e18;
  double max_norm = 0;
  for (const HostId h : hosts) {
    const auto* info = runtime->topology().host(h);
    const double load =
        static_cast<double>(system->host_impl(h)->active_objects()) /
        info->capacity;
    out.max_cpu_load = std::max(out.max_cpu_load, load);
    min_norm = std::min(min_norm, load);
    max_norm = std::max(max_norm, load);
  }
  out.spread = max_norm - min_norm;
  return out;
}

void Run() {
  sim::Table table(
      "E12 placement-policy ablation on heterogeneous hosts (Sec 3.7/3.8)",
      {"policy", "max_cpu_load(objects/capacity)", "load_spread"});
  for (const std::string policy : {"random", "round-robin", "least-loaded"}) {
    const Outcome out = RunOnce(policy);
    table.row({policy, sim::Table::num(out.max_cpu_load, 2),
               sim::Table::num(out.spread, 2)});
  }
  table.print();
  std::printf("\nexpected shape: random and round-robin overload the small "
              "workstations\n(high max load and spread); least-loaded "
              "equalizes normalized load across\nthe 4x-64x capacity "
              "range.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
