// E6 — Section 4.1 / Figure 17: the typical binding path. Object A's
// reference to B resolves through up to four layers — A's local cache, A's
// Binding Agent, B's class, B's Magistrate (activation) — and each layer
// absorbs the traffic beneath it.
//
// Measure the virtual-time cost and message count of one invocation in each
// cache state.
#include "support.hpp"

namespace legion::bench {
namespace {

struct Measured {
  SimTime virtual_us = 0;
  std::uint64_t messages = 0;
};

Measured MeasureOne(Deployment& d, core::Client& client, const Loid& target) {
  const SimTime t0 = d.runtime->now();
  const std::uint64_t m0 = d.runtime->stats().delivered;
  MustCall(client, target, "Noop");
  return Measured{d.runtime->now() - t0, d.runtime->stats().delivered - m0};
}

void Run() {
  Deployment d = MakeDeployment(2, 2, core::SystemConfig{}, 71);
  auto setup = d.system->make_client(d.host(0, 0), "setup");
  const Loid cls = DeriveWorkerClass(
      *setup, "Worker", {d.system->magistrate_of(d.jurisdictions[0])});

  sim::Table table("E6 the Figure-17 binding path, layer by layer (Sec 4.1)",
                   {"scenario", "virtual_us", "messages", "resolved_by"});

  // (a) Warm local cache: resolution is free; one request/reply pair.
  {
    const Loid target = CreateWorker(*setup, cls);
    core::Client client(*d.runtime, d.host(1, 0), "m",
                        d.system->handles_for(d.host(1, 0)), 64, Rng(1));
    MustCall(client, target, "Noop");  // warm
    const Measured m = MeasureOne(d, client, target);
    table.row({"warm local cache", sim::Table::num(m.virtual_us),
               sim::Table::num(m.messages), "A's own cache"});
  }

  // (b) Local miss, warm Binding Agent (another client already resolved).
  {
    const Loid target = CreateWorker(*setup, cls);
    core::Client warmer(*d.runtime, d.host(1, 1), "w",
                        d.system->handles_for(d.host(1, 1)), 64, Rng(2));
    MustCall(warmer, target, "Noop");
    core::Client client(*d.runtime, d.host(1, 0), "m",
                        d.system->handles_for(d.host(1, 0)), 64, Rng(3));
    const Measured m = MeasureOne(d, client, target);
    table.row({"local miss, BA cache hit", sim::Table::num(m.virtual_us),
               sim::Table::num(m.messages), "Binding Agent"});
  }

  // (c) BA miss on an Active object: BA -> class -> table row.
  {
    const Loid target = CreateWorker(*setup, cls);
    core::Client client(*d.runtime, d.host(1, 0), "m",
                        d.system->handles_for(d.host(1, 0)), 64, Rng(4));
    const Measured m = MeasureOne(d, client, target);
    table.row({"BA miss, object Active", sim::Table::num(m.virtual_us),
               sim::Table::num(m.messages), "class logical table"});
  }

  // (d) BA miss on an Inert object: the full path, ending in the magistrate
  //     activating the object ("referring to the LOID of an Inert object
  //     can cause the object to be activated", Sec 4.1.2).
  {
    const Loid target = CreateWorker(*setup, cls);
    core::wire::LoidRequest req{target};
    auto st = setup->ref(d.system->magistrate_of(d.jurisdictions[0]))
                  .call(core::methods::kDeactivate, req.to_buffer());
    if (!st.ok()) std::abort();
    core::Client client(*d.runtime, d.host(1, 0), "m",
                        d.system->handles_for(d.host(1, 0)), 64, Rng(5));
    const Measured m = MeasureOne(d, client, target);
    table.row({"BA miss, object Inert", sim::Table::num(m.virtual_us),
               sim::Table::num(m.messages), "magistrate Activate()"});
  }

  // (e) Stale binding after migration: detect -> refresh -> retry
  //     (Sec 4.1.4).
  {
    const Loid target = CreateWorker(*setup, cls);
    core::Client client(*d.runtime, d.host(1, 0), "m",
                        d.system->handles_for(d.host(1, 0)), 64, Rng(6));
    MustCall(client, target, "Noop");  // warm, soon stale
    core::wire::TransferRequest move{target,
                                     d.system->magistrate_of(d.jurisdictions[1])};
    auto st = setup->ref(d.system->magistrate_of(d.jurisdictions[0]))
                  .call(core::methods::kMove, move.to_buffer());
    if (!st.ok()) std::abort();
    const Measured m = MeasureOne(d, client, target);
    table.row({"stale binding (object migrated)", sim::Table::num(m.virtual_us),
               sim::Table::num(m.messages), "refresh + magistrate"});
  }

  table.print();
  std::printf("\nexpected shape: each deeper layer adds messages and "
              "latency;\nthe warm-cache row costs exactly one round trip — "
              "the caching\nhierarchy is what makes Section 5's argument "
              "work.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
