// E4 — Section 5.2.2: "The problem of popular class objects becoming
// bottlenecks can be alleviated by 'cloning' class objects when they become
// heavily used... several clones can exist simultaneously, with the
// different clones residing in different domains."
//
// A creation storm against one popular class. Sweep the clone count; each
// client adopts a clone via GetClone and creates directly against it.
// Report the maximum messages any single class object had to serve.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kJurisdictions = 4;
constexpr std::size_t kHostsPer = 4;
constexpr std::size_t kClients = 16;
constexpr int kCreatesPerClient = 40;

struct Outcome {
  std::uint64_t max_class_received = 0;
  SimTime virtual_us = 0;
};

Outcome RunOnce(std::size_t clones) {
  Deployment d = MakeDeployment(kJurisdictions, kHostsPer,
                                core::SystemConfig{}, 47);
  auto setup = d.system->make_client(d.host(0, 0), "setup");
  const Loid popular = DeriveWorkerClass(*setup, "Popular");

  // Clone into different domains, as the paper suggests.
  for (std::size_t c = 0; c < clones; ++c) {
    core::wire::CreateRequest req;
    req.candidate_magistrates = {
        d.system->magistrate_of(d.jurisdictions[(c + 1) % kJurisdictions])};
    auto raw = setup->ref(popular).call(core::methods::kClone, req.to_buffer());
    if (!raw.ok()) {
      std::fprintf(stderr, "clone: %s\n", raw.status().to_string().c_str());
      std::abort();
    }
  }
  d.runtime->reset_stats();
  const SimTime t0 = d.runtime->now();

  for (std::size_t c = 0; c < kClients; ++c) {
    core::Client client(*d.runtime, d.host(c % kJurisdictions, c / kJurisdictions),
                        "measured",
                        d.system->handles_for(d.host(c % kJurisdictions, 0)),
                        /*cache=*/64, Rng(c + 5));
    // Adopt a clone once (or the class itself when none exist)...
    Loid adopted = popular;
    auto raw = client.ref(popular).call("GetClone", Buffer{});
    if (raw.ok()) {
      auto reply = core::wire::LoidReply::from_buffer(*raw);
      if (reply.ok()) adopted = reply->loid;
    }
    // ...then hammer it with creations.
    for (int i = 0; i < kCreatesPerClient; ++i) {
      auto created = client.create(adopted, sim::WorkerInit(0, 0));
      if (!created.ok()) {
        std::fprintf(stderr, "create: %s\n",
                     created.status().to_string().c_str());
        std::abort();
      }
    }
  }

  Outcome out;
  out.max_class_received = d.runtime->max_received_with_label("class");
  out.virtual_us = d.runtime->now() - t0;
  return out;
}

void Run() {
  sim::Table table(
      "E4 cloning relieves popular class objects (Sec 5.2.2)",
      {"clones", "max_msgs_at_one_class_object", "virtual_ms_total"});
  for (const std::size_t clones : {std::size_t{0}, std::size_t{1},
                                   std::size_t{2}, std::size_t{4},
                                   std::size_t{8}}) {
    const Outcome out = RunOnce(clones);
    table.row({sim::Table::num(static_cast<std::uint64_t>(clones)),
               sim::Table::num(out.max_class_received),
               sim::Table::num(static_cast<double>(out.virtual_us) / 1000.0,
                               1)});
  }
  table.print();
  std::printf("\nexpected shape: the hottest class object's load divides by "
              "roughly the\nnumber of clones once clients adopt clones "
              "directly (640 creations total).\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
