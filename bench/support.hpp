// Shared scaffolding for the experiment binaries.
//
// Each bench builds a simulated Legion deployment, runs a workload, and
// prints the table its experiment id (see DESIGN.md Section 3) calls for.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/sim_runtime.hpp"
#include "sim/sample_objects.hpp"
#include "sim/table.hpp"
#include "sim/workload.hpp"

namespace legion::bench {

struct Deployment {
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<core::LegionSystem> system;
  std::vector<JurisdictionId> jurisdictions;
  std::vector<std::vector<HostId>> hosts;  // per jurisdiction

  [[nodiscard]] HostId host(std::size_t jurisdiction, std::size_t index) const {
    return hosts[jurisdiction][index % hosts[jurisdiction].size()];
  }
  [[nodiscard]] std::size_t total_hosts() const {
    std::size_t n = 0;
    for (const auto& js : hosts) n += js.size();
    return n;
  }
};

// J jurisdictions x H hosts, bootstrapped, with the sample worker
// registered. Aborts (prints + exits) on bootstrap failure: benches have no
// meaningful fallback.
inline Deployment MakeDeployment(std::size_t jurisdictions_count,
                                 std::size_t hosts_per_jurisdiction,
                                 core::SystemConfig config,
                                 std::uint64_t seed = 11) {
  Deployment d;
  d.runtime = std::make_unique<rt::SimRuntime>(seed);
  auto& topo = d.runtime->topology();
  for (std::size_t j = 0; j < jurisdictions_count; ++j) {
    const auto jur = topo.add_jurisdiction("j" + std::to_string(j));
    d.jurisdictions.push_back(jur);
    std::vector<HostId> hosts;
    for (std::size_t h = 0; h < hosts_per_jurisdiction; ++h) {
      hosts.push_back(topo.add_host(
          "j" + std::to_string(j) + "-h" + std::to_string(h), {jur}, 1e9));
    }
    d.hosts.push_back(std::move(hosts));
  }
  d.system = std::make_unique<core::LegionSystem>(*d.runtime, config);
  Status st = sim::RegisterSampleObjects(d.system->registry());
  if (st.ok()) st = d.system->bootstrap();
  if (!st.ok()) {
    std::fprintf(stderr, "deployment failed: %s\n", st.to_string().c_str());
    std::abort();
  }
  return d;
}

// Derives one worker class whose candidate magistrate is the given
// jurisdiction's (or all, when none given).
inline Loid DeriveWorkerClass(core::Client& client, const std::string& name,
                              std::vector<Loid> magistrates = {}) {
  core::wire::DeriveRequest req;
  req.name = name;
  req.instance_impl = std::string(sim::WorkerImpl::kName);
  req.candidate_magistrates = std::move(magistrates);
  auto reply = client.derive(core::LegionObjectLoid(), req);
  if (!reply.ok()) {
    std::fprintf(stderr, "derive %s: %s\n", name.c_str(),
                 reply.status().to_string().c_str());
    std::abort();
  }
  return reply->loid;
}

inline Loid CreateWorker(core::Client& client, const Loid& worker_class,
                         std::vector<Loid> magistrates = {},
                         std::size_t ballast = 0) {
  auto reply = client.create(worker_class, sim::WorkerInit(0, ballast),
                             std::move(magistrates));
  if (!reply.ok()) {
    std::fprintf(stderr, "create: %s\n", reply.status().to_string().c_str());
    std::abort();
  }
  return reply->loid;
}

// One checked invocation; aborts on failure so silent errors cannot skew a
// measurement.
inline void MustCall(core::Client& client, const Loid& target,
                     std::string_view method) {
  auto result = client.ref(target).call(method, Buffer{});
  if (!result.ok()) {
    std::fprintf(stderr, "call %s on %s: %s\n", std::string(method).c_str(),
                 target.to_string().c_str(),
                 result.status().to_string().c_str());
    std::abort();
  }
}

}  // namespace legion::bench
