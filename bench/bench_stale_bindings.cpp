// E9 — Section 4.1.4: "Legion expects the presence of stale bindings...
// When an object attempts to communicate with an invalid Object Address,
// the Legion communication layer of the object is expected to detect that
// it has become invalid... it will likely request that the binding be
// refreshed."
//
// Sweep the migration rate; report the retry rate and the latency overhead
// the repairs impose. The cost should be proportional to the migration
// rate, not to the traffic volume.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kObjects = 32;
constexpr int kBatches = 20;
constexpr int kCallsPerBatch = 64;

struct Outcome {
  double retries_per_call = 0;
  double refreshes_per_call = 0;
  double avg_us_per_call = 0;
};

Outcome RunOnce(double migrations_per_batch_fraction) {
  // The measuring client lives on a host belonging to BOTH jurisdictions
  // (Section 2.2: "Jurisdictions are potentially non-disjoint"), so
  // migrating an object between magistrates never changes its latency class
  // from the client's viewpoint — the measured overhead is purely the
  // stale-binding repair.
  auto runtime = std::make_unique<rt::SimRuntime>(59);
  auto& topo = runtime->topology();
  const auto j0 = topo.add_jurisdiction("j0");
  const auto j1 = topo.add_jurisdiction("j1");
  for (int h = 0; h < 3; ++h) topo.add_host("j0-h" + std::to_string(h), {j0}, 1e9);
  for (int h = 0; h < 3; ++h) topo.add_host("j1-h" + std::to_string(h), {j1}, 1e9);
  const HostId bridge = topo.add_host("bridge", {j0, j1}, 1e9);

  auto system = std::make_unique<core::LegionSystem>(*runtime,
                                                     core::SystemConfig{});
  if (!sim::RegisterSampleObjects(system->registry()).ok()) std::abort();
  if (!system->bootstrap().ok()) std::abort();
  Deployment d;
  d.runtime = std::move(runtime);
  d.system = std::move(system);

  auto admin = d.system->make_client(bridge, "admin");
  const Loid mags[2] = {d.system->magistrate_of(j0),
                        d.system->magistrate_of(j1)};
  const Loid cls = DeriveWorkerClass(*admin, "Worker", {mags[0]});

  std::vector<Loid> objects;
  std::vector<int> location(kObjects, 0);  // jurisdiction index
  for (std::size_t i = 0; i < kObjects; ++i) {
    objects.push_back(CreateWorker(*admin, cls, {mags[0]}));
  }

  core::Client client(*d.runtime, bridge, "measured",
                      d.system->handles_for(bridge), /*cache=*/256,
                      Rng(13));
  // Warm every binding first.
  for (const Loid& object : objects) MustCall(client, object, "Noop");
  client.resolver().reset_stats();

  Rng rng(29);
  SimTime busy_us = 0;
  int calls = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    // Migrate a fraction of the objects behind the client's back.
    const auto to_move = static_cast<std::size_t>(
        migrations_per_batch_fraction * kObjects);
    for (std::size_t m = 0; m < to_move; ++m) {
      const std::size_t pick = rng.below(kObjects);
      const int from = location[pick];
      const int to = 1 - from;
      core::wire::TransferRequest req{objects[pick], mags[to]};
      if (admin->ref(mags[from])
              .call(core::methods::kMove, req.to_buffer())
              .ok()) {
        location[pick] = to;
      }
    }
    const SimTime t0 = d.runtime->now();
    for (int i = 0; i < kCallsPerBatch; ++i) {
      MustCall(client, objects[rng.below(kObjects)], "Noop");
      ++calls;
    }
    busy_us += d.runtime->now() - t0;
  }

  Outcome out;
  out.retries_per_call =
      static_cast<double>(client.resolver().stats().stale_retries) / calls;
  out.refreshes_per_call =
      static_cast<double>(client.resolver().stats().refreshes) / calls;
  out.avg_us_per_call = static_cast<double>(busy_us) / calls;
  return out;
}

void Run() {
  sim::Table table(
      "E9 stale-binding repair cost tracks the migration rate (Sec 4.1.4)",
      {"objects_migrated_per_batch", "stale_retries_per_call",
       "refreshes_per_call", "avg_virtual_us_per_call"});
  for (const double fraction : {0.0, 0.05, 0.15, 0.3, 0.6}) {
    const Outcome out = RunOnce(fraction);
    table.row({sim::Table::num(100.0 * fraction, 0) + "%",
               sim::Table::num(out.retries_per_call, 3),
               sim::Table::num(out.refreshes_per_call, 3),
               sim::Table::num(out.avg_us_per_call, 1)});
  }
  table.print();
  std::printf("\nexpected shape: with no migration there are zero retries; "
              "retries and the\nlatency overhead grow proportionally with "
              "the migration rate — stale\nbindings cost only those who hit "
              "them.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
