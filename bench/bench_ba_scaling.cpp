// E2 — Section 5.2.1: "As the load on a particular Binding Agent increases,
// or as the domain serviced by a particular agent enlarges, more Binding
// Agents may be created. Thus, each Binding Agent can be set up to service
// a bounded number of clients."
//
// Two series as the system grows from 2 to 16 jurisdictions (8 to 64
// hosts): (a) one Binding Agent per jurisdiction — per-agent load stays
// flat; (b) a single global Binding Agent — its load grows linearly with
// the system. The contrast is the claim.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kHostsPer = 4;
constexpr std::size_t kObjectsPerJurisdiction = 16;
constexpr int kInvocationsPerClient = 400;

struct Outcome {
  std::uint64_t max_ba_received = 0;
  std::uint64_t total_ba_received = 0;
  std::size_t agents = 0;
};

Outcome RunOnce(std::size_t jurisdictions, bool scale_agents) {
  core::SystemConfig config;
  config.binding_agents_per_jurisdiction = 1;
  Deployment d = MakeDeployment(jurisdictions, kHostsPer, config, 23);

  // In the "single global agent" series, every participant is pointed at
  // agent 0 regardless of jurisdiction.
  auto handles_for = [&](HostId host) {
    core::SystemHandles handles = d.system->handles_for(host);
    if (!scale_agents) {
      handles.default_binding_agent =
          d.system->shell_of(d.system->binding_agents()[0])->binding();
    }
    return handles;
  };

  auto setup = d.system->make_client(d.host(0, 0), "setup");
  std::vector<std::vector<Loid>> objects(jurisdictions);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    const Loid cls =
        DeriveWorkerClass(*setup, "W" + std::to_string(j),
                          {d.system->magistrate_of(d.jurisdictions[j])});
    for (std::size_t i = 0; i < kObjectsPerJurisdiction; ++i) {
      objects[j].push_back(CreateWorker(*setup, cls));
    }
  }
  d.runtime->reset_stats();

  // One client per host; 90% of accesses stay in the client's jurisdiction.
  Rng rng(7);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    for (std::size_t h = 0; h < kHostsPer; ++h) {
      core::Client client(*d.runtime, d.host(j, h), "measured",
                          handles_for(d.host(j, h)), /*cache=*/8,
                          Rng(100 * j + h));
      for (int i = 0; i < kInvocationsPerClient; ++i) {
        const std::size_t src_j =
            rng.chance(0.9) ? j : rng.below(jurisdictions);
        const auto& pool = objects[src_j];
        MustCall(client, pool[rng.below(pool.size())], "Noop");
      }
    }
  }

  Outcome out;
  out.agents = d.system->binding_agents().size();
  out.max_ba_received = d.runtime->max_received_with_label("binding-agent");
  out.total_ba_received = d.runtime->received_by_label().at("binding-agent");
  return out;
}

void Run() {
  sim::Table table(
      "E2 per-Binding-Agent load: scaled agents vs one global agent "
      "(Sec 5.2.1)",
      {"jurisdictions", "hosts", "series", "agents",
       "max_requests_at_one_agent"});
  for (const std::size_t j : {std::size_t{2}, std::size_t{4}, std::size_t{8},
                              std::size_t{16}}) {
    for (const bool scaled : {true, false}) {
      const Outcome out = RunOnce(j, scaled);
      table.row({sim::Table::num(static_cast<std::uint64_t>(j)),
                 sim::Table::num(static_cast<std::uint64_t>(j * kHostsPer)),
                 scaled ? "one-agent-per-jurisdiction" : "single-global-agent",
                 sim::Table::num(static_cast<std::uint64_t>(
                     scaled ? out.agents : 1)),
                 sim::Table::num(out.max_ba_received)});
    }
  }
  table.print();
  std::printf("\nexpected shape: the scaled series stays ~flat as hosts "
              "grow 8 -> 64;\nthe single-global-agent series grows "
              "linearly — the bounded-clients claim.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
