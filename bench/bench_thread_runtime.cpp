// E11 — the model under real concurrency: a three-way runtime ablation of
// invocation throughput, scaling client threads. Section 2's non-blocking
// method invocation should let independent client/object pairs proceed in
// parallel whether each object owns an OS thread (ThreadRuntime), shares an
// M:N worker pool behind an epoll reactor (EpollRuntime), or runs under the
// single-threaded deterministic kernel (SimRuntime, the control).
#include <atomic>
#include <thread>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/epoll_runtime.hpp"
#include "rt/sim_runtime.hpp"
#include "rt/tcp_runtime.hpp"
#include "rt/thread_runtime.hpp"
#include "sim/sample_objects.hpp"
#include "sim/table.hpp"

namespace legion::bench {
namespace {

constexpr int kCallsPerThread = 2000;

double RunOnce(rt::Runtime& runtime, int client_threads,
               int calls_per_thread) {
  auto& topo = runtime.topology();
  const auto jur = topo.add_jurisdiction("j");
  std::vector<HostId> hosts;
  for (int h = 0; h < 4; ++h) {
    hosts.push_back(topo.add_host("h" + std::to_string(h), {jur}, 1e9));
  }
  core::LegionSystem system(runtime, core::SystemConfig{});
  if (!sim::RegisterSampleObjects(system.registry()).ok()) std::abort();
  if (!system.bootstrap().ok()) std::abort();

  auto setup = system.make_client(hosts[0], "setup");
  core::wire::DeriveRequest derive;
  derive.name = "Worker";
  derive.instance_impl = std::string(sim::WorkerImpl::kName);
  auto cls = setup->derive(core::LegionObjectLoid(), derive);
  if (!cls.ok()) std::abort();

  // One target object per client thread: independent pairs, no contention
  // beyond the runtime itself.
  std::vector<Loid> targets;
  std::vector<std::unique_ptr<core::Client>> clients;
  for (int t = 0; t < client_threads; ++t) {
    auto reply = setup->create(cls->loid, sim::WorkerInit(0, 0));
    if (!reply.ok()) std::abort();
    targets.push_back(reply->loid);
    clients.push_back(
        system.make_client(hosts[t % hosts.size()], "client"));
  }

  std::atomic<int> failures{0};
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int t = 0; t < client_threads; ++t) {
    threads.emplace_back([&, t, calls_per_thread] {
      for (int i = 0; i < calls_per_thread; ++i) {
        if (!clients[t]->ref(targets[t]).call("Increment", Buffer{}).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  if (failures.load() != 0) std::abort();
  return 1e6 * static_cast<double>(client_threads) * calls_per_thread /
         static_cast<double>(elapsed);
}

void Run() {
  sim::Table table(
      "E11 invocation throughput: three-way runtime ablation (Sec 2/3.3)",
      {"runtime", "client_threads", "calls_total",
       "throughput_calls_per_sec"});
  // The deterministic single-threaded kernel is the control: no sockets, no
  // scheduler, one virtual clock — the model's logical cost per call.
  {
    rt::SimRuntime runtime(/*seed=*/11);
    const double throughput = RunOnce(runtime, 1, kCallsPerThread);
    table.row({"sim (deterministic)", sim::Table::num(std::int64_t{1}),
               sim::Table::num(std::int64_t{kCallsPerThread}),
               sim::Table::num(throughput, 0)});
  }
  for (const int threads : {1, 2, 4, 8}) {
    rt::ThreadRuntime runtime;
    const double throughput = RunOnce(runtime, threads, kCallsPerThread);
    table.row({"threads (mailboxes)",
               sim::Table::num(static_cast<std::int64_t>(threads)),
               sim::Table::num(static_cast<std::int64_t>(threads) *
                               kCallsPerThread),
               sim::Table::num(throughput, 0)});
  }
  // The socket-backed series: epoll's M:N pool vs TCP's
  // thread-per-connection, both over the pooled persistent-connection
  // transport and the same 49-byte frame codec; then the per-message
  // ablation keeps the historical connect-per-frame cost visible (fewer
  // iterations: every hop dials two real sockets).
  constexpr int kTcpCalls = 1000;
  constexpr int kTcpAblationCalls = 300;
  for (const int threads : {1, 2, 4, 8}) {
    rt::EpollRuntime runtime;
    const double throughput = RunOnce(runtime, threads, kTcpCalls);
    table.row({"epoll (M:N pool)",
               sim::Table::num(static_cast<std::int64_t>(threads)),
               sim::Table::num(static_cast<std::int64_t>(threads) * kTcpCalls),
               sim::Table::num(throughput, 0)});
  }
  for (const int threads : {1, 4}) {
    rt::TcpRuntime runtime;
    const double throughput = RunOnce(runtime, threads, kTcpCalls);
    table.row({"tcp pooled sockets",
               sim::Table::num(static_cast<std::int64_t>(threads)),
               sim::Table::num(static_cast<std::int64_t>(threads) * kTcpCalls),
               sim::Table::num(throughput, 0)});
  }
  for (const int threads : {1, 4}) {
    rt::TcpOptions per_message;
    per_message.pooled = false;
    rt::TcpRuntime runtime(per_message);
    const double throughput = RunOnce(runtime, threads, kTcpAblationCalls);
    table.row({"tcp per-message (ablation)",
               sim::Table::num(static_cast<std::int64_t>(threads)),
               sim::Table::num(static_cast<std::int64_t>(threads) *
                               kTcpAblationCalls),
               sim::Table::num(throughput, 0)});
  }
  table.print();
  std::printf("\nexpected shape: the sim control gives the model's logical "
              "per-call cost;\naggregate thread/epoll throughput stays ~flat "
              "as pairs scale on a\nsingle-core host (no runtime-level "
              "contention collapse) and rises toward\nthe core count on "
              "multi-core hosts. The socket series ground the model\non real "
              "frames: epoll's M:N pool should track tcp pooled within a "
              "small\nconstant factor, and the per-message ablation shows the "
              "connection-setup\ncost the pool removes.\n(this machine: %u "
              "hardware threads)\n",
              std::thread::hardware_concurrency());
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
