// E8 — Section 4.3: system-level replication. One LOID, several processes,
// and "semantic information that describes how the list is to be used":
// send-to-all, random-one, k-of-n. Sweep replica count and semantic; report
// per-invocation fan-out cost and how evenly load spreads over replicas.
#include <algorithm>

#include "support.hpp"

namespace legion::bench {
namespace {

constexpr int kInvocations = 400;

void Run() {
  sim::Table table(
      "E8 replication via Object Address semantics (Sec 4.3)",
      {"replicas", "semantic", "msgs_per_invocation", "virtual_us_per_call",
       "replica_load_min", "replica_load_max"});

  struct SemanticCase {
    core::AddressSemantic semantic;
    std::uint32_t k;
    const char* name;
  };
  const SemanticCase semantics[] = {
      {core::AddressSemantic::kFirst, 1, "first"},
      {core::AddressSemantic::kRandomOne, 1, "random-one"},
      {core::AddressSemantic::kKOfN, 2, "2-of-n"},
      {core::AddressSemantic::kAll, 1, "all"},
  };

  for (const std::uint32_t replicas : {1u, 2u, 4u, 8u}) {
    for (const SemanticCase& sc : semantics) {
      if (sc.semantic == core::AddressSemantic::kKOfN && replicas < 2) {
        continue;
      }
      // One jurisdiction with enough hosts for every replica.
      Deployment d = MakeDeployment(1, 8, core::SystemConfig{}, 97);
      auto client = d.system->make_client(d.host(0, 0));
      const Loid cls = DeriveWorkerClass(*client, "Worker");

      auto reply = client->create_replicated(cls, sim::WorkerInit(0, 0),
                                             replicas, sc.semantic, sc.k);
      if (!reply.ok()) {
        std::fprintf(stderr, "create_replicated: %s\n",
                     reply.status().to_string().c_str());
        std::abort();
      }

      d.runtime->reset_stats();
      const SimTime t0 = d.runtime->now();
      for (int i = 0; i < kInvocations; ++i) {
        MustCall(*client, reply->loid, "Increment");
      }
      const SimTime elapsed = d.runtime->now() - t0;
      const std::uint64_t delivered = d.runtime->stats().delivered;

      // Per-replica load via each replica's counter.
      std::vector<std::int64_t> loads;
      for (const auto& element : reply->binding.address.elements()) {
        core::Binding single{reply->loid, core::ObjectAddress{element},
                             kSimTimeNever};
        auto raw = client->resolver().call_binding(single, "Get", Buffer{},
                                                   rt::EnvTriple::System(),
                                                   10'000'000);
        if (raw.ok()) {
          Reader r(*raw);
          loads.push_back(r.i64());
        }
      }
      const auto [min_it, max_it] =
          std::minmax_element(loads.begin(), loads.end());

      table.row(
          {sim::Table::num(static_cast<std::uint64_t>(replicas)), sc.name,
           sim::Table::num(static_cast<double>(delivered) / kInvocations, 2),
           sim::Table::num(static_cast<double>(elapsed) / kInvocations, 1),
           sim::Table::num(loads.empty() ? 0 : *min_it),
           sim::Table::num(loads.empty() ? 0 : *max_it)});
    }
  }
  table.print();
  std::printf("\nexpected shape: 'all' costs ~2x replicas messages per call "
              "and updates every\nreplica; 'random-one' keeps per-call cost "
              "constant while spreading load\n~evenly; 'first' concentrates "
              "everything on the primary.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
