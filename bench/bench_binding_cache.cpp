// E1 — Section 5.2.1: "Each Legion object will maintain a cache of
// bindings. Therefore, an object's Binding Agent will only be consulted on
// a local cache miss, or when a stale binding is encountered."
//
// Sweep the local cache capacity and the workload locality; report Binding
// Agent consults per 1000 invocations and the local hit rate. The claim
// holds if consults collapse once the cache covers the working set, and
// shrink further as locality rises.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kJurisdictions = 4;
constexpr std::size_t kHostsPer = 4;
constexpr std::size_t kObjectsPerJurisdiction = 48;
constexpr int kInvocationsPerClient = 2000;

void Run() {
  sim::Table table("E1 binding caches bound object->BA traffic (Sec 5.2.1)",
                   {"cache_capacity", "locality", "ba_consults_per_1k",
                    "local_hit_rate", "avg_virtual_us_per_call"});

  for (const double locality : {0.5, 0.9, 1.0}) {
    for (const std::size_t capacity : {std::size_t{0}, std::size_t{8},
                                       std::size_t{32}, std::size_t{128}}) {
      Deployment d = MakeDeployment(kJurisdictions, kHostsPer,
                                    core::SystemConfig{}, /*seed=*/17);
      auto setup_client = d.system->make_client(d.host(0, 0), "setup");

      // One class per jurisdiction; objects pinned locally (the paper's
      // department/campus locality structure).
      std::vector<Loid> objects;
      for (std::size_t j = 0; j < kJurisdictions; ++j) {
        const Loid cls = DeriveWorkerClass(
            *setup_client, "Worker" + std::to_string(j),
            {d.system->magistrate_of(d.jurisdictions[j])});
        for (std::size_t i = 0; i < kObjectsPerJurisdiction; ++i) {
          objects.push_back(CreateWorker(*setup_client, cls));
        }
      }

      // One measured client per jurisdiction with the swept cache size.
      std::vector<std::unique_ptr<core::Client>> clients;
      for (std::size_t j = 0; j < kJurisdictions; ++j) {
        clients.push_back(std::make_unique<core::Client>(
            *d.runtime, d.host(j, 0), "measured",
            d.system->handles_for(d.host(j, 0)), capacity,
            Rng(1000 + j)));
      }

      sim::LocalityMix mix(objects.size(), kJurisdictions, locality);
      Rng rng(42);
      const SimTime t0 = d.runtime->now();
      std::uint64_t consults = 0;
      std::uint64_t hits = 0;
      std::uint64_t lookups = 0;
      for (std::size_t j = 0; j < clients.size(); ++j) {
        for (int i = 0; i < kInvocationsPerClient; ++i) {
          const std::size_t target = mix.sample(j, rng);
          MustCall(*clients[j], objects[target], "Noop");
        }
        consults += clients[j]->resolver().stats().binding_agent_consults;
        hits += clients[j]->resolver().cache().stats().hits;
        lookups += clients[j]->resolver().cache().stats().hits +
                   clients[j]->resolver().cache().stats().misses;
      }
      const double total_calls =
          static_cast<double>(clients.size()) * kInvocationsPerClient;
      table.row({sim::Table::num(static_cast<std::uint64_t>(capacity)),
                 sim::Table::num(locality, 2),
                 sim::Table::num(1000.0 * static_cast<double>(consults) /
                                     total_calls,
                                 1),
                 sim::Table::num(lookups == 0
                                     ? 0.0
                                     : static_cast<double>(hits) /
                                           static_cast<double>(lookups),
                                 3),
                 sim::Table::num(static_cast<double>(d.runtime->now() - t0) /
                                     total_calls,
                                 1)});
    }
  }
  table.print();
  std::printf("\nexpected shape: consults/1k fall steeply with capacity and "
              "with locality;\nwith a working-set-sized cache the Binding "
              "Agent sees only cold misses.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
