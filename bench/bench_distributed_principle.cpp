// E5 — Section 5.2, the distributed systems principle: "the number of
// requests to any particular system component must not be an increasing
// function of the number of hosts in the system."
//
// Grow the system from 2 to 16 jurisdictions while holding per-client work
// constant (mostly-local workload, one class per jurisdiction, components
// scaled with the system). Report the maximum messages received by any
// single component of each kind.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kHostsPer = 4;
constexpr std::size_t kObjectsPerJurisdiction = 12;
constexpr int kInvocationsPerClient = 250;
constexpr int kCreatesPerClient = 6;

struct Outcome {
  std::uint64_t max_class = 0;
  std::uint64_t max_agent = 0;
  std::uint64_t max_magistrate = 0;
  std::uint64_t max_host = 0;
  std::uint64_t legion_class = 0;
};

Outcome RunOnce(std::size_t jurisdictions, std::size_t ba_fanout) {
  core::SystemConfig config;
  config.binding_agents_per_jurisdiction = 1;
  config.ba_tree_fanout = ba_fanout;
  Deployment d = MakeDeployment(jurisdictions, kHostsPer, config, 61);

  auto setup = d.system->make_client(d.host(0, 0), "setup");
  std::vector<Loid> classes;
  std::vector<std::vector<Loid>> objects(jurisdictions);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    classes.push_back(
        DeriveWorkerClass(*setup, "W" + std::to_string(j),
                          {d.system->magistrate_of(d.jurisdictions[j])}));
    for (std::size_t i = 0; i < kObjectsPerJurisdiction; ++i) {
      objects[j].push_back(CreateWorker(*setup, classes[j]));
    }
  }

  const EndpointId legion_class_endpoint =
      d.system->shell_of(core::LegionClassLoid())->endpoint();
  d.runtime->reset_stats();

  Rng rng(3);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    for (std::size_t h = 0; h < kHostsPer; ++h) {
      core::Client client(*d.runtime, d.host(j, h), "measured",
                          d.system->handles_for(d.host(j, h)), /*cache=*/16,
                          Rng(17 * j + h));
      // Mixed workload: mostly-local invocations plus some local creations
      // (creations exercise class, magistrate, and host components).
      for (int i = 0; i < kCreatesPerClient; ++i) {
        auto created = client.create(classes[j], sim::WorkerInit(0, 0));
        if (!created.ok()) std::abort();
        objects[j].push_back(created->loid);
      }
      for (int i = 0; i < kInvocationsPerClient; ++i) {
        const std::size_t src_j =
            rng.chance(0.9) ? j : rng.below(jurisdictions);
        const auto& pool = objects[src_j];
        MustCall(client, pool[rng.below(pool.size())], "Noop");
      }
    }
  }

  Outcome out;
  out.max_class = d.runtime->max_received_with_label("class");
  out.max_agent = d.runtime->max_received_with_label("binding-agent");
  out.max_magistrate = d.runtime->max_received_with_label("magistrate");
  out.max_host = d.runtime->max_received_with_label("host");
  out.legion_class = d.runtime->endpoint_stats(legion_class_endpoint).received;
  return out;
}

void Run() {
  sim::Table table(
      "E5 no component's load grows with system size (Sec 5.2)",
      {"agent_fabric", "jurisdictions", "hosts", "max@class",
       "max@binding-agent", "max@magistrate", "max@host-object",
       "LegionClass_total"});
  for (const std::size_t fanout : {std::size_t{0}, std::size_t{4}}) {
    for (const std::size_t j : {std::size_t{2}, std::size_t{4},
                                std::size_t{8}, std::size_t{16}}) {
      const Outcome out = RunOnce(j, fanout);
      table.row({fanout == 0 ? "flat" : "tree(k=4)",
                 sim::Table::num(static_cast<std::uint64_t>(j)),
                 sim::Table::num(static_cast<std::uint64_t>(j * kHostsPer)),
                 sim::Table::num(out.max_class),
                 sim::Table::num(out.max_agent),
                 sim::Table::num(out.max_magistrate),
                 sim::Table::num(out.max_host),
                 sim::Table::num(out.legion_class)});
    }
  }
  table.print();
  std::printf("\nexpected shape: every max@ column stays roughly flat from 8 "
              "to 64 hosts\n(per-component load tracks per-jurisdiction "
              "work, not system size).\nIn the flat fabric LegionClass "
              "absorbs each agent's cold class lookups —\nthe growth the "
              "Section 5.2.2 combining tree (second series) removes.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
