// E15 — failure detection & automatic reactivation. The responsible class
// object (not any central service) sweeps its own instances, condemns a
// host after consecutive missed probes, and restarts every lost instance
// from its checkpointed OPR. The cost of recovery must therefore scale
// with the *class's* population on the failed host — not with the total
// size of the system, which holds arbitrarily many objects of other
// classes that this class object never probes.
//
// Sweep A: grow the victim class's instance count on the doomed host.
// Sweep B: fix the victims, grow unrelated ballast elsewhere in the system.
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr SimTime kSweepIntervalUs = 500'000;
constexpr SimTime kStepUs = 100'000;
// Give up if a run ever fails to converge (it never should).
constexpr SimTime kDeadlineUs = 600'000'000;

struct Outcome {
  SimTime detect_us = 0;    // outage -> host condemned (first reactivation)
  SimTime recover_us = 0;   // outage -> every victim reactivated
  std::uint32_t reactivated = 0;
};

core::wire::SweepReply MustSweep(core::Client& client, const Loid& cls) {
  auto raw = client.ref(cls).call(core::methods::kSweepInstances, Buffer{});
  if (!raw.ok()) {
    std::fprintf(stderr, "sweep: %s\n", raw.status().to_string().c_str());
    std::abort();
  }
  auto reply = core::wire::SweepReply::from_buffer(*raw);
  if (!reply.ok()) std::abort();
  return *reply;
}

Loid MustCreateOn(core::Client& client, const Loid& cls, const Loid& mag,
                  const Loid& host_object) {
  auto reply = client.create(cls, sim::WorkerInit(0, 0), {mag}, host_object);
  if (!reply.ok()) {
    std::fprintf(stderr, "create: %s\n", reply.status().to_string().c_str());
    std::abort();
  }
  return reply->loid;
}

Outcome RunOnce(std::size_t victims, std::size_t ballast) {
  Deployment d = MakeDeployment(2, 4, core::SystemConfig{});
  auto client = d.system->make_client(d.host(0, 0), "bench");

  // Victim class: all instances pinned to one j0 host that carries no
  // bootstrap component, so only instances die with it.
  const Loid mag0 = d.system->magistrate_of(d.jurisdictions[0]);
  const Loid victim_class = DeriveWorkerClass(*client, "Victim", {mag0});
  const HostId doomed = d.host(0, 2);
  for (std::size_t i = 0; i < victims; ++i) {
    MustCreateOn(*client, victim_class, mag0,
                 d.system->host_object_of(doomed));
  }

  // Ballast: a different class, spread across the other jurisdiction. The
  // victim class object has no reason to ever probe these hosts.
  const Loid mag1 = d.system->magistrate_of(d.jurisdictions[1]);
  const Loid ballast_class = DeriveWorkerClass(*client, "Ballast", {mag1});
  for (std::size_t i = 0; i < ballast; ++i) {
    CreateWorker(*client, ballast_class, {mag1});
  }

  d.runtime->faults().take_host_down(doomed);
  const SimTime outage = d.runtime->now();

  Outcome out;
  sim::PeriodicTick sweeper(kSweepIntervalUs, outage);
  while (out.reactivated < victims &&
         d.runtime->now() - outage < kDeadlineUs) {
    d.runtime->advance(kStepUs);
    if (!sweeper.due(d.runtime->now())) continue;
    const auto reply = MustSweep(*client, victim_class);
    if (reply.reactivated > 0 && out.reactivated == 0) {
      out.detect_us = d.runtime->now() - outage;
    }
    out.reactivated += reply.reactivated;
  }
  out.recover_us = d.runtime->now() - outage;
  return out;
}

void Run() {
  sim::Table a("E15a time-to-recover vs victim-class instances on the "
               "failed host",
               {"victims", "ballast_objects", "reactivated",
                "detect_virtual_ms", "recover_virtual_ms"});
  for (const std::size_t victims : {4u, 8u, 16u, 32u, 64u}) {
    const Outcome out = RunOnce(victims, 0);
    a.row({sim::Table::num(static_cast<std::uint64_t>(victims)),
           sim::Table::num(std::uint64_t{0}),
           sim::Table::num(std::uint64_t{out.reactivated}),
           sim::Table::num(out.detect_us / 1000.0, 1),
           sim::Table::num(out.recover_us / 1000.0, 1)});
  }
  a.print();

  sim::Table b("E15b time-to-recover vs unrelated system size (16 victims "
               "fixed)",
               {"victims", "ballast_objects", "reactivated",
                "detect_virtual_ms", "recover_virtual_ms"});
  for (const std::size_t ballast : {0u, 32u, 64u, 128u, 256u}) {
    const Outcome out = RunOnce(16, ballast);
    b.row({sim::Table::num(std::uint64_t{16}),
           sim::Table::num(static_cast<std::uint64_t>(ballast)),
           sim::Table::num(std::uint64_t{out.reactivated}),
           sim::Table::num(out.detect_us / 1000.0, 1),
           sim::Table::num(out.recover_us / 1000.0, 1)});
  }
  b.print();

  std::printf(
      "\nexpected shape: E15a's recovery time grows with the number of the\n"
      "class's own instances on the dead host (detection stays flat — it is\n"
      "a fixed number of missed probes). E15b stays ~flat as unrelated\n"
      "objects are added: responsibility for recovery is distributed to\n"
      "class objects, so nobody pays for the whole system.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
