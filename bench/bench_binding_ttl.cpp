// E13 (ablation) — binding expiry vs. repair-on-failure.
//
// Section 3.5 gives bindings "a field that specifies the time that the
// binding becomes invalid", which "may be set to some value that indicates
// that the binding will never become explicitly invalid". This ablation
// quantifies the design space under object migration: infinite TTL repairs
// lazily (failed send -> refresh), short TTLs re-resolve proactively
// (fewer failed sends, more Binding Agent traffic).
#include "support.hpp"

namespace legion::bench {
namespace {

constexpr std::size_t kObjects = 24;
constexpr int kBatches = 16;
constexpr int kCallsPerBatch = 48;
constexpr double kMigrationFraction = 0.25;

struct Outcome {
  double retries_per_call = 0;
  double ba_consults_per_call = 0;
  double avg_us_per_call = 0;
};

Outcome RunOnce(SimTime ttl_us) {
  // Bridge-host topology (as in E9): migration never changes the latency
  // class seen by the measuring client.
  auto runtime = std::make_unique<rt::SimRuntime>(67);
  auto& topo = runtime->topology();
  const auto j0 = topo.add_jurisdiction("j0");
  const auto j1 = topo.add_jurisdiction("j1");
  for (int h = 0; h < 3; ++h) topo.add_host("j0-h" + std::to_string(h), {j0}, 1e9);
  for (int h = 0; h < 3; ++h) topo.add_host("j1-h" + std::to_string(h), {j1}, 1e9);
  const HostId bridge = topo.add_host("bridge", {j0, j1}, 1e9);

  core::SystemConfig config;
  config.binding_ttl_us = ttl_us;
  auto system = std::make_unique<core::LegionSystem>(*runtime, config);
  if (!sim::RegisterSampleObjects(system->registry()).ok()) std::abort();
  if (!system->bootstrap().ok()) std::abort();
  Deployment d;
  d.runtime = std::move(runtime);
  d.system = std::move(system);

  auto admin = d.system->make_client(bridge, "admin");
  const Loid mags[2] = {d.system->magistrate_of(j0),
                        d.system->magistrate_of(j1)};
  const Loid cls = DeriveWorkerClass(*admin, "Worker", {mags[0]});
  std::vector<Loid> objects;
  std::vector<int> location(kObjects, 0);
  for (std::size_t i = 0; i < kObjects; ++i) {
    objects.push_back(CreateWorker(*admin, cls, {mags[0]}));
  }

  core::Client client(*d.runtime, bridge, "measured",
                      d.system->handles_for(bridge), /*cache=*/256, Rng(3));
  for (const Loid& object : objects) MustCall(client, object, "Noop");
  client.resolver().reset_stats();

  Rng rng(7);
  SimTime busy_us = 0;
  int calls = 0;
  for (int batch = 0; batch < kBatches; ++batch) {
    // Think time between batches: this is when short TTLs expire.
    d.runtime->advance(600'000);
    const auto to_move =
        static_cast<std::size_t>(kMigrationFraction * kObjects);
    for (std::size_t m = 0; m < to_move; ++m) {
      const std::size_t pick = rng.below(kObjects);
      const int from = location[pick];
      core::wire::TransferRequest req{objects[pick], mags[1 - from]};
      if (admin->ref(mags[from])
              .call(core::methods::kMove, req.to_buffer())
              .ok()) {
        location[pick] = 1 - from;
      }
    }
    const SimTime t0 = d.runtime->now();
    for (int i = 0; i < kCallsPerBatch; ++i) {
      MustCall(client, objects[rng.below(kObjects)], "Noop");
      ++calls;
    }
    busy_us += d.runtime->now() - t0;
  }

  Outcome out;
  out.retries_per_call =
      static_cast<double>(client.resolver().stats().stale_retries) / calls;
  out.ba_consults_per_call =
      static_cast<double>(client.resolver().stats().binding_agent_consults) /
      calls;
  out.avg_us_per_call = static_cast<double>(busy_us) / calls;
  return out;
}

void Run() {
  sim::Table table(
      "E13 binding TTL ablation under migration (Sec 3.5)",
      {"binding_ttl", "stale_retries_per_call", "ba_consults_per_call",
       "avg_virtual_us_per_call"});
  struct TtlCase {
    SimTime ttl;
    const char* name;
  };
  for (const TtlCase& c :
       {TtlCase{kSimTimeNever, "never (repair on failure)"},
        TtlCase{5'000'000, "5s"}, TtlCase{1'000'000, "1s"},
        TtlCase{200'000, "200ms"}}) {
    const Outcome out = RunOnce(c.ttl);
    table.row({c.name, sim::Table::num(out.retries_per_call, 3),
               sim::Table::num(out.ba_consults_per_call, 3),
               sim::Table::num(out.avg_us_per_call, 1)});
  }
  table.print();
  std::printf("\nexpected shape: shorter TTLs trade failed-send repairs "
              "(stale retries)\nfor proactive re-resolution (BA consults); "
              "infinite TTL minimizes agent\ntraffic and pays only when "
              "objects actually moved.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
