// Transport ablation: persistent pooled connections vs. the historical
// connect-per-message path, on the raw Messenger request/reply loop over
// TCP loopback. This isolates what E11 measures through the whole Legion
// stack: before pooling, per-message connection setup — not the object
// model — dominated the TCP series. Target: the pooled transport delivers
// >= 5x the per-message calls/s at one client pair.
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "rt/messenger.hpp"
#include "rt/tcp_runtime.hpp"
#include "sim/table.hpp"

namespace legion::bench {
namespace {

constexpr int kCallsPerPair = 4000;

double RunOnce(const rt::TcpOptions& options, int pairs, int calls_per_pair) {
  rt::TcpRuntime runtime(options);
  auto& topo = runtime.topology();
  const auto jur = topo.add_jurisdiction("j");
  const HostId h1 = topo.add_host("h1", {jur}, 1e9);
  const HostId h2 = topo.add_host("h2", {jur}, 1e9);

  std::vector<std::unique_ptr<rt::Messenger>> servers;
  std::vector<std::unique_ptr<rt::Messenger>> clients;
  for (int p = 0; p < pairs; ++p) {
    servers.push_back(std::make_unique<rt::Messenger>(
        runtime, h2, "server", rt::ExecutionMode::kServiced,
        [](rt::ServerContext&, Reader& args) -> Result<Buffer> {
          return Buffer::FromString(args.str());
        }));
    clients.push_back(std::make_unique<rt::Messenger>(
        runtime, h1, "client", rt::ExecutionMode::kDriver, nullptr));
  }

  auto one_call = [](rt::Messenger& client, rt::Messenger& server) {
    Buffer args;
    Writer w(args);
    w.str("0123456789abcdef0123456789abcdef0123456789abcdef");  // 48 B
    auto reply = client.call(server.endpoint(), "Echo", std::move(args),
                             rt::EnvTriple::System(), 5'000'000);
    if (!reply.ok()) std::abort();
  };
  // Warm the pool (and page everything in) outside the timed window.
  for (int p = 0; p < pairs; ++p) one_call(*clients[p], *servers[p]);

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> threads;
  for (int p = 0; p < pairs; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < calls_per_pair; ++i) {
        one_call(*clients[p], *servers[p]);
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  return 1e6 * static_cast<double>(pairs) * calls_per_pair /
         static_cast<double>(elapsed);
}

void Run() {
  sim::Table table(
      "TCP transport ablation: pooled persistent connections vs "
      "connect-per-message (Sec 3.3)",
      {"transport", "pairs", "calls_total", "throughput_calls_per_sec",
       "speedup_vs_per_message"});
  for (const int pairs : {1, 4}) {
    rt::TcpOptions per_message;
    per_message.pooled = false;
    const double baseline = RunOnce(per_message, pairs, kCallsPerPair);
    const double pooled = RunOnce(rt::TcpOptions{}, pairs, kCallsPerPair);
    table.row({"per-message connect",
               sim::Table::num(static_cast<std::int64_t>(pairs)),
               sim::Table::num(static_cast<std::int64_t>(pairs) *
                               kCallsPerPair),
               sim::Table::num(baseline, 0), "1.00"});
    table.row({"pooled persistent",
               sim::Table::num(static_cast<std::int64_t>(pairs)),
               sim::Table::num(static_cast<std::int64_t>(pairs) *
                               kCallsPerPair),
               sim::Table::num(pooled, 0),
               sim::Table::num(pooled / baseline, 2)});
  }
  table.print();
  std::printf(
      "\nexpected shape: the pooled transport removes two connect/accept\n"
      "exchanges per call (request + reply each dialed a fresh socket), so\n"
      "per-pair throughput rises >= 5x; the residual cost is two framed\n"
      "writes and two wakeups — the model itself, at socket prices.\n");
}

}  // namespace
}  // namespace legion::bench

int main() { legion::bench::Run(); }
