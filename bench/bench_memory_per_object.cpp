// E16 — packed core tables hold millions of entries without per-entry heap
// nodes (ROADMAP "compact, cache-friendly core tables"; paper §3.7 / §4.1
// put the logical table and binding caches on the million-object hot path).
//
// Sweeps 10^4..10^7 entries through the dense-id LogicalTable and
// BindingCache and reports, per size:
//   bytes_per_object   structure residency (interner + segments) / entries —
//                      deterministic, computed from the containers' own
//                      accounting, excluding payload heap the caller owns.
//   *_allocs_per_1k    global operator-new invocations per 1000 operations,
//                      counted by overriding operator new in this binary.
//                      Fill shows O(entries / segment) segment allocation;
//                      steady-state refreshes show ~0: no per-entry nodes.
//   lookup/hit ns      wall-clock per lookup — machine-dependent, excluded
//                      from the CI shape gate by the two-run masking in
//                      scripts/check_bench_shapes.py; the claim (flat from
//                      10^4 to 10^7) is recorded in EXPERIMENTS.md.
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <new>
#include <vector>

#include "base/rng.hpp"
#include "core/binding_cache.hpp"
#include "core/logical_table.hpp"
#include "sim/table.hpp"

namespace {
std::atomic<std::uint64_t> g_allocs{0};
}  // namespace

void* operator new(std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
void* operator new[](std::size_t n) {
  g_allocs.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n != 0 ? n : 1)) return p;
  throw std::bad_alloc{};
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace legion::bench {
namespace {

constexpr std::uint64_t kClassId = 7;
constexpr std::size_t kLookups = 1'000'000;

[[nodiscard]] double Ns(std::chrono::steady_clock::duration d,
                        std::size_t ops) {
  return static_cast<double>(
             std::chrono::duration_cast<std::chrono::nanoseconds>(d).count()) /
         static_cast<double>(ops);
}

void RunLogicalTable(sim::Table& out, std::size_t entries) {
  core::LogicalTable table;
  const std::uint64_t fill_start = g_allocs.load(std::memory_order_relaxed);
  for (std::size_t i = 0; i < entries; ++i) {
    core::TableRow row;
    row.loid = Loid{kClassId, i + 1};
    row.kind = core::RowKind::kInstance;
    table.upsert(std::move(row));
  }
  const std::uint64_t fill_allocs =
      g_allocs.load(std::memory_order_relaxed) - fill_start;

  Rng rng(17);
  std::uint64_t found = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kLookups; ++i) {
    const Loid probe{kClassId, rng.below(entries) + 1};
    if (table.find(probe) != nullptr) ++found;
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  if (found != kLookups) std::abort();  // every probe names a live row

  out.row({sim::Table::num(static_cast<std::uint64_t>(entries)),
           sim::Table::num(static_cast<double>(table.allocated_bytes()) /
                               static_cast<double>(entries),
                           1),
           sim::Table::num(static_cast<double>(fill_allocs) * 1000.0 /
                               static_cast<double>(entries),
                           2),
           sim::Table::num(Ns(elapsed, kLookups), 3)});
}

[[nodiscard]] core::Binding MakeBinding(std::uint64_t n) {
  core::Binding b;
  b.loid = Loid{kClassId, n};
  b.address = core::ObjectAddress{core::ObjectAddressElement::Sim(EndpointId{n})};
  return b;
}

void RunBindingCache(sim::Table& out, std::size_t entries) {
  core::BindingCache cache(entries);
  for (std::size_t i = 0; i < entries; ++i) {
    cache.put(MakeBinding(i + 1));
  }

  // Steady state: refresh existing entries with pre-built payloads, so the
  // only allocations the loop could perform are the cache's own. The packed
  // layout performs none.
  Rng rng(23);
  constexpr std::size_t kRefreshes = 100'000;
  std::vector<core::Binding> prebuilt;
  prebuilt.reserve(kRefreshes);
  for (std::size_t i = 0; i < kRefreshes; ++i) {
    prebuilt.push_back(MakeBinding(rng.below(entries) + 1));
  }
  const std::uint64_t steady_start = g_allocs.load(std::memory_order_relaxed);
  for (auto& binding : prebuilt) {
    cache.put(std::move(binding));
  }
  const std::uint64_t steady_allocs =
      g_allocs.load(std::memory_order_relaxed) - steady_start;

  std::uint64_t hits = 0;
  const auto t0 = std::chrono::steady_clock::now();
  for (std::size_t i = 0; i < kLookups; ++i) {
    const Loid probe{kClassId, rng.below(entries) + 1};
    if (cache.get(probe, /*now=*/0).has_value()) ++hits;
  }
  const auto elapsed = std::chrono::steady_clock::now() - t0;
  if (hits != kLookups) std::abort();  // capacity == entries: no evictions

  out.row({sim::Table::num(static_cast<std::uint64_t>(entries)),
           sim::Table::num(static_cast<double>(cache.allocated_bytes()) /
                               static_cast<double>(entries),
                           1),
           sim::Table::num(static_cast<double>(steady_allocs) * 1000.0 /
                               static_cast<double>(kRefreshes),
                           2),
           sim::Table::num(Ns(elapsed, kLookups), 3)});
}

void Run() {
  sim::Table logical(
      "E16a logical table density (dense ids + segmented rows)",
      {"entries", "bytes_per_object", "fill_allocs_per_1k", "lookup_ns"});
  sim::Table cache(
      "E16b binding cache density (intrusive uint32 LRU)",
      {"entries", "bytes_per_object", "steady_put_allocs_per_1k", "hit_ns"});
  for (const std::size_t entries :
       {std::size_t{10'000}, std::size_t{100'000}, std::size_t{1'000'000},
        std::size_t{10'000'000}}) {
    RunLogicalTable(logical, entries);
    RunBindingCache(cache, entries);
  }
  logical.print();
  cache.print();
}

}  // namespace
}  // namespace legion::bench

int main() {
  legion::bench::Run();
  return 0;
}
