#include "security/policy.hpp"

#include <gtest/gtest.h>

namespace legion::security {
namespace {

rt::EnvTriple Caller(Loid who) {
  return rt::EnvTriple{who, who, who};
}

TEST(PolicyTest, AllowAllAlwaysConsents) {
  AllowAll p;
  EXPECT_TRUE(p.MayI("Anything", rt::EnvTriple::System()).ok());
  EXPECT_TRUE(p.MayI("Delete", Caller(Loid{9, 9})).ok());
}

TEST(PolicyTest, DenyAllAlwaysRefuses) {
  DenyAll p;
  EXPECT_EQ(p.MayI("Ping", rt::EnvTriple::System()).code(),
            StatusCode::kPermissionDenied);
}

TEST(PolicyTest, SystemEnvDetection) {
  EXPECT_TRUE(IsSystemEnv(rt::EnvTriple::System()));
  EXPECT_FALSE(IsSystemEnv(Caller(Loid{1, 1})));
}

TEST(CallerAclTest, AdmitsListedCallers) {
  CallerAcl acl({Loid{3, 1}, Loid{3, 2}}, /*allow_system=*/false);
  EXPECT_TRUE(acl.MayI("M", Caller(Loid{3, 1})).ok());
  EXPECT_TRUE(acl.MayI("M", Caller(Loid{3, 2})).ok());
  EXPECT_EQ(acl.MayI("M", Caller(Loid{3, 3})).code(),
            StatusCode::kPermissionDenied);
}

TEST(CallerAclTest, SystemAdmissionIsExplicit) {
  CallerAcl closed({}, /*allow_system=*/false);
  EXPECT_EQ(closed.MayI("M", rt::EnvTriple::System()).code(),
            StatusCode::kPermissionDenied);
  CallerAcl open({}, /*allow_system=*/true);
  EXPECT_TRUE(open.MayI("M", rt::EnvTriple::System()).ok());
}

TEST(TrustedClassPolicyTest, TrustsByCallersClass) {
  // The DOE scenario (Section 2.1.3): accept requests only from instances
  // of classes the organization certified.
  TrustedClassPolicy p({42, 43}, /*allow_system=*/false);
  EXPECT_TRUE(p.MayI("Activate", Caller(Loid{42, 7})).ok());
  EXPECT_TRUE(p.MayI("Activate", Caller(Loid{43, 1})).ok());
  EXPECT_EQ(p.MayI("Activate", Caller(Loid{44, 7})).code(),
            StatusCode::kPermissionDenied);
}

TEST(MethodGuardTest, GuardsOnlyListedMethods) {
  auto guard = MethodGuard({"Delete", "Move"}, MakeDenyAll(), MakeAllowAll());
  EXPECT_TRUE(guard.MayI("GetBinding", Caller(Loid{1, 1})).ok());
  EXPECT_EQ(guard.MayI("Delete", Caller(Loid{1, 1})).code(),
            StatusCode::kPermissionDenied);
  EXPECT_EQ(guard.MayI("Move", rt::EnvTriple::System()).code(),
            StatusCode::kPermissionDenied);
}

TEST(MethodGuardTest, NullPoliciesDefaultToAllow) {
  MethodGuard guard({"X"}, nullptr, nullptr);
  EXPECT_TRUE(guard.MayI("X", Caller(Loid{1, 1})).ok());
  EXPECT_TRUE(guard.MayI("Y", Caller(Loid{1, 1})).ok());
}

TEST(AllOfTest, EveryPolicyMustConsent) {
  auto acl = std::make_shared<CallerAcl>(std::vector<Loid>{Loid{5, 1}},
                                         /*allow_system=*/false);
  auto trusted = std::make_shared<TrustedClassPolicy>(
      std::vector<std::uint64_t>{5}, /*allow_system=*/false);
  AllOf both({acl, trusted});
  EXPECT_TRUE(both.MayI("M", Caller(Loid{5, 1})).ok());
  // Right class, not on ACL:
  EXPECT_EQ(both.MayI("M", Caller(Loid{5, 2})).code(),
            StatusCode::kPermissionDenied);
}

TEST(AllOfTest, EmptyCompositeConsents) {
  AllOf none({});
  EXPECT_TRUE(none.MayI("M", Caller(Loid{1, 1})).ok());
}

}  // namespace
}  // namespace legion::security
