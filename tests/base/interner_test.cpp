#include "base/interner.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

#include "base/loid.hpp"

namespace legion {
namespace {

TEST(InternerTest, AssignsDenseIdsInInsertionOrder) {
  Interner<std::string> interner;
  EXPECT_EQ(interner.intern("alpha"), 0u);
  EXPECT_EQ(interner.intern("beta"), 1u);
  EXPECT_EQ(interner.intern("gamma"), 2u);
  EXPECT_EQ(interner.intern("beta"), 1u);  // duplicate: same id
  EXPECT_EQ(interner.size(), 3u);
  EXPECT_EQ(interner.key_of(0), "alpha");
  EXPECT_EQ(interner.key_of(2), "gamma");
}

TEST(InternerTest, FindDoesNotIntern) {
  Interner<std::string> interner;
  EXPECT_EQ(interner.find("missing"), Interner<std::string>::kNoId);
  (void)interner.intern("present");
  EXPECT_EQ(interner.find("present"), 0u);
  EXPECT_EQ(interner.find("missing"), Interner<std::string>::kNoId);
  EXPECT_EQ(interner.size(), 1u);
}

TEST(InternerTest, SurvivesRehashing) {
  Interner<std::uint64_t> interner;
  constexpr std::uint64_t kCount = 50'000;  // forces many doublings
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(interner.intern(i * 31), i);
  }
  for (std::uint64_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(interner.find(i * 31), i);
    ASSERT_EQ(interner.key_of(static_cast<std::uint32_t>(i)), i * 31);
  }
  EXPECT_EQ(interner.find(kCount * 31), (Interner<std::uint64_t>::kNoId));
}

TEST(InternerTest, ClearResets) {
  Interner<std::string> interner;
  (void)interner.intern("a");
  (void)interner.intern("b");
  interner.clear();
  EXPECT_EQ(interner.size(), 0u);
  EXPECT_EQ(interner.find("a"), Interner<std::string>::kNoId);
  EXPECT_EQ(interner.intern("b"), 0u);  // ids restart dense
}

TEST(InternerTest, LoidInternerUsesIdentityBits) {
  // LOID equality ignores the public key (Section 4.1.3's locating trick),
  // so interning must collapse key'd and keyless spellings to one id.
  LoidInterner interner;
  const Loid with_key{5, 9, {0xAA, 0xBB}};
  const Loid without_key{5, 9};
  EXPECT_EQ(interner.intern(with_key), interner.intern(without_key));
  EXPECT_EQ(interner.size(), 1u);
  EXPECT_EQ(interner.find(without_key), 0u);
}

}  // namespace
}  // namespace legion
