#include "base/buffer.hpp"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(BufferTest, StartsEmpty) {
  Buffer b;
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.size(), 0u);
}

TEST(BufferTest, FromStringRoundTrips) {
  Buffer b = Buffer::FromString("legion");
  EXPECT_EQ(b.size(), 6u);
  EXPECT_EQ(b.as_string(), "legion");
}

TEST(BufferTest, AppendGrows) {
  Buffer b;
  const char first[] = {'a', 'b'};
  b.append(first, 2);
  Buffer tail = Buffer::FromString("cd");
  b.append(tail.span());
  EXPECT_EQ(b.as_string(), "abcd");
}

TEST(BufferTest, EqualityIsByteWise) {
  EXPECT_EQ(Buffer::FromString("x"), Buffer::FromString("x"));
  EXPECT_FALSE(Buffer::FromString("x") == Buffer::FromString("y"));
}

TEST(BufferTest, ClearEmpties) {
  Buffer b = Buffer::FromString("data");
  b.clear();
  EXPECT_TRUE(b.empty());
}

}  // namespace
}  // namespace legion
