#include "base/segmented_vector.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>

namespace legion {
namespace {

TEST(SegmentedVectorTest, PushBackAcrossSegmentBoundaries) {
  SegmentedVector<std::uint64_t> v;
  constexpr std::size_t kCount =
      SegmentedVector<std::uint64_t>::kElementsPerSegment * 3 + 7;
  for (std::size_t i = 0; i < kCount; ++i) v.push_back(i * 2);
  ASSERT_EQ(v.size(), kCount);
  for (std::size_t i = 0; i < kCount; ++i) EXPECT_EQ(v[i], i * 2);
  EXPECT_EQ(v.segment_count(), 4u);
}

TEST(SegmentedVectorTest, ReferencesStayValidAcrossGrowth) {
  SegmentedVector<std::uint64_t> v;
  v.push_back(42);
  const std::uint64_t* first = &v[0];
  for (std::size_t i = 0; i < 100'000; ++i) v.push_back(i);
  EXPECT_EQ(first, &v[0]);  // segments never move
  EXPECT_EQ(*first, 42u);
}

TEST(SegmentedVectorTest, ResizeGrowsWithValueInitializedSlots) {
  SegmentedVector<std::uint64_t> v;
  v.push_back(9);
  v.resize(5000);
  EXPECT_EQ(v.size(), 5000u);
  EXPECT_EQ(v[0], 9u);
  EXPECT_EQ(v[4999], 0u);
  v.resize(10);  // never shrinks
  EXPECT_EQ(v.size(), 5000u);
}

TEST(SegmentedVectorTest, ClearReleasesSegments) {
  SegmentedVector<std::uint64_t> v;
  for (std::size_t i = 0; i < 10'000; ++i) v.push_back(i);
  EXPECT_GT(v.allocated_bytes(), 0u);
  v.clear();
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.segment_count(), 0u);
  EXPECT_EQ(v.allocated_bytes(), 0u);
}

TEST(SegmentedVectorTest, CopyIsDeep) {
  SegmentedVector<std::string> v;
  for (int i = 0; i < 3000; ++i) v.push_back("val" + std::to_string(i));
  SegmentedVector<std::string> copy(v);
  ASSERT_EQ(copy.size(), v.size());
  copy[7] = "mutated";
  EXPECT_EQ(v[7], "val7");
  EXPECT_EQ(copy[2999], "val2999");
  v = copy;
  EXPECT_EQ(v[7], "mutated");
}

TEST(SegmentedVectorTest, AllocationCountIsSublinear) {
  // The packed-table claim at its root: N elements cost O(N / K) segment
  // allocations, not O(N).
  SegmentedVector<std::uint64_t> v;
  constexpr std::size_t kCount = 100'000;
  for (std::size_t i = 0; i < kCount; ++i) v.push_back(i);
  EXPECT_LE(v.segment_count(),
            kCount / SegmentedVector<std::uint64_t>::kElementsPerSegment + 1);
}

}  // namespace
}  // namespace legion
