#include "base/loid.hpp"

#include <gtest/gtest.h>

#include <unordered_set>

namespace legion {
namespace {

TEST(LoidTest, DefaultIsInvalidNil) {
  Loid l;
  EXPECT_FALSE(l.valid());
  EXPECT_FALSE(l.names_class_object());
}

TEST(LoidTest, ClassLoidHasZeroClassSpecific) {
  // Paper Section 3.7: "Conventionally, the Class Specific portion of a
  // class object's LOID is set to zero."
  Loid c = Loid::ForClass(7);
  EXPECT_TRUE(c.valid());
  EXPECT_TRUE(c.names_class_object());
  EXPECT_EQ(c.class_id(), 7u);
  EXPECT_EQ(c.class_specific(), 0u);
}

TEST(LoidTest, InstanceLoidIsNotAClassLoid) {
  Loid o{7, 42};
  EXPECT_TRUE(o.valid());
  EXPECT_FALSE(o.names_class_object());
}

TEST(LoidTest, ResponsibleClassZeroesClassSpecific) {
  // Paper Section 4.1.3: the responsible class of any non-class object is
  // found by zeroing the class-specific field.
  Loid o{9, 1234};
  Loid c = o.responsible_class();
  EXPECT_EQ(c.class_id(), 9u);
  EXPECT_EQ(c.class_specific(), 0u);
  EXPECT_TRUE(c.names_class_object());
}

TEST(LoidTest, EqualityUsesIdentityBitsOnly) {
  // Section 4.1.3's class-id-zeroing trick names the responsible class
  // without knowing its public key, so naming equality must ignore the key.
  Loid a{1, 2, {0xAA}};
  Loid b{1, 2, {0xBB}};
  Loid c{1, 2, {0xAA}};
  EXPECT_EQ(a, c);
  EXPECT_EQ(a, b);
  EXPECT_TRUE(a.identical_including_key(c));
  EXPECT_FALSE(a.identical_including_key(b));
  EXPECT_FALSE(Loid(1, 2) == Loid(1, 3));
  EXPECT_FALSE(Loid(1, 2) == Loid(2, 2));
}

TEST(LoidTest, ToStringIncludesKeyHex) {
  Loid l{3, 14, {0xDE, 0xAD}};
  EXPECT_EQ(l.to_string(), "L3.14:dead");
  EXPECT_EQ(Loid(3, 14).to_string(), "L3.14");
}

TEST(LoidTest, SerializeRoundTrips) {
  Loid in{88, 1024, {1, 2, 3, 4}};
  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  EXPECT_EQ(Loid::Deserialize(r), in);
  EXPECT_TRUE(r.ok());
}

TEST(LoidTest, HashSpreadsSequentialInstances) {
  // Classes commonly use the class-specific field as a sequence number
  // (Section 3.2); the hash must not collapse such LOIDs.
  std::unordered_set<std::size_t> hashes;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    hashes.insert(LoidHash{}(Loid{42, i}));
  }
  EXPECT_GT(hashes.size(), 995u);
}

TEST(LoidTest, OrderingIsTotal) {
  Loid a{1, 1};
  Loid b{1, 2};
  Loid c{2, 0};
  EXPECT_TRUE(a < b);
  EXPECT_TRUE(b < c);
  EXPECT_TRUE(a < c);
  EXPECT_FALSE(a < a);
}

class LoidIdentitySweep
    : public ::testing::TestWithParam<std::pair<std::uint64_t, std::uint64_t>> {
};

TEST_P(LoidIdentitySweep, RoundTripPreservesFields) {
  const auto [cls, inst] = GetParam();
  Loid in{cls, inst};
  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  Loid out = Loid::Deserialize(r);
  EXPECT_EQ(out.class_id(), cls);
  EXPECT_EQ(out.class_specific(), inst);
}

INSTANTIATE_TEST_SUITE_P(
    FieldPatterns, LoidIdentitySweep,
    ::testing::Values(std::pair{0ULL, 1ULL}, std::pair{1ULL, 0ULL},
                      std::pair{UINT64_MAX, UINT64_MAX},
                      std::pair{UINT64_MAX, 0ULL},
                      std::pair{0x8000000000000000ULL, 0x7FFFFFFFFFFFFFFFULL}));

}  // namespace
}  // namespace legion
