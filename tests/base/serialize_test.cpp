#include "base/serialize.hpp"

#include <gtest/gtest.h>

#include <limits>

#include "base/loid.hpp"

namespace legion {
namespace {

TEST(SerializeTest, PrimitiveRoundTrip) {
  Buffer buf;
  Writer w(buf);
  w.u8(0xAB);
  w.u16(0xBEEF);
  w.u32(0xDEADBEEF);
  w.u64(0x0123456789ABCDEFULL);
  w.i64(-42);
  w.f64(3.14159);
  w.boolean(true);
  w.boolean(false);

  Reader r(buf);
  EXPECT_EQ(r.u8(), 0xAB);
  EXPECT_EQ(r.u16(), 0xBEEF);
  EXPECT_EQ(r.u32(), 0xDEADBEEFu);
  EXPECT_EQ(r.u64(), 0x0123456789ABCDEFULL);
  EXPECT_EQ(r.i64(), -42);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_TRUE(r.boolean());
  EXPECT_FALSE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
}

TEST(SerializeTest, StringsAndBytes) {
  Buffer buf;
  Writer w(buf);
  w.str("hello legion");
  w.str("");
  Buffer inner = Buffer::FromString("\x00\x01\x02");
  w.buffer(inner);

  Reader r(buf);
  EXPECT_EQ(r.str(), "hello legion");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.buffer().size(), inner.size());
  EXPECT_TRUE(r.ok());
}

TEST(SerializeTest, LittleEndianLayout) {
  Buffer buf;
  Writer w(buf);
  w.u32(0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(buf.data()[0], 0x04);
  EXPECT_EQ(buf.data()[3], 0x01);
}

TEST(SerializeTest, ShortReadTripsStickyFailure) {
  Buffer buf;
  Writer w(buf);
  w.u16(7);
  Reader r(buf);
  (void)r.u64();  // needs 8 bytes, only 2 available
  EXPECT_FALSE(r.ok());
  // All subsequent reads return zero values without touching memory.
  EXPECT_EQ(r.u32(), 0u);
  EXPECT_EQ(r.str(), "");
}

TEST(SerializeTest, HostileLengthPrefixIsRejected) {
  Buffer buf;
  Writer w(buf);
  w.u32(std::numeric_limits<std::uint32_t>::max());  // claims 4 GiB follow
  Reader r(buf);
  EXPECT_TRUE(r.bytes().empty());
  EXPECT_FALSE(r.ok());
}

TEST(SerializeTest, VectorOfSerializablesRoundTrips) {
  std::vector<Loid> in = {Loid{1, 0}, Loid{2, 17}, Loid{3, 99, {0xAA, 0xBB}}};
  Buffer buf;
  Writer w(buf);
  WriteVector(w, in);

  Reader r(buf);
  const std::vector<Loid> out = ReadVector<Loid>(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(out, in);
}

TEST(SerializeTest, VectorWithHostileCountIsBounded) {
  Buffer buf;
  Writer w(buf);
  w.u32(1'000'000'000);  // absurd element count, no data
  Reader r(buf);
  EXPECT_TRUE(ReadVector<Loid>(r).empty());
}

class SerializeSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SerializeSweep, U64RoundTripsAcrossPatterns) {
  Buffer buf;
  Writer w(buf);
  w.u64(GetParam());
  Reader r(buf);
  EXPECT_EQ(r.u64(), GetParam());
  EXPECT_TRUE(r.ok());
}

INSTANTIATE_TEST_SUITE_P(
    Patterns, SerializeSweep,
    ::testing::Values(0ULL, 1ULL, 0xFFULL, 0xFF00ULL, 0x8000000000000000ULL,
                      0xFFFFFFFFFFFFFFFFULL, 0x0102030405060708ULL));

}  // namespace
}  // namespace legion
