#include "base/rng.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace legion {
namespace {

TEST(RngTest, SameSeedSameStream) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(RngTest, BelowStaysInBounds) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    EXPECT_LT(rng.below(17), 17u);
  }
}

TEST(RngTest, BetweenIsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 10'000; ++i) {
    const auto v = rng.between(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    saw_lo |= (v == -2);
    saw_hi |= (v == 2);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UnitInHalfOpenInterval) {
  Rng rng(11);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.unit();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(13);
  int hits = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    if (rng.chance(0.25)) ++hits;
  }
  const double rate = static_cast<double>(hits) / trials;
  EXPECT_NEAR(rate, 0.25, 0.01);
}

TEST(RngTest, ForkedStreamsAreIndependent) {
  Rng base(42);
  Rng a = base.fork(1);
  Rng b = base.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next() == b.next()) ++same;
  }
  EXPECT_EQ(same, 0);
  // Forking is deterministic.
  Rng a2 = Rng(42).fork(1);
  EXPECT_EQ(Rng(42).fork(1).next(), a2.next());
}

TEST(RngTest, BelowIsRoughlyUniform) {
  Rng rng(99);
  std::vector<int> histogram(10, 0);
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    ++histogram[rng.below(10)];
  }
  for (int count : histogram) {
    EXPECT_NEAR(count, trials / 10, trials / 100);
  }
}

}  // namespace
}  // namespace legion
