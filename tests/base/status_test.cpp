#include "base/status.hpp"

#include <gtest/gtest.h>

namespace legion {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.to_string(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("object L7.3");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "object L7.3");
  EXPECT_EQ(s.to_string(), "NOT_FOUND: object L7.3");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == TimeoutError("a"));
}

struct NamedCodeCase {
  StatusCode code;
  std::string_view name;
};

class StatusCodeNames : public ::testing::TestWithParam<NamedCodeCase> {};

TEST_P(StatusCodeNames, EveryCodeHasDistinctName) {
  EXPECT_EQ(to_string(GetParam().code), GetParam().name);
}

INSTANTIATE_TEST_SUITE_P(
    AllCodes, StatusCodeNames,
    ::testing::Values(
        NamedCodeCase{StatusCode::kOk, "OK"},
        NamedCodeCase{StatusCode::kInvalidArgument, "INVALID_ARGUMENT"},
        NamedCodeCase{StatusCode::kNotFound, "NOT_FOUND"},
        NamedCodeCase{StatusCode::kAlreadyExists, "ALREADY_EXISTS"},
        NamedCodeCase{StatusCode::kPermissionDenied, "PERMISSION_DENIED"},
        NamedCodeCase{StatusCode::kFailedPrecondition, "FAILED_PRECONDITION"},
        NamedCodeCase{StatusCode::kUnavailable, "UNAVAILABLE"},
        NamedCodeCase{StatusCode::kStaleBinding, "STALE_BINDING"},
        NamedCodeCase{StatusCode::kTimeout, "TIMEOUT"},
        NamedCodeCase{StatusCode::kUnimplemented, "UNIMPLEMENTED"},
        NamedCodeCase{StatusCode::kAborted, "ABORTED"},
        NamedCodeCase{StatusCode::kOutOfRange, "OUT_OF_RANGE"},
        NamedCodeCase{StatusCode::kResourceExhausted, "RESOURCE_EXHAUSTED"},
        NamedCodeCase{StatusCode::kInternal, "INTERNAL"}));

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = TimeoutError("too slow");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(r.value_or(-1), -1);
}

TEST(ResultTest, TakeMovesValueOut) {
  Result<std::string> r = std::string("payload");
  std::string s = std::move(r).take();
  EXPECT_EQ(s, "payload");
}

TEST(ResultTest, ValueOrPrefersValue) {
  Result<int> r = 7;
  EXPECT_EQ(r.value_or(-1), 7);
}

Status Inner(bool fail) {
  if (fail) return UnavailableError("inner failed");
  return OkStatus();
}

Status Outer(bool fail) {
  LEGION_RETURN_IF_ERROR(Inner(fail));
  return OkStatus();
}

TEST(ResultTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(Outer(false).ok());
  EXPECT_EQ(Outer(true).code(), StatusCode::kUnavailable);
}

Result<int> Doubled(Result<int> in) {
  LEGION_ASSIGN_OR_RETURN(int v, std::move(in));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnUnwrapsAndPropagates) {
  EXPECT_EQ(*Doubled(21), 42);
  EXPECT_EQ(Doubled(InternalError("nope")).status().code(),
            StatusCode::kInternal);
}

}  // namespace
}  // namespace legion
