// base::Mutex / SharedMutex / CondVar functional tests, plus (when built
// with -DLEGION_LOCK_RANK_CHECKS=ON) death tests for the runtime
// acquisition-order checker.
#include "base/mutex.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "base/thread_annotations.hpp"

namespace legion::base {
namespace {

TEST(MutexTest, ExcludesConcurrentIncrements) {
  Mutex mu;
  int count GUARDED_BY(mu) = 0;
  constexpr int kThreads = 8;
  constexpr int kIters = 5000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIters; ++i) {
        MutexLock lock(mu);
        ++count;
      }
    });
  }
  for (auto& th : threads) th.join();
  MutexLock lock(mu);
  EXPECT_EQ(count, kThreads * kIters);
}

TEST(MutexTest, TryLockReflectsContention) {
  Mutex mu;
  mu.lock();
  std::atomic<bool> got{true};
  std::thread other([&] {
    if (mu.try_lock()) {
      mu.unlock();
    } else {
      got.store(false);
    }
  });
  other.join();
  EXPECT_FALSE(got.load());
  mu.unlock();
  EXPECT_TRUE(mu.try_lock());
  mu.unlock();
}

TEST(SharedMutexTest, WriterExcludesReaders) {
  SharedMutex mu;
  int value GUARDED_BY(mu) = 0;
  std::atomic<int> sum{0};
  {
    WriterMutexLock w(mu);
    value = 41;
    // Readers started now must not observe the intermediate state.
    std::thread reader([&] {
      ReaderMutexLock r(mu);
      sum.fetch_add(value);
    });
    value = 42;
    reader.detach();  // still blocked on the reader lock here
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  // Writer released; wait for the reader to land.
  while (sum.load() == 0) std::this_thread::sleep_for(std::chrono::milliseconds(1));
  EXPECT_EQ(sum.load(), 42);
}

TEST(SharedMutexTest, ReadersShareTheLock) {
  SharedMutex mu;
  std::atomic<int> concurrent{0};
  std::atomic<int> peak{0};
  constexpr int kReaders = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kReaders; ++t) {
    threads.emplace_back([&] {
      ReaderMutexLock lock(mu);
      const int now = concurrent.fetch_add(1) + 1;
      int seen = peak.load();
      while (seen < now && !peak.compare_exchange_weak(seen, now)) {
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
      concurrent.fetch_sub(1);
    });
  }
  for (auto& th : threads) th.join();
  // All four readers overlap in practice; require at least two to keep the
  // assertion scheduling-robust.
  EXPECT_GE(peak.load(), 2);
}

TEST(CondVarTest, WaitWakesOnNotify) {
  Mutex mu;
  CondVar cv;
  bool ready GUARDED_BY(mu) = false;
  std::thread waker([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    {
      MutexLock lock(mu);
      ready = true;
    }
    cv.notify_all();
  });
  {
    MutexLock lock(mu);
    while (!ready) cv.wait(mu);
    EXPECT_TRUE(ready);
  }
  waker.join();
}

TEST(CondVarTest, WaitUntilReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(5);
  bool timed_out = false;
  // No notifier exists: the loop must exit via timeout, not hang.
  while (!timed_out) timed_out = cv.wait_until(mu, deadline);
  EXPECT_TRUE(timed_out);
}

TEST(CondVarTest, WaitForReportsTimeout) {
  Mutex mu;
  CondVar cv;
  MutexLock lock(mu);
  EXPECT_TRUE(cv.wait_for(mu, std::chrono::milliseconds(5)));
}

#ifdef LEGION_LOCK_RANK_CHECKS

using MutexRankDeathTest = ::testing::Test;

TEST(MutexRankDeathTest, OutOfOrderAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex low(lock_rank::kRng);
  Mutex high(lock_rank::kLog);
  EXPECT_DEATH(
      {
        MutexLock outer(high);
        MutexLock inner(low);  // rank 36 under rank 100: order violation
      },
      "lock-rank violation");
}

TEST(MutexRankDeathTest, SameRankAcquireAborts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Mutex a(lock_rank::kFlights);
  Mutex b(lock_rank::kFlights);
  EXPECT_DEATH(
      {
        MutexLock outer(a);
        MutexLock inner(b);  // equal ranks may never nest
      },
      "lock-rank violation");
}

TEST(MutexRankDeathTest, InOrderAcquireIsFine) {
  Mutex low(lock_rank::kRng);
  Mutex high(lock_rank::kLog);
  MutexLock outer(low);
  MutexLock inner(high);
  SUCCEED();
}

TEST(MutexRankDeathTest, UnrankedSkipsTheCheck) {
  Mutex ranked(lock_rank::kLog);
  Mutex unranked;
  MutexLock outer(ranked);
  MutexLock inner(unranked);  // unranked = leaf-local, always allowed
  SUCCEED();
}

#endif  // LEGION_LOCK_RANK_CHECKS

}  // namespace
}  // namespace legion::base
