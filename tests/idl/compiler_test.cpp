// The Legion-aware "compiler": IDL text + naming context -> live classes.
#include <gtest/gtest.h>

#include "core/test_support.hpp"
#include "idl/compiler.hpp"
#include "naming/context.hpp"

namespace legion::idl {
namespace {

using core::testing::CounterImpl;
using core::testing::CounterInit;
using core::testing::GreeterImpl;
using core::testing::ReadI64;

class CompilerTest : public core::testing::SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    ASSERT_TRUE(naming::RegisterNamingImpls(system_->registry()).ok());
    auto ctx = naming::CreateContext(*client_);
    ASSERT_TRUE(ctx.ok());
    context_ = *ctx;
  }

  CompileOptions Options(std::string impl) {
    CompileOptions options;
    options.instance_impl = std::move(impl);
    options.naming_context = context_;
    return options;
  }

  Loid context_;
};

TEST_F(CompilerTest, CompilesAndBindsSimpleInterface) {
  auto parsed = ParseSingle(R"(
      interface Counter {
        int Increment(int delta);
        int Get();
      };
  )");
  ASSERT_TRUE(parsed.ok());
  auto reply =
      CompileInterface(*client_, *parsed, Options(std::string(CounterImpl::kName)));
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_TRUE(reply->loid.names_class_object());

  // The class's name resolves through the compilation context.
  auto by_name = naming::Lookup(*client_, context_, "Counter");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(*by_name, reply->loid);

  // Instances work and carry the declared interface.
  auto instance = client_->create(reply->loid, CounterInit(4));
  ASSERT_TRUE(instance.ok());
  auto raw = client_->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 4);
}

TEST_F(CompilerTest, BaseResolutionThroughContext) {
  CompileOptions counter_opts = Options(std::string(CounterImpl::kName));
  auto base = CompileText(*client_, "interface Counter { int Get(); };",
                          counter_opts);
  ASSERT_TRUE(base.ok());

  // A later compilation unit derives from Counter *by name*.
  auto derived = CompileText(
      *client_, "interface FancyCounter : Counter { void Fancy(); };",
      Options(""));
  ASSERT_TRUE(derived.ok()) << derived.status().to_string();

  // The subclass inherited Counter's implementation (kind-of relation).
  auto instance = client_->create((*derived)[0].loid, CounterInit(9));
  ASSERT_TRUE(instance.ok());
  auto raw = client_->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 9);
}

TEST_F(CompilerTest, MultipleInheritanceViaSecondBase) {
  (void)CompileText(*client_, "interface Counter { int Get(); };",
                    Options(std::string(CounterImpl::kName)));
  (void)CompileText(*client_, "interface Greeter { string Greet(); };",
                    Options(std::string(GreeterImpl::kName)));

  auto both = CompileText(
      *client_,
      "interface Hybrid : Counter, Greeter { };",
      Options(""));
  ASSERT_TRUE(both.ok()) << both.status().to_string();

  auto instance = client_->create((*both)[0].loid, CounterInit(1));
  ASSERT_TRUE(instance.ok());
  // Methods from both bases are live on one object.
  EXPECT_TRUE(client_->ref(instance->loid).call("Get", Buffer{}).ok());
  auto greet = client_->ref(instance->loid).call("Greet", Buffer{});
  ASSERT_TRUE(greet.ok()) << greet.status().to_string();
  EXPECT_NE(greet->as_string().find("hello"), std::string::npos);
}

TEST_F(CompilerTest, WholeProgramCompilesInOrder) {
  auto all = CompileText(*client_, R"(
      interface A { int Get(); };
      interface B : A { };
      interface C : B { };
  )",
                         Options(std::string(CounterImpl::kName)));
  ASSERT_TRUE(all.ok()) << all.status().to_string();
  EXPECT_EQ(all->size(), 3u);
  // The chain C -> B -> A resolves end to end.
  auto instance = client_->create((*all)[2].loid, CounterInit(7));
  ASSERT_TRUE(instance.ok());
  auto raw = client_->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 7);
}

TEST_F(CompilerTest, MissingBaseIsReported) {
  auto result = CompileText(*client_, "interface X : NoSuchBase { };",
                            Options(std::string(CounterImpl::kName)));
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_NE(result.status().message().find("NoSuchBase"), std::string::npos);
}

TEST_F(CompilerTest, BaseNamingANonClassIsRejected) {
  auto counter = CompileText(*client_, "interface Counter { int Get(); };",
                             Options(std::string(CounterImpl::kName)));
  ASSERT_TRUE(counter.ok());
  auto instance = client_->create((*counter)[0].loid, CounterInit(0));
  ASSERT_TRUE(instance.ok());
  // Bind an *instance* under a name and try to use it as a base.
  ASSERT_TRUE(naming::Bind(*client_, context_, "obj", instance->loid).ok());
  auto result = CompileText(*client_, "interface Y : obj { };", Options(""));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CompilerTest, BasesWithoutContextRejected) {
  CompileOptions options;
  options.instance_impl = std::string(CounterImpl::kName);
  auto result = CompileText(*client_, "interface X : Y { };", options);
  EXPECT_EQ(result.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace legion::idl
