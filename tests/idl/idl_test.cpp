#include "idl/idl.hpp"

#include <gtest/gtest.h>

namespace legion::idl {
namespace {

TEST(IdlTest, ParsesMinimalInterface) {
  auto parsed = ParseSingle("interface Empty { };");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->interface.name(), "Empty");
  EXPECT_TRUE(parsed->interface.methods().empty());
  EXPECT_TRUE(parsed->bases.empty());
}

TEST(IdlTest, ParsesMethodsWithParameters) {
  auto parsed = ParseSingle(R"(
    interface FileObject {
      int read(int offset, int count);
      void write(int offset, bytes data);
      string name();
    };
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  const auto& iface = parsed->interface;
  ASSERT_EQ(iface.methods().size(), 3u);
  const auto* read = iface.find("read");
  ASSERT_NE(read, nullptr);
  EXPECT_EQ(read->return_type, "int");
  ASSERT_EQ(read->parameters.size(), 2u);
  EXPECT_EQ(read->parameters[0].type, "int");
  EXPECT_EQ(read->parameters[0].name, "offset");
  EXPECT_TRUE(iface.find("name")->parameters.empty());
}

TEST(IdlTest, ParameterNamesAreOptional) {
  auto parsed = ParseSingle("interface T { void m(int, string s); };");
  ASSERT_TRUE(parsed.ok());
  const auto* m = parsed->interface.find("m");
  ASSERT_NE(m, nullptr);
  EXPECT_EQ(m->parameters[0].name, "");
  EXPECT_EQ(m->parameters[1].name, "s");
}

TEST(IdlTest, ParsesBaseList) {
  auto parsed = ParseSingle(
      "interface UnixSMMP : UnixHost, Monitored { void boot(); };");
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->bases, (std::vector<std::string>{"UnixHost", "Monitored"}));
}

TEST(IdlTest, ParsesMultipleInterfaces) {
  auto all = Parse(R"(
    interface A { void a(); };
    interface B : A { void b(); };
  )");
  ASSERT_TRUE(all.ok());
  ASSERT_EQ(all->size(), 2u);
  EXPECT_EQ((*all)[0].interface.name(), "A");
  EXPECT_EQ((*all)[1].bases, (std::vector<std::string>{"A"}));
}

TEST(IdlTest, CommentsAreIgnored) {
  auto parsed = ParseSingle(R"(
    // The Legion host interface.
    interface Host {
      /* start an object
         from an OPR */
      binding StartObject(bytes opr);
    };
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_TRUE(parsed->interface.has_method("StartObject"));
}

TEST(IdlTest, TrailingSemicolonOptional) {
  EXPECT_TRUE(ParseSingle("interface T { }").ok());
  EXPECT_TRUE(ParseSingle("interface T { };").ok());
}

TEST(IdlTest, MplDialectParses) {
  // The paper's footnote: "At least two different IDL's will be supported
  // by Legion: the CORBA IDL ... and the Mentat Programming Language".
  auto parsed = ParseSingle(R"(
      persistent mentat class SparseSolver : Solver {
        bytes solve(bytes matrix);
      };
  )");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->interface.name(), "SparseSolver");
  EXPECT_EQ(parsed->bases, (std::vector<std::string>{"Solver"}));
  EXPECT_TRUE(parsed->interface.has_method("solve"));
}

TEST(IdlTest, MplWithoutPersistentQualifier) {
  auto parsed = ParseSingle("mentat class W { void work(); };");
  ASSERT_TRUE(parsed.ok()) << parsed.status().to_string();
  EXPECT_EQ(parsed->interface.name(), "W");
}

TEST(IdlTest, DialectsMixInOneFile) {
  auto all = Parse(R"(
      interface Base { void a(); };
      mentat class Derived : Base { void b(); };
  )");
  ASSERT_TRUE(all.ok());
  EXPECT_EQ(all->size(), 2u);
}

TEST(IdlTest, MplMissingClassKeywordRejected) {
  auto result = ParseSingle("mentat Worker { };");
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("'class'"), std::string::npos);
}

TEST(IdlTest, PersistentRequiresMentat) {
  EXPECT_FALSE(ParseSingle("persistent interface T { };").ok());
}

struct ErrorCase {
  std::string source;
  std::string fragment;  // expected in the error message
};

class IdlErrorSweep : public ::testing::TestWithParam<ErrorCase> {};

TEST_P(IdlErrorSweep, ReportsPositionAndReason) {
  auto result = ParseSingle(GetParam().source);
  ASSERT_FALSE(result.ok()) << GetParam().source;
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find(GetParam().fragment),
            std::string::npos)
      << result.status().message();
}

INSTANTIATE_TEST_SUITE_P(
    Errors, IdlErrorSweep,
    ::testing::Values(
        ErrorCase{"iface T { };", "expected 'interface'"},
        ErrorCase{"interface { };", "interface name"},
        ErrorCase{"interface T { int m(; };", "parameter type"},
        ErrorCase{"interface T { int m() };", "';'"},
        ErrorCase{"interface T { int m(int x) ", "';'"},
        ErrorCase{"interface T : { };", "base name"},
        ErrorCase{"interface T { void m(); void m(); };", "duplicate method"},
        ErrorCase{"interface T { @ };", "unexpected character"},
        ErrorCase{"interface T { /* oops };", "unterminated block comment"}));

TEST(IdlTest, ErrorsCarryLineNumbers) {
  auto result = ParseSingle("interface T {\n  int m()\n};");
  ASSERT_FALSE(result.ok());
  // The missing ';' is detected on line 3.
  EXPECT_EQ(result.status().message().substr(0, 2), "3:");
}

TEST(IdlTest, ParseSingleRejectsZeroOrMany) {
  EXPECT_FALSE(ParseSingle("").ok());
  EXPECT_FALSE(ParseSingle("interface A {}; interface B {};").ok());
}

TEST(IdlTest, RenderRoundTripsThroughParse) {
  const std::string source = R"(interface File {
  int read(int offset, int count);
  void close();
};)";
  auto parsed = ParseSingle(source);
  ASSERT_TRUE(parsed.ok());
  auto reparsed = ParseSingle(Render(parsed->interface));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().to_string();
  EXPECT_EQ(reparsed->interface, parsed->interface);
}

}  // namespace
}  // namespace legion::idl
