#include "persist/vault.hpp"

#include <gtest/gtest.h>

namespace legion::persist {
namespace {

TEST(VaultTest, WriteReadEraseCycle) {
  Vault v(DiskId{1}, "disk-i");
  ASSERT_TRUE(v.write("a/b", Buffer::FromString("payload")).ok());
  EXPECT_TRUE(v.exists("a/b"));
  auto read = v.read("a/b");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->as_string(), "payload");
  ASSERT_TRUE(v.erase("a/b").ok());
  EXPECT_FALSE(v.exists("a/b"));
  EXPECT_EQ(v.read("a/b").status().code(), StatusCode::kNotFound);
}

TEST(VaultTest, OverwriteReplacesAndTracksBytes) {
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.write("f", Buffer::FromString("12345678")).ok());
  EXPECT_EQ(v.bytes_stored(), 8u);
  ASSERT_TRUE(v.write("f", Buffer::FromString("xy")).ok());
  EXPECT_EQ(v.bytes_stored(), 2u);
  EXPECT_EQ(v.read("f")->as_string(), "xy");
}

TEST(VaultTest, EmptyPathRejected) {
  Vault v(DiskId{1}, "disk");
  EXPECT_EQ(v.write("", Buffer{}).code(), StatusCode::kInvalidArgument);
}

TEST(VaultTest, ListIsSorted) {
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.write("b", Buffer{}).ok());
  ASSERT_TRUE(v.write("a", Buffer{}).ok());
  ASSERT_TRUE(v.write("c", Buffer{}).ok());
  const auto files = v.list();
  ASSERT_EQ(files.size(), 3u);
  EXPECT_EQ(files[0], "a");
  EXPECT_EQ(files[2], "c");
}

class VaultSetTest : public ::testing::Test {
 protected:
  static Opr MakeOpr(std::uint64_t n, std::string state = "s") {
    Opr opr;
    opr.loid = Loid{9, n};
    opr.implementation = "impl";
    opr.state = Buffer::FromString(state);
    return opr;
  }
};

TEST_F(VaultSetTest, StoreFailsWithoutDisks) {
  VaultSet set;
  EXPECT_EQ(set.store(MakeOpr(1)).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(VaultSetTest, StoreLoadRemoveRoundTrip) {
  VaultSet set;
  set.add_vault("disk-i");
  auto addr = set.store(MakeOpr(1, "alpha"));
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(set.holds(*addr));

  auto loaded = set.load(*addr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->loid, (Loid{9, 1}));
  EXPECT_EQ(loaded->state.as_string(), "alpha");

  ASSERT_TRUE(set.remove(*addr).ok());
  EXPECT_FALSE(set.holds(*addr));
  EXPECT_EQ(set.load(*addr).status().code(), StatusCode::kNotFound);
}

TEST_F(VaultSetTest, StoreBalancesAcrossDisks) {
  // Figure 11 shows a jurisdiction with several disks; placement picks the
  // least-full one, so equal-size OPRs spread evenly.
  VaultSet set;
  const DiskId d1 = set.add_vault("i");
  const DiskId d2 = set.add_vault("j");
  const DiskId d3 = set.add_vault("k");
  for (std::uint64_t n = 0; n < 9; ++n) {
    ASSERT_TRUE(set.store(MakeOpr(n)).ok());
  }
  EXPECT_EQ(set.vault(d1)->count(), 3u);
  EXPECT_EQ(set.vault(d2)->count(), 3u);
  EXPECT_EQ(set.vault(d3)->count(), 3u);
}

TEST_F(VaultSetTest, UniquePathsForSameLoid) {
  // Copy() can put two representations of the same object in flight;
  // stored paths must never collide.
  VaultSet set;
  set.add_vault("only");
  auto a = set.store(MakeOpr(1));
  auto b = set.store(MakeOpr(1));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(*a == *b);
  EXPECT_TRUE(set.holds(*a));
  EXPECT_TRUE(set.holds(*b));
}

TEST_F(VaultSetTest, UnknownDiskRejected) {
  VaultSet set;
  set.add_vault("only");
  PersistentAddress bogus{DiskId{42}, "nope"};
  EXPECT_EQ(set.load(bogus).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(set.remove(bogus).code(), StatusCode::kNotFound);
  EXPECT_FALSE(set.holds(bogus));
}

}  // namespace
}  // namespace legion::persist
