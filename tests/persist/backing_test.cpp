// File-backed vaults: jurisdiction storage that actually survives the
// process (Object Persistent Addresses "will typically be a file name",
// Section 3.1.1).
#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "persist/vault.hpp"

namespace legion::persist {
namespace {

namespace fs = std::filesystem;

class BackingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() /
           ("legion-vault-" +
            std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
            "-" + ::testing::UnitTest::GetInstance()
                      ->current_test_info()
                      ->name());
    fs::remove_all(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  fs::path dir_;
};

TEST(VaultPathEncodingTest, RoundTripsHostilePaths) {
  for (const std::string path :
       {"opr/L64.1:deadbeef.7", "a/b/c", "plain", "sp ace", "100%sure",
        "..", "%41"}) {
    const std::string encoded = EncodeVaultPath(path);
    EXPECT_EQ(encoded.find('/'), std::string::npos) << encoded;
    auto decoded = DecodeVaultPath(encoded);
    ASSERT_TRUE(decoded.ok()) << path;
    EXPECT_EQ(*decoded, path);
  }
}

TEST(VaultPathEncodingTest, BadEscapesRejected) {
  EXPECT_FALSE(DecodeVaultPath("%").ok());
  EXPECT_FALSE(DecodeVaultPath("%4").ok());
  EXPECT_FALSE(DecodeVaultPath("%zz").ok());
}

TEST_F(BackingTest, WritesMirrorToDisk) {
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(v.write("opr/L9.1", Buffer::FromString("bytes")).ok());
  EXPECT_TRUE(fs::exists(dir_ / EncodeVaultPath("opr/L9.1")));
  ASSERT_TRUE(v.erase("opr/L9.1").ok());
  EXPECT_FALSE(fs::exists(dir_ / EncodeVaultPath("opr/L9.1")));
}

TEST_F(BackingTest, AttachFlushesExistingContents) {
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.write("before", Buffer::FromString("early")).ok());
  ASSERT_TRUE(v.attach_backing(dir_.string()).ok());
  EXPECT_TRUE(fs::exists(dir_ / "before"));
}

TEST_F(BackingTest, LoadBackingRecoversAfterRestart) {
  {
    Vault v(DiskId{1}, "disk");
    ASSERT_TRUE(v.attach_backing(dir_.string()).ok());
    ASSERT_TRUE(v.write("opr/L9.1:aa", Buffer::FromString("alpha")).ok());
    ASSERT_TRUE(v.write("opr/L9.2:bb", Buffer::FromString("beta")).ok());
  }  // "process exits"

  Vault revived(DiskId{1}, "disk");
  ASSERT_TRUE(revived.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(revived.load_backing().ok());
  EXPECT_EQ(revived.count(), 2u);
  auto alpha = revived.read("opr/L9.1:aa");
  ASSERT_TRUE(alpha.ok());
  EXPECT_EQ(alpha->as_string(), "alpha");
  EXPECT_EQ(revived.bytes_stored(), 9u);  // "alpha" + "beta"
}

TEST_F(BackingTest, LoadWithoutBackingRejected) {
  Vault v(DiskId{1}, "disk");
  EXPECT_EQ(v.load_backing().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BackingTest, OverwriteUpdatesTheFile) {
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(v.write("f", Buffer::FromString("one")).ok());
  ASSERT_TRUE(v.write("f", Buffer::FromString("twotwo")).ok());
  Vault revived(DiskId{1}, "disk");
  ASSERT_TRUE(revived.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(revived.load_backing().ok());
  EXPECT_EQ(revived.read("f")->as_string(), "twotwo");
}

TEST_F(BackingTest, MirrorWriteIsAtomicViaTempAndRename) {
  // The mirror must never truncate the committed file in place: a write
  // goes to a "#tmp"-suffixed sibling and renames over the original, so a
  // crash mid-write leaves either the old version or the new one.
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(v.write("ck", Buffer::FromString("version-one")).ok());

  // Simulate a crash that left a half-written temp file behind.
  const fs::path tmp = dir_ / (EncodeVaultPath("ck") + "#tmp");
  {
    std::ofstream out(tmp, std::ios::binary | std::ios::trunc);
    out << "half-writ";
  }
  ASSERT_TRUE(fs::exists(tmp));

  // Recovery sees the committed version, not the partial temp...
  Vault revived(DiskId{1}, "disk");
  ASSERT_TRUE(revived.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(revived.load_backing().ok());
  EXPECT_EQ(revived.count(), 1u);
  ASSERT_TRUE(revived.read("ck").ok());
  EXPECT_EQ(revived.read("ck")->as_string(), "version-one");

  // ...and a successful overwrite leaves no temp residue behind.
  ASSERT_TRUE(revived.write("ck", Buffer::FromString("version-two")).ok());
  EXPECT_FALSE(fs::exists(tmp));
  Vault again(DiskId{1}, "disk");
  ASSERT_TRUE(again.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(again.load_backing().ok());
  EXPECT_EQ(again.read("ck")->as_string(), "version-two");
}

TEST_F(BackingTest, FailedMirrorWriteKeepsPreviousVersion) {
  // Make the *temp* write fail (the temp name collides with a directory):
  // the committed file must be untouched and the error surfaced.
  Vault v(DiskId{1}, "disk");
  ASSERT_TRUE(v.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(v.write("f", Buffer::FromString("good")).ok());

  const fs::path tmp = dir_ / (EncodeVaultPath("f") + "#tmp");
  fs::create_directory(tmp);
  EXPECT_FALSE(v.write("f", Buffer::FromString("doomed")).ok());
  fs::remove_all(tmp);

  Vault revived(DiskId{1}, "disk");
  ASSERT_TRUE(revived.attach_backing(dir_.string()).ok());
  ASSERT_TRUE(revived.load_backing().ok());
  EXPECT_EQ(revived.read("f")->as_string(), "good");
}

TEST_F(BackingTest, VaultSetBacksEachDiskInItsOwnSubdir) {
  VaultSet set;
  set.add_vault("disk-i");
  set.add_vault("disk-j");
  ASSERT_TRUE(set.attach_backing(dir_.string()).ok());

  Opr opr;
  opr.loid = Loid{9, 1};
  opr.implementation = "impl";
  opr.state = Buffer::FromString("s");
  auto addr = set.store(opr);
  ASSERT_TRUE(addr.ok());
  EXPECT_TRUE(fs::exists(dir_ / "disk-i") || fs::exists(dir_ / "disk-j"));

  // The OPR bytes round-trip through the real file.
  auto loaded = set.load(*addr);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->loid, (Loid{9, 1}));
}

}  // namespace
}  // namespace legion::persist
