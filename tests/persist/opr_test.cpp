#include "persist/opr.hpp"

#include <gtest/gtest.h>

namespace legion::persist {
namespace {

TEST(OprTest, RoundTripsThroughBytes) {
  // Section 3.1.1: an OPR is "a sequential set of bytes".
  Opr in;
  in.loid = Loid{5, 77, {0xCA, 0xFE}};
  in.implementation = "file-object-v2";
  in.state = Buffer::FromString("saved state");

  const Buffer bytes = in.to_bytes();
  auto out = Opr::from_bytes(bytes);
  ASSERT_TRUE(out.ok()) << out.status().to_string();
  EXPECT_EQ(out->loid, in.loid);
  EXPECT_EQ(out->implementation, "file-object-v2");
  EXPECT_EQ(out->state.as_string(), "saved state");
}

TEST(OprTest, EmptyStateIsLegal) {
  // "An executable file could be an Object Persistent Representation for an
  //  object that has yet to become Active" — no acquired state yet.
  Opr in;
  in.loid = Loid{5, 1};
  in.implementation = "fresh";
  auto out = Opr::from_bytes(in.to_bytes());
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->state.empty());
}

TEST(OprTest, MalformedBytesRejected) {
  EXPECT_FALSE(Opr::from_bytes(Buffer::FromString("junk")).ok());
  EXPECT_FALSE(Opr::from_bytes(Buffer{}).ok());
}

TEST(OprTest, TrailingGarbageRejected) {
  Opr in;
  in.loid = Loid{1, 1};
  in.implementation = "x";
  Buffer bytes = in.to_bytes();
  bytes.append("extra", 5);
  EXPECT_FALSE(Opr::from_bytes(bytes).ok());
}

TEST(PersistentAddressTest, RoundTripsAndCompares) {
  PersistentAddress a{DiskId{3}, "opr/L1.2.9"};
  Buffer buf;
  Writer w(buf);
  a.Serialize(w);
  Reader r(buf);
  EXPECT_EQ(PersistentAddress::Deserialize(r), a);
  EXPECT_TRUE(a.valid());
  EXPECT_FALSE((PersistentAddress{DiskId{}, "x"}.valid()));
  EXPECT_FALSE((PersistentAddress{DiskId{1}, ""}.valid()));
}

}  // namespace
}  // namespace legion::persist
