// MUST NOT COMPILE under -Werror=thread-safety: writing a guarded member
// without holding its mutex.
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() { ++value_; }  // missing MutexLock

 private:
  legion::base::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  return 0;
}
