// MUST NOT COMPILE under -Werror=thread-safety: writing a guarded member
// while holding only the shared (reader) side of its SharedMutex.
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Registry {
 public:
  void sneaky_write() {
    legion::base::ReaderMutexLock lock(mutex_);
    ++entries_;  // needs the exclusive side
  }

 private:
  legion::base::SharedMutex mutex_;
  int entries_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Registry r;
  r.sneaky_write();
  return 0;
}
