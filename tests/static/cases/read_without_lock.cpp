// MUST NOT COMPILE under -Werror=thread-safety: reading a guarded member
// without holding its mutex.
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Counter {
 public:
  int peek() const { return value_; }  // missing MutexLock / REQUIRES

 private:
  mutable legion::base::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  return c.peek();
}
