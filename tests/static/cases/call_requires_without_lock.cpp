// MUST NOT COMPILE under -Werror=thread-safety: calling a REQUIRES(mu)
// helper without holding mu.
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Table {
 public:
  void clear() { drop_all(); }  // must lock mutex_ first

 private:
  void drop_all() REQUIRES(mutex_) { count_ = 0; }

  legion::base::Mutex mutex_;
  int count_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Table t;
  t.clear();
  return 0;
}
