// MUST NOT COMPILE under -Werror=thread-safety: acquiring a capability the
// scope already holds (self-deadlock).
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump_twice() {
    legion::base::MutexLock outer(mutex_);
    legion::base::MutexLock inner(mutex_);  // deadlock: already held
    ++value_;
  }

 private:
  legion::base::Mutex mutex_;
  int value_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump_twice();
  return 0;
}
