// MUST NOT COMPILE under -Werror=thread-safety: CondVar::wait REQUIRES the
// mutex, so waiting without holding it is rejected.
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Gate {
 public:
  void wait_open() {
    while (!open_) {     // unguarded read, and...
      cv_.wait(mutex_);  // ...wait without holding mutex_
    }
  }

 private:
  legion::base::Mutex mutex_;
  legion::base::CondVar cv_;
  bool open_ GUARDED_BY(mutex_) = false;
};

}  // namespace

int main() {
  Gate g;
  (void)g;
  return 0;
}
