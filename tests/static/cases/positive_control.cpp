// MUST COMPILE cleanly under -Werror=thread-safety: the correctly annotated
// counterpart of the negative cases. If this fails, the harness (flags,
// include paths, wrapper headers) is broken — not the analysis.
#include <chrono>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace {

class Counter {
 public:
  void bump() {
    legion::base::MutexLock lock(mutex_);
    ++value_;
    cv_.notify_all();
  }
  int peek() const {
    legion::base::MutexLock lock(mutex_);
    return value_;
  }
  void wait_nonzero() {
    legion::base::MutexLock lock(mutex_);
    while (value_ == 0) cv_.wait(mutex_);
  }
  bool wait_nonzero_briefly() {
    legion::base::MutexLock lock(mutex_);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(1);
    while (value_ == 0) {
      if (cv_.wait_until(mutex_, deadline)) break;
    }
    return value_ != 0;
  }

 private:
  mutable legion::base::Mutex mutex_;
  legion::base::CondVar cv_;
  int value_ GUARDED_BY(mutex_) = 0;
};

class Registry {
 public:
  void add() {
    legion::base::WriterMutexLock lock(mutex_);
    ++entries_;
  }
  int count() const {
    legion::base::ReaderMutexLock lock(mutex_);
    return entries_;
  }

 private:
  mutable legion::base::SharedMutex mutex_;
  int entries_ GUARDED_BY(mutex_) = 0;
};

}  // namespace

int main() {
  Counter c;
  c.bump();
  Registry r;
  r.add();
  return c.peek() + r.count();
}
