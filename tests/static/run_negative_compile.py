#!/usr/bin/env python3
"""Negative-compile harness for the thread-safety annotations.

Every `cases/*.cpp` except positive_control.cpp is a seeded lock-discipline
bug that MUST fail to compile under `-Werror=thread-safety` — and MUST
compile cleanly without it (proving the rejection comes from the analysis,
not from broken C++). positive_control.cpp must compile cleanly with the
flag, proving the harness itself (flags, includes, wrappers) works.

Clang is the only compiler implementing the analysis. Without a usable
clang++ (override with $CLANG_CXX) the suite exits 77, which ctest maps to
SKIPPED via SKIP_RETURN_CODE.

Usage: run_negative_compile.py [--src-root DIR] [--std c++20]
"""

from __future__ import annotations

import argparse
import os
import shutil
import subprocess
import sys
from pathlib import Path

SKIP = 77
POSITIVE = "positive_control.cpp"


def find_clang() -> str | None:
    override = os.environ.get("CLANG_CXX")
    if override:
        return override if shutil.which(override) else None
    for name in ("clang++", "clang++-19", "clang++-18", "clang++-17",
                 "clang++-16", "clang++-15", "clang++-14"):
        if shutil.which(name):
            return name
    return None


def compile_case(cxx: str, case: Path, src_root: Path, std: str,
                 thread_safety: bool) -> subprocess.CompletedProcess:
    cmd = [cxx, "-fsyntax-only", f"-std={std}", "-I", str(src_root),
           str(case)]
    if thread_safety:
        cmd[1:1] = ["-Wthread-safety", "-Werror=thread-safety"]
    return subprocess.run(cmd, capture_output=True, text=True)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    here = Path(__file__).resolve().parent
    parser.add_argument("--src-root", type=Path,
                        default=here.parent.parent / "src")
    parser.add_argument("--std", default="c++20")
    args = parser.parse_args()

    cxx = find_clang()
    if cxx is None:
        print("SKIP: no clang++ available "
              "(thread-safety analysis is clang-only)")
        return SKIP
    probe = subprocess.run([cxx, "--version"], capture_output=True, text=True)
    if probe.returncode != 0:
        print(f"SKIP: {cxx} not runnable")
        return SKIP
    print(f"using {cxx}: {probe.stdout.splitlines()[0]}")

    cases = sorted((here / "cases").glob("*.cpp"))
    if not cases:
        print("FAIL: no cases found")
        return 1

    failures = 0
    for case in cases:
        if case.name == POSITIVE:
            r = compile_case(cxx, case, args.src_root, args.std, True)
            if r.returncode == 0:
                print(f"PASS: {case.name} compiles clean with the analysis")
            else:
                print(f"FAIL: {case.name} must compile, but:\n{r.stderr}")
                failures += 1
            continue

        # 1) valid C++ without the analysis...
        plain = compile_case(cxx, case, args.src_root, args.std, False)
        if plain.returncode != 0:
            print(f"FAIL: {case.name} is broken C++ even without the "
                  f"analysis:\n{plain.stderr}")
            failures += 1
            continue
        # 2) ...rejected with it, for a thread-safety reason.
        strict = compile_case(cxx, case, args.src_root, args.std, True)
        if strict.returncode == 0:
            print(f"FAIL: {case.name} compiled — the seeded lock-discipline "
                  "bug was NOT caught")
            failures += 1
        elif "thread-safety" not in strict.stderr:
            print(f"FAIL: {case.name} failed for a non-thread-safety "
                  f"reason:\n{strict.stderr}")
            failures += 1
        else:
            print(f"PASS: {case.name} rejected by the analysis")

    if failures:
        print(f"{failures} case(s) failed")
        return 1
    print(f"all {len(cases)} cases behaved")
    return 0


if __name__ == "__main__":
    sys.exit(main())
