// Regression tests for the accept-path bugs that used to kill endpoints
// under load:
//   1. any non-EINTR accept() failure ended the acceptor loop — one aborted
//      handshake or a moment of fd pressure permanently deafened the
//      endpoint while its port stayed bound (so not even the stale-binding
//      repair loop could notice);
//   2. the listen backlog was hardcoded to 64, so connect storms overflowed
//      the SYN queue regardless of configuration;
//   3. listeners never set SO_REUSEADDR, so a restarted endpoint could not
//      rebind a port still draining TIME_WAIT;
//   4. conn_fds/readers slots were never compacted, so connection churn on a
//      long-lived endpoint grew both vectors without bound.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <thread>
#include <vector>

#include "rt/frame.hpp"
#include "rt/socket_util.hpp"
#include "rt/tcp_runtime.hpp"

namespace legion::rt {
namespace {

int ConnectLoopback(std::uint16_t port, bool nonblocking) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  if (nonblocking) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 &&
      errno != EINPROGRESS) {
    ::close(fd);
    return -1;
  }
  return fd;
}

class AcceptRobustnessTest : public ::testing::Test {
 protected:
  void MakeTopology(TcpRuntime& rt) {
    auto j = rt.topology().add_jurisdiction("j");
    h1_ = rt.topology().add_host("h1", {j}, 1e9);
    h2_ = rt.topology().add_host("h2", {j}, 1e9);
  }

  HostId h1_, h2_;
};

// Bug 1: a connection arriving while the process is out of descriptors makes
// accept() fail with EMFILE. The acceptor must back off and retry — the
// queued connection is accepted once descriptors return, and the frame it
// carries is delivered. The old loop exited instead, deafening the endpoint
// forever.
TEST_F(AcceptRobustnessTest, AcceptorSurvivesFdExhaustion) {
  TcpRuntime rt;
  MakeTopology(rt);
  const EndpointId sink = rt.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                             ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);

  // The raw client socket is created *before* descriptors run out (connect
  // on an existing fd needs no new descriptor in this process), but only
  // connected after, so the acceptor meets the pending handshake with
  // accept() returning EMFILE — not before.
  const int client = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(client, 0);

  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit low = saved;
  low.rlim_cur = 64;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);
  std::vector<int> fillers;
  for (;;) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    fillers.push_back(fd);
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(rt.port_of(sink));
  ASSERT_EQ(::connect(client, reinterpret_cast<sockaddr*>(&addr), sizeof addr),
            0);

  // Give the acceptor time to wake up on the pending connection and slam
  // into EMFILE at least once.
  const auto retry_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (rt.metrics().counter("rt.tcp.accept_retries").value() == 0 &&
         std::chrono::steady_clock::now() < retry_deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_GE(rt.metrics().counter("rt.tcp.accept_retries").value(), 1u);

  for (int fd : fillers) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // Descriptors are back: the backed-off acceptor picks the connection up
  // and a hand-rolled frame written on it reaches the endpoint's inbox.
  Envelope env{src, sink, DeliveryKind::kData, Buffer{}};
  std::uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(env, header);
  ASSERT_EQ(::send(client, header, sizeof header, MSG_NOSIGNAL),
            static_cast<ssize_t>(sizeof header));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.endpoint_stats(sink).received < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rt.endpoint_stats(sink).received, 1u);
  ::close(client);
}

// Bug 2: the backlog really controls how many handshakes the kernel queues.
// A backlog-1 listener admits a couple of un-accepted connections; a deep
// one admits the whole burst.
TEST_F(AcceptRobustnessTest, ListenBacklogIsConfigurable) {
  constexpr int kBurst = 12;
  auto admitted = [](int backlog) {
    const ListenerSocket listener = CreateLoopbackListener(0, backlog);
    EXPECT_GE(listener.fd, 0);
    // Never accept: completed handshakes are exactly the queue the kernel
    // was willing to hold for us.
    std::vector<int> fds;
    for (int i = 0; i < kBurst; ++i) {
      const int fd = ConnectLoopback(listener.port, true);
      EXPECT_GE(fd, 0);
      fds.push_back(fd);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    int done = 0;
    for (int fd : fds) {
      pollfd p{fd, POLLOUT, 0};
      if (::poll(&p, 1, 0) == 1 && (p.revents & POLLOUT) != 0) {
        int err = 0;
        socklen_t len = sizeof err;
        ::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len);
        if (err == 0) ++done;
      }
    }
    for (int fd : fds) ::close(fd);
    ::close(listener.fd);
    return done;
  };

  const int shallow = admitted(1);
  const int deep = admitted(kBurst * 2);
  EXPECT_EQ(deep, kBurst);
  EXPECT_LT(shallow, deep);

  // And the runtimes actually carry the knob (the default is SOMAXCONN, not
  // the old hardcoded 64).
  TcpOptions options;
  options.listen_backlog = 7;
  TcpRuntime rt(options);
  EXPECT_EQ(rt.options().listen_backlog, 7);
  EXPECT_EQ(TcpOptions{}.listen_backlog, SOMAXCONN);
}

// Bug 3: closing the server side first leaves the bound port in TIME_WAIT;
// without SO_REUSEADDR the rebind fails with EADDRINUSE for minutes.
TEST_F(AcceptRobustnessTest, ReuseAddrAllowsImmediateRebindThroughTimeWait) {
  const ListenerSocket first = CreateLoopbackListener(0, 4);
  ASSERT_GE(first.fd, 0);
  const std::uint16_t port = first.port;

  const int client = ConnectLoopback(port, false);
  ASSERT_GE(client, 0);
  const int accepted = ::accept(first.fd, nullptr, nullptr);
  ASSERT_GE(accepted, 0);
  // Server closes first: the (loopback, port) pair enters TIME_WAIT.
  ::close(accepted);
  ::close(client);
  ::close(first.fd);

  const ListenerSocket second = CreateLoopbackListener(port, 4);
  EXPECT_GE(second.fd, 0) << "rebind through TIME_WAIT failed: "
                          << std::strerror(errno);
  EXPECT_EQ(second.port, port);
  if (second.fd >= 0) ::close(second.fd);
}

// Bug 4: every reconnect used to append a fresh conn_fds/readers slot; a
// long-lived endpoint whose peers churn (here: an aggressive idle reaper
// closing the pool side after every post) accumulated dead slots without
// bound. Slots must be reclaimed and reused.
TEST_F(AcceptRobustnessTest, ReaderSlotsAreReusedUnderConnectionChurn) {
  TcpOptions options;
  options.idle_reap = std::chrono::microseconds(1);  // reap after every post
  TcpRuntime rt(options);
  MakeTopology(rt);
  const EndpointId sink = rt.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                             ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);

  constexpr std::uint64_t kRounds = 20;
  for (std::uint64_t i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(
        rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
    // Let the reaped connection's reader notice EOF and vacate its slot
    // before the next dial arrives.
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }

  // Each round redialed (the pool reaped the idle socket every time)...
  EXPECT_GE(rt.metrics().counter("rt.tcp.dials").value(), kRounds);
  // ...yet the server side cycled through a handful of reader slots, not
  // one per connection. (The bound is loose only for scheduling jitter —
  // the broken behavior is exactly kRounds slots.)
  EXPECT_LE(rt.metrics().counter("rt.tcp.reader_slots").value(), kRounds / 2);
  EXPECT_GE(rt.metrics().counter("rt.tcp.reader_slots").value(), 1u);
}

}  // namespace
}  // namespace legion::rt
