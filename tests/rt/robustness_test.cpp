// Messenger robustness against malformed, hostile, and misdelivered frames:
// wire input is untrusted (anyone can post bytes at an endpoint).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "rt/messenger.hpp"
#include "rt/sim_runtime.hpp"

namespace legion::rt {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = rt_.topology().add_jurisdiction("j");
    auto far = rt_.topology().add_jurisdiction("far");
    h1_ = rt_.topology().add_host("h1", {j});
    h2_ = rt_.topology().add_host("h2", {j});
    h3_ = rt_.topology().add_host("h3", {far});
  }

  SimRuntime rt_{13};
  HostId h1_, h2_, h3_;
};

RequestDispatcher Echo() {
  return [](ServerContext& ctx, Reader&) -> Result<Buffer> {
    return Buffer::FromString(ctx.call.method);
  };
}

TEST_F(RobustnessTest, GarbageFramesAreDroppedServerKeepsServing) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced, Echo());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  // Blast random bytes straight at the server's endpoint.
  Rng rng(99);
  for (int i = 0; i < 50; ++i) {
    std::vector<std::uint8_t> junk(rng.below(64));
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng.below(256));
    ASSERT_TRUE(rt_
                    .post(Envelope{client.endpoint(), server.endpoint(),
                                   DeliveryKind::kData, Buffer{std::move(junk)}})
                    .ok());
  }
  rt_.run_until_idle();

  // The server survives and still answers real requests.
  auto result = client.call(server.endpoint(), "Ping", Buffer{},
                            EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "Ping");
}

TEST_F(RobustnessTest, UnsolicitedRepliesIgnored) {
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  Messenger attacker(rt_, h2_, "attacker", ExecutionMode::kDriver, nullptr);

  // Forge a reply for a call id the client never issued.
  Buffer forged;
  Writer w(forged);
  w.u8(2);  // kReply
  w.u64(424242);
  w.u8(static_cast<std::uint8_t>(StatusCode::kOk));
  w.str("");
  w.buffer(Buffer::FromString("poison"));
  ASSERT_TRUE(rt_
                  .post(Envelope{attacker.endpoint(), client.endpoint(),
                                 DeliveryKind::kData, std::move(forged)})
                  .ok());
  rt_.run_until_idle();
  SUCCEED();  // nothing crashed, nothing pending was corrupted
}

TEST_F(RobustnessTest, LateReplyAfterTimeoutIsDiscarded) {
  // Server answers only after the client's deadline (its handler performs a
  // nested cross-jurisdiction round trip, ~80 virtual ms); the late reply
  // must not satisfy a *different* later call.
  Messenger helper(rt_, h3_, "helper", ExecutionMode::kServiced, Echo());
  Messenger slow(rt_, h2_, "slow", ExecutionMode::kServiced,
                 [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                   (void)ctx.messenger.call(helper.endpoint(), "Ping",
                                            Buffer{}, EnvTriple::System(),
                                            1'000'000);
                   return Buffer::FromString("late");
                 });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  auto first = client.call(slow.endpoint(), "Slow", Buffer{},
                           EnvTriple::System(), 10'000);
  EXPECT_EQ(first.status().code(), StatusCode::kTimeout);

  // The next call gets its own reply, not the stale one.
  auto second = client.call(slow.endpoint(), "Slow", Buffer{},
                            EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second->as_string(), "late");
}

TEST_F(RobustnessTest, BouncedReplyIsIgnored) {
  // A reply that bounces (caller died) must not confuse the server.
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced, Echo());
  auto client = std::make_unique<Messenger>(rt_, h1_, "client",
                                            ExecutionMode::kDriver, nullptr);
  (void)client->invoke(server.endpoint(), "Ping", Buffer{},
                       EnvTriple::System());
  client.reset();  // dies before the reply arrives
  rt_.run_until_idle();
  EXPECT_GE(rt_.stats().bounced, 0u);  // no crash; bounce handled or dropped
}

TEST_F(RobustnessTest, OversizedLengthPrefixRejected) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced, Echo());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  Buffer evil;
  Writer w(evil);
  w.u8(1);        // kRequest
  w.u64(1);       // call id
  // env triple: three LOIDs, the first with a hostile key length.
  w.u64(1);
  w.u64(1);
  w.u32(0xFFFFFFFF);  // claims 4 GiB of key bytes
  ASSERT_TRUE(rt_
                  .post(Envelope{client.endpoint(), server.endpoint(),
                                 DeliveryKind::kData, std::move(evil)})
                  .ok());
  rt_.run_until_idle();

  auto result = client.call(server.endpoint(), "StillAlive", Buffer{},
                            EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(result.ok());
}

TEST_F(RobustnessTest, ManyPendingCallsResolveIndependently) {
  int served = 0;
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                     ++served;
                     return Buffer::FromString(ctx.call.method);
                   });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  std::vector<Future<ReplyMsg>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(client.invoke(server.endpoint(),
                                    "M" + std::to_string(i), Buffer{},
                                    EnvTriple::System()));
  }
  for (int i = 0; i < 100; ++i) {
    auto result = client.await(std::move(futures[i]), 10'000'000);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result->as_string(), "M" + std::to_string(i));
  }
  EXPECT_EQ(served, 100);
}

}  // namespace
}  // namespace legion::rt
