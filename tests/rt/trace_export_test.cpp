// The exporters: Chrome trace-event JSON from span hops, and the Prometheus
// text dump of a registry. Structural checks only — full JSON validation
// (parse, monotone timestamps) runs in CI via check_bench_shapes.py
// --validate-trace against the demo's exported file.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "obs/trace_export.hpp"

namespace legion::obs {
namespace {

TraceHop Hop(HopKind kind, SpanId span, SpanId parent, SimTime at,
             std::uint32_t host, std::string_view method = {}) {
  TraceHop h;
  h.trace_id = 1;
  h.kind = kind;
  h.span_id = span;
  h.parent_span_id = parent;
  h.at = at;
  h.host = host;
  h.src = 10;
  h.dst = 20;
  if (!method.empty()) h.set_method(method);
  return h;
}

std::size_t CountOccurrences(const std::string& haystack,
                             const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = haystack.find(needle); pos != std::string::npos;
       pos = haystack.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(ChromeTrace, PairsOpensWithClosesIntoCompleteSpans) {
  // One call edge: invoke@t=100 .. reply@t=400 on the client side,
  // request@t=150 .. serve@t=350 on the server side. Two 'X' events with
  // durations 300 and 200, both under span 5.
  std::vector<TraceHop> hops;
  hops.push_back(Hop(HopKind::kInvoke, 5, 0, 100, 1, "Noop"));
  hops.push_back(Hop(HopKind::kRequest, 5, 0, 150, 2, "Noop"));
  TraceHop serve = Hop(HopKind::kServe, 5, 0, 350, 2, "Noop");
  serve.queue_us = 0;
  serve.service_us = 200;
  hops.push_back(serve);
  hops.push_back(Hop(HopKind::kReply, 5, 0, 400, 1));

  std::ostringstream out;
  WriteChromeTrace(hops, out);
  const std::string json = out.str();

  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 2u);
  EXPECT_NE(json.find("\"dur\":300"), std::string::npos);  // client span
  EXPECT_NE(json.find("\"dur\":200"), std::string::npos);  // server span
  // The serve leg's queue/service split rides into args.
  EXPECT_NE(json.find("\"service_us\":200"), std::string::npos);
  // One process per host, named.
  EXPECT_NE(json.find("\"name\":\"host-1\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"host-2\""), std::string::npos);
  // No unmatched-hop instants: every open found its close.
  EXPECT_EQ(json.find("unclosed"), std::string::npos);
}

TEST(ChromeTrace, EventsAreSortedByTimestamp) {
  // Feed opens/closes out of order across two spans; the exporter must emit
  // events in non-decreasing ts order (chrome://tracing requirement).
  std::vector<TraceHop> hops;
  hops.push_back(Hop(HopKind::kInvoke, 7, 0, 500, 1, "B"));
  hops.push_back(Hop(HopKind::kInvoke, 6, 0, 100, 1, "A"));
  hops.push_back(Hop(HopKind::kReply, 7, 0, 900, 1));
  hops.push_back(Hop(HopKind::kReply, 6, 0, 300, 1));
  std::ostringstream out;
  WriteChromeTrace(hops, out);
  const std::string json = out.str();
  std::vector<long> stamps;
  for (std::size_t pos = json.find("\"ts\":"); pos != std::string::npos;
       pos = json.find("\"ts\":", pos + 5)) {
    stamps.push_back(std::strtol(json.c_str() + pos + 5, nullptr, 10));
  }
  ASSERT_GE(stamps.size(), 2u);
  for (std::size_t i = 1; i < stamps.size(); ++i) {
    EXPECT_LE(stamps[i - 1], stamps[i]) << "event " << i << " out of order";
  }
}

TEST(ChromeTrace, UnclosedOpenBecomesInstantEvent) {
  std::vector<TraceHop> hops;
  hops.push_back(Hop(HopKind::kInvoke, 9, 0, 100, 1, "Lost"));
  std::ostringstream out;
  WriteChromeTrace(hops, out);
  const std::string json = out.str();
  EXPECT_EQ(CountOccurrences(json, "\"ph\":\"X\""), 0u);
  EXPECT_NE(json.find("client-unclosed"), std::string::npos);
}

TEST(Prometheus, NamesAreSanitizedWithThePrefix) {
  EXPECT_EQ(PrometheusName("msg.service_us.host.3"),
            "legion_msg_service_us_host_3");
  EXPECT_EQ(PrometheusName("monitor.slow_hosts"), "legion_monitor_slow_hosts");
}

TEST(Prometheus, DumpCarriesTypedSeriesAndCumulativeBuckets) {
  Registry reg;
  reg.counter("msg.requests").inc(5);
  reg.gauge("msg.pending").set(-1);
  Histogram& h = reg.histogram("msg.service_us");
  h.record(3);   // bucket [2,3]
  h.record(3);
  h.record(100);  // bucket [64,127]

  std::ostringstream out;
  WritePrometheus(reg, out);
  const std::string text = out.str();
  EXPECT_NE(text.find("# TYPE legion_msg_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("legion_msg_requests 5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE legion_msg_pending gauge"), std::string::npos);
  EXPECT_NE(text.find("legion_msg_pending -1"), std::string::npos);
  // Histogram buckets are cumulative counts keyed by ceiling.
  EXPECT_NE(text.find("legion_msg_service_us_bucket{le=\"3\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("legion_msg_service_us_bucket{le=\"127\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("legion_msg_service_us_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("legion_msg_service_us_sum 106"), std::string::npos);
  EXPECT_NE(text.find("legion_msg_service_us_count 3"), std::string::npos);
}

}  // namespace
}  // namespace legion::obs
