// The object model over real TCP loopback sockets (paper Section 3.3:
// "standard protocols and the communication facilities of host operating
// systems").
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/messenger.hpp"
#include "rt/tcp_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace legion::rt {
namespace {

class TcpRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = rt_.topology().add_jurisdiction("j");
    h1_ = rt_.topology().add_host("h1", {j}, 1e9);
    h2_ = rt_.topology().add_host("h2", {j}, 1e9);
  }

  TcpRuntime rt_;
  HostId h1_, h2_;
};

TEST_F(TcpRuntimeTest, EndpointsListenOnRealPorts) {
  const EndpointId a = rt_.create_endpoint(h1_, "a", [](Envelope&&) {},
                                           ExecutionMode::kServiced);
  const EndpointId b = rt_.create_endpoint(h1_, "b", [](Envelope&&) {},
                                           ExecutionMode::kServiced);
  EXPECT_NE(rt_.port_of(a), 0);
  EXPECT_NE(rt_.port_of(b), 0);
  EXPECT_NE(rt_.port_of(a), rt_.port_of(b));
}

TEST_F(TcpRuntimeTest, MessengerRoundTripOverTcp) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext& ctx, Reader& args) -> Result<Buffer> {
                     return Buffer::FromString(ctx.call.method + ":" +
                                               args.str());
                   });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  Buffer args;
  Writer w(args);
  w.str("over-tcp");
  auto result = client.call(server.endpoint(), "Echo", std::move(args),
                            EnvTriple::System(), 5'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "Echo:over-tcp");
}

TEST_F(TcpRuntimeTest, ConnectionRefusedIsStaleBinding) {
  const EndpointId dead = rt_.create_endpoint(h2_, "dead", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  rt_.close_endpoint(dead);
  EXPECT_EQ(rt_.post(Envelope{src, dead, DeliveryKind::kData, Buffer{}}).code(),
            StatusCode::kStaleBinding);
}

TEST_F(TcpRuntimeTest, LargePayloadSurvivesFraming) {
  Buffer blob;
  for (int i = 0; i < 100'000; ++i) {
    const auto byte = static_cast<std::uint8_t>(i * 31);
    blob.append(&byte, 1);
  }
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader& args) -> Result<Buffer> {
                     return args.buffer();
                   });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  Buffer args;
  Writer w(args);
  w.buffer(blob);
  auto result = client.call(server.endpoint(), "Blob", std::move(args),
                            EnvTriple::System(), 10'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(*result, blob);
}

TEST_F(TcpRuntimeTest, NestedCallsOverTcp) {
  Messenger inner(rt_, h2_, "inner", ExecutionMode::kServiced,
                  [](ServerContext&, Reader&) -> Result<Buffer> {
                    return Buffer::FromString("pong");
                  });
  Messenger outer(rt_, h2_, "outer", ExecutionMode::kServiced,
                  [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                    LEGION_ASSIGN_OR_RETURN(
                        Buffer reply,
                        ctx.messenger.call(inner.endpoint(), "Ping", Buffer{},
                                           ctx.call.env, 5'000'000));
                    return Buffer::FromString("outer+" + reply.as_string());
                  });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(outer.endpoint(), "Go", Buffer{},
                            EnvTriple::System(), 10'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "outer+pong");
}

// The headline: the full Legion core bootstrapped over real sockets.
TEST_F(TcpRuntimeTest, WholeLegionSystemBootsOverTcp) {
  core::LegionSystem system(rt_, core::SystemConfig{});
  ASSERT_TRUE(sim::RegisterSampleObjects(system.registry()).ok());
  const Status st = system.bootstrap();
  ASSERT_TRUE(st.ok()) << st.to_string();

  auto client = system.make_client(h1_);
  core::wire::DeriveRequest derive;
  derive.name = "Worker";
  derive.instance_impl = std::string(sim::WorkerImpl::kName);
  auto cls = client->derive(core::LegionObjectLoid(), derive);
  ASSERT_TRUE(cls.ok()) << cls.status().to_string();

  auto object = client->create(cls->loid, sim::WorkerInit(0, 0));
  ASSERT_TRUE(object.ok()) << object.status().to_string();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->ref(object->loid).call("Increment", Buffer{}).ok());
  }
  auto raw = client->ref(object->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  Reader r(*raw);
  EXPECT_EQ(r.i64(), 3);

  // Deactivate and reactivate-on-reference, with every hop a TCP exchange.
  core::wire::LoidRequest req{object->loid};
  auto j1 = rt_.topology().jurisdictions().front().id;
  ASSERT_TRUE(client->ref(system.magistrate_of(j1))
                  .call(core::methods::kDeactivate, req.to_buffer())
                  .ok());
  auto back = client->ref(object->loid).call("Get", Buffer{});
  ASSERT_TRUE(back.ok()) << back.status().to_string();
  Reader r2(*back);
  EXPECT_EQ(r2.i64(), 3);
}

}  // namespace
}  // namespace legion::rt
