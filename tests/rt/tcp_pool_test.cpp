// The persistent-connection pool behind the socket runtimes' post:
// keep-alive reuse, bounded fd usage under sustained load, connect-failure
// classification (EMFILE is resource pressure, not a stale binding), and
// pool consistency under endpoint close/reopen races (run under TSan in
// CI). Typed over both socket transports — TcpRuntime (thread-per-
// connection) and EpollRuntime (M:N reactor) share the ConnPool sender, so
// every pool invariant must hold identically for both.
#include <gtest/gtest.h>

#include <sys/resource.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <thread>
#include <vector>

#include "rt/epoll_runtime.hpp"
#include "rt/messenger.hpp"
#include "rt/tcp_runtime.hpp"

namespace legion::rt {
namespace {

template <typename RuntimeT>
class TcpPoolTest : public ::testing::Test {
 protected:
  void MakeTopology(Runtime& rt) {
    auto j = rt.topology().add_jurisdiction("j");
    h1_ = rt.topology().add_host("h1", {j}, 1e9);
    h2_ = rt.topology().add_host("h2", {j}, 1e9);
  }

  HostId h1_, h2_;
};

using SocketRuntimes = ::testing::Types<TcpRuntime, EpollRuntime>;
TYPED_TEST_SUITE(TcpPoolTest, SocketRuntimes);

TYPED_TEST(TcpPoolTest, RoundTripsReuseConnections) {
  TypeParam rt;
  this->MakeTopology(rt);
  Messenger server(rt, this->h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader& args) -> Result<Buffer> {
                     return Buffer::FromString(args.str());
                   });
  Messenger client(rt, this->h1_, "client", ExecutionMode::kDriver, nullptr);

  constexpr int kCalls = 200;
  for (int i = 0; i < kCalls; ++i) {
    Buffer args;
    Writer w(args);
    w.str("ping");
    auto reply = client.call(server.endpoint(), "Echo", std::move(args),
                             EnvTriple::System(), 5'000'000);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  }

  // One request and one reply frame per call, but only two sockets total:
  // client->server and server->client, dialed once each.
  EXPECT_LE(rt.metrics().counter("rt.tcp.dials").value(), 2u);
  EXPECT_GE(rt.metrics().counter("rt.tcp.pool_hits").value(),
            2u * kCalls - 2u);
  EXPECT_EQ(rt.metrics().counter("rt.tcp.reconnects").value(), 0u);
}

TYPED_TEST(TcpPoolTest, SoakHoldsBoundedFdsOverTenThousandPosts) {
  TypeParam rt;
  this->MakeTopology(rt);
  const EndpointId sink = rt.create_endpoint(
      this->h2_, "sink", [](Envelope&&) {}, ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(this->h1_, "src", nullptr, ExecutionMode::kDriver);

  constexpr std::uint64_t kPosts = 10'000;
  for (std::uint64_t i = 0; i < kPosts; ++i) {
    const Status st =
        rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}});
    ASSERT_TRUE(st.ok()) << "post " << i << ": " << st.to_string();
  }
  // Everything arrives eventually (frames multiplex over one stream)...
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.endpoint_stats(sink).received < kPosts &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rt.endpoint_stats(sink).received, kPosts);
  // ...yet the client side never held more sockets than the pool bound, and
  // dialed a handful of times, not ten thousand.
  const auto open = rt.metrics().gauge("rt.tcp.open_connections").value();
  EXPECT_GT(open, 0);
  EXPECT_LE(open, static_cast<std::int64_t>(rt.options().max_idle_per_peer));
  EXPECT_LE(rt.metrics().counter("rt.tcp.dials").value(),
            rt.options().max_idle_per_peer);
}

TYPED_TEST(TcpPoolTest, IdleConnectionsAreReaped) {
  TcpOptions options;
  options.idle_reap = std::chrono::microseconds(1);  // everything is stale
  TypeParam rt(options);
  this->MakeTopology(rt);
  const EndpointId sink = rt.create_endpoint(
      this->h2_, "sink", [](Envelope&&) {}, ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(this->h1_, "src", nullptr, ExecutionMode::kDriver);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(
        rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Every acquire found only an expired socket, reaped it, and redialed.
  EXPECT_GE(rt.metrics().counter("rt.tcp.reaped").value(), 4u);
  EXPECT_GE(rt.metrics().counter("rt.tcp.dials").value(), 5u);
}

// Regression: fd exhaustion during dial used to be reported as
// kStaleBinding ("connection refused"), which triggered binding
// invalidation and a pointless Section 4.1.4 repair storm — precisely when
// the process was starved of descriptors and per-message sockets were the
// cause. It must surface as kUnavailable.
TYPED_TEST(TcpPoolTest, FdExhaustionIsUnavailableNotStaleBinding) {
  TcpOptions options;
  options.pooled = false;  // force a dial per post
  TypeParam rt(options);
  this->MakeTopology(rt);
  const EndpointId sink = rt.create_endpoint(
      this->h2_, "sink", [](Envelope&&) {}, ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(this->h1_, "src", nullptr, ExecutionMode::kDriver);
  ASSERT_TRUE(
      rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());

  rlimit saved{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &saved), 0);
  rlimit low = saved;
  low.rlim_cur = 64;
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &low), 0);
  // Fill every descriptor slot below the lowered limit so the next
  // socket() genuinely fails with EMFILE.
  std::vector<int> fillers;
  for (;;) {
    const int fd = ::open("/dev/null", O_RDONLY);
    if (fd < 0) break;
    fillers.push_back(fd);
  }

  const Status st = rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}});
  EXPECT_EQ(st.code(), StatusCode::kUnavailable) << st.to_string();

  for (int fd : fillers) ::close(fd);
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &saved), 0);

  // With descriptors back, the same destination is immediately reachable:
  // nothing was invalidated.
  EXPECT_TRUE(
      rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
}

// Pool consistency while destination endpoints churn: posters race against
// close/reopen of their target. Every post must resolve to ok, a stale
// binding (endpoint gone / listener refused), or unavailable — never crash,
// deadlock, leak a connection past the bound, or deliver to a dead inbox.
TYPED_TEST(TcpPoolTest, PoolSurvivesEndpointCloseReopenRaces) {
  TypeParam rt;
  this->MakeTopology(rt);
  const EndpointId src =
      rt.create_endpoint(this->h1_, "src", nullptr, ExecutionMode::kDriver);

  std::atomic<std::uint64_t> current{0};
  auto reopen = [&] {
    const EndpointId id = rt.create_endpoint(
        this->h2_, "victim", [](Envelope&&) {}, ExecutionMode::kServiced);
    current.store(id.value);
    return id;
  };
  EndpointId victim = reopen();

  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> ok_posts{0};
  std::vector<std::thread> posters;
  for (int t = 0; t < 4; ++t) {
    posters.emplace_back([&] {
      while (!stop.load()) {
        const EndpointId dst{current.load()};
        const Status st =
            rt.post(Envelope{src, dst, DeliveryKind::kData, Buffer{}});
        if (st.ok()) {
          ok_posts.fetch_add(1);
        } else {
          EXPECT_TRUE(st.code() == StatusCode::kStaleBinding ||
                      st.code() == StatusCode::kUnavailable)
              << st.to_string();
        }
      }
    });
  }
  for (int round = 0; round < 40; ++round) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    rt.close_endpoint(victim);
    victim = reopen();
  }
  stop.store(true);
  for (auto& t : posters) t.join();

  EXPECT_GT(ok_posts.load(), 0u);
  // The final incarnation still works.
  EXPECT_TRUE(
      rt.post(Envelope{src, victim, DeliveryKind::kData, Buffer{}}).ok());
}

TYPED_TEST(TcpPoolTest, PerMessageAblationStillDelivers) {
  TcpOptions options;
  options.pooled = false;
  TypeParam rt(options);
  this->MakeTopology(rt);
  Messenger server(rt, this->h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return Buffer::FromString("pong");
                   });
  Messenger client(rt, this->h1_, "client", ExecutionMode::kDriver, nullptr);
  constexpr std::uint64_t kCalls = 50;
  for (std::uint64_t i = 0; i < kCalls; ++i) {
    auto reply = client.call(server.endpoint(), "Ping", Buffer{},
                             EnvTriple::System(), 5'000'000);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  }
  // The ablation really does pay one connect per frame.
  EXPECT_GE(rt.metrics().counter("rt.tcp.dials").value(), 2u * kCalls);
  EXPECT_EQ(rt.metrics().counter("rt.tcp.pool_hits").value(), 0u);
}

}  // namespace
}  // namespace legion::rt
