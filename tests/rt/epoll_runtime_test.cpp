// The M:N event-driven runtime: per-host shared listeners, a fixed
// work-stealing worker pool with blocked-worker compensation, and frames
// demultiplexed by the reactor — same wire format and posting semantics as
// TcpRuntime, a constant number of threads regardless of endpoint count.
#include <gtest/gtest.h>

#include <chrono>
#include <thread>
#include <vector>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/epoll_runtime.hpp"
#include "rt/messenger.hpp"
#include "sim/sample_objects.hpp"

namespace legion::rt {
namespace {

class EpollRuntimeTest : public ::testing::Test {
 protected:
  void MakeTopology(Runtime& rt) {
    auto j = rt.topology().add_jurisdiction("j");
    h1_ = rt.topology().add_host("h1", {j}, 1e9);
    h2_ = rt.topology().add_host("h2", {j}, 1e9);
  }

  HostId h1_, h2_;
};

// Endpoints do not own sockets: they share their host's listener. This is
// what makes a million resident objects possible (ephemeral ports top out
// around 28k).
TEST_F(EpollRuntimeTest, EndpointsShareTheirHostListener) {
  EpollRuntime rt;
  MakeTopology(rt);
  const EndpointId a = rt.create_endpoint(h1_, "a", [](Envelope&&) {},
                                          ExecutionMode::kServiced);
  const EndpointId b = rt.create_endpoint(h1_, "b", [](Envelope&&) {},
                                          ExecutionMode::kServiced);
  const EndpointId c = rt.create_endpoint(h2_, "c", [](Envelope&&) {},
                                          ExecutionMode::kServiced);
  EXPECT_NE(rt.port_of(a), 0);
  EXPECT_EQ(rt.port_of(a), rt.port_of(b));
  EXPECT_NE(rt.port_of(a), rt.port_of(c));
}

TEST_F(EpollRuntimeTest, MessengerRoundTripOverEpoll) {
  EpollRuntime rt;
  MakeTopology(rt);
  Messenger server(rt, h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext& ctx, Reader& args) -> Result<Buffer> {
                     return Buffer::FromString(ctx.call.method + ":" +
                                               args.str());
                   });
  Messenger client(rt, h1_, "client", ExecutionMode::kDriver, nullptr);
  Buffer args;
  Writer w(args);
  w.str("over-epoll");
  auto result = client.call(server.endpoint(), "Echo", std::move(args),
                            EnvTriple::System(), 5'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "Echo:over-epoll");
}

// A worker whose handler blocks in a nested call must not wedge the pool:
// with a single worker, "outer calls inner" only completes because the pool
// notices the blocked worker and spawns a spare to service inner.
TEST_F(EpollRuntimeTest, NestedCallsCompensateBlockedWorkers) {
  EpollOptions options;
  options.workers = 1;
  EpollRuntime rt(options);
  MakeTopology(rt);
  Messenger inner(rt, h2_, "inner", ExecutionMode::kServiced,
                  [](ServerContext&, Reader&) -> Result<Buffer> {
                    return Buffer::FromString("pong");
                  });
  Messenger outer(rt, h2_, "outer", ExecutionMode::kServiced,
                  [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                    LEGION_ASSIGN_OR_RETURN(
                        Buffer reply,
                        ctx.messenger.call(inner.endpoint(), "Ping", Buffer{},
                                           ctx.call.env, 5'000'000));
                    return Buffer::FromString("outer+" + reply.as_string());
                  });
  Messenger client(rt, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(outer.endpoint(), "Go", Buffer{},
                            EnvTriple::System(), 10'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "outer+pong");
  EXPECT_GE(rt.metrics().counter("rt.epoll.spare_workers").value(), 1u);
}

// Exercises the reactor's incremental frame parser: payloads far larger
// than any single nonblocking read arrive intact.
TEST_F(EpollRuntimeTest, LargePayloadSurvivesFraming) {
  EpollRuntime rt;
  MakeTopology(rt);
  Buffer blob;
  for (int i = 0; i < 100'000; ++i) {
    const auto byte = static_cast<std::uint8_t>(i * 31);
    blob.append(&byte, 1);
  }
  Messenger server(rt, h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader& args) -> Result<Buffer> {
                     return args.buffer();
                   });
  Messenger client(rt, h1_, "client", ExecutionMode::kDriver, nullptr);
  Buffer args;
  Writer w(args);
  w.buffer(blob);
  auto result = client.call(server.endpoint(), "Blob", std::move(args),
                            EnvTriple::System(), 10'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(*result, blob);
}

TEST_F(EpollRuntimeTest, ClosedEndpointIsStaleBinding) {
  EpollRuntime rt;
  MakeTopology(rt);
  const EndpointId dead = rt.create_endpoint(h2_, "dead", [](Envelope&&) {},
                                             ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  rt.close_endpoint(dead);
  EXPECT_EQ(
      rt.post(Envelope{src, dead, DeliveryKind::kData, Buffer{}}).code(),
      StatusCode::kStaleBinding);
}

// The M:N invariant itself: ten thousand resident serviced endpoints, and
// the runtime's thread count stays workers + reactor. (ThreadRuntime would
// need ten thousand threads; TcpRuntime ten thousand listener fds plus a
// thread per accepted stream.)
TEST_F(EpollRuntimeTest, ThousandsOfIdleEndpointsCostNoThreads) {
  EpollOptions options;
  options.workers = 2;
  EpollRuntime rt(options);
  MakeTopology(rt);

  constexpr int kEndpoints = 10'000;
  std::vector<EndpointId> eps;
  eps.reserve(kEndpoints);
  for (int i = 0; i < kEndpoints; ++i) {
    eps.push_back(rt.create_endpoint(h2_, "resident", [](Envelope&&) {},
                                     ExecutionMode::kServiced));
    ASSERT_TRUE(eps.back().valid());
  }
  EXPECT_EQ(rt.runtime_threads(), 3u);  // 2 workers + 1 reactor

  // The population is live, not decorative: any member delivers.
  const EndpointId src =
      rt.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  const EndpointId probe = eps[kEndpoints / 2];
  ASSERT_TRUE(
      rt.post(Envelope{src, probe, DeliveryKind::kData, Buffer{}}).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.endpoint_stats(probe).received < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rt.endpoint_stats(probe).received, 1u);
  EXPECT_EQ(rt.runtime_threads(), 3u);  // plain delivery never blocks
}

// Unlike TcpRuntime, the fault plan is consulted on post (like
// ThreadRuntime): recovery and partition experiments run over real sockets.
TEST_F(EpollRuntimeTest, FaultPlanDropsPostsOverRealSockets) {
  EpollRuntime rt;
  MakeTopology(rt);
  const EndpointId sink = rt.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                             ExecutionMode::kServiced);
  const EndpointId src =
      rt.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);

  rt.faults().take_host_down(h2_);
  for (int i = 0; i < 5; ++i) {
    // Dropped in flight, not bounced: the sender cannot tell.
    ASSERT_TRUE(
        rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
  }
  EXPECT_EQ(rt.stats().dropped, 5u);
  EXPECT_EQ(rt.endpoint_stats(sink).received, 0u);

  rt.faults().bring_host_up(h2_);
  ASSERT_TRUE(
      rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (rt.endpoint_stats(sink).received < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(rt.endpoint_stats(sink).received, 1u);
}

TEST_F(EpollRuntimeTest, ListenBacklogOptionIsPlumbed) {
  TcpOptions tcp;
  tcp.listen_backlog = 8;
  EpollRuntime rt(tcp);
  EXPECT_EQ(rt.options().listen_backlog, 8);
}

// The headline: the full Legion core bootstrapped over the M:N runtime.
TEST_F(EpollRuntimeTest, WholeLegionSystemBootsOverEpoll) {
  EpollRuntime rt;
  MakeTopology(rt);
  core::LegionSystem system(rt, core::SystemConfig{});
  ASSERT_TRUE(sim::RegisterSampleObjects(system.registry()).ok());
  const Status st = system.bootstrap();
  ASSERT_TRUE(st.ok()) << st.to_string();

  auto client = system.make_client(h1_);
  core::wire::DeriveRequest derive;
  derive.name = "Worker";
  derive.instance_impl = std::string(sim::WorkerImpl::kName);
  auto cls = client->derive(core::LegionObjectLoid(), derive);
  ASSERT_TRUE(cls.ok()) << cls.status().to_string();

  auto object = client->create(cls->loid, sim::WorkerInit(0, 0));
  ASSERT_TRUE(object.ok()) << object.status().to_string();

  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(client->ref(object->loid).call("Increment", Buffer{}).ok());
  }
  auto raw = client->ref(object->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  Reader r(*raw);
  EXPECT_EQ(r.i64(), 3);
}

}  // namespace
}  // namespace legion::rt
