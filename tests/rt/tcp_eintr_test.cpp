// Signals mid-transfer must not kill a TCP delivery (regression: the
// read/write loops treated EINTR as fatal, so any signal landing during a
// blocking socket call dropped the message).
//
// An interval timer showers the process with SIGALRM (installed WITHOUT
// SA_RESTART, so blocking syscalls genuinely return EINTR) while large
// payloads — big enough to fill the loopback socket buffer and block the
// writer — stream between endpoints. Every transfer must complete intact.
#include <gtest/gtest.h>

#include <sys/time.h>

#include <chrono>
#include <csignal>
#include <cstdint>
#include <thread>
#include <vector>

#include "rt/messenger.hpp"
#include "rt/tcp_runtime.hpp"

namespace legion::rt {
namespace {

void NoopHandler(int) {}

// Scoped SIGALRM storm: ~every 2 ms for the lifetime of the object.
class SignalStorm {
 public:
  SignalStorm() {
    struct sigaction sa = {};
    sa.sa_handler = NoopHandler;
    sigemptyset(&sa.sa_mask);
    sa.sa_flags = 0;  // deliberately NOT SA_RESTART
    sigaction(SIGALRM, &sa, &old_action_);

    itimerval timer = {};
    timer.it_interval.tv_usec = 2'000;
    timer.it_value.tv_usec = 2'000;
    setitimer(ITIMER_REAL, &timer, &old_timer_);
  }
  ~SignalStorm() {
    setitimer(ITIMER_REAL, &old_timer_, nullptr);
    sigaction(SIGALRM, &old_action_, nullptr);
  }

 private:
  struct sigaction old_action_ = {};
  itimerval old_timer_ = {};
};

TEST(TcpEintrTest, SignalsMidTransferDoNotDropMessages) {
  TcpRuntime rt;
  auto j = rt.topology().add_jurisdiction("j");
  const HostId h1 = rt.topology().add_host("h1", {j}, 1e9);
  const HostId h2 = rt.topology().add_host("h2", {j}, 1e9);

  // 4 MiB payloads: far beyond the loopback socket buffer, so both the
  // writer and the acceptor's reader block mid-transfer — exactly where a
  // signal used to be fatal.
  std::vector<std::uint8_t> raw(4 * 1024 * 1024);
  for (std::size_t i = 0; i < raw.size(); ++i) {
    raw[i] = static_cast<std::uint8_t>(i * 131);
  }
  const Buffer blob{std::move(raw)};

  Messenger server(rt, h2, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader& args) -> Result<Buffer> {
                     // Round-trip the payload so the reply leg is equally
                     // exposed to interruption.
                     return args.buffer();
                   });
  Messenger client(rt, h1, "client", ExecutionMode::kDriver, nullptr);

  SignalStorm storm;
  constexpr int kTransfers = 8;
  for (int i = 0; i < kTransfers; ++i) {
    Buffer args;
    Writer w(args);
    w.buffer(blob);
    auto result = client.call(server.endpoint(), "Blob", std::move(args),
                              EnvTriple::System(), 30'000'000);
    ASSERT_TRUE(result.ok()) << "transfer " << i << ": "
                             << result.status().to_string();
    ASSERT_EQ(*result, blob) << "transfer " << i << " corrupted";
  }

  // The sender bumps `delivered` after the frame is already readable, so the
  // final reply's tick can land just after call() returns — give the server's
  // service thread a beat to finish its post() before asserting.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(2);
  while (rt.stats().delivered < 2u * kTransfers &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  EXPECT_EQ(rt.stats().delivered, 2u * kTransfers);
}

}  // namespace
}  // namespace legion::rt
