// Unit tests for the observability substrate: metric primitives, the
// registry, and the bounded trace ring.
#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace legion::obs {
namespace {

TEST(Counter, StartsAtZeroAndCounts) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, AddsAndSubtracts) {
  Gauge g;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, BucketsAreLogScale) {
  // Bucket 0 holds exactly {0}; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  // Everything past the last bucket boundary collapses into the last bucket.
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);
}

TEST(Histogram, TracksCountSumMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 90u);
  EXPECT_EQ(h.max(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, PercentileIsMonotoneAndBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const std::uint64_t p50 = h.percentile(0.50);
  const std::uint64_t p99 = h.percentile(0.99);
  EXPECT_LE(p50, p99);
  // Log-scale buckets: the answer is the ceiling of the holding bucket, so
  // it can overshoot by at most 2x, never undershoot below the true value's
  // bucket floor.
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 1023u);
  EXPECT_LE(p99, 1023u);
}

TEST(Registry, SameNameSameInstrument) {
  Registry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, RowsAreSortedAndTyped) {
  Registry r;
  r.counter("zeta").inc(3);
  r.gauge("alpha").set(-2);
  r.histogram("mid").record(7);
  const auto rows = r.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[0].kind, MetricKind::kGauge);
  EXPECT_EQ(rows[0].gauge, -2);
  EXPECT_EQ(rows[1].name, "mid");
  EXPECT_EQ(rows[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_EQ(rows[2].name, "zeta");
  EXPECT_EQ(rows[2].kind, MetricKind::kCounter);
  EXPECT_EQ(rows[2].count, 3u);
}

TEST(Registry, ConcurrentRegistrationAndBumpsAreExact) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      Counter& c = r.counter("shared");
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(TraceId, NeverZeroAndUnique) {
  std::set<TraceId> seen;
  for (int i = 0; i < 1000; ++i) {
    const TraceId id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TraceHop MakeHop(TraceId id, std::uint32_t hop) {
  TraceHop h;
  h.trace_id = id;
  h.hop = hop;
  h.kind = HopKind::kInvoke;
  h.set_method("M");
  return h;
}

TEST(TraceRing, RecordsInOrder) {
  TraceRing ring(8);
  for (std::uint32_t i = 0; i < 5; ++i) ring.record(MakeHop(1, i));
  const auto hops = ring.last(5);
  ASSERT_EQ(hops.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(hops[i].hop, i);
  EXPECT_EQ(ring.recorded(), 5u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i) ring.record(MakeHop(1, i));
  const auto hops = ring.last(4);
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops.front().hop, 6u);  // oldest surviving
  EXPECT_EQ(hops.back().hop, 9u);   // newest
  EXPECT_EQ(ring.recorded(), 10u);

  const auto fewer = ring.last(2);
  ASSERT_EQ(fewer.size(), 2u);
  EXPECT_EQ(fewer.front().hop, 8u);
  EXPECT_EQ(fewer.back().hop, 9u);
}

TEST(TraceRing, ForTraceFiltersById) {
  TraceRing ring(16);
  ring.record(MakeHop(7, 0));
  ring.record(MakeHop(9, 0));
  ring.record(MakeHop(7, 1));
  const auto hops = ring.for_trace(7);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].hop, 0u);
  EXPECT_EQ(hops[1].hop, 1u);
}

TEST(TraceRing, DisabledRecordsNothing) {
  TraceRing ring(4);
  ring.set_enabled(false);
  ring.record(MakeHop(1, 0));
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.last(4).empty());
  ring.set_enabled(true);
  ring.record(MakeHop(1, 1));
  EXPECT_EQ(ring.recorded(), 1u);
}

TEST(TraceHop, MethodNameIsTruncatedSafely) {
  TraceHop h;
  h.set_method("a-method-name-much-longer-than-the-inline-buffer-holds");
  EXPECT_EQ(h.method_view().size(), h.method.size() - 1);
  EXPECT_EQ(h.method_view().substr(0, 8), "a-method");
}

}  // namespace
}  // namespace legion::obs
