// Unit tests for the observability substrate: metric primitives, the
// registry, and the bounded trace ring.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <string_view>
#include <thread>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace legion::obs {
namespace {

TEST(Counter, StartsAtZeroAndCounts) {
  Counter c;
  EXPECT_EQ(c.value(), 0u);
  c.inc();
  c.inc(41);
  EXPECT_EQ(c.value(), 42u);
  c.reset();
  EXPECT_EQ(c.value(), 0u);
}

TEST(Gauge, AddsAndSubtracts) {
  Gauge g;
  g.add(5);
  g.sub(2);
  EXPECT_EQ(g.value(), 3);
  g.set(-7);
  EXPECT_EQ(g.value(), -7);
}

TEST(Histogram, BucketsAreLogScale) {
  // Bucket 0 holds exactly {0}; bucket b holds [2^(b-1), 2^b - 1].
  EXPECT_EQ(Histogram::bucket_of(0), 0u);
  EXPECT_EQ(Histogram::bucket_of(1), 1u);
  EXPECT_EQ(Histogram::bucket_of(2), 2u);
  EXPECT_EQ(Histogram::bucket_of(3), 2u);
  EXPECT_EQ(Histogram::bucket_of(4), 3u);
  EXPECT_EQ(Histogram::bucket_of(1023), 10u);
  EXPECT_EQ(Histogram::bucket_of(1024), 11u);
  // Everything past the last bucket boundary collapses into the last bucket.
  EXPECT_EQ(Histogram::bucket_of(~0ull), Histogram::kBuckets - 1);
}

TEST(Histogram, TracksCountSumMaxMean) {
  Histogram h;
  h.record(10);
  h.record(20);
  h.record(60);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 90u);
  EXPECT_EQ(h.max(), 60u);
  EXPECT_DOUBLE_EQ(h.mean(), 30.0);
}

TEST(Histogram, PercentileIsMonotoneAndBounded) {
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const std::uint64_t p50 = h.percentile(0.50);
  const std::uint64_t p99 = h.percentile(0.99);
  EXPECT_LE(p50, p99);
  // The estimate stays inside the holding bucket's [floor, ceiling].
  EXPECT_GE(p50, 256u);
  EXPECT_LE(p50, 511u);
  EXPECT_GE(p99, 512u);
  EXPECT_LE(p99, 1023u);
}

TEST(Histogram, PercentileInterpolatesInsteadOfReportingCeilings) {
  // Regression for the factor-of-two bias: the old implementation returned
  // the holding bucket's ceiling, so a uniform 1..1000 distribution reported
  // p50 = 511 (true value: 500). Linear interpolation within the bucket must
  // land near the true rank value, not at the bucket edge.
  Histogram h;
  for (std::uint64_t v = 1; v <= 1000; ++v) h.record(v);
  const std::uint64_t p50 = h.percentile(0.50);
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 16.0);
  // Degenerate distribution: every sample in one bucket still interpolates
  // to roughly the bucket midpoint rather than pinning to the ceiling.
  Histogram one;
  for (int i = 0; i < 100; ++i) one.record(100);  // bucket [64, 127]
  EXPECT_LT(one.percentile(0.5), 127u);
  EXPECT_GE(one.percentile(0.5), 64u);
  // p=1.0 still reaches the top of the last occupied bucket.
  EXPECT_EQ(h.percentile(1.0), 1023u);
}

TEST(Histogram, SnapshotIsSelfConsistent) {
  Histogram h;
  h.record(3);
  h.record(300);
  const HistogramSnapshot snap = h.snapshot();
  std::uint64_t bucket_total = 0;
  for (std::uint64_t b : snap.buckets) bucket_total += b;
  EXPECT_EQ(snap.count, bucket_total);
  EXPECT_EQ(snap.count, 2u);
  EXPECT_EQ(snap.sum, 303u);
  EXPECT_EQ(snap.max, 300u);
  EXPECT_EQ(snap.percentile(0.0), h.percentile(0.0));
  EXPECT_EQ(snap.percentile(0.99), h.percentile(0.99));
}

TEST(Histogram, ResetToleratesConcurrentRecords) {
  // Writers hammer one histogram while the main thread resets it in a loop.
  // The claim under test (and under TSan): no torn reads ever surface — a
  // percentile or snapshot taken mid-reset is internally consistent (count
  // equals the bucket sum it was computed from), and the final reset leaves
  // a cleanly empty instrument.
  Histogram h;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&h, &stop, t] {
      std::uint64_t v = 1 + static_cast<std::uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        h.record(v);
        v = (v * 2654435761u) % 4096;
      }
    });
  }
  for (int i = 0; i < 1000; ++i) {
    h.reset();
    const HistogramSnapshot snap = h.snapshot();
    std::uint64_t bucket_total = 0;
    for (std::uint64_t b : snap.buckets) bucket_total += b;
    EXPECT_EQ(snap.count, bucket_total);
    (void)h.percentile(0.99);  // must not crash or divide by a stale count
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  h.reset();
  EXPECT_EQ(h.snapshot().count, h.snapshot().count);  // no torn final state
}

TEST(HistogramSnapshot, MergeAndDelta) {
  Histogram a;
  a.record(10);
  a.record(1000);
  Histogram b;
  b.record(20);
  HistogramSnapshot sa = a.snapshot();
  const HistogramSnapshot sb = b.snapshot();
  HistogramSnapshot merged = sa;
  merged.merge(sb);
  EXPECT_EQ(merged.count, 3u);
  EXPECT_EQ(merged.sum, 1030u);
  EXPECT_EQ(merged.max, 1000u);

  a.record(5000);
  const HistogramSnapshot later = a.snapshot();
  const HistogramSnapshot delta = later.delta_since(sa);
  EXPECT_EQ(delta.count, 1u);
  EXPECT_EQ(delta.sum, 5000u);
}

TEST(Registry, SameNameSameInstrument) {
  Registry r;
  Counter& a = r.counter("x");
  Counter& b = r.counter("x");
  EXPECT_EQ(&a, &b);
  a.inc();
  EXPECT_EQ(b.value(), 1u);
}

TEST(Registry, RowsAreSortedAndTyped) {
  Registry r;
  r.counter("zeta").inc(3);
  r.gauge("alpha").set(-2);
  r.histogram("mid").record(7);
  const auto rows = r.rows();
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].name, "alpha");
  EXPECT_EQ(rows[0].kind, MetricKind::kGauge);
  EXPECT_EQ(rows[0].gauge, -2);
  EXPECT_EQ(rows[1].name, "mid");
  EXPECT_EQ(rows[1].kind, MetricKind::kHistogram);
  EXPECT_EQ(rows[1].count, 1u);
  EXPECT_EQ(rows[2].name, "zeta");
  EXPECT_EQ(rows[2].kind, MetricKind::kCounter);
  EXPECT_EQ(rows[2].count, 3u);
}

TEST(Registry, ConcurrentRegistrationAndBumpsAreExact) {
  Registry r;
  constexpr int kThreads = 8;
  constexpr int kIncs = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&r] {
      Counter& c = r.counter("shared");
      for (int i = 0; i < kIncs; ++i) c.inc();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(r.counter("shared").value(),
            static_cast<std::uint64_t>(kThreads) * kIncs);
}

TEST(TraceId, NeverZeroAndUnique) {
  std::set<TraceId> seen;
  for (int i = 0; i < 1000; ++i) {
    const TraceId id = NextTraceId();
    EXPECT_NE(id, 0u);
    EXPECT_TRUE(seen.insert(id).second);
  }
}

TraceHop MakeHop(TraceId id, std::uint32_t hop) {
  TraceHop h;
  h.trace_id = id;
  h.hop = hop;
  h.kind = HopKind::kInvoke;
  h.set_method("M");
  return h;
}

TEST(TraceRing, RecordsInOrder) {
  TraceRing ring(8);
  for (std::uint32_t i = 0; i < 5; ++i) ring.record(MakeHop(1, i));
  const auto hops = ring.last(5);
  ASSERT_EQ(hops.size(), 5u);
  for (std::uint32_t i = 0; i < 5; ++i) EXPECT_EQ(hops[i].hop, i);
  EXPECT_EQ(ring.recorded(), 5u);
}

TEST(TraceRing, OverwritesOldestWhenFull) {
  TraceRing ring(4);
  for (std::uint32_t i = 0; i < 10; ++i) ring.record(MakeHop(1, i));
  const auto hops = ring.last(4);
  ASSERT_EQ(hops.size(), 4u);
  EXPECT_EQ(hops.front().hop, 6u);  // oldest surviving
  EXPECT_EQ(hops.back().hop, 9u);   // newest
  EXPECT_EQ(ring.recorded(), 10u);

  const auto fewer = ring.last(2);
  ASSERT_EQ(fewer.size(), 2u);
  EXPECT_EQ(fewer.front().hop, 8u);
  EXPECT_EQ(fewer.back().hop, 9u);
}

TEST(TraceRing, ForTraceFiltersById) {
  TraceRing ring(16);
  ring.record(MakeHop(7, 0));
  ring.record(MakeHop(9, 0));
  ring.record(MakeHop(7, 1));
  const auto hops = ring.for_trace(7);
  ASSERT_EQ(hops.size(), 2u);
  EXPECT_EQ(hops[0].hop, 0u);
  EXPECT_EQ(hops[1].hop, 1u);
}

TEST(TraceRing, DisabledRecordsNothing) {
  TraceRing ring(4);
  ring.set_enabled(false);
  ring.record(MakeHop(1, 0));
  EXPECT_EQ(ring.recorded(), 0u);
  EXPECT_TRUE(ring.last(4).empty());
  ring.set_enabled(true);
  ring.record(MakeHop(1, 1));
  EXPECT_EQ(ring.recorded(), 1u);
}

TEST(TraceHop, MethodNameIsTruncatedAtTokenBoundary) {
  // Over-long labels drop whole trailing tokens instead of cutting
  // mid-token: "…-much-longer-…" keeps "a-method-name-much", never a
  // misleading "a-method-name-much-long".
  TraceHop h;
  h.set_method("a-method-name-much-longer-than-the-inline-buffer-holds");
  EXPECT_EQ(h.method_view(), "a-method-name-much");
  // The slot stays NUL-terminated.
  EXPECT_EQ(h.method[h.method_view().size()], '\0');
}

TEST(TraceHop, MethodNameOfExactly24CharsDropsLastToken) {
  // 24 chars is one over the 23-char capacity: the final token goes.
  const std::string_view name = "abcdefgh-ijklmnop-qrstuv";  // 24 chars
  ASSERT_EQ(name.size(), 24u);
  TraceHop h;
  h.set_method(name);
  EXPECT_EQ(h.method_view(), "abcdefgh-ijklmnop");
  EXPECT_EQ(h.method[h.method_view().size()], '\0');
}

TEST(TraceHop, MethodNameOf23CharsFitsExactly) {
  const std::string_view name = "abcdefgh-ijklmnop-qrstu";  // 23 chars
  ASSERT_EQ(name.size(), 23u);
  TraceHop h;
  h.set_method(name);
  EXPECT_EQ(h.method_view(), name);
  EXPECT_EQ(h.method[23], '\0');
}

TEST(TraceHop, SeparatorlessOverlongNameTakesHardCut) {
  // No token break to fall back to: the first 23 bytes survive.
  TraceHop h;
  h.set_method("abcdefghijklmnopqrstuvwxyz");
  EXPECT_EQ(h.method_view(), "abcdefghijklmnopqrstuvw");
  EXPECT_EQ(h.method_view().size(), 23u);
}

TEST(TraceSampler, DefaultSamplesEveryRoot) {
  TraceSampler s;
  EXPECT_EQ(s.every(), 1u);
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(s.sample());
}

TEST(TraceSampler, OneInNIsExactOverAWindow) {
  TraceSampler s;
  s.set_every(64);
  int sampled = 0;
  for (int i = 0; i < 640; ++i) sampled += s.sample() ? 1 : 0;
  EXPECT_EQ(sampled, 10);
  s.set_every(0);  // 0 normalizes to 1 (never divide by zero)
  EXPECT_EQ(s.every(), 1u);
  EXPECT_TRUE(s.sample());
}

TEST(TraceRing, WraparoundUnderConcurrentWritersAndReader) {
  // Four writers push hops through a tiny ring (forcing constant
  // wraparound) while a reader walks last() and for_trace(). The assertions
  // are sanity bounds; the real check is TSan finding no data race.
  TraceRing ring(32);
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&ring, &stop, t] {
      std::uint32_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        ring.record(MakeHop(static_cast<TraceId>(t + 1), i++));
      }
    });
  }
  for (int i = 0; i < 2000; ++i) {
    const auto recent = ring.last(32);
    EXPECT_LE(recent.size(), 32u);
    for (const auto& hop : recent) {
      EXPECT_GE(hop.trace_id, 1u);
      EXPECT_LE(hop.trace_id, 4u);
    }
    const auto one = ring.for_trace(2);
    for (const auto& hop : one) EXPECT_EQ(hop.trace_id, 2u);
  }
  stop.store(true);
  for (auto& t : writers) t.join();
  // Top the ring up from this thread so the post-race shape is deterministic
  // regardless of how far the writers got before stop.
  for (std::uint32_t i = 0; i < 32; ++i) ring.record(MakeHop(5, i));
  EXPECT_GE(ring.recorded(), 32u);
  const auto all = ring.last(32);
  ASSERT_EQ(all.size(), 32u);
  EXPECT_EQ(all.back().trace_id, 5u);
  EXPECT_EQ(all.back().hop, 31u);
}

}  // namespace
}  // namespace legion::obs
