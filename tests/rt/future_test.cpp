#include "rt/future.hpp"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace legion::rt {
namespace {

TEST(FutureTest, DefaultFutureIsInvalid) {
  Future<int> f;
  EXPECT_FALSE(f.valid());
  EXPECT_FALSE(f.ready());
}

TEST(FutureTest, PendingUntilSet) {
  Promise<int> p;
  Future<int> f = p.future();
  EXPECT_TRUE(f.valid());
  EXPECT_FALSE(f.ready());
  p.set(7);
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.take(), 7);
}

TEST(FutureTest, TakeConsumes) {
  Promise<std::string> p;
  Future<std::string> f = p.future();
  p.set("value");
  EXPECT_EQ(f.take(), "value");
  EXPECT_FALSE(f.valid());
}

TEST(FutureTest, MultipleFuturesObserveSamePromise) {
  Promise<int> p;
  Future<int> a = p.future();
  Future<int> b = p.future();
  p.set(3);
  EXPECT_TRUE(a.ready());
  EXPECT_TRUE(b.ready());
}

TEST(FutureTest, CrossThreadVisibility) {
  Promise<int> p;
  Future<int> f = p.future();
  std::thread t([&p] { p.set(99); });
  t.join();
  EXPECT_TRUE(f.ready());
  EXPECT_EQ(f.take(), 99);
}

}  // namespace
}  // namespace legion::rt
