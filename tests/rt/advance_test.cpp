// SimRuntime::advance(): modeling idle wall time in the virtual clock.
#include <gtest/gtest.h>

#include "rt/sim_runtime.hpp"

namespace legion::rt {
namespace {

class AdvanceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = rt_.topology().add_jurisdiction("j");
    h1_ = rt_.topology().add_host("h1", {j});
    h2_ = rt_.topology().add_host("h2", {j});
  }

  SimRuntime rt_{21};
  HostId h1_, h2_;
};

TEST_F(AdvanceTest, AdvancesIdleClockExactly) {
  EXPECT_EQ(rt_.now(), 0);
  rt_.advance(123'456);
  EXPECT_EQ(rt_.now(), 123'456);
  rt_.advance(1);
  EXPECT_EQ(rt_.now(), 123'457);
}

TEST_F(AdvanceTest, DeliversEventsDueWithinTheInterval) {
  int hits = 0;
  const EndpointId sink = rt_.create_endpoint(
      h2_, "sink", [&](Envelope&&) { ++hits; }, ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  ASSERT_TRUE(
      rt_.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());

  // Intra-jurisdiction latency is ~500us: advancing 10us delivers nothing,
  // advancing far past it delivers the message at its due time.
  rt_.advance(10);
  EXPECT_EQ(hits, 0);
  rt_.advance(1'000'000);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(rt_.now(), 1'000'010);
  EXPECT_EQ(rt_.pending_events(), 0u);
}

TEST_F(AdvanceTest, ZeroAdvanceIsNoop) {
  rt_.advance(0);
  EXPECT_EQ(rt_.now(), 0);
}

TEST_F(AdvanceTest, EventsBeyondTheIntervalStayQueued) {
  const EndpointId sink = rt_.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  ASSERT_TRUE(
      rt_.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
  rt_.advance(100);  // latency ~500us: not yet due
  EXPECT_EQ(rt_.pending_events(), 1u);
  EXPECT_EQ(rt_.now(), 100);
}

}  // namespace
}  // namespace legion::rt
