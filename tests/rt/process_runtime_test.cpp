// ProcessRuntime: address-space-disjoint objects for real. Each test spawns
// legion_objectd worker processes (path baked in via LEGION_OBJECTD_PATH)
// and exercises the spawn/call/crash/reap lifecycle across actual process
// boundaries — kill -9 here kills a real pid.
#include <gtest/gtest.h>

#include <chrono>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "core/comm.hpp"
#include "core/state_sections.hpp"
#include "persist/opr.hpp"
#include "rt/messenger.hpp"
#include "rt/process_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace legion::rt {
namespace {

constexpr const char* kObjectdPath = LEGION_OBJECTD_PATH;

// True while `pid` exists as a zombie (State: Z in /proc/<pid>/stat). A
// reaped pid has no /proc entry at all, which is the desired end state.
bool IsZombie(std::int64_t pid) {
  std::ifstream stat("/proc/" + std::to_string(pid) + "/stat");
  if (!stat) return false;  // no entry: fully reaped
  std::string line;
  std::getline(stat, line);
  // Field 3 follows the parenthesized comm, which may itself hold spaces.
  const auto close_paren = line.rfind(')');
  if (close_paren == std::string::npos || close_paren + 2 >= line.size()) {
    return false;
  }
  return line[close_paren + 2] == 'Z';
}

class ProcessRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = rt_.topology().add_jurisdiction("j");
    h1_ = rt_.topology().add_host("h1", {j}, 8.0);
    h2_ = rt_.topology().add_host("h2", {j}, 8.0);
    pc_ = rt_.process_control();
    ASSERT_NE(pc_, nullptr) << "parent-mode runtime must expose ProcessControl";
  }

  // Spawns one sim.worker object as its own process, counting from `start`.
  Result<SpawnInfo> SpawnWorker(const std::string& label,
                                std::int64_t start = 0) {
    persist::Opr opr;
    opr.loid = Loid{7, next_loid_++};
    opr.implementation = std::string(sim::WorkerImpl::kName);
    // OPR state travels in the named-sections format ActiveObject::restore
    // expects (the class object wraps raw init state the same way).
    opr.state = core::WrapPrimaryState(sim::WorkerInit(start, 0));
    opr.executable = kObjectdPath;

    SpawnSpec spec;
    spec.executable = opr.executable;
    spec.host = h2_;
    spec.label = label;
    spec.opr_bytes = opr.to_bytes();
    Writer hw(spec.handles_bytes);
    core::SystemHandles{}.Serialize(hw);
    return pc_->spawn_object(spec);
  }

  // The reaper runs on a 20 ms cadence; give a death comfortably more than
  // one tick to be discovered before declaring the runtime broken.
  bool AwaitChildDead(EndpointId endpoint, int timeout_ms = 5'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (!pc_->child_alive(endpoint)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  std::int64_t CallGet(Messenger& client, EndpointId worker) {
    auto raw = client.call(worker, "Get", Buffer{}, EnvTriple::System(),
                           5'000'000);
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
    if (!raw.ok()) return -1;
    Reader r(*raw);
    return r.i64();
  }

  ProcessRuntime rt_;
  ProcessControl* pc_ = nullptr;
  HostId h1_, h2_;
  std::uint64_t next_loid_ = 100;
};

TEST_F(ProcessRuntimeTest, SpawnedWorkerServesCallsAcrossProcessBoundary) {
  auto info = SpawnWorker("counter", 10);
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  EXPECT_GT(info->pid, 0);
  EXPECT_TRUE(pc_->child_alive(info->endpoint));

  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  for (int i = 0; i < 3; ++i) {
    auto inc = client.call(info->endpoint, "Increment", Buffer{},
                           EnvTriple::System(), 5'000'000);
    ASSERT_TRUE(inc.ok()) << inc.status().to_string();
  }
  EXPECT_EQ(CallGet(client, info->endpoint), 13);

  // The call crossed a real process boundary: the worker is a distinct pid.
  EXPECT_NE(info->pid, static_cast<std::int64_t>(::getpid()));
  EXPECT_EQ(rt_.metrics().gauge("rt.proc.live_children").value(), 1);
}

// The CLOEXEC regression test. legion_objectd scans /proc/self/fd first
// thing and refuses to run (exit 3 => failed ready handshake) if exec
// leaked any descriptor beyond stdio + the ready pipe. Spawning from a
// parent that holds many live sockets — endpoints, pooled client conns from
// a completed call — therefore proves every one of them is close-on-exec.
TEST_F(ProcessRuntimeTest, WorkerInheritsNoDescriptorsFromBusyParent) {
  for (int i = 0; i < 4; ++i) {
    rt_.create_endpoint(h1_, "busy", [](Envelope&&) {},
                        ExecutionMode::kServiced);
  }
  auto first = SpawnWorker("fd-audit-warmup");
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  CallGet(client, first->endpoint);  // leaves a pooled UDS conn open

  auto second = SpawnWorker("fd-audit");
  ASSERT_TRUE(second.ok())
      << "worker refused to start after the inherited-fd audit: "
      << second.status().to_string();
  EXPECT_TRUE(pc_->child_alive(second->endpoint));
}

TEST_F(ProcessRuntimeTest, PostToDeadChildFailsFastAsStaleBinding) {
  auto info = SpawnWorker("victim");
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  ASSERT_TRUE(pc_->kill_child(info->endpoint).ok());
  ASSERT_TRUE(AwaitChildDead(info->endpoint));

  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  EXPECT_EQ(
      rt_.post(Envelope{src, info->endpoint, DeliveryKind::kData, Buffer{}})
          .code(),
      StatusCode::kStaleBinding);
}

// The headline failure-mode contract: a kill -9 mid-call surfaces to the
// caller as kUnavailable (via the reaper's synthesized bounce), never as a
// timeout — the caller must not wait out its deadline to learn the worker
// died. SIGSTOP first so the request is provably still unanswered when the
// kill lands.
TEST_F(ProcessRuntimeTest, KillNineMidCallIsUnavailableNotTimeout) {
  auto info = SpawnWorker("mid-call-victim");
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  ASSERT_TRUE(pc_->pause_child(info->endpoint).ok());

  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto future = client.invoke(info->endpoint, "Get", Buffer{},
                              EnvTriple::System());
  ASSERT_TRUE(pc_->kill_child(info->endpoint).ok());

  const auto begin = std::chrono::steady_clock::now();
  auto result = client.await(future, 60'000'000);  // a minute of headroom
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - begin);

  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable)
      << result.status().to_string();
  // Bounced by the reaper within a few of its 20 ms ticks, nowhere near the
  // 60 s deadline.
  EXPECT_LT(elapsed.count(), 10'000);
  EXPECT_GE(rt_.metrics().counter("rt.proc.bounced_unavailable").value(), 1u);
}

TEST_F(ProcessRuntimeTest, CrashingObjectNeverTouchesItsSiblings) {
  constexpr int kSiblings = 3;
  std::vector<SpawnInfo> workers;
  for (int i = 0; i < kSiblings; ++i) {
    auto info = SpawnWorker("sibling-" + std::to_string(i), i * 100);
    ASSERT_TRUE(info.ok()) << info.status().to_string();
    workers.push_back(*info);
  }

  ASSERT_TRUE(pc_->kill_child(workers[1].endpoint).ok());
  ASSERT_TRUE(AwaitChildDead(workers[1].endpoint));

  // The survivors answer as if nothing happened, and the parent process
  // (this test) obviously survived too — the isolation claim in one line.
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  EXPECT_EQ(CallGet(client, workers[0].endpoint), 0);
  EXPECT_EQ(CallGet(client, workers[2].endpoint), 200);
  EXPECT_TRUE(pc_->child_alive(workers[0].endpoint));
  EXPECT_TRUE(pc_->child_alive(workers[2].endpoint));
}

// Churn soak: spawn/kill/stop repeatedly, then require that no zombie
// remains — the reaper (kill path) and stop_child (graceful path) must both
// collect exit statuses without stealing each other's waitpid results.
TEST_F(ProcessRuntimeTest, ChurnLeavesNoZombiesBehind) {
  constexpr int kRounds = 8;
  std::vector<std::int64_t> pids;
  for (int i = 0; i < kRounds; ++i) {
    auto info = SpawnWorker("churn-" + std::to_string(i));
    ASSERT_TRUE(info.ok()) << info.status().to_string();
    pids.push_back(info->pid);
    if (i % 2 == 0) {
      ASSERT_TRUE(pc_->kill_child(info->endpoint).ok());
    } else {
      ASSERT_TRUE(pc_->stop_child(info->endpoint).ok());
    }
    ASSERT_TRUE(AwaitChildDead(info->endpoint)) << "round " << i;
  }
  // Every child is dead; give the reaper one more tick to collect statuses,
  // then require the process table to be clean.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  for (const std::int64_t pid : pids) {
    EXPECT_FALSE(IsZombie(pid)) << "pid " << pid << " left as a zombie";
  }
  EXPECT_EQ(rt_.metrics().gauge("rt.proc.live_children").value(), 0);
}

TEST_F(ProcessRuntimeTest, RespawningALabelCountsAsRespawn) {
  auto first = SpawnWorker("phoenix");
  ASSERT_TRUE(first.ok()) << first.status().to_string();
  ASSERT_TRUE(pc_->kill_child(first->endpoint).ok());
  ASSERT_TRUE(AwaitChildDead(first->endpoint));

  auto second = SpawnWorker("phoenix");
  ASSERT_TRUE(second.ok()) << second.status().to_string();
  EXPECT_NE(second->endpoint, first->endpoint)
      << "a revived object must get a fresh endpoint (stale bindings must "
         "keep failing)";
  EXPECT_EQ(rt_.metrics().counter("rt.proc.spawns").value(), 2u);
  EXPECT_EQ(rt_.metrics().counter("rt.proc.respawns").value(), 1u);
}

TEST_F(ProcessRuntimeTest, PausedChildIsAliveButSilent) {
  auto info = SpawnWorker("wedged");
  ASSERT_TRUE(info.ok()) << info.status().to_string();
  ASSERT_TRUE(pc_->pause_child(info->endpoint).ok());

  // Wedged, not dead: the pid exists, so calls time out rather than bounce.
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto slow = client.call(info->endpoint, "Get", Buffer{},
                          EnvTriple::System(), 300'000);
  ASSERT_FALSE(slow.ok());
  EXPECT_EQ(slow.status().code(), StatusCode::kTimeout)
      << slow.status().to_string();
  EXPECT_TRUE(pc_->child_alive(info->endpoint));

  // Resumed, it drains the backlog and answers again.
  ASSERT_TRUE(pc_->resume_child(info->endpoint).ok());
  EXPECT_EQ(CallGet(client, info->endpoint), 0);
}

TEST_F(ProcessRuntimeTest, FaultPlanChildFaultsRouteToRealSignals) {
  auto info = SpawnWorker("fault-plan-target");
  ASSERT_TRUE(info.ok()) << info.status().to_string();

  // stop/resume through the plan: alive throughout, wedged in between.
  ASSERT_TRUE(rt_.faults().stop_child(info->endpoint.value).ok());
  EXPECT_TRUE(pc_->child_alive(info->endpoint));
  ASSERT_TRUE(rt_.faults().resume_child(info->endpoint.value).ok());

  // kill -9 through the plan: the reaper discovers a real death.
  ASSERT_TRUE(rt_.faults().kill_child(info->endpoint.value).ok());
  EXPECT_TRUE(AwaitChildDead(info->endpoint));
}

TEST_F(ProcessRuntimeTest, WorkerModeRuntimeExposesNoProcessControl) {
  ProcessOptions options;
  options.socket_dir = rt_.socket_dir();
  options.worker_endpoint_id = 424242;
  ProcessRuntime worker(options);
  EXPECT_EQ(worker.process_control(), nullptr);
}

TEST_F(ProcessRuntimeTest, SpawnRejectsMissingExecutable) {
  persist::Opr opr;
  opr.loid = Loid{7, 1};
  opr.implementation = std::string(sim::WorkerImpl::kName);
  opr.executable = "/nonexistent/legion_objectd";
  SpawnSpec spec;
  spec.executable = opr.executable;
  spec.host = h2_;
  spec.label = "ghost";
  spec.opr_bytes = opr.to_bytes();
  auto info = pc_->spawn_object(spec);
  ASSERT_FALSE(info.ok());
  EXPECT_EQ(info.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace legion::rt
