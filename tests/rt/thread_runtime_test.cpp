#include "rt/thread_runtime.hpp"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace legion::rt {
namespace {

class ThreadRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    j_ = rt_.topology().add_jurisdiction("j");
    h1_ = rt_.topology().add_host("h1", {j_});
    h2_ = rt_.topology().add_host("h2", {j_});
  }

  static Envelope Msg(EndpointId src, EndpointId dst, std::string_view body) {
    return Envelope{src, dst, DeliveryKind::kData, Buffer::FromString(body)};
  }

  ThreadRuntime rt_{42};
  JurisdictionId j_;
  HostId h1_, h2_;
};

TEST_F(ThreadRuntimeTest, ServicedEndpointHandlesOnOwnThread) {
  std::atomic<int> hits{0};
  std::atomic<bool> different_thread{false};
  const auto main_id = std::this_thread::get_id();
  const EndpointId sink = rt_.create_endpoint(
      h2_, "sink",
      [&](Envelope&&) {
        different_thread = (std::this_thread::get_id() != main_id);
        ++hits;
      },
      ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);

  ASSERT_TRUE(rt_.post(Msg(src, sink, "x")).ok());
  rt_.wait(src, [&] { return hits.load() == 1; }, 2'000'000);
  EXPECT_EQ(hits.load(), 1);
  EXPECT_TRUE(different_thread.load());
}

TEST_F(ThreadRuntimeTest, DriverEndpointPumpsFromOwningThread) {
  std::atomic<int> hits{0};
  const EndpointId driver = rt_.create_endpoint(
      h1_, "driver", [&](Envelope&&) { ++hits; }, ExecutionMode::kDriver);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);

  ASSERT_TRUE(rt_.post(Msg(src, driver, "x")).ok());
  // Not handled until the owning thread pumps.
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_EQ(hits.load(), 0);
  EXPECT_TRUE(rt_.wait(driver, [&] { return hits.load() == 1; }, 2'000'000));
}

TEST_F(ThreadRuntimeTest, PostToClosedEndpointFailsFast) {
  const EndpointId sink = rt_.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  rt_.close_endpoint(sink);
  EXPECT_FALSE(rt_.endpoint_alive(sink));
  EXPECT_EQ(rt_.post(Msg(src, sink, "x")).code(), StatusCode::kStaleBinding);
}

TEST_F(ThreadRuntimeTest, ManyConcurrentSendersAllDelivered) {
  std::atomic<int> hits{0};
  const EndpointId sink = rt_.create_endpoint(
      h2_, "sink", [&](Envelope&&) { ++hits; }, ExecutionMode::kServiced);

  constexpr int kThreads = 8;
  constexpr int kPerThread = 200;
  std::vector<std::thread> senders;
  std::vector<EndpointId> srcs;
  srcs.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    srcs.push_back(
        rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver));
  }
  for (int t = 0; t < kThreads; ++t) {
    senders.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        ASSERT_TRUE(rt_.post(Msg(srcs[t], sink, "x")).ok());
      }
    });
  }
  for (auto& t : senders) t.join();
  const EndpointId waiter =
      rt_.create_endpoint(h1_, "waiter", nullptr, ExecutionMode::kDriver);
  EXPECT_TRUE(rt_.wait(
      waiter, [&] { return hits.load() == kThreads * kPerThread; },
      5'000'000));
  EXPECT_EQ(rt_.endpoint_stats(sink).received,
            static_cast<std::uint64_t>(kThreads * kPerThread));
}

TEST_F(ThreadRuntimeTest, StatsAggregateByLabel) {
  std::atomic<int> hits{0};
  const EndpointId a = rt_.create_endpoint(
      h1_, "worker", [&](Envelope&&) { ++hits; }, ExecutionMode::kServiced);
  const EndpointId b = rt_.create_endpoint(
      h2_, "worker", [&](Envelope&&) { ++hits; }, ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, a, "1")).ok());
  ASSERT_TRUE(rt_.post(Msg(src, b, "2")).ok());
  ASSERT_TRUE(rt_.post(Msg(src, b, "3")).ok());
  rt_.wait(src, [&] { return hits.load() == 3; }, 2'000'000);

  EXPECT_EQ(rt_.received_by_label().at("worker"), 3u);
  EXPECT_EQ(rt_.max_received_with_label("worker"), 2u);
}

TEST_F(ThreadRuntimeTest, CleanShutdownWithBusyEndpoints) {
  // Destroying the runtime with serviced endpoints still alive must join
  // their threads without deadlock.
  auto rt = std::make_unique<ThreadRuntime>();
  auto j = rt->topology().add_jurisdiction("j");
  auto h = rt->topology().add_host("h", {j});
  for (int i = 0; i < 16; ++i) {
    rt->create_endpoint(h, "worker", [](Envelope&&) {},
                        ExecutionMode::kServiced);
  }
  rt.reset();  // must not hang
  SUCCEED();
}

TEST_F(ThreadRuntimeTest, EndpointClosingItselfFromHandlerDoesNotDeadlock) {
  std::atomic<bool> closed{false};
  EndpointId self{};
  self = rt_.create_endpoint(
      h1_, "ephemeral",
      [&](Envelope&&) {
        rt_.close_endpoint(self);
        closed = true;
      },
      ExecutionMode::kServiced);
  const EndpointId src =
      rt_.create_endpoint(h1_, "src", nullptr, ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, self, "die")).ok());
  rt_.wait(src, [&] { return closed.load(); }, 2'000'000);
  EXPECT_TRUE(closed.load());
  EXPECT_FALSE(rt_.endpoint_alive(self));
}

TEST_F(ThreadRuntimeTest, NowAdvancesMonotonically) {
  const SimTime a = rt_.now();
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  const SimTime b = rt_.now();
  EXPECT_GT(b, a);
}

}  // namespace
}  // namespace legion::rt
