// The fleet metrics plane in isolation: delta snapshot collection, wire
// round-trips, and the FleetMonitor's merged-histogram rollups. The key
// property under test: percentiles of bucket-wise merged histograms equal
// percentiles recomputed from the union of the underlying samples.
#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "base/buffer.hpp"
#include "base/serialize.hpp"
#include "obs/metrics.hpp"
#include "obs/monitor.hpp"

namespace legion::obs {
namespace {

MetricsSnapshot RoundTrip(const MetricsSnapshot& in) {
  Buffer bytes;
  Writer w(bytes);
  in.Serialize(w);
  Reader r(bytes);
  MetricsSnapshot out = MetricsSnapshot::Deserialize(r);
  EXPECT_TRUE(r.ok());
  return out;
}

TEST(MetricsSnapshot, SerializeRoundTripPreservesEverything) {
  Histogram h;
  h.record(7);
  h.record(900);

  MetricsSnapshot snap;
  snap.host = 3;
  snap.at = 123456;
  snap.seq = 9;
  snap.counters.emplace_back("msg.requests", 42u);
  snap.counters.emplace_back("msg.invokes", 0u);
  snap.gauges.emplace_back("msg.pending", -2);
  snap.histograms.emplace_back("msg.service_us", h.snapshot());

  const MetricsSnapshot out = RoundTrip(snap);
  EXPECT_EQ(out.host, 3u);
  EXPECT_EQ(out.at, 123456);
  EXPECT_EQ(out.seq, 9u);
  ASSERT_EQ(out.counters.size(), 2u);
  EXPECT_EQ(out.counters[0].first, "msg.requests");
  EXPECT_EQ(out.counters[0].second, 42u);
  ASSERT_EQ(out.gauges.size(), 1u);
  EXPECT_EQ(out.gauges[0].second, -2);
  ASSERT_EQ(out.histograms.size(), 1u);
  EXPECT_TRUE(out.histograms[0].second == h.snapshot());
  EXPECT_EQ(out.histograms[0].second.percentile(0.99),
            h.snapshot().percentile(0.99));
}

TEST(MetricsSnapshot, HostileEntryCountIsRejectedNotAllocated) {
  // A forged frame claiming 2^31 counters must fail the read cleanly
  // instead of reserving gigabytes.
  Buffer bytes;
  Writer w(bytes);
  w.u32(5);                  // host
  w.i64(0);                  // at
  w.u64(1);                  // seq
  w.u32(0x8000'0000u);       // counters: hostile count
  Reader r(bytes);
  const MetricsSnapshot out = MetricsSnapshot::Deserialize(r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(out.host, 0u);  // failed parse yields the empty snapshot
  EXPECT_TRUE(out.counters.empty());
}

TEST(MetricRow, SerializeRoundTripIsLossless) {
  Registry reg;
  reg.counter("msg.requests").inc(11);
  reg.gauge("msg.pending").set(-4);
  Histogram& h = reg.histogram("msg.service_us");
  for (std::uint64_t v = 1; v <= 100; ++v) h.record(v * 3);
  for (const MetricRow& row : reg.rows()) {
    Buffer bytes;
    Writer w(bytes);
    row.Serialize(w);
    Reader r(bytes);
    const MetricRow out = MetricRow::Deserialize(r);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(out == row) << row.name;
  }
}

TEST(FleetRowAndMethodRow, SerializeRoundTrip) {
  FleetRow row;
  row.host = 4;
  row.reports = 12;
  row.first_at = 100;
  row.last_at = 9'000'000;
  row.calls = 5000;
  row.calls_per_sec = 555.5;
  row.p50_us = 40;
  row.p99_us = 900;
  row.queue_p99_us = 15;
  row.queue_depth = 3;
  row.slow = true;
  row.suspect = true;
  Buffer bytes;
  Writer w(bytes);
  row.Serialize(w);
  Reader r(bytes);
  const FleetRow out = FleetRow::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out.host, 4u);
  EXPECT_EQ(out.reports, 12u);
  EXPECT_EQ(out.calls, 5000u);
  EXPECT_DOUBLE_EQ(out.calls_per_sec, 555.5);
  EXPECT_EQ(out.p99_us, 900u);
  EXPECT_EQ(out.queue_depth, 3);
  EXPECT_TRUE(out.slow);
  EXPECT_TRUE(out.suspect);

  MethodRow m;
  m.method = "Sweep-Instances";
  m.count = 7;
  m.p50_us = 10;
  m.p99_us = 90;
  m.max_us = 120;
  Buffer mb;
  Writer mw(mb);
  m.Serialize(mw);
  Reader mr(mb);
  const MethodRow mout = MethodRow::Deserialize(mr);
  ASSERT_TRUE(mr.ok());
  EXPECT_EQ(mout.method, "Sweep-Instances");
  EXPECT_EQ(mout.p99_us, 90u);
}

TEST(SnapshotCollector, StripsSuffixAndEmitsDeltas) {
  Registry reg;
  reg.counter("msg.requests.host.3").inc(10);
  reg.counter("msg.requests.host.4").inc(99);  // another host: not ours
  reg.counter("msg.requests").inc(7);          // runtime-wide: no suffix
  reg.gauge("msg.pending.host.3").set(2);
  reg.histogram("msg.service_us.host.3").record(50);

  SnapshotCollector collector(reg, 3);
  MetricsSnapshot first = collector.collect(1'000);
  EXPECT_EQ(first.seq, 1u);
  EXPECT_EQ(first.host, 3u);
  ASSERT_EQ(first.counters.size(), 1u);
  EXPECT_EQ(first.counters[0].first, "msg.requests");  // suffix stripped
  EXPECT_EQ(first.counters[0].second, 10u);
  ASSERT_EQ(first.gauges.size(), 1u);
  EXPECT_EQ(first.gauges[0].first, "msg.pending");
  EXPECT_EQ(first.gauges[0].second, 2);
  ASSERT_EQ(first.histograms.size(), 1u);
  EXPECT_EQ(first.histograms[0].second.count, 1u);

  // Nothing moved: the second snapshot ships no counter/histogram rows
  // (gauges are absolutes and always present).
  MetricsSnapshot second = collector.collect(2'000);
  EXPECT_EQ(second.seq, 2u);
  EXPECT_TRUE(second.counters.empty());
  EXPECT_TRUE(second.histograms.empty());

  // Increments since the last publication arrive as deltas, not absolutes.
  reg.counter("msg.requests.host.3").inc(5);
  reg.histogram("msg.service_us.host.3").record(70);
  MetricsSnapshot third = collector.collect(3'000);
  ASSERT_EQ(third.counters.size(), 1u);
  EXPECT_EQ(third.counters[0].second, 5u);
  ASSERT_EQ(third.histograms.size(), 1u);
  EXPECT_EQ(third.histograms[0].second.count, 1u);
  EXPECT_EQ(third.histograms[0].second.sum, 70u);
}

TEST(FleetMonitor, RollsUpHostsAndFlagsSlowAndSuspect) {
  Registry monitor_reg;
  FleetMonitor monitor(monitor_reg);
  monitor.set_slow_threshold_us(500);
  monitor.set_stale_after_us(5'000'000);

  auto snapshot_for = [](std::uint32_t host, SimTime at, std::uint64_t seq,
                         std::uint64_t calls,
                         std::vector<std::uint64_t> service_samples) {
    MetricsSnapshot s;
    s.host = host;
    s.at = at;
    s.seq = seq;
    s.counters.emplace_back("msg.requests", calls);
    s.gauges.emplace_back("msg.pending", 1);
    Histogram h;
    for (const std::uint64_t v : service_samples) h.record(v);
    s.histograms.emplace_back("msg.service_us", h.snapshot());
    return s;
  };

  // Host 1: two reports over one virtual second, fast. Host 2: slow tail.
  monitor.ingest(snapshot_for(1, 0, 1, 100, {10, 20, 30}), 0);
  monitor.ingest(snapshot_for(1, 1'000'000, 2, 100, {10, 20}), 1'000'000);
  monitor.ingest(snapshot_for(2, 1'000'000, 1, 50, {2'000, 2'000}), 1'000'000);

  auto rows = monitor.rows(1'000'000);
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0].host, 1u);
  EXPECT_EQ(rows[0].reports, 2u);
  EXPECT_EQ(rows[0].calls, 200u);  // deltas accumulate
  EXPECT_NEAR(rows[0].calls_per_sec, 200.0, 1e-9);
  EXPECT_FALSE(rows[0].slow);
  EXPECT_FALSE(rows[0].suspect);
  EXPECT_EQ(rows[0].queue_depth, 1);
  EXPECT_EQ(rows[1].host, 2u);
  EXPECT_GT(rows[1].p99_us, 500u);
  EXPECT_TRUE(rows[1].slow);

  // Consultable flags land in the registry for the recovery sweep.
  EXPECT_EQ(monitor_reg.gauge("monitor.hosts").value(), 2);
  EXPECT_EQ(monitor_reg.gauge("monitor.slow_hosts").value(), 1);
  EXPECT_EQ(monitor_reg.counter("monitor.reports").value(), 3u);

  // Ten virtual seconds later host 2 has said nothing: suspect.
  monitor.ingest(snapshot_for(1, 11'000'000, 3, 1, {10}), 11'000'000);
  rows = monitor.rows(11'000'000);
  EXPECT_FALSE(rows[0].suspect);
  EXPECT_TRUE(rows[1].suspect);
  EXPECT_EQ(monitor_reg.gauge("monitor.suspect_hosts").value(), 1);
}

TEST(FleetMonitor, MethodRowsMergeAcrossHosts) {
  Registry reg;
  FleetMonitor monitor(reg);
  auto with_method = [](std::uint32_t host, const std::string& method,
                        std::vector<std::uint64_t> samples) {
    MetricsSnapshot s;
    s.host = host;
    s.at = 1;
    s.seq = 1;
    Histogram h;
    for (const std::uint64_t v : samples) h.record(v);
    s.histograms.emplace_back("msg.method_us." + method, h.snapshot());
    return s;
  };
  monitor.ingest(with_method(1, "Noop", {10, 10, 10}), 1);
  monitor.ingest(with_method(2, "Noop", {10, 10, 5'000}), 1);
  monitor.ingest(with_method(2, "Slow", {100}), 1);

  const auto methods = monitor.method_rows();
  ASSERT_EQ(methods.size(), 2u);  // ordered by name
  EXPECT_EQ(methods[0].method, "Noop");
  EXPECT_EQ(methods[0].count, 6u);
  EXPECT_EQ(methods[0].max_us, 5'000u);
  // The slow outlier on host 2 survives the merge into the fleet tail.
  EXPECT_GT(methods[0].p99_us, 1'000u);
  EXPECT_EQ(methods[1].method, "Slow");
  EXPECT_EQ(methods[1].count, 1u);
}

TEST(FleetMonitor, MergedPercentilesEqualRecomputedFromUnion) {
  // Property: shard deterministic pseudo-random samples across three hosts,
  // merge the per-host snapshots, and the merged percentiles must equal the
  // percentiles of one histogram that saw every sample. This is the whole
  // reason the plane ships buckets instead of precomputed percentiles.
  Histogram shards[3];
  Histogram all;
  std::uint64_t state = 0x2545F491'4F6CDD1Dull;
  for (int i = 0; i < 10'000; ++i) {
    // xorshift64*: deterministic, dependency-free sample stream.
    state ^= state >> 12;
    state ^= state << 25;
    state ^= state >> 27;
    const std::uint64_t v = (state * 0x2545F4914F6CDD1Dull) % 100'000;
    shards[i % 3].record(v);
    all.record(v);
  }
  HistogramSnapshot merged = shards[0].snapshot();
  merged.merge(shards[1].snapshot());
  merged.merge(shards[2].snapshot());
  EXPECT_EQ(merged.count, all.count());
  EXPECT_EQ(merged.sum, all.sum());
  EXPECT_EQ(merged.max, all.max());
  for (const double p : {0.0, 0.25, 0.50, 0.90, 0.99, 0.999, 1.0}) {
    EXPECT_EQ(merged.percentile(p), all.percentile(p)) << "p=" << p;
  }
}

}  // namespace
}  // namespace legion::obs
