// Causal-trace propagation through the Messenger: one root invocation plus
// a nested call share a single trace id with increasing hop numbers, and
// every leg (invoke, request, reply, bounce) lands in the runtime's ring.
#include <gtest/gtest.h>

#include <algorithm>

#include "rt/messenger.hpp"
#include "rt/sim_runtime.hpp"

namespace legion::rt {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});
  }

  SimRuntime runtime_{11};
  HostId host_;
};

bool HasHop(const std::vector<obs::TraceHop>& chain, obs::HopKind kind,
            std::uint32_t hop) {
  return std::any_of(chain.begin(), chain.end(), [&](const obs::TraceHop& h) {
    return h.kind == kind && h.hop == hop;
  });
}

TEST_F(TraceTest, NestedCallsShareOneTraceWithIncreasingHops) {
  Messenger leaf(runtime_, host_, "leaf", ExecutionMode::kServiced,
                 [](ServerContext&, Reader&) -> Result<Buffer> {
                   return Buffer::FromString("leaf");
                 });
  Messenger mid(runtime_, host_, "mid", ExecutionMode::kServiced,
                [&leaf](ServerContext& ctx, Reader&) -> Result<Buffer> {
                  // Nested call continues the inbound trace: the env triple
                  // carries (trace_id, hop) onward.
                  return ctx.messenger.call(leaf.endpoint(), "Leaf", Buffer{},
                                            ctx.call.env, 1'000'000);
                });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);

  auto reply = client.call(mid.endpoint(), "Outer", Buffer{},
                           EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->as_string(), "leaf");

  const auto all = runtime_.traces().last(64);
  ASSERT_FALSE(all.empty());
  const obs::TraceId id = all.front().trace_id;
  EXPECT_NE(id, 0u);

  const auto chain = runtime_.traces().for_trace(id);
  // Outer leg: invoke/request at hop 0, reply back at hop 1.
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kInvoke, 0));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kRequest, 0));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kReply, 1));
  // Nested leg: invoke/request at hop 1, reply back at hop 2.
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kInvoke, 1));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kRequest, 1));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kReply, 2));

  // The method label survives on the invoke legs.
  bool outer_labelled = false;
  bool nested_labelled = false;
  for (const auto& h : chain) {
    if (h.kind != obs::HopKind::kInvoke) continue;
    if (h.hop == 0 && h.method_view() == "Outer") outer_labelled = true;
    if (h.hop == 1 && h.method_view() == "Leaf") nested_labelled = true;
  }
  EXPECT_TRUE(outer_labelled);
  EXPECT_TRUE(nested_labelled);
}

TEST_F(TraceTest, SeparateRootCallsGetSeparateTraceIds) {
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return Buffer{};
                   });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  ASSERT_TRUE(client
                  .call(server.endpoint(), "A", Buffer{}, EnvTriple::System(),
                        1'000'000)
                  .ok());
  ASSERT_TRUE(client
                  .call(server.endpoint(), "B", Buffer{}, EnvTriple::System(),
                        1'000'000)
                  .ok());
  const auto all = runtime_.traces().last(64);
  obs::TraceId first = 0;
  obs::TraceId second = 0;
  for (const auto& h : all) {
    if (h.kind != obs::HopKind::kInvoke) continue;
    if (h.method_view() == "A") first = h.trace_id;
    if (h.method_view() == "B") second = h.trace_id;
  }
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, 0u);
  EXPECT_NE(first, second);
}

TEST_F(TraceTest, BounceCarriesTheOriginatingTrace) {
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  // The victim dies while the request is in flight (posted, not yet
  // delivered): the sim bounces the frame back as a transport NACK.
  auto victim = std::make_unique<Messenger>(
      runtime_, host_, "victim", ExecutionMode::kServiced,
      [](ServerContext&, Reader&) -> Result<Buffer> { return Buffer{}; });
  auto future = client.invoke(victim->endpoint(), "Ghost", Buffer{},
                              EnvTriple::System());
  victim->close();
  auto reply = client.await(std::move(future), 1'000'000);
  EXPECT_FALSE(reply.ok());

  const auto all = runtime_.traces().last(64);
  obs::TraceId id = 0;
  for (const auto& h : all) {
    if (h.kind == obs::HopKind::kInvoke && h.method_view() == "Ghost") {
      id = h.trace_id;
    }
  }
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(HasHop(runtime_.traces().for_trace(id), obs::HopKind::kBounce,
                     0));
}

TEST_F(TraceTest, DisabledRingRecordsNothingButCallsStillWork) {
  runtime_.traces().set_enabled(false);
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return Buffer{};
                   });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  ASSERT_TRUE(client
                  .call(server.endpoint(), "M", Buffer{}, EnvTriple::System(),
                        1'000'000)
                  .ok());
  EXPECT_EQ(runtime_.traces().recorded(), 0u);
}

}  // namespace
}  // namespace legion::rt
