// Causal-trace propagation through the Messenger: one root invocation plus
// a nested call share a single trace id with increasing hop numbers, and
// every leg (invoke, request, reply, bounce) lands in the runtime's ring.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <map>
#include <set>

#include "rt/messenger.hpp"
#include "rt/sim_runtime.hpp"

namespace legion::rt {
namespace {

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});
  }

  SimRuntime runtime_{11};
  HostId host_;
};

bool HasHop(const std::vector<obs::TraceHop>& chain, obs::HopKind kind,
            std::uint32_t hop) {
  return std::any_of(chain.begin(), chain.end(), [&](const obs::TraceHop& h) {
    return h.kind == kind && h.hop == hop;
  });
}

TEST_F(TraceTest, NestedCallsShareOneTraceWithIncreasingHops) {
  Messenger leaf(runtime_, host_, "leaf", ExecutionMode::kServiced,
                 [](ServerContext&, Reader&) -> Result<Buffer> {
                   return Buffer::FromString("leaf");
                 });
  Messenger mid(runtime_, host_, "mid", ExecutionMode::kServiced,
                [&leaf](ServerContext& ctx, Reader&) -> Result<Buffer> {
                  // Nested call continues the inbound trace: the env triple
                  // carries (trace_id, hop) onward.
                  return ctx.messenger.call(leaf.endpoint(), "Leaf", Buffer{},
                                            ctx.call.env, 1'000'000);
                });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);

  auto reply = client.call(mid.endpoint(), "Outer", Buffer{},
                           EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->as_string(), "leaf");

  const auto all = runtime_.traces().last(64);
  ASSERT_FALSE(all.empty());
  const obs::TraceId id = all.front().trace_id;
  EXPECT_NE(id, 0u);

  const auto chain = runtime_.traces().for_trace(id);
  // Outer leg: invoke/request at hop 0, reply back at hop 1.
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kInvoke, 0));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kRequest, 0));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kReply, 1));
  // Nested leg: invoke/request at hop 1, reply back at hop 2.
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kInvoke, 1));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kRequest, 1));
  EXPECT_TRUE(HasHop(chain, obs::HopKind::kReply, 2));

  // The method label survives on the invoke legs.
  bool outer_labelled = false;
  bool nested_labelled = false;
  for (const auto& h : chain) {
    if (h.kind != obs::HopKind::kInvoke) continue;
    if (h.hop == 0 && h.method_view() == "Outer") outer_labelled = true;
    if (h.hop == 1 && h.method_view() == "Leaf") nested_labelled = true;
  }
  EXPECT_TRUE(outer_labelled);
  EXPECT_TRUE(nested_labelled);
}

TEST_F(TraceTest, SeparateRootCallsGetSeparateTraceIds) {
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return Buffer{};
                   });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  ASSERT_TRUE(client
                  .call(server.endpoint(), "A", Buffer{}, EnvTriple::System(),
                        1'000'000)
                  .ok());
  ASSERT_TRUE(client
                  .call(server.endpoint(), "B", Buffer{}, EnvTriple::System(),
                        1'000'000)
                  .ok());
  const auto all = runtime_.traces().last(64);
  obs::TraceId first = 0;
  obs::TraceId second = 0;
  for (const auto& h : all) {
    if (h.kind != obs::HopKind::kInvoke) continue;
    if (h.method_view() == "A") first = h.trace_id;
    if (h.method_view() == "B") second = h.trace_id;
  }
  EXPECT_NE(first, 0u);
  EXPECT_NE(second, 0u);
  EXPECT_NE(first, second);
}

TEST_F(TraceTest, BounceCarriesTheOriginatingTrace) {
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  // The victim dies while the request is in flight (posted, not yet
  // delivered): the sim bounces the frame back as a transport NACK.
  auto victim = std::make_unique<Messenger>(
      runtime_, host_, "victim", ExecutionMode::kServiced,
      [](ServerContext&, Reader&) -> Result<Buffer> { return Buffer{}; });
  auto future = client.invoke(victim->endpoint(), "Ghost", Buffer{},
                              EnvTriple::System());
  victim->close();
  auto reply = client.await(std::move(future), 1'000'000);
  EXPECT_FALSE(reply.ok());

  const auto all = runtime_.traces().last(64);
  obs::TraceId id = 0;
  for (const auto& h : all) {
    if (h.kind == obs::HopKind::kInvoke && h.method_view() == "Ghost") {
      id = h.trace_id;
    }
  }
  ASSERT_NE(id, 0u);
  EXPECT_TRUE(HasHop(runtime_.traces().for_trace(id), obs::HopKind::kBounce,
                     0));
}

TEST_F(TraceTest, ThreeHopCallReconstructsOneConnectedSpanTree) {
  // client -> A -> B -> C: three nested call edges, each one span. The
  // invoke hops alone must reconstruct a single connected tree — root span
  // with parent 0, every other span's parent present in the set — and the
  // serve/reply legs must close the same span their request opened.
  Messenger c(runtime_, host_, "C", ExecutionMode::kServiced,
              [](ServerContext&, Reader&) -> Result<Buffer> {
                return Buffer::FromString("c");
              });
  Messenger b(runtime_, host_, "B", ExecutionMode::kServiced,
              [&c](ServerContext& ctx, Reader&) -> Result<Buffer> {
                return ctx.messenger.call(c.endpoint(), "Leaf", Buffer{},
                                          ctx.call.env, 1'000'000);
              });
  Messenger a(runtime_, host_, "A", ExecutionMode::kServiced,
              [&b](ServerContext& ctx, Reader&) -> Result<Buffer> {
                return ctx.messenger.call(b.endpoint(), "Mid", Buffer{},
                                          ctx.call.env, 1'000'000);
              });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);

  auto reply = client.call(a.endpoint(), "Root", Buffer{}, EnvTriple::System(),
                           1'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();

  const auto all = runtime_.traces().last(64);
  ASSERT_FALSE(all.empty());
  const auto chain = runtime_.traces().for_trace(all.front().trace_id);

  // Collect the spans opened by invoke legs: span_id -> parent_span_id.
  std::map<std::uint64_t, std::uint64_t> parent_of;
  std::uint64_t root = 0;
  for (const auto& h : chain) {
    if (h.kind != obs::HopKind::kInvoke) continue;
    ASSERT_NE(h.span_id, 0u);
    EXPECT_TRUE(parent_of.emplace(h.span_id, h.parent_span_id).second)
        << "span " << h.span_id << " opened twice";
    if (h.parent_span_id == 0) root = h.span_id;
  }
  ASSERT_EQ(parent_of.size(), 3u);  // three call edges, three spans
  ASSERT_NE(root, 0u) << "no root span";
  // Connectivity: walking parent links from every span reaches the root.
  for (const auto& [span, parent] : parent_of) {
    std::uint64_t cur = span;
    int steps = 0;
    while (cur != root) {
      auto it = parent_of.find(cur);
      ASSERT_NE(it, parent_of.end()) << "span " << cur << " is an orphan";
      cur = it->second != 0 ? it->second : root;
      ASSERT_LT(++steps, 4) << "parent chain does not converge";
    }
  }
  // Every request/serve/reply leg references a span opened by an invoke:
  // the reply closes the exact span the request opened (same id, nested
  // under the same parent).
  for (const auto& h : chain) {
    if (h.kind == obs::HopKind::kInvoke) continue;
    EXPECT_TRUE(parent_of.count(h.span_id))
        << to_string(h.kind) << " hop carries unknown span " << h.span_id;
    if (parent_of.count(h.span_id)) {
      EXPECT_EQ(h.parent_span_id, parent_of[h.span_id])
          << to_string(h.kind) << " hop reparented span " << h.span_id;
    }
  }
}

TEST_F(TraceTest, ServeHopCarriesQueueAndServiceSplit) {
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [this](ServerContext&, Reader&) -> Result<Buffer> {
                     // Burn virtual service time so the split is visible.
                     runtime_.advance(250);
                     return Buffer{};
                   });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  ASSERT_TRUE(client
                  .call(server.endpoint(), "Slow", Buffer{},
                        EnvTriple::System(), 1'000'000)
                  .ok());
  bool saw_serve = false;
  for (const auto& h : runtime_.traces().last(64)) {
    if (h.kind != obs::HopKind::kServe) continue;
    saw_serve = true;
    EXPECT_EQ(h.method_view(), "Slow");
    // The sim dispatches inline at delivery: queue time is a true zero.
    EXPECT_EQ(h.queue_us, 0u);
    EXPECT_GE(h.service_us, 250u);
  }
  EXPECT_TRUE(saw_serve);
  // The runtime-wide queue/service histograms saw the same split.
  EXPECT_GE(runtime_.metrics().histogram("msg.service_us").max(), 250u);
  EXPECT_EQ(runtime_.metrics().histogram("msg.queue_us").max(), 0u);
}

TEST_F(TraceTest, HeadSamplingIsAllOrNothingPerCallTree) {
  // 1-in-2 head sampling: alternating roots trace fully or not at all —
  // no partially-traced call trees.
  runtime_.sampler().set_every(2);
  Messenger leaf(runtime_, host_, "leaf", ExecutionMode::kServiced,
                 [](ServerContext&, Reader&) -> Result<Buffer> {
                   return Buffer{};
                 });
  Messenger mid(runtime_, host_, "mid", ExecutionMode::kServiced,
                [&leaf](ServerContext& ctx, Reader&) -> Result<Buffer> {
                  return ctx.messenger.call(leaf.endpoint(), "Leaf", Buffer{},
                                            ctx.call.env, 1'000'000);
                });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  std::set<obs::TraceId> roots;
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(client
                    .call(mid.endpoint(), "Outer", Buffer{},
                          EnvTriple::System(), 1'000'000)
                    .ok());
  }
  for (const auto& h : runtime_.traces().last(256)) {
    EXPECT_NE(h.trace_id, 0u);  // unsampled trees record nothing
    roots.insert(h.trace_id);
  }
  // 8 roots at 1-in-2: exactly 4 sampled traces, each complete (both call
  // edges present: invoke at hop 0 and at hop 1).
  EXPECT_EQ(roots.size(), 4u);
  for (const obs::TraceId id : roots) {
    const auto chain = runtime_.traces().for_trace(id);
    EXPECT_TRUE(HasHop(chain, obs::HopKind::kInvoke, 0));
    EXPECT_TRUE(HasHop(chain, obs::HopKind::kInvoke, 1));
  }
}

TEST_F(TraceTest, DisabledRingRecordsNothingButCallsStillWork) {
  runtime_.traces().set_enabled(false);
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return Buffer{};
                   });
  Messenger client(runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
  ASSERT_TRUE(client
                  .call(server.endpoint(), "M", Buffer{}, EnvTriple::System(),
                        1'000'000)
                  .ok());
  EXPECT_EQ(runtime_.traces().recorded(), 0u);
}

}  // namespace
}  // namespace legion::rt
