// Messenger::close() racing in-flight invoke()s: every pending future must
// resolve exactly once — with the reply if it won the race, with kAborted if
// close() got there first — and never hang or double-fulfil (Promise::set
// asserts on a second fulfilment). Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "rt/messenger.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::rt {
namespace {

class MessengerRaceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});
  }

  ThreadRuntime runtime_{17};
  HostId host_;
};

TEST_F(MessengerRaceTest, CloseFailsInFlightInvokesExactlyOnce) {
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     std::this_thread::sleep_for(std::chrono::microseconds(200));
                     return Buffer::FromString("ok");
                   });

  // Sweep the close point across the invoke stream: early rounds close
  // almost immediately (most invokes lose), later rounds close late (most
  // replies win). Every future must still resolve exactly once.
  for (int round = 0; round < 16; ++round) {
    auto client = std::make_unique<Messenger>(
        runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
    std::vector<Future<ReplyMsg>> futures;
    std::mutex futures_mutex;
    std::atomic<bool> go{false};

    std::thread invoker([&] {
      while (!go.load()) std::this_thread::yield();
      for (int i = 0; i < 64; ++i) {
        auto f = client->invoke(server.endpoint(), "M", Buffer{},
                                EnvTriple::System());
        std::lock_guard lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });

    go.store(true);
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    client->close();
    invoker.join();

    // close() resolves everything that was pending synchronously; invokes
    // issued after close resolve at return. Replies that raced in earlier
    // resolved on delivery. Nothing may still be pending.
    std::lock_guard lock(futures_mutex);
    EXPECT_EQ(futures.size(), 64u);
    for (auto& f : futures) {
      ASSERT_TRUE(f.valid());
      ASSERT_TRUE(f.ready());
      ReplyMsg msg = f.take();
      if (!msg.status.ok()) {
        const StatusCode code = msg.status.code();
        EXPECT_TRUE(code == StatusCode::kAborted ||
                    code == StatusCode::kStaleBinding ||
                    code == StatusCode::kInternal)
            << msg.status.to_string();
      }
    }
  }
}

TEST_F(MessengerRaceTest, InvokeAfterCloseResolvesAbortedImmediately) {
  Messenger server(runtime_, host_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return Buffer{};
                   });
  auto client = std::make_unique<Messenger>(runtime_, host_, "client",
                                            ExecutionMode::kDriver, nullptr);
  client->close();
  auto f = client->invoke(server.endpoint(), "M", Buffer{},
                          EnvTriple::System());
  ASSERT_TRUE(f.ready());
  EXPECT_EQ(f.take().status.code(), StatusCode::kAborted);
}

TEST_F(MessengerRaceTest, ConcurrentClosersCloseOnce) {
  for (int round = 0; round < 8; ++round) {
    auto client = std::make_unique<Messenger>(
        runtime_, host_, "client", ExecutionMode::kDriver, nullptr);
    std::atomic<bool> go{false};
    std::vector<std::thread> closers;
    closers.reserve(4);
    for (int t = 0; t < 4; ++t) {
      closers.emplace_back([&] {
        while (!go.load()) std::this_thread::yield();
        client->close();
      });
    }
    go.store(true);
    for (auto& t : closers) t.join();
  }
}

}  // namespace
}  // namespace legion::rt
