#include "rt/messenger.hpp"

#include <gtest/gtest.h>

#include "rt/sim_runtime.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::rt {
namespace {

// An echo service: replies with "<method>(<args as string>)".
RequestDispatcher EchoDispatcher() {
  return [](ServerContext& ctx, Reader& args) -> Result<Buffer> {
    const std::string body = args.str();
    if (!args.ok()) return InvalidArgumentError("bad args");
    return Buffer::FromString(ctx.call.method + "(" + body + ")");
  };
}

Buffer StrArgs(std::string_view s) {
  Buffer b;
  Writer w(b);
  w.str(s);
  return b;
}

class MessengerSimTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = rt_.topology().add_jurisdiction("j");
    h1_ = rt_.topology().add_host("h1", {j});
    h2_ = rt_.topology().add_host("h2", {j});
  }

  SimRuntime rt_{7};
  HostId h1_, h2_;
};

TEST_F(MessengerSimTest, CallRoundTrips) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   EchoDispatcher());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  auto result = client.call(server.endpoint(), "Ping", StrArgs("hi"),
                            EnvTriple::System(), Messenger::kDefaultTimeoutUs);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "Ping(hi)");
}

TEST_F(MessengerSimTest, InvokeIsNonBlocking) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   EchoDispatcher());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  // Paper Section 2: "Method calls are non-blocking". Launch several calls
  // before awaiting any.
  std::vector<Future<ReplyMsg>> futures;
  for (int i = 0; i < 5; ++i) {
    futures.push_back(client.invoke(server.endpoint(), "M",
                                    StrArgs(std::to_string(i)),
                                    EnvTriple::System()));
    EXPECT_FALSE(futures.back().ready());
  }
  for (int i = 0; i < 5; ++i) {
    auto r = client.await(std::move(futures[i]), Messenger::kDefaultTimeoutUs);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->as_string(), "M(" + std::to_string(i) + ")");
  }
}

TEST_F(MessengerSimTest, ServerStatusErrorsPropagate) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   [](ServerContext&, Reader&) -> Result<Buffer> {
                     return PermissionDeniedError("MayI said no");
                   });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  auto result = client.call(server.endpoint(), "Secret", Buffer{},
                            EnvTriple::System(), Messenger::kDefaultTimeoutUs);
  EXPECT_EQ(result.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(result.status().message(), "MayI said no");
}

TEST_F(MessengerSimTest, NullDispatcherAnswersUnimplemented) {
  Messenger server(rt_, h2_, "pure-client", ExecutionMode::kServiced, nullptr);
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(server.endpoint(), "Anything", Buffer{},
                            EnvTriple::System(), Messenger::kDefaultTimeoutUs);
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(MessengerSimTest, CallToDeadEndpointReportsStaleBinding) {
  EndpointId dead;
  {
    Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                     EchoDispatcher());
    dead = server.endpoint();
  }
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(dead, "Ping", Buffer{}, EnvTriple::System(),
                            Messenger::kDefaultTimeoutUs);
  EXPECT_EQ(result.status().code(), StatusCode::kStaleBinding);
}

TEST_F(MessengerSimTest, InFlightRequestBouncesToStaleBinding) {
  auto server = std::make_unique<Messenger>(rt_, h2_, "server",
                                            ExecutionMode::kServiced,
                                            EchoDispatcher());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  auto future = client.invoke(server->endpoint(), "Ping", StrArgs("x"),
                              EnvTriple::System());
  server.reset();  // dies while the request is in flight
  auto result = client.await(std::move(future), Messenger::kDefaultTimeoutUs);
  EXPECT_EQ(result.status().code(), StatusCode::kStaleBinding);
}

TEST_F(MessengerSimTest, DroppedMessagesTimeOut) {
  rt_.faults().set_drop_probability(net::LatencyClass::kIntraJurisdiction, 1.0);
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   EchoDispatcher());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(server.endpoint(), "Ping", Buffer{},
                            EnvTriple::System(), 50'000);
  // The drop empties the sim's event queue, so the messenger can *prove*
  // no reply is coming: Unavailable, not a mere deadline expiry.
  EXPECT_EQ(result.status().code(), StatusCode::kUnavailable);
}

TEST_F(MessengerSimTest, EnvTripleTravelsWithEveryCall) {
  EnvTriple seen;
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                     seen = ctx.call.env;
                     return Buffer{};
                   });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  EnvTriple env;
  env.responsible_agent = Loid{10, 1};
  env.security_agent = Loid{11, 2};
  env.calling_agent = Loid{12, 3};
  ASSERT_TRUE(client
                  .call(server.endpoint(), "M", Buffer{}, env,
                        Messenger::kDefaultTimeoutUs)
                  .ok());
  EXPECT_EQ(seen.responsible_agent, (Loid{10, 1}));
  EXPECT_EQ(seen.security_agent, (Loid{11, 2}));
  EXPECT_EQ(seen.calling_agent, (Loid{12, 3}));
}

TEST_F(MessengerSimTest, NestedCallsFromWithinHandler) {
  // A -> B, and B's handler calls C before replying: the chain class ->
  // magistrate -> host in the core model depends on this working.
  Messenger c(rt_, h2_, "c", ExecutionMode::kServiced, EchoDispatcher());
  Messenger b(rt_, h2_, "b", ExecutionMode::kServiced,
              [&](ServerContext& ctx, Reader& args) -> Result<Buffer> {
                LEGION_ASSIGN_OR_RETURN(
                    Buffer inner,
                    ctx.messenger.call(c.endpoint(), "Inner",
                                       StrArgs(args.str()), ctx.call.env,
                                       Messenger::kDefaultTimeoutUs));
                return Buffer::FromString("B[" + inner.as_string() + "]");
              });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);

  auto result = client.call(b.endpoint(), "Outer", StrArgs("x"),
                            EnvTriple::System(), Messenger::kDefaultTimeoutUs);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "B[Inner(x)]");
}

TEST_F(MessengerSimTest, ReentrantServiceWhileWaiting) {
  // While A waits for its own outbound call, it must keep serving inbound
  // requests ("methods may be accepted in any order"). B's handler calls
  // back into A before replying; without re-entrant service this deadlocks.
  Messenger* a_ptr = nullptr;
  Messenger b(rt_, h2_, "b", ExecutionMode::kServiced,
              [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                LEGION_ASSIGN_OR_RETURN(
                    Buffer echo,
                    ctx.messenger.call(a_ptr->endpoint(), "CallbackIntoA",
                                       Buffer{}, ctx.call.env,
                                       Messenger::kDefaultTimeoutUs));
                return Buffer::FromString("B-got-" + echo.as_string());
              });
  int a_served = 0;
  Messenger a(rt_, h1_, "a", ExecutionMode::kServiced,
              [&](ServerContext&, Reader&) -> Result<Buffer> {
                ++a_served;
                return Buffer::FromString("A-callback");
              });
  a_ptr = &a;

  auto result = a.call(b.endpoint(), "Cycle", Buffer{}, EnvTriple::System(),
                       Messenger::kDefaultTimeoutUs);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "B-got-A-callback");
  EXPECT_EQ(a_served, 1);
}

// The same behaviours must hold under real threads.
class MessengerThreadTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = rt_.topology().add_jurisdiction("j");
    h1_ = rt_.topology().add_host("h1", {j});
    h2_ = rt_.topology().add_host("h2", {j});
  }

  ThreadRuntime rt_{7};
  HostId h1_, h2_;
};

TEST_F(MessengerThreadTest, CallRoundTrips) {
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   EchoDispatcher());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(server.endpoint(), "Ping", StrArgs("hi"),
                            EnvTriple::System(), 5'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "Ping(hi)");
}

TEST_F(MessengerThreadTest, NestedCallsAcrossThreads) {
  Messenger c(rt_, h2_, "c", ExecutionMode::kServiced, EchoDispatcher());
  Messenger b(rt_, h2_, "b", ExecutionMode::kServiced,
              [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                LEGION_ASSIGN_OR_RETURN(
                    Buffer inner,
                    ctx.messenger.call(c.endpoint(), "Inner", StrArgs("y"),
                                       ctx.call.env, 5'000'000));
                return Buffer::FromString("B[" + inner.as_string() + "]");
              });
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(b.endpoint(), "Outer", Buffer{},
                            EnvTriple::System(), 5'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "B[Inner(y)]");
}

TEST_F(MessengerThreadTest, ReentrantCycleAcrossThreads) {
  Messenger* a_ptr = nullptr;
  Messenger b(rt_, h2_, "b", ExecutionMode::kServiced,
              [&](ServerContext& ctx, Reader&) -> Result<Buffer> {
                LEGION_ASSIGN_OR_RETURN(
                    Buffer echo, ctx.messenger.call(a_ptr->endpoint(), "CbA",
                                                    Buffer{}, ctx.call.env,
                                                    5'000'000));
                return Buffer::FromString("B-got-" + echo.as_string());
              });
  Messenger a(rt_, h1_, "a", ExecutionMode::kServiced,
              [&](ServerContext&, Reader&) -> Result<Buffer> {
                return Buffer::FromString("A-callback");
              });
  a_ptr = &a;
  auto result = a.call(b.endpoint(), "Cycle", Buffer{}, EnvTriple::System(),
                       5'000'000);
  ASSERT_TRUE(result.ok()) << result.status().to_string();
  EXPECT_EQ(result->as_string(), "B-got-A-callback");
}

TEST_F(MessengerThreadTest, TimeoutOnSilentPeer) {
  rt_.faults().set_drop_probability(net::LatencyClass::kIntraJurisdiction, 1.0);
  Messenger server(rt_, h2_, "server", ExecutionMode::kServiced,
                   EchoDispatcher());
  Messenger client(rt_, h1_, "client", ExecutionMode::kDriver, nullptr);
  auto result = client.call(server.endpoint(), "Ping", Buffer{},
                            EnvTriple::System(), 30'000);
  EXPECT_EQ(result.status().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace legion::rt
