#include "rt/sim_runtime.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace legion::rt {
namespace {

class SimRuntimeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    j1_ = rt_.topology().add_jurisdiction("j1");
    j2_ = rt_.topology().add_jurisdiction("j2");
    h1_ = rt_.topology().add_host("h1", {j1_});
    h2_ = rt_.topology().add_host("h2", {j1_});
    h3_ = rt_.topology().add_host("h3", {j2_});
  }

  static Envelope Msg(EndpointId src, EndpointId dst, std::string_view body) {
    return Envelope{src, dst, DeliveryKind::kData, Buffer::FromString(body)};
  }

  SimRuntime rt_{42};
  JurisdictionId j1_, j2_;
  HostId h1_, h2_, h3_;
};

TEST_F(SimRuntimeTest, DeliversInLatencyOrder) {
  std::vector<std::string> received;
  const EndpointId sink = rt_.create_endpoint(
      h1_, "sink",
      [&](Envelope&& env) { received.push_back(env.payload.as_string()); },
      ExecutionMode::kServiced);
  const EndpointId near = rt_.create_endpoint(h1_, "near", nullptr,
                                              ExecutionMode::kDriver);
  const EndpointId far = rt_.create_endpoint(h3_, "far", nullptr,
                                             ExecutionMode::kDriver);

  // Posted first from far away, second locally: local arrives first.
  ASSERT_TRUE(rt_.post(Msg(far, sink, "cross")).ok());
  ASSERT_TRUE(rt_.post(Msg(near, sink, "local")).ok());
  rt_.run_until_idle();

  ASSERT_EQ(received.size(), 2u);
  EXPECT_EQ(received[0], "local");
  EXPECT_EQ(received[1], "cross");
}

TEST_F(SimRuntimeTest, VirtualTimeAdvancesWithDelivery) {
  const EndpointId sink = rt_.create_endpoint(h3_, "sink", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  EXPECT_EQ(rt_.now(), 0);
  ASSERT_TRUE(rt_.post(Msg(src, sink, "x")).ok());
  rt_.run_until_idle();
  // Cross-jurisdiction latency: ~40ms +-10%.
  EXPECT_GE(rt_.now(), 36'000);
  EXPECT_LE(rt_.now(), 44'000);
}

TEST_F(SimRuntimeTest, DeterministicAcrossRuns) {
  auto run = [this](std::uint64_t seed) {
    SimRuntime rt(seed);
    auto j = rt.topology().add_jurisdiction("j");
    auto a = rt.topology().add_host("a", {j});
    auto b = rt.topology().add_host("b", {j});
    const EndpointId sink = rt.create_endpoint(b, "sink", [](Envelope&&) {},
                                               ExecutionMode::kServiced);
    const EndpointId src = rt.create_endpoint(a, "src", nullptr,
                                              ExecutionMode::kDriver);
    for (int i = 0; i < 50; ++i) {
      EXPECT_TRUE(
          rt.post(Envelope{src, sink, DeliveryKind::kData, Buffer{}}).ok());
    }
    rt.run_until_idle();
    return rt.now();
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(SimRuntimeTest, PostToClosedEndpointFailsFast) {
  const EndpointId sink = rt_.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  rt_.close_endpoint(sink);
  EXPECT_FALSE(rt_.endpoint_alive(sink));
  const Status st = rt_.post(Msg(src, sink, "x"));
  EXPECT_EQ(st.code(), StatusCode::kStaleBinding);
}

TEST_F(SimRuntimeTest, InFlightMessageBouncesWhenDestinationDies) {
  bool got_bounce = false;
  const EndpointId sink = rt_.create_endpoint(h2_, "sink", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(
      h1_, "src",
      [&](Envelope&& env) {
        got_bounce = (env.kind == DeliveryKind::kBounce);
        EXPECT_EQ(env.payload.as_string(), "hello");
      },
      ExecutionMode::kServiced);

  ASSERT_TRUE(rt_.post(Msg(src, sink, "hello")).ok());
  rt_.close_endpoint(sink);  // dies while the message is in flight
  rt_.run_until_idle();

  EXPECT_TRUE(got_bounce);
  EXPECT_EQ(rt_.stats().bounced, 1u);
}

TEST_F(SimRuntimeTest, HandlerCanSendCausingChainedDelivery) {
  int leaf_hits = 0;
  const EndpointId leaf = rt_.create_endpoint(
      h2_, "leaf", [&](Envelope&&) { ++leaf_hits; }, ExecutionMode::kServiced);
  const EndpointId relay = rt_.create_endpoint(
      h1_, "relay",
      [&](Envelope&& env) {
        EXPECT_TRUE(rt_
                        .post(Envelope{env.dst, leaf, DeliveryKind::kData,
                                       std::move(env.payload)})
                        .ok());
      },
      ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, relay, "fwd")).ok());
  rt_.run_until_idle();
  EXPECT_EQ(leaf_hits, 1);
}

TEST_F(SimRuntimeTest, WaitPumpsUntilPredicate) {
  int hits = 0;
  const EndpointId sink = rt_.create_endpoint(
      h2_, "sink", [&](Envelope&&) { ++hits; }, ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  for (int i = 0; i < 3; ++i) ASSERT_TRUE(rt_.post(Msg(src, sink, "x")).ok());

  EXPECT_TRUE(rt_.wait(src, [&] { return hits == 2; }, kSimTimeNever));
  EXPECT_EQ(hits, 2);  // stopped as soon as the predicate held
}

TEST_F(SimRuntimeTest, WaitTimesOutAtVirtualDeadline) {
  const EndpointId sink = rt_.create_endpoint(h3_, "sink", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, sink, "x")).ok());
  // Cross-jurisdiction latency ~40ms dwarfs the 1ms budget.
  EXPECT_FALSE(rt_.wait(src, [] { return false; }, 1'000));
  EXPECT_EQ(rt_.now(), 1'000);
}

TEST_F(SimRuntimeTest, WaitReturnsFalseWhenQuiescent) {
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  EXPECT_FALSE(rt_.wait(src, [] { return false; }, kSimTimeNever));
}

TEST_F(SimRuntimeTest, StatsCountPerEndpointAndClass) {
  const EndpointId sink = rt_.create_endpoint(h2_, "server", [](Envelope&&) {},
                                              ExecutionMode::kServiced);
  const EndpointId far = rt_.create_endpoint(h3_, "client", nullptr,
                                             ExecutionMode::kDriver);
  const EndpointId near = rt_.create_endpoint(h1_, "client", nullptr,
                                              ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(near, sink, "a")).ok());
  ASSERT_TRUE(rt_.post(Msg(far, sink, "b")).ok());
  rt_.run_until_idle();

  EXPECT_EQ(rt_.endpoint_stats(sink).received, 2u);
  EXPECT_EQ(rt_.endpoint_stats(near).sent, 1u);
  EXPECT_EQ(rt_.stats().delivered, 2u);
  EXPECT_EQ(rt_.stats().by_latency_class[static_cast<int>(
                net::LatencyClass::kIntraJurisdiction)],
            1u);
  EXPECT_EQ(rt_.stats().by_latency_class[static_cast<int>(
                net::LatencyClass::kCrossJurisdiction)],
            1u);

  const auto by_label = rt_.received_by_label();
  EXPECT_EQ(by_label.at("server"), 2u);
  EXPECT_EQ(rt_.max_received_with_label("server"), 2u);

  rt_.reset_stats();
  EXPECT_EQ(rt_.stats().delivered, 0u);
  EXPECT_EQ(rt_.endpoint_stats(sink).received, 0u);
}

TEST_F(SimRuntimeTest, DropsViaFaultPlanAreCounted) {
  rt_.faults().set_drop_probability(net::LatencyClass::kIntraJurisdiction, 1.0);
  int hits = 0;
  const EndpointId sink = rt_.create_endpoint(
      h2_, "sink", [&](Envelope&&) { ++hits; }, ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, sink, "x")).ok());
  rt_.run_until_idle();
  EXPECT_EQ(hits, 0);
  EXPECT_EQ(rt_.stats().dropped, 1u);
}

TEST_F(SimRuntimeTest, HandlerMayCreateEndpointsDuringDispatch) {
  // Regression guard: dispatch runs on a handler copy, so rehashing the
  // endpoint map mid-dispatch must be safe.
  std::vector<EndpointId> created;
  const EndpointId spawner = rt_.create_endpoint(
      h1_, "spawner",
      [&](Envelope&&) {
        for (int i = 0; i < 64; ++i) {
          created.push_back(rt_.create_endpoint(h1_, "child", [](Envelope&&) {},
                                                ExecutionMode::kServiced));
        }
      },
      ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, spawner, "go")).ok());
  rt_.run_until_idle();
  EXPECT_EQ(created.size(), 64u);
  for (EndpointId id : created) EXPECT_TRUE(rt_.endpoint_alive(id));
}

TEST_F(SimRuntimeTest, HandlerMayCloseOwnEndpointDuringDispatch) {
  EndpointId self;
  self = rt_.create_endpoint(
      h1_, "ephemeral", [&](Envelope&&) { rt_.close_endpoint(self); },
      ExecutionMode::kServiced);
  const EndpointId src = rt_.create_endpoint(h1_, "src", nullptr,
                                             ExecutionMode::kDriver);
  ASSERT_TRUE(rt_.post(Msg(src, self, "die")).ok());
  rt_.run_until_idle();
  EXPECT_FALSE(rt_.endpoint_alive(self));
}

}  // namespace
}  // namespace legion::rt
