#include "sched/placement.hpp"

#include <gtest/gtest.h>

#include <limits>
#include <vector>

namespace legion::sched {
namespace {

constexpr std::size_t kNone = std::numeric_limits<std::size_t>::max();

std::vector<HostCandidate> ThreeHosts() {
  return {
      HostCandidate{Loid{3, 1}, HostId{1}, 0.5, 5, 10.0, true},
      HostCandidate{Loid{3, 2}, HostId{2}, 0.1, 1, 10.0, true},
      HostCandidate{Loid{3, 3}, HostId{3}, 0.9, 9, 10.0, true},
  };
}

TEST(RandomPlacementTest, PicksOnlyAcceptingHosts) {
  auto candidates = ThreeHosts();
  candidates[0].accepting = false;
  RandomPlacement p;
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const std::size_t pick = p.pick(candidates, rng);
    ASSERT_NE(pick, kNone);
    EXPECT_NE(pick, 0u);
  }
}

TEST(RandomPlacementTest, CoversAllAcceptingHosts) {
  auto candidates = ThreeHosts();
  RandomPlacement p;
  Rng rng(2);
  std::vector<int> hits(3, 0);
  for (int i = 0; i < 300; ++i) ++hits[p.pick(candidates, rng)];
  for (int h : hits) EXPECT_GT(h, 0);
}

TEST(RoundRobinPlacementTest, CyclesDeterministically) {
  auto candidates = ThreeHosts();
  RoundRobinPlacement p;
  Rng rng(1);
  EXPECT_EQ(p.pick(candidates, rng), 0u);
  EXPECT_EQ(p.pick(candidates, rng), 1u);
  EXPECT_EQ(p.pick(candidates, rng), 2u);
  EXPECT_EQ(p.pick(candidates, rng), 0u);
}

TEST(RoundRobinPlacementTest, SkipsNonAccepting) {
  auto candidates = ThreeHosts();
  candidates[1].accepting = false;
  RoundRobinPlacement p;
  Rng rng(1);
  EXPECT_EQ(p.pick(candidates, rng), 0u);
  EXPECT_EQ(p.pick(candidates, rng), 2u);
  EXPECT_EQ(p.pick(candidates, rng), 0u);
}

TEST(LeastLoadedPlacementTest, PicksLowestCpuLoad) {
  auto candidates = ThreeHosts();
  LeastLoadedPlacement p;
  Rng rng(1);
  EXPECT_EQ(p.pick(candidates, rng), 1u);  // load 0.1
  candidates[1].accepting = false;
  EXPECT_EQ(p.pick(candidates, rng), 0u);  // next lowest: 0.5
}

TEST(PlacementTest, NoAcceptingHostsYieldsNone) {
  auto candidates = ThreeHosts();
  for (auto& c : candidates) c.accepting = false;
  Rng rng(1);
  RandomPlacement r;
  RoundRobinPlacement rr;
  LeastLoadedPlacement ll;
  EXPECT_EQ(r.pick(candidates, rng), kNone);
  EXPECT_EQ(rr.pick(candidates, rng), kNone);
  EXPECT_EQ(ll.pick(candidates, rng), kNone);
}

TEST(PlacementTest, EmptyCandidateListYieldsNone) {
  Rng rng(1);
  RandomPlacement r;
  EXPECT_EQ(r.pick({}, rng), kNone);
}

class MakePolicyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MakePolicyTest, FactoryProducesNamedPolicy) {
  auto policy = MakePolicy(GetParam());
  ASSERT_NE(policy, nullptr);
  EXPECT_EQ(policy->name(), GetParam());
}

INSTANTIATE_TEST_SUITE_P(Names, MakePolicyTest,
                         ::testing::Values("random", "round-robin",
                                           "least-loaded"));

TEST(MakePolicyTest, UnknownNameYieldsNull) {
  EXPECT_EQ(MakePolicy("magic"), nullptr);
}

}  // namespace
}  // namespace legion::sched
