// The full object model under real concurrency: bootstrap and workloads on
// ThreadRuntime (one OS thread per active object).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/test_support.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::core {
namespace {

using testing::CounterImpl;
using testing::CounterInit;
using testing::ReadI64;

class ThreadSystemTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::ThreadRuntime>(7);
    j1_ = runtime_->topology().add_jurisdiction("j1");
    j2_ = runtime_->topology().add_jurisdiction("j2");
    h1_ = runtime_->topology().add_host("h1", {j1_}, 16.0);
    h2_ = runtime_->topology().add_host("h2", {j1_}, 16.0);
    h3_ = runtime_->topology().add_host("h3", {j2_}, 16.0);

    system_ = std::make_unique<LegionSystem>(*runtime_, SystemConfig{});
    ASSERT_TRUE(system_->registry()
                    .add(std::string(CounterImpl::kName),
                         [] { return std::make_unique<CounterImpl>(); })
                    .ok());
    const Status st = system_->bootstrap();
    ASSERT_TRUE(st.ok()) << st.to_string();

    client_ = system_->make_client(h1_);
    wire::DeriveRequest req;
    req.name = "Counter";
    req.instance_impl = std::string(CounterImpl::kName);
    auto reply = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    counter_class_ = reply->loid;
  }

  void TearDown() override {
    client_.reset();
    system_.reset();
    runtime_.reset();
  }

  std::unique_ptr<rt::ThreadRuntime> runtime_;
  std::unique_ptr<LegionSystem> system_;
  std::unique_ptr<Client> client_;
  JurisdictionId j1_, j2_;
  HostId h1_, h2_, h3_;
  Loid counter_class_;
};

TEST_F(ThreadSystemTest, BootstrapAndPing) {
  EXPECT_TRUE(
      client_->ref(LegionClassLoid()).call(methods::kPing, Buffer{}).ok());
  EXPECT_TRUE(client_->ref(system_->magistrate_of(j2_))
                  .call(methods::kPing, Buffer{})
                  .ok());
}

TEST_F(ThreadSystemTest, CreateAndInvoke) {
  auto reply = client_->create(counter_class_, CounterInit(100));
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  auto raw = client_->ref(reply->loid).call("Increment", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 101);
}

TEST_F(ThreadSystemTest, ConcurrentClientsHammerOneObject) {
  auto reply = client_->create(counter_class_, CounterInit(0));
  ASSERT_TRUE(reply.ok());
  const Loid counter = reply->loid;

  constexpr int kThreads = 6;
  constexpr int kPerThread = 50;
  std::vector<std::unique_ptr<Client>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(
        system_->make_client(t % 2 == 0 ? h2_ : h3_, "hammer"));
  }
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        if (!clients[t]->ref(counter).call("Increment", Buffer{}).ok()) {
          ++failures;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(failures.load(), 0);

  auto raw = client_->ref(counter).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  // Every increment serialized through the object's single mailbox thread.
  EXPECT_EQ(ReadI64(*raw), kThreads * kPerThread);
}

TEST_F(ThreadSystemTest, ConcurrentCreationsYieldUniqueLoids) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10;
  std::vector<std::unique_ptr<Client>> clients;
  for (int t = 0; t < kThreads; ++t) {
    clients.push_back(system_->make_client(h2_, "creator"));
  }
  std::vector<std::vector<Loid>> created(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPerThread; ++i) {
        auto reply = clients[t]->create(counter_class_, CounterInit(0));
        if (reply.ok()) created[t].push_back(reply->loid);
      }
    });
  }
  for (auto& th : threads) th.join();

  std::set<std::uint64_t> seqs;
  int total = 0;
  for (const auto& batch : created) {
    for (const Loid& loid : batch) {
      EXPECT_EQ(loid.class_id(), counter_class_.class_id());
      seqs.insert(loid.class_specific());
      ++total;
    }
  }
  EXPECT_EQ(total, kThreads * kPerThread);
  // The class object serializes Create() calls, so LOIDs never collide.
  EXPECT_EQ(seqs.size(), static_cast<std::size_t>(total));
}

TEST_F(ThreadSystemTest, DeactivateReactivateUnderThreads) {
  auto reply = client_->create(counter_class_, CounterInit(5),
                               {system_->magistrate_of(j1_)});
  ASSERT_TRUE(reply.ok());
  wire::LoidRequest req{reply->loid};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(j1_))
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());
  auto raw = client_->ref(reply->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 5);
}

TEST_F(ThreadSystemTest, CrossJurisdictionMigrationUnderThreads) {
  auto reply = client_->create(counter_class_, CounterInit(9),
                               {system_->magistrate_of(j1_)});
  ASSERT_TRUE(reply.ok());
  wire::TransferRequest move{reply->loid, system_->magistrate_of(j2_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(j1_))
                  .call(methods::kMove, move.to_buffer())
                  .ok());
  auto raw = client_->ref(reply->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 9);
}

}  // namespace
}  // namespace legion::core
