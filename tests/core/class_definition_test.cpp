// ClassDefinition serialization properties: the class object's entire
// definition must round-trip bit-faithfully (it is the class's OPR state).
#include <gtest/gtest.h>

#include "core/class_object.hpp"
#include "core/wire.hpp"

namespace legion::core {
namespace {

ClassDefinition SampleDefinition(std::uint64_t seed) {
  Rng rng(seed);
  ClassDefinition d;
  d.class_id = rng.next();
  d.name = "Class" + std::to_string(seed);
  d.public_key = {static_cast<std::uint8_t>(seed), 0xAB};
  d.flags = static_cast<std::uint8_t>(rng.below(16));
  d.instance_impl = "impl.primary";
  d.inherited_impls = {"impl.base1", "impl.base2"};
  d.interface.set_name(d.name);
  d.interface.add_method(MethodSignature{"int", "m", {{"int", "x"}}});
  d.superclass = Loid::ForClass(rng.next());
  d.bases = {Loid::ForClass(rng.next()), Loid::ForClass(rng.next())};
  d.clone_parent = Loid::ForClass(rng.next());
  d.default_magistrates = {Loid{4, rng.below(100) + 1}};
  d.default_scheduling_agent = Loid{70, 1};
  d.instance_key_bytes = static_cast<std::uint32_t>(rng.below(32));
  d.binding_ttl_us = static_cast<SimTime>(rng.below(1'000'000));
  return d;
}

class DefinitionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DefinitionSweep, RoundTripsAllFields) {
  const ClassDefinition in = SampleDefinition(GetParam());
  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  const ClassDefinition out = ClassDefinition::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.exhausted());
  EXPECT_EQ(out.class_id, in.class_id);
  EXPECT_EQ(out.name, in.name);
  EXPECT_EQ(out.public_key, in.public_key);
  EXPECT_EQ(out.flags, in.flags);
  EXPECT_EQ(out.instance_impl, in.instance_impl);
  EXPECT_EQ(out.inherited_impls, in.inherited_impls);
  EXPECT_EQ(out.interface, in.interface);
  EXPECT_EQ(out.superclass, in.superclass);
  EXPECT_EQ(out.bases, in.bases);
  EXPECT_EQ(out.clone_parent, in.clone_parent);
  EXPECT_EQ(out.default_magistrates, in.default_magistrates);
  EXPECT_EQ(out.default_scheduling_agent, in.default_scheduling_agent);
  EXPECT_EQ(out.instance_key_bytes, in.instance_key_bytes);
  EXPECT_EQ(out.binding_ttl_us, in.binding_ttl_us);
}

INSTANTIATE_TEST_SUITE_P(Seeds, DefinitionSweep,
                         ::testing::Values(1, 2, 3, 10, 77, 1000));

TEST(ClassDefinitionTest, FlagsDecodeIndependently) {
  ClassDefinition d;
  d.flags = wire::kClassFlagAbstract | wire::kClassFlagFixed;
  EXPECT_TRUE(d.is_abstract());
  EXPECT_FALSE(d.is_private());
  EXPECT_TRUE(d.is_fixed());
  EXPECT_FALSE(d.is_clone());
}

TEST(ClassDefinitionTest, LoidUsesClassIdAndKey) {
  ClassDefinition d;
  d.class_id = 99;
  d.public_key = {0xDE};
  EXPECT_EQ(d.loid(), Loid::ForClass(99));
  EXPECT_EQ(d.loid().public_key(), (std::vector<std::uint8_t>{0xDE}));
}

TEST(ClassDefinitionTest, ImplSpecComposesDerivedFirst) {
  ClassDefinition d;
  d.instance_impl = "derived";
  d.inherited_impls = {"base1", "base2", "base1"};  // dup collapses
  EXPECT_EQ(d.instance_impl_spec(), "derived+base1+base2");
  d.instance_impl.clear();
  EXPECT_EQ(d.instance_impl_spec(), "base1+base2");
}

}  // namespace
}  // namespace legion::core
