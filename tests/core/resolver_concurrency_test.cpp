// Concurrent call()s through ONE Resolver (Section 4.1.4 retry loop).
//
// The retry state — "which binding went stale for THIS call" — used to live
// in a Resolver member, so two concurrent calls that both hit the
// stale-binding path could refresh each other's binding and end up invoking
// the wrong object. The state is now local to each call; these tests drive
// two threads through the stale->refresh->retry path simultaneously and
// assert each call lands on its own target. Run under TSan in CI.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>

#include "core/comm.hpp"
#include "core/wire.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::core {
namespace {

class ResolverConcurrencyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});

    target_a_ = MakeEcho("A");
    target_b_ = MakeEcho("B");

    // A stub Binding Agent answering both the by-LOID and the refresh forms
    // of GetBinding from one (read-only after setup) table.
    ba_ = std::make_unique<rt::Messenger>(
        runtime_, host_, "stub-ba", rt::ExecutionMode::kServiced,
        [this](rt::ServerContext& ctx, Reader& args) -> Result<Buffer> {
          if (ctx.call.method != std::string(methods::kGetBinding)) {
            return UnimplementedError("stub only binds");
          }
          auto req = wire::GetBindingRequest::Deserialize(args);
          if (!args.ok()) return InvalidArgumentError("bad args");
          if (req.loid == Loid{60, 1}) {
            return wire::BindingReply{LiveBinding(req.loid, *target_a_)}
                .to_buffer();
          }
          if (req.loid == Loid{60, 2}) {
            return wire::BindingReply{LiveBinding(req.loid, *target_b_)}
                .to_buffer();
          }
          return NotFoundError("unknown loid");
        });

    SystemHandles handles;
    handles.default_binding_agent =
        Binding{Loid{kLegionBindingAgentClassId, 1},
                ObjectAddress{ObjectAddressElement::Sim(ba_->endpoint())},
                kSimTimeNever};
    client_ = std::make_unique<rt::Messenger>(
        runtime_, host_, "client", rt::ExecutionMode::kDriver, nullptr);
    resolver_ = std::make_unique<Resolver>(*client_, handles, 16, Rng(5));
  }

  std::unique_ptr<rt::Messenger> MakeEcho(std::string payload) {
    return std::make_unique<rt::Messenger>(
        runtime_, host_, "echo", rt::ExecutionMode::kServiced,
        [payload](rt::ServerContext&, Reader&) -> Result<Buffer> {
          return Buffer::FromString(payload);
        });
  }

  static Binding LiveBinding(const Loid& loid, const rt::Messenger& target) {
    return Binding{loid,
                   ObjectAddress{ObjectAddressElement::Sim(target.endpoint())},
                   kSimTimeNever};
  }

  // A binding whose endpoint was never created: posts bounce immediately
  // with kStaleBinding, driving the refresh path without waiting.
  Binding StaleBinding(const Loid& loid, std::uint64_t fake_endpoint) {
    return Binding{loid,
                   ObjectAddress{ObjectAddressElement::Sim(
                       EndpointId{fake_endpoint})},
                   kSimTimeNever};
  }

  rt::ThreadRuntime runtime_{29};
  HostId host_;
  std::unique_ptr<rt::Messenger> target_a_;
  std::unique_ptr<rt::Messenger> target_b_;
  std::unique_ptr<rt::Messenger> ba_;
  std::unique_ptr<rt::Messenger> client_;
  std::unique_ptr<Resolver> resolver_;
};

TEST_F(ResolverConcurrencyTest, ConcurrentStaleRetriesKeepTheirOwnBinding) {
  constexpr int kRounds = 60;
  for (int round = 0; round < kRounds; ++round) {
    // Both LOIDs start with stale cached bindings, so both calls take the
    // stale -> refresh -> retry path at the same time.
    resolver_->add_binding(StaleBinding(Loid{60, 1}, 900'001));
    resolver_->add_binding(StaleBinding(Loid{60, 2}, 900'002));

    std::atomic<bool> go{false};
    Result<Buffer> reply_a = InternalError("unset");
    Result<Buffer> reply_b = InternalError("unset");
    std::thread caller_a([&] {
      while (!go.load()) std::this_thread::yield();
      reply_a = resolver_->call(Loid{60, 1}, "M", Buffer{},
                                rt::EnvTriple::System(), 2'000'000);
    });
    std::thread caller_b([&] {
      while (!go.load()) std::this_thread::yield();
      reply_b = resolver_->call(Loid{60, 2}, "M", Buffer{},
                                rt::EnvTriple::System(), 2'000'000);
    });
    go.store(true);
    caller_a.join();
    caller_b.join();

    // With shared retry state one call refreshes the OTHER call's stale
    // binding and lands on the wrong object: reply "B" for LOID A.
    ASSERT_TRUE(reply_a.ok()) << "round " << round << ": "
                              << reply_a.status().to_string();
    ASSERT_TRUE(reply_b.ok()) << "round " << round << ": "
                              << reply_b.status().to_string();
    EXPECT_EQ(reply_a->as_string(), "A") << "round " << round;
    EXPECT_EQ(reply_b->as_string(), "B") << "round " << round;

    resolver_->invalidate(Loid{60, 1});
    resolver_->invalidate(Loid{60, 2});
  }
  EXPECT_GE(resolver_->stats().stale_retries, 2u * kRounds);
}

TEST_F(ResolverConcurrencyTest, StaleRetryStillConvergesSingleThreaded) {
  resolver_->add_binding(StaleBinding(Loid{60, 1}, 900'003));
  auto reply = resolver_->call(Loid{60, 1}, "M", Buffer{},
                               rt::EnvTriple::System(), 2'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->as_string(), "A");
  EXPECT_EQ(resolver_->stats().stale_retries, 1u);
  EXPECT_EQ(resolver_->stats().refreshes, 1u);
}

}  // namespace
}  // namespace legion::core
