// Resolver unit tests against a hand-built Binding Agent stub: consult
// accounting, the well-known special cases, and semantics-aware fan-out.
#include <gtest/gtest.h>

#include "core/comm.hpp"
#include "core/wire.hpp"
#include "rt/sim_runtime.hpp"

namespace legion::core {
namespace {

class ResolverTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});

    // A stub Binding Agent that answers GetBinding from a local map.
    ba_ = std::make_unique<rt::Messenger>(
        runtime_, host_, "stub-ba", rt::ExecutionMode::kServiced,
        [this](rt::ServerContext& ctx, Reader& args) -> Result<Buffer> {
          ++ba_requests_;
          if (ctx.call.method != std::string(methods::kGetBinding)) {
            return UnimplementedError("stub only binds");
          }
          auto req = wire::GetBindingRequest::Deserialize(args);
          if (!args.ok()) return InvalidArgumentError("bad args");
          auto it = known_.find(req.loid);
          if (it == known_.end()) return NotFoundError("unknown loid");
          return wire::BindingReply{it->second}.to_buffer();
        });

    handles_.legion_class =
        Binding{LegionClassLoid(),
                ObjectAddress{ObjectAddressElement::Sim(EndpointId{424242})},
                kSimTimeNever};
    handles_.default_binding_agent =
        Binding{Loid{kLegionBindingAgentClassId, 1},
                ObjectAddress{ObjectAddressElement::Sim(ba_->endpoint())},
                kSimTimeNever};

    client_ = std::make_unique<rt::Messenger>(
        runtime_, host_, "client", rt::ExecutionMode::kDriver, nullptr);
    resolver_ = std::make_unique<Resolver>(*client_, handles_, 16, Rng(1));
  }

  // A serviced echo endpoint the stub can hand out bindings for.
  Binding MakeTarget(const Loid& loid, std::string reply_text) {
    targets_.push_back(std::make_unique<rt::Messenger>(
        runtime_, host_, "target", rt::ExecutionMode::kServiced,
        [reply_text](rt::ServerContext&, Reader&) -> Result<Buffer> {
          return Buffer::FromString(reply_text);
        }));
    Binding b{loid,
              ObjectAddress{ObjectAddressElement::Sim(
                  targets_.back()->endpoint())},
              kSimTimeNever};
    known_[loid] = b;
    return b;
  }

  rt::SimRuntime runtime_{5};
  HostId host_;
  std::unique_ptr<rt::Messenger> ba_;
  std::unique_ptr<rt::Messenger> client_;
  std::unique_ptr<Resolver> resolver_;
  SystemHandles handles_;
  std::map<Loid, Binding> known_;
  std::vector<std::unique_ptr<rt::Messenger>> targets_;
  int ba_requests_ = 0;
};

TEST_F(ResolverTest, WellKnownLoidsNeverConsultTheAgent) {
  auto lc = resolver_->resolve(LegionClassLoid(), 1'000'000);
  ASSERT_TRUE(lc.ok());
  EXPECT_EQ(lc->address, handles_.legion_class.address);
  auto ba = resolver_->resolve(Loid{kLegionBindingAgentClassId, 1}, 1'000'000);
  ASSERT_TRUE(ba.ok());
  EXPECT_EQ(ba_requests_, 0);
  EXPECT_EQ(resolver_->stats().binding_agent_consults, 0u);
}

TEST_F(ResolverTest, NilLoidRejectedLocally) {
  EXPECT_EQ(resolver_->resolve(Loid{}, 1'000'000).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(ba_requests_, 0);
}

TEST_F(ResolverTest, CacheAbsorbsRepeatResolves) {
  MakeTarget(Loid{9, 1}, "hi");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(resolver_->resolve(Loid{9, 1}, 1'000'000).ok());
  }
  EXPECT_EQ(ba_requests_, 1);
  EXPECT_EQ(resolver_->cache().stats().hits, 4u);
}

TEST_F(ResolverTest, CallRoutesThroughResolvedBinding) {
  MakeTarget(Loid{9, 2}, "payload");
  auto raw = resolver_->call(Loid{9, 2}, "Anything", Buffer{},
                             rt::EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(raw->as_string(), "payload");
}

TEST_F(ResolverTest, SeededBindingSkipsAgentEntirely) {
  Binding direct = MakeTarget(Loid{9, 3}, "direct");
  known_.clear();  // the agent cannot answer anymore
  resolver_->add_binding(direct);
  auto raw = resolver_->call(Loid{9, 3}, "M", Buffer{},
                             rt::EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ba_requests_, 0);
}

TEST_F(ResolverTest, InvalidateForcesReconsult) {
  MakeTarget(Loid{9, 4}, "x");
  ASSERT_TRUE(resolver_->resolve(Loid{9, 4}, 1'000'000).ok());
  resolver_->invalidate(Loid{9, 4});
  ASSERT_TRUE(resolver_->resolve(Loid{9, 4}, 1'000'000).ok());
  EXPECT_EQ(ba_requests_, 2);
}

TEST_F(ResolverTest, ApplicationErrorsDoNotTriggerRetries) {
  targets_.push_back(std::make_unique<rt::Messenger>(
      runtime_, host_, "angry", rt::ExecutionMode::kServiced,
      [](rt::ServerContext&, Reader&) -> Result<Buffer> {
        return PermissionDeniedError("no");
      }));
  known_[Loid{9, 5}] =
      Binding{Loid{9, 5},
              ObjectAddress{ObjectAddressElement::Sim(
                  targets_.back()->endpoint())},
              kSimTimeNever};
  auto raw = resolver_->call(Loid{9, 5}, "M", Buffer{},
                             rt::EnvTriple::System(), 1'000'000);
  EXPECT_EQ(raw.status().code(), StatusCode::kPermissionDenied);
  EXPECT_EQ(resolver_->stats().stale_retries, 0u);
}

TEST_F(ResolverTest, CallBindingFansOutPerAllSemantic) {
  // Two replicas behind one kAll address: both serve the call.
  int hits_a = 0;
  int hits_b = 0;
  auto make = [&](int* counter) {
    targets_.push_back(std::make_unique<rt::Messenger>(
        runtime_, host_, "replica", rt::ExecutionMode::kServiced,
        [counter](rt::ServerContext&, Reader&) -> Result<Buffer> {
          ++*counter;
          return Buffer::FromString("ok");
        }));
    return ObjectAddressElement::Sim(targets_.back()->endpoint());
  };
  Binding replicated{Loid{9, 6},
                     ObjectAddress{{make(&hits_a), make(&hits_b)},
                                   AddressSemantic::kAll},
                     kSimTimeNever};
  auto raw = resolver_->call_binding(replicated, "M", Buffer{},
                                     rt::EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(hits_a, 1);
  EXPECT_EQ(hits_b, 1);
}

TEST_F(ResolverTest, FirstSuccessWinsWhenSomeReplicasAreDead) {
  // One dead element plus one live one under kAll: the call still succeeds.
  targets_.push_back(std::make_unique<rt::Messenger>(
      runtime_, host_, "live", rt::ExecutionMode::kServiced,
      [](rt::ServerContext&, Reader&) -> Result<Buffer> {
        return Buffer::FromString("alive");
      }));
  Binding mixed{Loid{9, 7},
                ObjectAddress{{ObjectAddressElement::Sim(EndpointId{777777}),
                               ObjectAddressElement::Sim(
                                   targets_.back()->endpoint())},
                              AddressSemantic::kAll},
                kSimTimeNever};
  auto raw = resolver_->call_binding(mixed, "M", Buffer{},
                                     rt::EnvTriple::System(), 1'000'000);
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(raw->as_string(), "alive");
}

}  // namespace
}  // namespace legion::core
