// Replica healing: the fault-tolerance objective of Section 1 applied to
// Section 4.3's replicated objects. A magistrate probes replicas, restarts
// the dead ones from a survivor's state, and republishes the address.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class HealTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    auto reply = client_->create_replicated(
        counter_class_, CounterInit(0), 2, AddressSemantic::kAll, 1,
        {system_->magistrate_of(uva_)});
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    object_ = reply->loid;
    binding_ = reply->binding;
  }

  // Kills the replica process on `host` behind the magistrate's back.
  void KillReplicaOn(HostId host) {
    wire::StopObjectRequest stop{object_, /*discard_state=*/true};
    ASSERT_TRUE(client_->ref(system_->host_object_of(host))
                    .call(methods::kStopObject, stop.to_buffer())
                    .ok());
  }

  HostId HostRunningReplica() {
    for (HostId h : {uva1_, uva2_}) {
      if (system_->host_impl(h)->find_object(object_) != nullptr) return h;
    }
    return HostId{};
  }

  Result<Binding> Heal() {
    wire::LoidRequest req{object_};
    auto raw = client_->ref(system_->magistrate_of(uva_))
                   .call(methods::kHeal, req.to_buffer());
    if (!raw.ok()) return raw.status();
    LEGION_ASSIGN_OR_RETURN(wire::BindingReply reply,
                            wire::BindingReply::from_buffer(*raw));
    return reply.binding;
  }

  Loid counter_class_;
  Loid object_;
  Binding binding_;
};

TEST_F(HealTest, HealIsNoopWhenAllReplicasLive) {
  auto healed = Heal();
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  EXPECT_EQ(healed->address.elements().size(), 2u);
  EXPECT_EQ(healed->address, binding_.address);  // nothing changed
}

TEST_F(HealTest, DeadReplicaIsRestartedFromSurvivorState) {
  // Put state into both replicas (kAll), then murder one.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client_->ref(object_).call("Increment", Buffer{}).ok());
  }
  KillReplicaOn(uva1_);
  ASSERT_EQ(system_->host_impl(uva1_)->find_object(object_), nullptr);

  auto healed = Heal();
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  EXPECT_EQ(healed->address.elements().size(), 2u);
  EXPECT_FALSE(healed->address == binding_.address);  // one element replaced

  // Both replicas answer with the survivor's count.
  for (const auto& element : healed->address.elements()) {
    Binding single{object_, ObjectAddress{element}, kSimTimeNever};
    auto raw = client_->resolver().call_binding(single, "Get", Buffer{},
                                                rt::EnvTriple::System(),
                                                10'000'000);
    ASSERT_TRUE(raw.ok()) << raw.status().to_string();
    EXPECT_EQ(ReadI64(*raw), 6);
  }
}

TEST_F(HealTest, ClientsRecoverThroughRefreshAfterHeal) {
  ASSERT_TRUE(client_->ref(object_).call("Increment", Buffer{}).ok());
  KillReplicaOn(uva1_);
  ASSERT_TRUE(Heal().ok());

  // The client still caches the pre-heal address (one dead element under
  // kAll); the call succeeds via the surviving element, or repairs through
  // refresh — either way the object remains available.
  auto raw = client_->ref(object_).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_GE(ReadI64(*raw), 1);

  // A cold client resolves the *healed* address from the class.
  client_->resolver().cache().clear();
  auto fresh = client_->get_binding(object_);
  ASSERT_TRUE(fresh.ok());
  // Refresh the row first if the class still holds the stale address.
  if (fresh->address == binding_.address) {
    auto repaired = client_->resolver().refresh(*fresh, 10'000'000);
    ASSERT_TRUE(repaired.ok());
  }
  SUCCEED();
}

TEST_F(HealTest, AllReplicasDeadIsUnrecoverable) {
  KillReplicaOn(uva1_);
  KillReplicaOn(uva2_);
  EXPECT_EQ(Heal().status().code(), StatusCode::kUnavailable);
}

TEST_F(HealTest, HealUnknownObjectFails) {
  wire::LoidRequest req{Loid{counter_class_.class_id(), 31337}};
  EXPECT_EQ(client_->ref(system_->magistrate_of(uva_))
                .call(methods::kHeal, req.to_buffer())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(HealTest, SingleProcessObjectsCanHealToo) {
  auto solo = client_->create(counter_class_, CounterInit(4),
                              {system_->magistrate_of(uva_)});
  ASSERT_TRUE(solo.ok());
  // A healthy singleton heals to itself.
  wire::LoidRequest req{solo->loid};
  auto raw = client_->ref(system_->magistrate_of(uva_))
                 .call(methods::kHeal, req.to_buffer());
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
}

}  // namespace
}  // namespace legion::core
