// Jurisdiction splitting, paper Section 2.2: a loaded Magistrate hands half
// its objects to another Magistrate, and the system keeps working.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class JurisdictionSplitTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
    // Load uva's magistrate with a dozen objects, each holding its index.
    for (int i = 0; i < 12; ++i) {
      auto reply = client_->create(counter_class_, CounterInit(i),
                                   {system_->magistrate_of(uva_)});
      ASSERT_TRUE(reply.ok());
      objects_.push_back(reply->loid);
    }
  }

  Result<std::uint32_t> Split(const Loid& src, const Loid& dest) {
    wire::LoidRequest req{dest};
    auto raw = client_->ref(src).call(methods::kSplit, req.to_buffer());
    if (!raw.ok()) return raw.status();
    Reader r(*raw);
    return r.u32();
  }

  Loid counter_class_;
  std::vector<Loid> objects_;
};

TEST_F(JurisdictionSplitTest, SplitMovesHalfTheObjects) {
  MagistrateImpl* uva_mag = system_->magistrate_impl(uva_);
  MagistrateImpl* doe_mag = system_->magistrate_impl(doe_);
  const std::size_t before =
      uva_mag->active_count() + uva_mag->inert_count();
  const std::size_t doe_before =
      doe_mag->active_count() + doe_mag->inert_count();

  auto moved = Split(system_->magistrate_of(uva_), system_->magistrate_of(doe_));
  ASSERT_TRUE(moved.ok()) << moved.status().to_string();
  EXPECT_EQ(*moved, (before + 1) / 2);
  EXPECT_EQ(uva_mag->active_count() + uva_mag->inert_count(),
            before - *moved);
  EXPECT_EQ(doe_mag->active_count() + doe_mag->inert_count(),
            doe_before + *moved);
}

TEST_F(JurisdictionSplitTest, EveryObjectStillReachableWithStateIntact) {
  ASSERT_TRUE(
      Split(system_->magistrate_of(uva_), system_->magistrate_of(doe_)).ok());
  // Both a warm client and a cold one can reach every object.
  auto cold = system_->make_client(doe2_, "cold");
  for (std::size_t i = 0; i < objects_.size(); ++i) {
    auto warm = client_->ref(objects_[i]).call("Get", Buffer{});
    ASSERT_TRUE(warm.ok()) << i << ": " << warm.status().to_string();
    EXPECT_EQ(ReadI64(*warm), static_cast<std::int64_t>(i));
    auto cold_read = cold->ref(objects_[i]).call("Get", Buffer{});
    ASSERT_TRUE(cold_read.ok()) << i << ": " << cold_read.status().to_string();
  }
}

TEST_F(JurisdictionSplitTest, SplitOntoSelfRejected) {
  EXPECT_EQ(
      Split(system_->magistrate_of(uva_), system_->magistrate_of(uva_))
          .status()
          .code(),
      StatusCode::kInvalidArgument);
}

TEST_F(JurisdictionSplitTest, SplitOfEmptyMagistrateIsNoop) {
  // doe manages nothing we created (maybe the class object, moved count
  // is whatever half of its managed set is — splitting twice empties).
  auto first = Split(system_->magistrate_of(doe_), system_->magistrate_of(uva_));
  ASSERT_TRUE(first.ok());
  MagistrateImpl* doe_mag = system_->magistrate_impl(doe_);
  while (doe_mag->active_count() + doe_mag->inert_count() > 0) {
    auto more =
        Split(system_->magistrate_of(doe_), system_->magistrate_of(uva_));
    ASSERT_TRUE(more.ok());
    if (*more == 0) break;
  }
  auto empty = Split(system_->magistrate_of(doe_), system_->magistrate_of(uva_));
  ASSERT_TRUE(empty.ok());
  EXPECT_EQ(*empty, 0u);
}

TEST_F(JurisdictionSplitTest, RepeatedSplitsConverge) {
  // Ping-pong splits terminate and preserve the total population.
  MagistrateImpl* mags[2] = {system_->magistrate_impl(uva_),
                             system_->magistrate_impl(doe_)};
  const Loid loids[2] = {system_->magistrate_of(uva_),
                         system_->magistrate_of(doe_)};
  auto population = [&] {
    return mags[0]->active_count() + mags[0]->inert_count() +
           mags[1]->active_count() + mags[1]->inert_count();
  };
  const std::size_t total = population();
  for (int round = 0; round < 4; ++round) {
    ASSERT_TRUE(Split(loids[round % 2], loids[1 - round % 2]).ok());
    EXPECT_EQ(population(), total) << "round " << round;
  }
  // Load ends up roughly balanced.
  const auto a = mags[0]->active_count() + mags[0]->inert_count();
  const auto b = mags[1]->active_count() + mags[1]->inert_count();
  EXPECT_LE(a > b ? a - b : b - a, total / 2);
}

}  // namespace
}  // namespace legion::core
