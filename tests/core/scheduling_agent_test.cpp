// Scheduling Agents: the Section 3.7 hook in motion. Classes consult their
// default agent during Create(); the agent queries Host Objects and applies
// a policy outside the Magistrate (Section 3.8).
#include <gtest/gtest.h>

#include "core/scheduling_agent.hpp"
#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::SimSystemFixture;

class SchedulingAgentTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    ASSERT_TRUE(RegisterSchedulingImpls(system_->registry()).ok());
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());

    // A Scheduling Agent class, then one least-loaded agent instance.
    wire::DeriveRequest req;
    req.name = "Scheduler";
    req.instance_impl = std::string(kSchedulingAgentImpl);
    auto agent_class = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(agent_class.ok());
    auto agent = client_->create(agent_class->loid,
                                 SchedulingAgentInit("least-loaded"));
    ASSERT_TRUE(agent.ok());
    agent_ = agent->loid;
  }

  void AttachAgentToCounterClass() {
    wire::LoidRequest req{agent_};
    ASSERT_TRUE(client_->ref(counter_class_)
                    .call(methods::kSetSchedulingAgent, req.to_buffer())
                    .ok());
  }

  Loid counter_class_;
  Loid agent_;
};

TEST_F(SchedulingAgentTest, SuggestHostReturnsAHostOfTheJurisdiction) {
  wire::LoidRequest req{system_->magistrate_of(uva_)};
  auto raw = client_->ref(agent_).call(methods::kSuggestHost, req.to_buffer());
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  auto reply = wire::LoidReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  const std::vector<Loid> uva_hosts = {system_->host_object_of(uva1_),
                                       system_->host_object_of(uva2_)};
  EXPECT_TRUE(reply->loid == uva_hosts[0] || reply->loid == uva_hosts[1]);
}

TEST_F(SchedulingAgentTest, LeastLoadedAgentBalancesCreations) {
  AttachAgentToCounterClass();
  // With least-loaded suggestions, consecutive creations alternate hosts.
  const std::size_t before1 = system_->host_impl(uva1_)->active_objects();
  const std::size_t before2 = system_->host_impl(uva2_)->active_objects();
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(client_
                    ->create(counter_class_, CounterInit(0),
                             {system_->magistrate_of(uva_)})
                    .ok());
  }
  const std::size_t gained1 =
      system_->host_impl(uva1_)->active_objects() - before1;
  const std::size_t gained2 =
      system_->host_impl(uva2_)->active_objects() - before2;
  EXPECT_EQ(gained1 + gained2, 6u);
  // Least-loaded keeps the two hosts within one object of each other.
  EXPECT_LE(gained1 > gained2 ? gained1 - gained2 : gained2 - gained1, 2u);
}

TEST_F(SchedulingAgentTest, ExplicitSuggestionOverridesAgent) {
  AttachAgentToCounterClass();
  const std::size_t before = system_->host_impl(uva2_)->active_objects();
  auto reply = client_->create(counter_class_, CounterInit(0),
                               {system_->magistrate_of(uva_)},
                               system_->host_object_of(uva2_));
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(system_->host_impl(uva2_)->active_objects(), before + 1);
}

TEST_F(SchedulingAgentTest, DeadAgentFallsBackToMagistratePlacement) {
  AttachAgentToCounterClass();
  // Kill the agent; Create() must still succeed via magistrate-default
  // placement (the hook is advisory, not load-bearing).
  const Loid agent_class = agent_.responsible_class();
  ASSERT_TRUE(client_->delete_object(agent_class, agent_).ok());
  auto reply = client_->create(counter_class_, CounterInit(0));
  EXPECT_TRUE(reply.ok()) << reply.status().to_string();
}

TEST_F(SchedulingAgentTest, ClearingAgentRestoresDefault) {
  AttachAgentToCounterClass();
  wire::LoidRequest clear{Loid{}};
  ASSERT_TRUE(client_->ref(counter_class_)
                  .call(methods::kSetSchedulingAgent, clear.to_buffer())
                  .ok());
  EXPECT_TRUE(client_->create(counter_class_, CounterInit(0)).ok());
}

TEST_F(SchedulingAgentTest, AgentPolicySurvivesDeactivation) {
  // The agent is an ordinary object: cycle it and its policy persists.
  MagistrateImpl* owner = system_->magistrate_impl(uva_)->manages(agent_)
                              ? system_->magistrate_impl(uva_)
                              : system_->magistrate_impl(doe_);
  const Loid owner_loid = owner->jurisdiction() == uva_
                              ? system_->magistrate_of(uva_)
                              : system_->magistrate_of(doe_);
  wire::LoidRequest req{agent_};
  ASSERT_TRUE(client_->ref(owner_loid)
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());

  wire::LoidRequest ask{system_->magistrate_of(doe_)};
  auto raw = client_->ref(agent_).call(methods::kSuggestHost, ask.to_buffer());
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
}

TEST_F(SchedulingAgentTest, MagistrateListHostsExported) {
  auto raw = client_->ref(system_->magistrate_of(uva_))
                 .call(methods::kListHosts, Buffer{});
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LoidListReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->loids.size(), 2u);
}

}  // namespace
}  // namespace legion::core
