// Regression tests for the shared fan-out deadline (Section 4.3 replicated
// addresses): a 3-replica address with dead replicas must cost at most ONE
// caller timeout, and a live replica's reply must win immediately no matter
// where it sits in the element order. The old code awaited each replica
// future sequentially with the full timeout — 3 replicas, 2 dead, meant 2
// timeouts of dead waiting before the live reply was even looked at.
#include <gtest/gtest.h>

#include <chrono>

#include "core/comm.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::core {
namespace {

using Clock = std::chrono::steady_clock;

std::int64_t MsSince(Clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                               t0)
      .count();
}

class ResolverTimeoutTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});
    client_ = std::make_unique<rt::Messenger>(
        runtime_, host_, "client", rt::ExecutionMode::kDriver, nullptr);
    resolver_ =
        std::make_unique<Resolver>(*client_, SystemHandles{}, 16, Rng(3));
  }

  // A "dead" replica: an endpoint that accepts requests and never answers
  // (driver mode with nobody pumping — the silent-failure case, unlike a
  // closed endpoint whose bounce fails fast).
  EndpointId MakeSilentReplica() {
    return runtime_.create_endpoint(host_, "silent", [](rt::Envelope&&) {},
                                    rt::ExecutionMode::kDriver);
  }

  rt::ThreadRuntime runtime_{23};
  HostId host_;
  std::unique_ptr<rt::Messenger> client_;
  std::unique_ptr<Resolver> resolver_;
};

TEST_F(ResolverTimeoutTest, LiveReplicaWinsWithoutWaitingOutDeadOnes) {
  // Element order puts BOTH dead replicas ahead of the live one, so the old
  // sequential-await code would burn 2 x timeout before looking at the live
  // reply. The fix awaits the whole fan-out at once.
  const EndpointId dead1 = MakeSilentReplica();
  const EndpointId dead2 = MakeSilentReplica();
  rt::Messenger live(runtime_, host_, "live", rt::ExecutionMode::kServiced,
                     [](rt::ServerContext&, Reader&) -> Result<Buffer> {
                       return Buffer::FromString("alive");
                     });

  Binding replicated{
      Loid{50, 1},
      ObjectAddress{{ObjectAddressElement::Sim(dead1),
                     ObjectAddressElement::Sim(dead2),
                     ObjectAddressElement::Sim(live.endpoint())},
                    AddressSemantic::kAll},
      kSimTimeNever};

  constexpr SimTime kTimeoutUs = 2'000'000;  // 2 s budget
  const auto t0 = Clock::now();
  auto reply = resolver_->call_binding(replicated, "M", Buffer{},
                                       rt::EnvTriple::System(), kTimeoutUs);
  const std::int64_t elapsed_ms = MsSince(t0);

  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->as_string(), "alive");
  // The reply is local loopback: milliseconds. Anything near a full timeout
  // (let alone two) means the fan-out waited on a dead replica first.
  EXPECT_LT(elapsed_ms, 1000) << "fan-out blocked behind dead replicas";
}

TEST_F(ResolverTimeoutTest, AllDeadReplicasCostOneSharedTimeoutNotThree) {
  const EndpointId dead1 = MakeSilentReplica();
  const EndpointId dead2 = MakeSilentReplica();
  const EndpointId dead3 = MakeSilentReplica();
  Binding replicated{Loid{50, 2},
                     ObjectAddress{{ObjectAddressElement::Sim(dead1),
                                    ObjectAddressElement::Sim(dead2),
                                    ObjectAddressElement::Sim(dead3)},
                                   AddressSemantic::kAll},
                     kSimTimeNever};

  constexpr SimTime kTimeoutUs = 400'000;  // 400 ms budget
  const auto t0 = Clock::now();
  auto reply = resolver_->call_binding(replicated, "M", Buffer{},
                                       rt::EnvTriple::System(), kTimeoutUs);
  const std::int64_t elapsed_ms = MsSince(t0);

  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kTimeout);
  // One shared deadline: ~400 ms. The old per-future awaiting took ~1200 ms.
  EXPECT_GE(elapsed_ms, 350);
  EXPECT_LT(elapsed_ms, 1000) << "deadline was paid per replica, not shared";
}

TEST_F(ResolverTimeoutTest, SuccessStopsTheWaitEvenAfterEarlierFailures) {
  // First element bounces instantly (closed endpoint), second answers: the
  // failure must not consume the call's budget or mask the success.
  const EndpointId closed =
      runtime_.create_endpoint(host_, "gone", [](rt::Envelope&&) {},
                               rt::ExecutionMode::kDriver);
  runtime_.close_endpoint(closed);
  rt::Messenger live(runtime_, host_, "live", rt::ExecutionMode::kServiced,
                     [](rt::ServerContext&, Reader&) -> Result<Buffer> {
                       return Buffer::FromString("still-here");
                     });
  Binding mixed{Loid{50, 3},
                ObjectAddress{{ObjectAddressElement::Sim(closed),
                               ObjectAddressElement::Sim(live.endpoint())},
                              AddressSemantic::kAll},
                kSimTimeNever};

  const auto t0 = Clock::now();
  auto reply = resolver_->call_binding(mixed, "M", Buffer{},
                                       rt::EnvTriple::System(), 2'000'000);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->as_string(), "still-here");
  EXPECT_LT(MsSince(t0), 1000);
}

}  // namespace
}  // namespace legion::core
