// Exception reporting (Section 2.3) plus retry exhaustion and a small
// scale smoke (thousands of objects in the simulator).
#include <gtest/gtest.h>

#include <map>
#include <set>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::SimSystemFixture;

class ExceptionsTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
  }

  std::map<Loid, std::uint64_t> GetExceptions(HostId host) {
    auto raw = client_->ref(system_->host_object_of(host))
                   .call(methods::kGetExceptions, Buffer{});
    EXPECT_TRUE(raw.ok());
    std::map<Loid, std::uint64_t> out;
    if (!raw.ok()) return out;
    Reader r(*raw);
    const std::uint32_t n = r.u32();
    for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
      const Loid loid = Loid::Deserialize(r);
      out[loid] = r.u64();
    }
    return out;
  }

  Loid counter_class_;
};

TEST_F(ExceptionsTest, HostReportsPerObjectErrorCounts) {
  auto reply = client_->create(counter_class_, CounterInit(0),
                               {system_->magistrate_of(uva_)},
                               system_->host_object_of(uva1_));
  ASSERT_TRUE(reply.ok());

  // Two application errors and one unknown method.
  (void)client_->ref(reply->loid).call("Boom", Buffer{});
  (void)client_->ref(reply->loid).call("Boom", Buffer{});
  (void)client_->ref(reply->loid).call("NoSuchMethod", Buffer{});
  ASSERT_TRUE(client_->ref(reply->loid).call("Get", Buffer{}).ok());

  const auto exceptions = GetExceptions(uva1_);
  ASSERT_TRUE(exceptions.contains(reply->loid));
  EXPECT_EQ(exceptions.at(reply->loid), 3u);
}

TEST_F(ExceptionsTest, CleanObjectsReportZero) {
  auto reply = client_->create(counter_class_, CounterInit(0),
                               {system_->magistrate_of(uva_)},
                               system_->host_object_of(uva1_));
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(client_->ref(reply->loid).call("Get", Buffer{}).ok());
  EXPECT_EQ(GetExceptions(uva1_).at(reply->loid), 0u);
}

TEST_F(ExceptionsTest, RetryExhaustionIsBounded) {
  // A component registered with a dead Object Address and no magistrate to
  // reactivate it: the resolver's repair loop must give up after
  // kMaxAttempts instead of spinning.
  Binding dead;
  dead.loid = Loid{kLegionHostClassId, 4242};
  dead.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{999999})};
  wire::NotifyStartedRequest reg{dead.loid, dead};
  ASSERT_TRUE(client_->ref(LegionHostLoid())
                  .call(methods::kNotifyStarted, reg.to_buffer())
                  .ok());

  client_->resolver().reset_stats();
  auto result = client_->ref(dead.loid).call(methods::kPing, Buffer{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(client_->resolver().stats().stale_retries,
            static_cast<std::uint64_t>(Resolver::kMaxAttempts));
}

TEST_F(ExceptionsTest, ScaleSmokeThousandObjects) {
  // 1000 objects across both jurisdictions: unique LOIDs, all resolvable
  // from a cold client, logical table intact.
  std::vector<Loid> objects;
  std::set<std::uint64_t> seqs;
  for (int i = 0; i < 1000; ++i) {
    auto reply = client_->create(counter_class_, CounterInit(i));
    ASSERT_TRUE(reply.ok()) << i << ": " << reply.status().to_string();
    objects.push_back(reply->loid);
    seqs.insert(reply->loid.class_specific());
  }
  EXPECT_EQ(seqs.size(), 1000u);

  auto cold = system_->make_client(doe2_, "cold");
  Rng rng(17);
  for (int probe = 0; probe < 50; ++probe) {
    const Loid& target = objects[rng.below(objects.size())];
    auto raw = cold->ref(target).call("Get", Buffer{});
    ASSERT_TRUE(raw.ok()) << target.to_string();
  }

  // The class's table has exactly the created rows.
  auto raw = client_->ref(counter_class_).call(methods::kListInstances,
                                               Buffer{});
  ASSERT_TRUE(raw.ok());
  auto list = wire::LoidListReply::from_buffer(*raw);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->loids.size(), 1000u);
}

}  // namespace
}  // namespace legion::core
