// The ActiveObject shell in isolation: mandatory methods, state sections,
// implementation composition, and policy plumbing.
#include <gtest/gtest.h>

#include "core/active_object.hpp"
#include "core/state_sections.hpp"
#include "core/test_support.hpp"
#include "rt/sim_runtime.hpp"

namespace legion::core {
namespace {

using testing::CounterImpl;
using testing::GreeterImpl;

class ActiveObjectTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_.topology().add_jurisdiction("j");
    host_ = runtime_.topology().add_host("h", {j});
    client_host_ = runtime_.topology().add_host("c", {j});
  }

  std::unique_ptr<ActiveObject> MakeShell(
      std::vector<std::unique_ptr<ObjectImpl>> impls,
      const Buffer& state = Buffer{}) {
    auto shell = std::make_unique<ActiveObject>(
        runtime_, host_, Loid{77, 1}, std::move(impls), SystemHandles{},
        ActiveObjectConfig{});
    EXPECT_TRUE(shell->restore(state).ok());
    return shell;
  }

  Result<Buffer> Call(ActiveObject& shell, std::string_view method,
                      Buffer args = Buffer{},
                      rt::EnvTriple env = rt::EnvTriple::System()) {
    rt::Messenger client(runtime_, client_host_, "test-client",
                         rt::ExecutionMode::kDriver, nullptr);
    return client.call(shell.endpoint(), method, std::move(args), env,
                       rt::Messenger::kDefaultTimeoutUs);
  }

  rt::SimRuntime runtime_{3};
  HostId host_, client_host_;
};

std::vector<std::unique_ptr<ObjectImpl>> Single() {
  std::vector<std::unique_ptr<ObjectImpl>> impls;
  impls.push_back(std::make_unique<CounterImpl>());
  return impls;
}

std::vector<std::unique_ptr<ObjectImpl>> Composite() {
  std::vector<std::unique_ptr<ObjectImpl>> impls;
  impls.push_back(std::make_unique<CounterImpl>());
  impls.push_back(std::make_unique<GreeterImpl>());
  return impls;
}

TEST_F(ActiveObjectTest, MandatoryMethodsAlwaysPresent) {
  auto shell = MakeShell(Single());
  EXPECT_TRUE(Call(*shell, methods::kPing).ok());
  auto iam = Call(*shell, methods::kIam);
  ASSERT_TRUE(iam.ok());
  Reader r(*iam);
  EXPECT_EQ(Loid::Deserialize(r), (Loid{77, 1}));
}

TEST_F(ActiveObjectTest, InterfaceMergesImplsAndMandatory) {
  auto shell = MakeShell(Composite());
  const InterfaceDescription iface = shell->interface();
  EXPECT_TRUE(iface.has_method("Increment"));  // CounterImpl
  EXPECT_TRUE(iface.has_method("Greet"));      // GreeterImpl
  EXPECT_TRUE(iface.has_method(methods::kSaveState));  // mandatory
}

TEST_F(ActiveObjectTest, CompositionDispatchOrderDerivedFirst) {
  auto shell = MakeShell(Composite());
  // Both impls define Get; the first (derived) wins.
  auto raw = Call(*shell, "Get");
  ASSERT_TRUE(raw.ok());
  Reader r(*raw);
  EXPECT_EQ(r.i64(), 0);  // CounterImpl's Get, not Greeter's -777
}

TEST_F(ActiveObjectTest, ImplSpecJoinsNames) {
  auto shell = MakeShell(Composite());
  EXPECT_EQ(shell->impl_spec(), "test.counter+test.greeter");
}

TEST_F(ActiveObjectTest, SaveStateProducesNamedSections) {
  auto shell = MakeShell(Composite());
  ASSERT_TRUE(Call(*shell, "Increment").ok());
  const Buffer state = shell->save_state();
  auto sections = StateSections::from_buffer(state);
  ASSERT_TRUE(sections.ok());
  EXPECT_EQ(sections->sections.size(), 2u);
  EXPECT_NE(sections->find("test.counter"), nullptr);
  EXPECT_NE(sections->find("test.greeter"), nullptr);
}

TEST_F(ActiveObjectTest, SaveRestoreRoundTripsThroughNewShell) {
  auto shell = MakeShell(Single());
  for (int i = 0; i < 5; ++i) ASSERT_TRUE(Call(*shell, "Increment").ok());
  const Buffer state = shell->save_state();
  shell.reset();

  auto revived = MakeShell(Single(), state);
  auto raw = Call(*revived, "Get");
  ASSERT_TRUE(raw.ok());
  Reader r(*raw);
  EXPECT_EQ(r.i64(), 5);
}

TEST_F(ActiveObjectTest, AnonymousSectionFeedsPrimaryImpl) {
  // Create() passes raw init state without knowing implementation names.
  Buffer init;
  Writer w(init);
  w.i64(41);
  auto shell = MakeShell(Composite(), WrapPrimaryState(std::move(init)));
  auto raw = Call(*shell, "Increment");
  ASSERT_TRUE(raw.ok());
  Reader r(*raw);
  EXPECT_EQ(r.i64(), 42);
}

TEST_F(ActiveObjectTest, MalformedStateReported) {
  auto shell = std::make_unique<ActiveObject>(
      runtime_, host_, Loid{77, 2}, Single(), SystemHandles{},
      ActiveObjectConfig{});
  Buffer junk;
  Writer w(junk);
  w.u32(3);  // claims three sections, provides none
  w.str("test.counter");
  EXPECT_FALSE(shell->restore(junk).ok());
}

TEST_F(ActiveObjectTest, BindingCarriesConfiguredTtl) {
  ActiveObjectConfig config;
  config.binding_ttl_us = 5'000;
  ActiveObject shell(runtime_, host_, Loid{77, 3}, Single(), SystemHandles{},
                     config);
  const Binding binding = shell.binding();
  EXPECT_EQ(binding.expires, runtime_.now() + 5'000);
  EXPECT_FALSE(binding.expired_at(runtime_.now()));
  EXPECT_TRUE(binding.expired_at(runtime_.now() + 5'000));
}

TEST_F(ActiveObjectTest, SaveStateGuardedOnlyByPolicy) {
  // Without a policy, even SaveState is open (the "no security" default).
  auto shell = MakeShell(Single());
  EXPECT_TRUE(Call(*shell, methods::kSaveState).ok());
}

TEST_F(ActiveObjectTest, EndpointDiesWithShell) {
  EndpointId endpoint;
  {
    auto shell = MakeShell(Single());
    endpoint = shell->endpoint();
    EXPECT_TRUE(runtime_.endpoint_alive(endpoint));
  }
  EXPECT_FALSE(runtime_.endpoint_alive(endpoint));
}

}  // namespace
}  // namespace legion::core
