// Jurisdiction hierarchies, paper Section 2.2: "Jurisdictions are
// potentially non-disjoint ... and Jurisdictions can be organized to form
// hierarchies. ... The organization could also simply put its resources
// under the control of another Magistrate."
//
// A host-less "front" magistrate adopts the two leaf magistrates: creation
// through the front delegates placement; lifecycle verbs on the front fall
// through to whichever leaf manages the object.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class HierarchyTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();

    // Build the front magistrate (no hosts, no vault use of its own) and
    // adopt both leaf magistrates over the wire.
    MagistrateConfig config;
    config.jurisdiction = runtime_->topology().add_jurisdiction("org");
    auto impl = std::make_unique<MagistrateImpl>(config);
    front_impl_ = impl.get();
    std::vector<std::unique_ptr<ObjectImpl>> impls;
    impls.push_back(std::move(impl));
    ActiveObjectConfig shell_config;
    shell_config.label = "magistrate";
    front_shell_ = std::make_unique<ActiveObject>(
        *runtime_, uva1_, Loid{kLegionMagistrateClassId, 777},
        std::move(impls), system_->handles_for(uva1_), shell_config);
    ASSERT_TRUE(front_shell_->restore(Buffer{}).ok());
    front_ = front_shell_->self();

    // Register with LegionMagistrate so the front is locatable by LOID.
    wire::NotifyStartedRequest reg{front_, front_shell_->binding()};
    ASSERT_TRUE(client_->ref(LegionMagistrateLoid())
                    .call(methods::kNotifyStarted, reg.to_buffer())
                    .ok());
    for (JurisdictionId j : {uva_, doe_}) {
      wire::LoidRequest adopt{system_->magistrate_of(j)};
      ASSERT_TRUE(client_->ref(front_)
                      .call(methods::kAdoptMagistrate, adopt.to_buffer())
                      .ok());
    }
  }

  void TearDown() override {
    front_shell_.reset();
    SimSystemFixture::TearDown();
  }

  Loid counter_class_;
  Loid front_;
  MagistrateImpl* front_impl_ = nullptr;
  std::unique_ptr<ActiveObject> front_shell_;
};

TEST_F(HierarchyTest, CreateThroughFrontDelegatesPlacement) {
  // The class targets only the front magistrate; objects land on leaves.
  auto a = client_->create(counter_class_, CounterInit(1), {front_});
  auto b = client_->create(counter_class_, CounterInit(2), {front_});
  ASSERT_TRUE(a.ok()) << a.status().to_string();
  ASSERT_TRUE(b.ok()) << b.status().to_string();

  const bool a_leaf = system_->magistrate_impl(uva_)->manages(a->loid) ||
                      system_->magistrate_impl(doe_)->manages(a->loid);
  EXPECT_TRUE(a_leaf);
  EXPECT_EQ(front_impl_->active_count() + front_impl_->inert_count(), 0u);

  // Round-robin delegation spreads across the two leaves.
  EXPECT_NE(system_->magistrate_impl(uva_)->manages(a->loid),
            system_->magistrate_impl(uva_)->manages(b->loid));
}

TEST_F(HierarchyTest, LifecycleVerbsFallThroughToLeaves) {
  auto reply = client_->create(counter_class_, CounterInit(7), {front_});
  ASSERT_TRUE(reply.ok());
  ASSERT_TRUE(client_->ref(reply->loid).call("Increment", Buffer{}).ok());

  // Deactivate via the FRONT: it forwards to whichever leaf manages it.
  wire::LoidRequest req{reply->loid};
  ASSERT_TRUE(client_->ref(front_)
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());

  // Reference reactivates (through the class/magistrate chain as usual).
  auto raw = client_->ref(reply->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 8);

  // Delete through the front as well.
  ASSERT_TRUE(client_->ref(front_).call(methods::kDelete, req.to_buffer()).ok());
  client_->resolver().cache().clear();
  EXPECT_FALSE(client_->ref(reply->loid).call("Get", Buffer{}).ok());
}

TEST_F(HierarchyTest, UnknownObjectStillNotFound) {
  wire::LoidRequest req{Loid{counter_class_.class_id(), 99999}};
  EXPECT_EQ(client_->ref(front_)
                .call(methods::kDeactivate, req.to_buffer())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(HierarchyTest, SelfAdoptionRejected) {
  wire::LoidRequest req{front_};
  EXPECT_EQ(client_->ref(front_)
                .call(methods::kAdoptMagistrate, req.to_buffer())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(HierarchyTest, MoveThroughFrontBetweenLeaves) {
  auto reply = client_->create(counter_class_, CounterInit(3), {front_});
  ASSERT_TRUE(reply.ok());
  const bool at_uva = system_->magistrate_impl(uva_)->manages(reply->loid);
  const Loid dest =
      at_uva ? system_->magistrate_of(doe_) : system_->magistrate_of(uva_);

  wire::TransferRequest move{reply->loid, dest};
  ASSERT_TRUE(client_->ref(front_).call(methods::kMove, move.to_buffer()).ok());
  EXPECT_EQ(system_->magistrate_impl(uva_)->manages(reply->loid), !at_uva);

  auto raw = client_->ref(reply->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 3);
}

}  // namespace
}  // namespace legion::core
