// LegionClass as the class-identifier authority (paper Section 4.1.3).
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::SimSystemFixture;

class LegionClassTest : public SimSystemFixture {};

TEST_F(LegionClassTest, AssignClassIdIsMonotonicAndRecordsPair) {
  wire::AssignClassIdRequest req{LegionObjectLoid()};
  auto raw1 = client_->ref(LegionClassLoid())
                  .call(methods::kAssignClassId, req.to_buffer());
  auto raw2 = client_->ref(LegionClassLoid())
                  .call(methods::kAssignClassId, req.to_buffer());
  ASSERT_TRUE(raw1.ok());
  ASSERT_TRUE(raw2.ok());
  auto id1 = wire::AssignClassIdReply::from_buffer(*raw1);
  auto id2 = wire::AssignClassIdReply::from_buffer(*raw2);
  ASSERT_TRUE(id1.ok());
  ASSERT_TRUE(id2.ok());
  EXPECT_GE(id1->class_id, kFirstUserClassId);
  EXPECT_EQ(id2->class_id, id1->class_id + 1);
  EXPECT_EQ(system_->legion_class_impl()->responsibility_pairs().at(
                id1->class_id),
            LegionObjectLoid());
}

TEST_F(LegionClassTest, AssignClassIdRejectsNonClassCreators) {
  // "A class object is responsible for assigning LOID's to its instances
  // and subclasses" — only class objects create classes.
  wire::AssignClassIdRequest req{Loid{64, 9}};  // an instance LOID
  EXPECT_EQ(client_->ref(LegionClassLoid())
                .call(methods::kAssignClassId, req.to_buffer())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST_F(LegionClassTest, LocateCoreClassAnswersDirectly) {
  wire::LoidRequest req{LegionHostLoid()};
  auto raw = client_->ref(LegionClassLoid())
                 .call(methods::kLocateClass, req.to_buffer());
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LocateClassReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, wire::LocateClassReply::Kind::kBinding);
  EXPECT_EQ(reply->binding.loid, LegionHostLoid());
}

TEST_F(LegionClassTest, LocateUserClassDelegatesToCreator) {
  const Loid counter_class = DeriveCounterClass();
  wire::LoidRequest req{counter_class};
  auto raw = client_->ref(LegionClassLoid())
                 .call(methods::kLocateClass, req.to_buffer());
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LocateClassReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, wire::LocateClassReply::Kind::kDelegate);
  EXPECT_EQ(reply->creator, LegionObjectLoid());
}

TEST_F(LegionClassTest, LocateUnknownClassFails) {
  wire::LoidRequest req{Loid::ForClass(987654)};
  EXPECT_EQ(client_->ref(LegionClassLoid())
                .call(methods::kLocateClass, req.to_buffer())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(LegionClassTest, RegisterClassBindingOverWire) {
  Binding binding;
  binding.loid = Loid::ForClass(500);
  binding.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{1})};
  wire::NotifyStartedRequest req{binding.loid, binding};
  ASSERT_TRUE(client_->ref(LegionClassLoid())
                  .call(methods::kRegisterClassBinding, req.to_buffer())
                  .ok());
  wire::LoidRequest locate{Loid::ForClass(500)};
  auto raw = client_->ref(LegionClassLoid())
                 .call(methods::kLocateClass, locate.to_buffer());
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LocateClassReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->kind, wire::LocateClassReply::Kind::kBinding);
}

TEST_F(LegionClassTest, DerivedMetaclassAssignsIdsViaInheritedMachinery) {
  // Deriving from LegionClass yields a metaclass whose Derive() works like
  // any class's — classes all the way down.
  wire::DeriveRequest req;
  req.name = "MyMetaclass";
  req.instance_impl = std::string(kClassObjectImpl);
  auto meta = client_->derive(LegionClassLoid(), req);
  ASSERT_TRUE(meta.ok()) << meta.status().to_string();

  wire::DeriveRequest sub;
  sub.name = "ViaMeta";
  sub.instance_impl = std::string(testing::CounterImpl::kName);
  auto via = client_->derive(meta->loid, sub);
  ASSERT_TRUE(via.ok()) << via.status().to_string();
  EXPECT_TRUE(via->loid.names_class_object());

  // Instances of the grand-child class resolve through the full chain:
  // LegionClass -> MyMetaclass -> ViaMeta.
  auto instance = client_->create(via->loid, testing::CounterInit(6));
  ASSERT_TRUE(instance.ok());
  auto cold = system_->make_client(doe2_, "cold");
  auto raw = cold->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(testing::ReadI64(*raw), 6);
}

}  // namespace
}  // namespace legion::core
