#include "core/interface.hpp"

#include <gtest/gtest.h>

#include "core/well_known.hpp"

namespace legion::core {
namespace {

MethodSignature Sig(std::string ret, std::string name) {
  return MethodSignature{std::move(ret), std::move(name), {}};
}

TEST(MethodSignatureTest, ToStringFormatsLikeIdl) {
  MethodSignature m{"int", "read", {{"int", "offset"}, {"int", "count"}}};
  EXPECT_EQ(m.to_string(), "int read(int offset, int count)");
  EXPECT_EQ(Sig("void", "Ping").to_string(), "void Ping()");
}

TEST(InterfaceTest, AddAndFind) {
  InterfaceDescription d("File");
  d.add_method(Sig("int", "read"));
  EXPECT_TRUE(d.has_method("read"));
  EXPECT_FALSE(d.has_method("write"));
  ASSERT_NE(d.find("read"), nullptr);
  EXPECT_EQ(d.find("read")->return_type, "int");
}

TEST(InterfaceTest, AddReplacesSameName) {
  InterfaceDescription d("File");
  d.add_method(Sig("int", "read"));
  d.add_method(Sig("bytes", "read"));
  EXPECT_EQ(d.methods().size(), 1u);
  EXPECT_EQ(d.find("read")->return_type, "bytes");
}

TEST(InterfaceTest, MergeKeepsLocalOverrides) {
  // InheritFrom semantics (Section 2.1.1): B's member functions are added
  // to C's interface; C's own definitions win on collision.
  InterfaceDescription derived("Derived");
  derived.add_method(Sig("int", "work"));
  InterfaceDescription base("Base");
  base.add_method(Sig("void", "work"));
  base.add_method(Sig("void", "helper"));
  derived.merge(base);
  EXPECT_EQ(derived.methods().size(), 2u);
  EXPECT_EQ(derived.find("work")->return_type, "int");
  EXPECT_TRUE(derived.has_method("helper"));
}

TEST(InterfaceTest, SerializeRoundTrips) {
  InterfaceDescription in("Thing");
  in.add_method(MethodSignature{"int", "m", {{"string", "s"}}});
  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  EXPECT_EQ(InterfaceDescription::Deserialize(r), in);
}

TEST(InterfaceTest, ObjectMandatorySetIsComplete) {
  // Section 2.1: "All Legion objects export a common set of OBJECT-MANDATORY
  // member functions, including MayI(), SaveState(), and RestoreState()."
  // (RestoreState is invoked on activation, not over the wire.)
  const InterfaceDescription d = ObjectMandatoryInterface();
  EXPECT_TRUE(d.has_method(methods::kMayI));
  EXPECT_TRUE(d.has_method(methods::kSaveState));
  EXPECT_TRUE(d.has_method(methods::kPing));
  EXPECT_TRUE(d.has_method(methods::kIam));
  EXPECT_TRUE(d.has_method(methods::kGetInterface));
}

TEST(InterfaceTest, ClassMandatorySetIsComplete) {
  // Section 3.7: "it will include at least Create(), Derive(),
  // InheritFrom(), Delete(), GetBinding(), and GetInterface()."
  const InterfaceDescription d = ClassMandatoryInterface();
  EXPECT_TRUE(d.has_method(methods::kCreate));
  EXPECT_TRUE(d.has_method(methods::kDerive));
  EXPECT_TRUE(d.has_method(methods::kInheritFrom));
  EXPECT_TRUE(d.has_method(methods::kDelete));
  EXPECT_TRUE(d.has_method(methods::kGetBinding));
  EXPECT_TRUE(d.has_method(methods::kGetInterface));
  // Class objects are objects: object-mandatory methods included.
  EXPECT_TRUE(d.has_method(methods::kMayI));
}

TEST(InterfaceTest, ToStringRendersInterfaceBlock) {
  InterfaceDescription d("File");
  d.add_method(Sig("int", "read"));
  const std::string s = d.to_string();
  EXPECT_NE(s.find("interface File {"), std::string::npos);
  EXPECT_NE(s.find("int read();"), std::string::npos);
}

}  // namespace
}  // namespace legion::core
