// The model under network faults: message loss, partitions, and host
// outages. Section 4.1.4's repair machinery plus timeouts must keep the
// system either making progress or failing cleanly — never hanging or
// corrupting state.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class FaultInjectionTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    auto reply = client_->create(counter_class_, CounterInit(1),
                                 {system_->magistrate_of(uva_)});
    ASSERT_TRUE(reply.ok());
    counter_ = reply->loid;
  }

  Loid counter_class_;
  Loid counter_;
};

TEST_F(FaultInjectionTest, LossyLinksEventuallySucceedViaRetry) {
  // 15% cross-jurisdiction loss: the resolver's timeout+retry loop absorbs
  // it (each attempt refreshes and re-sends — up to four cross legs).
  runtime_->faults().set_drop_probability(net::LatencyClass::kCrossJurisdiction,
                                          0.15);
  // The 1-virtual-second budget leaves room for retries: every dropped
  // cross-jurisdiction leg wastes ~40 virtual ms.
  auto doe_client = system_->make_client(doe1_, "lossy");
  int successes = 0;
  for (int i = 0; i < 20; ++i) {
    auto raw = doe_client->ref(counter_).call("Get", Buffer{}, 1'000'000);
    if (raw.ok()) ++successes;
  }
  // With 3 attempts per call and ~50% round-trip survival, most calls land.
  EXPECT_GT(successes, 12);
}

TEST_F(FaultInjectionTest, TotalPartitionFailsCleanlyWithTimeout) {
  auto doe_client = system_->make_client(doe2_, "cut-off");
  // Sever every doe-2 <-> uva link.
  for (HostId uva_host : {uva1_, uva2_}) {
    runtime_->faults().partition(doe2_, uva_host);
  }
  const SimTime t0 = runtime_->now();
  auto raw = doe_client->ref(counter_).call("Get", Buffer{}, 100'000);
  EXPECT_FALSE(raw.ok());
  // Unavailable when the runtime can prove no progress is possible (the
  // dropped request left an empty event queue); Timeout when the repair
  // machinery's own nested traffic is still in flight at the deadline.
  // Either way the failure is clean and bounded.
  EXPECT_TRUE(raw.status().code() == StatusCode::kUnavailable ||
              raw.status().code() == StatusCode::kTimeout)
      << raw.status().to_string();
  // Bounded failure: three attempts' timeouts (plus the resolver's capped
  // retry backoff), not an unbounded hang.
  EXPECT_LE(runtime_->now() - t0, 3 * 100'000 + 200'000);

  // Healing the partition restores service with no residue.
  for (HostId uva_host : {uva1_, uva2_}) {
    runtime_->faults().heal(doe2_, uva_host);
  }
  auto healed = doe_client->ref(counter_).call("Get", Buffer{});
  ASSERT_TRUE(healed.ok()) << healed.status().to_string();
  EXPECT_EQ(ReadI64(*healed), 1);
}

TEST_F(FaultInjectionTest, DownHostMakesItsObjectsUnreachable) {
  // Find the host actually running the counter.
  HostId running{};
  for (HostId h : {uva1_, uva2_}) {
    if (system_->host_impl(h)->find_object(counter_) != nullptr) running = h;
  }
  ASSERT_TRUE(running.valid());
  runtime_->faults().take_host_down(running);

  auto raw = client_->ref(counter_).call("Get", Buffer{}, 50'000);
  EXPECT_FALSE(raw.ok());

  runtime_->faults().bring_host_up(running);
  auto back = client_->ref(counter_).call("Get", Buffer{});
  EXPECT_TRUE(back.ok()) << back.status().to_string();
}

TEST_F(FaultInjectionTest, StateNeverCorruptedByLossyWrites) {
  // Increments under loss: each attempt either lands exactly once or times
  // out visibly — *within a single attempt* there is no duplication. (The
  // resolver's retry can re-send after a reply was lost, so acknowledged
  // counts are a lower bound; the invariant is count >= acks.)
  runtime_->faults().set_drop_probability(net::LatencyClass::kIntraJurisdiction,
                                          0.2);
  int acked = 0;
  for (int i = 0; i < 30; ++i) {
    auto raw = client_->ref(counter_).call("Increment", Buffer{}, 100'000);
    if (raw.ok()) ++acked;
  }
  runtime_->faults().set_drop_probability(net::LatencyClass::kIntraJurisdiction,
                                          0.0);
  auto raw = client_->ref(counter_).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_GE(ReadI64(*raw), 1 + acked);
  EXPECT_LE(ReadI64(*raw), 1 + 30 * Resolver::kMaxAttempts);
}

TEST_F(FaultInjectionTest, CreationFailsCleanlyWhenJurisdictionCutOff) {
  // Partition the magistrate's jurisdiction from the client, then ask for a
  // creation there: clean timeout, and no half-created object later.
  for (HostId a : {uva1_, uva2_}) {
    for (HostId b : {doe1_, doe2_}) {
      runtime_->faults().partition(a, b);
    }
  }
  auto doe_client = system_->make_client(doe1_, "cut-off");
  auto reply = doe_client->create(counter_class_, CounterInit(0),
                                  {system_->magistrate_of(uva_)});
  // The class object lives in uva or doe; either the class call or the
  // magistrate call fails. Both are clean failures: Unavailable when the
  // failing leg is the client's own (provably no progress possible), or
  // Timeout when the client's deadline fires while the class is still
  // waiting on its cut-off inner call.
  if (!reply.ok()) {
    EXPECT_TRUE(reply.status().code() == StatusCode::kUnavailable ||
                reply.status().code() == StatusCode::kTimeout)
        << reply.status().to_string();
  }
}

}  // namespace
}  // namespace legion::core
