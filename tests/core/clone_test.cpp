// Class cloning, paper Section 5.2.2: relieving popular class objects.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class CloneTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
  }

  Result<wire::CreateReply> CloneClass() {
    wire::CreateRequest req;
    auto raw = client_->ref(counter_class_).call(methods::kClone,
                                                 req.to_buffer());
    if (!raw.ok()) return raw.status();
    return wire::CreateReply::from_buffer(*raw);
  }

  Loid counter_class_;
};

TEST_F(CloneTest, CloneKeepsInterface) {
  // "The cloned class is derived from the heavily used class without
  //  changing the interface in any way."
  auto clone = CloneClass();
  ASSERT_TRUE(clone.ok()) << clone.status().to_string();
  EXPECT_NE(clone->loid.class_id(), counter_class_.class_id());

  auto raw = client_->ref(clone->loid).call("DescribeClass", Buffer{});
  ASSERT_TRUE(raw.ok());
  auto desc = wire::DescribeClassReply::from_buffer(*raw);
  ASSERT_TRUE(desc.ok());
  EXPECT_TRUE(desc->interface.has_method("Increment"));
  EXPECT_TRUE((desc->flags & wire::kClassFlagClone) != 0);
}

TEST_F(CloneTest, CreateForwardsToClones) {
  // "New instantiation and derivation requests are passed to the cloned
  //  object, making it responsible for the new objects."
  auto clone = CloneClass();
  ASSERT_TRUE(clone.ok());

  auto instance = client_->create(counter_class_, CounterInit(5));
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  // The instance carries the *clone's* class id: the clone is responsible.
  EXPECT_EQ(instance->loid.class_id(), clone->loid.class_id());

  // And it works like any counter, resolvable through the clone.
  auto raw = client_->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 5);
}

TEST_F(CloneTest, MultipleClonesRoundRobin) {
  // "Several clones can exist simultaneously."
  auto clone1 = CloneClass();
  auto clone2 = CloneClass();
  ASSERT_TRUE(clone1.ok());
  ASSERT_TRUE(clone2.ok());

  int to_first = 0;
  int to_second = 0;
  for (int i = 0; i < 8; ++i) {
    auto instance = client_->create(counter_class_, CounterInit(0));
    ASSERT_TRUE(instance.ok());
    if (instance->loid.class_id() == clone1->loid.class_id()) ++to_first;
    if (instance->loid.class_id() == clone2->loid.class_id()) ++to_second;
  }
  EXPECT_EQ(to_first, 4);
  EXPECT_EQ(to_second, 4);
}

TEST_F(CloneTest, ClonesCannotBeCloned) {
  auto clone = CloneClass();
  ASSERT_TRUE(clone.ok());
  wire::CreateRequest req;
  EXPECT_EQ(client_->ref(clone->loid)
                .call(methods::kClone, req.to_buffer())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(CloneTest, GetCloneHandsOutCloneForDirectUse) {
  // Clients in different domains adopt a clone and create directly against
  // it — "the different clones residing in different domains."
  auto clone = CloneClass();
  ASSERT_TRUE(clone.ok());

  auto raw = client_->ref(counter_class_).call("GetClone", Buffer{});
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LoidReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->loid.class_id(), clone->loid.class_id());

  // Direct creation against the clone bypasses the parent entirely.
  auto instance = client_->create(reply->loid, CounterInit(1));
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(instance->loid.class_id(), clone->loid.class_id());
}

TEST_F(CloneTest, GetCloneWithoutClonesReturnsSelf) {
  auto raw = client_->ref(counter_class_).call("GetClone", Buffer{});
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LoidReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->loid, counter_class_);
}

TEST_F(CloneTest, CloneInstancesResolvableByColdClients) {
  auto clone = CloneClass();
  ASSERT_TRUE(clone.ok());
  auto instance = client_->create(counter_class_, CounterInit(9));
  ASSERT_TRUE(instance.ok());

  auto cold = system_->make_client(doe1_, "cold");
  auto raw = cold->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 9);
}

}  // namespace
}  // namespace legion::core
