// The security model in motion (paper Section 2.4): MayI() gating every
// invocation, the RA/SA/CA environment triple, and Magistrates as security
// boundaries (Section 3.8 "requests rather than commands").
#include <gtest/gtest.h>

#include "core/policies.hpp"
#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::SimSystemFixture;

// A guarded object: only callers whose class id matches the one stored in
// its state may invoke anything (the DOE scenario of Section 2.1.3).
class GuardedImpl final : public ObjectImpl {
 public:
  static constexpr std::string_view kName = "test.guarded";

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kName);
  }
  void RegisterMethods(MethodTable& table) override {
    table.add("Secret", [](ObjectContext&, Reader&) -> Result<Buffer> {
      return Buffer::FromString("classified");
    });
  }
  void SaveState(Writer& w) const override { w.u64(trusted_class_); }
  Status RestoreState(Reader& r) override {
    if (!r.exhausted()) trusted_class_ = r.u64();
    return OkStatus();
  }
  [[nodiscard]] security::PolicyPtr policy() const override {
    if (trusted_class_ == 0) return nullptr;
    // Manageable: the Host Object/Magistrate may still capture state for
    // deactivation; everything else requires the trusted caller class.
    return MakeManageable(std::make_shared<security::TrustedClassPolicy>(
        std::vector<std::uint64_t>{trusted_class_}, /*allow_system=*/false));
  }

 private:
  std::uint64_t trusted_class_ = 0;
};

Buffer GuardInit(std::uint64_t trusted_class) {
  Buffer b;
  Writer w(b);
  w.u64(trusted_class);
  return b;
}

class SecurityIntegrationTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    ASSERT_TRUE(system_->registry()
                    .add(std::string(GuardedImpl::kName),
                         [] { return std::make_unique<GuardedImpl>(); })
                    .ok());
    wire::DeriveRequest req;
    req.name = "Guarded";
    req.instance_impl = std::string(GuardedImpl::kName);
    auto reply = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(reply.ok());
    guarded_class_ = reply->loid;
  }

  Loid guarded_class_;
};

TEST_F(SecurityIntegrationTest, NoPolicyDefaultsToOpen) {
  // "These functions may default to empty for the case of no security."
  auto open = client_->create(guarded_class_, GuardInit(0));
  ASSERT_TRUE(open.ok());
  auto raw = client_->ref(open->loid).call("Secret", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->as_string(), "classified");
}

TEST_F(SecurityIntegrationTest, PolicyGatesByCallingAgentClass) {
  auto guarded = client_->create(guarded_class_, GuardInit(42));
  ASSERT_TRUE(guarded.ok());

  // Anonymous client: refused.
  EXPECT_EQ(client_->ref(guarded->loid).call("Secret", Buffer{}).status().code(),
            StatusCode::kPermissionDenied);

  // Client presenting an identity of the trusted class: admitted.
  auto trusted = system_->make_client(uva2_, "trusted");
  trusted->set_identity(Loid{42, 7});
  auto raw = trusted->ref(guarded->loid).call("Secret", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();

  // Wrong class: refused.
  auto impostor = system_->make_client(uva2_, "impostor");
  impostor->set_identity(Loid{43, 7});
  EXPECT_EQ(
      impostor->ref(guarded->loid).call("Secret", Buffer{}).status().code(),
      StatusCode::kPermissionDenied);
}

TEST_F(SecurityIntegrationTest, ExplicitMayIProbeMatchesEnforcement) {
  auto guarded = client_->create(guarded_class_, GuardInit(42));
  ASSERT_TRUE(guarded.ok());

  Buffer probe;
  Writer w(probe);
  w.str("Secret");
  // MayI itself is answerable even by untrusted callers, so they can probe.
  auto denied = client_->ref(guarded->loid).call(methods::kMayI, probe);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  auto trusted = system_->make_client(uva2_, "trusted");
  trusted->set_identity(Loid{42, 1});
  Buffer probe2;
  Writer w2(probe2);
  w2.str("Secret");
  EXPECT_TRUE(trusted->ref(guarded->loid).call(methods::kMayI, probe2).ok());
}

TEST_F(SecurityIntegrationTest, PolicySurvivesDeactivation) {
  auto guarded = client_->create(guarded_class_, GuardInit(42),
                                 {system_->magistrate_of(uva_)});
  ASSERT_TRUE(guarded.ok());
  wire::LoidRequest req{guarded->loid};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());
  // Reactivated on reference; the restored policy still refuses us.
  EXPECT_EQ(client_->ref(guarded->loid).call("Secret", Buffer{}).status().code(),
            StatusCode::kPermissionDenied);
}

TEST_F(SecurityIntegrationTest, EnvTriplePropagatesThroughNestedCalls) {
  // A counter absorbed through another object: the intermediate object's
  // nested call carries CA = intermediate, preserving RA from the caller.
  auto counter_class = DeriveCounterClass();
  auto a = client_->create(counter_class, CounterInit(1));
  auto b = client_->create(counter_class, CounterInit(2));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  auto raw = client_->ref(a->loid).call("Absorb", testing::LoidArgs(b->loid));
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(testing::ReadI64(*raw), 3);
}

// --- Magistrates as security boundaries --------------------------------------

TEST_F(SecurityIntegrationTest, GuardedMagistrateRefusesOutsiders) {
  // Build an extra jurisdiction whose magistrate only serves callers of a
  // trusted class ("the DOE can write its own Magistrate", Section 2.1.3).
  // Constructed directly — resource providers start their own magistrates
  // (Section 4.2.1).
  auto jur = runtime_->topology().add_jurisdiction("secure");
  auto host = runtime_->topology().add_host("secure-1", {jur}, 8.0);

  MagistrateConfig config;
  config.jurisdiction = jur;
  config.policy = std::make_shared<security::TrustedClassPolicy>(
      std::vector<std::uint64_t>{42}, /*allow_system=*/false);
  auto impl = std::make_unique<MagistrateImpl>(config);
  impl->add_vault("secure-disk");

  std::vector<std::unique_ptr<ObjectImpl>> impls;
  MagistrateImpl* mag = impl.get();
  impls.push_back(std::move(impl));
  ActiveObjectConfig shell_config;
  shell_config.label = "magistrate";
  ActiveObject shell(*runtime_, host, Loid{kLegionMagistrateClassId, 999},
                     std::move(impls), system_->handles_for(host),
                     shell_config);
  ASSERT_TRUE(shell.restore(Buffer{}).ok());
  (void)mag;

  // Anonymous request: refused before the method even runs.
  wire::ActivateRequest req{Loid{77, 1}, Loid{}};
  auto denied = client_->resolver().call_binding(
      shell.binding(), methods::kActivate, req.to_buffer(), client_->env(),
      10'000'000);
  EXPECT_EQ(denied.status().code(), StatusCode::kPermissionDenied);

  // Trusted identity: passes MayI (then fails NotFound, which proves the
  // request was actually serviced).
  auto trusted = system_->make_client(uva1_, "trusted");
  trusted->set_identity(Loid{42, 1});
  auto served = trusted->resolver().call_binding(
      shell.binding(), methods::kActivate, req.to_buffer(), trusted->env(),
      10'000'000);
  EXPECT_EQ(served.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace legion::core
