#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::SimSystemFixture;

class BootstrapTest : public SimSystemFixture {};

TEST_F(BootstrapTest, CoreClassesAreUpAndRegistered) {
  // Section 4.2.1: "The Abstract class objects are started exactly once".
  ASSERT_NE(system_->legion_class_impl(), nullptr);
  for (std::uint64_t id :
       {kLegionObjectClassId, kLegionHostClassId, kLegionMagistrateClassId,
        kLegionBindingAgentClassId, kLegionContextClassId}) {
    EXPECT_NE(system_->core_class_impl(id), nullptr) << "class id " << id;
    EXPECT_NE(system_->shell_of(Loid::ForClass(id)), nullptr);
  }
}

TEST_F(BootstrapTest, OneMagistratePerJurisdiction) {
  EXPECT_TRUE(system_->magistrate_of(uva_).valid());
  EXPECT_TRUE(system_->magistrate_of(doe_).valid());
  EXPECT_EQ(system_->magistrates().size(), 2u);
  EXPECT_EQ(system_->magistrate_impl(uva_)->jurisdiction(), uva_);
  EXPECT_EQ(system_->magistrate_impl(uva_)->hosts().size(), 2u);
}

TEST_F(BootstrapTest, HostObjectsOnEveryHost) {
  for (HostId h : {uva1_, uva2_, doe1_, doe2_}) {
    EXPECT_TRUE(system_->host_object_of(h).valid());
    EXPECT_NE(system_->host_impl(h), nullptr);
  }
}

TEST_F(BootstrapTest, ComponentsRegisteredWithTheirClasses) {
  // Section 4.2.1: components "contact their class" — so each core class's
  // logical table has a row per component, making them locatable.
  EXPECT_EQ(system_->core_class_impl(kLegionHostClassId)->table().size(), 4u);
  EXPECT_EQ(system_->core_class_impl(kLegionMagistrateClassId)->table().size(),
            2u);
  EXPECT_EQ(
      system_->core_class_impl(kLegionBindingAgentClassId)->table().size(),
      2u);  // one binding agent per jurisdiction by default
}

TEST_F(BootstrapTest, PingEveryCoreComponent) {
  std::vector<Loid> everyone = {LegionClassLoid(), LegionObjectLoid(),
                                LegionHostLoid(), LegionMagistrateLoid(),
                                LegionBindingAgentLoid()};
  for (HostId h : {uva1_, uva2_, doe1_, doe2_}) {
    everyone.push_back(system_->host_object_of(h));
  }
  for (JurisdictionId j : {uva_, doe_}) {
    everyone.push_back(system_->magistrate_of(j));
  }
  for (const Loid& loid : everyone) {
    auto result = client_->ref(loid).call(methods::kPing, Buffer{});
    EXPECT_TRUE(result.ok())
        << loid.to_string() << ": " << result.status().to_string();
  }
}

TEST_F(BootstrapTest, IamReturnsSelfLoid) {
  const Loid magistrate = system_->magistrate_of(uva_);
  auto raw = client_->ref(magistrate).call(methods::kIam, Buffer{});
  ASSERT_TRUE(raw.ok());
  Reader r(*raw);
  EXPECT_EQ(Loid::Deserialize(r), magistrate);
}

TEST_F(BootstrapTest, GetInterfaceOnClassIncludesClassMandatory) {
  auto raw = client_->ref(LegionObjectLoid()).call(methods::kGetInterface,
                                                   Buffer{});
  ASSERT_TRUE(raw.ok());
  Reader r(*raw);
  const InterfaceDescription iface = InterfaceDescription::Deserialize(r);
  EXPECT_TRUE(iface.has_method(methods::kCreate));
  EXPECT_TRUE(iface.has_method(methods::kDerive));
  EXPECT_TRUE(iface.has_method(methods::kMayI));
}

TEST_F(BootstrapTest, DoubleBootstrapRejected) {
  EXPECT_EQ(system_->bootstrap().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BootstrapTest, BootstrapFailsWithoutHosts) {
  rt::SimRuntime empty_runtime(1);
  LegionSystem empty_system(empty_runtime, SystemConfig{});
  EXPECT_EQ(empty_system.bootstrap().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BootstrapTest, LegionObjectIsAbstract) {
  // Section 2.1.2: "no direct instances of an Abstract class can exist."
  auto reply = client_->create(LegionObjectLoid());
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(BootstrapTest, ClientResolvesComponentsThroughBindingAgent) {
  // Drop the client's warm cache: resolution must go BA -> class -> row.
  client_->resolver().cache().clear();
  const Loid host_object = system_->host_object_of(doe2_);
  auto binding = client_->get_binding(host_object);
  ASSERT_TRUE(binding.ok()) << binding.status().to_string();
  EXPECT_EQ(binding->loid, host_object);
  EXPECT_GE(client_->resolver().stats().binding_agent_consults, 1u);
}

TEST_F(BootstrapTest, UnknownLoidFailsToResolve) {
  auto binding = client_->get_binding(Loid{999999, 1});
  EXPECT_FALSE(binding.ok());
  EXPECT_EQ(binding.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace legion::core
