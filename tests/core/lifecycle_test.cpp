// End-to-end object lifecycle: Create -> invoke -> Deactivate ->
// reactivation-on-reference -> Copy/Move -> Delete (paper Sections 3.1,
// 3.8, 4.1.2, 4.1.4).
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::CounterImpl;
using testing::LoidArgs;
using testing::ReadI64;
using testing::SimSystemFixture;

class LifecycleTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
  }

  Loid CreateCounter(std::int64_t start, std::vector<Loid> magistrates = {}) {
    auto reply = client_->create(counter_class_, CounterInit(start),
                                 std::move(magistrates));
    EXPECT_TRUE(reply.ok()) << reply.status().to_string();
    return reply.ok() ? reply->loid : Loid{};
  }

  std::int64_t Get(const Loid& counter) {
    auto raw = client_->ref(counter).call("Get", Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
    return raw.ok() ? ReadI64(*raw) : -1;
  }

  Loid counter_class_;
};

TEST_F(LifecycleTest, CreateAssignsSequencedLoids) {
  const Loid a = CreateCounter(0);
  const Loid b = CreateCounter(0);
  // Section 3.7: the class sets the Class Identifier to its own and uses
  // the class-specific field "most likely as a sequence number".
  EXPECT_EQ(a.class_id(), counter_class_.class_id());
  EXPECT_EQ(b.class_id(), counter_class_.class_id());
  EXPECT_NE(a.class_specific(), b.class_specific());
  EXPECT_FALSE(a.names_class_object());
  EXPECT_EQ(a.public_key().size(), 8u);  // configured P/8
}

TEST_F(LifecycleTest, InvokeWithStateAndArgs) {
  const Loid counter = CreateCounter(10);
  Buffer args;
  Writer w(args);
  w.i64(5);
  auto raw = client_->ref(counter).call("Increment", std::move(args));
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 15);
  EXPECT_EQ(Get(counter), 15);
}

TEST_F(LifecycleTest, ApplicationErrorsPropagateUnchanged) {
  const Loid counter = CreateCounter(0);
  auto raw = client_->ref(counter).call("Boom", Buffer{});
  EXPECT_EQ(raw.status().code(), StatusCode::kInternal);
  EXPECT_EQ(raw.status().message(), "counter exploded on request");
}

TEST_F(LifecycleTest, UnknownMethodIsUnimplemented) {
  const Loid counter = CreateCounter(0);
  EXPECT_EQ(client_->ref(counter).call("NoSuch", Buffer{}).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(LifecycleTest, NestedObjectToObjectInvocation) {
  const Loid a = CreateCounter(40);
  const Loid b = CreateCounter(2);
  auto raw = client_->ref(a).call("Absorb", LoidArgs(b));
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 42);
}

TEST_F(LifecycleTest, DeactivateThenReferenceReactivates) {
  const Loid counter = CreateCounter(7);
  ASSERT_EQ(Get(counter), 7);

  // Deactivate through the magistrate (Section 3.8).
  const Loid magistrate = system_->magistrate_of(uva_);
  MagistrateImpl* mag = system_->magistrate_impl(uva_);
  const Loid other = system_->magistrate_of(doe_);
  MagistrateImpl* owner = mag->manages(counter)
                              ? mag
                              : system_->magistrate_impl(doe_);
  const Loid owner_loid = mag->manages(counter) ? magistrate : other;

  // Note: class objects also live under magistrates, so counts are deltas.
  const std::size_t active_before = owner->active_count();
  wire::LoidRequest req{counter};
  ASSERT_TRUE(client_->ref(owner_loid)
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());
  EXPECT_EQ(owner->active_count(), active_before - 1);
  EXPECT_EQ(owner->inert_count(), 1u);

  // Section 4.1.2: "referring to the LOID of an Inert object can cause the
  // object to be activated" — and state survives (Section 3.1.1).
  EXPECT_EQ(Get(counter), 7);
  EXPECT_EQ(owner->active_count(), active_before);
  EXPECT_EQ(owner->inert_count(), 0u);
  EXPECT_GE(client_->resolver().stats().stale_retries, 1u);
}

TEST_F(LifecycleTest, ColdClientFindsInertObjectThroughFullPath) {
  const Loid counter = CreateCounter(3);
  MagistrateImpl* owner = system_->magistrate_impl(uva_)->manages(counter)
                              ? system_->magistrate_impl(uva_)
                              : system_->magistrate_impl(doe_);
  const Loid owner_loid = owner == system_->magistrate_impl(uva_)
                              ? system_->magistrate_of(uva_)
                              : system_->magistrate_of(doe_);
  wire::LoidRequest req{counter};
  ASSERT_TRUE(client_->ref(owner_loid)
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());

  // A brand-new client with a cold cache: full Figure 17 path.
  auto cold = system_->make_client(doe2_, "cold-client");
  auto raw = cold->ref(counter).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 3);
}

TEST_F(LifecycleTest, DeleteRemovesActiveAndInert) {
  const Loid counter = CreateCounter(1);
  ASSERT_TRUE(client_->delete_object(counter_class_, counter).ok());
  // Section 3.8: "future attempts to bind the LOID to an Object Address
  // will be unsuccessful."
  client_->resolver().cache().clear();
  auto result = client_->ref(counter).call("Get", Buffer{});
  EXPECT_FALSE(result.ok());
  // Deleting again: the class no longer knows the LOID.
  EXPECT_EQ(client_->delete_object(counter_class_, counter).code(),
            StatusCode::kNotFound);
}

TEST_F(LifecycleTest, DeleteOfInertObjectScrubsVault) {
  // Active objects keep a recovery checkpoint in the vault (the class
  // object itself has one), so the vault is not empty in general; the
  // invariant is that one full create/deactivate/delete cycle leaves no
  // net residue — neither the OPR nor the checkpoint survives the delete.
  const auto vault_files = [](MagistrateImpl* m) {
    std::size_t n = 0;
    for (std::uint32_t d = 1;; ++d) {
      const persist::Vault* v = m->vaults().vault(DiskId{d});
      if (v == nullptr) break;
      n += v->count();
    }
    return n;
  };
  MagistrateImpl* mags[] = {system_->magistrate_impl(uva_),
                            system_->magistrate_impl(doe_)};
  const std::size_t before = vault_files(mags[0]) + vault_files(mags[1]);

  const Loid counter = CreateCounter(5);
  MagistrateImpl* owner = system_->magistrate_impl(uva_)->manages(counter)
                              ? system_->magistrate_impl(uva_)
                              : system_->magistrate_impl(doe_);
  const Loid owner_loid = owner->jurisdiction() == uva_
                              ? system_->magistrate_of(uva_)
                              : system_->magistrate_of(doe_);
  EXPECT_EQ(vault_files(mags[0]) + vault_files(mags[1]), before + 1);
  wire::LoidRequest req{counter};
  ASSERT_TRUE(client_->ref(owner_loid)
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());
  ASSERT_EQ(owner->inert_count(), 1u);
  ASSERT_TRUE(client_->delete_object(counter_class_, counter).ok());
  EXPECT_EQ(owner->inert_count(), 0u);
  EXPECT_EQ(owner->checkpoint_of(counter), nullptr);
  EXPECT_EQ(vault_files(mags[0]) + vault_files(mags[1]), before);
}

TEST_F(LifecycleTest, StatePersistsAcrossManyCycles) {
  const Loid counter = CreateCounter(0);
  MagistrateImpl* owner = system_->magistrate_impl(uva_)->manages(counter)
                              ? system_->magistrate_impl(uva_)
                              : system_->magistrate_impl(doe_);
  const Loid owner_loid = owner->jurisdiction() == uva_
                              ? system_->magistrate_of(uva_)
                              : system_->magistrate_of(doe_);
  for (int cycle = 1; cycle <= 5; ++cycle) {
    ASSERT_TRUE(client_->ref(counter).call("Increment", Buffer{}).ok());
    wire::LoidRequest req{counter};
    ASSERT_TRUE(client_->ref(owner_loid)
                    .call(methods::kDeactivate, req.to_buffer())
                    .ok());
    ASSERT_EQ(Get(counter), cycle);
  }
}

TEST_F(LifecycleTest, CandidateMagistratesAreHonoured) {
  const Loid doe_magistrate = system_->magistrate_of(doe_);
  const Loid counter = CreateCounter(1, {doe_magistrate});
  EXPECT_TRUE(system_->magistrate_impl(doe_)->manages(counter));
  EXPECT_FALSE(system_->magistrate_impl(uva_)->manages(counter));
}

TEST_F(LifecycleTest, SuggestedHostIsUsed) {
  auto reply = client_->create(counter_class_, CounterInit(0),
                               {system_->magistrate_of(uva_)},
                               system_->host_object_of(uva2_));
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(system_->host_impl(uva2_)->active_objects(), 1u);
}

TEST_F(LifecycleTest, SuggestedHostOutsideJurisdictionRejected) {
  auto reply = client_->create(counter_class_, CounterInit(0),
                               {system_->magistrate_of(uva_)},
                               system_->host_object_of(doe1_));
  EXPECT_EQ(reply.status().code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace legion::core
