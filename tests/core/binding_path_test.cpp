// The Section 4.1 binding path: local cache -> Binding Agent -> class ->
// magistrate, with each layer absorbing traffic, plus the Binding-Agent
// tree of Section 5.2.2.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::SimSystemFixture;

class BindingPathTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    auto reply = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)});
    ASSERT_TRUE(reply.ok());
    counter_ = reply->loid;
  }

  Loid counter_class_;
  Loid counter_;
};

TEST_F(BindingPathTest, LocalCacheAbsorbsRepeatInvocations) {
  client_->resolver().cache().clear();
  client_->resolver().reset_stats();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());
  }
  // One BA consult for the cold miss; nine local hits.
  EXPECT_EQ(client_->resolver().stats().binding_agent_consults, 1u);
  EXPECT_EQ(client_->resolver().cache().stats().hits, 9u);
}

TEST_F(BindingPathTest, BindingAgentCacheAbsorbsAcrossClients) {
  // Client A populates the BA's cache; client B's miss is served from it
  // without a class consult (Section 5.2.1's locality argument).
  client_->resolver().cache().clear();
  ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());

  BindingAgentImpl* uva_agent = system_->binding_agent_impl(0);
  const auto class_consults_before = uva_agent->agent_stats().class_consults;

  auto other = system_->make_client(uva2_, "other");  // same jurisdiction
  ASSERT_TRUE(other->ref(counter_).call("Get", Buffer{}).ok());
  EXPECT_EQ(uva_agent->agent_stats().class_consults, class_consults_before);
}

TEST_F(BindingPathTest, ColdBindingAgentConsultsClass) {
  BindingAgentImpl* doe_agent = system_->binding_agent_impl(1);
  const auto before = doe_agent->agent_stats().class_consults;
  auto doe_client = system_->make_client(doe1_, "doe-client");
  ASSERT_TRUE(doe_client->ref(counter_).call("Get", Buffer{}).ok());
  EXPECT_GT(doe_agent->agent_stats().class_consults, before);
}

TEST_F(BindingPathTest, ExplicitAddBindingPropagation) {
  // Section 3.6 AddBinding: "explicitly propagate binding information for
  // performance purposes."
  auto binding = client_->get_binding(counter_);
  ASSERT_TRUE(binding.ok());

  BindingAgentImpl* doe_agent = system_->binding_agent_impl(1);
  auto doe_client = system_->make_client(doe1_, "doe-client");
  wire::AddBindingRequest add{*binding};
  ASSERT_TRUE(doe_client->ref(system_->binding_agents()[1])
                  .call(methods::kAddBinding, add.to_buffer())
                  .ok());

  const auto class_consults_before = doe_agent->agent_stats().class_consults;
  doe_client->resolver().cache().clear();
  ASSERT_TRUE(doe_client->ref(counter_).call("Get", Buffer{}).ok());
  EXPECT_EQ(doe_agent->agent_stats().class_consults, class_consults_before);
}

TEST_F(BindingPathTest, InvalidateBindingByLoidAndExact) {
  // Warm the BA.
  client_->resolver().cache().clear();
  ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());
  BindingAgentImpl* agent = system_->binding_agent_impl(0);
  const Loid agent_loid = system_->binding_agents()[0];

  wire::InvalidateBindingRequest inv;
  inv.mode = wire::GetBindingMode::kByLoid;
  inv.loid = counter_;
  ASSERT_TRUE(client_->ref(agent_loid)
                  .call(methods::kInvalidateBinding, inv.to_buffer())
                  .ok());
  // Next miss from a cold client forces a class consult again.
  const auto before = agent->agent_stats().class_consults;
  auto cold = system_->make_client(uva2_, "cold");
  ASSERT_TRUE(cold->ref(counter_).call("Get", Buffer{}).ok());
  EXPECT_GT(agent->agent_stats().class_consults, before);
}

TEST_F(BindingPathTest, RefreshReturnsDifferentBindingAfterMigration) {
  auto stale = client_->get_binding(counter_);
  ASSERT_TRUE(stale.ok());

  wire::TransferRequest move{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kMove, move.to_buffer())
                  .ok());

  // Section 3.6: GetBinding(binding) must return a *different* binding.
  auto fresh = client_->resolver().refresh(*stale, 10'000'000);
  ASSERT_TRUE(fresh.ok()) << fresh.status().to_string();
  EXPECT_EQ(fresh->loid, counter_);
  EXPECT_FALSE(fresh->address == stale->address);
}

TEST_F(BindingPathTest, ClassGetBindingServesDirectCallers) {
  // "If all else fails, the Binding Agent can consult the class of the
  //  object which must be able to return a binding if one exists."
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kByLoid;
  req.loid = counter_;
  auto raw = client_->ref(counter_class_).call(methods::kGetBinding,
                                               req.to_buffer());
  ASSERT_TRUE(raw.ok());
  auto reply = wire::BindingReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->binding.loid, counter_);
  EXPECT_TRUE(reply->binding.address.valid());
}

TEST_F(BindingPathTest, ClassRefusesBindingForForeignLoid) {
  wire::GetBindingRequest req;
  req.mode = wire::GetBindingMode::kByLoid;
  req.loid = Loid{counter_class_.class_id(), 999999};
  EXPECT_EQ(client_->ref(counter_class_)
                .call(methods::kGetBinding, req.to_buffer())
                .status()
                .code(),
            StatusCode::kNotFound);
}

// --- Binding-Agent tree (Section 5.2.2) -------------------------------------

class BindingTreeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::SimRuntime>(99);
    for (int j = 0; j < 4; ++j) {
      auto jur =
          runtime_->topology().add_jurisdiction("j" + std::to_string(j));
      jurisdictions_.push_back(jur);
      hosts_.push_back(runtime_->topology().add_host(
          "h" + std::to_string(j), {jur}, 16.0));
    }
    SystemConfig config;
    config.ba_tree_fanout = 2;  // binary combining tree over 4 agents
    system_ = std::make_unique<LegionSystem>(*runtime_, config);
    ASSERT_TRUE(system_
                    ->registry()
                    .add(std::string(testing::CounterImpl::kName),
                         [] { return std::make_unique<testing::CounterImpl>(); })
                    .ok());
    ASSERT_TRUE(system_->bootstrap().ok());
  }

  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<LegionSystem> system_;
  std::vector<JurisdictionId> jurisdictions_;
  std::vector<HostId> hosts_;
};

TEST_F(BindingTreeTest, LeafAgentsConsultParentsNotLegionClass) {
  // Derive a user class from a client in jurisdiction 0 (its agent is the
  // tree root), then resolve it from jurisdiction 3 (a leaf agent).
  auto creator = system_->make_client(hosts_[0], "creator");
  wire::DeriveRequest req;
  req.name = "Counter";
  req.instance_impl = std::string(testing::CounterImpl::kName);
  auto counter_class = creator->derive(LegionObjectLoid(), req);
  ASSERT_TRUE(counter_class.ok());
  auto instance = creator->create(counter_class->loid, testing::CounterInit(0));
  ASSERT_TRUE(instance.ok());

  BindingAgentImpl* leaf = system_->binding_agent_impl(3);
  BindingAgentImpl* root = system_->binding_agent_impl(0);
  const auto root_lc_before = root->agent_stats().legion_class_consults;

  auto far_client = system_->make_client(hosts_[3], "far");
  ASSERT_TRUE(far_client->ref(instance->loid).call("Get", Buffer{}).ok());

  // The leaf climbed the tree (parent consult) instead of going to
  // LegionClass itself; only the root talks to LegionClass.
  EXPECT_GT(leaf->agent_stats().parent_consults, 0u);
  EXPECT_EQ(leaf->agent_stats().legion_class_consults, 0u);
  EXPECT_GT(root->agent_stats().legion_class_consults, root_lc_before);

  // A second cold client behind the same leaf is absorbed by the leaf's
  // cache — the combining-tree effect.
  const auto parent_before = leaf->agent_stats().parent_consults;
  auto another = system_->make_client(hosts_[3], "far2");
  ASSERT_TRUE(another->ref(instance->loid).call("Get", Buffer{}).ok());
  EXPECT_EQ(leaf->agent_stats().parent_consults, parent_before);
}

}  // namespace
}  // namespace legion::core
