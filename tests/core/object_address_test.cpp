#include "core/object_address.hpp"

#include <gtest/gtest.h>

#include <set>

namespace legion::core {
namespace {

ObjectAddress MakeAddress(std::size_t n, AddressSemantic semantic,
                          std::uint32_t k = 1) {
  std::vector<ObjectAddressElement> elements;
  for (std::size_t i = 0; i < n; ++i) {
    elements.push_back(ObjectAddressElement::Sim(EndpointId{i + 1}));
  }
  return ObjectAddress{std::move(elements), semantic, k};
}

TEST(ObjectAddressTest, DefaultIsInvalid) {
  ObjectAddress a;
  EXPECT_FALSE(a.valid());
  Rng rng(1);
  EXPECT_TRUE(a.select_targets(rng).empty());
}

TEST(ObjectAddressTest, SingleElementConstructor) {
  ObjectAddress a{ObjectAddressElement::Sim(EndpointId{9})};
  EXPECT_TRUE(a.valid());
  EXPECT_EQ(a.elements().size(), 1u);
  EXPECT_EQ(a.semantic(), AddressSemantic::kFirst);
}

TEST(ObjectAddressTest, FirstSemanticAlwaysPicksPrimary) {
  ObjectAddress a = MakeAddress(4, AddressSemantic::kFirst);
  Rng rng(7);
  for (int i = 0; i < 50; ++i) {
    const auto targets = a.select_targets(rng);
    ASSERT_EQ(targets.size(), 1u);
    EXPECT_EQ(targets[0], 0u);
  }
}

TEST(ObjectAddressTest, AllSemanticSelectsEveryElement) {
  // Section 4.3: "the semantic could specify that all addresses should be
  // sent to".
  ObjectAddress a = MakeAddress(5, AddressSemantic::kAll);
  Rng rng(7);
  const auto targets = a.select_targets(rng);
  EXPECT_EQ(targets, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ObjectAddressTest, RandomOneCoversAllElements) {
  ObjectAddress a = MakeAddress(4, AddressSemantic::kRandomOne);
  Rng rng(7);
  std::set<std::size_t> seen;
  for (int i = 0; i < 200; ++i) {
    const auto targets = a.select_targets(rng);
    ASSERT_EQ(targets.size(), 1u);
    seen.insert(targets[0]);
  }
  EXPECT_EQ(seen.size(), 4u);
}

TEST(ObjectAddressTest, KOfNSelectsExactlyKDistinct) {
  ObjectAddress a = MakeAddress(6, AddressSemantic::kKOfN, 3);
  Rng rng(7);
  for (int i = 0; i < 100; ++i) {
    const auto targets = a.select_targets(rng);
    EXPECT_EQ(targets.size(), 3u);
    EXPECT_EQ(std::set<std::size_t>(targets.begin(), targets.end()).size(), 3u);
  }
}

TEST(ObjectAddressTest, KOfNClampsToN) {
  ObjectAddress a = MakeAddress(2, AddressSemantic::kKOfN, 9);
  Rng rng(7);
  EXPECT_EQ(a.select_targets(rng).size(), 2u);
}

TEST(ObjectAddressTest, KOfNWithZeroKStillSendsSomewhere) {
  ObjectAddress a = MakeAddress(3, AddressSemantic::kKOfN, 0);
  Rng rng(7);
  EXPECT_EQ(a.select_targets(rng).size(), 1u);
}

TEST(ObjectAddressTest, SerializeRoundTrips) {
  ObjectAddress in = MakeAddress(3, AddressSemantic::kKOfN, 2);
  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  const ObjectAddress out = ObjectAddress::Deserialize(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(out, in);
}

TEST(ObjectAddressTest, ToStringNamesSemantics) {
  EXPECT_NE(MakeAddress(1, AddressSemantic::kAll).to_string().find("all"),
            std::string::npos);
  EXPECT_NE(
      MakeAddress(2, AddressSemantic::kKOfN, 2).to_string().find("k-of-n:2"),
      std::string::npos);
}

class SemanticSweep : public ::testing::TestWithParam<AddressSemantic> {};

TEST_P(SemanticSweep, SelectionIndicesAreInRange) {
  ObjectAddress a = MakeAddress(5, GetParam(), 2);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    for (std::size_t index : a.select_targets(rng)) {
      EXPECT_LT(index, 5u);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllSemantics, SemanticSweep,
                         ::testing::Values(AddressSemantic::kAll,
                                           AddressSemantic::kRandomOne,
                                           AddressSemantic::kKOfN,
                                           AddressSemantic::kFirst));

}  // namespace
}  // namespace legion::core
