// System-level object replication, paper Section 4.3: one LOID, several
// processes, multicast semantics encoded in the Object Address.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class ReplicationTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
  }

  Loid counter_class_;
};

TEST_F(ReplicationTest, ReplicatedAddressCarriesAllElements) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 2,
                                          AddressSemantic::kAll);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  EXPECT_EQ(reply->binding.address.elements().size(), 2u);
  EXPECT_EQ(reply->binding.address.semantic(), AddressSemantic::kAll);
}

TEST_F(ReplicationTest, AllSemanticUpdatesEveryReplica) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 2,
                                          AddressSemantic::kAll);
  ASSERT_TRUE(reply.ok());
  const Loid object = reply->loid;

  // Five increments through the kAll address reach both replicas, so any
  // single replica read (kFirst on a single element) observes five.
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client_->ref(object).call("Increment", Buffer{}).ok());
  }
  for (const auto& element : reply->binding.address.elements()) {
    Binding single{object, ObjectAddress{element}, kSimTimeNever};
    auto raw = client_->resolver().call_binding(single, "Get", Buffer{},
                                                rt::EnvTriple::System(),
                                                10'000'000);
    ASSERT_TRUE(raw.ok());
    EXPECT_EQ(ReadI64(*raw), 5);
  }
}

TEST_F(ReplicationTest, RandomOneSpreadsLoadAcrossReplicas) {
  // Each jurisdiction has two hosts, so two replicas fit anywhere.
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 2,
                                          AddressSemantic::kRandomOne);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  const Loid object = reply->loid;

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(client_->ref(object).call("Increment", Buffer{}).ok());
  }
  // Each replica saw some but not all of the increments.
  std::int64_t total = 0;
  for (const auto& element : reply->binding.address.elements()) {
    Binding single{object, ObjectAddress{element}, kSimTimeNever};
    auto raw = client_->resolver().call_binding(single, "Get", Buffer{},
                                                rt::EnvTriple::System(),
                                                10'000'000);
    ASSERT_TRUE(raw.ok());
    const std::int64_t count = ReadI64(*raw);
    EXPECT_GT(count, 0);
    EXPECT_LT(count, 100);
    total += count;
  }
  EXPECT_EQ(total, 100);
}

TEST_F(ReplicationTest, ReplicasLandOnDistinctHosts) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 2,
                                          AddressSemantic::kRandomOne, 1,
                                          {system_->magistrate_of(uva_)});
  ASSERT_TRUE(reply.ok());
  // uva has two hosts; both now run one replica (plus possibly the class).
  EXPECT_GE(system_->host_impl(uva1_)->active_objects(), 1u);
  EXPECT_GE(system_->host_impl(uva2_)->active_objects(), 1u);
}

TEST_F(ReplicationTest, TooManyReplicasForJurisdictionRejected) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 3,
                                          AddressSemantic::kAll, 1,
                                          {system_->magistrate_of(uva_)});
  EXPECT_EQ(reply.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(ReplicationTest, ZeroReplicasRejected) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 0,
                                          AddressSemantic::kAll);
  EXPECT_EQ(reply.status().code(), StatusCode::kInvalidArgument);
}

TEST_F(ReplicationTest, DeactivateReapsAllReplicasAndStateSurvives) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(3), 2,
                                          AddressSemantic::kAll, 1,
                                          {system_->magistrate_of(uva_)});
  ASSERT_TRUE(reply.ok());
  const Loid object = reply->loid;
  ASSERT_TRUE(client_->ref(object).call("Increment", Buffer{}).ok());

  MagistrateImpl* owner = system_->magistrate_impl(uva_);
  const std::size_t active_before = owner->active_count();
  wire::LoidRequest req{object};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kDeactivate, req.to_buffer())
                  .ok());
  EXPECT_EQ(owner->active_count(), active_before - 1);

  // Reactivation on reference restores the first replica's state (a single
  // process now — re-replication is an application decision).
  auto raw = client_->ref(object).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 4);
}

TEST_F(ReplicationTest, DeleteReapsAllReplicas) {
  auto reply = client_->create_replicated(counter_class_, CounterInit(0), 2,
                                          AddressSemantic::kAll, 1,
                                          {system_->magistrate_of(uva_)});
  ASSERT_TRUE(reply.ok());
  const std::size_t uva1_before = system_->host_impl(uva1_)->active_objects();
  const std::size_t uva2_before = system_->host_impl(uva2_)->active_objects();
  ASSERT_TRUE(client_->delete_object(counter_class_, reply->loid).ok());
  EXPECT_EQ(system_->host_impl(uva1_)->active_objects() +
                system_->host_impl(uva2_)->active_objects(),
            uva1_before + uva2_before - 2);
}

}  // namespace
}  // namespace legion::core
