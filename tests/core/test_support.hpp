// Shared fixtures for core-model tests: sample user implementations and a
// bootstrapped two-jurisdiction simulated system.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/sim_runtime.hpp"

namespace legion::core::testing {

// A stateful counter: the canonical "user object" for lifecycle tests. Its
// value must survive deactivation, migration, and copies.
class CounterImpl final : public ObjectImpl {
 public:
  static constexpr std::string_view kName = "test.counter";

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kName);
  }

  void RegisterMethods(MethodTable& table) override {
    table.add("Increment", [this](ObjectContext&, Reader& args) -> Result<Buffer> {
      const std::int64_t delta = args.exhausted() ? 1 : args.i64();
      value_ += delta;
      Buffer out;
      Writer w(out);
      w.i64(value_);
      return out;
    });
    table.add("Get", [this](ObjectContext&, Reader&) -> Result<Buffer> {
      Buffer out;
      Writer w(out);
      w.i64(value_);
      return out;
    });
    table.add("Boom", [](ObjectContext&, Reader&) -> Result<Buffer> {
      return InternalError("counter exploded on request");
    });
    // Nested invocation: ask another counter for its value and add it.
    table.add("Absorb", [this](ObjectContext& ctx, Reader& args) -> Result<Buffer> {
      const Loid peer = Loid::Deserialize(args);
      if (!args.ok()) return InvalidArgumentError("bad Absorb args");
      LEGION_ASSIGN_OR_RETURN(Buffer raw, ctx.ref(peer).call("Get", Buffer{}));
      Reader r(raw);
      value_ += r.i64();
      Buffer out;
      Writer w(out);
      w.i64(value_);
      return out;
    });
  }

  void SaveState(Writer& w) const override { w.i64(value_); }
  Status RestoreState(Reader& r) override {
    if (!r.exhausted()) value_ = r.i64();
    return r.ok() ? OkStatus() : InvalidArgumentError("bad counter state");
  }

  [[nodiscard]] InterfaceDescription interface() const override {
    InterfaceDescription d("Counter");
    d.add_method(MethodSignature{"int", "Increment", {{"int", "delta"}}});
    d.add_method(MethodSignature{"int", "Get", {}});
    return d;
  }

 private:
  std::int64_t value_ = 0;
};

// A trivial mixin used to exercise run-time multiple inheritance.
class GreeterImpl final : public ObjectImpl {
 public:
  static constexpr std::string_view kName = "test.greeter";

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kName);
  }
  void RegisterMethods(MethodTable& table) override {
    table.add("Greet", [](ObjectContext& ctx, Reader&) -> Result<Buffer> {
      return Buffer::FromString("hello from " + ctx.shell.self().to_string());
    });
    // Also provides Get, to test override order under composition.
    table.add("Get", [](ObjectContext&, Reader&) -> Result<Buffer> {
      Buffer out;
      Writer w(out);
      w.i64(-777);
      return out;
    });
  }
  [[nodiscard]] InterfaceDescription interface() const override {
    InterfaceDescription d("Greeter");
    d.add_method(MethodSignature{"string", "Greet", {}});
    return d;
  }
};

inline Buffer CounterInit(std::int64_t start) {
  Buffer b;
  Writer w(b);
  w.i64(start);
  return b;
}

inline std::int64_t ReadI64(const Buffer& b) {
  Reader r(b);
  return r.i64();
}

inline Buffer LoidArgs(const Loid& loid) {
  Buffer b;
  Writer w(b);
  loid.Serialize(w);
  return b;
}

// Two jurisdictions ("uva": 2 hosts, "doe": 2 hosts) on a deterministic
// SimRuntime, bootstrapped, with the test implementations registered.
class SimSystemFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::SimRuntime>(1234);
    uva_ = runtime_->topology().add_jurisdiction("uva");
    doe_ = runtime_->topology().add_jurisdiction("doe");
    uva1_ = runtime_->topology().add_host("uva-1", {uva_}, 8.0);
    uva2_ = runtime_->topology().add_host("uva-2", {uva_}, 8.0);
    doe1_ = runtime_->topology().add_host("doe-1", {doe_}, 8.0);
    doe2_ = runtime_->topology().add_host("doe-2", {doe_}, 8.0);

    system_ = std::make_unique<LegionSystem>(*runtime_, MakeConfig());
    ASSERT_TRUE(RegisterTestImpls(system_->registry()).ok());
    const Status st = system_->bootstrap();
    ASSERT_TRUE(st.ok()) << st.to_string();
    client_ = system_->make_client(uva1_);
  }

  void TearDown() override {
    client_.reset();
    system_.reset();
    runtime_.reset();
  }

  virtual SystemConfig MakeConfig() { return SystemConfig{}; }

  static Status RegisterTestImpls(ImplementationRegistry& registry) {
    LEGION_RETURN_IF_ERROR(registry.add(std::string(CounterImpl::kName), [] {
      return std::make_unique<CounterImpl>();
    }));
    return registry.add(std::string(GreeterImpl::kName),
                        [] { return std::make_unique<GreeterImpl>(); });
  }

  // Derives the standard Counter class from LegionObject, declaring the
  // interface the way a Legion-aware compiler would from IDL text.
  Loid DeriveCounterClass(const std::string& name = "Counter",
                          std::uint8_t flags = 0) {
    wire::DeriveRequest req;
    req.name = name;
    req.instance_impl = std::string(CounterImpl::kName);
    req.extra_interface = CounterImpl{}.interface();
    req.flags = flags;
    auto reply = client_->derive(LegionObjectLoid(), req);
    EXPECT_TRUE(reply.ok()) << reply.status().to_string();
    return reply.ok() ? reply->loid : Loid{};
  }

  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<LegionSystem> system_;
  std::unique_ptr<Client> client_;
  JurisdictionId uva_, doe_;
  HostId uva1_, uva2_, doe1_, doe2_;
};

}  // namespace legion::core::testing
