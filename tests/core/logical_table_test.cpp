#include "core/logical_table.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "core/class_object.hpp"

namespace legion::core {
namespace {

TableRow MakeRow(std::uint64_t n, RowKind kind = RowKind::kInstance) {
  TableRow row;
  row.loid = Loid{9, n};
  row.kind = kind;
  row.current_magistrates = {Loid{3, 1}};
  row.checkpoint_path = "vault/" + std::to_string(n);
  return row;
}

TEST(LogicalTableTest, UpsertFindEraseRoundTrip) {
  LogicalTable t;
  t.upsert(MakeRow(1));
  t.upsert(MakeRow(2));
  EXPECT_EQ(t.size(), 2u);
  ASSERT_NE(t.find(Loid{9, 1}), nullptr);
  EXPECT_EQ(t.find(Loid{9, 1})->checkpoint_path, "vault/1");
  EXPECT_EQ(t.find(Loid{9, 3}), nullptr);

  EXPECT_TRUE(t.erase(Loid{9, 1}));
  EXPECT_FALSE(t.erase(Loid{9, 1}));
  EXPECT_EQ(t.find(Loid{9, 1}), nullptr);
  EXPECT_EQ(t.size(), 1u);

  // Re-insertion after erase revives the row.
  t.upsert(MakeRow(1));
  ASSERT_NE(t.find(Loid{9, 1}), nullptr);
  EXPECT_EQ(t.size(), 2u);
}

TEST(LogicalTableTest, UpsertReplacesInPlace) {
  LogicalTable t;
  t.upsert(MakeRow(5));
  TableRow* before = t.find(Loid{9, 5});
  TableRow replacement = MakeRow(5);
  replacement.checkpoint_path = "vault/replaced";
  t.upsert(std::move(replacement));
  EXPECT_EQ(t.size(), 1u);
  // Dense ids: the row keeps its slot, so the pointer stays stable.
  EXPECT_EQ(t.find(Loid{9, 5}), before);
  EXPECT_EQ(before->checkpoint_path, "vault/replaced");
}

TEST(LogicalTableTest, RowPointersStableAcrossGrowth) {
  LogicalTable t;
  t.upsert(MakeRow(1));
  const TableRow* first = t.find(Loid{9, 1});
  for (std::uint64_t n = 2; n <= 5000; ++n) t.upsert(MakeRow(n));
  EXPECT_EQ(t.find(Loid{9, 1}), first);  // segments never move
  EXPECT_EQ(first->checkpoint_path, "vault/1");
}

TEST(LogicalTableTest, LoidsAreInsertionOrderedAndDeterministic) {
  // SweepInstances probe order and sim traces follow loids(): the sequence
  // must be a function of the insertion history, not of hash-bucket layout.
  const std::vector<std::uint64_t> scrambled = {41, 7, 1000003, 2, 99, 13};
  LogicalTable t;
  for (const std::uint64_t n : scrambled) {
    t.upsert(MakeRow(n, n % 2 == 0 ? RowKind::kInstance : RowKind::kSubclass));
  }
  std::vector<Loid> expected;
  for (const std::uint64_t n : scrambled) expected.emplace_back(9, n);
  EXPECT_EQ(t.loids(), expected);

  // Erase + re-insert moves the LOID nowhere: its id (insertion slot) is
  // stable, so replay order survives row churn.
  t.erase(Loid{9, 7});
  t.upsert(MakeRow(7, RowKind::kSubclass));
  EXPECT_EQ(t.loids(), expected);

  std::vector<Loid> instances;
  for (const std::uint64_t n : scrambled) {
    if (n % 2 == 0) instances.emplace_back(9, n);
  }
  EXPECT_EQ(t.loids(RowKind::kInstance), instances);
}

TEST(LogicalTableTest, SerializeRoundTripsAllFields) {
  LogicalTable t;
  for (std::uint64_t n = 1; n <= 40; ++n) {
    t.upsert(MakeRow(n, static_cast<RowKind>(n % 3)));
  }
  t.erase(Loid{9, 20});

  Buffer bytes;
  Writer w(bytes);
  t.Serialize(w);
  Reader r(bytes);
  LogicalTable back = LogicalTable::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(back.size(), t.size());
  EXPECT_EQ(back.loids(), t.loids());
  EXPECT_EQ(back.find(Loid{9, 20}), nullptr);
  ASSERT_NE(back.find(Loid{9, 3}), nullptr);
  EXPECT_EQ(back.find(Loid{9, 3})->checkpoint_path, "vault/3");
}

TEST(LogicalTableTest, EveryTruncationFailsTheReader) {
  // The satellite bug: a stream cut mid-row used to deserialize into a
  // silently shorter table. Any proper prefix must now leave the reader
  // failed — there is no byte at which a truncated table reads clean.
  LogicalTable t;
  for (std::uint64_t n = 1; n <= 8; ++n) t.upsert(MakeRow(n));
  Buffer bytes;
  Writer w(bytes);
  t.Serialize(w);

  const auto full = bytes.span();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Reader r(full.subspan(0, cut));
    (void)LogicalTable::Deserialize(r);
    EXPECT_FALSE(r.ok()) << "prefix of " << cut << " bytes read clean";
  }
  Reader whole(full);
  (void)LogicalTable::Deserialize(whole);
  EXPECT_TRUE(whole.ok());
}

TEST(LogicalTableTest, HostileRowCountFailsInsteadOfTruncating) {
  Buffer bytes;
  Writer w(bytes);
  w.u32(1'000'000);  // claims a million rows, provides none
  Reader r(bytes);
  LogicalTable t = LogicalTable::Deserialize(r);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(t.size(), 0u);
}

class ClassStateRestoreTest : public ::testing::Test {
 protected:
  static ClassDefinition MakeDef() {
    ClassDefinition def;
    def.class_id = 9;
    def.name = "Worker";
    def.instance_impl = "worker";
    return def;
  }
};

TEST_F(ClassStateRestoreTest, TruncatedCheckpointIsAnErrorNotAShorterTable) {
  ClassObjectImpl source(MakeDef());
  for (std::uint64_t n = 1; n <= 6; ++n) source.table().upsert(MakeRow(n));
  Buffer bytes;
  Writer w(bytes);
  source.SaveState(w);

  // Compute where the definition ends: a def-only stream is the legitimate
  // Derive() layout, so truncation testing starts one byte past it.
  Buffer def_only;
  Writer dw(def_only);
  source.definition().Serialize(dw);
  const std::size_t def_size = def_only.span().size();

  const auto full = bytes.span();
  std::size_t failures = 0;
  for (std::size_t cut = def_size + 1; cut < full.size(); ++cut) {
    ClassObjectImpl restored;
    Reader r(full.subspan(0, cut));
    if (!restored.RestoreState(r).ok()) ++failures;
  }
  // Every strictly-partial checkpoint beyond the definition must fail.
  EXPECT_EQ(failures, full.size() - def_size - 1);

  ClassObjectImpl restored;
  Reader whole(full);
  ASSERT_TRUE(restored.RestoreState(whole).ok());
  EXPECT_EQ(restored.table().size(), 6u);
  EXPECT_EQ(restored.table().loids(), source.table().loids());
}

TEST_F(ClassStateRestoreTest, DefinitionOnlyStreamIsAFreshClass) {
  // Derive() ships a definition with no table/counters; that layout must
  // keep restoring as an empty class, not as a truncation error.
  Buffer bytes;
  Writer w(bytes);
  MakeDef().Serialize(w);
  ClassObjectImpl restored;
  Reader r(bytes);
  ASSERT_TRUE(restored.RestoreState(r).ok());
  EXPECT_EQ(restored.table().size(), 0u);
  EXPECT_EQ(restored.definition().name, "Worker");
}

}  // namespace
}  // namespace legion::core
