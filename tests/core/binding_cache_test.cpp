#include "core/binding_cache.hpp"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace legion::core {
namespace {

Binding MakeBinding(std::uint64_t n, SimTime expires = kSimTimeNever) {
  Binding b;
  b.loid = Loid{100, n};
  b.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{n})};
  b.expires = expires;
  return b;
}

TEST(BindingCacheTest, MissThenHit) {
  BindingCache cache(8);
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
  cache.put(MakeBinding(1));
  auto hit = cache.get(Loid{100, 1}, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->loid, (Loid{100, 1}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BindingCacheTest, LruEvictionOrder) {
  BindingCache cache(3);
  cache.put(MakeBinding(1));
  cache.put(MakeBinding(2));
  cache.put(MakeBinding(3));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  cache.put(MakeBinding(4));
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 2}, 0).has_value());
  EXPECT_TRUE(cache.get(Loid{100, 3}, 0).has_value());
  EXPECT_TRUE(cache.get(Loid{100, 4}, 0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BindingCacheTest, ZeroCapacityDisablesCaching) {
  BindingCache cache(0);
  cache.put(MakeBinding(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
}

TEST(BindingCacheTest, ExpiredEntryIsMissAndPurged) {
  // Section 3.5: a binding carries "the time that the binding becomes
  // invalid".
  BindingCache cache(8);
  cache.put(MakeBinding(1, /*expires=*/100));
  EXPECT_TRUE(cache.get(Loid{100, 1}, 99).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 1}, 100).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingCacheTest, PutRefreshesExistingEntry) {
  BindingCache cache(8);
  cache.put(MakeBinding(1, 100));
  Binding updated = MakeBinding(1, kSimTimeNever);
  updated.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{42})};
  cache.put(updated);
  auto hit = cache.get(Loid{100, 1}, 500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->address, updated.address);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BindingCacheTest, InvalidateByLoid) {
  BindingCache cache(8);
  cache.put(MakeBinding(1));
  EXPECT_TRUE(cache.invalidate(Loid{100, 1}));
  EXPECT_FALSE(cache.invalidate(Loid{100, 1}));
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(BindingCacheTest, InvalidateExactSparesNewerBinding) {
  // Section 3.6's second InvalidateBinding form "remove[s] a binding if it
  // matches exactly" — so a newer replacement must survive.
  BindingCache cache(8);
  const Binding stale = MakeBinding(1);
  Binding fresh = MakeBinding(1);
  fresh.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{99})};
  cache.put(fresh);
  EXPECT_FALSE(cache.invalidate_exact(stale));  // no exact match
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_TRUE(cache.invalidate_exact(fresh));
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
}

TEST(BindingCacheTest, InvalidBindingNotStored) {
  BindingCache cache(8);
  cache.put(Binding{});
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingCacheTest, HitRateComputation) {
  BindingCache cache(8);
  cache.put(MakeBinding(1));
  (void)cache.get(Loid{100, 1}, 0);
  (void)cache.get(Loid{100, 1}, 0);
  (void)cache.get(Loid{100, 2}, 0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 2.0 / 3.0);
  cache.reset_stats();
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

class CacheCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacitySweep, SizeNeverExceedsCapacity) {
  BindingCache cache(GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) cache.put(MakeBinding(i + 1));
  EXPECT_LE(cache.size(), GetParam());
  if (GetParam() > 0 && GetParam() <= 100) {
    EXPECT_EQ(cache.size(), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(0, 1, 2, 16, 64, 1000));

TEST(BindingCacheTest, ExpiredEvictionAtCapacityKeepsLruAndMapConsistent) {
  // Interleave expiring gets, puts at capacity, and exact invalidations:
  // the expiry-eviction path erases from both the LRU list and the map, and
  // after EVERY step the two must agree (same size, positions pointing back
  // at their own nodes). A bug here corrupts eviction order silently.
  BindingCache cache(3);
  cache.put(MakeBinding(1, /*expires=*/100));
  cache.put(MakeBinding(2, /*expires=*/200));
  cache.put(MakeBinding(3));
  ASSERT_TRUE(cache.consistent());

  // Entry 1 expires on lookup; the slot reopens.
  EXPECT_FALSE(cache.get(Loid{100, 1}, 150).has_value());
  ASSERT_TRUE(cache.consistent());
  EXPECT_EQ(cache.size(), 2u);

  // Fill back to capacity, then one more: LRU eviction fires.
  cache.put(MakeBinding(4));
  ASSERT_TRUE(cache.consistent());
  cache.put(MakeBinding(5));
  ASSERT_TRUE(cache.consistent());
  EXPECT_EQ(cache.size(), 3u);

  // Expire 2 and exact-invalidate 4 back to back.
  EXPECT_FALSE(cache.get(Loid{100, 2}, 250).has_value());
  ASSERT_TRUE(cache.consistent());
  EXPECT_TRUE(cache.invalidate_exact(MakeBinding(4)));
  ASSERT_TRUE(cache.consistent());

  // Refresh-put of a surviving entry must splice, not duplicate.
  cache.put(MakeBinding(5));
  ASSERT_TRUE(cache.consistent());
  EXPECT_LE(cache.size(), 3u);

  // Survivors still resolve; the expired ones stay gone.
  EXPECT_TRUE(cache.get(Loid{100, 5}, 300).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 2}, 300).has_value());
  ASSERT_TRUE(cache.consistent());
}

TEST(BindingCacheTest, ConcurrentMixedOpsAtCapacityStayConsistent) {
  // Four threads hammer one at-capacity cache with the full op mix (gets at
  // expiring timestamps, puts, exact invalidations). Correctness claim:
  // no crash, no TSan report, and the LRU/map pair is intact afterwards.
  BindingCache cache(4);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t id = 1 + ((t * kOps + i) % 7);
        switch (i % 4) {
          case 0:
            cache.put(MakeBinding(id, /*expires=*/i % 3 == 0 ? 50 : kSimTimeNever));
            break;
          case 1:
            (void)cache.get(Loid{100, id}, /*now=*/i % 2 == 0 ? 0 : 100);
            break;
          case 2:
            (void)cache.invalidate_exact(MakeBinding(id));
            break;
          default:
            (void)cache.invalidate(Loid{100, id});
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(cache.consistent());
  EXPECT_LE(cache.size(), 4u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * (kOps / 4));
}

}  // namespace
}  // namespace legion::core
