#include "core/binding_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <optional>
#include <thread>
#include <vector>

#include "base/rng.hpp"

namespace legion::core {
namespace {

Binding MakeBinding(std::uint64_t n, SimTime expires = kSimTimeNever) {
  Binding b;
  b.loid = Loid{100, n};
  b.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{n})};
  b.expires = expires;
  return b;
}

TEST(BindingCacheTest, MissThenHit) {
  BindingCache cache(8);
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
  cache.put(MakeBinding(1));
  auto hit = cache.get(Loid{100, 1}, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->loid, (Loid{100, 1}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BindingCacheTest, LruEvictionOrder) {
  BindingCache cache(3);
  cache.put(MakeBinding(1));
  cache.put(MakeBinding(2));
  cache.put(MakeBinding(3));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  cache.put(MakeBinding(4));
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 2}, 0).has_value());
  EXPECT_TRUE(cache.get(Loid{100, 3}, 0).has_value());
  EXPECT_TRUE(cache.get(Loid{100, 4}, 0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BindingCacheTest, ZeroCapacityDisablesCaching) {
  BindingCache cache(0);
  cache.put(MakeBinding(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
}

TEST(BindingCacheTest, ExpiredEntryIsMissAndPurged) {
  // Section 3.5: a binding carries "the time that the binding becomes
  // invalid".
  BindingCache cache(8);
  cache.put(MakeBinding(1, /*expires=*/100));
  EXPECT_TRUE(cache.get(Loid{100, 1}, 99).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 1}, 100).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingCacheTest, PutRefreshesExistingEntry) {
  BindingCache cache(8);
  cache.put(MakeBinding(1, 100));
  Binding updated = MakeBinding(1, kSimTimeNever);
  updated.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{42})};
  cache.put(updated);
  auto hit = cache.get(Loid{100, 1}, 500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->address, updated.address);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BindingCacheTest, InvalidateByLoid) {
  BindingCache cache(8);
  cache.put(MakeBinding(1));
  EXPECT_TRUE(cache.invalidate(Loid{100, 1}));
  EXPECT_FALSE(cache.invalidate(Loid{100, 1}));
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(BindingCacheTest, InvalidateExactSparesNewerBinding) {
  // Section 3.6's second InvalidateBinding form "remove[s] a binding if it
  // matches exactly" — so a newer replacement must survive.
  BindingCache cache(8);
  const Binding stale = MakeBinding(1);
  Binding fresh = MakeBinding(1);
  fresh.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{99})};
  cache.put(fresh);
  EXPECT_FALSE(cache.invalidate_exact(stale));  // no exact match
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_TRUE(cache.invalidate_exact(fresh));
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
}

TEST(BindingCacheTest, InvalidBindingNotStored) {
  BindingCache cache(8);
  cache.put(Binding{});
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingCacheTest, HitRateComputation) {
  BindingCache cache(8);
  cache.put(MakeBinding(1));
  (void)cache.get(Loid{100, 1}, 0);
  (void)cache.get(Loid{100, 1}, 0);
  (void)cache.get(Loid{100, 2}, 0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 2.0 / 3.0);
  cache.reset_stats();
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

class CacheCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacitySweep, SizeNeverExceedsCapacity) {
  BindingCache cache(GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) cache.put(MakeBinding(i + 1));
  EXPECT_LE(cache.size(), GetParam());
  if (GetParam() > 0 && GetParam() <= 100) {
    EXPECT_EQ(cache.size(), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(0, 1, 2, 16, 64, 1000));

TEST(BindingCacheTest, ExpiredEvictionAtCapacityKeepsLruAndMapConsistent) {
  // Interleave expiring gets, puts at capacity, and exact invalidations:
  // the expiry-eviction path erases from both the LRU list and the map, and
  // after EVERY step the two must agree (same size, positions pointing back
  // at their own nodes). A bug here corrupts eviction order silently.
  BindingCache cache(3);
  cache.put(MakeBinding(1, /*expires=*/100));
  cache.put(MakeBinding(2, /*expires=*/200));
  cache.put(MakeBinding(3));
  ASSERT_TRUE(cache.consistent());

  // Entry 1 expires on lookup; the slot reopens.
  EXPECT_FALSE(cache.get(Loid{100, 1}, 150).has_value());
  ASSERT_TRUE(cache.consistent());
  EXPECT_EQ(cache.size(), 2u);

  // Fill back to capacity, then one more: LRU eviction fires.
  cache.put(MakeBinding(4));
  ASSERT_TRUE(cache.consistent());
  cache.put(MakeBinding(5));
  ASSERT_TRUE(cache.consistent());
  EXPECT_EQ(cache.size(), 3u);

  // Expire 2 and exact-invalidate 4 back to back.
  EXPECT_FALSE(cache.get(Loid{100, 2}, 250).has_value());
  ASSERT_TRUE(cache.consistent());
  EXPECT_TRUE(cache.invalidate_exact(MakeBinding(4)));
  ASSERT_TRUE(cache.consistent());

  // Refresh-put of a surviving entry must splice, not duplicate.
  cache.put(MakeBinding(5));
  ASSERT_TRUE(cache.consistent());
  EXPECT_LE(cache.size(), 3u);

  // Survivors still resolve; the expired ones stay gone.
  EXPECT_TRUE(cache.get(Loid{100, 5}, 300).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 2}, 300).has_value());
  ASSERT_TRUE(cache.consistent());
}

TEST(BindingCacheTest, ConcurrentMixedOpsAtCapacityStayConsistent) {
  // Four threads hammer one at-capacity cache with the full op mix (gets at
  // expiring timestamps, puts, exact invalidations). Correctness claim:
  // no crash, no TSan report, and the LRU/map pair is intact afterwards.
  BindingCache cache(4);
  constexpr int kThreads = 4;
  constexpr int kOps = 4000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t id = 1 + ((t * kOps + i) % 7);
        switch (i % 4) {
          case 0:
            cache.put(MakeBinding(id, /*expires=*/i % 3 == 0 ? 50 : kSimTimeNever));
            break;
          case 1:
            (void)cache.get(Loid{100, id}, /*now=*/i % 2 == 0 ? 0 : 100);
            break;
          case 2:
            (void)cache.invalidate_exact(MakeBinding(id));
            break;
          default:
            (void)cache.invalidate(Loid{100, id});
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_TRUE(cache.consistent());
  EXPECT_LE(cache.size(), 4u);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits + stats.misses,
            static_cast<std::uint64_t>(kThreads) * (kOps / 4));
}

TEST(BindingCacheTest, ConcurrentPutsRacingResetCapacityStayConsistent) {
  // Regression for the TSan-visible race: put() and put_negative() used to
  // read capacity_ before taking the mutex, racing with reset_capacity()'s
  // write under lock. Both checks now happen under the mutex; this test is
  // the sanitizer matrix's probe for that path.
  BindingCache cache(8);
  constexpr int kWriters = 3;
  constexpr int kOps = 3000;
  std::vector<std::thread> threads;
  threads.reserve(kWriters + 1);
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOps; ++i) {
        const std::uint64_t id = 1 + ((t * kOps + i) % 11);
        if (i % 3 == 0) {
          cache.put_negative(Loid{100, id}, /*expires_at=*/1000 + i);
        } else {
          cache.put(MakeBinding(id));
        }
        if (i % 7 == 0) (void)cache.get(Loid{100, id}, /*now=*/0);
      }
    });
  }
  threads.emplace_back([&cache] {
    for (int i = 0; i < kOps; ++i) {
      cache.reset_capacity(i % 2 == 0 ? 4 : 16);
    }
  });
  for (auto& t : threads) t.join();
  EXPECT_TRUE(cache.consistent());
  EXPECT_LE(cache.size(), 16u);
  EXPECT_LE(cache.negative_size(), 16u);
}

// A naive reference model of the cache's contract, mirrored operation by
// operation: entries as a map plus an explicit most-recent-first LRU
// sequence, negatives as a map plus insertion order. The property test
// drives both with the same randomized op stream and requires identical
// observable behavior, consistent() and the negative bound after every step.
struct ReferenceCache {
  std::size_t capacity;
  std::map<Loid, Binding> entries;
  std::vector<Loid> lru;  // front = most recent
  std::map<Loid, SimTime> negatives;
  std::vector<Loid> neg_order;  // front = oldest

  explicit ReferenceCache(std::size_t cap) : capacity(cap) {}

  void to_front(const Loid& loid) {
    auto it = std::find(lru.begin(), lru.end(), loid);
    if (it != lru.end()) lru.erase(it);
    lru.insert(lru.begin(), loid);
  }
  void drop_entry(const Loid& loid) {
    entries.erase(loid);
    auto it = std::find(lru.begin(), lru.end(), loid);
    if (it != lru.end()) lru.erase(it);
  }
  void drop_negative(const Loid& loid) {
    negatives.erase(loid);
    auto it = std::find(neg_order.begin(), neg_order.end(), loid);
    if (it != neg_order.end()) neg_order.erase(it);
  }

  std::optional<Binding> get(const Loid& loid, SimTime now) {
    auto it = entries.find(loid);
    if (it == entries.end()) return std::nullopt;
    if (it->second.expired_at(now)) {
      drop_entry(loid);
      return std::nullopt;
    }
    to_front(loid);
    return it->second;
  }

  void put(Binding binding) {
    if (capacity == 0 || !binding.valid()) return;
    const Loid key = binding.loid;
    drop_negative(key);
    if (entries.contains(key)) {
      entries[key] = std::move(binding);
      to_front(key);
      return;
    }
    if (entries.size() >= capacity) drop_entry(lru.back());
    to_front(key);
    entries.emplace(key, std::move(binding));
  }

  void put_negative(const Loid& loid, SimTime expires_at) {
    if (capacity == 0) return;
    if (negatives.contains(loid)) {
      negatives[loid] = expires_at;
      return;
    }
    if (negatives.size() >= capacity) {
      for (std::size_t i = 0; i < neg_order.size();) {
        if (negatives[neg_order[i]] <= expires_at) {
          negatives.erase(neg_order[i]);
          neg_order.erase(neg_order.begin() + static_cast<std::ptrdiff_t>(i));
        } else {
          ++i;
        }
      }
      if (negatives.size() >= capacity) drop_negative(neg_order.front());
    }
    negatives[loid] = expires_at;
    neg_order.push_back(loid);
  }

  bool negative(const Loid& loid, SimTime now) {
    auto it = negatives.find(loid);
    if (it == negatives.end()) return false;
    if (it->second <= now) {
      drop_negative(loid);
      return false;
    }
    return true;
  }

  bool invalidate(const Loid& loid) {
    drop_negative(loid);
    if (!entries.contains(loid)) return false;
    drop_entry(loid);
    return true;
  }

  bool invalidate_exact(const Binding& binding) {
    auto it = entries.find(binding.loid);
    if (it == entries.end() || !(it->second == binding)) return false;
    drop_entry(binding.loid);
    return true;
  }

  void reset_capacity(std::size_t cap) {
    capacity = cap;
    entries.clear();
    lru.clear();
    negatives.clear();
    neg_order.clear();
  }
};

TEST(BindingCachePropertyTest, RandomizedOpsMatchReferenceModel) {
  // ~6000 randomized steps over a small LOID universe and adversarial
  // capacities, comparing every observable result against the reference
  // and asserting the packed structure's invariants after each step.
  Rng rng(20260808);
  constexpr std::uint64_t kUniverse = 24;
  constexpr int kSteps = 6000;

  for (const std::size_t capacity : {std::size_t{0}, std::size_t{1},
                                     std::size_t{3}, std::size_t{8}}) {
    BindingCache cache(capacity);
    ReferenceCache ref(capacity);
    SimTime now = 0;
    for (int step = 0; step < kSteps; ++step) {
      const Loid loid{100, 1 + rng.below(kUniverse)};
      now += static_cast<SimTime>(rng.below(20));
      switch (rng.below(12)) {
        case 0:
        case 1:
        case 2: {  // put, sometimes with a near expiry
          Binding b;
          b.loid = loid;
          b.address =
              ObjectAddress{ObjectAddressElement::Sim(EndpointId{rng.below(5)})};
          b.expires = rng.chance(0.3)
                          ? now + static_cast<SimTime>(rng.below(40))
                          : kSimTimeNever;
          cache.put(b);
          ref.put(b);
          break;
        }
        case 3:
        case 4:
        case 5:
        case 6: {  // get at current virtual time
          const auto got = cache.get(loid, now);
          const auto want = ref.get(loid, now);
          ASSERT_EQ(got.has_value(), want.has_value()) << "step " << step;
          if (got.has_value()) {
            ASSERT_TRUE(*got == *want) << "step " << step;
          }
          break;
        }
        case 7: {  // negative entry with short TTL
          const SimTime expires = now + static_cast<SimTime>(rng.below(30));
          cache.put_negative(loid, expires);
          ref.put_negative(loid, expires);
          break;
        }
        case 8: {
          ASSERT_EQ(cache.negative(loid, now), ref.negative(loid, now))
              << "step " << step;
          break;
        }
        case 9: {
          ASSERT_EQ(cache.invalidate(loid), ref.invalidate(loid))
              << "step " << step;
          break;
        }
        case 10: {  // invalidate_exact with a sometimes-matching binding
          Binding b;
          b.loid = loid;
          b.address =
              ObjectAddress{ObjectAddressElement::Sim(EndpointId{rng.below(5)})};
          const auto it = ref.entries.find(loid);
          if (it != ref.entries.end() && rng.chance(0.5)) b = it->second;
          ASSERT_EQ(cache.invalidate_exact(b), ref.invalidate_exact(b))
              << "step " << step;
          break;
        }
        default: {  // rare capacity reshuffle (the restore path)
          if (rng.chance(0.05)) {
            const auto cap = static_cast<std::size_t>(rng.below(9));
            cache.reset_capacity(cap);
            ref.reset_capacity(cap);
          }
          break;
        }
      }
      ASSERT_TRUE(cache.consistent()) << "step " << step;
      ASSERT_EQ(cache.size(), ref.entries.size()) << "step " << step;
      ASSERT_EQ(cache.negative_size(), ref.negatives.size()) << "step " << step;
      ASSERT_LE(cache.negative_size(), std::max<std::size_t>(ref.capacity, 0))
          << "step " << step;
    }
    // Final sweep: every LOID in the universe agrees on both polarities.
    for (std::uint64_t n = 1; n <= kUniverse; ++n) {
      const Loid probe{100, n};
      ASSERT_EQ(cache.get(probe, now).has_value(),
                ref.get(probe, now).has_value());
      ASSERT_EQ(cache.negative(probe, now), ref.negative(probe, now));
    }
  }
}

}  // namespace
}  // namespace legion::core
