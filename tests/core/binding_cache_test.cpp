#include "core/binding_cache.hpp"

#include <gtest/gtest.h>

namespace legion::core {
namespace {

Binding MakeBinding(std::uint64_t n, SimTime expires = kSimTimeNever) {
  Binding b;
  b.loid = Loid{100, n};
  b.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{n})};
  b.expires = expires;
  return b;
}

TEST(BindingCacheTest, MissThenHit) {
  BindingCache cache(8);
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
  cache.put(MakeBinding(1));
  auto hit = cache.get(Loid{100, 1}, 0);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->loid, (Loid{100, 1}));
  EXPECT_EQ(cache.stats().hits, 1u);
  EXPECT_EQ(cache.stats().misses, 1u);
}

TEST(BindingCacheTest, LruEvictionOrder) {
  BindingCache cache(3);
  cache.put(MakeBinding(1));
  cache.put(MakeBinding(2));
  cache.put(MakeBinding(3));
  // Touch 1 so 2 becomes the LRU victim.
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  cache.put(MakeBinding(4));
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 2}, 0).has_value());
  EXPECT_TRUE(cache.get(Loid{100, 3}, 0).has_value());
  EXPECT_TRUE(cache.get(Loid{100, 4}, 0).has_value());
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(BindingCacheTest, ZeroCapacityDisablesCaching) {
  BindingCache cache(0);
  cache.put(MakeBinding(1));
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
}

TEST(BindingCacheTest, ExpiredEntryIsMissAndPurged) {
  // Section 3.5: a binding carries "the time that the binding becomes
  // invalid".
  BindingCache cache(8);
  cache.put(MakeBinding(1, /*expires=*/100));
  EXPECT_TRUE(cache.get(Loid{100, 1}, 99).has_value());
  EXPECT_FALSE(cache.get(Loid{100, 1}, 100).has_value());
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingCacheTest, PutRefreshesExistingEntry) {
  BindingCache cache(8);
  cache.put(MakeBinding(1, 100));
  Binding updated = MakeBinding(1, kSimTimeNever);
  updated.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{42})};
  cache.put(updated);
  auto hit = cache.get(Loid{100, 1}, 500);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->address, updated.address);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(BindingCacheTest, InvalidateByLoid) {
  BindingCache cache(8);
  cache.put(MakeBinding(1));
  EXPECT_TRUE(cache.invalidate(Loid{100, 1}));
  EXPECT_FALSE(cache.invalidate(Loid{100, 1}));
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_EQ(cache.stats().invalidations, 1u);
}

TEST(BindingCacheTest, InvalidateExactSparesNewerBinding) {
  // Section 3.6's second InvalidateBinding form "remove[s] a binding if it
  // matches exactly" — so a newer replacement must survive.
  BindingCache cache(8);
  const Binding stale = MakeBinding(1);
  Binding fresh = MakeBinding(1);
  fresh.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{99})};
  cache.put(fresh);
  EXPECT_FALSE(cache.invalidate_exact(stale));  // no exact match
  EXPECT_TRUE(cache.get(Loid{100, 1}, 0).has_value());
  EXPECT_TRUE(cache.invalidate_exact(fresh));
  EXPECT_FALSE(cache.get(Loid{100, 1}, 0).has_value());
}

TEST(BindingCacheTest, InvalidBindingNotStored) {
  BindingCache cache(8);
  cache.put(Binding{});
  EXPECT_EQ(cache.size(), 0u);
}

TEST(BindingCacheTest, HitRateComputation) {
  BindingCache cache(8);
  cache.put(MakeBinding(1));
  (void)cache.get(Loid{100, 1}, 0);
  (void)cache.get(Loid{100, 1}, 0);
  (void)cache.get(Loid{100, 2}, 0);
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 2.0 / 3.0);
  cache.reset_stats();
  EXPECT_DOUBLE_EQ(cache.stats().hit_rate(), 0.0);
}

class CacheCapacitySweep : public ::testing::TestWithParam<std::size_t> {};

TEST_P(CacheCapacitySweep, SizeNeverExceedsCapacity) {
  BindingCache cache(GetParam());
  for (std::uint64_t i = 0; i < 100; ++i) cache.put(MakeBinding(i + 1));
  EXPECT_LE(cache.size(), GetParam());
  if (GetParam() > 0 && GetParam() <= 100) {
    EXPECT_EQ(cache.size(), GetParam());
  }
}

INSTANTIATE_TEST_SUITE_P(Capacities, CacheCapacitySweep,
                         ::testing::Values(0, 1, 2, 16, 64, 1000));

}  // namespace
}  // namespace legion::core
