// Cross-jurisdiction migration: Copy(), Move(), and the stale bindings they
// leave behind (paper Sections 3.8 and 4.1.4).
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class MigrationTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
    // Pin creation to uva so the source jurisdiction is deterministic.
    auto reply = client_->create(counter_class_, CounterInit(11),
                                 {system_->magistrate_of(uva_)});
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    counter_ = reply->loid;
  }

  std::int64_t Get(Client& client) {
    auto raw = client.ref(counter_).call("Get", Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
    return raw.ok() ? ReadI64(*raw) : -1;
  }

  Loid counter_class_;
  Loid counter_;
};

TEST_F(MigrationTest, CopyPlacesInertReplicaAtDestination) {
  // Section 3.8 Copy(): deactivate, create an OPR, send it across.
  wire::TransferRequest req{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kCopy, req.to_buffer())
                  .ok());
  EXPECT_TRUE(system_->magistrate_impl(uva_)->manages(counter_));  // kept
  EXPECT_TRUE(system_->magistrate_impl(doe_)->manages(counter_));  // copied
  EXPECT_EQ(system_->magistrate_impl(doe_)->inert_count(), 1u);
}

TEST_F(MigrationTest, CopyExtendsCurrentMagistrateList) {
  // Section 3.7: the class's Current Magistrate List tracks every holder,
  // and GetBinding falls through to *any* magistrate on the list — so the
  // object survives its primary magistrate forgetting it entirely.
  wire::TransferRequest req{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kCopy, req.to_buffer())
                  .ok());

  // Erase the original copy directly at the source magistrate.
  wire::LoidRequest del{counter_};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kDelete, del.to_buffer())
                  .ok());
  EXPECT_FALSE(system_->magistrate_impl(uva_)->manages(counter_));

  // A cold reference resolves through the class, which skips the dead
  // source entry and activates the copy at doe.
  auto cold = system_->make_client(doe2_, "cold");
  auto raw = cold->ref(counter_).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(Get(*cold), 11);
  EXPECT_TRUE(system_->magistrate_impl(doe_)->manages(counter_));
}

TEST_F(MigrationTest, MoveTransfersManagementCompletely) {
  // "Move() is equivalent to Copy() then Delete(). It serves to change the
  //  Magistrate that manages a given object."
  wire::TransferRequest req{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kMove, req.to_buffer())
                  .ok());
  EXPECT_FALSE(system_->magistrate_impl(uva_)->manages(counter_));
  EXPECT_TRUE(system_->magistrate_impl(doe_)->manages(counter_));

  // The object is reachable and intact after migration, through the full
  // refresh path (the old binding is stale).
  EXPECT_EQ(Get(*client_), 11);
  EXPECT_TRUE(system_->magistrate_impl(doe_)->manages(counter_));
  EXPECT_EQ(system_->magistrate_impl(doe_)->inert_count(), 0u);  // reactivated
}

TEST_F(MigrationTest, MoveViaClassChecksCandidateList) {
  // MoveInstance on the class enforces the Candidate Magistrate List
  // (Section 3.7): both magistrates are candidates here, so the move to
  // whichever one does not currently hold the object is permitted.
  auto reply = client_->create(
      counter_class_, testing::CounterInit(21),
      {system_->magistrate_of(uva_), system_->magistrate_of(doe_)});
  ASSERT_TRUE(reply.ok());
  const bool at_uva = system_->magistrate_impl(uva_)->manages(reply->loid);
  const Loid dest =
      at_uva ? system_->magistrate_of(doe_) : system_->magistrate_of(uva_);
  const JurisdictionId dest_j = at_uva ? doe_ : uva_;

  wire::MoveInstanceRequest req{reply->loid, dest};
  ASSERT_TRUE(client_->ref(counter_class_)
                  .call(methods::kMoveInstance, req.to_buffer())
                  .ok());
  EXPECT_TRUE(system_->magistrate_impl(dest_j)->manages(reply->loid));
  auto raw = client_->ref(reply->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(testing::ReadI64(*raw), 21);
}

TEST_F(MigrationTest, RestrictedCandidateListBlocksMove) {
  auto reply = client_->create(counter_class_, CounterInit(0),
                               {system_->magistrate_of(uva_)});
  ASSERT_TRUE(reply.ok());
  // The explicit candidate list contains only uva's magistrate.
  wire::MoveInstanceRequest req{reply->loid, system_->magistrate_of(doe_)};
  EXPECT_EQ(client_->ref(counter_class_)
                .call(methods::kMoveInstance, req.to_buffer())
                .status()
                .code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(MigrationTest, StaleBindingsRepairTransparently) {
  // Warm the client's cache, migrate behind its back, then invoke: the comm
  // layer must detect the stale binding, refresh, and retry (Section 4.1.4).
  ASSERT_EQ(Get(*client_), 11);
  const auto before = client_->resolver().stats().stale_retries;

  wire::TransferRequest req{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kMove, req.to_buffer())
                  .ok());

  EXPECT_EQ(Get(*client_), 11);
  EXPECT_GT(client_->resolver().stats().stale_retries, before);
}

TEST_F(MigrationTest, SecondClientUnaffectedByOthersStaleCache) {
  auto other = system_->make_client(doe2_, "other");
  wire::TransferRequest req{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kMove, req.to_buffer())
                  .ok());
  EXPECT_EQ(Get(*other), 11);
}

TEST_F(MigrationTest, MoveUnknownObjectFails) {
  wire::TransferRequest req{Loid{counter_.class_id(), 424242},
                            system_->magistrate_of(doe_)};
  EXPECT_EQ(client_->ref(system_->magistrate_of(uva_))
                .call(methods::kMove, req.to_buffer())
                .status()
                .code(),
            StatusCode::kNotFound);
}

TEST_F(MigrationTest, RepeatedPingPongMigrationPreservesState) {
  const Loid uva_mag = system_->magistrate_of(uva_);
  const Loid doe_mag = system_->magistrate_of(doe_);
  for (int round = 0; round < 4; ++round) {
    const Loid src = (round % 2 == 0) ? uva_mag : doe_mag;
    const Loid dst = (round % 2 == 0) ? doe_mag : uva_mag;
    ASSERT_TRUE(client_->ref(counter_).call("Increment", Buffer{}).ok());
    wire::TransferRequest req{counter_, dst};
    ASSERT_TRUE(client_->ref(src).call(methods::kMove, req.to_buffer()).ok())
        << "round " << round;
  }
  EXPECT_EQ(Get(*client_), 15);  // 11 + 4 increments
}

}  // namespace
}  // namespace legion::core
