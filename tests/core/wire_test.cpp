// Wire-format round trips and hostile-input robustness for the core
// protocol messages.
#include <gtest/gtest.h>

#include "core/logical_table.hpp"
#include "core/wire.hpp"

namespace legion::core::wire {
namespace {

Binding SomeBinding(std::uint64_t n) {
  Binding b;
  b.loid = Loid{50, n, {1, 2}};
  b.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{n})};
  b.expires = 12345;
  return b;
}

TEST(WireTest, GetBindingRequestRoundTrip) {
  GetBindingRequest in;
  in.mode = GetBindingMode::kRefresh;
  in.loid = Loid{5, 9};
  in.stale = SomeBinding(9);
  auto out = GetBindingRequest::from_buffer(in.to_buffer());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->mode, GetBindingMode::kRefresh);
  EXPECT_EQ(out->loid, in.loid);
  EXPECT_EQ(out->stale, in.stale);
}

TEST(WireTest, CreateRequestRoundTrip) {
  CreateRequest in;
  in.init_state = Buffer::FromString("init");
  in.candidate_magistrates = {Loid{4, 1}, Loid{4, 2}};
  in.suggested_host = Loid{3, 7};
  auto out = CreateRequest::from_buffer(in.to_buffer());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->init_state.as_string(), "init");
  EXPECT_EQ(out->candidate_magistrates.size(), 2u);
  EXPECT_EQ(out->suggested_host, (Loid{3, 7}));
}

TEST(WireTest, DeriveRequestRoundTrip) {
  DeriveRequest in;
  in.name = "Sub";
  in.instance_impl = "impl.x";
  in.extra_interface.set_name("Sub");
  in.extra_interface.add_method(MethodSignature{"int", "m", {}});
  in.flags = kClassFlagAbstract | kClassFlagFixed;
  auto out = DeriveRequest::from_buffer(in.to_buffer());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->name, "Sub");
  EXPECT_EQ(out->flags, in.flags);
  EXPECT_TRUE(out->extra_interface.has_method("m"));
}

TEST(WireTest, CreateReplicatedRequestRoundTrip) {
  CreateReplicatedRequest in;
  in.replicas = 4;
  in.semantic = static_cast<std::uint8_t>(AddressSemantic::kKOfN);
  in.k = 2;
  auto out = CreateReplicatedRequest::from_buffer(in.to_buffer());
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->replicas, 4u);
  EXPECT_EQ(out->k, 2u);
}

TEST(WireTest, LocateClassReplyBothKinds) {
  {
    LocateClassReply in;
    in.kind = LocateClassReply::Kind::kBinding;
    in.binding = SomeBinding(1);
    auto out = LocateClassReply::from_buffer(in.to_buffer());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->kind, LocateClassReply::Kind::kBinding);
    EXPECT_EQ(out->binding, in.binding);
  }
  {
    LocateClassReply in;
    in.kind = LocateClassReply::Kind::kDelegate;
    in.creator = Loid{2, 0};
    auto out = LocateClassReply::from_buffer(in.to_buffer());
    ASSERT_TRUE(out.ok());
    EXPECT_EQ(out->kind, LocateClassReply::Kind::kDelegate);
    EXPECT_EQ(out->creator, (Loid{2, 0}));
  }
}

TEST(WireTest, HostStateReplyRoundTrip) {
  HostStateReply in{0.75, 3, 4.0, false};
  auto out = HostStateReply::from_buffer(in.to_buffer());
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->cpu_load, 0.75);
  EXPECT_EQ(out->active_objects, 3u);
  EXPECT_FALSE(out->accepting);
}

TEST(WireTest, TruncatedBuffersRejectedEverywhere) {
  // Serialize each message, then truncate at every byte boundary: parsing
  // must fail (or at minimum not crash) on every prefix.
  const Buffer full = [] {
    GetBindingRequest req;
    req.mode = GetBindingMode::kRefresh;
    req.loid = Loid{5, 9, {1, 2, 3, 4}};
    req.stale = SomeBinding(9);
    return req.to_buffer();
  }();
  for (std::size_t cut = 0; cut < full.size(); ++cut) {
    Buffer truncated;
    truncated.append(full.data(), cut);
    EXPECT_FALSE(GetBindingRequest::from_buffer(truncated).ok())
        << "prefix length " << cut << " parsed successfully";
  }
}

TEST(WireTest, EmptyBufferRejected) {
  EXPECT_FALSE(CreateReply::from_buffer(Buffer{}).ok());
  EXPECT_FALSE(BindingReply::from_buffer(Buffer{}).ok());
  EXPECT_FALSE(AssignClassIdReply::from_buffer(Buffer{}).ok());
}

// --- logical table rows ------------------------------------------------------

TEST(LogicalTableTest, RowRoundTripsAllFields) {
  TableRow in;
  in.loid = Loid{64, 7, {9}};
  in.kind = RowKind::kSubclass;
  in.address = ObjectAddress{ObjectAddressElement::Sim(EndpointId{4})};
  in.current_magistrates = {Loid{4, 1}, Loid{4, 2}};
  in.scheduling_agent = Loid{70, 3};
  in.candidates.mode = CandidateMagistrates::Mode::kExplicit;
  in.candidates.magistrates = {Loid{4, 1}};
  in.placed_host = Loid{3, 9};
  in.checkpoint_disk = 2;
  in.checkpoint_path = "opr/1.64.7.5";

  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  const TableRow out = TableRow::Deserialize(r);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(out.loid, in.loid);
  EXPECT_EQ(out.kind, RowKind::kSubclass);
  EXPECT_EQ(out.address, in.address);
  EXPECT_EQ(out.current_magistrates, in.current_magistrates);
  EXPECT_EQ(out.scheduling_agent, in.scheduling_agent);
  EXPECT_FALSE(out.candidates.permits(Loid{4, 2}));
  EXPECT_TRUE(out.candidates.permits(Loid{4, 1}));
  EXPECT_EQ(out.placed_host, in.placed_host);
  EXPECT_EQ(out.checkpoint_disk, 2u);
  EXPECT_EQ(out.checkpoint_path, "opr/1.64.7.5");
}

TEST(LogicalTableTest, NoRestrictionPermitsAnyMagistrate) {
  CandidateMagistrates c;
  EXPECT_TRUE(c.permits(Loid{4, 99}));
}

TEST(LogicalTableTest, TableRoundTripsAndFilters) {
  LogicalTable table;
  for (std::uint64_t i = 1; i <= 4; ++i) {
    TableRow row;
    row.loid = Loid{64, i};
    row.kind = i % 2 == 0 ? RowKind::kInstance : RowKind::kSubclass;
    table.upsert(row);
  }
  Buffer buf;
  Writer w(buf);
  table.Serialize(w);
  Reader r(buf);
  LogicalTable out = LogicalTable::Deserialize(r);
  EXPECT_EQ(out.size(), 4u);
  EXPECT_EQ(out.loids(RowKind::kInstance).size(), 2u);
  EXPECT_EQ(out.loids(RowKind::kSubclass).size(), 2u);
  EXPECT_EQ(out.loids().size(), 4u);
  EXPECT_NE(out.find(Loid{64, 2}), nullptr);
  EXPECT_TRUE(out.erase(Loid{64, 2}));
  EXPECT_FALSE(out.erase(Loid{64, 2}));
}

}  // namespace
}  // namespace legion::core::wire
