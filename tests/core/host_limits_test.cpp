// Host Object admission control, paper Section 3.9: SetCPULoad and
// SetMemoryUsage "restrict access to the host"; placement routes around
// full hosts; an exhausted jurisdiction refuses cleanly.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::SimSystemFixture;

class HostLimitsTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
  }

  Status SetLimit(HostId host, std::string_view method, std::uint64_t limit) {
    wire::SetLimitRequest req{limit};
    return client_->ref(system_->host_object_of(host))
        .call(method, req.to_buffer())
        .status();
  }

  wire::HostStateReply GetState(HostId host) {
    auto raw = client_->ref(system_->host_object_of(host))
                   .call(methods::kGetState, Buffer{});
    EXPECT_TRUE(raw.ok());
    auto reply = wire::HostStateReply::from_buffer(*raw);
    EXPECT_TRUE(reply.ok());
    return reply.ok() ? *reply : wire::HostStateReply{};
  }

  Loid counter_class_;
};

TEST_F(HostLimitsTest, GetStateReportsLoadAndCapacity) {
  const auto before = GetState(uva1_);
  EXPECT_TRUE(before.accepting);
  ASSERT_TRUE(client_
                  ->create(counter_class_, CounterInit(0),
                           {system_->magistrate_of(uva_)},
                           system_->host_object_of(uva1_))
                  .ok());
  const auto after = GetState(uva1_);
  EXPECT_EQ(after.active_objects, before.active_objects + 1);
  EXPECT_GT(after.cpu_load, before.cpu_load);
}

TEST_F(HostLimitsTest, CpuLimitStopsAdmission) {
  const auto current = GetState(uva1_).active_objects;
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad, current + 1).ok());

  // One more fits...
  ASSERT_TRUE(client_
                  ->create(counter_class_, CounterInit(0),
                           {system_->magistrate_of(uva_)},
                           system_->host_object_of(uva1_))
                  .ok());
  EXPECT_FALSE(GetState(uva1_).accepting);
  // ...the next explicit placement is refused by the host itself.
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)},
                                 system_->host_object_of(uva1_));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HostLimitsTest, PlacementRoutesAroundFullHost) {
  const auto current = GetState(uva1_).active_objects;
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad,
                       current == 0 ? 1 : current)
                  .ok());
  // Unsuggested placements in uva must now land on uva-2 only.
  const auto uva2_before = GetState(uva2_).active_objects;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client_
                    ->create(counter_class_, CounterInit(0),
                             {system_->magistrate_of(uva_)})
                    .ok());
  }
  EXPECT_GE(GetState(uva2_).active_objects, uva2_before + 3);
}

TEST_F(HostLimitsTest, ExhaustedJurisdictionRefusesCleanly) {
  for (HostId h : {uva1_, uva2_}) {
    const auto current = GetState(h).active_objects;
    ASSERT_TRUE(SetLimit(h, methods::kSetCPULoad,
                         current == 0 ? 1 : current)
                    .ok());
  }
  // Fill any remaining single slots.
  while (client_
             ->create(counter_class_, CounterInit(0),
                      {system_->magistrate_of(uva_)})
             .ok()) {
  }
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)});
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

// Counter init with trailing ballast to inflate the OPR state size.
Buffer BallastInit(std::size_t ballast) {
  Buffer b;
  Writer w(b);
  w.i64(0);
  const std::vector<std::uint8_t> pad(ballast, 0);
  b.append(pad.data(), pad.size());
  return b;
}

TEST_F(HostLimitsTest, MemoryLimitCountsRestoredState) {
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetMemoryUsage, 10'000).ok());
  // A fat object fills the budget...
  auto fat = client_->create(counter_class_, BallastInit(20'000),
                             {system_->magistrate_of(uva_)},
                             system_->host_object_of(uva1_));
  ASSERT_TRUE(fat.ok()) << fat.status().to_string();
  EXPECT_FALSE(GetState(uva1_).accepting);
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)},
                                 system_->host_object_of(uva1_));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HostLimitsTest, StopObjectReleasesMemoryAccounting) {
  // Regression: StopObject used to leak the stopped object's bytes from the
  // memory budget, so one start/stop cycle closed the host forever.
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetMemoryUsage, 10'000).ok());
  auto fat = client_->create(counter_class_, BallastInit(20'000),
                             {system_->magistrate_of(uva_)},
                             system_->host_object_of(uva1_));
  ASSERT_TRUE(fat.ok()) << fat.status().to_string();
  EXPECT_FALSE(GetState(uva1_).accepting);

  // Deactivating must return the state's bytes to the budget...
  wire::LoidRequest deactivate{fat->loid};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kDeactivate, deactivate.to_buffer())
                  .ok());
  EXPECT_TRUE(GetState(uva1_).accepting);

  // ...so a second cycle on the same host still fits.
  auto again = client_->create(counter_class_, BallastInit(20'000),
                               {system_->magistrate_of(uva_)},
                               system_->host_object_of(uva1_));
  EXPECT_TRUE(again.ok()) << again.status().to_string();
}

TEST_F(HostLimitsTest, RaisingLimitReopensHost) {
  // Occupy one slot so a limit equal to the occupancy closes the host.
  ASSERT_TRUE(client_
                  ->create(counter_class_, CounterInit(0),
                           {system_->magistrate_of(uva_)},
                           system_->host_object_of(uva1_))
                  .ok());
  const auto current = GetState(uva1_).active_objects;
  ASSERT_GE(current, 1u);
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad, current).ok());
  EXPECT_FALSE(GetState(uva1_).accepting);
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad, 0).ok());  // unlimited
  EXPECT_TRUE(GetState(uva1_).accepting);
}

// A jurisdiction with one normal host and one zero-capacity host: the
// latter must report itself non-accepting (not just an absurd cpu_load) so
// every placement path skips it.
class ZeroCapacityHostTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::SimRuntime>(99);
    solo_ = runtime_->topology().add_jurisdiction("solo");
    good_ = runtime_->topology().add_host("good", {solo_}, 4.0);
    zero_ = runtime_->topology().add_host("zero", {solo_}, 0.0);
    system_ = std::make_unique<LegionSystem>(*runtime_, SystemConfig{});
    ASSERT_TRUE(system_->registry()
                    .add(std::string(testing::CounterImpl::kName),
                         [] { return std::make_unique<testing::CounterImpl>(); })
                    .ok());
    const Status st = system_->bootstrap();
    ASSERT_TRUE(st.ok()) << st.to_string();
    client_ = system_->make_client(good_);

    wire::DeriveRequest req;
    req.name = "Counter";
    req.instance_impl = std::string(testing::CounterImpl::kName);
    req.extra_interface = testing::CounterImpl{}.interface();
    auto reply = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    counter_class_ = reply->loid;
  }

  wire::HostStateReply GetState(HostId host) {
    auto raw = client_->ref(system_->host_object_of(host))
                   .call(methods::kGetState, Buffer{});
    EXPECT_TRUE(raw.ok());
    auto reply = wire::HostStateReply::from_buffer(*raw);
    EXPECT_TRUE(reply.ok());
    return reply.ok() ? *reply : wire::HostStateReply{};
  }

  std::unique_ptr<rt::SimRuntime> runtime_;
  std::unique_ptr<LegionSystem> system_;
  std::unique_ptr<Client> client_;
  JurisdictionId solo_;
  HostId good_, zero_;
  Loid counter_class_;
};

TEST_F(ZeroCapacityHostTest, ReportsNotAccepting) {
  const auto state = GetState(zero_);
  EXPECT_FALSE(state.accepting);
  EXPECT_TRUE(GetState(good_).accepting);
}

TEST_F(ZeroCapacityHostTest, PlacementNeverLandsThere) {
  for (int i = 0; i < 6; ++i) {
    auto created = client_->create(counter_class_, CounterInit(0),
                                   {system_->magistrate_of(solo_)});
    ASSERT_TRUE(created.ok()) << created.status().to_string();
  }
  EXPECT_EQ(GetState(zero_).active_objects, 0u);
  EXPECT_GE(GetState(good_).active_objects, 6u);
}

TEST_F(ZeroCapacityHostTest, ExplicitSuggestionIsRefused) {
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(solo_)},
                                 system_->host_object_of(zero_));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

}  // namespace
}  // namespace legion::core
