// Host Object admission control, paper Section 3.9: SetCPULoad and
// SetMemoryUsage "restrict access to the host"; placement routes around
// full hosts; an exhausted jurisdiction refuses cleanly.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::SimSystemFixture;

class HostLimitsTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
  }

  Status SetLimit(HostId host, std::string_view method, std::uint64_t limit) {
    wire::SetLimitRequest req{limit};
    return client_->ref(system_->host_object_of(host))
        .call(method, req.to_buffer())
        .status();
  }

  wire::HostStateReply GetState(HostId host) {
    auto raw = client_->ref(system_->host_object_of(host))
                   .call(methods::kGetState, Buffer{});
    EXPECT_TRUE(raw.ok());
    auto reply = wire::HostStateReply::from_buffer(*raw);
    EXPECT_TRUE(reply.ok());
    return reply.ok() ? *reply : wire::HostStateReply{};
  }

  Loid counter_class_;
};

TEST_F(HostLimitsTest, GetStateReportsLoadAndCapacity) {
  const auto before = GetState(uva1_);
  EXPECT_TRUE(before.accepting);
  ASSERT_TRUE(client_
                  ->create(counter_class_, CounterInit(0),
                           {system_->magistrate_of(uva_)},
                           system_->host_object_of(uva1_))
                  .ok());
  const auto after = GetState(uva1_);
  EXPECT_EQ(after.active_objects, before.active_objects + 1);
  EXPECT_GT(after.cpu_load, before.cpu_load);
}

TEST_F(HostLimitsTest, CpuLimitStopsAdmission) {
  const auto current = GetState(uva1_).active_objects;
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad, current + 1).ok());

  // One more fits...
  ASSERT_TRUE(client_
                  ->create(counter_class_, CounterInit(0),
                           {system_->magistrate_of(uva_)},
                           system_->host_object_of(uva1_))
                  .ok());
  EXPECT_FALSE(GetState(uva1_).accepting);
  // ...the next explicit placement is refused by the host itself.
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)},
                                 system_->host_object_of(uva1_));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HostLimitsTest, PlacementRoutesAroundFullHost) {
  const auto current = GetState(uva1_).active_objects;
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad,
                       current == 0 ? 1 : current)
                  .ok());
  // Unsuggested placements in uva must now land on uva-2 only.
  const auto uva2_before = GetState(uva2_).active_objects;
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(client_
                    ->create(counter_class_, CounterInit(0),
                             {system_->magistrate_of(uva_)})
                    .ok());
  }
  EXPECT_GE(GetState(uva2_).active_objects, uva2_before + 3);
}

TEST_F(HostLimitsTest, ExhaustedJurisdictionRefusesCleanly) {
  for (HostId h : {uva1_, uva2_}) {
    const auto current = GetState(h).active_objects;
    ASSERT_TRUE(SetLimit(h, methods::kSetCPULoad,
                         current == 0 ? 1 : current)
                    .ok());
  }
  // Fill any remaining single slots.
  while (client_
             ->create(counter_class_, CounterInit(0),
                      {system_->magistrate_of(uva_)})
             .ok()) {
  }
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)});
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

// Counter init with trailing ballast to inflate the OPR state size.
Buffer BallastInit(std::size_t ballast) {
  Buffer b;
  Writer w(b);
  w.i64(0);
  const std::vector<std::uint8_t> pad(ballast, 0);
  b.append(pad.data(), pad.size());
  return b;
}

TEST_F(HostLimitsTest, MemoryLimitCountsRestoredState) {
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetMemoryUsage, 10'000).ok());
  // A fat object fills the budget...
  auto fat = client_->create(counter_class_, BallastInit(20'000),
                             {system_->magistrate_of(uva_)},
                             system_->host_object_of(uva1_));
  ASSERT_TRUE(fat.ok()) << fat.status().to_string();
  EXPECT_FALSE(GetState(uva1_).accepting);
  auto refused = client_->create(counter_class_, CounterInit(0),
                                 {system_->magistrate_of(uva_)},
                                 system_->host_object_of(uva1_));
  EXPECT_EQ(refused.status().code(), StatusCode::kResourceExhausted);
}

TEST_F(HostLimitsTest, RaisingLimitReopensHost) {
  // Occupy one slot so a limit equal to the occupancy closes the host.
  ASSERT_TRUE(client_
                  ->create(counter_class_, CounterInit(0),
                           {system_->magistrate_of(uva_)},
                           system_->host_object_of(uva1_))
                  .ok());
  const auto current = GetState(uva1_).active_objects;
  ASSERT_GE(current, 1u);
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad, current).ok());
  EXPECT_FALSE(GetState(uva1_).accepting);
  ASSERT_TRUE(SetLimit(uva1_, methods::kSetCPULoad, 0).ok());  // unlimited
  EXPECT_TRUE(GetState(uva1_).accepting);
}

}  // namespace
}  // namespace legion::core
