// Binding expiry (paper Section 3.5): bindings carry "the time that the
// binding becomes invalid", so caches can shed entries proactively instead
// of always repairing on failure.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;

class BindingTtlTest : public testing::SimSystemFixture {
 protected:
  SystemConfig MakeConfig() override {
    SystemConfig config;
    config.binding_ttl_us = 1'000'000;  // 1 virtual second
    return config;
  }

  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    auto reply = client_->create(counter_class_, CounterInit(5),
                                 {system_->magistrate_of(uva_)});
    ASSERT_TRUE(reply.ok());
    counter_ = reply->loid;
  }

  // Advance virtual time past the TTL (idle wall time between phases).
  void AdvancePast(SimTime us) { runtime_->advance(us); }

  Loid counter_class_;
  Loid counter_;
};

TEST_F(BindingTtlTest, AnswersCarryExpiry) {
  client_->resolver().cache().clear();
  auto binding = client_->get_binding(counter_);
  ASSERT_TRUE(binding.ok());
  EXPECT_NE(binding->expires, kSimTimeNever);
  EXPECT_GT(binding->expires, runtime_->now());
  EXPECT_LE(binding->expires, runtime_->now() + 1'000'000);
}

TEST_F(BindingTtlTest, ExpiredCacheEntryReResolves) {
  ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());
  const auto consults_before =
      client_->resolver().stats().binding_agent_consults;

  // Within the TTL: served from the local cache, no agent traffic.
  ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());
  EXPECT_EQ(client_->resolver().stats().binding_agent_consults,
            consults_before);

  // Past the TTL: the entry is purged and the agent consulted again.
  AdvancePast(1'100'000);
  ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());
  EXPECT_GT(client_->resolver().stats().binding_agent_consults,
            consults_before);
}

TEST_F(BindingTtlTest, ExpiryAvoidsStaleRetryAfterMigration) {
  ASSERT_TRUE(client_->ref(counter_).call("Get", Buffer{}).ok());

  // Migrate, then let every cache level expire before the next call.
  wire::TransferRequest move{counter_, system_->magistrate_of(doe_)};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(uva_))
                  .call(methods::kMove, move.to_buffer())
                  .ok());
  AdvancePast(1'200'000);

  const auto retries_before = client_->resolver().stats().stale_retries;
  auto raw = client_->ref(counter_).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 5);
  // The expired entry forced a clean re-resolve: no failed send happened.
  EXPECT_EQ(client_->resolver().stats().stale_retries, retries_before);
}

TEST_F(BindingTtlTest, NeverExpiringBindingsStillWork) {
  // A magistrate answered the original creation binding with TTL; compare
  // a config with no TTL via a sibling fixture-less check on Binding.
  Binding forever;
  forever.loid = counter_;
  forever.expires = kSimTimeNever;
  EXPECT_FALSE(forever.expired_at(INT64_MAX - 1));
}

}  // namespace
}  // namespace legion::core
