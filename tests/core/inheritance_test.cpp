// The three relations — is-a (Create), kind-of (Derive), inherits-from
// (InheritFrom) — and the Abstract/Private/Fixed class types (paper
// Sections 2.1.1 and 2.1.2).
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterImpl;
using testing::CounterInit;
using testing::GreeterImpl;
using testing::ReadI64;
using testing::SimSystemFixture;

class InheritanceTest : public SimSystemFixture {};

TEST_F(InheritanceTest, DeriveCreatesSubclassWithFreshClassId) {
  const Loid counter_class = DeriveCounterClass();
  ASSERT_TRUE(counter_class.valid());
  EXPECT_TRUE(counter_class.names_class_object());
  EXPECT_GE(counter_class.class_id(), kFirstUserClassId);

  // LegionClass recorded the responsibility pair <LegionObject, Counter>.
  const auto& pairs = system_->legion_class_impl()->responsibility_pairs();
  ASSERT_TRUE(pairs.contains(counter_class.class_id()));
  EXPECT_EQ(pairs.at(counter_class.class_id()), LegionObjectLoid());
}

TEST_F(InheritanceTest, SubclassOfSubclass) {
  const Loid counter_class = DeriveCounterClass();
  wire::DeriveRequest req;
  req.name = "FancyCounter";
  auto reply = client_->derive(counter_class, req);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();

  // The sub-subclass inherits Counter's implementation; instances behave
  // like counters.
  auto instance = client_->create(reply->loid, CounterInit(5));
  ASSERT_TRUE(instance.ok()) << instance.status().to_string();
  auto raw = client_->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(ReadI64(*raw), 5);
}

TEST_F(InheritanceTest, LocateSubclassOfSubclassThroughChain) {
  // Section 4.1.3: resolving a class walks creator pairs until LegionClass.
  const Loid counter_class = DeriveCounterClass();
  wire::DeriveRequest req;
  req.name = "FancyCounter";
  auto fancy = client_->derive(counter_class, req);
  ASSERT_TRUE(fancy.ok());

  auto cold = system_->make_client(doe1_, "cold");
  auto binding = cold->get_binding(fancy->loid);
  ASSERT_TRUE(binding.ok()) << binding.status().to_string();
  EXPECT_EQ(binding->loid, fancy->loid);
}

TEST_F(InheritanceTest, InheritFromMergesInterfaceAndImplementation) {
  const Loid counter_class = DeriveCounterClass();
  wire::DeriveRequest greq;
  greq.name = "Greeter";
  greq.instance_impl = std::string(GreeterImpl::kName);
  auto greeter_class = client_->derive(LegionObjectLoid(), greq);
  ASSERT_TRUE(greeter_class.ok());

  // Run-time multiple inheritance: Counter inherits-from Greeter.
  ASSERT_TRUE(client_->inherit_from(counter_class, greeter_class->loid).ok());

  // "It serves to alter the composition of FUTURE instances" (Section
  // 2.1.1): a new instance now greets *and* counts.
  auto instance = client_->create(counter_class, CounterInit(1));
  ASSERT_TRUE(instance.ok());
  auto greet = client_->ref(instance->loid).call("Greet", Buffer{});
  ASSERT_TRUE(greet.ok()) << greet.status().to_string();
  EXPECT_NE(greet->as_string().find("hello from"), std::string::npos);

  // Override order: the derived implementation's Get wins over Greeter's.
  auto get = client_->ref(instance->loid).call("Get", Buffer{});
  ASSERT_TRUE(get.ok());
  EXPECT_EQ(ReadI64(*get), 1);
}

TEST_F(InheritanceTest, InheritFromDoesNotAffectExistingInstances) {
  const Loid counter_class = DeriveCounterClass();
  auto before = client_->create(counter_class, CounterInit(0));
  ASSERT_TRUE(before.ok());

  wire::DeriveRequest greq;
  greq.name = "Greeter";
  greq.instance_impl = std::string(GreeterImpl::kName);
  auto greeter_class = client_->derive(LegionObjectLoid(), greq);
  ASSERT_TRUE(greeter_class.ok());
  ASSERT_TRUE(client_->inherit_from(counter_class, greeter_class->loid).ok());

  EXPECT_EQ(client_->ref(before->loid).call("Greet", Buffer{}).status().code(),
            StatusCode::kUnimplemented);
}

TEST_F(InheritanceTest, GetInterfaceReflectsInheritance) {
  const Loid counter_class = DeriveCounterClass();
  wire::DeriveRequest greq;
  greq.name = "Greeter";
  greq.instance_impl = std::string(GreeterImpl::kName);
  InterfaceDescription greet_iface("Greeter");
  greet_iface.add_method(MethodSignature{"string", "Greet", {}});
  greq.extra_interface = greet_iface;
  auto greeter_class = client_->derive(LegionObjectLoid(), greq);
  ASSERT_TRUE(greeter_class.ok());
  ASSERT_TRUE(client_->inherit_from(counter_class, greeter_class->loid).ok());

  auto raw = client_->ref(counter_class).call("DescribeClass", Buffer{});
  ASSERT_TRUE(raw.ok());
  auto desc = wire::DescribeClassReply::from_buffer(*raw);
  ASSERT_TRUE(desc.ok());
  EXPECT_TRUE(desc->interface.has_method("Greet"));
  EXPECT_NE(desc->impl_spec.find(std::string(GreeterImpl::kName)),
            std::string::npos);
}

TEST_F(InheritanceTest, PrivateClassRefusesDerive) {
  // Section 2.1.2: "Private class objects can have no derived classes, just
  // instances."
  const Loid private_class =
      DeriveCounterClass("PrivateCounter", wire::kClassFlagPrivate);
  ASSERT_TRUE(private_class.valid());

  wire::DeriveRequest req;
  req.name = "Sub";
  EXPECT_EQ(client_->derive(private_class, req).status().code(),
            StatusCode::kFailedPrecondition);
  // Instances still fine.
  EXPECT_TRUE(client_->create(private_class, CounterInit(0)).ok());
}

TEST_F(InheritanceTest, FixedClassRefusesInheritFrom) {
  // Section 2.1.2: "a Fixed class inherits member functions and variables
  // only from its superclass."
  const Loid fixed_class =
      DeriveCounterClass("FixedCounter", wire::kClassFlagFixed);
  ASSERT_TRUE(fixed_class.valid());
  EXPECT_EQ(client_->inherit_from(fixed_class, LegionObjectLoid()).code(),
            StatusCode::kFailedPrecondition);
}

TEST_F(InheritanceTest, AbstractClassRefusesCreateButDerives) {
  const Loid abstract_class =
      DeriveCounterClass("AbstractCounter", wire::kClassFlagAbstract);
  ASSERT_TRUE(abstract_class.valid());
  EXPECT_EQ(client_->create(abstract_class).status().code(),
            StatusCode::kFailedPrecondition);
  wire::DeriveRequest req;
  req.name = "Concrete";
  auto concrete = client_->derive(abstract_class, req);
  ASSERT_TRUE(concrete.ok());
  EXPECT_TRUE(client_->create(concrete->loid, CounterInit(0)).ok());
}

TEST_F(InheritanceTest, InheritFromNonClassRejected) {
  const Loid counter_class = DeriveCounterClass();
  auto instance = client_->create(counter_class, CounterInit(0));
  ASSERT_TRUE(instance.ok());
  EXPECT_EQ(client_->inherit_from(counter_class, instance->loid).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(InheritanceTest, DeriveWithoutNameRejected) {
  wire::DeriveRequest req;
  EXPECT_EQ(client_->derive(LegionObjectLoid(), req).status().code(),
            StatusCode::kInvalidArgument);
}

TEST_F(InheritanceTest, ClassObjectsAreObjects) {
  // "LegionClass is derived from LegionObject; thus, classes are objects in
  // Legion" — a class object answers object-mandatory methods.
  const Loid counter_class = DeriveCounterClass();
  EXPECT_TRUE(client_->ref(counter_class).call(methods::kPing, Buffer{}).ok());
  auto raw = client_->ref(counter_class).call(methods::kIam, Buffer{});
  ASSERT_TRUE(raw.ok());
  Reader r(*raw);
  EXPECT_EQ(Loid::Deserialize(r), counter_class);
}

}  // namespace
}  // namespace legion::core
