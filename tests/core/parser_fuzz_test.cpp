// Random-bytes fuzzing of every wire parser: hostile input must fail
// cleanly (no crash, no hang, no accidental acceptance of garbage as a
// well-formed control message).
#include <gtest/gtest.h>

#include "base/rng.hpp"
#include "core/wire.hpp"
#include "idl/idl.hpp"
#include "persist/opr.hpp"

namespace legion::core {
namespace {

Buffer RandomBytes(Rng& rng, std::size_t max_len) {
  std::vector<std::uint8_t> out(rng.below(max_len + 1));
  for (auto& b : out) b = static_cast<std::uint8_t>(rng.below(256));
  return Buffer{std::move(out)};
}

class WireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(WireFuzz, AllParsersSurviveGarbage) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    const Buffer junk = RandomBytes(rng, 96);
    // Every from_buffer either fails or yields a value — never crashes.
    (void)wire::GetBindingRequest::from_buffer(junk);
    (void)wire::BindingReply::from_buffer(junk);
    (void)wire::CreateRequest::from_buffer(junk);
    (void)wire::CreateReply::from_buffer(junk);
    (void)wire::DeriveRequest::from_buffer(junk);
    (void)wire::CreateReplicatedRequest::from_buffer(junk);
    (void)wire::StoreNewRequest::from_buffer(junk);
    (void)wire::ActivateRequest::from_buffer(junk);
    (void)wire::TransferRequest::from_buffer(junk);
    (void)wire::StartObjectRequest::from_buffer(junk);
    (void)wire::StopObjectRequest::from_buffer(junk);
    (void)wire::HostStateReply::from_buffer(junk);
    (void)wire::LocateClassReply::from_buffer(junk);
    (void)wire::NotifyStartedRequest::from_buffer(junk);
    (void)persist::Opr::from_bytes(junk);
  }
  SUCCEED();
}

TEST_P(WireFuzz, EmptyAndTinyBuffersAlwaysRejectedByStructuredParsers) {
  Rng rng(GetParam());
  for (std::size_t len = 0; len < 8; ++len) {
    Buffer tiny = RandomBytes(rng, len);
    EXPECT_FALSE(wire::CreateReply::from_buffer(tiny).ok());
    EXPECT_FALSE(wire::LocateClassReply::from_buffer(tiny).ok());
    EXPECT_FALSE(persist::Opr::from_bytes(tiny).ok());
  }
}

TEST_P(WireFuzz, IdlParserSurvivesGarbageText) {
  Rng rng(GetParam() ^ 0x1D1);
  for (int i = 0; i < 200; ++i) {
    std::string junk;
    const std::size_t len = rng.below(120);
    for (std::size_t c = 0; c < len; ++c) {
      // Printable-ish ASCII keeps the lexer in interesting territory.
      junk += static_cast<char>(32 + rng.below(95));
    }
    (void)idl::Parse(junk);
  }
  SUCCEED();
}

INSTANTIATE_TEST_SUITE_P(Seeds, WireFuzz,
                         ::testing::Values(11ULL, 222ULL, 3333ULL));

}  // namespace
}  // namespace legion::core
