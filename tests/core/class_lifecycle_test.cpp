// Classes are objects (paper Section 2.1.3): class objects themselves go
// inert, migrate, and come back — and the binding machinery repairs the
// whole responsibility chain when they do.
#include <gtest/gtest.h>

#include "core/test_support.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class ClassLifecycleTest : public SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
    auto reply = client_->create(counter_class_, CounterInit(33));
    ASSERT_TRUE(reply.ok());
    counter_ = reply->loid;
  }

  // The magistrate currently holding the class object.
  MagistrateImpl* ClassOwner() {
    return system_->magistrate_impl(uva_)->manages(counter_class_)
               ? system_->magistrate_impl(uva_)
               : system_->magistrate_impl(doe_);
  }
  Loid ClassOwnerLoid() {
    return ClassOwner() == system_->magistrate_impl(uva_)
               ? system_->magistrate_of(uva_)
               : system_->magistrate_of(doe_);
  }

  void DeactivateClass() {
    wire::LoidRequest req{counter_class_};
    ASSERT_TRUE(client_->ref(ClassOwnerLoid())
                    .call(methods::kDeactivate, req.to_buffer())
                    .ok());
  }

  Loid counter_class_;
  Loid counter_;
};

TEST_F(ClassLifecycleTest, ClassObjectSurvivesDeactivation) {
  DeactivateClass();
  // Direct reference to the class reactivates it with its definition and
  // logical table intact.
  auto raw = client_->ref(counter_class_).call("DescribeClass", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  auto desc = wire::DescribeClassReply::from_buffer(*raw);
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->name, "Counter");
  EXPECT_EQ(desc->class_id, counter_class_.class_id());
}

TEST_F(ClassLifecycleTest, InstanceResolutionReactivatesInertClass) {
  DeactivateClass();
  // A cold client resolving an *instance* forces the Binding Agent down the
  // responsibility chain: the stale class binding is refreshed at the
  // creator (LegionObject), which reactivates the class via its magistrate
  // — then the class serves the instance binding from its restored table.
  auto cold = system_->make_client(doe2_, "cold");
  auto raw = cold->ref(counter_).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 33);
}

TEST_F(ClassLifecycleTest, CreateAfterClassReactivationContinuesSequence) {
  const std::uint64_t seq_before = counter_.class_specific();
  DeactivateClass();
  auto reply = client_->create(counter_class_, CounterInit(1));
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  // next_seq_ was serialized with the class: no LOID reuse after the cycle.
  EXPECT_GT(reply->loid.class_specific(), seq_before);
}

TEST_F(ClassLifecycleTest, ClassObjectMigratesBetweenJurisdictions) {
  const Loid src = ClassOwnerLoid();
  const Loid dst = src == system_->magistrate_of(uva_)
                       ? system_->magistrate_of(doe_)
                       : system_->magistrate_of(uva_);
  wire::TransferRequest move{counter_class_, dst};
  ASSERT_TRUE(client_->ref(src).call(methods::kMove, move.to_buffer()).ok());

  // Both the class and its instances remain fully usable.
  auto reply = client_->create(counter_class_, CounterInit(5));
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();
  auto raw = client_->ref(counter_).call("Get", Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 33);
}

TEST_F(ClassLifecycleTest, LogicalTableSurvivesClassCycle) {
  // Create several instances, cycle the class, and check every row is
  // still served.
  std::vector<Loid> instances = {counter_};
  for (int i = 0; i < 3; ++i) {
    auto reply = client_->create(counter_class_, CounterInit(i));
    ASSERT_TRUE(reply.ok());
    instances.push_back(reply->loid);
  }
  DeactivateClass();
  auto cold = system_->make_client(doe1_, "cold");
  for (const Loid& instance : instances) {
    auto binding = cold->get_binding(instance);
    EXPECT_TRUE(binding.ok())
        << instance.to_string() << ": " << binding.status().to_string();
  }
}

TEST_F(ClassLifecycleTest, ListInstancesAfterCycle) {
  DeactivateClass();
  auto raw = client_->ref(counter_class_).call(methods::kListInstances,
                                               Buffer{});
  ASSERT_TRUE(raw.ok());
  auto reply = wire::LoidListReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply->loids.size(), 1u);
  EXPECT_EQ(reply->loids.front(), counter_);
}

}  // namespace
}  // namespace legion::core
