#include "core/implementation_registry.hpp"

#include <gtest/gtest.h>

#include "core/method_table.hpp"

namespace legion::core {
namespace {

class DummyImpl final : public ObjectImpl {
 public:
  explicit DummyImpl(std::string name) : name_(std::move(name)) {}
  [[nodiscard]] std::string implementation_name() const override {
    return name_;
  }
  void RegisterMethods(MethodTable&) override {}

 private:
  std::string name_;
};

ImplFactory Factory(std::string name) {
  return [name] { return std::make_unique<DummyImpl>(name); };
}

TEST(ImplementationRegistryTest, AddAndInstantiate) {
  ImplementationRegistry registry;
  ASSERT_TRUE(registry.add("a", Factory("a")).ok());
  EXPECT_TRUE(registry.contains("a"));
  auto impls = registry.instantiate("a");
  ASSERT_TRUE(impls.ok());
  ASSERT_EQ(impls->size(), 1u);
  EXPECT_EQ((*impls)[0]->implementation_name(), "a");
}

TEST(ImplementationRegistryTest, RejectsBadNames) {
  ImplementationRegistry registry;
  EXPECT_EQ(registry.add("", Factory("")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.add("a+b", Factory("x")).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.add("a", nullptr).code(), StatusCode::kInvalidArgument);
}

TEST(ImplementationRegistryTest, RejectsDuplicates) {
  ImplementationRegistry registry;
  ASSERT_TRUE(registry.add("a", Factory("a")).ok());
  EXPECT_EQ(registry.add("a", Factory("a")).code(), StatusCode::kAlreadyExists);
}

TEST(ImplementationRegistryTest, CompositeSpecInstantiatesInOrder) {
  ImplementationRegistry registry;
  ASSERT_TRUE(registry.add("derived", Factory("derived")).ok());
  ASSERT_TRUE(registry.add("base", Factory("base")).ok());
  auto impls = registry.instantiate("derived+base");
  ASSERT_TRUE(impls.ok());
  ASSERT_EQ(impls->size(), 2u);
  EXPECT_EQ((*impls)[0]->implementation_name(), "derived");
  EXPECT_EQ((*impls)[1]->implementation_name(), "base");
}

TEST(ImplementationRegistryTest, UnknownSpecPartFails) {
  ImplementationRegistry registry;
  ASSERT_TRUE(registry.add("a", Factory("a")).ok());
  EXPECT_EQ(registry.instantiate("a+missing").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(registry.instantiate("").status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ImplementationRegistryTest, SplitAndJoinSpec) {
  EXPECT_EQ(ImplementationRegistry::SplitSpec("a+b+c"),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(ImplementationRegistry::SplitSpec("a"),
            (std::vector<std::string>{"a"}));
  EXPECT_TRUE(ImplementationRegistry::SplitSpec("").empty());
  EXPECT_EQ(ImplementationRegistry::SplitSpec("+a++b+"),
            (std::vector<std::string>{"a", "b"}));

  EXPECT_EQ(ImplementationRegistry::JoinSpec({"a", "b"}), "a+b");
  // Deduplicates preserving first occurrence — repeated InheritFrom of the
  // same base must not double the implementation.
  EXPECT_EQ(ImplementationRegistry::JoinSpec({"a", "b", "a"}), "a+b");
  EXPECT_EQ(ImplementationRegistry::JoinSpec({}), "");
}

TEST(ImplementationRegistryTest, NamesAreSorted) {
  ImplementationRegistry registry;
  ASSERT_TRUE(registry.add("zeta", Factory("zeta")).ok());
  ASSERT_TRUE(registry.add("alpha", Factory("alpha")).ok());
  EXPECT_EQ(registry.names(), (std::vector<std::string>{"alpha", "zeta"}));
}

}  // namespace
}  // namespace legion::core
