// Miss-stampede control on the Section 4.1.2 binding path: concurrent
// resolve() misses for one LOID share a single Binding-Agent consult
// (singleflight), and a NotFound verdict is negative-cached briefly so a
// storm of lookups for a dead LOID does not re-consult per caller. Run
// under TSan in CI. Typed over ThreadRuntime and EpollRuntime: the
// singleflight discipline must hold whether the Binding Agent runs on its
// own thread or as an actor mailbox on the M:N worker pool.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/comm.hpp"
#include "core/wire.hpp"
#include "rt/epoll_runtime.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::core {
namespace {

constexpr std::uint64_t kSeed = 31;

template <typename RuntimeT>
std::unique_ptr<RuntimeT> MakeRuntime();

template <>
std::unique_ptr<rt::ThreadRuntime> MakeRuntime() {
  return std::make_unique<rt::ThreadRuntime>(kSeed);
}

template <>
std::unique_ptr<rt::EpollRuntime> MakeRuntime() {
  rt::EpollOptions options;
  options.seed = kSeed;
  return std::make_unique<rt::EpollRuntime>(options);
}

template <typename RuntimeT>
class ResolverSingleflightTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto j = runtime_->topology().add_jurisdiction("j");
    host_ = runtime_->topology().add_host("h", {j});

    target_ = std::make_unique<rt::Messenger>(
        *runtime_, host_, "echo", rt::ExecutionMode::kServiced,
        [](rt::ServerContext&, Reader&) -> Result<Buffer> {
          return Buffer::FromString("A");
        });

    // A stub Binding Agent that is deliberately SLOW: the 100 ms consult
    // holds the flight open long enough that every concurrently-started
    // resolver thread attaches to it rather than racing past.
    ba_ = std::make_unique<rt::Messenger>(
        *runtime_, host_, "stub-ba", rt::ExecutionMode::kServiced,
        [this](rt::ServerContext& ctx, Reader& args) -> Result<Buffer> {
          if (ctx.call.method != std::string(methods::kGetBinding)) {
            return UnimplementedError("stub only binds");
          }
          auto req = wire::GetBindingRequest::Deserialize(args);
          if (!args.ok()) return InvalidArgumentError("bad args");
          consults_served_.fetch_add(1);
          std::this_thread::sleep_for(std::chrono::milliseconds(100));
          if (req.loid == Loid{60, 1}) {
            return wire::BindingReply{
                Binding{req.loid,
                        ObjectAddress{
                            ObjectAddressElement::Sim(target_->endpoint())},
                        kSimTimeNever}}
                .to_buffer();
          }
          return NotFoundError("unknown loid");
        });

    SystemHandles handles;
    handles.default_binding_agent =
        Binding{Loid{kLegionBindingAgentClassId, 1},
                ObjectAddress{ObjectAddressElement::Sim(ba_->endpoint())},
                kSimTimeNever};
    client_ = std::make_unique<rt::Messenger>(
        *runtime_, host_, "client", rt::ExecutionMode::kDriver, nullptr);
    resolver_ = std::make_unique<Resolver>(*client_, handles, 16, Rng(7));
  }

  void TearDown() override {
    resolver_.reset();
    client_.reset();
    ba_.reset();
    target_.reset();
    runtime_.reset();
  }

  std::unique_ptr<RuntimeT> runtime_ = MakeRuntime<RuntimeT>();
  HostId host_;
  std::unique_ptr<rt::Messenger> target_;
  std::unique_ptr<rt::Messenger> ba_;
  std::unique_ptr<rt::Messenger> client_;
  std::unique_ptr<Resolver> resolver_;
  std::atomic<std::uint64_t> consults_served_{0};
};

using SingleflightRuntimes =
    ::testing::Types<rt::ThreadRuntime, rt::EpollRuntime>;
TYPED_TEST_SUITE(ResolverSingleflightTest, SingleflightRuntimes);

TYPED_TEST(ResolverSingleflightTest, ColdMissStampedeConsultsOnce) {
  constexpr int kThreads = 8;
  std::atomic<bool> go{false};
  std::atomic<int> ok{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      auto binding = this->resolver_->resolve(Loid{60, 1}, 5'000'000);
      EXPECT_TRUE(binding.ok()) << binding.status().to_string();
      if (binding.ok() && binding->valid()) ok.fetch_add(1);
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();

  EXPECT_EQ(ok.load(), kThreads);
  // The hard guarantee: one cold LOID, N concurrent resolvers, exactly one
  // Binding-Agent consult — observed at both ends of the wire.
  EXPECT_EQ(this->resolver_->stats().binding_agent_consults, 1u);
  EXPECT_EQ(this->consults_served_.load(), 1u);
  // Everyone else either rode the flight or (arriving after it landed) hit
  // the now-warm cache.
  EXPECT_GE(this->resolver_->stats().coalesced, 1u);
  EXPECT_EQ(this->resolver_->stats().coalesced +
                this->resolver_->cache().stats().hits,
            static_cast<std::uint64_t>(kThreads - 1));
}

TYPED_TEST(ResolverSingleflightTest, NotFoundStormIsAbsorbedByNegativeCache) {
  // Four concurrent resolvers for a dead LOID: one consult, shared verdict.
  constexpr int kThreads = 4;
  std::atomic<bool> go{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      while (!go.load()) std::this_thread::yield();
      auto binding = this->resolver_->resolve(Loid{60, 9}, 5'000'000);
      EXPECT_EQ(binding.status().code(), StatusCode::kNotFound);
    });
  }
  go.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(this->resolver_->stats().binding_agent_consults, 1u);

  // The storm after the verdict: short-TTL negative entries answer without
  // consulting again.
  for (int i = 0; i < 10; ++i) {
    auto binding = this->resolver_->resolve(Loid{60, 9}, 5'000'000);
    EXPECT_EQ(binding.status().code(), StatusCode::kNotFound);
  }
  EXPECT_EQ(this->resolver_->stats().binding_agent_consults, 1u);
  EXPECT_GE(this->resolver_->stats().negative_hits, 10u);

  // Real-clock runtimes use wall time: once the TTL lapses the verdict is
  // re-checked, so a recreated object becomes reachable again.
  std::this_thread::sleep_for(
      std::chrono::microseconds(Resolver::kNegativeTtlUs + 100'000));
  auto binding = this->resolver_->resolve(Loid{60, 9}, 5'000'000);
  EXPECT_EQ(binding.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(this->resolver_->stats().binding_agent_consults, 2u);
}

TYPED_TEST(ResolverSingleflightTest, RecreatedLoidSupersedesNegativeEntry) {
  ASSERT_EQ(this->resolver_->resolve(Loid{60, 9}, 5'000'000).status().code(),
            StatusCode::kNotFound);
  ASSERT_EQ(this->resolver_->resolve(Loid{60, 9}, 5'000'000).status().code(),
            StatusCode::kNotFound);  // negative-cached
  // The object comes back (an AddBinding analogue): the positive entry must
  // win immediately, without waiting out the TTL.
  this->resolver_->add_binding(Binding{
      Loid{60, 9},
      ObjectAddress{ObjectAddressElement::Sim(this->target_->endpoint())},
      kSimTimeNever});
  auto binding = this->resolver_->resolve(Loid{60, 9}, 5'000'000);
  ASSERT_TRUE(binding.ok()) << binding.status().to_string();
  EXPECT_EQ(this->resolver_->stats().binding_agent_consults, 1u);
}

TYPED_TEST(ResolverSingleflightTest, FollowerTimesOutWithoutKillingTheFlight) {
  Result<Binding> leader_result = InternalError("unset");
  std::thread leader([&] {
    leader_result = this->resolver_->resolve(Loid{60, 1}, 5'000'000);
  });
  // Wait until the leader's consult is demonstrably in flight (the stub BA
  // has started serving it), then join it with a timeout far shorter than
  // the remaining ~100 ms of consult.
  while (this->consults_served_.load() == 0) std::this_thread::yield();
  auto follower = this->resolver_->resolve(Loid{60, 1}, 20'000);
  leader.join();

  ASSERT_TRUE(leader_result.ok()) << leader_result.status().to_string();
  if (!follower.ok()) {
    // The expected interleaving: the follower attached and gave up early;
    // the leader's consult was unaffected.
    EXPECT_EQ(follower.status().code(), StatusCode::kTimeout);
    EXPECT_EQ(this->resolver_->stats().coalesced, 1u);
  }
  EXPECT_EQ(this->resolver_->stats().binding_agent_consults, 1u);
}

}  // namespace
}  // namespace legion::core
