#include "net/topology.hpp"

#include <gtest/gtest.h>

namespace legion::net {
namespace {

class TopologyTest : public ::testing::Test {
 protected:
  void SetUp() override {
    uva_ = topo_.add_jurisdiction("uva");
    doe_ = topo_.add_jurisdiction("doe");
    h1_ = topo_.add_host("uva-1", {uva_});
    h2_ = topo_.add_host("uva-2", {uva_});
    h3_ = topo_.add_host("doe-1", {doe_});
    shared_ = topo_.add_host("bridge", {uva_, doe_});  // non-disjoint
  }

  Topology topo_;
  JurisdictionId uva_, doe_;
  HostId h1_, h2_, h3_, shared_;
};

TEST_F(TopologyTest, LooksUpHostsAndJurisdictions) {
  ASSERT_NE(topo_.host(h1_), nullptr);
  EXPECT_EQ(topo_.host(h1_)->name, "uva-1");
  ASSERT_NE(topo_.jurisdiction(uva_), nullptr);
  EXPECT_EQ(topo_.jurisdiction(uva_)->name, "uva");
  EXPECT_EQ(topo_.host(HostId{999}), nullptr);
  EXPECT_EQ(topo_.jurisdiction(JurisdictionId{999}), nullptr);
}

TEST_F(TopologyTest, HostsInJurisdiction) {
  const auto uva_hosts = topo_.hosts_in(uva_);
  EXPECT_EQ(uva_hosts.size(), 3u);  // h1, h2, bridge
  const auto doe_hosts = topo_.hosts_in(doe_);
  EXPECT_EQ(doe_hosts.size(), 2u);  // h3, bridge
}

TEST_F(TopologyTest, ClassifiesSameHost) {
  EXPECT_EQ(topo_.classify(h1_, h1_), LatencyClass::kSameHost);
}

TEST_F(TopologyTest, ClassifiesIntraJurisdiction) {
  EXPECT_EQ(topo_.classify(h1_, h2_), LatencyClass::kIntraJurisdiction);
}

TEST_F(TopologyTest, ClassifiesCrossJurisdiction) {
  EXPECT_EQ(topo_.classify(h1_, h3_), LatencyClass::kCrossJurisdiction);
}

TEST_F(TopologyTest, NonDisjointHostBridgesJurisdictions) {
  // Paper Section 2.2: jurisdictions are potentially non-disjoint.
  EXPECT_EQ(topo_.classify(h1_, shared_), LatencyClass::kIntraJurisdiction);
  EXPECT_EQ(topo_.classify(h3_, shared_), LatencyClass::kIntraJurisdiction);
}

TEST_F(TopologyTest, LatencyOrderingMatchesLocality) {
  // Same-host < intra-jurisdiction < cross-jurisdiction: the premise of the
  // paper's "most accesses will be local" argument.
  LatencyProfile p;
  p.jitter = 0.0;
  topo_.set_latency_profile(p);
  Rng rng(1);
  const SimTime local = topo_.sample_latency(h1_, h1_, rng);
  const SimTime intra = topo_.sample_latency(h1_, h2_, rng);
  const SimTime cross = topo_.sample_latency(h1_, h3_, rng);
  EXPECT_LT(local, intra);
  EXPECT_LT(intra, cross);
  EXPECT_EQ(local, p.same_host_us);
  EXPECT_EQ(intra, p.intra_jurisdiction_us);
  EXPECT_EQ(cross, p.cross_jurisdiction_us);
}

TEST_F(TopologyTest, JitterBoundsSamples) {
  LatencyProfile p;
  p.intra_jurisdiction_us = 1000;
  p.jitter = 0.2;
  topo_.set_latency_profile(p);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const SimTime t = topo_.sample_latency(h1_, h2_, rng);
    EXPECT_GE(t, 800);
    EXPECT_LE(t, 1200);
  }
}

TEST_F(TopologyTest, LatencyNeverBelowOne) {
  LatencyProfile p;
  p.same_host_us = 0;
  p.jitter = 0.0;
  topo_.set_latency_profile(p);
  Rng rng(5);
  EXPECT_GE(topo_.sample_latency(h1_, h1_, rng), 1);
}

TEST(LatencyClassTest, Names) {
  EXPECT_EQ(to_string(LatencyClass::kSameHost), "same-host");
  EXPECT_EQ(to_string(LatencyClass::kIntraJurisdiction), "intra-jurisdiction");
  EXPECT_EQ(to_string(LatencyClass::kCrossJurisdiction), "cross-jurisdiction");
}

}  // namespace
}  // namespace legion::net
