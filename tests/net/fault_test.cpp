#include "net/fault.hpp"

#include <gtest/gtest.h>

namespace legion::net {
namespace {

TEST(FaultPlanTest, DefaultHasNoFaults) {
  FaultPlan plan;
  EXPECT_FALSE(plan.any_faults());
  Rng rng(1);
  EXPECT_FALSE(plan.should_drop(HostId{1}, HostId{2},
                                LatencyClass::kCrossJurisdiction, rng));
}

TEST(FaultPlanTest, PartitionIsSymmetric) {
  FaultPlan plan;
  plan.partition(HostId{1}, HostId{2});
  EXPECT_TRUE(plan.partitioned(HostId{1}, HostId{2}));
  EXPECT_TRUE(plan.partitioned(HostId{2}, HostId{1}));
  EXPECT_FALSE(plan.partitioned(HostId{1}, HostId{3}));
  plan.heal(HostId{2}, HostId{1});
  EXPECT_FALSE(plan.partitioned(HostId{1}, HostId{2}));
}

TEST(FaultPlanTest, PartitionDropsAllTraffic) {
  FaultPlan plan;
  plan.partition(HostId{1}, HostId{2});
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(plan.should_drop(HostId{1}, HostId{2},
                                 LatencyClass::kIntraJurisdiction, rng));
  }
}

TEST(FaultPlanTest, DownHostDropsBothDirections) {
  FaultPlan plan;
  plan.take_host_down(HostId{3});
  Rng rng(1);
  EXPECT_TRUE(plan.should_drop(HostId{3}, HostId{1},
                               LatencyClass::kIntraJurisdiction, rng));
  EXPECT_TRUE(plan.should_drop(HostId{1}, HostId{3},
                               LatencyClass::kIntraJurisdiction, rng));
  plan.bring_host_up(HostId{3});
  EXPECT_FALSE(plan.should_drop(HostId{1}, HostId{3},
                                LatencyClass::kIntraJurisdiction, rng));
}

TEST(FaultPlanTest, DropProbabilityIsPerClass) {
  FaultPlan plan;
  plan.set_drop_probability(LatencyClass::kCrossJurisdiction, 1.0);
  Rng rng(1);
  EXPECT_TRUE(plan.should_drop(HostId{1}, HostId{2},
                               LatencyClass::kCrossJurisdiction, rng));
  EXPECT_FALSE(plan.should_drop(HostId{1}, HostId{2},
                                LatencyClass::kIntraJurisdiction, rng));
}

TEST(FaultPlanTest, FractionalDropRateApproximatesProbability) {
  FaultPlan plan;
  plan.set_drop_probability(LatencyClass::kCrossJurisdiction, 0.3);
  Rng rng(77);
  int drops = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    if (plan.should_drop(HostId{1}, HostId{2},
                         LatencyClass::kCrossJurisdiction, rng)) {
      ++drops;
    }
  }
  EXPECT_NEAR(static_cast<double>(drops) / trials, 0.3, 0.01);
}

TEST(FaultPlanTest, AnyFaultsDetectsEachKind) {
  {
    FaultPlan plan;
    plan.partition(HostId{1}, HostId{2});
    EXPECT_TRUE(plan.any_faults());
  }
  {
    FaultPlan plan;
    plan.take_host_down(HostId{1});
    EXPECT_TRUE(plan.any_faults());
  }
  {
    FaultPlan plan;
    plan.set_drop_probability(LatencyClass::kSameHost, 0.01);
    EXPECT_TRUE(plan.any_faults());
  }
}

}  // namespace
}  // namespace legion::net
