#include "net/address.hpp"

#include <gtest/gtest.h>

namespace legion::net {
namespace {

TEST(NetworkAddressTest, DefaultIsInvalid) {
  NetworkAddress a;
  EXPECT_FALSE(a.valid());
  EXPECT_EQ(a.to_string(), "invalid");
}

TEST(NetworkAddressTest, SimEncodesEndpoint) {
  NetworkAddress a = NetworkAddress::Sim(EndpointId{0xABCDEF0123456789ULL});
  EXPECT_EQ(a.type(), AddressType::kSim);
  EXPECT_EQ(a.sim_endpoint().value, 0xABCDEF0123456789ULL);
}

TEST(NetworkAddressTest, IpV4UsesPaperLayout) {
  // Paper Section 3.4: 32 bits IP, 16 bits port, optional 32-bit node.
  NetworkAddress a = NetworkAddress::IpV4(0xC0A80001 /*192.168.0.1*/, 8080, 3);
  EXPECT_EQ(a.type(), AddressType::kIpV4);
  EXPECT_EQ(a.ipv4_address(), 0xC0A80001u);
  EXPECT_EQ(a.ipv4_port(), 8080);
  EXPECT_EQ(a.ipv4_node(), 3u);
  EXPECT_EQ(a.to_string(), "ip:192.168.0.1:8080/3");
}

TEST(NetworkAddressTest, PayloadIs256Bits) {
  EXPECT_EQ(NetworkAddress::kPayloadBytes, 32u);  // the paper's 256 bits
}

TEST(NetworkAddressTest, SerializeRoundTrips) {
  NetworkAddress in = NetworkAddress::IpV4(0x0A000001, 443, 0);
  Buffer buf;
  Writer w(buf);
  in.Serialize(w);
  Reader r(buf);
  NetworkAddress out = NetworkAddress::Deserialize(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(out, in);
}

TEST(NetworkAddressTest, TruncatedPayloadDeserializesInvalid) {
  Buffer buf;
  Writer w(buf);
  w.u32(static_cast<std::uint32_t>(AddressType::kSim));
  w.bytes(std::vector<std::uint8_t>{1, 2, 3});  // not 32 bytes
  Reader r(buf);
  EXPECT_FALSE(NetworkAddress::Deserialize(r).valid());
}

TEST(NetworkAddressTest, EqualityComparesTypeAndPayload) {
  EXPECT_EQ(NetworkAddress::Sim(EndpointId{5}), NetworkAddress::Sim(EndpointId{5}));
  EXPECT_FALSE(NetworkAddress::Sim(EndpointId{5}) ==
               NetworkAddress::Sim(EndpointId{6}));
}

class SimEndpointSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimEndpointSweep, EndpointRoundTrips) {
  NetworkAddress a = NetworkAddress::Sim(EndpointId{GetParam()});
  Buffer buf;
  Writer w(buf);
  a.Serialize(w);
  Reader r(buf);
  EXPECT_EQ(NetworkAddress::Deserialize(r).sim_endpoint().value, GetParam());
}

INSTANTIATE_TEST_SUITE_P(Ids, SimEndpointSweep,
                         ::testing::Values(1ULL, 0xFFULL, 0x100000000ULL,
                                           UINT64_MAX));

}  // namespace
}  // namespace legion::net
