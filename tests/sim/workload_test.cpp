#include "sim/workload.hpp"

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "sim/table.hpp"

namespace legion::sim {
namespace {

TEST(ZipfSamplerTest, UniformWhenSZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.sample(rng)];
  for (int c : counts) EXPECT_NEAR(c, trials / 10, trials / 80);
}

TEST(ZipfSamplerTest, SkewConcentratesOnHead) {
  ZipfSampler zipf(100, 1.0);
  Rng rng(2);
  std::vector<int> counts(100, 0);
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) ++counts[zipf.sample(rng)];
  // Rank 0 should dominate rank 50 by roughly 50x under s=1.
  EXPECT_GT(counts[0], counts[50] * 20);
  // Monotone-ish decay on the head.
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[1], counts[5]);
}

TEST(ZipfSamplerTest, SamplesStayInRange) {
  ZipfSampler zipf(7, 1.2);
  Rng rng(3);
  for (int i = 0; i < 10'000; ++i) EXPECT_LT(zipf.sample(rng), 7u);
}

TEST(ZipfSamplerTest, SingleElementAlwaysZero) {
  ZipfSampler zipf(1, 1.0);
  Rng rng(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(zipf.sample(rng), 0u);
}

TEST(LocalityMixTest, FullLocalityStaysInPartition) {
  LocalityMix mix(100, 4, 1.0);
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t t = mix.sample(2, rng);
    EXPECT_GE(t, 50u);
    EXPECT_LT(t, 75u);
  }
}

TEST(LocalityMixTest, ZeroLocalityCoversEverything) {
  LocalityMix mix(100, 4, 0.0);
  Rng rng(6);
  std::vector<bool> seen(100, false);
  for (int i = 0; i < 20'000; ++i) seen[mix.sample(0, rng)] = true;
  EXPECT_EQ(std::count(seen.begin(), seen.end(), true), 100);
}

TEST(LocalityMixTest, MixedLocalityIsMostlyLocal) {
  LocalityMix mix(100, 4, 0.9);
  Rng rng(7);
  int local = 0;
  const int trials = 100'000;
  for (int i = 0; i < trials; ++i) {
    const std::size_t t = mix.sample(1, rng);
    if (t >= 25 && t < 50) ++local;
  }
  // 90% explicit local + ~2.5% of the random remainder lands local too.
  EXPECT_NEAR(static_cast<double>(local) / trials, 0.925, 0.01);
}

TEST(LocalityMixTest, LastPartitionAbsorbsRemainder) {
  LocalityMix mix(10, 3, 1.0);  // partitions of 3,3,4
  Rng rng(8);
  for (int i = 0; i < 1000; ++i) {
    const std::size_t t = mix.sample(2, rng);
    EXPECT_GE(t, 6u);
    EXPECT_LT(t, 10u);
  }
}

TEST(TableTest, FormatsAlignedColumns) {
  Table t("demo", {"name", "value"});
  t.row({"alpha", "1"});
  t.row({"b", "12345"});
  // Just exercise the printer (visual check happens in bench output).
  t.print(stderr);
  EXPECT_EQ(Table::num(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace legion::sim
