// Model-based randomized testing: drive the whole system with a random
// sequence of lifecycle operations and check it against a trivial oracle.
//
// The oracle tracks, per object: expected counter value and liveness. After
// every operation the system must agree — regardless of how the operation
// sequence interleaved creations, invocations, deactivations, migrations,
// copies, and deletions. Seeds are swept via TEST_P; each run is
// deterministic.
#include <gtest/gtest.h>

#include <map>
#include <tuple>

#include "core/test_support.hpp"
#include "rt/thread_runtime.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;

struct ModelObject {
  std::int64_t count = 0;
  int jurisdiction = 0;  // which magistrate manages it (0 = uva, 1 = doe)
  bool alive = true;
};

enum class Kernel { kSim = 0, kThreads = 1 };

class ModelFuzzTest
    : public ::testing::TestWithParam<std::tuple<Kernel, std::uint64_t>> {
 protected:
  static std::uint64_t Seed() { return std::get<1>(GetParam()); }

  void SetUp() override {
    if (std::get<0>(GetParam()) == Kernel::kSim) {
      runtime_ = std::make_unique<rt::SimRuntime>(Seed());
    } else {
      runtime_ = std::make_unique<rt::ThreadRuntime>(Seed());
    }
    uva_ = runtime_->topology().add_jurisdiction("uva");
    doe_ = runtime_->topology().add_jurisdiction("doe");
    hosts_[0] = runtime_->topology().add_host("uva-1", {uva_}, 1e9);
    runtime_->topology().add_host("uva-2", {uva_}, 1e9);
    hosts_[1] = runtime_->topology().add_host("doe-1", {doe_}, 1e9);
    runtime_->topology().add_host("doe-2", {doe_}, 1e9);

    system_ = std::make_unique<LegionSystem>(*runtime_, SystemConfig{});
    ASSERT_TRUE(system_->registry()
                    .add(std::string(testing::CounterImpl::kName),
                         [] {
                           return std::make_unique<testing::CounterImpl>();
                         })
                    .ok());
    ASSERT_TRUE(system_->bootstrap().ok());
    client_ = system_->make_client(hosts_[0]);

    wire::DeriveRequest req;
    req.name = "Counter";
    req.instance_impl = std::string(testing::CounterImpl::kName);
    auto reply = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(reply.ok());
    counter_class_ = reply->loid;
    magistrates_[0] = system_->magistrate_of(uva_);
    magistrates_[1] = system_->magistrate_of(doe_);
  }

  Loid RandomLive(Rng& rng) {
    std::vector<Loid> live;
    for (const auto& [loid, m] : model_) {
      if (m.alive) live.push_back(loid);
    }
    if (live.empty()) return Loid{};
    return live[rng.below(live.size())];
  }

  std::unique_ptr<rt::Runtime> runtime_;
  std::unique_ptr<LegionSystem> system_;
  std::unique_ptr<Client> client_;
  JurisdictionId uva_, doe_;
  HostId hosts_[2];
  Loid magistrates_[2];
  Loid counter_class_;
  std::map<Loid, ModelObject> model_;
};

TEST_P(ModelFuzzTest, RandomLifecycleSequencesAgreeWithOracle) {
  Rng rng(Seed() ^ 0xF00D);
  constexpr int kSteps = 160;

  for (int step = 0; step < kSteps; ++step) {
    const std::uint64_t op = rng.below(100);
    if (op < 25 || model_.empty()) {
      // Create in a random jurisdiction.
      const int j = static_cast<int>(rng.below(2));
      const auto start = rng.between(-50, 50);
      auto reply = client_->create(counter_class_, CounterInit(start),
                                   {magistrates_[j]});
      ASSERT_TRUE(reply.ok()) << reply.status().to_string();
      model_[reply->loid] = ModelObject{start, j, true};
    } else if (op < 55) {
      // Increment a live object.
      const Loid target = RandomLive(rng);
      if (!target.valid()) continue;
      auto raw = client_->ref(target).call("Increment", Buffer{});
      ASSERT_TRUE(raw.ok()) << raw.status().to_string();
      model_[target].count += 1;
      ASSERT_EQ(ReadI64(*raw), model_[target].count);
    } else if (op < 70) {
      // Deactivate (idempotent if already inert).
      const Loid target = RandomLive(rng);
      if (!target.valid()) continue;
      wire::LoidRequest req{target};
      ASSERT_TRUE(client_->ref(magistrates_[model_[target].jurisdiction])
                      .call(methods::kDeactivate, req.to_buffer())
                      .ok());
    } else if (op < 85) {
      // Move to the other jurisdiction.
      const Loid target = RandomLive(rng);
      if (!target.valid()) continue;
      const int from = model_[target].jurisdiction;
      wire::TransferRequest req{target, magistrates_[1 - from]};
      ASSERT_TRUE(client_->ref(magistrates_[from])
                      .call(methods::kMove, req.to_buffer())
                      .ok())
          << "step " << step;
      model_[target].jurisdiction = 1 - from;
    } else {
      // Delete.
      const Loid target = RandomLive(rng);
      if (!target.valid()) continue;
      ASSERT_TRUE(client_->delete_object(counter_class_, target).ok());
      model_[target].alive = false;
    }
  }

  // Final audit: every live object answers with the oracle's count; every
  // deleted object is unreachable.
  for (const auto& [loid, m] : model_) {
    auto raw = client_->ref(loid).call("Get", Buffer{});
    if (m.alive) {
      ASSERT_TRUE(raw.ok()) << loid.to_string() << ": "
                            << raw.status().to_string();
      EXPECT_EQ(ReadI64(*raw), m.count) << loid.to_string();
    } else {
      EXPECT_FALSE(raw.ok()) << loid.to_string() << " should be deleted";
    }
  }

  // Management-plane invariant: every live object is managed by exactly the
  // magistrate the model says, and by no other.
  MagistrateImpl* impls[2] = {system_->magistrate_impl(uva_),
                              system_->magistrate_impl(doe_)};
  for (const auto& [loid, m] : model_) {
    if (!m.alive) {
      EXPECT_FALSE(impls[0]->manages(loid));
      EXPECT_FALSE(impls[1]->manages(loid));
    } else {
      EXPECT_TRUE(impls[m.jurisdiction]->manages(loid)) << loid.to_string();
      EXPECT_FALSE(impls[1 - m.jurisdiction]->manages(loid))
          << loid.to_string();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, ModelFuzzTest,
    ::testing::Combine(::testing::Values(Kernel::kSim, Kernel::kThreads),
                       ::testing::Values(1ULL, 42ULL, 1995ULL, 0xC0FFEEULL,
                                         987654321ULL)));

}  // namespace
}  // namespace legion::core
