// End-to-end observability over a 3-host sim deployment: a real workload's
// spans reconstruct into connected per-call trees, the exported Chrome
// trace is structurally sound, and the fleet plane's merged rollups reach
// the MonitorObject and come back over the wire.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>

#include "core/monitor_object.hpp"
#include "core/system.hpp"
#include "core/well_known.hpp"
#include "obs/trace_export.hpp"
#include "rt/epoll_runtime.hpp"
#include "rt/sim_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace legion::core {
namespace {

// Shared structural check: group invoke-opened spans per trace and verify
// each trace is one connected tree — exactly one root, every parent link
// lands on a span of the same trace, and every reply/serve leg closes a
// span its trace opened.
template <typename Hops>
void VerifySpanTrees(const Hops& hops) {
  std::map<std::uint64_t, std::map<std::uint64_t, std::uint64_t>> trees;
  for (const auto& h : hops) {
    if (h.kind != obs::HopKind::kInvoke) continue;
    ASSERT_NE(h.trace_id, 0u);
    ASSERT_NE(h.span_id, 0u);
    trees[h.trace_id][h.span_id] = h.parent_span_id;
  }
  ASSERT_FALSE(trees.empty());
  for (const auto& [trace, parent_of] : trees) {
    int roots = 0;
    for (const auto& [span, parent] : parent_of) {
      if (parent == 0) {
        ++roots;
      } else {
        EXPECT_TRUE(parent_of.count(parent))
            << "trace " << trace << ": span " << span
            << " parents unknown span " << parent;
      }
    }
    EXPECT_EQ(roots, 1) << "trace " << trace << " is not a single tree";
  }
  for (const auto& h : hops) {
    if (h.kind == obs::HopKind::kInvoke ||
        h.kind == obs::HopKind::kBounce ||
        h.kind == obs::HopKind::kActivate) {
      continue;
    }
    ASSERT_TRUE(trees.count(h.trace_id));
    EXPECT_TRUE(trees[h.trace_id].count(h.span_id))
        << to_string(h.kind) << " leg closes unopened span " << h.span_id;
  }
}

struct Deployment {
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<LegionSystem> system;
  JurisdictionId jurisdiction;
  std::vector<HostId> hosts;
};

Deployment Deploy(std::uint64_t seed) {
  Deployment d;
  d.runtime = std::make_unique<rt::SimRuntime>(seed);
  d.jurisdiction = d.runtime->topology().add_jurisdiction("j");
  for (int h = 0; h < 3; ++h) {
    d.hosts.push_back(
        d.runtime->topology().add_host("h" + std::to_string(h),
                                       {d.jurisdiction}, 1e9));
  }
  d.system = std::make_unique<LegionSystem>(*d.runtime, SystemConfig{});
  EXPECT_TRUE(sim::RegisterSampleObjects(d.system->registry()).ok());
  EXPECT_TRUE(d.system->bootstrap().ok());
  return d;
}

Loid MakeWorker(Client& client, LegionSystem& system, JurisdictionId jur) {
  wire::DeriveRequest req;
  req.name = "ObsWorker";
  req.instance_impl = std::string(sim::WorkerImpl::kName);
  req.candidate_magistrates = {system.magistrate_of(jur)};
  auto derived = client.derive(LegionObjectLoid(), req);
  EXPECT_TRUE(derived.ok());
  if (!derived.ok()) return Loid{};
  auto created = client.create(derived->loid, sim::WorkerInit(0, 0));
  EXPECT_TRUE(created.ok());
  return created.ok() ? created->loid : Loid{};
}

TEST(Observability, WorkloadSpansFormConnectedTreesAndExportCleanly) {
  Deployment d = Deploy(404);
  auto setup = d.system->make_client(d.hosts[0], "setup");
  const Loid worker = MakeWorker(*setup, *d.system, d.jurisdiction);
  ASSERT_TRUE(worker.valid());

  // Clients on every host drive the worker so hops span all three hosts.
  for (int h = 0; h < 3; ++h) {
    auto client = d.system->make_client(d.hosts[h], "c" + std::to_string(h));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(client->ref(worker).call("Noop", Buffer{}).ok());
    }
  }

  const auto hops =
      d.runtime->traces().last(d.runtime->traces().capacity());
  ASSERT_FALSE(hops.empty());

  VerifySpanTrees(hops);

  // Export and spot-check the file; full JSON validation runs in CI.
  const std::string path = ::testing::TempDir() + "/legion_obs_trace.json";
  ASSERT_TRUE(obs::WriteChromeTraceFile(hops, path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream content;
  content << in.rdbuf();
  const std::string json = content.str();
  EXPECT_EQ(json.front(), '{');
  EXPECT_NE(json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  std::remove(path.c_str());
}

// The same workload over the M:N socket runtime: span identity rides the
// 49-byte frame header (trace_id/span_id/parent_span_id), so the trees must
// reconstruct just as connectedly when every hop crosses a real socket and
// handlers run on the shared worker pool.
TEST(Observability, WorkloadSpansFormConnectedTreesOverEpoll) {
  rt::EpollRuntime runtime;
  auto jurisdiction = runtime.topology().add_jurisdiction("j");
  std::vector<HostId> hosts;
  for (int h = 0; h < 3; ++h) {
    hosts.push_back(runtime.topology().add_host("h" + std::to_string(h),
                                                {jurisdiction}, 1e9));
  }
  LegionSystem system(runtime, SystemConfig{});
  ASSERT_TRUE(sim::RegisterSampleObjects(system.registry()).ok());
  ASSERT_TRUE(system.bootstrap().ok());

  auto setup = system.make_client(hosts[0], "setup");
  const Loid worker = MakeWorker(*setup, system, jurisdiction);
  ASSERT_TRUE(worker.valid());

  for (int h = 0; h < 3; ++h) {
    auto client = system.make_client(hosts[h], "c" + std::to_string(h));
    for (int i = 0; i < 5; ++i) {
      ASSERT_TRUE(client->ref(worker).call("Noop", Buffer{}).ok());
    }
  }
  // Calls are synchronous, but the serve-side span close races the reply by
  // one mailbox hop: settle before snapshotting the ring.
  runtime.run_until_idle();

  const auto hops = runtime.traces().last(runtime.traces().capacity());
  ASSERT_FALSE(hops.empty());
  VerifySpanTrees(hops);
}

TEST(Observability, FleetRollupsReachTheMonitorOverTheWire) {
  Deployment d = Deploy(405);
  auto setup = d.system->make_client(d.hosts[0], "setup");
  const Loid worker = MakeWorker(*setup, *d.system, d.jurisdiction);
  ASSERT_TRUE(worker.valid());
  for (int h = 0; h < 3; ++h) {
    auto client = d.system->make_client(d.hosts[h], "c" + std::to_string(h));
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(client->ref(worker).call("Noop", Buffer{}).ok());
    }
  }

  // Force a publication from every host (the shell's `fleet` path), let the
  // fire-and-forget reports land, then read the rollup back as a client.
  auto client = d.system->make_client(d.hosts[0], "fleet-reader");
  for (int h = 0; h < 3; ++h) {
    ASSERT_TRUE(client->ref(d.system->host_object_of(d.hosts[h]))
                    .call(methods::kPublishMetrics, Buffer{})
                    .ok());
  }
  d.runtime->run_until_idle();
  auto raw = client->ref(d.system->monitor_loid())
                 .call(methods::kGetFleet, Buffer{});
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  auto reply = FleetReply::from_buffer(*raw);
  ASSERT_TRUE(reply.ok()) << reply.status().to_string();

  // Every host reported; the serving host's merged service histogram gives
  // a real p99; request counts only grow where requests were served.
  ASSERT_EQ(reply->hosts.size(), 3u);
  std::uint64_t total_calls = 0;
  bool some_p99 = false;
  for (const auto& row : reply->hosts) {
    EXPECT_GE(row.reports, 1u);
    EXPECT_FALSE(row.suspect);
    total_calls += row.calls;
    if (row.p99_us > 0) some_p99 = true;
  }
  EXPECT_GE(total_calls, 30u);  // the 30 Noops plus control-plane traffic
  EXPECT_TRUE(some_p99);

  // The merged per-method rows surface the workload's method by name.
  bool saw_noop = false;
  for (const auto& m : reply->methods) {
    if (m.method == "Noop") {
      saw_noop = true;
      EXPECT_GE(m.count, 30u);
      EXPECT_GE(m.p99_us, m.p50_us);
      EXPECT_GE(m.max_us, m.p99_us);
    }
  }
  EXPECT_TRUE(saw_noop);

  // The monitor's consultable flag gauges exist for the recovery sweep.
  EXPECT_EQ(d.runtime->metrics().gauge("monitor.hosts").value(), 3);
  EXPECT_GE(d.runtime->metrics().counter("monitor.reports").value(), 3u);
}

}  // namespace
}  // namespace legion::core
