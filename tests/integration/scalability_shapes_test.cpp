// The paper's Section 5 claims as *enforced tests*: small versions of the
// headline experiments whose shapes are asserted programmatically, so a
// regression that breaks a scalability property fails CI rather than just
// bending a bench table.
#include <gtest/gtest.h>

#include "core/system.hpp"
#include "core/well_known.hpp"
#include "rt/sim_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace legion::core {
namespace {

// gtest's ASSERT_* macros only work in void functions; the value-returning
// workload helpers below use this instead.
#define ASSERT_TRUE_OR_RETURN(x) \
  if (!(x)) {                    \
    ADD_FAILURE();               \
    return 0;                    \
  }

struct Deployment {
  std::unique_ptr<rt::SimRuntime> runtime;
  std::unique_ptr<LegionSystem> system;
  std::vector<JurisdictionId> jurisdictions;
  std::vector<std::vector<HostId>> hosts;
};

Deployment Deploy(std::size_t jurisdictions, std::size_t hosts_per,
                  SystemConfig config, std::uint64_t seed) {
  Deployment d;
  d.runtime = std::make_unique<rt::SimRuntime>(seed);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    auto jur = d.runtime->topology().add_jurisdiction("j" + std::to_string(j));
    d.jurisdictions.push_back(jur);
    std::vector<HostId> hosts;
    for (std::size_t h = 0; h < hosts_per; ++h) {
      hosts.push_back(d.runtime->topology().add_host(
          std::to_string(j) + "-" + std::to_string(h), {jur}, 1e9));
    }
    d.hosts.push_back(std::move(hosts));
  }
  d.system = std::make_unique<LegionSystem>(*d.runtime, config);
  EXPECT_TRUE(sim::RegisterSampleObjects(d.system->registry()).ok());
  EXPECT_TRUE(d.system->bootstrap().ok());
  return d;
}

Loid DeriveWorker(Client& client, const std::string& name,
                  std::vector<Loid> magistrates) {
  wire::DeriveRequest req;
  req.name = name;
  req.instance_impl = std::string(sim::WorkerImpl::kName);
  req.candidate_magistrates = std::move(magistrates);
  auto reply = client.derive(LegionObjectLoid(), req);
  EXPECT_TRUE(reply.ok());
  return reply.ok() ? reply->loid : Loid{};
}

// S1 — Section 5.2.1: with one agent per jurisdiction, the max per-agent
// load stays ~flat when the system doubles; with one global agent it ~doubles.
std::uint64_t MaxAgentLoad(std::size_t jurisdictions, bool scaled_agents) {
  Deployment d = Deploy(jurisdictions, 2, SystemConfig{}, 77);
  auto setup = d.system->make_client(d.hosts[0][0], "setup");
  std::vector<std::vector<Loid>> objects(jurisdictions);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    const Loid cls = DeriveWorker(*setup, "W" + std::to_string(j),
                                  {d.system->magistrate_of(d.jurisdictions[j])});
    for (int i = 0; i < 6; ++i) {
      auto reply = setup->create(cls, sim::WorkerInit(0, 0));
      ASSERT_TRUE_OR_RETURN(reply.ok());
      objects[j].push_back(reply->loid);
    }
  }
  d.runtime->reset_stats();
  Rng rng(5);
  for (std::size_t j = 0; j < jurisdictions; ++j) {
    SystemHandles handles = d.system->handles_for(d.hosts[j][0]);
    if (!scaled_agents) {
      handles.default_binding_agent =
          d.system->shell_of(d.system->binding_agents()[0])->binding();
    }
    Client client(*d.runtime, d.hosts[j][0], "measured", handles, 8,
                  Rng(j + 1));
    // Scale-invariant per-client workload (the Section 5.2 premise): 90%
    // local, 10% to the *neighbour* jurisdiction — a constant working set,
    // so any load growth would be the system's fault, not the workload's.
    for (int i = 0; i < 500; ++i) {
      const std::size_t src_j =
          rng.chance(0.9) ? j : (j + 1) % jurisdictions;
      const auto& pool = objects[src_j];
      ASSERT_TRUE_OR_RETURN(
          client.ref(pool[rng.below(pool.size())]).call("Noop", Buffer{}).ok());
    }
  }
  return d.runtime->max_received_with_label("binding-agent");
}

TEST(ScalabilityShapes, PerAgentLoadFlatWhenAgentsScale) {
  const std::uint64_t small = MaxAgentLoad(2, /*scaled=*/true);
  const std::uint64_t large = MaxAgentLoad(8, /*scaled=*/true);
  ASSERT_GT(small, 0u);
  // 4x the system; per-agent load must grow by well under 2x.
  EXPECT_LT(static_cast<double>(large), 1.8 * static_cast<double>(small))
      << "scaled-agent load grew with system size: " << small << " -> "
      << large;
}

TEST(ScalabilityShapes, SingleGlobalAgentLoadGrowsLinearly) {
  const std::uint64_t small = MaxAgentLoad(2, /*scaled=*/false);
  const std::uint64_t large = MaxAgentLoad(8, /*scaled=*/false);
  ASSERT_GT(small, 0u);
  // 4x the system; the lone agent's load must grow at least ~3x.
  EXPECT_GT(static_cast<double>(large), 3.0 * static_cast<double>(small));
}

// S2 — Section 5.2.2: the combining tree shields LegionClass.
std::uint64_t LegionClassLoad(std::size_t fanout) {
  constexpr std::size_t kJurisdictions = 8;
  constexpr std::size_t kClasses = 10;
  SystemConfig config;
  config.ba_tree_fanout = fanout;
  Deployment d = Deploy(kJurisdictions, 1, config, 91);
  auto setup = d.system->make_client(d.hosts[0][0], "setup");
  std::vector<Loid> objects;
  for (std::size_t c = 0; c < kClasses; ++c) {
    const Loid cls =
        DeriveWorker(*setup, "W" + std::to_string(c),
                     {d.system->magistrate_of(
                         d.jurisdictions[c % kJurisdictions])});
    auto reply = setup->create(cls, sim::WorkerInit(0, 0));
    ASSERT_TRUE_OR_RETURN(reply.ok());
    objects.push_back(reply->loid);
  }
  const EndpointId legion_class =
      d.system->shell_of(LegionClassLoid())->endpoint();
  d.runtime->reset_stats();
  for (std::size_t j = 0; j < kJurisdictions; ++j) {
    Client client(*d.runtime, d.hosts[j][0], "measured",
                  d.system->handles_for(d.hosts[j][0]), 64, Rng(j + 2));
    for (const Loid& object : objects) {
      ASSERT_TRUE_OR_RETURN(client.ref(object).call("Noop", Buffer{}).ok());
    }
  }
  return d.runtime->endpoint_stats(legion_class).received;
}

TEST(ScalabilityShapes, CombiningTreeShieldsLegionClass) {
  const std::uint64_t flat = LegionClassLoad(0);
  const std::uint64_t tree = LegionClassLoad(2);
  ASSERT_GT(flat, 0u);
  // The tree must cut LegionClass traffic by at least 4x in this setup
  // (measured: ~agents x classes down to ~classes).
  EXPECT_LT(4 * tree, flat) << "flat=" << flat << " tree=" << tree;
}

// S3 — Section 5.2.2: cloning divides the hottest class object's load.
std::uint64_t HottestClassLoad(std::size_t clones) {
  Deployment d = Deploy(2, 2, SystemConfig{}, 13);
  auto setup = d.system->make_client(d.hosts[0][0], "setup");
  const Loid popular = DeriveWorker(*setup, "Popular", {});
  for (std::size_t c = 0; c < clones; ++c) {
    wire::CreateRequest req;
    auto raw = setup->ref(popular).call(methods::kClone, req.to_buffer());
    ASSERT_TRUE_OR_RETURN(raw.ok());
  }
  d.runtime->reset_stats();
  for (int client_index = 0; client_index < 8; ++client_index) {
    Client client(*d.runtime, d.hosts[client_index % 2][client_index % 2],
                  "measured",
                  d.system->handles_for(d.hosts[client_index % 2][0]), 64,
                  Rng(client_index + 3));
    Loid adopted = popular;
    auto raw = client.ref(popular).call("GetClone", Buffer{});
    if (raw.ok()) {
      if (auto reply = wire::LoidReply::from_buffer(*raw); reply.ok()) {
        adopted = reply->loid;
      }
    }
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE_OR_RETURN(
          client.create(adopted, sim::WorkerInit(0, 0)).ok());
    }
  }
  return d.runtime->max_received_with_label("class");
}

TEST(ScalabilityShapes, CloningDividesPopularClassLoad) {
  const std::uint64_t solo = HottestClassLoad(0);
  const std::uint64_t cloned = HottestClassLoad(4);
  ASSERT_GT(solo, 0u);
  // Four clones must cut the hottest class object's load to under half.
  EXPECT_LT(2 * cloned, solo) << "solo=" << solo << " cloned=" << cloned;
}

#undef ASSERT_TRUE_OR_RETURN

}  // namespace
}  // namespace legion::core
