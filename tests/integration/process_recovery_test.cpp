// Kill -9 recovery, end to end, with every object in its own OS process.
//
// The full activation story from the paper, made literal: a class whose
// definition names an executable (legion_objectd) gets its instances
// spawned as real child processes from shipped OPRs — the magistrate and
// host never link the object's code. A kill -9 on one worker is then
// detected through the CheckObjects leg of the class sweep (the host still
// answers probes; the *instance* is dead), and the object is reactivated
// from its checkpointed OPR with the Section 4.1.4 invalidate-then-add
// binding repair. Siblings and the host itself never notice.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/state_sections.hpp"
#include "core/test_support.hpp"
#include "persist/opr.hpp"
#include "rt/process_runtime.hpp"
#include "sim/sample_objects.hpp"

namespace legion::core {
namespace {

using testing::ReadI64;

constexpr const char* kObjectdPath = LEGION_OBJECTD_PATH;

class ProcessRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::ProcessRuntime>();
    pc_ = runtime_->process_control();
    ASSERT_NE(pc_, nullptr);
    uva_ = runtime_->topology().add_jurisdiction("uva");
    doe_ = runtime_->topology().add_jurisdiction("doe");
    uva1_ = runtime_->topology().add_host("uva-1", {uva_}, 8.0);
    doe1_ = runtime_->topology().add_host("doe-1", {doe_}, 8.0);
    doe2_ = runtime_->topology().add_host("doe-2", {doe_}, 8.0);

    system_ = std::make_unique<LegionSystem>(*runtime_, SystemConfig{});
    // The host-side registry only matters for in-process activation; the
    // workers carry their own copy inside legion_objectd. Registered here
    // so a spawn-less fallback fails loudly in the worker, not silently
    // in-process... which is exactly what instance_executable prevents.
    ASSERT_TRUE(sim::RegisterSampleObjects(system_->registry()).ok());
    const Status st = system_->bootstrap();
    ASSERT_TRUE(st.ok()) << st.to_string();
    client_ = system_->make_client(uva1_);

    // The class definition carries the worker executable: every instance
    // activation — create and reactivate alike — builds an OPR naming it
    // and goes through ProcessControl::spawn_object.
    wire::DeriveRequest req;
    req.name = "Worker";
    req.instance_impl = std::string(sim::WorkerImpl::kName);
    req.instance_executable = kObjectdPath;
    req.extra_interface = sim::WorkerImpl{}.interface();
    auto reply = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    worker_class_ = reply->loid;

    wire::RecoveryPolicyRequest policy;
    policy.suspect_threshold = 2;
    policy.probe_timeout_us = 100'000;
    ASSERT_TRUE(client_->ref(worker_class_)
                    .call(methods::kSetRecoveryPolicy, policy.to_buffer())
                    .ok());
  }

  void TearDown() override {
    client_.reset();
    system_.reset();
    runtime_.reset();
  }

  std::vector<Loid> PlaceWorkersOnDoe2(int n) {
    std::vector<Loid> out;
    for (int i = 0; i < n; ++i) {
      auto reply = client_->create(worker_class_, sim::WorkerInit(i, 0),
                                   {system_->magistrate_of(doe_)},
                                   system_->host_object_of(doe2_));
      EXPECT_TRUE(reply.ok()) << reply.status().to_string();
      if (reply.ok()) out.push_back(reply->loid);
    }
    return out;
  }

  wire::SweepReply Sweep() {
    auto raw = client_->ref(worker_class_).call(methods::kSweepInstances,
                                                Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
    auto reply = wire::SweepReply::from_buffer(raw.ok() ? *raw : Buffer{});
    return reply.ok() ? *reply : wire::SweepReply{};
  }

  // The live child process serving `loid`, if any (children are labeled
  // with the LOID string at spawn).
  Result<rt::ChildInfo> ChildOf(const Loid& loid) const {
    const std::string label = loid.to_string();
    for (const rt::ChildInfo& child : pc_->children()) {
      if (child.label == label && child.alive) return child;
    }
    return NotFoundError("no live child for " + label);
  }

  bool AwaitChildDead(EndpointId endpoint, int timeout_ms = 5'000) {
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    while (std::chrono::steady_clock::now() < deadline) {
      if (!pc_->child_alive(endpoint)) return true;
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return false;
  }

  std::unique_ptr<rt::ProcessRuntime> runtime_;
  rt::ProcessControl* pc_ = nullptr;
  std::unique_ptr<LegionSystem> system_;
  std::unique_ptr<Client> client_;
  JurisdictionId uva_, doe_;
  HostId uva1_, doe1_, doe2_;
  Loid worker_class_;
};

TEST_F(ProcessRecoveryTest, CreateSpawnsOneProcessPerInstance) {
  const std::vector<Loid> workers = PlaceWorkersOnDoe2(3);
  ASSERT_EQ(workers.size(), 3u);

  // Three instances, three live child processes, three distinct pids.
  std::vector<std::int64_t> pids;
  for (const Loid& w : workers) {
    auto child = ChildOf(w);
    ASSERT_TRUE(child.ok()) << child.status().to_string();
    EXPECT_GT(child->pid, 0);
    pids.push_back(child->pid);
  }
  EXPECT_NE(pids[0], pids[1]);
  EXPECT_NE(pids[1], pids[2]);

  // And the method calls actually cross into those processes.
  for (int i = 0; i < 3; ++i) {
    auto raw = client_->ref(workers[i]).call("Get", Buffer{});
    ASSERT_TRUE(raw.ok()) << raw.status().to_string();
    EXPECT_EQ(ReadI64(*raw), i);
  }
}

TEST_F(ProcessRecoveryTest, KillNineReactivatesFromCheckpointedOpr) {
  constexpr int kInstances = 3;
  const std::vector<Loid> workers = PlaceWorkersOnDoe2(kInstances);
  ASSERT_EQ(workers.size(), static_cast<std::size_t>(kInstances));

  // Mutate and checkpoint every worker: revival must restore the
  // incremented count from the vault, not the creation-time state.
  for (int i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(client_->ref(workers[i]).call("Increment", Buffer{}).ok());
    wire::LoidRequest req{workers[i]};
    ASSERT_TRUE(client_->ref(system_->magistrate_of(doe_))
                    .call(methods::kCheckpoint, req.to_buffer())
                    .ok());
  }

  // kill -9 the middle worker through the fault plan — the same injector
  // CI's fault campaigns use — and wait for the reaper to notice the death.
  auto victim = ChildOf(workers[1]);
  ASSERT_TRUE(victim.ok()) << victim.status().to_string();
  ASSERT_TRUE(runtime_->faults().kill_child(victim->endpoint.value).ok());
  ASSERT_TRUE(AwaitChildDead(victim->endpoint));

  // ONE sweep suffices: the host still answers its probe (the parent never
  // died), so there is no suspicion ladder to climb — the CheckObjects leg
  // on the successful probe reports the dead instance immediately.
  const auto verdict = Sweep();
  EXPECT_EQ(verdict.hosts_suspect, 0u) << "host must not be condemned for a "
                                          "single dead worker";
  EXPECT_EQ(verdict.instances_dead, 1u);
  EXPECT_EQ(verdict.reactivated, 1u);
  EXPECT_EQ(verdict.failed, 0u);

  // The revived object runs in a brand-new process with the checkpointed
  // state (i=1 incremented once -> 2).
  auto revived = ChildOf(workers[1]);
  ASSERT_TRUE(revived.ok()) << revived.status().to_string();
  EXPECT_NE(revived->pid, victim->pid);
  auto raw = client_->ref(workers[1]).call("Get", Buffer{}, 500'000);
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 2) << "checkpointed state lost across kill -9";

  // The siblings kept their processes and their state the whole time.
  for (int i : {0, 2}) {
    auto sibling = ChildOf(workers[i]);
    ASSERT_TRUE(sibling.ok()) << sibling.status().to_string();
    auto sraw = client_->ref(workers[i]).call("Get", Buffer{});
    ASSERT_TRUE(sraw.ok()) << sraw.status().to_string();
    EXPECT_EQ(ReadI64(*sraw), i + 1);
  }
}

TEST_F(ProcessRecoveryTest, StaleBoundCallerConvergesAfterRevival) {
  const std::vector<Loid> workers = PlaceWorkersOnDoe2(1);
  ASSERT_EQ(workers.size(), 1u);

  // A second client binds before the crash, so its resolver cache holds the
  // soon-to-be-dead endpoint.
  auto caller = system_->make_client(doe1_, "bound-caller");
  ASSERT_TRUE(caller->ref(workers[0]).call("Get", Buffer{}).ok());

  wire::LoidRequest req{workers[0]};
  ASSERT_TRUE(client_->ref(system_->magistrate_of(doe_))
                  .call(methods::kCheckpoint, req.to_buffer())
                  .ok());

  auto victim = ChildOf(workers[0]);
  ASSERT_TRUE(victim.ok());
  ASSERT_TRUE(pc_->kill_child(victim->endpoint).ok());
  ASSERT_TRUE(AwaitChildDead(victim->endpoint));
  const auto verdict = Sweep();
  ASSERT_EQ(verdict.reactivated, 1u);

  // No manual invalidation: the stale send fails fast (dead child =>
  // kStaleBinding, not a timeout), the resolver refreshes through the
  // Binding Agent, and the retry lands on the revived process.
  auto raw = caller->ref(workers[0]).call("Get", Buffer{}, 500'000);
  ASSERT_TRUE(raw.ok()) << raw.status().to_string();
  EXPECT_EQ(ReadI64(*raw), 0);
}

TEST_F(ProcessRecoveryTest, GracefulStopCapturesStateForNextActivation) {
  const std::vector<Loid> workers = PlaceWorkersOnDoe2(1);
  ASSERT_EQ(workers.size(), 1u);
  ASSERT_TRUE(client_->ref(workers[0]).call("Increment", Buffer{}).ok());

  // kStopObject goes through the host: capture the live worker state over
  // its own endpoint (a real cross-process kSaveState call), SIGTERM the
  // process, return the OPR.
  wire::StopObjectRequest req;
  req.loid = workers[0];
  auto stop = client_->ref(system_->host_object_of(doe2_))
                  .call(methods::kStopObject, req.to_buffer());
  ASSERT_TRUE(stop.ok()) << stop.status().to_string();
  EXPECT_FALSE(ChildOf(workers[0]).ok()) << "worker process outlived its stop";

  // The returned OPR holds the state as of the stop (0 incremented once),
  // captured across the process boundary moments before the SIGTERM.
  auto reply = wire::StopObjectReply::from_buffer(*stop);
  ASSERT_TRUE(reply.ok());
  auto opr = persist::Opr::from_bytes(reply->opr_bytes);
  ASSERT_TRUE(opr.ok()) << opr.status().to_string();
  EXPECT_EQ(opr->executable, kObjectdPath);
  auto sections = StateSections::from_buffer(opr->state);
  ASSERT_TRUE(sections.ok()) << sections.status().to_string();
  const Buffer* primary = sections->find(std::string(sim::WorkerImpl::kName));
  ASSERT_NE(primary, nullptr);
  Reader state(*primary);
  EXPECT_EQ(state.i64(), 1);
}

}  // namespace
}  // namespace legion::core
