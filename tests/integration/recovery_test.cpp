// Failure detection & automatic reactivation, end to end.
//
// The faults the system can inject (host outages, partitions) must now be
// survivable: the class object's SweepInstances probes the Host Objects its
// instances were placed on, declares a host suspect after consecutive
// misses, and restarts every affected instance elsewhere from the
// magistrate's checkpointed OPR — then pushes the new binding through the
// Section 4.1.4 invalidation fan-out so old callers converge with no manual
// intervention.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/test_support.hpp"
#include "rt/epoll_runtime.hpp"

namespace legion::core {
namespace {

using testing::CounterInit;
using testing::ReadI64;
using testing::SimSystemFixture;

class RecoveryTest : public SimSystemFixture {
 protected:
  static constexpr int kInstances = 12;

  void SetUp() override {
    SimSystemFixture::SetUp();
    counter_class_ = DeriveCounterClass();
    ASSERT_TRUE(counter_class_.valid());
  }

  // Places `n` counters on doe-2 explicitly. The doe jurisdiction keeps its
  // bootstrap components (magistrate, binding agent) on doe-1 and the class
  // object lives in uva, so doe-2 can die without decapitating recovery.
  std::vector<Loid> PlaceCountersOnDoe2(int n) {
    std::vector<Loid> out;
    for (int i = 0; i < n; ++i) {
      auto reply = client_->create(counter_class_, CounterInit(i),
                                   {system_->magistrate_of(doe_)},
                                   system_->host_object_of(doe2_));
      EXPECT_TRUE(reply.ok()) << reply.status().to_string();
      if (reply.ok()) out.push_back(reply->loid);
    }
    return out;
  }

  wire::SweepReply Sweep() {
    auto raw = client_->ref(counter_class_).call(methods::kSweepInstances,
                                                 Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
    auto reply = wire::SweepReply::from_buffer(raw.ok() ? *raw : Buffer{});
    return reply.ok() ? *reply : wire::SweepReply{};
  }

  // Runs sweeps until `threshold` consecutive misses condemn the host,
  // advancing virtual time between ticks like a shell timer would.
  wire::SweepReply SweepUntilVerdict(std::uint32_t threshold) {
    wire::SweepReply last;
    for (std::uint32_t i = 0; i < threshold; ++i) {
      runtime_->advance(1'000'000);
      last = Sweep();
    }
    return last;
  }

  Loid counter_class_;
};

TEST_F(RecoveryTest, HostOutageReactivatesEveryObjectElsewhere) {
  const std::vector<Loid> counters = PlaceCountersOnDoe2(kInstances);
  ASSERT_EQ(counters.size(), static_cast<std::size_t>(kInstances));

  // Mutate every counter past its creation state, then checkpoint the
  // first half explicitly through the magistrate: recovery must restore
  // checkpointed state, and creation-time state for the rest.
  for (int i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(client_->ref(counters[i]).call("Increment", Buffer{}).ok());
    if (i < kInstances / 2) {
      wire::LoidRequest req{counters[i]};
      auto ck = client_->ref(system_->magistrate_of(doe_))
                    .call(methods::kCheckpoint, req.to_buffer());
      ASSERT_TRUE(ck.ok()) << ck.status().to_string();
    }
  }

  runtime_->faults().take_host_down(doe2_);

  // One miss is suspicion, not a verdict: nothing moves yet.
  runtime_->advance(1'000'000);
  const auto first = Sweep();
  EXPECT_GE(first.hosts_probed, 1u);
  EXPECT_EQ(first.reactivated, 0u);

  // The second consecutive miss crosses the default threshold (2): every
  // instance on the dead host restarts on the surviving doe host.
  runtime_->advance(1'000'000);
  const auto verdict = Sweep();
  EXPECT_EQ(verdict.hosts_suspect, 1u);
  EXPECT_EQ(verdict.reactivated, static_cast<std::uint32_t>(kInstances));
  EXPECT_EQ(verdict.failed, 0u);

  for (int i = 0; i < kInstances; ++i) {
    EXPECT_NE(system_->host_impl(doe1_)->find_object(counters[i]), nullptr)
        << "instance " << i << " not running on the surviving host";
    auto raw = client_->ref(counters[i]).call("Get", Buffer{});
    ASSERT_TRUE(raw.ok()) << raw.status().to_string();
    // Checkpointed instances kept the increment; the rest restarted from
    // their creation-time OPR.
    EXPECT_EQ(ReadI64(*raw), i < kInstances / 2 ? i + 1 : i);
  }
}

TEST_F(RecoveryTest, BoundCallerSucceedsViaStaleRetryAfterRecovery) {
  const std::vector<Loid> counters = PlaceCountersOnDoe2(3);
  ASSERT_EQ(counters.size(), 3u);

  // A separate caller binds to every counter before the outage, so its
  // resolver cache holds the soon-to-be-dead addresses.
  auto caller = system_->make_client(uva2_, "bound-caller");
  for (const Loid& c : counters) {
    ASSERT_TRUE(caller->ref(c).call("Get", Buffer{}).ok());
  }

  runtime_->faults().take_host_down(doe2_);
  const auto verdict = SweepUntilVerdict(2);
  ASSERT_EQ(verdict.reactivated, 3u);

  // No manual invalidation: the caller's stale binding fails, the resolver
  // refreshes through the Binding Agent fan-out, and the retry lands on the
  // reactivated instance.
  for (const Loid& c : counters) {
    auto raw = caller->ref(c).call("Get", Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
  }
}

TEST_F(RecoveryTest, PartitionHealConvergesAndReapsOrphans) {
  const std::vector<Loid> counters = PlaceCountersOnDoe2(4);
  ASSERT_EQ(counters.size(), 4u);

  // Cut doe-2 off from every other host (the class object's own placement
  // is seed-dependent, so a partial cut might leave it a working probe
  // path). doe-2 itself never dies: its processes keep running, orphaned.
  for (HostId other : {uva1_, uva2_, doe1_}) {
    runtime_->faults().partition(doe2_, other);
  }
  const auto verdict = SweepUntilVerdict(2);
  EXPECT_EQ(verdict.reactivated, 4u);
  for (const Loid& c : counters) {
    EXPECT_NE(system_->host_impl(doe1_)->find_object(c), nullptr);
    // The orphaned pre-partition process is still on doe-2.
    EXPECT_NE(system_->host_impl(doe2_)->find_object(c), nullptr);
  }

  // Heal: the next sweep's probe succeeds and releases the fences, reaping
  // the stale copies so exactly one activation of each object remains.
  for (HostId other : {uva1_, uva2_, doe1_}) {
    runtime_->faults().heal(doe2_, other);
  }
  runtime_->advance(1'000'000);
  const auto healed = Sweep();
  EXPECT_EQ(healed.fences_released, 4u);
  for (const Loid& c : counters) {
    EXPECT_EQ(system_->host_impl(doe2_)->find_object(c), nullptr)
        << "orphaned activation survived the fence release";
    auto raw = client_->ref(c).call("Get", Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
  }
}

TEST_F(RecoveryTest, QuietSweepTouchesOnlyPlacedHostsAndMovesNothing) {
  PlaceCountersOnDoe2(5);
  runtime_->advance(1'000'000);
  const auto quiet = Sweep();
  // All five instances share one host: one probe, no reactivations.
  EXPECT_EQ(quiet.hosts_probed, 1u);
  EXPECT_EQ(quiet.hosts_suspect, 0u);
  EXPECT_EQ(quiet.reactivated, 0u);
  EXPECT_EQ(quiet.fences_released, 0u);
}

TEST_F(RecoveryTest, RecoveryPolicyIsTunable) {
  const std::vector<Loid> counters = PlaceCountersOnDoe2(2);
  wire::RecoveryPolicyRequest policy;
  policy.suspect_threshold = 4;
  policy.probe_timeout_us = 100'000;
  ASSERT_TRUE(client_->ref(counter_class_)
                  .call(methods::kSetRecoveryPolicy, policy.to_buffer())
                  .ok());
  // Zero threshold is rejected (a host must never be condemned for free).
  wire::RecoveryPolicyRequest bad;
  bad.suspect_threshold = 0;
  EXPECT_FALSE(client_->ref(counter_class_)
                   .call(methods::kSetRecoveryPolicy, bad.to_buffer())
                   .ok());

  runtime_->faults().take_host_down(doe2_);
  // Three misses: below the raised threshold, nothing moves.
  auto after3 = SweepUntilVerdict(3);
  EXPECT_EQ(after3.reactivated, 0u);
  // The fourth miss delivers the verdict.
  auto after4 = SweepUntilVerdict(1);
  EXPECT_EQ(after4.reactivated, static_cast<std::uint32_t>(counters.size()));
}

// The same recovery machinery over the M:N socket runtime: probes, verdicts
// and reactivation ride real TCP frames and real-clock timeouts instead of
// virtual time. EpollRuntime consults the fault plan on post (TcpRuntime
// does not), which is what makes host-down/partition experiments expressible
// over sockets at all.
class EpollRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    runtime_ = std::make_unique<rt::EpollRuntime>();
    uva_ = runtime_->topology().add_jurisdiction("uva");
    doe_ = runtime_->topology().add_jurisdiction("doe");
    uva1_ = runtime_->topology().add_host("uva-1", {uva_}, 8.0);
    uva2_ = runtime_->topology().add_host("uva-2", {uva_}, 8.0);
    doe1_ = runtime_->topology().add_host("doe-1", {doe_}, 8.0);
    doe2_ = runtime_->topology().add_host("doe-2", {doe_}, 8.0);

    system_ = std::make_unique<LegionSystem>(*runtime_, SystemConfig{});
    ASSERT_TRUE(system_->registry()
                    .add(std::string(testing::CounterImpl::kName),
                         [] { return std::make_unique<testing::CounterImpl>(); })
                    .ok());
    const Status st = system_->bootstrap();
    ASSERT_TRUE(st.ok()) << st.to_string();
    client_ = system_->make_client(uva1_);

    wire::DeriveRequest req;
    req.name = "Counter";
    req.instance_impl = std::string(testing::CounterImpl::kName);
    req.extra_interface = testing::CounterImpl{}.interface();
    auto reply = client_->derive(LegionObjectLoid(), req);
    ASSERT_TRUE(reply.ok()) << reply.status().to_string();
    counter_class_ = reply->loid;

    // Real-clock probes: keep each missed probe to 100 ms so a two-miss
    // verdict costs ~200 ms of wall time, not two simulated seconds.
    wire::RecoveryPolicyRequest policy;
    policy.suspect_threshold = 2;
    policy.probe_timeout_us = 100'000;
    ASSERT_TRUE(client_->ref(counter_class_)
                    .call(methods::kSetRecoveryPolicy, policy.to_buffer())
                    .ok());
  }

  void TearDown() override {
    client_.reset();
    system_.reset();
    runtime_.reset();
  }

  std::vector<Loid> PlaceCountersOnDoe2(int n) {
    std::vector<Loid> out;
    for (int i = 0; i < n; ++i) {
      auto reply = client_->create(counter_class_, CounterInit(i),
                                   {system_->magistrate_of(doe_)},
                                   system_->host_object_of(doe2_));
      EXPECT_TRUE(reply.ok()) << reply.status().to_string();
      if (reply.ok()) out.push_back(reply->loid);
    }
    return out;
  }

  wire::SweepReply Sweep() {
    auto raw = client_->ref(counter_class_).call(methods::kSweepInstances,
                                                 Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
    auto reply = wire::SweepReply::from_buffer(raw.ok() ? *raw : Buffer{});
    return reply.ok() ? *reply : wire::SweepReply{};
  }

  std::unique_ptr<rt::EpollRuntime> runtime_;
  std::unique_ptr<LegionSystem> system_;
  std::unique_ptr<Client> client_;
  JurisdictionId uva_, doe_;
  HostId uva1_, uva2_, doe1_, doe2_;
  Loid counter_class_;
};

TEST_F(EpollRecoveryTest, HostOutageReactivatesOverRealSockets) {
  constexpr int kInstances = 4;
  const std::vector<Loid> counters = PlaceCountersOnDoe2(kInstances);
  ASSERT_EQ(counters.size(), static_cast<std::size_t>(kInstances));

  // Mutate and checkpoint everything so recovery must restore live state
  // through the magistrate's vault, every hop a real TCP exchange.
  for (int i = 0; i < kInstances; ++i) {
    ASSERT_TRUE(client_->ref(counters[i]).call("Increment", Buffer{}).ok());
    wire::LoidRequest req{counters[i]};
    ASSERT_TRUE(client_->ref(system_->magistrate_of(doe_))
                    .call(methods::kCheckpoint, req.to_buffer())
                    .ok());
  }

  runtime_->faults().take_host_down(doe2_);

  // First missed (real-clock) probe: suspicion only.
  const auto first = Sweep();
  EXPECT_GE(first.hosts_probed, 1u);
  EXPECT_EQ(first.reactivated, 0u);
  // Second consecutive miss: verdict, and every instance restarts on the
  // surviving doe host.
  const auto verdict = Sweep();
  EXPECT_EQ(verdict.hosts_suspect, 1u);
  EXPECT_EQ(verdict.reactivated, static_cast<std::uint32_t>(kInstances));
  EXPECT_EQ(verdict.failed, 0u);

  // The client's cached bindings still name the dead doe-2 endpoints, which
  // exist but sit behind the fault plan: the first attempt is silently
  // dropped and must *time out* (not bounce) before the §4.1.4 refresh
  // finds the reactivated instance. A short per-attempt timeout keeps that
  // wall-clock wait at 500 ms instead of the 10 s default.
  for (int i = 0; i < kInstances; ++i) {
    auto raw = client_->ref(counters[i]).call("Get", Buffer{}, 500'000);
    ASSERT_TRUE(raw.ok()) << raw.status().to_string();
    EXPECT_EQ(ReadI64(*raw), i + 1) << "checkpointed state lost in transit";
  }
}

TEST_F(EpollRecoveryTest, PartitionHealConvergesOverRealSockets) {
  const std::vector<Loid> counters = PlaceCountersOnDoe2(3);
  ASSERT_EQ(counters.size(), 3u);

  for (HostId other : {uva1_, uva2_, doe1_}) {
    runtime_->faults().partition(doe2_, other);
  }
  Sweep();
  const auto verdict = Sweep();
  EXPECT_EQ(verdict.reactivated, 3u);

  // Heal: the next probe answers, fences release, and the orphaned doe-2
  // activations are reaped over the wire.
  for (HostId other : {uva1_, uva2_, doe1_}) {
    runtime_->faults().heal(doe2_, other);
  }
  const auto healed = Sweep();
  EXPECT_EQ(healed.fences_released, 3u);
  for (const Loid& c : counters) {
    auto raw = client_->ref(c).call("Get", Buffer{});
    EXPECT_TRUE(raw.ok()) << raw.status().to_string();
  }
}

}  // namespace
}  // namespace legion::core
