// The single persistent name space: contexts as Legion objects.
#include <gtest/gtest.h>

#include "core/test_support.hpp"
#include "naming/context.hpp"

namespace legion::naming {
namespace {

class ContextTest : public core::testing::SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    ASSERT_TRUE(RegisterNamingImpls(system_->registry()).ok());
    auto root = CreateContext(*client_);
    ASSERT_TRUE(root.ok()) << root.status().to_string();
    root_ = *root;
  }

  Loid root_;
};

TEST_F(ContextTest, BindLookupUnbind) {
  const Loid target{77, 1};
  ASSERT_TRUE(Bind(*client_, root_, "data", target).ok());
  auto found = Lookup(*client_, root_, "data");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, target);

  ASSERT_TRUE(Unbind(*client_, root_, "data").ok());
  EXPECT_EQ(Lookup(*client_, root_, "data").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(Unbind(*client_, root_, "data").code(), StatusCode::kNotFound);
}

TEST_F(ContextTest, RebindReplaces) {
  ASSERT_TRUE(Bind(*client_, root_, "x", Loid{77, 1}).ok());
  ASSERT_TRUE(Bind(*client_, root_, "x", Loid{77, 2}).ok());
  EXPECT_EQ(*Lookup(*client_, root_, "x"), (Loid{77, 2}));
}

TEST_F(ContextTest, InvalidNamesRejected) {
  EXPECT_EQ(Bind(*client_, root_, "", Loid{77, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Bind(*client_, root_, "a/b", Loid{77, 1}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Bind(*client_, root_, "ok", Loid{}).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(ContextTest, ListIsSortedAndComplete) {
  ASSERT_TRUE(Bind(*client_, root_, "beta", Loid{77, 2}).ok());
  ASSERT_TRUE(Bind(*client_, root_, "alpha", Loid{77, 1}).ok());
  auto entries = List(*client_, root_);
  ASSERT_TRUE(entries.ok());
  ASSERT_EQ(entries->size(), 2u);
  EXPECT_EQ((*entries)[0].name, "alpha");
  EXPECT_EQ((*entries)[1].name, "beta");
}

TEST_F(ContextTest, HierarchicalPathResolution) {
  // "This makes remote files and data more easily accessible" (Section 1):
  // the paths users would type.
  ASSERT_TRUE(BindPath(*client_, root_, "home/grimshaw/results", Loid{88, 5})
                  .ok());
  auto found = ResolvePath(*client_, root_, "home/grimshaw/results");
  ASSERT_TRUE(found.ok()) << found.status().to_string();
  EXPECT_EQ(*found, (Loid{88, 5}));

  // Intermediate components are contexts themselves.
  auto home = ResolvePath(*client_, root_, "home");
  ASSERT_TRUE(home.ok());
  EXPECT_EQ(home->class_id(), core::kLegionContextClassId);
}

TEST_F(ContextTest, BindPathReusesExistingContexts) {
  ASSERT_TRUE(BindPath(*client_, root_, "a/b/one", Loid{88, 1}).ok());
  ASSERT_TRUE(BindPath(*client_, root_, "a/b/two", Loid{88, 2}).ok());
  auto b = ResolvePath(*client_, root_, "a/b");
  ASSERT_TRUE(b.ok());
  auto entries = List(*client_, *b);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 2u);
}

TEST_F(ContextTest, ResolveMissingPathReportsNotFound) {
  EXPECT_EQ(ResolvePath(*client_, root_, "no/such/path").status().code(),
            StatusCode::kNotFound);
}

TEST_F(ContextTest, EmptyPathResolvesToRoot) {
  auto found = ResolvePath(*client_, root_, "");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, root_);
}

TEST_F(ContextTest, NamesArePersistent) {
  // The name space is *persistent*: deactivate the context object and the
  // bindings survive its reactivation.
  ASSERT_TRUE(Bind(*client_, root_, "durable", Loid{77, 9}).ok());

  core::MagistrateImpl* uva_mag = system_->magistrate_impl(uva_);
  const Loid owner = uva_mag->manages(root_) ? system_->magistrate_of(uva_)
                                             : system_->magistrate_of(doe_);
  core::wire::LoidRequest req{root_};
  ASSERT_TRUE(client_->ref(owner)
                  .call(core::methods::kDeactivate, req.to_buffer())
                  .ok());

  auto found = Lookup(*client_, root_, "durable");
  ASSERT_TRUE(found.ok()) << found.status().to_string();
  EXPECT_EQ(*found, (Loid{77, 9}));
}

TEST_F(ContextTest, SharedAcrossClients) {
  ASSERT_TRUE(Bind(*client_, root_, "shared", Loid{77, 3}).ok());
  auto other = system_->make_client(doe1_, "other");
  auto found = Lookup(*other, root_, "shared");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(*found, (Loid{77, 3}));
}

}  // namespace
}  // namespace legion::naming
