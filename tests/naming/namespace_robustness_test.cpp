// The persistent name space under lifecycle churn: contexts are ordinary
// Legion objects, so path resolution must survive intermediate contexts
// going inert or migrating mid-walk.
#include <gtest/gtest.h>

#include "core/test_support.hpp"
#include "naming/context.hpp"

namespace legion::naming {
namespace {

class NamespaceRobustnessTest : public core::testing::SimSystemFixture {
 protected:
  void SetUp() override {
    SimSystemFixture::SetUp();
    ASSERT_TRUE(RegisterNamingImpls(system_->registry()).ok());
    auto root = CreateContext(*client_);
    ASSERT_TRUE(root.ok());
    root_ = *root;
  }

  // Deactivates whichever magistrate manages `loid`.
  void Deactivate(const Loid& loid) {
    const Loid owner = system_->magistrate_impl(uva_)->manages(loid)
                           ? system_->magistrate_of(uva_)
                           : system_->magistrate_of(doe_);
    core::wire::LoidRequest req{loid};
    ASSERT_TRUE(client_->ref(owner)
                    .call(core::methods::kDeactivate, req.to_buffer())
                    .ok());
  }

  Loid root_;
};

TEST_F(NamespaceRobustnessTest, DeepPathsResolve) {
  std::string path;
  for (int depth = 0; depth < 20; ++depth) {
    path += (depth == 0 ? "" : "/") + ("d" + std::to_string(depth));
  }
  ASSERT_TRUE(BindPath(*client_, root_, path + "/leaf", Loid{88, 1}).ok());
  auto found = ResolvePath(*client_, root_, path + "/leaf");
  ASSERT_TRUE(found.ok()) << found.status().to_string();
  EXPECT_EQ(*found, (Loid{88, 1}));
}

TEST_F(NamespaceRobustnessTest, ResolutionSurvivesInertIntermediates) {
  ASSERT_TRUE(BindPath(*client_, root_, "a/b/c/leaf", Loid{88, 2}).ok());
  // Deactivate every context along the path, including the root.
  auto a = ResolvePath(*client_, root_, "a");
  auto b = ResolvePath(*client_, root_, "a/b");
  auto c = ResolvePath(*client_, root_, "a/b/c");
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(c.ok());
  for (const Loid& ctx : {root_, *a, *b, *c}) Deactivate(ctx);

  // A cold client walks the path: each hop reactivates a context.
  auto cold = system_->make_client(doe2_, "cold");
  auto found = ResolvePath(*cold, root_, "a/b/c/leaf");
  ASSERT_TRUE(found.ok()) << found.status().to_string();
  EXPECT_EQ(*found, (Loid{88, 2}));
}

TEST_F(NamespaceRobustnessTest, ContextsMigrateWithoutLosingNames) {
  ASSERT_TRUE(Bind(*client_, root_, "x", Loid{88, 3}).ok());
  const bool at_uva = system_->magistrate_impl(uva_)->manages(root_);
  core::wire::TransferRequest move{
      root_, at_uva ? system_->magistrate_of(doe_)
                    : system_->magistrate_of(uva_)};
  ASSERT_TRUE(client_->ref(at_uva ? system_->magistrate_of(uva_)
                                  : system_->magistrate_of(doe_))
                  .call(core::methods::kMove, move.to_buffer())
                  .ok());
  auto found = Lookup(*client_, root_, "x");
  ASSERT_TRUE(found.ok()) << found.status().to_string();
  EXPECT_EQ(*found, (Loid{88, 3}));
}

TEST_F(NamespaceRobustnessTest, LargeContextListsCompletely) {
  for (std::uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(
        Bind(*client_, root_, "entry" + std::to_string(i), Loid{88, 100 + i})
            .ok());
  }
  auto entries = List(*client_, root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 300u);
  // Survives a deactivation cycle intact.
  Deactivate(root_);
  entries = List(*client_, root_);
  ASSERT_TRUE(entries.ok());
  EXPECT_EQ(entries->size(), 300u);
}

TEST_F(NamespaceRobustnessTest, PathResolutionThroughNonContextFails) {
  // Bind a plain counter under a name, then try to walk *through* it.
  auto counter_class = DeriveCounterClass();
  auto counter =
      client_->create(counter_class, core::testing::CounterInit(0));
  ASSERT_TRUE(counter.ok());
  ASSERT_TRUE(Bind(*client_, root_, "obj", counter->loid).ok());
  auto result = ResolvePath(*client_, root_, "obj/deeper");
  EXPECT_FALSE(result.ok());
  // The counter has no Lookup method: kUnimplemented surfaces.
  EXPECT_EQ(result.status().code(), StatusCode::kUnimplemented);
}

TEST_F(NamespaceRobustnessTest, TwoRootsAreIndependent) {
  auto other_root = CreateContext(*client_);
  ASSERT_TRUE(other_root.ok());
  ASSERT_TRUE(Bind(*client_, root_, "shared-name", Loid{88, 5}).ok());
  ASSERT_TRUE(Bind(*client_, *other_root, "shared-name", Loid{88, 6}).ok());
  EXPECT_EQ(*Lookup(*client_, root_, "shared-name"), (Loid{88, 5}));
  EXPECT_EQ(*Lookup(*client_, *other_root, "shared-name"), (Loid{88, 6}));
}

}  // namespace
}  // namespace legion::naming
