// Workload generators for the Section 5 experiments.
//
// The paper's scalability argument rests on "most accesses will be local"
// and on skewed popularity ("commonly used classes"); these generators
// produce exactly those access patterns, deterministically.
#pragma once

#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

#include "base/rng.hpp"
#include "base/types.hpp"

namespace legion::sim {

// Zipf(s) sampler over {0..n-1} via inverse-CDF on a precomputed table.
// s = 0 degenerates to uniform; s ~ 0.8-1.2 models realistic skew.
class ZipfSampler {
 public:
  ZipfSampler(std::size_t n, double s) : cdf_(n) {
    assert(n > 0);
    double total = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      total += 1.0 / pow_s(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (double& v : cdf_) v /= total;
  }

  [[nodiscard]] std::size_t sample(Rng& rng) const {
    const double u = rng.unit();
    // Binary search for the first cdf >= u.
    std::size_t lo = 0;
    std::size_t hi = cdf_.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    return lo;
  }

  [[nodiscard]] std::size_t size() const { return cdf_.size(); }

 private:
  static double pow_s(double base, double s) {
    if (s == 0.0) return 1.0;
    if (s == 1.0) return base;
    return std::exp(s * std::log(base));
  }

  std::vector<double> cdf_;
};

// Picks a target index: with probability `local_fraction` from the caller's
// own partition of the target space, otherwise from anywhere. Models the
// paper's "most accesses will be local ... within a department or campus".
class LocalityMix {
 public:
  LocalityMix(std::size_t targets, std::size_t partitions,
              double local_fraction)
      : targets_(targets),
        partitions_(partitions == 0 ? 1 : partitions),
        local_fraction_(local_fraction) {
    assert(targets > 0);
  }

  [[nodiscard]] std::size_t sample(std::size_t caller_partition,
                                   Rng& rng) const {
    if (rng.chance(local_fraction_)) {
      const std::size_t base =
          (caller_partition % partitions_) * (targets_ / partitions_);
      const std::size_t span =
          (caller_partition % partitions_) == partitions_ - 1
              ? targets_ - base
              : targets_ / partitions_;
      return base + rng.below(span == 0 ? 1 : span);
    }
    return rng.below(targets_);
  }

 private:
  std::size_t targets_;
  std::size_t partitions_;
  double local_fraction_;
};

// Edge-triggered timer for interleaving periodic maintenance (failure
// sweeps, checkpoints) into a virtual-time workload loop: fires at most
// once per interval however often the loop polls it.
class PeriodicTick {
 public:
  PeriodicTick(SimTime interval_us, SimTime start_us = 0)
      : interval_(interval_us), next_(start_us + interval_us) {
    assert(interval_us > 0);
  }

  // True when `now` reached the next firing; arms the following one.
  [[nodiscard]] bool due(SimTime now) {
    if (now < next_) return false;
    next_ = now + interval_;
    return true;
  }

  [[nodiscard]] SimTime next_at() const { return next_; }
  [[nodiscard]] SimTime interval() const { return interval_; }

 private:
  SimTime interval_;
  SimTime next_;
};

}  // namespace legion::sim
