// Fixed-width result tables for the benchmark harness.
//
// Every experiment binary prints one or more of these — the rows/series the
// paper's evaluation would have reported.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace legion::sim {

class Table {
 public:
  Table(std::string title, std::vector<std::string> columns)
      : title_(std::move(title)), columns_(std::move(columns)) {}

  Table& row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::FILE* out = stdout) const {
    std::vector<std::size_t> widths(columns_.size());
    for (std::size_t c = 0; c < columns_.size(); ++c) {
      widths[c] = columns_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        if (row[c].size() > widths[c]) widths[c] = row[c].size();
      }
    }
    std::fprintf(out, "\n== %s ==\n", title_.c_str());
    print_row(out, columns_, widths);
    std::string rule;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      rule += std::string(widths[c], '-');
      if (c + 1 < widths.size()) rule += "-+-";
    }
    std::fprintf(out, "%s\n", rule.c_str());
    for (const auto& row : rows_) print_row(out, row, widths);
  }

  // Number formatting helpers for bench code.
  static std::string num(std::uint64_t v) { return std::to_string(v); }
  static std::string num(std::int64_t v) { return std::to_string(v); }
  static std::string num(double v, int precision = 2) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", precision, v);
    return buf;
  }

 private:
  static void print_row(std::FILE* out, const std::vector<std::string>& cells,
                        const std::vector<std::size_t>& widths) {
    std::string line;
    for (std::size_t c = 0; c < widths.size(); ++c) {
      const std::string& cell = c < cells.size() ? cells[c] : std::string{};
      line += cell;
      line += std::string(widths[c] - cell.size(), ' ');
      if (c + 1 < widths.size()) line += " | ";
    }
    std::fprintf(out, "%s\n", line.c_str());
  }

  std::string title_;
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace legion::sim
