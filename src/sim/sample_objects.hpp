// Sample Legion object implementations shared by benchmarks and examples.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/implementation_registry.hpp"
#include "core/method_table.hpp"
#include "core/object_impl.hpp"

namespace legion::sim {

// A worker with cheap methods: the standard invocation target for the
// Section 5 experiments. State is one counter so that lifecycle benches
// also exercise non-trivial SaveState/RestoreState.
class WorkerImpl final : public core::ObjectImpl {
 public:
  static constexpr std::string_view kName = "sim.worker";

  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kName);
  }

  void RegisterMethods(core::MethodTable& table) override {
    table.add("Noop", [](core::ObjectContext&, Reader&) -> Result<Buffer> {
      return Buffer{};
    });
    table.add("Echo", [](core::ObjectContext&, Reader& args) -> Result<Buffer> {
      return args.buffer();
    });
    table.add("Increment",
              [this](core::ObjectContext&, Reader&) -> Result<Buffer> {
                ++count_;
                Buffer out;
                Writer w(out);
                w.i64(count_);
                return out;
              });
    table.add("Get", [this](core::ObjectContext&, Reader&) -> Result<Buffer> {
      Buffer out;
      Writer w(out);
      w.i64(count_);
      return out;
    });
  }

  void SaveState(Writer& w) const override {
    w.i64(count_);
    w.bytes(ballast_);
  }
  Status RestoreState(Reader& r) override {
    if (r.exhausted()) return OkStatus();
    count_ = r.i64();
    ballast_ = r.bytes();
    return r.ok() ? OkStatus() : InvalidArgumentError("bad worker state");
  }

  [[nodiscard]] core::InterfaceDescription interface() const override {
    core::InterfaceDescription d("Worker");
    d.add_method(core::MethodSignature{"void", "Noop", {}});
    d.add_method(core::MethodSignature{"bytes", "Echo", {{"bytes", "data"}}});
    d.add_method(core::MethodSignature{"int", "Increment", {}});
    d.add_method(core::MethodSignature{"int", "Get", {}});
    return d;
  }

 private:
  std::int64_t count_ = 0;
  std::vector<std::uint8_t> ballast_;  // sized by init state (lifecycle bench)
};

inline Status RegisterSampleObjects(core::ImplementationRegistry& registry) {
  return registry.add(std::string(WorkerImpl::kName),
                      [] { return std::make_unique<WorkerImpl>(); });
}

// Init state giving the worker `ballast_bytes` of saved state.
inline Buffer WorkerInit(std::int64_t start, std::size_t ballast_bytes) {
  Buffer b;
  Writer w(b);
  w.i64(start);
  w.bytes(std::vector<std::uint8_t>(ballast_bytes, 0xAB));
  return b;
}

}  // namespace legion::sim
