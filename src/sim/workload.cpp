#include "sim/workload.hpp"

// Header-only; TU anchors the target.
