// The Legion security model's enforcement hook (paper Section 2.4).
//
// "Every object provides certain security-related member functions,
//  including MayI() and Iam(). These functions may default to empty for the
//  case of no security... Legion will invoke the known member functions to
//  define and enforce security, thus giving objects the responsibility of
//  defining and ensuring the policy they choose."
//
// A SecurityPolicy is the implementation behind an object's MayI(): the
// dispatch layer consults it before every method executes, passing the
// method name and the RA/SA/CA environment triple that accompanied the
// invocation. Objects (and whole Magistrates — Section 3.8 says a Magistrate
// "may choose to refuse to service any of the requests") select or implement
// their own policies; these are the stock ones.
#pragma once

#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "base/loid.hpp"
#include "base/status.hpp"
#include "rt/messenger.hpp"

namespace legion::security {

class SecurityPolicy {
 public:
  virtual ~SecurityPolicy() = default;

  // OK to proceed, or kPermissionDenied with the reason.
  [[nodiscard]] virtual Status MayI(const std::string& method,
                                    const rt::EnvTriple& env) const = 0;
  [[nodiscard]] virtual std::string name() const = 0;
};

using PolicyPtr = std::shared_ptr<const SecurityPolicy>;

// "These functions may default to empty for the case of no security."
class AllowAll final : public SecurityPolicy {
 public:
  [[nodiscard]] Status MayI(const std::string&, const rt::EnvTriple&) const override {
    return OkStatus();
  }
  [[nodiscard]] std::string name() const override { return "allow-all"; }
};

class DenyAll final : public SecurityPolicy {
 public:
  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple&) const override {
    return PermissionDeniedError("deny-all policy refuses " + method);
  }
  [[nodiscard]] std::string name() const override { return "deny-all"; }
};

// Which member of the RA/SA/CA triple a policy authenticates against. The
// immediate caller (CA) is right for direct access control; the responsible
// agent (RA) is right for resource providers, because requests often arrive
// *via* infrastructure objects acting on a user's behalf — e.g. a class
// object calling StoreNew on a Magistrate during Create().
enum class AgentSelector : std::uint8_t {
  kCallingAgent = 0,
  kResponsibleAgent = 1,
};

[[nodiscard]] inline const Loid& SelectAgent(const rt::EnvTriple& env,
                                             AgentSelector selector) {
  return selector == AgentSelector::kResponsibleAgent ? env.responsible_agent
                                                      : env.calling_agent;
}

// Grants access when the selected agent is on the list. The empty-key
// system triple (used by core objects during bootstrap) can be admitted
// explicitly via allow_system.
class CallerAcl final : public SecurityPolicy {
 public:
  CallerAcl(std::vector<Loid> allowed, bool allow_system,
            AgentSelector selector = AgentSelector::kCallingAgent);
  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple& env) const override;
  [[nodiscard]] std::string name() const override { return "caller-acl"; }

 private:
  std::set<Loid> allowed_;
  bool allow_system_;
  AgentSelector selector_;
};

// Grants access when the selected agent is an instance of a trusted class —
// the DOE scenario of Section 2.1.3: "insist ... that all objects that the
// DOE owns execute only on Magistrates that it trusts."
class TrustedClassPolicy final : public SecurityPolicy {
 public:
  TrustedClassPolicy(std::vector<std::uint64_t> trusted_class_ids,
                     bool allow_system,
                     AgentSelector selector = AgentSelector::kCallingAgent);
  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple& env) const override;
  [[nodiscard]] std::string name() const override { return "trusted-class"; }

 private:
  std::set<std::uint64_t> trusted_;
  bool allow_system_;
  AgentSelector selector_;
};

// Restricts individual methods: unlisted methods fall through to a base
// policy. Used to expose read-only interfaces publicly while guarding
// mutators.
class MethodGuard final : public SecurityPolicy {
 public:
  MethodGuard(std::set<std::string> guarded_methods, PolicyPtr guarded_policy,
              PolicyPtr default_policy);
  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple& env) const override;
  [[nodiscard]] std::string name() const override { return "method-guard"; }

 private:
  std::set<std::string> guarded_;
  PolicyPtr guarded_policy_;
  PolicyPtr default_policy_;
};

// All composed policies must consent.
class AllOf final : public SecurityPolicy {
 public:
  explicit AllOf(std::vector<PolicyPtr> policies);
  [[nodiscard]] Status MayI(const std::string& method,
                            const rt::EnvTriple& env) const override;
  [[nodiscard]] std::string name() const override { return "all-of"; }

 private:
  std::vector<PolicyPtr> policies_;
};

[[nodiscard]] inline PolicyPtr MakeAllowAll() {
  return std::make_shared<AllowAll>();
}
[[nodiscard]] inline PolicyPtr MakeDenyAll() {
  return std::make_shared<DenyAll>();
}

// True for the bootstrap/system environment (all-nil triple).
[[nodiscard]] inline bool IsSystemEnv(const rt::EnvTriple& env) {
  return !env.responsible_agent.valid() && !env.security_agent.valid() &&
         !env.calling_agent.valid();
}

}  // namespace legion::security
