#include "security/policy.hpp"

namespace legion::security {

CallerAcl::CallerAcl(std::vector<Loid> allowed, bool allow_system,
                     AgentSelector selector)
    : allowed_(allowed.begin(), allowed.end()),
      allow_system_(allow_system),
      selector_(selector) {}

Status CallerAcl::MayI(const std::string& method,
                       const rt::EnvTriple& env) const {
  if (allow_system_ && IsSystemEnv(env)) return OkStatus();
  const Loid& agent = SelectAgent(env, selector_);
  if (allowed_.contains(agent)) return OkStatus();
  return PermissionDeniedError("agent " + agent.to_string() +
                               " not on ACL for " + method);
}

TrustedClassPolicy::TrustedClassPolicy(
    std::vector<std::uint64_t> trusted_class_ids, bool allow_system,
    AgentSelector selector)
    : trusted_(trusted_class_ids.begin(), trusted_class_ids.end()),
      allow_system_(allow_system),
      selector_(selector) {}

Status TrustedClassPolicy::MayI(const std::string& method,
                                const rt::EnvTriple& env) const {
  if (allow_system_ && IsSystemEnv(env)) return OkStatus();
  const Loid& agent = SelectAgent(env, selector_);
  if (trusted_.contains(agent.class_id())) return OkStatus();
  return PermissionDeniedError("agent's class " +
                               std::to_string(agent.class_id()) +
                               " untrusted for " + method);
}

MethodGuard::MethodGuard(std::set<std::string> guarded_methods,
                         PolicyPtr guarded_policy, PolicyPtr default_policy)
    : guarded_(std::move(guarded_methods)),
      guarded_policy_(std::move(guarded_policy)),
      default_policy_(std::move(default_policy)) {}

Status MethodGuard::MayI(const std::string& method,
                         const rt::EnvTriple& env) const {
  const PolicyPtr& policy =
      guarded_.contains(method) ? guarded_policy_ : default_policy_;
  return policy ? policy->MayI(method, env) : OkStatus();
}

AllOf::AllOf(std::vector<PolicyPtr> policies) : policies_(std::move(policies)) {}

Status AllOf::MayI(const std::string& method, const rt::EnvTriple& env) const {
  for (const auto& policy : policies_) {
    LEGION_RETURN_IF_ERROR(policy->MayI(method, env));
  }
  return OkStatus();
}

}  // namespace legion::security
