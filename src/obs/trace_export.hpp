// Exporters for the observability surfaces.
//
// Chrome/Perfetto trace-event JSON from TraceRing contents: spans are
// rebuilt by pairing their open/close hops — kInvoke/kReply on the caller,
// kRequest/kServe on the callee — into complete ("X") events keyed by
// span_id. One process ("pid") per host, one thread ("tid") per endpoint,
// so chrome://tracing / ui.perfetto.dev render the fleet as a lane per
// object grouped by machine. Unpaired hops (a call still in flight when the
// ring was dumped, bounces, activations) become instant ("i") events.
//
// Prometheus text exposition format from a Registry: counters and gauges as
// single samples, histograms as the native cumulative-bucket form
// (`_bucket{le="..."}` / `_sum` / `_count`) so merged-percentile queries
// work server-side too.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace legion::obs {

// Writes the full trace-event JSON document ({"traceEvents": [...]}).
// Events are sorted by timestamp (the CI validator checks monotonicity).
void WriteChromeTrace(const std::vector<TraceHop>& hops, std::ostream& out);

// Convenience wrapper: returns false when the file cannot be opened.
bool WriteChromeTraceFile(const std::vector<TraceHop>& hops,
                          const std::string& path);

// Prometheus text format. Metric names are sanitized ('.' / '-' -> '_').
void WritePrometheus(const Registry& registry, std::ostream& out);

// Name sanitizer used by WritePrometheus, exposed for tests.
[[nodiscard]] std::string PrometheusName(std::string_view name);

}  // namespace legion::obs
