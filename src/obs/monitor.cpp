#include "obs/monitor.hpp"

#include <algorithm>

namespace legion::obs {

namespace {

constexpr std::uint32_t kMaxWireEntries = 1u << 16;  // hostile-count guard

template <typename T, typename WriteFn>
void WritePairs(Writer& w, const std::vector<std::pair<std::string, T>>& v,
                WriteFn&& write_value) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& [name, value] : v) {
    w.str(name);
    write_value(value);
  }
}

template <typename T, typename ReadFn>
std::vector<std::pair<std::string, T>> ReadPairs(Reader& r,
                                                 ReadFn&& read_value) {
  std::vector<std::pair<std::string, T>> out;
  const std::uint32_t n = r.u32();
  if (n > kMaxWireEntries) {
    r.mark_failed();
    return out;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    std::string name = r.str();
    out.emplace_back(std::move(name), read_value());
  }
  if (!r.ok()) out.clear();
  return out;
}

}  // namespace

void MetricsSnapshot::Serialize(Writer& w) const {
  w.u32(host);
  w.i64(at);
  w.u64(seq);
  WritePairs(w, counters, [&](std::uint64_t v) { w.u64(v); });
  WritePairs(w, gauges, [&](std::int64_t v) { w.i64(v); });
  WritePairs(w, histograms,
             [&](const HistogramSnapshot& v) { v.Serialize(w); });
}

MetricsSnapshot MetricsSnapshot::Deserialize(Reader& r) {
  MetricsSnapshot out;
  out.host = r.u32();
  out.at = r.i64();
  out.seq = r.u64();
  out.counters =
      ReadPairs<std::uint64_t>(r, [&] { return r.u64(); });
  out.gauges = ReadPairs<std::int64_t>(r, [&] { return r.i64(); });
  out.histograms = ReadPairs<HistogramSnapshot>(
      r, [&] { return HistogramSnapshot::Deserialize(r); });
  if (!r.ok()) return MetricsSnapshot{};
  return out;
}

std::string MetricHostSuffix(std::uint32_t host) {
  return ".host." + std::to_string(host);
}

MetricsSnapshot SnapshotCollector::collect(SimTime now) {
  MetricsSnapshot snap;
  snap.host = host_;
  snap.at = now;
  snap.seq = ++seq_;

  auto canonical = [this](std::string_view name) -> std::string {
    // "msg.service_us.host.3" -> "msg.service_us" (only for our host).
    if (name.size() <= suffix_.size()) return {};
    if (name.substr(name.size() - suffix_.size()) != suffix_) return {};
    return std::string(name.substr(0, name.size() - suffix_.size()));
  };

  registry_.visit(
      [&](std::string_view name, const Counter& c) {
        const std::string key = canonical(name);
        if (key.empty()) return;
        const std::uint64_t value = c.value();
        std::uint64_t& last = last_counters_[key];
        const std::uint64_t delta = value >= last ? value - last : value;
        last = value;
        if (delta != 0 || snap.seq == 1) snap.counters.emplace_back(key, delta);
      },
      [&](std::string_view name, const Gauge& g) {
        const std::string key = canonical(name);
        if (key.empty()) return;
        snap.gauges.emplace_back(key, g.value());
      },
      [&](std::string_view name, const Histogram& h) {
        const std::string key = canonical(name);
        if (key.empty()) return;
        const HistogramSnapshot current = h.snapshot();
        HistogramSnapshot& last = last_hists_[key];
        HistogramSnapshot delta = current.delta_since(last);
        last = current;
        if (delta.count != 0) snap.histograms.emplace_back(key, std::move(delta));
      });
  return snap;
}

void FleetRow::Serialize(Writer& w) const {
  w.u32(host);
  w.u64(reports);
  w.i64(first_at);
  w.i64(last_at);
  w.u64(calls);
  w.f64(calls_per_sec);
  w.u64(p50_us);
  w.u64(p99_us);
  w.u64(queue_p99_us);
  w.i64(queue_depth);
  w.u8(static_cast<std::uint8_t>((slow ? 1 : 0) | (suspect ? 2 : 0)));
}

FleetRow FleetRow::Deserialize(Reader& r) {
  FleetRow row;
  row.host = r.u32();
  row.reports = r.u64();
  row.first_at = r.i64();
  row.last_at = r.i64();
  row.calls = r.u64();
  row.calls_per_sec = r.f64();
  row.p50_us = r.u64();
  row.p99_us = r.u64();
  row.queue_p99_us = r.u64();
  row.queue_depth = r.i64();
  const std::uint8_t flags = r.u8();
  row.slow = (flags & 1) != 0;
  row.suspect = (flags & 2) != 0;
  if (!r.ok()) return FleetRow{};
  return row;
}

void MethodRow::Serialize(Writer& w) const {
  w.str(method);
  w.u64(count);
  w.u64(p50_us);
  w.u64(p99_us);
  w.u64(max_us);
}

MethodRow MethodRow::Deserialize(Reader& r) {
  MethodRow row;
  row.method = r.str();
  row.count = r.u64();
  row.p50_us = r.u64();
  row.p99_us = r.u64();
  row.max_us = r.u64();
  if (!r.ok()) return MethodRow{};
  return row;
}

FleetMonitor::FleetMonitor(Registry& registry)
    : registry_(registry),
      reports_(registry.counter("monitor.reports")),
      hosts_gauge_(registry.gauge("monitor.hosts")),
      slow_gauge_(registry.gauge("monitor.slow_hosts")),
      suspect_gauge_(registry.gauge("monitor.suspect_hosts")) {}

void FleetMonitor::ingest(const MetricsSnapshot& snapshot, SimTime now) {
  HostState& state = hosts_[snapshot.host];
  if (state.reports == 0) state.first_at = snapshot.at;
  ++state.reports;
  state.last_at = std::max(state.last_at, snapshot.at);
  state.last_ingest_at = now;
  for (const auto& [name, delta] : snapshot.counters) {
    state.counters[name] += delta;
  }
  for (const auto& [name, value] : snapshot.gauges) {
    state.gauges[name] = value;
  }
  for (const auto& [name, delta] : snapshot.histograms) {
    state.histograms[name].merge(delta);
  }
  reports_.inc();
  hosts_gauge_.set(static_cast<std::int64_t>(hosts_.size()));
}

std::vector<FleetRow> FleetMonitor::rows(SimTime now) {
  std::vector<FleetRow> out;
  out.reserve(hosts_.size());
  std::int64_t slow_count = 0;
  std::int64_t suspect_count = 0;
  for (const auto& [host, state] : hosts_) {
    FleetRow row;
    row.host = host;
    row.reports = state.reports;
    row.first_at = state.first_at;
    row.last_at = state.last_at;
    if (auto it = state.counters.find("msg.requests");
        it != state.counters.end()) {
      row.calls = it->second;
    }
    const SimTime span = state.last_at - state.first_at;
    if (span > 0) {
      row.calls_per_sec =
          static_cast<double>(row.calls) * 1e6 / static_cast<double>(span);
    }
    if (auto it = state.histograms.find("msg.service_us");
        it != state.histograms.end()) {
      row.p50_us = it->second.percentile(0.50);
      row.p99_us = it->second.percentile(0.99);
    }
    if (auto it = state.histograms.find("msg.queue_us");
        it != state.histograms.end()) {
      row.queue_p99_us = it->second.percentile(0.99);
    }
    if (auto it = state.gauges.find("msg.pending"); it != state.gauges.end()) {
      row.queue_depth = it->second;
    }
    // One load per knob per row: a concurrent setter change applies between
    // rows, never mid-comparison.
    const std::uint64_t slow_threshold =
        slow_threshold_us_.load(std::memory_order_relaxed);
    const SimTime stale_after = stale_after_us_.load(std::memory_order_relaxed);
    row.slow = row.p99_us > slow_threshold;
    row.suspect = stale_after > 0 && state.last_ingest_at > 0 &&
                  now - state.last_ingest_at > stale_after;
    if (row.slow) ++slow_count;
    if (row.suspect) ++suspect_count;
    out.push_back(std::move(row));
  }
  // Refresh the consultable flags: the recovery sweep reads these gauges
  // without calling into the monitor's own types.
  slow_gauge_.set(slow_count);
  suspect_gauge_.set(suspect_count);
  return out;
}

std::vector<MethodRow> FleetMonitor::method_rows() const {
  // Merge per-method service histograms ("msg.method_us.<name>") across
  // hosts, then read the percentiles off the merged buckets.
  std::map<std::string, HistogramSnapshot> merged;
  constexpr std::string_view kPrefix = "msg.method_us.";
  for (const auto& [_, state] : hosts_) {
    for (const auto& [name, hist] : state.histograms) {
      if (name.size() <= kPrefix.size() ||
          std::string_view(name).substr(0, kPrefix.size()) != kPrefix) {
        continue;
      }
      merged[name.substr(kPrefix.size())].merge(hist);
    }
  }
  std::vector<MethodRow> out;
  out.reserve(merged.size());
  for (const auto& [method, hist] : merged) {
    MethodRow row;
    row.method = method;
    row.count = hist.count;
    row.p50_us = hist.percentile(0.50);
    row.p99_us = hist.percentile(0.99);
    row.max_us = hist.max;
    out.push_back(std::move(row));
  }
  return out;
}

}  // namespace legion::obs
