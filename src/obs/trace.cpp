#include "obs/trace.hpp"

#include <algorithm>
#include <cassert>
#include <cstring>

namespace legion::obs {

TraceId NextTraceId() {
  static std::atomic<TraceId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

SpanId NextSpanId() {
  static std::atomic<SpanId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string_view to_string(HopKind k) {
  switch (k) {
    case HopKind::kInvoke: return "invoke";
    case HopKind::kRequest: return "request";
    case HopKind::kReply: return "reply";
    case HopKind::kBounce: return "bounce";
    case HopKind::kActivate: return "activate";
    case HopKind::kServe: return "serve";
  }
  return "unknown";
}

namespace {
// Token separators of structured method labels ("Sweep-Instances.phase2").
[[nodiscard]] bool IsTokenBreak(char c) {
  return c == '-' || c == '.' || c == '_' || c == '/';
}
}  // namespace

void TraceHop::set_method(std::string_view m) {
  std::size_t n = m.size();
  if (n > method.size() - 1) {
    // Over-long label: drop whole trailing tokens rather than cutting
    // mid-token, so "Sweep-Instances-phase-two" truncates to
    // "Sweep-Instances-phase", never to a misleading "Sweep-Instances-ph".
    n = method.size() - 1;
    std::size_t cut = n;
    while (cut > 0 && !IsTokenBreak(m[cut])) --cut;
    // Keep the hard cut only when the first token alone overflows the slot
    // (no separator to fall back to).
    if (cut > 0) n = cut;
  }
  std::memcpy(method.data(), m.data(), n);
  method[n] = '\0';
  // The slot is always NUL-terminated and method_view() reads back exactly
  // what survived truncation.
  assert(method[n] == '\0');
  assert(std::strlen(method.data()) == n);
}

std::string_view TraceHop::method_view() const {
  return std::string_view(method.data(),
                          std::strlen(method.data()));
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRing::record(const TraceHop& hop) {
  if (!enabled()) return;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  base::MutexLock lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(hop);
  } else {
    ring_[next_] = hop;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceHop> TraceRing::last(std::size_t n) const {
  base::MutexLock lock(mutex_);
  std::vector<TraceHop> out;
  const std::size_t have = ring_.size();
  const std::size_t take = std::min(n, have);
  out.reserve(take);
  // Oldest retained entry: when the ring is full, slot next_; otherwise 0.
  const std::size_t start =
      have < capacity_ ? have - take : (next_ + (have - take)) % capacity_;
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(ring_[(start + i) % have]);
  }
  return out;
}

std::vector<TraceHop> TraceRing::for_trace(TraceId id) const {
  std::vector<TraceHop> out;
  for (const TraceHop& hop : last(capacity_)) {
    if (hop.trace_id == id) out.push_back(hop);
  }
  return out;
}

void TraceRing::clear() {
  base::MutexLock lock(mutex_);
  ring_.clear();
  next_ = 0;
}

}  // namespace legion::obs
