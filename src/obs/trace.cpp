#include "obs/trace.hpp"

#include <algorithm>
#include <cstring>

namespace legion::obs {

TraceId NextTraceId() {
  static std::atomic<TraceId> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

std::string_view to_string(HopKind k) {
  switch (k) {
    case HopKind::kInvoke: return "invoke";
    case HopKind::kRequest: return "request";
    case HopKind::kReply: return "reply";
    case HopKind::kBounce: return "bounce";
    case HopKind::kActivate: return "activate";
  }
  return "unknown";
}

void TraceHop::set_method(std::string_view m) {
  const std::size_t n = std::min(m.size(), method.size() - 1);
  std::memcpy(method.data(), m.data(), n);
  method[n] = '\0';
}

std::string_view TraceHop::method_view() const {
  return std::string_view(method.data(),
                          std::strlen(method.data()));
}

TraceRing::TraceRing(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {
  ring_.reserve(capacity_);
}

void TraceRing::record(const TraceHop& hop) {
  if (!enabled()) return;
  recorded_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard lock(mutex_);
  if (ring_.size() < capacity_) {
    ring_.push_back(hop);
  } else {
    ring_[next_] = hop;
  }
  next_ = (next_ + 1) % capacity_;
}

std::vector<TraceHop> TraceRing::last(std::size_t n) const {
  std::lock_guard lock(mutex_);
  std::vector<TraceHop> out;
  const std::size_t have = ring_.size();
  const std::size_t take = std::min(n, have);
  out.reserve(take);
  // Oldest retained entry: when the ring is full, slot next_; otherwise 0.
  const std::size_t start =
      have < capacity_ ? have - take : (next_ + (have - take)) % capacity_;
  for (std::size_t i = 0; i < take; ++i) {
    out.push_back(ring_[(start + i) % have]);
  }
  return out;
}

std::vector<TraceHop> TraceRing::for_trace(TraceId id) const {
  std::vector<TraceHop> out;
  for (const TraceHop& hop : last(capacity_)) {
    if (hop.trace_id == id) out.push_back(hop);
  }
  return out;
}

void TraceRing::clear() {
  std::lock_guard lock(mutex_);
  ring_.clear();
  next_ = 0;
}

}  // namespace legion::obs
