#include "obs/trace_export.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <map>
#include <ostream>
#include <set>
#include <unordered_map>

namespace legion::obs {

namespace {

// Method labels are identifiers, but keep the writer safe for any bytes.
std::string JsonEscape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

struct Event {
  SimTime ts = 0;
  SimTime dur = 0;       // "X" only
  char ph = 'X';         // 'X' complete, 'i' instant
  std::uint32_t pid = 0;
  std::uint64_t tid = 0;
  std::string name;
  std::string cat;
  TraceId trace = 0;
  SpanId span = 0;
  SpanId parent = 0;
  std::uint32_t queue_us = 0;
  std::uint32_t service_us = 0;
  bool has_times = false;  // kServe carried the queue/service split
};

void WriteEvent(std::ostream& out, const Event& e, bool& first) {
  if (!first) out << ",\n";
  first = false;
  out << "  {\"name\":\"" << JsonEscape(e.name) << "\",\"cat\":\"" << e.cat
      << "\",\"ph\":\"" << e.ph << "\",\"ts\":" << e.ts;
  if (e.ph == 'X') out << ",\"dur\":" << e.dur;
  if (e.ph == 'i') out << ",\"s\":\"t\"";
  out << ",\"pid\":" << e.pid << ",\"tid\":" << e.tid;
  out << ",\"args\":{\"trace\":" << e.trace << ",\"span\":" << e.span
      << ",\"parent\":" << e.parent;
  if (e.has_times) {
    out << ",\"queue_us\":" << e.queue_us << ",\"service_us\":" << e.service_us;
  }
  out << "}}";
}

}  // namespace

void WriteChromeTrace(const std::vector<TraceHop>& hops, std::ostream& out) {
  // Pair span opens with their closes. The ring is oldest-first, so an
  // open's matching close (same span, same side) is the next one seen.
  struct OpenSide {
    const TraceHop* open = nullptr;
    bool closed = false;
  };
  std::unordered_map<SpanId, OpenSide> client_open;  // kInvoke -> kReply
  std::unordered_map<SpanId, OpenSide> server_open;  // kRequest -> kServe

  std::vector<Event> events;
  events.reserve(hops.size());
  std::set<std::uint32_t> pids;

  auto base_event = [](const TraceHop& h) {
    Event e;
    e.ts = h.at;
    e.pid = h.host;
    e.trace = h.trace_id;
    e.span = h.span_id;
    e.parent = h.parent_span_id;
    e.name = std::string(h.method_view());
    if (e.name.empty()) e.name = std::string(to_string(h.kind));
    return e;
  };

  auto close_span = [&](std::unordered_map<SpanId, OpenSide>& opens,
                        const TraceHop& h, std::string cat,
                        std::uint64_t tid) {
    auto it = opens.find(h.span_id);
    if (it == opens.end() || it->second.closed) return false;
    const TraceHop& open = *it->second.open;
    it->second.closed = true;
    Event e = base_event(open);
    e.dur = h.at >= open.at ? h.at - open.at : 0;
    e.cat = std::move(cat);
    e.tid = tid;
    if (e.name.empty() || e.name == to_string(open.kind)) {
      // The close side may carry the method label the open side lacked.
      const std::string_view m = h.method_view();
      if (!m.empty()) e.name = std::string(m);
    }
    if (h.kind == HopKind::kServe) {
      e.queue_us = h.queue_us;
      e.service_us = h.service_us;
      e.has_times = true;
    }
    events.push_back(std::move(e));
    return true;
  };

  for (const TraceHop& h : hops) {
    pids.insert(h.host);
    switch (h.kind) {
      case HopKind::kInvoke:
        if (h.span_id != 0) client_open[h.span_id] = OpenSide{&h, false};
        break;
      case HopKind::kRequest:
        if (h.span_id != 0) server_open[h.span_id] = OpenSide{&h, false};
        break;
      case HopKind::kReply: {
        // tid = the caller endpoint (the reply's destination).
        if (!close_span(client_open, h, "client", h.dst)) {
          Event e = base_event(h);
          e.ph = 'i';
          e.cat = "reply";
          e.tid = h.dst;
          events.push_back(std::move(e));
        }
        break;
      }
      case HopKind::kServe: {
        // tid = the serving endpoint (the reply's source).
        if (!close_span(server_open, h, "server", h.src)) {
          Event e = base_event(h);
          e.ph = 'i';
          e.cat = "serve";
          e.tid = h.src;
          events.push_back(std::move(e));
        }
        break;
      }
      case HopKind::kBounce:
      case HopKind::kActivate: {
        Event e = base_event(h);
        e.ph = 'i';
        e.cat = std::string(to_string(h.kind));
        e.tid = h.dst;
        events.push_back(std::move(e));
        break;
      }
    }
  }

  // Opens whose close fell outside the ring (or is still in flight).
  auto flush_unclosed = [&](std::unordered_map<SpanId, OpenSide>& opens,
                            std::string_view cat, bool tid_is_src) {
    for (const auto& [span, side] : opens) {
      if (side.closed) continue;
      const TraceHop& h = *side.open;
      Event e = base_event(h);
      e.ph = 'i';
      e.cat = std::string(cat) + "-unclosed";
      e.tid = tid_is_src ? h.src : h.dst;
      events.push_back(std::move(e));
    }
  };
  flush_unclosed(client_open, "client", /*tid_is_src=*/true);
  flush_unclosed(server_open, "server", /*tid_is_src=*/false);

  std::stable_sort(events.begin(), events.end(),
                   [](const Event& a, const Event& b) { return a.ts < b.ts; });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  bool first = true;
  for (const std::uint32_t pid : pids) {
    if (!first) out << ",\n";
    first = false;
    out << "  {\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid
        << ",\"tid\":0,\"ts\":0,\"args\":{\"name\":\"host-" << pid << "\"}}";
  }
  for (const Event& e : events) WriteEvent(out, e, first);
  out << "\n]}\n";
}

bool WriteChromeTraceFile(const std::vector<TraceHop>& hops,
                          const std::string& path) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  WriteChromeTrace(hops, out);
  return static_cast<bool>(out);
}

std::string PrometheusName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 7);
  out = "legion_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out += ok ? c : '_';
  }
  return out;
}

void WritePrometheus(const Registry& registry, std::ostream& out) {
  registry.visit(
      [&](std::string_view name, const Counter& c) {
        const std::string n = PrometheusName(name);
        out << "# TYPE " << n << " counter\n";
        out << n << " " << c.value() << "\n";
      },
      [&](std::string_view name, const Gauge& g) {
        const std::string n = PrometheusName(name);
        out << "# TYPE " << n << " gauge\n";
        out << n << " " << g.value() << "\n";
      },
      [&](std::string_view name, const Histogram& h) {
        const HistogramSnapshot snap = h.snapshot();
        const std::string n = PrometheusName(name);
        out << "# TYPE " << n << " histogram\n";
        std::uint64_t cumulative = 0;
        for (std::size_t b = 0; b < snap.buckets.size(); ++b) {
          if (snap.buckets[b] == 0) continue;
          cumulative += snap.buckets[b];
          out << n << "_bucket{le=\"" << Histogram::bucket_ceiling(b)
              << "\"} " << cumulative << "\n";
        }
        out << n << "_bucket{le=\"+Inf\"} " << snap.count << "\n";
        out << n << "_sum " << snap.sum << "\n";
        out << n << "_count " << snap.count << "\n";
      });
}

}  // namespace legion::obs
