// Hop-by-hop causal tracing for the invocation path.
//
// Every root invocation mints a TraceId; the (trace_id, hop) pair rides in
// both the transport Envelope and the method-invocation EnvTriple, so a
// nested call chain — object -> class -> magistrate -> host — shares one
// trace with monotonically increasing hop numbers. The Messenger records
// each stamp into the owning runtime's TraceRing: a bounded ring that keeps
// the last N hops for post-mortem inspection (the shell's `stats` command,
// test assertions).
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <mutex>
#include <string_view>
#include <vector>

#include "base/types.hpp"

namespace legion::obs {

using TraceId = std::uint64_t;

// Process-wide, never returns 0 (0 means "no trace yet" on the wire).
TraceId NextTraceId();

enum class HopKind : std::uint8_t {
  kInvoke = 0,   // request leaves the caller
  kRequest = 1,  // request arrives at the callee
  kReply = 2,    // reply arrives back at the caller
  kBounce = 3,   // transport NACK arrives (stale binding)
  kActivate = 4, // a Host Object starts an object on behalf of this trace
};

[[nodiscard]] std::string_view to_string(HopKind k);

struct TraceHop {
  TraceId trace_id = 0;
  std::uint32_t hop = 0;
  SimTime at = 0;          // runtime clock (virtual or wall us)
  std::uint64_t src = 0;   // endpoint ids
  std::uint64_t dst = 0;
  HopKind kind = HopKind::kInvoke;
  // Fixed-size method label: no allocation on the record path.
  std::array<char, 24> method{};

  void set_method(std::string_view m);
  [[nodiscard]] std::string_view method_view() const;
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  // Recording can be switched off wholesale (the overhead bench measures
  // both states); the flag is checked before any lock is taken.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const TraceHop& hop);

  // The most recent `n` hops, oldest first.
  [[nodiscard]] std::vector<TraceHop> last(std::size_t n) const;
  // Every retained hop of one trace, oldest first.
  [[nodiscard]] std::vector<TraceHop> for_trace(TraceId id) const;

  // Total hops ever recorded (including those the ring has since dropped).
  [[nodiscard]] std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  const std::size_t capacity_;
  mutable std::mutex mutex_;
  std::vector<TraceHop> ring_;  // guarded by mutex_; size <= capacity_
  std::size_t next_ = 0;        // slot the next record overwrites
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> recorded_{0};
};

}  // namespace legion::obs
