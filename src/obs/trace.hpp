// Span-based distributed tracing for the invocation path.
//
// Every *sampled* root invocation mints a TraceId; each Messenger send then
// opens a child span — (span_id, parent_span_id) ride next to the trace id
// in both the transport Envelope and the method-invocation EnvTriple — so a
// nested call chain (object -> class -> magistrate -> host) forms one tree
// of spans across hosts. A span is one call edge observed from both sides:
//
//   kInvoke  (caller,  span open)   ... kReply (caller,  span close)
//   kRequest (callee,  span open)   ... kServe (callee,  span close,
//                                        carrying queue_us / service_us)
//
// The Messenger records each stamp into the owning runtime's TraceRing: a
// bounded ring that keeps the last N hops for post-mortem inspection (the
// shell's `stats`/`trace dump` commands, the Chrome exporter, tests).
// Unsampled roots keep trace_id == 0 end to end and record nothing.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <string_view>
#include <vector>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "base/types.hpp"

namespace legion::obs {

using TraceId = std::uint64_t;
using SpanId = std::uint64_t;

// Process-wide, never returns 0 (0 means "no trace yet" on the wire).
TraceId NextTraceId();
// Process-wide, never returns 0 (0 means "no span" / "root has no parent").
SpanId NextSpanId();

enum class HopKind : std::uint8_t {
  kInvoke = 0,   // request leaves the caller (client span opens)
  kRequest = 1,  // request dequeued at the callee (server span opens)
  kReply = 2,    // reply arrives back at the caller (client span closes)
  kBounce = 3,   // transport NACK arrives (stale binding)
  kActivate = 4, // a Host Object starts an object on behalf of this trace
  kServe = 5,    // reply posted by the callee (server span closes)
};

[[nodiscard]] std::string_view to_string(HopKind k);

struct TraceHop {
  TraceId trace_id = 0;
  std::uint32_t hop = 0;
  SimTime at = 0;          // runtime clock (virtual or wall us)
  std::uint64_t src = 0;   // endpoint ids
  std::uint64_t dst = 0;
  HopKind kind = HopKind::kInvoke;
  // Span edge this hop belongs to (0 on pre-span records like bounces of
  // untraced messages; never 0 when trace_id != 0).
  SpanId span_id = 0;
  SpanId parent_span_id = 0;
  // Host of the endpoint that recorded the hop (exporter "pid").
  std::uint32_t host = 0;
  // Server-side latency split, kServe only: enqueue->dequeue vs
  // dequeue->reply.
  std::uint32_t queue_us = 0;
  std::uint32_t service_us = 0;
  // Fixed-size method label: no allocation on the record path.
  std::array<char, 24> method{};

  void set_method(std::string_view m);
  [[nodiscard]] std::string_view method_view() const;
};

// Head-based 1-in-N sampling, decided once where a trace is minted (the root
// invocation): either the whole call tree is traced at full fidelity or none
// of it is, so partial trees never appear and the per-call cost of an
// unsampled root is one relaxed fetch_add. N == 1 (the default) samples
// everything — the mode every deterministic test runs in.
class TraceSampler {
 public:
  void set_every(std::uint64_t n) {
    every_.store(n == 0 ? 1 : n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t every() const {
    return every_.load(std::memory_order_relaxed);
  }

  // True when the next root should be traced. Counter-based (deterministic
  // under a deterministic invocation order): ticket 0, N, 2N, ... sample.
  [[nodiscard]] bool sample() {
    const std::uint64_t n = every_.load(std::memory_order_relaxed);
    if (n <= 1) return true;
    return ticket_.fetch_add(1, std::memory_order_relaxed) % n == 0;
  }

 private:
  std::atomic<std::uint64_t> every_{1};
  std::atomic<std::uint64_t> ticket_{0};
};

class TraceRing {
 public:
  static constexpr std::size_t kDefaultCapacity = 1024;

  explicit TraceRing(std::size_t capacity = kDefaultCapacity);

  // Recording can be switched off wholesale (the overhead bench measures
  // both states); the flag is checked before any lock is taken.
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const {
    return enabled_.load(std::memory_order_relaxed);
  }

  void record(const TraceHop& hop);

  // The most recent `n` hops, oldest first.
  [[nodiscard]] std::vector<TraceHop> last(std::size_t n) const;
  // Every retained hop of one trace, oldest first.
  [[nodiscard]] std::vector<TraceHop> for_trace(TraceId id) const;

  // Total hops ever recorded (including those the ring has since dropped).
  [[nodiscard]] std::uint64_t recorded() const {
    return recorded_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::size_t capacity() const { return capacity_; }

  void clear();

 private:
  const std::size_t capacity_;
  // Leaf rank: record() is called from messengers holding nothing, and the
  // ring acquires nothing beneath it.
  mutable base::Mutex mutex_{base::lock_rank::kTraceRing};
  std::vector<TraceHop> ring_ GUARDED_BY(mutex_);  // size <= capacity_
  std::size_t next_ GUARDED_BY(mutex_) = 0;  // slot the next record overwrites
  std::atomic<bool> enabled_{true};
  std::atomic<std::uint64_t> recorded_{0};
};

}  // namespace legion::obs
