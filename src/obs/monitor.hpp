// The fleet metrics plane: delta snapshots and their aggregation.
//
// Each Host Object periodically ships a MetricsSnapshot — the *delta* of its
// host-scoped metrics since the previous publication — to the well-known
// MonitorObject. Host scoping rides on a naming convention: instruments
// recorded per host carry a ".host.<id>" suffix (e.g.
// "msg.service_us.host.3"); the collector strips the suffix so the monitor
// aggregates canonical names across hosts. Deltas (not absolutes) make the
// plane restart-tolerant: a missed snapshot loses one interval of data
// instead of double-counting everything since boot.
//
// The FleetMonitor merges the histograms bucket-wise, which is why tail
// latency survives aggregation: the p99 of a merged histogram equals the
// p99 of the union of the underlying samples (within bucket resolution) —
// something per-host precomputed percentiles can never provide.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "base/serialize.hpp"
#include "base/types.hpp"
#include "obs/metrics.hpp"

namespace legion::obs {

// One publication from one host: counter deltas, gauge absolutes, histogram
// bucket deltas, all keyed by canonical (suffix-stripped) metric name.
struct MetricsSnapshot {
  std::uint32_t host = 0;
  SimTime at = 0;        // sender clock at collection time
  std::uint64_t seq = 0; // per-host publication sequence, 1-based
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, HistogramSnapshot>> histograms;

  void Serialize(Writer& w) const;
  static MetricsSnapshot Deserialize(Reader& r);
};

// The per-host suffix convention. MetricHostSuffix(3) == ".host.3".
[[nodiscard]] std::string MetricHostSuffix(std::uint32_t host);

// Computes successive delta snapshots of one host's slice of a registry.
// Stateful: remembers the last published absolutes. Not thread-safe; owned
// by the publishing Host Object and driven from its dispatch context.
class SnapshotCollector {
 public:
  SnapshotCollector(const Registry& registry, std::uint32_t host)
      : registry_(registry), host_(host), suffix_(MetricHostSuffix(host)) {}

  [[nodiscard]] MetricsSnapshot collect(SimTime now);

 private:
  const Registry& registry_;
  std::uint32_t host_;
  std::string suffix_;
  std::uint64_t seq_ = 0;
  std::map<std::string, std::uint64_t> last_counters_;
  std::map<std::string, HistogramSnapshot> last_hists_;
};

// One host's rollup as the monitor sees it.
struct FleetRow {
  std::uint32_t host = 0;
  std::uint64_t reports = 0;
  SimTime first_at = 0;  // sender clock of the first report
  SimTime last_at = 0;   // sender clock of the latest report
  std::uint64_t calls = 0;         // cumulative msg.requests
  double calls_per_sec = 0.0;      // over the covered (first..last) span
  std::uint64_t p50_us = 0;        // merged msg.service_us percentiles
  std::uint64_t p99_us = 0;
  std::uint64_t queue_p99_us = 0;  // merged msg.queue_us p99
  std::int64_t queue_depth = 0;    // latest msg.pending gauge
  bool slow = false;     // service p99 above the configured threshold
  bool suspect = false;  // no report for longer than the staleness window

  void Serialize(Writer& w) const;
  static FleetRow Deserialize(Reader& r);
};

// Fleet-wide per-method tail latency, from histograms merged across hosts.
struct MethodRow {
  std::string method;
  std::uint64_t count = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t max_us = 0;

  void Serialize(Writer& w) const;
  static MethodRow Deserialize(Reader& r);
};

// The aggregation engine behind the MonitorObject. Core-free on purpose
// (obs depends only on base): the Legion-object wrapper lives in
// core/monitor_object and forwards envelopes here.
class FleetMonitor {
 public:
  // Flags and totals are published into `registry` (monitor.reports,
  // monitor.hosts, monitor.slow_hosts, monitor.suspect_hosts) so the
  // recovery sweep can consult them without knowing the monitor's types.
  explicit FleetMonitor(Registry& registry);

  // `now` is the monitor's own clock (staleness is judged against it, not
  // the sender's possibly-skewed stamp).
  void ingest(const MetricsSnapshot& snapshot, SimTime now);

  // Rollups per host, ordered by host id. `now` (the monitor's clock) feeds
  // the staleness check; flag gauges are refreshed as a side effect.
  [[nodiscard]] std::vector<FleetRow> rows(SimTime now);
  // Per-method tail latency across all hosts, ordered by method name.
  [[nodiscard]] std::vector<MethodRow> method_rows() const;

  // Knobs are atomics: they may be tuned from a shell/admin thread while
  // the dispatch context is mid-rows() (the PR 6 `capacity_` lesson — no
  // unsynchronized reads of mutable config fields).
  void set_slow_threshold_us(std::uint64_t t) {
    slow_threshold_us_.store(t, std::memory_order_relaxed);
  }
  void set_stale_after_us(SimTime t) {
    stale_after_us_.store(t, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t reports() const { return reports_.value(); }

  // Default flagging knobs: a host is slow above 1s service p99, suspect
  // after 10s of silence (relative to the cadence of its own reports).
  static constexpr std::uint64_t kDefaultSlowThresholdUs = 1'000'000;
  static constexpr SimTime kDefaultStaleAfterUs = 10'000'000;

 private:
  struct HostState {
    std::uint64_t reports = 0;
    SimTime first_at = 0;
    SimTime last_at = 0;
    SimTime last_ingest_at = 0;  // monitor clock, for staleness
    std::map<std::string, std::uint64_t> counters;        // cumulative
    std::map<std::string, std::int64_t> gauges;           // latest
    std::map<std::string, HistogramSnapshot> histograms;  // merged
  };

  Registry& registry_;
  // Externally synchronized: ingest()/rows() run only in the owning
  // MonitorObject's dispatch context (one request at a time per endpoint),
  // so the merge state needs no lock of its own. See DESIGN.md
  // "Concurrency discipline".
  std::map<std::uint32_t, HostState> hosts_;
  std::atomic<std::uint64_t> slow_threshold_us_{kDefaultSlowThresholdUs};
  std::atomic<SimTime> stale_after_us_{kDefaultStaleAfterUs};
  Counter& reports_;
  Gauge& hosts_gauge_;
  Gauge& slow_gauge_;
  Gauge& suspect_gauge_;
};

}  // namespace legion::obs
