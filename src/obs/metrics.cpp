#include "obs/metrics.hpp"

#include <algorithm>

namespace legion::obs {

std::uint64_t PercentileFromBuckets(
    const std::array<std::uint64_t, 40>& buckets, std::uint64_t n, double p) {
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(n));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    const std::uint64_t k = buckets[b];
    if (k == 0) continue;
    if (seen + k > target || seen + k == n) {
      // The requested rank lands inside bucket b. Assume the bucket's k
      // samples are spread uniformly across [floor, ceiling] and read off
      // the value at the rank's position (midpoint convention), instead of
      // reporting the ceiling — which overshot by up to 2x.
      const std::uint64_t lo = Histogram::bucket_floor(b);
      const std::uint64_t hi = Histogram::bucket_ceiling(b);
      const double pos =
          (static_cast<double>(target - std::min(seen, target)) + 0.5) /
          static_cast<double>(k);
      const auto offset = static_cast<std::uint64_t>(
          static_cast<double>(hi - lo) * std::min(pos, 1.0));
      return lo + offset;
    }
    seen += k;
  }
  return Histogram::bucket_ceiling(buckets.size() - 1);
}

void HistogramSnapshot::merge(const HistogramSnapshot& other) {
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    buckets[b] += other.buckets[b];
  }
  count += other.count;
  sum += other.sum;
  max = std::max(max, other.max);
}

HistogramSnapshot HistogramSnapshot::delta_since(
    const HistogramSnapshot& earlier) const {
  HistogramSnapshot out;
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    out.buckets[b] =
        buckets[b] >= earlier.buckets[b] ? buckets[b] - earlier.buckets[b] : 0;
    out.count += out.buckets[b];
  }
  out.sum = sum >= earlier.sum ? sum - earlier.sum : 0;
  // A max cannot be differenced; report the period-spanning max, which is
  // an upper bound for the delta's true max.
  out.max = max;
  if (out.count == 0) out.max = 0;
  return out;
}

std::uint64_t HistogramSnapshot::percentile(double p) const {
  return PercentileFromBuckets(buckets, count, p);
}

void HistogramSnapshot::Serialize(Writer& w) const {
  // Sparse encoding: histograms are mostly empty outside a few buckets.
  std::uint32_t nonzero = 0;
  for (const std::uint64_t b : buckets) {
    if (b != 0) ++nonzero;
  }
  w.u32(nonzero);
  for (std::size_t b = 0; b < buckets.size(); ++b) {
    if (buckets[b] == 0) continue;
    w.u8(static_cast<std::uint8_t>(b));
    w.u64(buckets[b]);
  }
  w.u64(sum);
  w.u64(max);
}

HistogramSnapshot HistogramSnapshot::Deserialize(Reader& r) {
  HistogramSnapshot out;
  const std::uint32_t nonzero = r.u32();
  if (nonzero > out.buckets.size()) {
    r.mark_failed();
    return out;
  }
  for (std::uint32_t i = 0; i < nonzero && r.ok(); ++i) {
    const std::uint8_t b = r.u8();
    const std::uint64_t v = r.u64();
    if (b >= out.buckets.size()) {
      r.mark_failed();
      return out;
    }
    out.buckets[b] = v;
    out.count += v;
  }
  out.sum = r.u64();
  out.max = r.u64();
  if (!r.ok()) return HistogramSnapshot{};
  return out;
}

std::uint64_t Histogram::percentile(double p) const {
  std::array<std::uint64_t, kBuckets> snap{};
  std::uint64_t n = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    snap[b] = bucket(b);
    n += snap[b];
  }
  return PercentileFromBuckets(snap, n, p);
}

HistogramSnapshot Histogram::snapshot() const {
  HistogramSnapshot out;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    out.buckets[b] = bucket(b);
    out.count += out.buckets[b];
  }
  if (out.count == 0) return out;  // racing reset: report empty, not torn
  out.sum = sum();
  out.max = max();
  return out;
}

void MetricRow::Serialize(Writer& w) const {
  w.str(name);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(count);
  w.i64(gauge);
  w.f64(mean);
  w.u64(p50);
  w.u64(p99);
  w.u64(max);
}

MetricRow MetricRow::Deserialize(Reader& r) {
  MetricRow row;
  row.name = r.str();
  row.kind = static_cast<MetricKind>(r.u8());
  row.count = r.u64();
  row.gauge = r.i64();
  row.mean = r.f64();
  row.p50 = r.u64();
  row.p99 = r.u64();
  row.max = r.u64();
  if (!r.ok()) return MetricRow{};
  return row;
}

Counter& Registry::counter(std::string_view name) {
  base::MutexLock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  base::MutexLock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  base::MutexLock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricRow> Registry::rows() const {
  base::MutexLock lock(mutex_);
  std::vector<MetricRow> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::kCounter;
    row.count = c->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::kGauge;
    row.gauge = g->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    // One self-consistent snapshot per histogram: count, percentiles, and
    // max all describe the same bucket contents even mid-reset.
    const HistogramSnapshot snap = h->snapshot();
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::kHistogram;
    row.count = snap.count;
    row.mean = snap.mean();
    row.p50 = snap.percentile(0.50);
    row.p99 = snap.percentile(0.99);
    row.max = snap.max;
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return out;
}

void Registry::visit(
    const std::function<void(std::string_view, const Counter&)>& counter_fn,
    const std::function<void(std::string_view, const Gauge&)>& gauge_fn,
    const std::function<void(std::string_view, const Histogram&)>& hist_fn)
    const {
  base::MutexLock lock(mutex_);
  if (counter_fn) {
    for (const auto& [name, c] : counters_) counter_fn(name, *c);
  }
  if (gauge_fn) {
    for (const auto& [name, g] : gauges_) gauge_fn(name, *g);
  }
  if (hist_fn) {
    for (const auto& [name, h] : histograms_) hist_fn(name, *h);
  }
}

void Registry::reset() {
  base::MutexLock lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace legion::obs
