#include "obs/metrics.hpp"

#include <algorithm>

namespace legion::obs {

std::uint64_t Histogram::percentile(double p) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  if (p < 0.0) p = 0.0;
  if (p > 1.0) p = 1.0;
  const auto target = static_cast<std::uint64_t>(p * static_cast<double>(n));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += bucket(b);
    if (seen > target || (seen == n && seen > 0)) return bucket_ceiling(b);
  }
  return bucket_ceiling(kBuckets - 1);
}

Counter& Registry::counter(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  std::lock_guard lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<MetricRow> Registry::rows() const {
  std::lock_guard lock(mutex_);
  std::vector<MetricRow> out;
  out.reserve(counters_.size() + gauges_.size() + histograms_.size());
  for (const auto& [name, c] : counters_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::kCounter;
    row.count = c->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, g] : gauges_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::kGauge;
    row.gauge = g->value();
    out.push_back(std::move(row));
  }
  for (const auto& [name, h] : histograms_) {
    MetricRow row;
    row.name = name;
    row.kind = MetricKind::kHistogram;
    row.count = h->count();
    row.mean = h->mean();
    row.p50 = h->percentile(0.50);
    row.p99 = h->percentile(0.99);
    row.max = h->max();
    out.push_back(std::move(row));
  }
  std::sort(out.begin(), out.end(),
            [](const MetricRow& a, const MetricRow& b) { return a.name < b.name; });
  return out;
}

void Registry::reset() {
  std::lock_guard lock(mutex_);
  for (auto& [_, c] : counters_) c->reset();
  for (auto& [_, g] : gauges_) g->reset();
  for (auto& [_, h] : histograms_) h->reset();
}

}  // namespace legion::obs
