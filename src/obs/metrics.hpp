// Process-wide metrics: counters, gauges, and log-scale histograms.
//
// The binding path (paper Section 4.1) is the hot path of the whole system,
// so every instrument has a lock-free fast path: increments and histogram
// records touch only relaxed std::atomic words. The registry mutex is taken
// once, at name lookup, and callers hold the returned reference for the
// lifetime of the registry (storage is pointer-stable).
#pragma once

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "base/mutex.hpp"
#include "base/serialize.hpp"
#include "base/thread_annotations.hpp"

namespace legion::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) {
    value_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> value_{0};
};

class Gauge {
 public:
  void set(std::int64_t v) { value_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t d) { value_.fetch_add(d, std::memory_order_relaxed); }
  void sub(std::int64_t d) { value_.fetch_sub(d, std::memory_order_relaxed); }
  [[nodiscard]] std::int64_t value() const {
    return value_.load(std::memory_order_relaxed);
  }
  void reset() { value_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> value_{0};
};

class Histogram;

// A self-consistent point-in-time copy of one histogram: the unit the fleet
// snapshot envelope serializes and the monitor merges. `count` is always the
// sum of `buckets`, so percentiles computed from a snapshot agree with its
// own bucket contents even when the source histogram was being reset or
// recorded into while the snapshot was taken.
struct HistogramSnapshot {
  std::array<std::uint64_t, 40> buckets{};
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;

  // Element-wise accumulate (bucket adds, sum add, max of maxes).
  void merge(const HistogramSnapshot& other);
  // Element-wise subtract a previously-taken snapshot of the same histogram
  // (saturating): the delta since `earlier`.
  [[nodiscard]] HistogramSnapshot delta_since(
      const HistogramSnapshot& earlier) const;

  [[nodiscard]] std::uint64_t percentile(double p) const;
  [[nodiscard]] double mean() const {
    return count == 0 ? 0.0
                      : static_cast<double>(sum) / static_cast<double>(count);
  }

  void Serialize(Writer& w) const;
  static HistogramSnapshot Deserialize(Reader& r);

  friend bool operator==(const HistogramSnapshot& a,
                         const HistogramSnapshot& b) = default;
};

// Shared percentile kernel: rank p within log2-bucket counts, interpolated
// linearly inside the chosen bucket (a value estimate, not the bucket
// ceiling — the old factor-of-two bias). `n` must equal the bucket sum.
[[nodiscard]] std::uint64_t PercentileFromBuckets(
    const std::array<std::uint64_t, 40>& buckets, std::uint64_t n, double p);

// Fixed log2 buckets: bucket 0 holds the value 0, bucket b (b >= 1) holds
// values in [2^(b-1), 2^b - 1]. 40 buckets cover every duration the virtual
// clock can express (up to ~2^39 us, or ~6 days).
class Histogram {
 public:
  static constexpr std::size_t kBuckets = 40;

  void record(std::uint64_t v) {
    buckets_[bucket_of(v)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    std::uint64_t prev = max_.load(std::memory_order_relaxed);
    while (v > prev && !max_.compare_exchange_weak(
                           prev, v, std::memory_order_relaxed)) {
    }
  }

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) {
    if (v == 0) return 0;
    const auto width = static_cast<std::size_t>(std::bit_width(v));
    return width < kBuckets ? width : kBuckets - 1;
  }
  // Inclusive upper edge of a bucket (for reporting percentiles).
  [[nodiscard]] static std::uint64_t bucket_ceiling(std::size_t b) {
    if (b == 0) return 0;
    if (b >= 63) return ~0ull;
    return (1ull << b) - 1;
  }
  // Inclusive lower edge of a bucket.
  [[nodiscard]] static std::uint64_t bucket_floor(std::size_t b) {
    if (b == 0) return 0;
    return 1ull << (b - 1);
  }

  [[nodiscard]] std::uint64_t count() const {
    return count_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t sum() const {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t max() const {
    return max_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double mean() const {
    const std::uint64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
  }
  [[nodiscard]] std::uint64_t bucket(std::size_t b) const {
    return buckets_[b].load(std::memory_order_relaxed);
  }
  // Value estimate at percentile p in [0, 1]: linear interpolation within
  // the log2 bucket where the cumulative count crosses p. Derives the total
  // from the bucket counts it read — never from count_ — so a percentile
  // taken concurrently with reset() is internally consistent instead of
  // chasing a count the buckets no longer hold.
  [[nodiscard]] std::uint64_t percentile(double p) const;

  // Self-consistent copy for serialization/merging: count is recomputed from
  // the copied buckets, and max/sum are clamped to agree with an empty
  // bucket set, so a snapshot racing reset() never pairs stale extremes
  // with zeroed buckets.
  [[nodiscard]] HistogramSnapshot snapshot() const;

  // Tolerates concurrent record(): extremes (max, sum, count) are cleared
  // *before* the buckets, so a racing record lands either wholly after the
  // reset (fully visible) or contributes at worst a bucket entry that
  // readers reconcile via snapshot()/percentile()'s bucket-derived totals —
  // never a stale max paired with an empty distribution.
  void reset() {
    max_.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
  }

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> max_{0};
};

enum class MetricKind : std::uint8_t { kCounter, kGauge, kHistogram };

// A point-in-time reading of one metric, for dumps and assertions.
// Serializable so fleet snapshots and monitor replies can carry rows.
struct MetricRow {
  std::string name;
  MetricKind kind = MetricKind::kCounter;
  std::uint64_t count = 0;  // counter value / histogram sample count
  std::int64_t gauge = 0;
  double mean = 0.0;        // histogram only
  std::uint64_t p50 = 0;    // histogram only (interpolated within bucket)
  std::uint64_t p99 = 0;
  std::uint64_t max = 0;

  void Serialize(Writer& w) const;
  static MetricRow Deserialize(Reader& r);

  friend bool operator==(const MetricRow& a, const MetricRow& b) = default;
};

// Name -> metric. Registration is mutex-guarded; the returned references
// stay valid for the registry's lifetime, so hot paths look up once and
// then increment lock-free.
class Registry {
 public:
  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // All metrics, sorted by name. Counters and histograms with zero count
  // are included; callers filter.
  [[nodiscard]] std::vector<MetricRow> rows() const;

  // Visits every registered metric by name (each callback may be null).
  // Holds the registry mutex across the walk: callbacks must not call back
  // into the registry.
  void visit(
      const std::function<void(std::string_view, const Counter&)>& counter_fn,
      const std::function<void(std::string_view, const Gauge&)>& gauge_fn,
      const std::function<void(std::string_view, const Histogram&)>& hist_fn)
      const;

  // Zeroes every metric (references stay valid).
  void reset();

 private:
  // Near-leaf rank: lookups happen beneath the binding cache's mutex
  // (BindingCache::bind_metrics) and acquire nothing except the log.
  mutable base::Mutex mutex_{base::lock_rank::kMetricsRegistry};
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_
      GUARDED_BY(mutex_);
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_
      GUARDED_BY(mutex_);
};

}  // namespace legion::obs
