// Method-invocation messaging on top of the raw runtime.
//
// Frames requests and replies, matches replies to pending calls by call id,
// and carries the security environment triple on every invocation (paper
// Section 2.4: "Every method invocation is performed in an environment
// consisting of a triple of object names — those of the operative
// Responsible Agent, the Security Agent, and the Calling Agent").
//
// invoke() is non-blocking and returns a Future (paper Section 2: "Method
// calls are non-blocking"); call() is the convenience invoke-then-wait,
// during which the endpoint keeps serving incoming requests.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "base/buffer.hpp"
#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "base/loid.hpp"
#include "base/serialize.hpp"
#include "base/status.hpp"
#include "rt/future.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

// The RA/SA/CA environment of a method invocation, plus the causal trace
// stamp. The trace rides the triple (not just the transport envelope) so
// nested calls made while serving a request — via ObjectContext's
// outgoing_env() — continue the inbound trace automatically: invoke() reads
// the inbound span_id as the new span's parent, which is what turns the hop
// chain into a tree.
struct EnvTriple {
  // With trace_id == 0, a hop of kHopNotSampled records that the root's
  // sampling decision was "no": nested calls must NOT re-consult the
  // sampler, or a 1-in-N head decision would mint partial mid-tree traces.
  // Head sampling is all-or-nothing per call tree.
  static constexpr std::uint32_t kHopNotSampled = 0xFFFF'FFFF;

  Loid responsible_agent;
  Loid security_agent;
  Loid calling_agent;
  std::uint64_t trace_id = 0;  // 0 = not part of a trace (unsampled root)
  std::uint32_t hop = 0;
  std::uint64_t span_id = 0;         // span of the call this triple rides
  std::uint64_t parent_span_id = 0;  // span this call was made beneath

  void Serialize(Writer& w) const {
    responsible_agent.Serialize(w);
    security_agent.Serialize(w);
    calling_agent.Serialize(w);
    w.u64(trace_id);
    w.u32(hop);
    w.u64(span_id);
    w.u64(parent_span_id);
  }
  static EnvTriple Deserialize(Reader& r) {
    EnvTriple t;
    t.responsible_agent = Loid::Deserialize(r);
    t.security_agent = Loid::Deserialize(r);
    t.calling_agent = Loid::Deserialize(r);
    t.trace_id = r.u64();
    t.hop = r.u32();
    t.span_id = r.u64();
    t.parent_span_id = r.u64();
    return t;
  }

  // The bootstrap environment used by core objects acting on their own
  // behalf before any user identities exist.
  static EnvTriple System() { return EnvTriple{}; }
  static EnvTriple ForCaller(const Loid& caller) {
    return EnvTriple{caller, caller, caller};
  }
};

// Server-side view of one inbound request.
struct CallInfo {
  std::string method;
  EnvTriple env;
  EndpointId reply_to;
  std::uint64_t call_id = 0;
};

struct ReplyMsg {
  Status status;
  Buffer result;
};

class Messenger;

// Passed to the dispatcher so handlers can issue nested calls through the
// same endpoint while their own invocation is in progress.
struct ServerContext {
  Messenger& messenger;
  CallInfo call;
};

using RequestDispatcher =
    std::function<Result<Buffer>(ServerContext& ctx, Reader& args)>;

class Messenger {
 public:
  // Creates (and owns) an endpoint on `host`. A null dispatcher makes a
  // pure client: inbound requests are answered with kUnimplemented.
  Messenger(Runtime& runtime, HostId host, std::string label,
            ExecutionMode mode, RequestDispatcher dispatcher);
  ~Messenger();

  Messenger(const Messenger&) = delete;
  Messenger& operator=(const Messenger&) = delete;

  [[nodiscard]] EndpointId endpoint() const { return endpoint_; }
  [[nodiscard]] Runtime& runtime() { return runtime_; }
  [[nodiscard]] HostId host() const { return host_; }

  // Non-blocking invocation. The returned future resolves with the peer's
  // reply, a kStaleBinding error (endpoint gone), or stays pending until
  // timed out by await().
  Future<ReplyMsg> invoke(EndpointId dst, std::string_view method, Buffer args,
                          const EnvTriple& env);

  // Waits for `future`, serving incoming messages meanwhile.
  Result<Buffer> await(Future<ReplyMsg> future, SimTime timeout_us);

  // Waits on a whole fan-out under ONE shared deadline, serving incoming
  // messages meanwhile. Returns the first successful reply as soon as it
  // arrives (resolved futures are consumed); if every future fails, the
  // last error; if the deadline passes first, kTimeout (kUnavailable when
  // the runtime is quiescent and the replies can provably never arrive).
  // Never costs more than one timeout regardless of how many futures are
  // pending.
  Result<Buffer> await_any(std::vector<Future<ReplyMsg>>& futures,
                           SimTime timeout_us);

  // invoke + await.
  Result<Buffer> call(EndpointId dst, std::string_view method, Buffer args,
                      const EnvTriple& env, SimTime timeout_us);

  // Generic predicate wait that keeps serving this endpoint.
  bool wait(const std::function<bool()>& ready, SimTime timeout_us);

  void close();

  // Default per-call timeout used by higher layers, in virtual microseconds.
  static constexpr SimTime kDefaultTimeoutUs = 10'000'000;

 private:
  enum class FrameKind : std::uint8_t { kRequest = 1, kReply = 2 };

  void on_message(Envelope&& env);
  void handle_request(Envelope&& env, Reader& r);
  void handle_reply(Reader& r);
  void handle_bounce(Reader& r, DeliveryKind kind_of_bounce);
  void fail_pending(std::uint64_t call_id, Status status);
  void record_hop(obs::HopKind kind, const Envelope& env,
                  std::string_view method, std::uint32_t queue_us = 0,
                  std::uint32_t service_us = 0);
  // Per-method service-time histogram ("msg.method_us.<method>.host.<id>"),
  // cached so the registry mutex is paid once per (endpoint, method). Only
  // touched from handle_request, which the runtime serializes per endpoint.
  obs::Histogram& method_service_hist(std::string_view method);

  Runtime& runtime_;
  HostId host_;
  EndpointId endpoint_;
  RequestDispatcher dispatcher_;
  std::atomic<bool> closed_{false};

  // Registry-backed messenger counters (shared across all messengers of one
  // runtime; per-object detail comes from endpoint labels).
  obs::Counter& invokes_;
  obs::Counter& requests_;
  obs::Counter& timeouts_;
  obs::Counter& unreachables_;  // quiescent-runtime "can never arrive" fails
  obs::Gauge& pending_gauge_;
  // Queue/service-time split of every inbound request (enqueue->dequeue vs
  // dequeue->reply), runtime-wide and per-host. The ".host.<id>" copies are
  // what the Host Object's fleet snapshot ships to the MonitorObject.
  obs::Histogram& queue_us_;
  obs::Histogram& service_us_;
  obs::Counter& host_requests_;
  obs::Histogram& host_queue_us_;
  obs::Histogram& host_service_us_;
  obs::Gauge& host_pending_;
  std::unordered_map<std::string, obs::Histogram*> method_hists_;

  // Ranked below Promise::State::mutex: invoke() fulfils the promise while
  // holding the pending table when it loses the race with close().
  base::Mutex pending_mutex_{base::lock_rank::kPending};
  std::unordered_map<std::uint64_t, Promise<ReplyMsg>> pending_
      GUARDED_BY(pending_mutex_);
  std::uint64_t next_call_id_ GUARDED_BY(pending_mutex_) = 1;
};

}  // namespace legion::rt
