#include "rt/sim_runtime.hpp"

#include <algorithm>
#include <cassert>

namespace legion::rt {

SimRuntime::SimRuntime(std::uint64_t seed) : rng_(seed) {}
SimRuntime::~SimRuntime() = default;

EndpointId SimRuntime::create_endpoint(HostId host, std::string label,
                                       MessageHandler handler,
                                       ExecutionMode /*mode*/) {
  // Execution mode is irrelevant in the sequential kernel: every delivery is
  // dispatched inline on the pumping stack.
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  const EndpointId id{next_endpoint_++};
  endpoints_.emplace(id.value,
                     Endpoint{host, std::move(label), std::move(handler),
                              /*alive=*/true, EndpointStats{}});
  return id;
}

void SimRuntime::close_endpoint(EndpointId id) {
  if (Endpoint* ep = find(id)) {
    ep->alive = false;
    ep->handler = nullptr;  // release captured state promptly
  }
}

bool SimRuntime::endpoint_alive(EndpointId id) const {
  const Endpoint* ep = find(id);
  return ep != nullptr && ep->alive;
}

HostId SimRuntime::host_of(EndpointId id) const {
  const Endpoint* ep = find(id);
  return ep != nullptr ? ep->host : HostId{};
}

SimRuntime::Endpoint* SimRuntime::find(EndpointId id) {
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : &it->second;
}
const SimRuntime::Endpoint* SimRuntime::find(EndpointId id) const {
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : &it->second;
}

Status SimRuntime::post(Envelope env) {
  Endpoint* src = find(env.src);
  if (src == nullptr) return InternalError("post from unknown endpoint");
  Endpoint* dst = find(env.dst);
  if (dst == nullptr || !dst->alive) {
    // Fail fast: the destination endpoint is already known to be gone. The
    // sender's communication layer treats this exactly like a bounce.
    return StaleBindingError("destination endpoint closed");
  }

  const net::LatencyClass cls = topology_.classify(src->host, dst->host);
  if (faults_.should_drop(src->host, dst->host, cls, rng_)) {
    transport_.dropped.inc();
    return OkStatus();  // silently lost; the caller's timeout covers it
  }

  src->stats.sent += 1;
  src->stats.bytes_sent += env.payload.size();
  const SimTime at =
      now_ + topology_.sample_latency(src->host, dst->host, rng_,
                                      env.payload.size());
  queue_.push(Event{at, next_seq_++, std::move(env)});
  return OkStatus();
}

void SimRuntime::deliver(Event&& ev) {
  Envelope env = std::move(ev.env);
  Endpoint* dst = find(env.dst);
  if (dst == nullptr || !dst->alive) {
    // The destination died while the message was in flight: bounce the
    // payload back to the sender (transport-level NACK) so its comm layer
    // can detect the stale binding (paper Section 4.1.4).
    if (env.kind == DeliveryKind::kBounce) return;  // never bounce a bounce
    Endpoint* src = find(env.src);
    if (src == nullptr || !src->alive) return;
    transport_.bounced.inc();
    const HostId dead_host = dst != nullptr ? dst->host : src->host;
    const SimTime at =
        now_ + topology_.sample_latency(dead_host, src->host, rng_);
    Envelope bounce{env.dst, env.src, DeliveryKind::kBounce,
                    std::move(env.payload)};
    bounce.trace_id = env.trace_id;  // keep the NACK attributable
    bounce.hop = env.hop;
    bounce.span_id = env.span_id;
    bounce.parent_span_id = env.parent_span_id;
    queue_.push(Event{at, next_seq_++, std::move(bounce)});
    return;
  }

  transport_.delivered.inc();
  Endpoint* src = find(env.src);
  if (src != nullptr) {
    const auto cls = topology_.classify(src->host, dst->host);
    transport_.by_class[static_cast<std::size_t>(cls)]->inc();
  }
  dst->stats.received += 1;
  dst->stats.bytes_received += env.payload.size();
  if (dst->handler) {
    // Inline dispatch: delivery IS the dequeue, so the envelope's inbox
    // residency is zero by construction. Stamp it anyway so the Messenger's
    // queue-time attribution reads a true 0 rather than "unstamped".
    env.queued_at = now_;
    // Dispatch inline on a *copy* of the handler: the handler may create or
    // close endpoints (rehashing the map, or nulling dst->handler itself),
    // so neither `dst` nor the stored std::function may be touched while the
    // call runs.
    MessageHandler handler = dst->handler;
    handler(std::move(env));
  }
}

bool SimRuntime::step() {
  if (queue_.empty()) return false;
  // priority_queue::top() is const&; moving requires the const_cast idiom or
  // a copy. Envelope payloads can be large, so move via const_cast, which is
  // safe: the element is removed immediately after.
  Event ev = std::move(const_cast<Event&>(queue_.top()));
  queue_.pop();
  assert(ev.at >= now_ && "time went backwards");
  now_ = ev.at;
  deliver(std::move(ev));
  return true;
}

bool SimRuntime::wait(EndpointId /*self*/, const std::function<bool()>& ready,
                      SimTime timeout_us) {
  const SimTime deadline =
      timeout_us == kSimTimeNever ? kSimTimeNever : now_ + timeout_us;
  for (;;) {
    if (ready()) return true;
    if (queue_.empty()) return false;  // quiescent: no progress possible
    if (deadline != kSimTimeNever && queue_.top().at > deadline) {
      now_ = deadline;
      return false;
    }
    step();
  }
}

void SimRuntime::run_until_idle() {
  while (step()) {
  }
}

void SimRuntime::advance(SimTime delta_us) {
  const SimTime target = now_ + delta_us;
  while (!queue_.empty() && queue_.top().at <= target) {
    step();
  }
  if (now_ < target) now_ = target;
}

EndpointStats SimRuntime::endpoint_stats(EndpointId id) const {
  const Endpoint* ep = find(id);
  return ep != nullptr ? ep->stats : EndpointStats{};
}

std::map<std::string, std::uint64_t> SimRuntime::received_by_label() const {
  std::map<std::string, std::uint64_t> out;
  for (const auto& [_, ep] : endpoints_) out[ep.label] += ep.stats.received;
  return out;
}

std::uint64_t SimRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  for (const auto& [_, ep] : endpoints_) {
    if (ep.label == label) best = std::max(best, ep.stats.received);
  }
  return best;
}

void SimRuntime::reset_stats() {
  transport_.reset();
  for (auto& [_, ep] : endpoints_) ep.stats = EndpointStats{};
}

}  // namespace legion::rt
