#include "rt/tcp_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include "base/serialize.hpp"

namespace legion::rt {

namespace {

// Frame: u32 payload length | u64 src | u64 dst | u8 kind | u64 trace_id |
// u32 hop | payload bytes.
constexpr std::size_t kHeaderBytes = 4 + 8 + 8 + 1 + 8 + 4;
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB sanity cap

// A signal landing mid-transfer interrupts the syscall with EINTR; that is
// a retry, not a failure — treating it as fatal silently drops frames.
// `retries` counts the interruptions for observability.
bool WriteAll(int fd, const void* data, std::size_t n, obs::Counter& retries) {
  const char* p = static_cast<const char*>(data);
  while (n > 0) {
    const ssize_t written = ::write(fd, p, n);
    if (written < 0) {
      if (errno == EINTR) {
        retries.inc();
        continue;
      }
      return false;
    }
    if (written == 0) return false;
    p += written;
    n -= static_cast<std::size_t>(written);
  }
  return true;
}

bool ReadAll(int fd, void* data, std::size_t n, obs::Counter& retries) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) {
        retries.inc();
        continue;
      }
      return false;
    }
    if (got == 0) return false;  // peer closed mid-frame
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}
std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

TcpRuntime::TcpRuntime() : epoch_(std::chrono::steady_clock::now()) {}

TcpRuntime::~TcpRuntime() {
  std::vector<EndpointPtr> eps;
  {
    std::unique_lock lock(map_mutex_);
    for (auto& [_, ep] : endpoints_) eps.push_back(ep);
    endpoints_.clear();
  }
  for (auto& ep : eps) {
    ep->alive.store(false);
    if (ep->listen_fd >= 0) {
      ::shutdown(ep->listen_fd, SHUT_RDWR);
      ::close(ep->listen_fd);
    }
    {
      std::lock_guard lock(ep->mutex);
      ep->stopping = true;
      ++ep->wakeups;
    }
    ep->cv.notify_all();
  }
  for (auto& ep : eps) {
    if (ep->acceptor.joinable()) ep->acceptor.join();
    if (ep->service.joinable()) ep->service.join();
  }
  std::lock_guard lock(graveyard_mutex_);
  for (auto& t : graveyard_) {
    if (t.joinable()) t.join();
  }
}

EndpointId TcpRuntime::create_endpoint(HostId host, std::string label,
                                       MessageHandler handler,
                                       ExecutionMode mode) {
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  auto ep = std::make_shared<Endpoint>();
  ep->host = host;
  ep->label = std::move(label);
  ep->handler = std::move(handler);
  ep->mode = mode;

  // Bind a loopback listener on an ephemeral port.
  ep->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ep->listen_fd < 0) return EndpointId{};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(ep->listen_fd, 64) != 0) {
    ::close(ep->listen_fd);
    return EndpointId{};
  }
  socklen_t len = sizeof addr;
  if (::getsockname(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(ep->listen_fd);
    return EndpointId{};
  }
  ep->port = ntohs(addr.sin_port);

  EndpointId id;
  {
    std::unique_lock lock(map_mutex_);
    id = EndpointId{next_endpoint_++};
    endpoints_.emplace(id.value, ep);
  }
  ep->acceptor = std::thread([this, ep] { acceptor_loop(ep); });
  if (mode == ExecutionMode::kServiced) {
    ep->service = std::thread([this, ep] { service_loop(ep); });
  }
  return id;
}

void TcpRuntime::close_endpoint(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    std::unique_lock lock(map_mutex_);
    endpoints_.erase(id.value);
  }
  ep->alive.store(false);
  if (ep->listen_fd >= 0) {
    ::shutdown(ep->listen_fd, SHUT_RDWR);
    ::close(ep->listen_fd);
  }
  {
    std::lock_guard lock(ep->mutex);
    ep->stopping = true;
    ++ep->wakeups;
  }
  ep->cv.notify_all();
  auto reap = [this](std::thread& t) {
    if (!t.joinable()) return;
    if (t.get_id() == std::this_thread::get_id()) {
      std::lock_guard lock(graveyard_mutex_);
      graveyard_.push_back(std::move(t));
    } else {
      t.join();
    }
  };
  reap(ep->acceptor);
  reap(ep->service);
}

bool TcpRuntime::endpoint_alive(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep && ep->alive.load();
}

HostId TcpRuntime::host_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->host : HostId{};
}

std::uint16_t TcpRuntime::port_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->port : 0;
}

TcpRuntime::EndpointPtr TcpRuntime::find(EndpointId id) const {
  std::shared_lock lock(map_mutex_);
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status TcpRuntime::post(Envelope env) {
  EndpointPtr src = find(env.src);
  if (!src) return InternalError("post from unknown endpoint");
  EndpointPtr dst = find(env.dst);
  if (!dst || !dst->alive.load()) {
    return StaleBindingError("destination endpoint closed");
  }
  const std::uint16_t port = dst->port;

  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return InternalError("socket() failed");
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    ::close(fd);
    // The physical stale binding: nothing listens there anymore.
    return StaleBindingError("connection refused");
  }

  std::vector<std::uint8_t> header(kHeaderBytes);
  PutU32(header.data(), static_cast<std::uint32_t>(env.payload.size()));
  PutU64(header.data() + 4, env.src.value);
  PutU64(header.data() + 12, env.dst.value);
  header[20] = static_cast<std::uint8_t>(env.kind);
  PutU64(header.data() + 21, env.trace_id);
  PutU32(header.data() + 29, env.hop);
  const bool ok =
      WriteAll(fd, header.data(), header.size(), io_retries_) &&
      (env.payload.empty() ||
       WriteAll(fd, env.payload.data(), env.payload.size(), io_retries_));
  ::close(fd);
  if (!ok) return UnavailableError("short write on TCP send");

  {
    std::lock_guard lock(src->mutex);
    src->stats.sent += 1;
    src->stats.bytes_sent += env.payload.size();
  }
  transport_.delivered.inc();
  return OkStatus();
}

void TcpRuntime::notify(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    std::lock_guard lock(ep->mutex);
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

void TcpRuntime::acceptor_loop(const EndpointPtr& ep) {
  for (;;) {
    const int conn = ::accept(ep->listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        io_retries_.inc();
        continue;  // a signal must not kill the endpoint
      }
      return;  // listener closed: endpoint is going away
    }

    std::vector<std::uint8_t> header(kHeaderBytes);
    if (!ReadAll(conn, header.data(), header.size(), io_retries_)) {
      ::close(conn);
      continue;
    }
    const std::uint32_t payload_len = GetU32(header.data());
    if (payload_len > kMaxFrameBytes) {
      ::close(conn);
      continue;  // hostile or corrupt frame
    }
    Envelope env;
    env.src = EndpointId{GetU64(header.data() + 4)};
    env.dst = EndpointId{GetU64(header.data() + 12)};
    env.kind = static_cast<DeliveryKind>(header[20]);
    env.trace_id = GetU64(header.data() + 21);
    env.hop = GetU32(header.data() + 29);
    if (payload_len > 0) {
      std::vector<std::uint8_t> payload(payload_len);
      if (!ReadAll(conn, payload.data(), payload.size(), io_retries_)) {
        ::close(conn);
        continue;
      }
      env.payload = Buffer{std::move(payload)};
    }
    ::close(conn);

    {
      std::lock_guard lock(ep->mutex);
      if (ep->stopping) return;
      ep->stats.received += 1;
      ep->stats.bytes_received += env.payload.size();
      ep->inbox.push_back(std::move(env));
      ++ep->wakeups;
    }
    ep->cv.notify_all();
  }
}

bool TcpRuntime::pop_one(const EndpointPtr& ep, Envelope& out) {
  std::lock_guard lock(ep->mutex);
  if (ep->inbox.empty()) return false;
  out = std::move(ep->inbox.front());
  ep->inbox.pop_front();
  return true;
}

void TcpRuntime::service_loop(const EndpointPtr& ep) {
  for (;;) {
    Envelope env;
    {
      std::unique_lock lock(ep->mutex);
      ep->cv.wait(lock, [&] { return ep->stopping || !ep->inbox.empty(); });
      if (ep->inbox.empty()) return;
      env = std::move(ep->inbox.front());
      ep->inbox.pop_front();
    }
    if (ep->handler) ep->handler(std::move(env));
  }
}

SimTime TcpRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool TcpRuntime::wait(EndpointId self, const std::function<bool()>& ready,
                      SimTime timeout_us) {
  EndpointPtr ep = find(self);
  if (!ep) return ready();
  const auto deadline =
      timeout_us == kSimTimeNever
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_us);
  for (;;) {
    if (ready()) return true;
    Envelope env;
    if (pop_one(ep, env)) {
      if (ep->handler) ep->handler(std::move(env));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ready();
    std::unique_lock lock(ep->mutex);
    if (!ep->inbox.empty()) continue;
    // Event-driven like ThreadRuntime::wait: sleep until the next wakeup
    // generation (delivery / notify / close) or the deadline, with a long
    // re-check slice only for predicates satisfied without a wakeup.
    const std::uint64_t seen = ep->wakeups;
    const auto cap = ep->stopping ? now + std::chrono::milliseconds(1)
                                  : now + std::chrono::milliseconds(50);
    ep->cv.wait_until(lock, std::min(deadline, cap),
                      [&] { return ep->wakeups != seen; });
  }
}

void TcpRuntime::run_until_idle() {
  for (int calm = 0; calm < 2;) {
    bool busy = false;
    {
      std::shared_lock lock(map_mutex_);
      for (const auto& [_, ep] : endpoints_) {
        std::lock_guard elock(ep->mutex);
        if (!ep->inbox.empty()) {
          busy = true;
          break;
        }
      }
    }
    calm = busy ? 0 : calm + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

RuntimeStats TcpRuntime::stats() const { return transport_.view(); }

EndpointStats TcpRuntime::endpoint_stats(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (!ep) return EndpointStats{};
  std::lock_guard lock(ep->mutex);
  return ep->stats;
}

std::map<std::string, std::uint64_t> TcpRuntime::received_by_label() const {
  std::map<std::string, std::uint64_t> out;
  std::shared_lock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    std::lock_guard elock(ep->mutex);
    out[ep->label] += ep->stats.received;
  }
  return out;
}

std::uint64_t TcpRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  std::shared_lock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    if (ep->label != label) continue;
    std::lock_guard elock(ep->mutex);
    best = std::max(best, ep->stats.received);
  }
  return best;
}

void TcpRuntime::reset_stats() {
  transport_.reset();
  std::shared_lock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    std::lock_guard elock(ep->mutex);
    ep->stats = EndpointStats{};
  }
}

}  // namespace legion::rt
