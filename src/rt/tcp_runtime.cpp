#include "rt/tcp_runtime.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstring>

#include "base/serialize.hpp"

namespace legion::rt {

namespace {

// Frame: u32 payload length | u64 src | u64 dst | u8 kind | u64 trace_id |
// u32 hop | u64 span_id | u64 parent_span_id | payload bytes. Frames are
// self-delimiting, so any number of them multiplex over one persistent
// stream. (queued_at is receiver-local and deliberately NOT on the wire.)
constexpr std::size_t kHeaderBytes = 4 + 8 + 8 + 1 + 8 + 4 + 8 + 8;
constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB sanity cap

// A signal landing mid-transfer interrupts the syscall with EINTR; that is
// a retry, not a failure — treating it as fatal silently drops frames.
// `retries` counts the interruptions for observability.
bool ReadAll(int fd, void* data, std::size_t n, obs::Counter& retries) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) {
        retries.inc();
        continue;
      }
      return false;
    }
    if (got == 0) return false;  // peer closed mid-frame
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

// Gathered write of the whole frame in one syscall on the fast path,
// advancing the iovec on partial writes. MSG_NOSIGNAL: a pooled socket whose
// peer endpoint closed must fail with EPIPE (and reconnect), not kill the
// process with SIGPIPE.
bool WritevAll(int fd, iovec* iov, int iovcnt, obs::Counter& retries) {
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  while (msg.msg_iovlen > 0) {
    const ssize_t written = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) {
        retries.inc();
        continue;
      }
      return false;
    }
    std::size_t left = static_cast<std::size_t>(written);
    while (msg.msg_iovlen > 0 && left >= msg.msg_iov[0].iov_len) {
      left -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen > 0 && left > 0) {
      msg.msg_iov[0].iov_base =
          static_cast<char*>(msg.msg_iov[0].iov_base) + left;
      msg.msg_iov[0].iov_len -= left;
    }
  }
  return true;
}

void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}
std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}

}  // namespace

TcpRuntime::TcpRuntime() : TcpRuntime(TcpOptions{}) {}

TcpRuntime::TcpRuntime(TcpOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

TcpRuntime::~TcpRuntime() {
  std::vector<EndpointPtr> eps;
  {
    base::WriterMutexLock lock(map_mutex_);
    for (auto& [_, ep] : endpoints_) eps.push_back(ep);
    endpoints_.clear();
  }
  for (auto& ep : eps) stop_endpoint(ep);
  for (auto& ep : eps) {
    if (ep->acceptor.joinable()) ep->acceptor.join();
    if (ep->service.joinable()) ep->service.join();
    std::vector<std::thread> readers;
    {
      base::MutexLock lock(ep->conns_mutex);
      readers.swap(ep->readers);
    }
    for (auto& t : readers) t.join();
    base::MutexLock lock(ep->conns_mutex);
    for (int& fd : ep->conn_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  {
    base::MutexLock lock(pool_mutex_);
    for (auto& [_, idle] : pool_) {
      for (auto& conn : idle) ::close(conn.fd);
    }
    pool_.clear();
  }
  base::MutexLock lock(graveyard_mutex_);
  for (auto& t : graveyard_) {
    if (t.joinable()) t.join();
  }
}

void TcpRuntime::stop_endpoint(const EndpointPtr& ep) {
  ep->alive.store(false);
  if (ep->listen_fd >= 0) {
    ::shutdown(ep->listen_fd, SHUT_RDWR);
    ::close(ep->listen_fd);
  }
  {
    // Readers blocked mid-read wake with EOF; they close their own fds.
    base::MutexLock lock(ep->conns_mutex);
    for (int fd : ep->conn_fds) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  {
    base::MutexLock lock(ep->mutex);
    ep->stopping = true;
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

EndpointId TcpRuntime::create_endpoint(HostId host, std::string label,
                                       MessageHandler handler,
                                       ExecutionMode mode) {
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  auto ep = std::make_shared<Endpoint>();
  ep->host = host;
  ep->label = std::move(label);
  ep->handler = std::move(handler);
  ep->mode = mode;

  // Bind a loopback listener on an ephemeral port.
  ep->listen_fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (ep->listen_fd < 0) return EndpointId{};
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  if (::bind(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr),
             sizeof addr) != 0 ||
      ::listen(ep->listen_fd, 64) != 0) {
    ::close(ep->listen_fd);
    return EndpointId{};
  }
  socklen_t len = sizeof addr;
  if (::getsockname(ep->listen_fd, reinterpret_cast<sockaddr*>(&addr), &len) !=
      0) {
    ::close(ep->listen_fd);
    return EndpointId{};
  }
  ep->port = ntohs(addr.sin_port);

  EndpointId id;
  {
    base::WriterMutexLock lock(map_mutex_);
    id = EndpointId{next_endpoint_++};
    endpoints_.emplace(id.value, ep);
  }
  ep->acceptor = std::thread([this, ep] { acceptor_loop(ep); });
  if (mode == ExecutionMode::kServiced) {
    ep->service = std::thread([this, ep] { service_loop(ep); });
  }
  return id;
}

void TcpRuntime::close_endpoint(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::WriterMutexLock lock(map_mutex_);
    endpoints_.erase(id.value);
  }
  stop_endpoint(ep);
  auto reap = [this](std::thread& t) {
    if (!t.joinable()) return;
    if (t.get_id() == std::this_thread::get_id()) {
      base::MutexLock lock(graveyard_mutex_);
      graveyard_.push_back(std::move(t));
    } else {
      t.join();
    }
  };
  reap(ep->acceptor);
  reap(ep->service);
  std::vector<std::thread> readers;
  {
    base::MutexLock lock(ep->conns_mutex);
    readers.swap(ep->readers);
  }
  // Readers never run handlers (they only feed the inbox), so the closing
  // thread is never one of them and a plain join is safe.
  for (auto& t : readers) t.join();
  base::MutexLock lock(ep->conns_mutex);
  for (int& fd : ep->conn_fds) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

bool TcpRuntime::endpoint_alive(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep && ep->alive.load();
}

HostId TcpRuntime::host_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->host : HostId{};
}

std::uint16_t TcpRuntime::port_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->port : 0;
}

TcpRuntime::EndpointPtr TcpRuntime::find(EndpointId id) const {
  base::ReaderMutexLock lock(map_mutex_);
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status TcpRuntime::dial(std::uint16_t port, Connection& out) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    // Per-message sockets made fd exhaustion easy to hit; it is a local
    // resource failure, not evidence the binding went stale.
    if (errno == EMFILE || errno == ENFILE) {
      return UnavailableError("socket(): fd exhausted");
    }
    return UnavailableError(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
    const int err = errno;
    ::close(fd);
    if (err == ECONNREFUSED) {
      // The physical stale binding: nothing listens there anymore.
      return StaleBindingError("connection refused");
    }
    if (err == EMFILE || err == ENFILE) {
      return UnavailableError("connect(): fd exhausted");
    }
    return UnavailableError(std::string("connect(): ") + std::strerror(err));
  }
  dials_.inc();
  open_conns_.add(1);
  out.fd = fd;
  out.reused = false;
  out.last_used = std::chrono::steady_clock::now();
  return OkStatus();
}

Status TcpRuntime::acquire(std::uint16_t port, Connection& out) {
  {
    base::MutexLock lock(pool_mutex_);
    auto it = pool_.find(port);
    if (it != pool_.end()) {
      auto& idle = it->second;
      // Reap idle-timeout expirees, stalest first (release appends, so the
      // vector is ordered by last use).
      const auto cutoff = std::chrono::steady_clock::now() - options_.idle_reap;
      std::size_t dead = 0;
      while (dead < idle.size() && idle[dead].last_used < cutoff) ++dead;
      for (std::size_t i = 0; i < dead; ++i) {
        ::close(idle[i].fd);
        reaped_.inc();
        open_conns_.sub(1);
      }
      idle.erase(idle.begin(),
                 idle.begin() + static_cast<std::ptrdiff_t>(dead));
      if (!idle.empty()) {
        out = idle.back();  // most recently used: warmest socket
        idle.pop_back();
        out.reused = true;
        pool_hits_.inc();
        return OkStatus();
      }
    }
  }
  return dial(port, out);
}

void TcpRuntime::release(std::uint16_t port, Connection conn) {
  conn.last_used = std::chrono::steady_clock::now();
  {
    base::MutexLock lock(pool_mutex_);
    auto& idle = pool_[port];
    if (idle.size() < options_.max_idle_per_peer) {
      idle.push_back(conn);
      return;
    }
  }
  // Pool full: the bound on cached fds wins over reuse.
  close_conn(conn);
}

void TcpRuntime::close_conn(Connection& conn) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  open_conns_.sub(1);
}

bool TcpRuntime::write_frame(int fd, const Envelope& env) {
  std::uint8_t header[kHeaderBytes];
  PutU32(header, static_cast<std::uint32_t>(env.payload.size()));
  PutU64(header + 4, env.src.value);
  PutU64(header + 12, env.dst.value);
  header[20] = static_cast<std::uint8_t>(env.kind);
  PutU64(header + 21, env.trace_id);
  PutU32(header + 29, env.hop);
  PutU64(header + 33, env.span_id);
  PutU64(header + 41, env.parent_span_id);
  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = kHeaderBytes;
  int iovcnt = 1;
  if (!env.payload.empty()) {
    iov[1].iov_base = const_cast<std::uint8_t*>(env.payload.data());
    iov[1].iov_len = env.payload.size();
    iovcnt = 2;
  }
  return WritevAll(fd, iov, iovcnt, io_retries_);
}

Status TcpRuntime::post(Envelope env) {
  EndpointPtr src = find(env.src);
  if (!src) return InternalError("post from unknown endpoint");
  EndpointPtr dst = find(env.dst);
  if (!dst || !dst->alive.load()) {
    return StaleBindingError("destination endpoint closed");
  }
  const std::uint16_t port = dst->port;

  Connection conn;
  if (!options_.pooled) {
    // Ablation baseline: connect, one frame, close.
    Status st = dial(port, conn);
    if (!st.ok()) return st;
    const bool ok = write_frame(conn.fd, env);
    close_conn(conn);
    if (!ok) return UnavailableError("short write on TCP send");
  } else {
    Status st = acquire(port, conn);
    if (!st.ok()) return st;
    bool ok = write_frame(conn.fd, env);
    if (!ok && conn.reused) {
      // The cached socket's peer vanished (endpoint closed, listener
      // restarted) — exactly one reconnect. A refusal here is the stale
      // binding the Section 4.1.4 repair loop exists for.
      close_conn(conn);
      reconnects_.inc();
      st = dial(port, conn);
      if (!st.ok()) return st;
      ok = write_frame(conn.fd, env);
    }
    if (!ok) {
      close_conn(conn);
      return UnavailableError("short write on TCP send");
    }
    release(port, conn);
  }

  {
    base::MutexLock lock(src->mutex);
    src->stats.sent += 1;
    src->stats.bytes_sent += env.payload.size();
  }
  transport_.delivered.inc();
  return OkStatus();
}

void TcpRuntime::notify(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::MutexLock lock(ep->mutex);
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

void TcpRuntime::acceptor_loop(const EndpointPtr& ep) {
  for (;;) {
    const int conn = ::accept(ep->listen_fd, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR) {
        io_retries_.inc();
        continue;  // a signal must not kill the endpoint
      }
      return;  // listener closed: endpoint is going away
    }
    base::MutexLock lock(ep->conns_mutex);
    if (!ep->alive.load()) {
      ::close(conn);
      return;
    }
    const std::size_t slot = ep->conn_fds.size();
    ep->conn_fds.push_back(conn);
    ep->readers.emplace_back(
        [this, ep, slot, conn] { reader_loop(ep, slot, conn); });
  }
}

// Drains frames off one persistent stream until the peer closes it (pool
// reap, runtime shutdown) or a frame is malformed.
void TcpRuntime::reader_loop(const EndpointPtr& ep, std::size_t slot, int fd) {
  std::vector<std::uint8_t> header(kHeaderBytes);
  for (;;) {
    if (!ReadAll(fd, header.data(), header.size(), io_retries_)) break;
    const std::uint32_t payload_len = GetU32(header.data());
    if (payload_len > kMaxFrameBytes) break;  // hostile or corrupt frame
    Envelope env;
    env.src = EndpointId{GetU64(header.data() + 4)};
    env.dst = EndpointId{GetU64(header.data() + 12)};
    env.kind = static_cast<DeliveryKind>(header[20]);
    env.trace_id = GetU64(header.data() + 21);
    env.hop = GetU32(header.data() + 29);
    env.span_id = GetU64(header.data() + 33);
    env.parent_span_id = GetU64(header.data() + 41);
    if (payload_len > 0) {
      std::vector<std::uint8_t> payload(payload_len);
      if (!ReadAll(fd, payload.data(), payload.size(), io_retries_)) break;
      env.payload = Buffer{std::move(payload)};
    }

    bool deliver = true;
    {
      base::MutexLock lock(ep->mutex);
      if (ep->stopping) {
        deliver = false;
      } else {
        ep->stats.received += 1;
        ep->stats.bytes_received += env.payload.size();
        env.queued_at = now();  // enqueue stamp: queue time = dequeue - this
        ep->inbox.push_back(std::move(env));
        ++ep->wakeups;
      }
    }
    if (!deliver) break;
    ep->cv.notify_all();
  }
  // The reader owns the close; teardown only shutdowns live fds and closes
  // whatever is still >= 0 after joining, so there is no double close.
  base::MutexLock lock(ep->conns_mutex);
  ::close(fd);
  ep->conn_fds[slot] = -1;
}

bool TcpRuntime::pop_one(const EndpointPtr& ep, Envelope& out) {
  base::MutexLock lock(ep->mutex);
  if (ep->inbox.empty()) return false;
  out = std::move(ep->inbox.front());
  ep->inbox.pop_front();
  return true;
}

void TcpRuntime::service_loop(const EndpointPtr& ep) {
  for (;;) {
    Envelope env;
    {
      base::MutexLock lock(ep->mutex);
      while (!ep->stopping && ep->inbox.empty()) ep->cv.wait(ep->mutex);
      if (ep->inbox.empty()) return;
      env = std::move(ep->inbox.front());
      ep->inbox.pop_front();
    }
    if (ep->handler) ep->handler(std::move(env));
  }
}

SimTime TcpRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool TcpRuntime::wait(EndpointId self, const std::function<bool()>& ready,
                      SimTime timeout_us) {
  EndpointPtr ep = find(self);
  if (!ep) return ready();
  const auto deadline =
      timeout_us == kSimTimeNever
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_us);
  for (;;) {
    if (ready()) return true;
    Envelope env;
    if (pop_one(ep, env)) {
      if (ep->handler) ep->handler(std::move(env));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ready();
    {
      base::MutexLock lock(ep->mutex);
      if (!ep->inbox.empty()) continue;
      // Event-driven like ThreadRuntime::wait: sleep until the next wakeup
      // generation (delivery / notify / close) or the deadline, with a long
      // re-check slice only for predicates satisfied without a wakeup.
      const std::uint64_t seen = ep->wakeups;
      const auto cap = ep->stopping ? now + std::chrono::milliseconds(1)
                                    : now + std::chrono::milliseconds(50);
      const auto until = std::min(deadline, cap);
      while (ep->wakeups == seen) {
        if (ep->cv.wait_until(ep->mutex, until)) break;  // timed out
      }
    }
  }
}

void TcpRuntime::run_until_idle() {
  for (int calm = 0; calm < 2;) {
    bool busy = false;
    {
      base::ReaderMutexLock lock(map_mutex_);
      for (const auto& [_, ep] : endpoints_) {
        base::MutexLock elock(ep->mutex);
        if (!ep->inbox.empty()) {
          busy = true;
          break;
        }
      }
    }
    calm = busy ? 0 : calm + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

RuntimeStats TcpRuntime::stats() const { return transport_.view(); }

EndpointStats TcpRuntime::endpoint_stats(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (!ep) return EndpointStats{};
  base::MutexLock lock(ep->mutex);
  return ep->stats;
}

std::map<std::string, std::uint64_t> TcpRuntime::received_by_label() const {
  std::map<std::string, std::uint64_t> out;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    out[ep->label] += ep->stats.received;
  }
  return out;
}

std::uint64_t TcpRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    if (ep->label != label) continue;
    base::MutexLock elock(ep->mutex);
    best = std::max(best, ep->stats.received);
  }
  return best;
}

void TcpRuntime::reset_stats() {
  transport_.reset();
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    ep->stats = EndpointStats{};
  }
}

}  // namespace legion::rt
