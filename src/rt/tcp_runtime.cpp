#include "rt/tcp_runtime.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>

#include "rt/frame.hpp"
#include "rt/socket_util.hpp"

namespace legion::rt {

TcpRuntime::TcpRuntime() : TcpRuntime(TcpOptions{}) {}

TcpRuntime::TcpRuntime(TcpOptions options)
    : options_(options), epoch_(std::chrono::steady_clock::now()) {}

TcpRuntime::~TcpRuntime() {
  std::vector<EndpointPtr> eps;
  {
    base::WriterMutexLock lock(map_mutex_);
    for (auto& [_, ep] : endpoints_) eps.push_back(ep);
    endpoints_.clear();
  }
  for (auto& ep : eps) stop_endpoint(ep);
  for (auto& ep : eps) {
    if (ep->acceptor.joinable()) ep->acceptor.join();
    if (ep->service.joinable()) ep->service.join();
    std::vector<std::thread> readers;
    {
      base::MutexLock lock(ep->conns_mutex);
      readers.swap(ep->readers);
    }
    for (auto& t : readers) {
      if (t.joinable()) t.join();
    }
    base::MutexLock lock(ep->conns_mutex);
    for (int& fd : ep->conn_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  pool_.close_all();
  base::MutexLock lock(graveyard_mutex_);
  for (auto& t : graveyard_) {
    if (t.joinable()) t.join();
  }
}

void TcpRuntime::stop_endpoint(const EndpointPtr& ep) {
  ep->alive.store(false);
  if (ep->listen_fd >= 0) {
    ::shutdown(ep->listen_fd, SHUT_RDWR);
    ::close(ep->listen_fd);
  }
  {
    // Readers blocked mid-read wake with EOF; they close their own fds.
    base::MutexLock lock(ep->conns_mutex);
    for (int fd : ep->conn_fds) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  {
    base::MutexLock lock(ep->mutex);
    ep->stopping = true;
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

EndpointId TcpRuntime::create_endpoint(HostId host, std::string label,
                                       MessageHandler handler,
                                       ExecutionMode mode) {
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  auto ep = std::make_shared<Endpoint>();
  ep->host = host;
  ep->label = std::move(label);
  ep->handler = std::move(handler);
  ep->mode = mode;

  // Bind a loopback listener on an ephemeral port (SO_REUSEADDR so a revived
  // endpoint can rebind a port still draining TIME_WAIT, backlog from
  // options so connect storms don't overflow the SYN queue).
  const ListenerSocket listener =
      CreateLoopbackListener(0, options_.listen_backlog);
  if (listener.fd < 0) return EndpointId{};
  ep->listen_fd = listener.fd;
  ep->port = listener.port;

  EndpointId id;
  {
    base::WriterMutexLock lock(map_mutex_);
    id = EndpointId{next_endpoint_++};
    endpoints_.emplace(id.value, ep);
  }
  ep->acceptor = std::thread([this, ep] { acceptor_loop(ep); });
  if (mode == ExecutionMode::kServiced) {
    ep->service = std::thread([this, ep] { service_loop(ep); });
  }
  return id;
}

void TcpRuntime::close_endpoint(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::WriterMutexLock lock(map_mutex_);
    endpoints_.erase(id.value);
  }
  stop_endpoint(ep);
  auto reap = [this](std::thread& t) {
    if (!t.joinable()) return;
    if (t.get_id() == std::this_thread::get_id()) {
      base::MutexLock lock(graveyard_mutex_);
      graveyard_.push_back(std::move(t));
    } else {
      t.join();
    }
  };
  reap(ep->acceptor);
  reap(ep->service);
  std::vector<std::thread> readers;
  {
    base::MutexLock lock(ep->conns_mutex);
    readers.swap(ep->readers);
  }
  // Readers never run handlers (they only feed the inbox), so the closing
  // thread is never one of them and a plain join is safe.
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  base::MutexLock lock(ep->conns_mutex);
  for (int& fd : ep->conn_fds) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

bool TcpRuntime::endpoint_alive(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep && ep->alive.load();
}

HostId TcpRuntime::host_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->host : HostId{};
}

std::uint16_t TcpRuntime::port_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->port : 0;
}

TcpRuntime::EndpointPtr TcpRuntime::find(EndpointId id) const {
  base::ReaderMutexLock lock(map_mutex_);
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status TcpRuntime::post(Envelope env) {
  EndpointPtr src = find(env.src);
  if (!src) return InternalError("post from unknown endpoint");
  EndpointPtr dst = find(env.dst);
  if (!dst || !dst->alive.load()) {
    return StaleBindingError("destination endpoint closed");
  }

  Status st = pool_.send(dst->port, env);
  if (!st.ok()) return st;

  {
    base::MutexLock lock(src->mutex);
    src->stats.sent += 1;
    src->stats.bytes_sent += env.payload.size();
  }
  transport_.delivered.inc();
  return OkStatus();
}

void TcpRuntime::notify(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::MutexLock lock(ep->mutex);
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

void TcpRuntime::acceptor_loop(const EndpointPtr& ep) {
  for (;;) {
    const int conn = AcceptConn(ep->listen_fd);
    if (conn < 0) {
      // Only a closed listener may end this loop: any transient failure that
      // returns here permanently deafens the endpoint while its port stays
      // bound — peers then see accepted-but-never-read connections, not
      // ECONNREFUSED, so the stale-binding repair loop never fires either.
      if (!ep->alive.load()) return;  // listener closed: endpoint going away
      switch (errno) {
        case EINTR:
          io_retries_.inc();
          continue;  // a signal must not kill the endpoint
        case ECONNABORTED:  // peer hung up while queued: their loss only
          accept_retries_.inc();
          continue;
        case EMFILE:  // fd pressure is local and transient; back off until
        case ENFILE:  // the process (or host) sheds descriptors
        case ENOBUFS:
        case ENOMEM:
          accept_retries_.inc();
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        default:
          return;  // EBADF/EINVAL etc.: the listener truly is gone
      }
    }
    std::thread vacated;
    {
      base::MutexLock lock(ep->conns_mutex);
      if (!ep->alive.load()) {
        ::close(conn);
        return;
      }
      if (!ep->free_slots.empty()) {
        // Reuse a slot whose reader exited (peer closed / pool reap) so
        // connection churn cannot grow conn_fds/readers without bound.
        const std::size_t slot = ep->free_slots.back();
        ep->free_slots.pop_back();
        vacated = std::move(ep->readers[slot]);
        ep->conn_fds[slot] = conn;
        ep->readers[slot] =
            std::thread([this, ep, slot, conn] { reader_loop(ep, slot, conn); });
      } else {
        const std::size_t slot = ep->conn_fds.size();
        ep->conn_fds.push_back(conn);
        ep->readers.emplace_back(
            [this, ep, slot, conn] { reader_loop(ep, slot, conn); });
        reader_slots_.inc();
      }
    }
    // The vacating reader listed its slot as its last locked action; only
    // its epilogue remains, so this join is momentary — but it must happen
    // (outside the lock) before the std::thread object can be destroyed.
    if (vacated.joinable()) vacated.join();
  }
}

// Drains frames off one persistent stream until the peer closes it (pool
// reap, runtime shutdown) or a frame is malformed.
void TcpRuntime::reader_loop(const EndpointPtr& ep, std::size_t slot, int fd) {
  std::vector<std::uint8_t> header(kFrameHeaderBytes);
  for (;;) {
    if (!ReadAll(fd, header.data(), header.size(), io_retries_)) break;
    Envelope env;
    const std::uint32_t payload_len = DecodeFrameHeader(header.data(), env);
    if (payload_len > kMaxFrameBytes) break;  // hostile or corrupt frame
    if (payload_len > 0) {
      std::vector<std::uint8_t> payload(payload_len);
      if (!ReadAll(fd, payload.data(), payload.size(), io_retries_)) break;
      env.payload = Buffer{std::move(payload)};
    }

    bool deliver = true;
    {
      base::MutexLock lock(ep->mutex);
      if (ep->stopping) {
        deliver = false;
      } else {
        ep->stats.received += 1;
        ep->stats.bytes_received += env.payload.size();
        env.queued_at = now();  // enqueue stamp: queue time = dequeue - this
        ep->inbox.push_back(std::move(env));
        ++ep->wakeups;
      }
    }
    if (!deliver) break;
    ep->cv.notify_all();
  }
  // The reader owns the close; teardown only shutdowns live fds and closes
  // whatever is still >= 0 after joining, so there is no double close. The
  // freed slot is advertised for acceptor reuse.
  base::MutexLock lock(ep->conns_mutex);
  ::close(fd);
  ep->conn_fds[slot] = -1;
  ep->free_slots.push_back(slot);
}

bool TcpRuntime::pop_one(const EndpointPtr& ep, Envelope& out) {
  base::MutexLock lock(ep->mutex);
  if (ep->inbox.empty()) return false;
  out = std::move(ep->inbox.front());
  ep->inbox.pop_front();
  return true;
}

void TcpRuntime::service_loop(const EndpointPtr& ep) {
  for (;;) {
    Envelope env;
    {
      base::MutexLock lock(ep->mutex);
      while (!ep->stopping && ep->inbox.empty()) ep->cv.wait(ep->mutex);
      if (ep->inbox.empty()) return;
      env = std::move(ep->inbox.front());
      ep->inbox.pop_front();
    }
    if (ep->handler) ep->handler(std::move(env));
  }
}

SimTime TcpRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool TcpRuntime::wait(EndpointId self, const std::function<bool()>& ready,
                      SimTime timeout_us) {
  EndpointPtr ep = find(self);
  if (!ep) return ready();
  const auto deadline =
      timeout_us == kSimTimeNever
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_us);
  for (;;) {
    if (ready()) return true;
    Envelope env;
    if (pop_one(ep, env)) {
      if (ep->handler) ep->handler(std::move(env));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ready();
    {
      base::MutexLock lock(ep->mutex);
      if (!ep->inbox.empty()) continue;
      // Event-driven like ThreadRuntime::wait: sleep until the next wakeup
      // generation (delivery / notify / close) or the deadline, with a long
      // re-check slice only for predicates satisfied without a wakeup.
      const std::uint64_t seen = ep->wakeups;
      const auto cap = ep->stopping ? now + std::chrono::milliseconds(1)
                                    : now + std::chrono::milliseconds(50);
      const auto until = std::min(deadline, cap);
      while (ep->wakeups == seen) {
        if (ep->cv.wait_until(ep->mutex, until)) break;  // timed out
      }
    }
  }
}

void TcpRuntime::run_until_idle() {
  for (int calm = 0; calm < 2;) {
    bool busy = false;
    {
      base::ReaderMutexLock lock(map_mutex_);
      for (const auto& [_, ep] : endpoints_) {
        base::MutexLock elock(ep->mutex);
        if (!ep->inbox.empty()) {
          busy = true;
          break;
        }
      }
    }
    calm = busy ? 0 : calm + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

RuntimeStats TcpRuntime::stats() const { return transport_.view(); }

EndpointStats TcpRuntime::endpoint_stats(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (!ep) return EndpointStats{};
  base::MutexLock lock(ep->mutex);
  return ep->stats;
}

std::map<std::string, std::uint64_t> TcpRuntime::received_by_label() const {
  std::map<std::string, std::uint64_t> out;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    out[ep->label] += ep->stats.received;
  }
  return out;
}

std::uint64_t TcpRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    if (ep->label != label) continue;
    base::MutexLock elock(ep->mutex);
    best = std::max(best, ep->stats.received);
  }
  return best;
}

void TcpRuntime::reset_stats() {
  transport_.reset();
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    ep->stats = EndpointStats{};
  }
}

}  // namespace legion::rt
