// Socket helpers shared by the socket-backed runtimes.
//
// TcpRuntime (thread-per-connection), EpollRuntime (reactor) and
// ProcessRuntime (one child process per object, Unix-domain sockets) create
// listeners, dial peers, and move whole frames; centralizing the syscall
// loops keeps the EINTR/EAGAIN/partial-transfer handling — and the listener
// socket options (SO_REUSEADDR, configurable backlog, close-on-exec) —
// identical in all of them.
//
// Every socket created here is close-on-exec. ProcessRuntime fork/execs a
// worker per object; without CLOEXEC the child would inherit the parent's
// pooled client sockets and every listener (keeping dead ports alive through
// TIME_WAIT and leaking peer data into an address-space-disjoint object).
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>
#include <string>

#include "obs/metrics.hpp"

namespace legion::rt {

// A freshly bound loopback listener. fd < 0 means creation failed (errno
// preserved from the failing syscall).
struct ListenerSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

// Binds a TCP listener on 127.0.0.1:`port` (0 = kernel-assigned ephemeral)
// with SO_REUSEADDR set and the given backlog (<= 0 = SOMAXCONN).
//
// SO_REUSEADDR matters for recovery: a host that crashes and is revived on
// the same port must not fail bind() with EADDRINUSE while the old
// incarnation's connections drain through TIME_WAIT — exactly the E15
// stop/rebind path.
[[nodiscard]] ListenerSocket CreateLoopbackListener(std::uint16_t port,
                                                    int backlog);

// Binds a SOCK_STREAM Unix-domain listener at `path` (unlinking any stale
// socket file first). Returns the listening fd, or -1 with errno preserved.
// `path` must fit sun_path (~107 bytes) — keep socket directories short.
[[nodiscard]] int CreateUnixListener(const std::string& path, int backlog);

// Connects a SOCK_STREAM Unix-domain client socket to `path`. Returns the
// connected fd, or -1 with errno preserved (ENOENT/ECONNREFUSED = nothing
// listens there — the UDS flavor of a stale binding).
[[nodiscard]] int DialUnix(const std::string& path);

// accept(2) with close-on-exec set atomically (accept4). Returns the
// accepted fd or -1 with errno preserved.
[[nodiscard]] int AcceptConn(int listen_fd);

// Sets O_NONBLOCK; returns false (errno preserved) on failure.
bool SetNonBlocking(int fd);

// Reads exactly `n` bytes, retrying EINTR (counted in `retries`). False on
// EOF or error. For blocking sockets only.
bool ReadAll(int fd, void* data, std::size_t n, obs::Counter& retries);

// Writes the whole iovec with gathered sendmsg(MSG_NOSIGNAL), advancing on
// partial writes, retrying EINTR (counted), and parking in poll(POLLOUT) on
// EAGAIN/EWOULDBLOCK so nonblocking sockets are handled too. False on error.
bool WritevAll(int fd, iovec* iov, int iovcnt, obs::Counter& retries);

}  // namespace legion::rt
