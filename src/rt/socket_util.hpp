// Loopback-socket helpers shared by the TCP-backed runtimes.
//
// Both TcpRuntime (thread-per-connection) and EpollRuntime (reactor) create
// listeners, dial peers, and move whole frames; centralizing the syscall
// loops keeps the EINTR/EAGAIN/partial-transfer handling — and the listener
// socket options (SO_REUSEADDR, configurable backlog) — identical in both.
#pragma once

#include <sys/uio.h>

#include <cstddef>
#include <cstdint>

#include "obs/metrics.hpp"

namespace legion::rt {

// A freshly bound loopback listener. fd < 0 means creation failed (errno
// preserved from the failing syscall).
struct ListenerSocket {
  int fd = -1;
  std::uint16_t port = 0;
};

// Binds a TCP listener on 127.0.0.1:`port` (0 = kernel-assigned ephemeral)
// with SO_REUSEADDR set and the given backlog (<= 0 = SOMAXCONN).
//
// SO_REUSEADDR matters for recovery: a host that crashes and is revived on
// the same port must not fail bind() with EADDRINUSE while the old
// incarnation's connections drain through TIME_WAIT — exactly the E15
// stop/rebind path.
[[nodiscard]] ListenerSocket CreateLoopbackListener(std::uint16_t port,
                                                    int backlog);

// Sets O_NONBLOCK; returns false (errno preserved) on failure.
bool SetNonBlocking(int fd);

// Reads exactly `n` bytes, retrying EINTR (counted in `retries`). False on
// EOF or error. For blocking sockets only.
bool ReadAll(int fd, void* data, std::size_t n, obs::Counter& retries);

// Writes the whole iovec with gathered sendmsg(MSG_NOSIGNAL), advancing on
// partial writes, retrying EINTR (counted), and parking in poll(POLLOUT) on
// EAGAIN/EWOULDBLOCK so nonblocking sockets are handled too. False on error.
bool WritevAll(int fd, iovec* iov, int iovcnt, obs::Counter& retries);

}  // namespace legion::rt
