#include "rt/spawn_child.hpp"

#include <fcntl.h>
#include <unistd.h>

namespace legion::rt {

Result<std::int64_t> SpawnChild(const SpawnChildArgs& args) {
  if (args.executable.empty()) {
    return InvalidArgumentError("spawn without an executable");
  }
  // Everything the child dereferences is materialized BEFORE the fork:
  // between fork and exec only async-signal-safe calls are allowed, and
  // std::string/vector operations are not.
  std::vector<char*> argv;
  argv.reserve(args.argv.size() + 1);
  for (const std::string& a : args.argv) {
    argv.push_back(const_cast<char*>(a.c_str()));
  }
  argv.push_back(nullptr);
  const char* exe = args.executable.c_str();
  const char* stderr_path =
      args.stderr_path.empty() ? nullptr : args.stderr_path.c_str();
  const int ready_fd = args.ready_fd;

  const pid_t pid = ::fork();
  if (pid < 0) {
    return UnavailableError("fork failed: errno " + std::to_string(errno));
  }
  if (pid == 0) {
    // Child. Async-signal-safe territory until execv. dup2 clears CLOEXEC
    // on the duplicate, so fd 3 (and only it) crosses the exec; every other
    // legion socket is CLOEXEC by construction (rt/socket_util.hpp).
    if (ready_fd >= 0) {
      if (::dup2(ready_fd, 3) < 0) ::_exit(126);
    }
    if (stderr_path != nullptr) {
      const int log = ::open(stderr_path, O_WRONLY | O_CREAT | O_APPEND, 0644);
      if (log >= 0) {
        (void)::dup2(log, 2);
        if (log != 2) (void)::close(log);
      }
    }
    ::execv(exe, argv.data());
    ::_exit(127);  // exec failed; the parent's ready timeout reports it
  }
  return static_cast<std::int64_t>(pid);
}

}  // namespace legion::rt
