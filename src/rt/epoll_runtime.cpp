#include "rt/epoll_runtime.hpp"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <unordered_set>

#include "rt/frame.hpp"
#include "rt/socket_util.hpp"

namespace legion::rt {

namespace {

// See ThreadRuntime's kForeignPredicateSlice.
constexpr auto kForeignPredicateSlice = std::chrono::milliseconds(50);

// Messages one scheduled mailbox may drain before yielding the worker —
// bounds per-endpoint monopolization without giving up batching.
constexpr int kRunBudget = 32;

// How long a host listener stays parked (removed from epoll) after an
// fd-exhaustion accept failure before the reactor re-arms it.
constexpr auto kAcceptBackoff = std::chrono::milliseconds(5);

// Identifies worker threads (for work-stealing push targets and blocked
// compensation) and the endpoint a thread is currently servicing (so a
// nested wait() may keep draining that endpoint inline). Keyed by runtime
// pointer: multiple EpollRuntimes in one process must not cross wires.
struct WorkerTls {
  const void* runtime = nullptr;
  void* worker = nullptr;
  std::uint64_t current_endpoint = 0;
};
thread_local WorkerTls tl_worker;

}  // namespace

// Announces "this worker is about to block" to the pool, which spawns a
// bounded spare if the unblocked complement dropped below target. Spares
// are ordinary workers and persist until teardown — churn-free, and the
// steady-state thread count stays a small constant.
class EpollRuntime::BlockedScope {
 public:
  explicit BlockedScope(EpollRuntime* rt) {
    if (tl_worker.runtime != rt) return;  // external thread: nothing to cover
    rt_ = rt;
    base::MutexLock lock(rt->pool_mutex_);
    ++rt->blocked_workers_;
    const std::size_t cap = rt->target_workers_ * 16 + 8;
    if (rt->workers_.size() - rt->blocked_workers_ < rt->target_workers_ &&
        rt->workers_.size() < cap) {
      rt->spawn_worker();
      rt->spares_spawned_.inc();
    }
  }
  ~BlockedScope() {
    if (!rt_) return;
    base::MutexLock lock(rt_->pool_mutex_);
    --rt_->blocked_workers_;
  }

  BlockedScope(const BlockedScope&) = delete;
  BlockedScope& operator=(const BlockedScope&) = delete;

 private:
  EpollRuntime* rt_ = nullptr;
};

EpollRuntime::EpollRuntime() : EpollRuntime(EpollOptions{}) {}

EpollRuntime::EpollRuntime(TcpOptions tcp)
    : EpollRuntime(EpollOptions{tcp, 0, Rng::kDefaultSeed}) {}

EpollRuntime::EpollRuntime(EpollOptions options)
    : options_(options),
      rng_(options.seed),
      epoch_(std::chrono::steady_clock::now()) {
  target_workers_ =
      options_.workers != 0
          ? options_.workers
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
  wake_fd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
  epoll_event ev{};
  ev.events = EPOLLIN;
  ev.data.fd = wake_fd_;
  ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_fd_, &ev);
  reactor_ = std::thread([this] { reactor_loop(); });
  base::MutexLock lock(pool_mutex_);
  for (std::size_t i = 0; i < target_workers_; ++i) spawn_worker();
}

EpollRuntime::~EpollRuntime() {
  // 1. Stop the reactor first: no mailbox grows after this, so the drains
  //    below terminate. The reactor closes every conn and listener it owns.
  post_control({ControlOp::Kind::kStop, -1});
  if (reactor_.joinable()) reactor_.join();

  // 2. Mark every endpoint stopping so blocked waiters wake promptly.
  std::vector<EndpointPtr> eps;
  {
    base::WriterMutexLock lock(map_mutex_);
    for (auto& [_, ep] : endpoints_) eps.push_back(ep);
    endpoints_.clear();
  }
  for (auto& ep : eps) {
    ep->alive.store(false);
    {
      base::MutexLock lock(ep->mutex);
      ep->stopping = true;
      ++ep->wakeups;
    }
    ep->cv.notify_all();
  }

  // 3. Stop the scheduler; workers drain whatever is still queued, then
  //    exit. Join outside pool_mutex_ (workers take it in BlockedScope).
  {
    base::MutexLock lock(sched_mutex_);
    sched_stopping_ = true;
    ++sched_epoch_;
  }
  sched_cv_.notify_all();
  std::vector<std::thread> threads;
  {
    base::MutexLock lock(pool_mutex_);
    for (auto& w : workers_) threads.push_back(std::move(w->thread));
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }

  pool_.close_all();
  if (wake_fd_ >= 0) ::close(wake_fd_);
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
}

void EpollRuntime::spawn_worker() {
  auto w = std::make_unique<Worker>();
  Worker* wp = w.get();
  workers_.push_back(std::move(w));
  wp->thread = std::thread([this, wp] { worker_loop(wp); });
}

std::size_t EpollRuntime::runtime_threads() const {
  base::MutexLock lock(pool_mutex_);
  return workers_.size() + 1;  // + the reactor
}

EndpointId EpollRuntime::create_endpoint(HostId host, std::string label,
                                         MessageHandler handler,
                                         ExecutionMode mode) {
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  auto ep = std::make_shared<Endpoint>();
  ep->host = host;
  ep->label = std::move(label);
  ep->handler = std::move(handler);
  ep->mode = mode;

  // Resolve (or lazily bind) the host's shared listener. Creating the
  // endpoint costs no thread and no fd beyond its host's one listener —
  // that is the whole 1M-objects-per-box argument.
  {
    base::MutexLock lock(listeners_mutex_);
    auto it = listener_ports_.find(host.value);
    if (it != listener_ports_.end()) {
      ep->host_port = it->second;
    } else {
      const ListenerSocket listener =
          CreateLoopbackListener(0, options_.tcp.listen_backlog);
      if (listener.fd < 0) return EndpointId{};
      SetNonBlocking(listener.fd);
      listener_ports_.emplace(host.value, listener.port);
      ep->host_port = listener.port;
      post_control({ControlOp::Kind::kAddListener, listener.fd});
    }
  }

  EndpointId id;
  {
    base::WriterMutexLock lock(map_mutex_);
    id = EndpointId{next_endpoint_++};
    ep->id = id;
    endpoints_.emplace(id.value, ep);
  }
  return id;
}

void EpollRuntime::close_endpoint(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::WriterMutexLock lock(map_mutex_);
    endpoints_.erase(id.value);
  }
  ep->alive.store(false);
  bool self_running = false;
  {
    base::MutexLock lock(ep->mutex);
    ep->stopping = true;
    ++ep->wakeups;
    self_running = ep->mstate == MailboxState::kRunning &&
                   ep->running_thread == std::this_thread::get_id();
  }
  ep->cv.notify_all();
  if (self_running) return;  // self-close from its own handler: no wait
  // Mirror the thread runtimes' join-on-close: when close_endpoint returns,
  // no handler for this endpoint is running and none will start. A worker
  // drains any queued messages first (same drain-then-exit semantics as
  // ThreadRuntime::service_loop).
  BlockedScope blocked(this);
  base::MutexLock lock(ep->mutex);
  while (ep->mstate != MailboxState::kIdle) ep->cv.wait(ep->mutex);
}

bool EpollRuntime::endpoint_alive(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep && ep->alive.load();
}

HostId EpollRuntime::host_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->host : HostId{};
}

std::uint16_t EpollRuntime::port_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->host_port : 0;
}

EpollRuntime::EndpointPtr EpollRuntime::find(EndpointId id) const {
  base::ReaderMutexLock lock(map_mutex_);
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status EpollRuntime::post(Envelope env) {
  EndpointPtr src = find(env.src);
  if (!src) return InternalError("post from unknown endpoint");
  EndpointPtr dst = find(env.dst);
  if (!dst || !dst->alive.load()) {
    return StaleBindingError("destination endpoint closed");
  }

  const net::LatencyClass cls = topology_.classify(src->host, dst->host);
  if (faults_.any_faults()) {
    // Fault checks need the shared RNG; skip the lock entirely on the
    // (common) fault-free configuration. Consulting the plan here — unlike
    // TcpRuntime — lets recovery/partition experiments run over real
    // sockets.
    base::MutexLock lock(rng_mutex_);
    if (faults_.should_drop(src->host, dst->host, cls, rng_)) {
      transport_.dropped.inc();
      return OkStatus();
    }
  }

  Status st = pool_.send(dst->host_port, env);
  if (!st.ok()) return st;

  {
    base::MutexLock lock(src->mutex);
    src->stats.sent += 1;
    src->stats.bytes_sent += env.payload.size();
  }
  transport_.delivered.inc();
  transport_.by_class[static_cast<std::size_t>(cls)]->inc();
  return OkStatus();
}

// Reactor -> mailbox handoff: stamp, count, and schedule if the mailbox was
// idle. Frames racing an endpoint close are dropped, exactly as a dead
// TcpRuntime reader would lose them.
void EpollRuntime::enqueue(Envelope env) {
  EndpointPtr ep = find(env.dst);
  if (!ep || !ep->alive.load()) return;
  bool sched = false;
  {
    base::MutexLock lock(ep->mutex);
    if (ep->stopping) return;
    ep->stats.received += 1;
    ep->stats.bytes_received += env.payload.size();
    env.queued_at = now();  // enqueue stamp: queue time = dequeue - this
    ep->inbox.push_back(std::move(env));
    ++ep->wakeups;
    if (ep->mode == ExecutionMode::kServiced &&
        ep->mstate == MailboxState::kIdle) {
      ep->mstate = MailboxState::kScheduled;
      sched = true;
    }
  }
  ep->cv.notify_all();
  if (sched) schedule(ep);
}

void EpollRuntime::schedule(const EndpointPtr& ep) {
  Worker* self = tl_worker.runtime == this
                     ? static_cast<Worker*>(tl_worker.worker)
                     : nullptr;
  if (self != nullptr) {
    base::MutexLock lock(self->mutex);
    self->queue.push_back(ep);
  } else {
    base::MutexLock lock(sched_mutex_);
    injector_.push_back(ep);
  }
  // Wake a sleeper either way: a busy worker's own pushes are stealable.
  {
    base::MutexLock lock(sched_mutex_);
    ++sched_epoch_;
  }
  sched_cv_.notify_one();
}

EpollRuntime::EndpointPtr EpollRuntime::next_endpoint(Worker* self) {
  {
    base::MutexLock lock(self->mutex);
    if (!self->queue.empty()) {
      EndpointPtr ep = std::move(self->queue.back());  // LIFO: cache-warm
      self->queue.pop_back();
      return ep;
    }
  }
  {
    base::MutexLock lock(sched_mutex_);
    if (!injector_.empty()) {
      EndpointPtr ep = std::move(injector_.front());
      injector_.pop_front();
      return ep;
    }
  }
  // Steal oldest-first from victims. Worker objects are stable (the vector
  // only grows and elements are unique_ptrs), so the snapshot stays valid
  // after pool_mutex_ is dropped.
  std::vector<Worker*> victims;
  {
    base::MutexLock lock(pool_mutex_);
    victims.reserve(workers_.size());
    for (auto& w : workers_) {
      if (w.get() != self) victims.push_back(w.get());
    }
  }
  for (Worker* v : victims) {
    base::MutexLock lock(v->mutex);
    if (!v->queue.empty()) {
      EndpointPtr ep = std::move(v->queue.front());
      v->queue.pop_front();
      return ep;
    }
  }
  return nullptr;
}

void EpollRuntime::worker_loop(Worker* self) {
  tl_worker = WorkerTls{this, self, 0};
  for (;;) {
    // Epoch before scan: any push completed after this read bumps the epoch
    // and aborts the sleep below, so no wakeup can be lost between "found
    // nothing" and "went to sleep".
    std::uint64_t seen;
    bool stopping;
    {
      base::MutexLock lock(sched_mutex_);
      seen = sched_epoch_;
      stopping = sched_stopping_;
    }
    EndpointPtr ep = next_endpoint(self);
    if (ep) {
      run_endpoint(ep);
      continue;
    }
    if (stopping) return;  // scanned everything empty after the stop signal
    base::MutexLock lock(sched_mutex_);
    while (sched_epoch_ == seen && !sched_stopping_) {
      sched_cv_.wait(sched_mutex_);
    }
  }
}

void EpollRuntime::run_endpoint(const EndpointPtr& ep) {
  {
    base::MutexLock lock(ep->mutex);
    ep->mstate = MailboxState::kRunning;
    ep->running_thread = std::this_thread::get_id();
  }
  int used = 0;
  for (;;) {
    Envelope env;
    if (!pop_one(ep, env)) break;
    if (ep->handler) {
      const std::uint64_t prev = tl_worker.current_endpoint;
      tl_worker.current_endpoint = ep->id.value;
      ep->handler(std::move(env));
      tl_worker.current_endpoint = prev;
    }
    if (++used >= kRunBudget) break;
  }
  bool resched = false;
  {
    base::MutexLock lock(ep->mutex);
    ep->running_thread = std::thread::id{};
    if (ep->inbox_head < ep->inbox.size()) {
      // Budget exhausted with work left: back of the queue, not kIdle —
      // other mailboxes get their turn (and close_endpoint's drain-then-
      // close contract still holds because stopping blocks new arrivals).
      ep->mstate = MailboxState::kScheduled;
      resched = true;
    } else {
      ep->mstate = MailboxState::kIdle;
      ++ep->wakeups;  // close_endpoint may be waiting for exactly this
    }
  }
  ep->cv.notify_all();
  if (resched) schedule(ep);
}

bool EpollRuntime::pop_one(const EndpointPtr& ep, Envelope& out) {
  base::MutexLock lock(ep->mutex);
  if (ep->inbox_head >= ep->inbox.size()) return false;
  out = std::move(ep->inbox[ep->inbox_head++]);
  if (ep->inbox_head == ep->inbox.size()) {
    ep->inbox.clear();
    ep->inbox_head = 0;
  }
  return true;
}

void EpollRuntime::notify(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::MutexLock lock(ep->mutex);
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

SimTime EpollRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool EpollRuntime::wait(EndpointId self, const std::function<bool()>& ready,
                        SimTime timeout_us) {
  EndpointPtr ep = find(self);
  if (!ep) return ready();
  // Inline servicing is only safe on the thread that owns this endpoint's
  // execution right now: the driver thread for kDriver endpoints, or the
  // worker whose handler is nested beneath this wait. Any other thread
  // draining the mailbox would break the one-runner-at-a-time guarantee.
  const bool may_service =
      ep->mode == ExecutionMode::kDriver ||
      (tl_worker.runtime == this && tl_worker.current_endpoint == self.value);
  const auto deadline =
      timeout_us == kSimTimeNever
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_us);
  for (;;) {
    if (ready()) return true;
    if (may_service) {
      Envelope env;
      if (pop_one(ep, env)) {
        if (ep->handler) ep->handler(std::move(env));
        continue;
      }
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ready();
    // About to block: if this thread is a worker, the pool compensates so
    // the mailboxes this waiter depends on keep draining.
    BlockedScope blocked(this);
    base::MutexLock lock(ep->mutex);
    if (may_service && ep->inbox_head < ep->inbox.size()) continue;
    const std::uint64_t seen = ep->wakeups;
    const auto cap = ep->stopping ? now + std::chrono::milliseconds(1)
                                  : now + kForeignPredicateSlice;
    const auto until = std::min(deadline, cap);
    while (ep->wakeups == seen) {
      if (ep->cv.wait_until(ep->mutex, until)) break;  // timed out
    }
  }
}

void EpollRuntime::run_until_idle() {
  // Best-effort settle: inboxes empty and every mailbox back to kIdle twice
  // in a row (in-flight frames land between probes).
  for (int calm = 0; calm < 2;) {
    bool busy = false;
    {
      base::ReaderMutexLock lock(map_mutex_);
      for (const auto& [_, ep] : endpoints_) {
        base::MutexLock elock(ep->mutex);
        if (ep->inbox_head < ep->inbox.size() ||
            (ep->mode == ExecutionMode::kServiced &&
             ep->mstate != MailboxState::kIdle)) {
          busy = true;
          break;
        }
      }
    }
    calm = busy ? 0 : calm + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// ---------------------------------------------------------------------------
// Reactor: the one thread that touches epoll, every listener, and every
// accepted stream.

void EpollRuntime::post_control(ControlOp op) {
  {
    base::MutexLock lock(reactor_mutex_);
    control_ops_.push_back(op);
  }
  const std::uint64_t one = 1;
  [[maybe_unused]] const ssize_t n = ::write(wake_fd_, &one, sizeof one);
}

void EpollRuntime::reactor_loop() {
  // Per-stream incremental frame parser. All of this state is owned by the
  // reactor thread alone — no locks anywhere on the read path.
  struct Conn {
    std::size_t have = 0;  // bytes of the current header/payload read so far
    std::uint32_t payload_len = 0;
    bool in_payload = false;
    std::uint8_t header[kFrameHeaderBytes];
    std::vector<std::uint8_t> payload;
    Envelope env;
  };
  std::unordered_map<int, Conn> conns;
  std::unordered_set<int> listeners;
  std::vector<int> parked;  // listeners pulled from epoll under fd pressure
  auto rearm_at = std::chrono::steady_clock::time_point::max();

  // Reads every complete frame currently buffered in the socket; returns
  // false when the stream is finished (EOF, error, corrupt frame).
  auto drain = [this](int fd, Conn& c) -> bool {
    for (;;) {
      std::uint8_t* buf;
      std::size_t want;
      if (!c.in_payload) {
        buf = c.header + c.have;
        want = kFrameHeaderBytes - c.have;
      } else {
        buf = c.payload.data() + c.have;
        want = c.payload_len - c.have;
      }
      const ssize_t got = ::read(fd, buf, want);
      if (got < 0) {
        if (errno == EINTR) {
          io_retries_.inc();
          continue;
        }
        return errno == EAGAIN || errno == EWOULDBLOCK;
      }
      if (got == 0) return false;  // peer closed (pool reap, shutdown)
      c.have += static_cast<std::size_t>(got);
      if (c.have < (c.in_payload ? c.payload_len : kFrameHeaderBytes)) {
        continue;  // partial read: come back on the next EPOLLIN
      }
      if (!c.in_payload) {
        c.payload_len = DecodeFrameHeader(c.header, c.env);
        c.have = 0;
        if (c.payload_len > kMaxFrameBytes) return false;  // hostile/corrupt
        if (c.payload_len > 0) {
          c.payload.resize(c.payload_len);
          c.in_payload = true;
          continue;
        }
      } else {
        c.env.payload = Buffer{std::move(c.payload)};
        c.payload = std::vector<std::uint8_t>{};
        c.in_payload = false;
        c.have = 0;
      }
      enqueue(std::move(c.env));
      c.env = Envelope{};
    }
  };

  bool running = true;
  epoll_event events[128];
  while (running) {
    int timeout_ms = -1;
    if (!parked.empty()) {
      const auto now = std::chrono::steady_clock::now();
      if (now >= rearm_at) {
        for (int fd : parked) {
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = fd;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev);
        }
        parked.clear();
        rearm_at = std::chrono::steady_clock::time_point::max();
      } else {
        const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
            rearm_at - now);
        timeout_ms = std::max<int>(1, static_cast<int>(left.count()));
      }
    }
    const int n = ::epoll_wait(epoll_fd_, events, 128, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) {
        io_retries_.inc();
        continue;
      }
      break;  // epoll fd itself is broken: nothing sane left to do
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      if (fd == wake_fd_) {
        std::uint64_t v;
        while (::read(wake_fd_, &v, sizeof v) > 0) {
        }
        std::vector<ControlOp> ops;
        {
          base::MutexLock lock(reactor_mutex_);
          ops.swap(control_ops_);
        }
        for (const ControlOp& op : ops) {
          switch (op.kind) {
            case ControlOp::Kind::kAddListener: {
              listeners.insert(op.fd);
              epoll_event ev{};
              ev.events = EPOLLIN;
              ev.data.fd = op.fd;
              ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, op.fd, &ev);
              break;
            }
            case ControlOp::Kind::kStop:
              running = false;
              break;
          }
        }
      } else if (listeners.contains(fd)) {
        // Accept everything queued. The error discipline mirrors the fixed
        // TcpRuntime acceptor: transient failures must never deafen a host.
        for (;;) {
          const int conn =
              ::accept4(fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (conn < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) break;
            if (errno == EINTR) {
              io_retries_.inc();
              continue;
            }
            if (errno == ECONNABORTED) {
              accept_retries_.inc();
              continue;  // peer hung up while queued: their loss only
            }
            if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
                errno == ENOMEM) {
              // fd pressure: park the listener and retry shortly. Pending
              // connections wait in the (deep) backlog meanwhile.
              accept_retries_.inc();
              ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
              parked.push_back(fd);
              rearm_at = std::min(
                  rearm_at, std::chrono::steady_clock::now() + kAcceptBackoff);
              break;
            }
            break;  // unexpected (listener shut down mid-poll)
          }
          const int one = 1;
          ::setsockopt(conn, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
          conns.emplace(conn, Conn{});
          epoll_event ev{};
          ev.events = EPOLLIN;
          ev.data.fd = conn;
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, conn, &ev);
        }
      } else {
        auto it = conns.find(fd);
        if (it == conns.end()) continue;  // already closed this round
        if (!drain(fd, it->second)) {
          ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
          ::close(fd);
          conns.erase(it);
        }
      }
    }
  }
  for (auto& [fd, _] : conns) ::close(fd);
  for (int fd : listeners) ::close(fd);
  for (int fd : parked) ::close(fd);
}

// ---------------------------------------------------------------------------
// Introspection (same shape as the other real-clock runtimes).

RuntimeStats EpollRuntime::stats() const { return transport_.view(); }

EndpointStats EpollRuntime::endpoint_stats(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (!ep) return EndpointStats{};
  base::MutexLock lock(ep->mutex);
  return ep->stats;
}

std::map<std::string, std::uint64_t> EpollRuntime::received_by_label() const {
  std::map<std::string, std::uint64_t> out;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    out[ep->label] += ep->stats.received;
  }
  return out;
}

std::uint64_t EpollRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    if (ep->label != label) continue;
    base::MutexLock elock(ep->mutex);
    best = std::max(best, ep->stats.received);
  }
  return best;
}

void EpollRuntime::reset_stats() {
  transport_.reset();
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    ep->stats = EndpointStats{};
  }
}

}  // namespace legion::rt
