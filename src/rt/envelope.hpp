// The unit of transport between endpoints.
//
// An envelope is what the (simulated) network moves: opaque payload bytes
// plus source/destination endpoints. kBounce envelopes are transport-level
// negative acknowledgements: when delivery fails because the destination
// endpoint no longer exists, the runtime returns the original payload to the
// sender so its communication layer can detect the stale binding (paper
// Section 4.1.4: "the Legion communication layer of the object is expected
// to detect that it has become invalid").
#pragma once

#include <cstdint>

#include "base/buffer.hpp"
#include "base/types.hpp"

namespace legion::rt {

enum class DeliveryKind : std::uint8_t {
  kData = 0,
  kBounce = 1,
  // A bounce whose cause is a dead worker process, not a stale binding: the
  // destination was valid when the request was sent, but the address-space
  // it named exited before replying. The communication layer maps this to
  // kUnavailable (retry elsewhere after reactivation), never kTimeout — the
  // caller must not wait out a full deadline to learn the peer is gone.
  kBounceUnavailable = 2,
};

struct Envelope {
  EndpointId src;
  EndpointId dst;
  DeliveryKind kind = DeliveryKind::kData;
  Buffer payload;
  // Causal trace stamp (obs::TraceRing): 0 = untraced. Preserved across
  // bounces so a NACK is attributable to the invocation that caused it.
  std::uint64_t trace_id = 0;
  std::uint32_t hop = 0;
  // Span edge this envelope belongs to (obs span model): the request and
  // its reply carry the same span_id, so both sides of a call pair up.
  std::uint64_t span_id = 0;
  std::uint64_t parent_span_id = 0;
  // Receiver-local stamp (not part of the wire format): when the envelope
  // entered the destination's inbox. The Messenger reads it at dequeue time
  // to attribute queue time separately from service time. 0 = unstamped.
  SimTime queued_at = 0;
};

}  // namespace legion::rt
