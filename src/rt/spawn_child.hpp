// The designated fork/exec helper for ProcessRuntime.
//
// fork() in a threaded process is a minefield: the child inherits a copy of
// the address space in which any mutex may be held by a thread that no
// longer exists, so the window between fork and exec may only run
// async-signal-safe code. This file is the ONE place in src/ allowed to
// fork (scripts/lint_invariants.py rule fork-safety); everything the child
// needs — argv vectors, file paths, fds — is prepared by the parent before
// the fork, and the child-side code is limited to dup2/open/execv/_exit.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/status.hpp"

namespace legion::rt {

struct SpawnChildArgs {
  std::string executable;          // path passed to execv
  std::vector<std::string> argv;   // full argv, including argv[0]
  // Write end of the parent's ready pipe; dup2()ed onto fd 3 in the child
  // (the dup clears CLOEXEC, so exactly this one descriptor survives exec).
  // -1 = no ready pipe.
  int ready_fd = -1;
  // Redirect the child's stderr to this file (append). "" = inherit the
  // parent's stderr — the default outside CI log collection.
  std::string stderr_path;
};

// fork/execs the worker. Returns the child pid; the caller owns reaping.
// exec failure is reported by the child exiting 127 (the caller's ready-
// handshake timeout surfaces it).
Result<std::int64_t> SpawnChild(const SpawnChildArgs& args);

}  // namespace legion::rt
