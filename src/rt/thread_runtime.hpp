// Real-concurrency runtime: one OS thread per serviced endpoint.
//
// Each endpoint has a mutex-protected mailbox; serviced endpoints drain it
// on a dedicated thread, driver endpoints drain it from the external thread
// sitting in wait(). Topology latencies are not slept by default (they would
// only slow the wall clock); enable them to approximate pacing.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/rng.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

class ThreadRuntime final : public Runtime {
 public:
  explicit ThreadRuntime(std::uint64_t seed = Rng::kDefaultSeed);
  ~ThreadRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

 private:
  struct Endpoint {
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> inbox;
    bool stopping = false;
    // Bumped (under mutex) by every wake source — post, notify(), close —
    // so wait() can block on the cv until the real deadline instead of
    // slicing: a waiter sleeps through exactly the generations it has seen.
    std::uint64_t wakeups = 0;
    EndpointStats stats;  // guarded by mutex

    std::atomic<bool> alive{true};
    std::thread service;  // joinable iff mode == kServiced
  };

  using EndpointPtr = std::shared_ptr<Endpoint>;

  EndpointPtr find(EndpointId id) const;
  void service_loop(const EndpointPtr& ep);
  // Pops one envelope into `out` if available; returns false when empty.
  static bool pop_one(const EndpointPtr& ep, Envelope& out);

  mutable std::shared_mutex map_mutex_;
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_;
  std::uint64_t next_endpoint_ = 1;  // guarded by map_mutex_

  mutable std::mutex rng_mutex_;
  Rng rng_;

  std::mutex graveyard_mutex_;
  std::vector<std::thread> graveyard_;  // threads of self-closed endpoints

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
