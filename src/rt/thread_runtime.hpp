// Real-concurrency runtime: one OS thread per serviced endpoint.
//
// Each endpoint has a mutex-protected mailbox; serviced endpoints drain it
// on a dedicated thread, driver endpoints drain it from the external thread
// sitting in wait(). Topology latencies are not slept by default (they would
// only slow the wall clock); enable them to approximate pacing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/rng.hpp"
#include "base/thread_annotations.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

class ThreadRuntime final : public Runtime {
 public:
  explicit ThreadRuntime(std::uint64_t seed = Rng::kDefaultSeed);
  ~ThreadRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

 private:
  struct Endpoint {
    // host/label/handler/mode are set before the endpoint is published in
    // the map (and before its service thread starts), then never written:
    // immutable-after-init, no guard needed.
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;

    base::Mutex mutex{base::lock_rank::kEndpoint};
    base::CondVar cv;
    std::deque<Envelope> inbox GUARDED_BY(mutex);
    bool stopping GUARDED_BY(mutex) = false;
    // Bumped (under mutex) by every wake source — post, notify(), close —
    // so wait() can block on the cv until the real deadline instead of
    // slicing: a waiter sleeps through exactly the generations it has seen.
    std::uint64_t wakeups GUARDED_BY(mutex) = 0;
    EndpointStats stats GUARDED_BY(mutex);

    std::atomic<bool> alive{true};
    std::thread service;  // joinable iff mode == kServiced
  };

  using EndpointPtr = std::shared_ptr<Endpoint>;

  EndpointPtr find(EndpointId id) const;
  void service_loop(const EndpointPtr& ep);
  // Pops one envelope into `out` if available; returns false when empty.
  static bool pop_one(const EndpointPtr& ep, Envelope& out);

  // Held (shared) while per-endpoint mutexes are taken beneath it, hence
  // the below-kEndpoint rank.
  mutable base::SharedMutex map_mutex_{base::lock_rank::kEndpointMap};
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_
      GUARDED_BY(map_mutex_);
  std::uint64_t next_endpoint_ GUARDED_BY(map_mutex_) = 1;

  mutable base::Mutex rng_mutex_{base::lock_rank::kRng};
  Rng rng_ GUARDED_BY(rng_mutex_);

  base::Mutex graveyard_mutex_{base::lock_rank::kGraveyard};
  // Threads of self-closed endpoints, reaped in the destructor.
  std::vector<std::thread> graveyard_ GUARDED_BY(graveyard_mutex_);

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
