#include "rt/process_runtime.hpp"

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cassert>
#include <cerrno>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "rt/frame.hpp"
#include "rt/socket_util.hpp"
#include "rt/spawn_child.hpp"

namespace legion::rt {
namespace {

// The first byte of a Messenger frame payload (Messenger's private
// FrameKind). The transport peeks it only to distinguish requests (tracked
// while in flight to a child, bounced on its death) from replies.
constexpr std::uint8_t kMessengerRequest = 1;
constexpr std::uint8_t kMessengerReply = 2;

bool WriteFile(const std::string& path, const Buffer& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return false;
  const auto span = bytes.span();
  out.write(reinterpret_cast<const char*>(span.data()),
            static_cast<std::streamsize>(span.size()));
  return static_cast<bool>(out);
}

// Blocks until the worker writes its ready byte ('R') to the handshake
// pipe, the pipe closes (exec failed / worker died before binding), or the
// deadline passes. Any outcome but the ready byte is a failed spawn.
bool AwaitReadyByte(int fd, SimTime timeout_us) {
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(timeout_us);
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return false;
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - now);
    pollfd pfd{fd, POLLIN, 0};
    const int r = ::poll(&pfd, 1, static_cast<int>(left.count()) + 1);
    if (r < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (r == 0) return false;  // timed out
    char byte = 0;
    const ssize_t n = ::read(fd, &byte, 1);
    if (n < 0 && errno == EINTR) continue;
    return n == 1 && byte == 'R';
  }
}

}  // namespace

std::string ProcessRuntime::ResolveSocketDir(const ProcessOptions& options,
                                             bool& owned) {
  owned = false;
  if (!options.socket_dir.empty()) return options.socket_dir;
  // Keep the template short: every endpoint's `<dir>/ep-<id>.sock` must fit
  // sockaddr_un's ~107-byte path (socket_util.hpp).
  char tmpl[] = "/tmp/legion.XXXXXX";
  if (::mkdtemp(tmpl) == nullptr) return "/tmp";
  owned = true;
  return tmpl;
}

ProcessRuntime::ProcessRuntime() : ProcessRuntime(ProcessOptions{}) {}

ProcessRuntime::ProcessRuntime(ProcessOptions options)
    : options_(std::move(options)),
      socket_dir_(ResolveSocketDir(options_, owns_socket_dir_)),
      pool_(options_.tcp, metrics_, ConnPool::UnixDialer(socket_dir_),
            "rt.proc.pool"),
      epoch_(std::chrono::steady_clock::now()) {
  child_log_dir_ = options_.child_log_dir;
  if (child_log_dir_.empty()) {
    if (const char* env = std::getenv("LEGION_CHILD_LOG_DIR")) {
      child_log_dir_ = env;
    }
  }
  if (!worker_mode()) {
    // The fault plan's child faults act through us: kStop/kResume map to
    // SIGSTOP/SIGCONT (wedged-but-alive), kKill to kill -9 (the crash path:
    // no reap here — the reaper thread discovers the death).
    faults_.set_child_fault_injector(
        [this](std::uint64_t endpoint, net::ChildFault fault) -> Status {
          switch (fault) {
            case net::ChildFault::kKill:
              return kill_child(EndpointId{endpoint});
            case net::ChildFault::kStop:
              return pause_child(EndpointId{endpoint});
            case net::ChildFault::kResume:
              return resume_child(EndpointId{endpoint});
          }
          return InvalidArgumentError("unknown child fault");
        });
    reaper_ = std::thread([this] { reaper_loop(); });
  }
}

ProcessRuntime::~ProcessRuntime() {
  stopping_.store(true);
  if (reaper_.joinable()) reaper_.join();

  // Kill and reap every worker still alive. SIGKILL works on SIGSTOPped
  // children too, and the blocking waitpid tolerates ECHILD when the reaper
  // already collected the status.
  std::vector<std::int64_t> pids;
  {
    base::MutexLock lock(children_mutex_);
    for (auto& [_, child] : children_) {
      if (child.alive && child.pid > 0) {
        pids.push_back(child.pid);
        child.alive = false;
      }
    }
  }
  for (const std::int64_t pid : pids) {
    ::kill(static_cast<pid_t>(pid), SIGKILL);
    int status = 0;
    (void)::waitpid(static_cast<pid_t>(pid), &status, 0);
  }

  std::vector<EndpointPtr> eps;
  {
    base::WriterMutexLock lock(map_mutex_);
    for (auto& [_, ep] : endpoints_) eps.push_back(ep);
    endpoints_.clear();
  }
  for (auto& ep : eps) stop_endpoint(ep);
  for (auto& ep : eps) {
    if (ep->acceptor.joinable()) ep->acceptor.join();
    if (ep->service.joinable()) ep->service.join();
    std::vector<std::thread> readers;
    {
      base::MutexLock lock(ep->conns_mutex);
      readers.swap(ep->readers);
    }
    for (auto& t : readers) {
      if (t.joinable()) t.join();
    }
    base::MutexLock lock(ep->conns_mutex);
    for (int& fd : ep->conn_fds) {
      if (fd >= 0) ::close(fd);
      fd = -1;
    }
  }
  pool_.close_all();
  {
    base::MutexLock lock(graveyard_mutex_);
    for (auto& t : graveyard_) {
      if (t.joinable()) t.join();
    }
  }
  if (owns_socket_dir_) {
    std::error_code ec;
    std::filesystem::remove_all(socket_dir_, ec);
  }
}

void ProcessRuntime::stop_endpoint(const EndpointPtr& ep) {
  ep->alive.store(false);
  if (ep->listen_fd >= 0) {
    ::shutdown(ep->listen_fd, SHUT_RDWR);
    ::close(ep->listen_fd);
  }
  // Unlink the socket file so peers dialing this endpoint get ENOENT — the
  // UDS flavor of kStaleBinding — instead of connecting to a dead inode.
  if (!ep->socket_path.empty()) ::unlink(ep->socket_path.c_str());
  {
    base::MutexLock lock(ep->conns_mutex);
    for (int fd : ep->conn_fds) {
      if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
    }
  }
  {
    base::MutexLock lock(ep->mutex);
    ep->stopping = true;
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

EndpointId ProcessRuntime::create_endpoint(HostId host, std::string label,
                                           MessageHandler handler,
                                           ExecutionMode mode) {
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  auto ep = std::make_shared<Endpoint>();
  ep->host = host;
  ep->label = std::move(label);
  ep->handler = std::move(handler);
  ep->mode = mode;

  std::uint64_t id_value = 0;
  {
    base::WriterMutexLock lock(map_mutex_);
    if (worker_mode()) {
      // The first endpoint takes the id the parent assigned (its published
      // binding routes here); later ones get ids in a shifted namespace no
      // parent-side allocation collides with.
      id_value = next_local_endpoint_ == 0
                     ? options_.worker_endpoint_id
                     : (options_.worker_endpoint_id << 16) +
                           next_local_endpoint_;
      ++next_local_endpoint_;
    } else {
      id_value = next_endpoint_++;
    }
    ep->socket_path = ConnPool::UnixSocketPath(socket_dir_, id_value);
    ep->listen_fd =
        CreateUnixListener(ep->socket_path, options_.tcp.listen_backlog);
    if (ep->listen_fd < 0) return EndpointId{};
    endpoints_.emplace(id_value, ep);
  }
  ep->acceptor = std::thread([this, ep] { acceptor_loop(ep); });
  if (mode == ExecutionMode::kServiced) {
    ep->service = std::thread([this, ep] { service_loop(ep); });
  }
  return EndpointId{id_value};
}

void ProcessRuntime::close_endpoint(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::WriterMutexLock lock(map_mutex_);
    endpoints_.erase(id.value);
  }
  stop_endpoint(ep);
  auto reap = [this](std::thread& t) {
    if (!t.joinable()) return;
    if (t.get_id() == std::this_thread::get_id()) {
      base::MutexLock lock(graveyard_mutex_);
      graveyard_.push_back(std::move(t));
    } else {
      t.join();
    }
  };
  reap(ep->acceptor);
  reap(ep->service);
  std::vector<std::thread> readers;
  {
    base::MutexLock lock(ep->conns_mutex);
    readers.swap(ep->readers);
  }
  // Readers never run handlers (they only feed the inbox), so the closing
  // thread is never one of them and a plain join is safe.
  for (auto& t : readers) {
    if (t.joinable()) t.join();
  }
  base::MutexLock lock(ep->conns_mutex);
  for (int& fd : ep->conn_fds) {
    if (fd >= 0) ::close(fd);
    fd = -1;
  }
}

bool ProcessRuntime::endpoint_alive(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (ep) return ep->alive.load();
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(id.value);
  return it != children_.end() && it->second.alive;
}

HostId ProcessRuntime::host_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (ep) return ep->host;
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(id.value);
  return it != children_.end() ? it->second.host : HostId{};
}

ProcessRuntime::EndpointPtr ProcessRuntime::find(EndpointId id) const {
  base::ReaderMutexLock lock(map_mutex_);
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status ProcessRuntime::note_outgoing_request(EndpointId src, EndpointId dst,
                                             const Envelope& env) {
  if (env.kind != DeliveryKind::kData) return OkStatus();
  Reader r(env.payload);
  const std::uint8_t kind = r.u8();
  const std::uint64_t call_id = r.u64();
  if (!r.ok() || kind != kMessengerRequest) return OkStatus();
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(dst.value);
  if (it == children_.end()) return OkStatus();
  if (!it->second.alive) {
    return StaleBindingError("worker process exited");
  }
  if (it->second.outstanding.size() >= kMaxOutstanding) {
    return UnavailableError("worker call backlog full");
  }
  it->second.outstanding.emplace(call_id, src);
  return OkStatus();
}

void ProcessRuntime::note_incoming_reply(const Envelope& env) {
  if (env.kind != DeliveryKind::kData) return;
  Reader r(env.payload);
  const std::uint8_t kind = r.u8();
  const std::uint64_t call_id = r.u64();
  if (!r.ok() || kind != kMessengerReply) return;
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(env.src.value);
  if (it != children_.end()) it->second.outstanding.erase(call_id);
}

Status ProcessRuntime::post(Envelope env) {
  EndpointPtr src = find(env.src);
  if (!src) return InternalError("post from unknown endpoint");
  EndpointPtr dst = find(env.dst);

  HostId dst_host{};
  bool dst_is_child = false;
  if (dst) {
    if (!dst->alive.load()) {
      return StaleBindingError("destination endpoint closed");
    }
    dst_host = dst->host;
  } else if (!worker_mode()) {
    base::MutexLock lock(children_mutex_);
    auto it = children_.find(env.dst.value);
    if (it != children_.end()) {
      if (!it->second.alive) {
        return StaleBindingError("worker process exited");
      }
      dst_host = it->second.host;
      dst_is_child = true;
    }
  }
  // An unknown destination is a peer process's endpoint (a worker replying
  // to its parent, or vice versa): attempt the dial, and let ENOENT at the
  // socket file classify as the stale binding it is.

  if (faults_.any_faults() && dst_host.valid()) {
    const net::LatencyClass cls = topology_.classify(src->host, dst_host);
    base::MutexLock lock(rng_mutex_);
    if (faults_.should_drop(src->host, dst_host, cls, rng_)) {
      transport_.dropped.inc();
      return OkStatus();
    }
  }

  bool tracked = false;
  if (dst_is_child) {
    Status st = note_outgoing_request(env.src, env.dst, env);
    if (!st.ok()) return st;
    tracked = true;
  }

  Status st = pool_.send(env.dst.value, env);
  if (!st.ok()) {
    if (tracked) forget_outgoing_request(env.dst, env);
    return st;
  }

  {
    base::MutexLock lock(src->mutex);
    src->stats.sent += 1;
    src->stats.bytes_sent += env.payload.size();
  }
  transport_.delivered.inc();
  return OkStatus();
}

void ProcessRuntime::forget_outgoing_request(EndpointId dst,
                                             const Envelope& env) {
  Reader r(env.payload);
  const std::uint8_t kind = r.u8();
  const std::uint64_t call_id = r.u64();
  if (!r.ok() || kind != kMessengerRequest) return;
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(dst.value);
  if (it != children_.end()) it->second.outstanding.erase(call_id);
}

void ProcessRuntime::notify(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::MutexLock lock(ep->mutex);
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

void ProcessRuntime::acceptor_loop(const EndpointPtr& ep) {
  for (;;) {
    const int conn = AcceptConn(ep->listen_fd);
    if (conn < 0) {
      // Same errno taxonomy as TcpRuntime: only a closed listener may end
      // this loop, or the endpoint is deafened while its socket file stays
      // routable.
      if (!ep->alive.load()) return;
      switch (errno) {
        case EINTR:
          io_retries_.inc();
          continue;
        case ECONNABORTED:
          accept_retries_.inc();
          continue;
        case EMFILE:
        case ENFILE:
        case ENOBUFS:
        case ENOMEM:
          accept_retries_.inc();
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
          continue;
        default:
          return;
      }
    }
    std::thread vacated;
    {
      base::MutexLock lock(ep->conns_mutex);
      if (!ep->alive.load()) {
        ::close(conn);
        return;
      }
      if (!ep->free_slots.empty()) {
        const std::size_t slot = ep->free_slots.back();
        ep->free_slots.pop_back();
        vacated = std::move(ep->readers[slot]);
        ep->conn_fds[slot] = conn;
        ep->readers[slot] = std::thread(
            [this, ep, slot, conn] { reader_loop(ep, slot, conn); });
      } else {
        const std::size_t slot = ep->conn_fds.size();
        ep->conn_fds.push_back(conn);
        ep->readers.emplace_back(
            [this, ep, slot, conn] { reader_loop(ep, slot, conn); });
        reader_slots_.inc();
      }
    }
    if (vacated.joinable()) vacated.join();
  }
}

void ProcessRuntime::reader_loop(const EndpointPtr& ep, std::size_t slot,
                                 int fd) {
  std::vector<std::uint8_t> header(kFrameHeaderBytes);
  for (;;) {
    if (!ReadAll(fd, header.data(), header.size(), io_retries_)) break;
    Envelope env;
    const std::uint32_t payload_len = DecodeFrameHeader(header.data(), env);
    if (payload_len > kMaxFrameBytes) break;
    if (payload_len > 0) {
      std::vector<std::uint8_t> payload(payload_len);
      if (!ReadAll(fd, payload.data(), payload.size(), io_retries_)) break;
      env.payload = Buffer{std::move(payload)};
    }

    // Replies crossing back from a worker settle its in-flight entry, so a
    // later crash only bounces calls that are genuinely unanswered.
    if (!worker_mode()) note_incoming_reply(env);

    bool deliver = true;
    {
      base::MutexLock lock(ep->mutex);
      if (ep->stopping) {
        deliver = false;
      } else {
        ep->stats.received += 1;
        ep->stats.bytes_received += env.payload.size();
        env.queued_at = now();
        ep->inbox.push_back(std::move(env));
        ++ep->wakeups;
      }
    }
    if (!deliver) break;
    ep->cv.notify_all();
  }
  base::MutexLock lock(ep->conns_mutex);
  ::close(fd);
  ep->conn_fds[slot] = -1;
  ep->free_slots.push_back(slot);
}

bool ProcessRuntime::pop_one(const EndpointPtr& ep, Envelope& out) {
  base::MutexLock lock(ep->mutex);
  if (ep->inbox.empty()) return false;
  out = std::move(ep->inbox.front());
  ep->inbox.pop_front();
  return true;
}

void ProcessRuntime::service_loop(const EndpointPtr& ep) {
  for (;;) {
    Envelope env;
    {
      base::MutexLock lock(ep->mutex);
      while (!ep->stopping && ep->inbox.empty()) ep->cv.wait(ep->mutex);
      if (ep->inbox.empty()) return;
      env = std::move(ep->inbox.front());
      ep->inbox.pop_front();
    }
    if (ep->handler) ep->handler(std::move(env));
  }
}

SimTime ProcessRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool ProcessRuntime::wait(EndpointId self, const std::function<bool()>& ready,
                          SimTime timeout_us) {
  EndpointPtr ep = find(self);
  if (!ep) return ready();
  const auto deadline =
      timeout_us == kSimTimeNever
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_us);
  for (;;) {
    if (ready()) return true;
    Envelope env;
    if (pop_one(ep, env)) {
      if (ep->handler) ep->handler(std::move(env));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ready();
    {
      base::MutexLock lock(ep->mutex);
      if (!ep->inbox.empty()) continue;
      const std::uint64_t seen = ep->wakeups;
      const auto cap = ep->stopping ? now + std::chrono::milliseconds(1)
                                    : now + std::chrono::milliseconds(50);
      const auto until = std::min(deadline, cap);
      while (ep->wakeups == seen) {
        if (ep->cv.wait_until(ep->mutex, until)) break;  // timed out
      }
    }
  }
}

void ProcessRuntime::run_until_idle() {
  for (int calm = 0; calm < 2;) {
    bool busy = false;
    {
      base::ReaderMutexLock lock(map_mutex_);
      for (const auto& [_, ep] : endpoints_) {
        base::MutexLock elock(ep->mutex);
        if (!ep->inbox.empty()) {
          busy = true;
          break;
        }
      }
    }
    calm = busy ? 0 : calm + 1;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

// --- ProcessControl ---------------------------------------------------

Result<SpawnInfo> ProcessRuntime::spawn_object(const SpawnSpec& spec) {
  if (worker_mode()) {
    return UnimplementedError("workers do not spawn grandchildren");
  }
  if (spec.executable.empty()) {
    return InvalidArgumentError("spawn spec names no executable");
  }
  if (::access(spec.executable.c_str(), X_OK) != 0) {
    return NotFoundError("worker executable not runnable: " + spec.executable);
  }

  // The child's endpoint id comes from the same allocator as local
  // endpoints, so ids never collide across the spawn/create interleaving.
  std::uint64_t id = 0;
  {
    base::WriterMutexLock lock(map_mutex_);
    id = next_endpoint_++;
  }

  // Stage the OPR and handles as files: the worker's whole activation input
  // is on disk, which is exactly the paper's claim — an executable plus a
  // persistent representation suffice to revive the object anywhere.
  const std::string stem = socket_dir_ + "/child-" + std::to_string(id);
  const std::string opr_path = stem + ".opr";
  const std::string handles_path = stem + ".handles";
  if (!WriteFile(opr_path, spec.opr_bytes) ||
      !WriteFile(handles_path, spec.handles_bytes)) {
    return UnavailableError("cannot stage worker inputs in " + socket_dir_);
  }

  int ready[2] = {-1, -1};
  if (::pipe2(ready, O_CLOEXEC) != 0) {
    return UnavailableError("pipe2 failed: errno " + std::to_string(errno));
  }

  SpawnChildArgs args;
  args.executable = spec.executable;
  args.argv = {spec.executable,
               "--socket-dir", socket_dir_,
               "--endpoint-id", std::to_string(id),
               "--opr", opr_path,
               "--handles", handles_path,
               "--ready-fd", "3"};
  args.ready_fd = ready[1];
  if (!child_log_dir_.empty()) {
    args.stderr_path =
        child_log_dir_ + "/child-" + std::to_string(id) + ".stderr.log";
  }

  Result<std::int64_t> spawned = SpawnChild(args);
  ::close(ready[1]);
  if (!spawned.ok()) {
    ::close(ready[0]);
    return spawned.status();
  }
  const std::int64_t pid = *spawned;

  // The worker writes 'R' to fd 3 only after its listener is bound, so a
  // successful handshake means the returned endpoint is immediately
  // dialable. EOF without the byte is how exec failure (_exit(127)) and
  // early crashes surface.
  const bool became_ready = AwaitReadyByte(ready[0], options_.spawn_timeout_us);
  ::close(ready[0]);
  if (!became_ready) {
    ::kill(static_cast<pid_t>(pid), SIGKILL);
    int status = 0;
    (void)::waitpid(static_cast<pid_t>(pid), &status, 0);
    return UnavailableError("worker failed ready handshake: " +
                            spec.executable);
  }

  bool respawn = false;
  {
    base::MutexLock lock(children_mutex_);
    Child child;
    child.endpoint = EndpointId{id};
    child.pid = pid;
    child.label = spec.label;
    child.host = spec.host;
    children_.insert_or_assign(id, std::move(child));
    respawn = ++spawn_counts_[spec.label] > 1;
  }
  live_children_.add(1);
  spawns_.inc();
  if (respawn) respawns_.inc();
  return SpawnInfo{EndpointId{id}, pid};
}

Status ProcessRuntime::stop_child(EndpointId endpoint) {
  std::int64_t pid = -1;
  bool paused = false;
  {
    base::MutexLock lock(children_mutex_);
    auto it = children_.find(endpoint.value);
    if (it == children_.end()) {
      return NotFoundError("no child serves endpoint " +
                           std::to_string(endpoint.value));
    }
    if (!it->second.alive) return OkStatus();  // already down and bounced
    pid = it->second.pid;
    paused = it->second.paused;
  }
  // A SIGSTOPped child cannot act on SIGTERM; continue it first so the
  // graceful phase is real rather than a guaranteed SIGKILL.
  if (paused) ::kill(static_cast<pid_t>(pid), SIGCONT);
  ::kill(static_cast<pid_t>(pid), SIGTERM);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(options_.stop_grace_us);
  for (;;) {
    int status = 0;
    const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
    if (r == static_cast<pid_t>(pid) || (r < 0 && errno == ECHILD)) break;
    if (std::chrono::steady_clock::now() >= deadline) {
      ::kill(static_cast<pid_t>(pid), SIGKILL);
      (void)::waitpid(static_cast<pid_t>(pid), &status, 0);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  mark_child_dead(endpoint.value);
  return OkStatus();
}

Status ProcessRuntime::kill_child(EndpointId endpoint) {
  std::int64_t pid = -1;
  {
    base::MutexLock lock(children_mutex_);
    auto it = children_.find(endpoint.value);
    if (it == children_.end()) {
      return NotFoundError("no child serves endpoint " +
                           std::to_string(endpoint.value));
    }
    if (!it->second.alive) return OkStatus();
    pid = it->second.pid;
  }
  // Deliberately no reap and no bookkeeping here: the process dies exactly
  // as a real crash would, and the reaper thread discovers it — the test
  // surface and the production surface are the same code path.
  ::kill(static_cast<pid_t>(pid), SIGKILL);
  return OkStatus();
}

Status ProcessRuntime::pause_child(EndpointId endpoint) {
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(endpoint.value);
  if (it == children_.end() || !it->second.alive) {
    return NotFoundError("no live child serves endpoint " +
                         std::to_string(endpoint.value));
  }
  if (::kill(static_cast<pid_t>(it->second.pid), SIGSTOP) != 0) {
    return UnavailableError("SIGSTOP failed: errno " + std::to_string(errno));
  }
  it->second.paused = true;
  return OkStatus();
}

Status ProcessRuntime::resume_child(EndpointId endpoint) {
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(endpoint.value);
  if (it == children_.end() || !it->second.alive) {
    return NotFoundError("no live child serves endpoint " +
                         std::to_string(endpoint.value));
  }
  if (::kill(static_cast<pid_t>(it->second.pid), SIGCONT) != 0) {
    return UnavailableError("SIGCONT failed: errno " + std::to_string(errno));
  }
  it->second.paused = false;
  return OkStatus();
}

bool ProcessRuntime::child_alive(EndpointId endpoint) const {
  base::MutexLock lock(children_mutex_);
  auto it = children_.find(endpoint.value);
  return it != children_.end() && it->second.alive;
}

std::vector<ChildInfo> ProcessRuntime::children() const {
  std::vector<ChildInfo> out;
  base::MutexLock lock(children_mutex_);
  out.reserve(children_.size());
  for (const auto& [_, child] : children_) {
    out.push_back(ChildInfo{child.endpoint, child.pid, child.label, child.host,
                            child.alive});
  }
  return out;
}

void ProcessRuntime::reaper_loop() {
  while (!stopping_.load()) {
    std::vector<std::pair<std::uint64_t, std::int64_t>> live;
    {
      base::MutexLock lock(children_mutex_);
      live.reserve(children_.size());
      for (const auto& [endpoint, child] : children_) {
        if (child.alive && child.pid > 0) live.emplace_back(endpoint, child.pid);
      }
    }
    for (const auto& [endpoint, pid] : live) {
      int status = 0;
      const pid_t r = ::waitpid(static_cast<pid_t>(pid), &status, WNOHANG);
      if (r == static_cast<pid_t>(pid)) {
        // The zombie is collected and its calls bounce; a paused child
        // reports no state change (WUNTRACED unset) and stays alive here.
        zombie_reaps_.inc();
        mark_child_dead(endpoint);
      } else if (r < 0 && errno == ECHILD) {
        // A concurrent stop_child won the waitpid race; just bookkeep.
        mark_child_dead(endpoint);
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

void ProcessRuntime::mark_child_dead(std::uint64_t endpoint_value) {
  std::unordered_map<std::uint64_t, EndpointId> outstanding;
  {
    base::MutexLock lock(children_mutex_);
    auto it = children_.find(endpoint_value);
    if (it == children_.end() || !it->second.alive) return;
    it->second.alive = false;
    it->second.paused = false;
    outstanding.swap(it->second.outstanding);
  }
  live_children_.sub(1);
  // Phase 2 (children lock released): synthesize one kBounceUnavailable per
  // unanswered call, echoing the request prefix the Messenger's bounce
  // parser expects, so callers fail kUnavailable now instead of timing out.
  for (const auto& [call_id, caller] : outstanding) {
    Envelope bounce;
    bounce.src = EndpointId{endpoint_value};
    bounce.dst = caller;
    bounce.kind = DeliveryKind::kBounceUnavailable;
    Writer w(bounce.payload);
    w.u8(kMessengerRequest);
    w.u64(call_id);
    bounced_unavailable_.inc();
    transport_.bounced.inc();
    deliver_local(std::move(bounce));
  }
}

void ProcessRuntime::deliver_local(Envelope env) {
  EndpointPtr ep = find(env.dst);
  if (!ep) return;
  {
    base::MutexLock lock(ep->mutex);
    if (ep->stopping) return;
    ep->stats.received += 1;
    ep->stats.bytes_received += env.payload.size();
    env.queued_at = now();
    ep->inbox.push_back(std::move(env));
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

RuntimeStats ProcessRuntime::stats() const { return transport_.view(); }

EndpointStats ProcessRuntime::endpoint_stats(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (!ep) return EndpointStats{};
  base::MutexLock lock(ep->mutex);
  return ep->stats;
}

std::map<std::string, std::uint64_t> ProcessRuntime::received_by_label()
    const {
  std::map<std::string, std::uint64_t> out;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    out[ep->label] += ep->stats.received;
  }
  return out;
}

std::uint64_t ProcessRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    if (ep->label != label) continue;
    base::MutexLock elock(ep->mutex);
    best = std::max(best, ep->stats.received);
  }
  return best;
}

void ProcessRuntime::reset_stats() {
  transport_.reset();
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    ep->stats = EndpointStats{};
  }
}

}  // namespace legion::rt
