// Pump-friendly futures.
//
// Method invocation in Legion is non-blocking (paper Section 2); an invoke
// returns a Future the caller can poll or wait on. Unlike std::future, these
// are designed for the runtime's wait loops: waiting threads keep servicing
// their endpoint's mailbox, so readiness is checked by polling `ready()`
// rather than by blocking on the future itself.
#pragma once

#include <cassert>
#include <memory>
#include <optional>
#include <utility>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"

namespace legion::rt {

template <typename T>
class Future;

template <typename T>
class Promise {
 public:
  Promise() : state_(std::make_shared<State>()) {}

  void set(T value) {
    base::MutexLock lock(state_->mutex);
    assert(!state_->value.has_value() && "promise fulfilled twice");
    state_->value = std::move(value);
  }

  [[nodiscard]] Future<T> future() const { return Future<T>{state_}; }

 private:
  friend class Future<T>;
  struct State {
    // Ranked above the messenger's pending table: invoke() fulfils the
    // promise while holding pending_mutex_ when the destination is gone.
    base::Mutex mutex{base::lock_rank::kFutureState};
    std::optional<T> value GUARDED_BY(mutex);
  };
  std::shared_ptr<State> state_;
};

template <typename T>
class Future {
 public:
  Future() = default;

  [[nodiscard]] bool valid() const { return state_ != nullptr; }

  [[nodiscard]] bool ready() const {
    if (!state_) return false;
    base::MutexLock lock(state_->mutex);
    return state_->value.has_value();
  }

  // Requires ready(). Moves the value out.
  [[nodiscard]] T take() {
    assert(state_);
    // Keep the state alive past the lock scope: if this future holds the
    // last reference, resetting state_ under the lock would destroy the
    // mutex the guard still has to unlock.
    const std::shared_ptr<State> state = std::move(state_);
    base::MutexLock lock(state->mutex);
    assert(state->value.has_value());
    T out = std::move(*state->value);
    state->value.reset();
    return out;
  }

 private:
  friend class Promise<T>;
  using State = typename Promise<T>::State;
  explicit Future(std::shared_ptr<State> state) : state_(std::move(state)) {}
  std::shared_ptr<State> state_;
};

}  // namespace legion::rt
