// The execution substrate behind the disjoint-address-space object model.
//
// A Runtime owns endpoints (one per active Legion object, plus "driver"
// endpoints for external threads) and moves envelopes between them across a
// simulated topology. Two implementations share this interface:
//
//   * SimRuntime    — sequential, virtual-time, deterministic. Every message
//                     is accounted per endpoint and per latency class, which
//                     is precisely what the paper's Section 5 scalability
//                     claims quantify.
//   * ThreadRuntime — one OS thread per serviced endpoint with real
//                     mailboxes; demonstrates the model under true
//                     concurrency.
//
// Blocking semantics: wait() keeps servicing the waiting endpoint's incoming
// messages (the paper allows methods to be "accepted in any order"), which
// keeps nested call chains — object -> class -> magistrate -> host — free of
// deadlock in both runtimes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "base/buffer.hpp"
#include "base/status.hpp"
#include "base/types.hpp"
#include "net/fault.hpp"
#include "net/topology.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "rt/envelope.hpp"

namespace legion::rt {

// Handler invoked for each envelope delivered to an endpoint. Runs on the
// endpoint's service context (sim: the pumping stack; thread: the endpoint's
// own thread). Never invoked concurrently for the same endpoint, but may be
// invoked re-entrantly beneath a wait().
using MessageHandler = std::function<void(Envelope&&)>;

enum class ExecutionMode : std::uint8_t {
  // The runtime services the endpoint: SimRuntime dispatches inline during
  // event processing; ThreadRuntime dedicates a mailbox-draining thread.
  kServiced = 0,
  // Only serviced while its owning external thread sits in wait(): the mode
  // for client/driver endpoints living on the caller's own thread.
  kDriver = 1,
};

struct EndpointStats {
  std::uint64_t sent = 0;
  std::uint64_t received = 0;
  std::uint64_t bytes_sent = 0;
  std::uint64_t bytes_received = 0;
};

// Point-in-time view of the transport counters. The authoritative values
// live in the runtime's metrics registry (rt.delivered, rt.bounced,
// rt.dropped, rt.delivered.<latency-class>); this struct is assembled from
// them so existing callers keep one source of truth.
struct RuntimeStats {
  std::uint64_t delivered = 0;
  std::uint64_t bounced = 0;
  std::uint64_t dropped = 0;
  std::uint64_t by_latency_class[net::kNumLatencyClasses] = {0, 0, 0};
};

// Everything a host object needs to run one Legion object as its own OS
// process (the paper's literal model: objects are address-space-disjoint and
// independently schedulable). Exposed by runtimes that can fork/exec real
// workers — Runtime::process_control() returns nullptr everywhere else, so
// core-layer code degrades to in-process activation without a compile-time
// dependency on any concrete runtime.
struct SpawnSpec {
  // Path to the worker binary (from the OPR's executable field): a
  // magistrate can revive an object it has never linked against.
  std::string executable;
  // Host the child is accounted to (fault plan, host_of, metrics).
  HostId host;
  // Stable identity label (the LOID string) — reused labels count as
  // respawns of the same logical object.
  std::string label;
  // Serialized persist::Opr (implementation + state) the worker activates
  // from, and the serialized system handles its shell bootstraps with.
  Buffer opr_bytes;
  Buffer handles_bytes;
};

struct SpawnInfo {
  EndpointId endpoint;  // the worker's serving endpoint, routable via post()
  std::int64_t pid = -1;
};

struct ChildInfo {
  EndpointId endpoint;
  std::int64_t pid = -1;
  std::string label;
  HostId host;
  bool alive = false;
};

class ProcessControl {
 public:
  virtual ~ProcessControl() = default;

  // Fork/execs `spec.executable`, waits for the worker's ready handshake,
  // and returns its endpoint. The endpoint is routable with post() exactly
  // like an in-process endpoint.
  virtual Result<SpawnInfo> spawn_object(const SpawnSpec& spec) = 0;

  // Graceful stop: SIGTERM, bounded wait, SIGKILL fallback; always reaps.
  virtual Status stop_child(EndpointId endpoint) = 0;
  // kill -9, no warning, no reap here — the reaper discovers the death just
  // as it would a real crash (this is the fault-injection path).
  virtual Status kill_child(EndpointId endpoint) = 0;
  // SIGSTOP/SIGCONT: a wedged-but-alive worker (calls time out, process
  // exists) — distinguishable from a dead one.
  virtual Status pause_child(EndpointId endpoint) = 0;
  virtual Status resume_child(EndpointId endpoint) = 0;

  [[nodiscard]] virtual bool child_alive(EndpointId endpoint) const = 0;
  [[nodiscard]] virtual std::vector<ChildInfo> children() const = 0;
};

class Runtime {
 public:
  virtual ~Runtime() = default;

  Runtime(const Runtime&) = delete;
  Runtime& operator=(const Runtime&) = delete;

  // Registers a new endpoint on `host`. `label` groups stats by component
  // kind (e.g. "binding-agent", "class", "magistrate").
  virtual EndpointId create_endpoint(HostId host, std::string label,
                                     MessageHandler handler,
                                     ExecutionMode mode) = 0;

  virtual void close_endpoint(EndpointId id) = 0;
  [[nodiscard]] virtual bool endpoint_alive(EndpointId id) const = 0;
  [[nodiscard]] virtual HostId host_of(EndpointId id) const = 0;

  // Asynchronous send. Fails fast with kStaleBinding when the destination
  // endpoint is already known to be gone; otherwise the envelope is in
  // flight and may still bounce at delivery time.
  virtual Status post(Envelope env) = 0;

  // Virtual (sim) or steady-clock-derived (thread) time in microseconds.
  [[nodiscard]] virtual SimTime now() const = 0;

  // Waits until ready() returns true, servicing `self`'s incoming messages
  // meanwhile. Returns false on timeout (timeout_us relative; kSimTimeNever
  // = no limit) or when no further progress is possible.
  virtual bool wait(EndpointId self, const std::function<bool()>& ready,
                    SimTime timeout_us) = 0;

  // Drains all queued work (sim: run events to quiescence; thread:
  // best-effort settle).
  virtual void run_until_idle() = 0;

  // True when the runtime can *prove* no further progress is possible (sim:
  // event queue empty). A wait() that returned false while quiescent did not
  // time out — the awaited reply can never arrive, which callers may classify
  // as kUnavailable instead of kTimeout. Real-clock runtimes cannot make this
  // promise and always return false.
  [[nodiscard]] virtual bool quiescent() const { return false; }

  // Wakes a wait() blocked on `id`, if any. Called when out-of-band progress
  // — e.g. a pending promise failed locally, with no message delivered —
  // may have satisfied the waiter's predicate. No-op for runtimes whose
  // wait() never blocks the OS thread (sim).
  virtual void notify(EndpointId id) { (void)id; }

  // --- Introspection for tests and the Section-5 experiment harness. ---
  [[nodiscard]] virtual RuntimeStats stats() const = 0;
  [[nodiscard]] virtual EndpointStats endpoint_stats(EndpointId id) const = 0;
  // Aggregated received-message counts keyed by endpoint label.
  [[nodiscard]] virtual std::map<std::string, std::uint64_t>
  received_by_label() const = 0;
  // Maximum messages received by any single endpoint with the given label —
  // the "requests to any particular system component" of Section 5.2.
  [[nodiscard]] virtual std::uint64_t max_received_with_label(
      const std::string& label) const = 0;
  virtual void reset_stats() = 0;

  // Non-null iff this runtime can run objects as separate OS processes
  // (ProcessRuntime in parent mode). Host objects consult this to decide
  // between in-process activation and spawning a worker from the OPR's
  // executable field.
  [[nodiscard]] virtual ProcessControl* process_control() { return nullptr; }

  [[nodiscard]] net::Topology& topology() { return topology_; }
  [[nodiscard]] const net::Topology& topology() const { return topology_; }
  [[nodiscard]] net::FaultPlan& faults() { return faults_; }

  // The runtime-scoped observability surfaces: every component reachable
  // from this runtime (messengers, resolvers, caches, host objects) records
  // into the same registry and trace ring.
  [[nodiscard]] obs::Registry& metrics() { return metrics_; }
  [[nodiscard]] const obs::Registry& metrics() const { return metrics_; }
  [[nodiscard]] obs::TraceRing& traces() { return traces_; }
  [[nodiscard]] const obs::TraceRing& traces() const { return traces_; }
  // Head-based trace sampling, consulted where roots are minted
  // (Messenger::invoke). Default: sample every root.
  [[nodiscard]] obs::TraceSampler& sampler() { return sampler_; }
  [[nodiscard]] const obs::TraceSampler& sampler() const { return sampler_; }

 protected:
  Runtime() = default;

  // Registry-backed transport counters shared by all runtime
  // implementations; stats() is assembled from these.
  struct TransportCounters {
    explicit TransportCounters(obs::Registry& r)
        : delivered(r.counter("rt.delivered")),
          bounced(r.counter("rt.bounced")),
          dropped(r.counter("rt.dropped")) {
      for (std::size_t c = 0; c < net::kNumLatencyClasses; ++c) {
        by_class[c] = &r.counter(
            std::string("rt.delivered.") +
            std::string(net::to_string(static_cast<net::LatencyClass>(c))));
      }
    }

    [[nodiscard]] RuntimeStats view() const {
      RuntimeStats out;
      out.delivered = delivered.value();
      out.bounced = bounced.value();
      out.dropped = dropped.value();
      for (std::size_t c = 0; c < net::kNumLatencyClasses; ++c) {
        out.by_latency_class[c] = by_class[c]->value();
      }
      return out;
    }

    void reset() {
      delivered.reset();
      bounced.reset();
      dropped.reset();
      for (auto* c : by_class) c->reset();
    }

    obs::Counter& delivered;
    obs::Counter& bounced;
    obs::Counter& dropped;
    obs::Counter* by_class[net::kNumLatencyClasses] = {};
  };

  net::Topology topology_;
  net::FaultPlan faults_;
  obs::Registry metrics_;
  obs::TraceRing traces_;
  obs::TraceSampler sampler_;
  TransportCounters transport_{metrics_};
};

}  // namespace legion::rt
