// Process runtime: one OS process per Legion object, envelopes over
// Unix-domain sockets.
//
// The paper's model made literal a second time over: where EpollRuntime
// proves the M:N scheduling story, this runtime proves the address-space
// story. A parent ("host") process runs the system objects; every object
// whose OPR names an executable is fork/exec'ed as its own worker process
// (rt/spawn_child.hpp) and serves its endpoint from there. A kill -9 on a
// worker destroys exactly one object — the host and every sibling keep
// running, which no in-process runtime can promise.
//
// Transport: each endpoint — in whichever process — listens on a Unix-domain
// socket whose path is a pure function of the endpoint id
// (ConnPool::UnixSocketPath: `<dir>/ep-<id>.sock`), so parent and children
// route to each other with zero coordination: posting to endpoint N means
// dialing ep-N.sock, whoever owns it. Frames are the same 49-byte-header
// format as the TCP transports (rt/frame.hpp) through the same ConnPool
// (reuse / reconnect-once / stale-vs-unavailable classification).
//
// Failure surface: a dead worker's socket gives ECONNREFUSED/ENOENT =
// kStaleBinding on new sends, while requests already in flight to it are
// bounced kBounceUnavailable by the reaper thread the moment waitpid
// reports the death — callers get kUnavailable immediately instead of
// waiting out their deadline (see DeliveryKind::kBounceUnavailable).
//
// One class, two modes:
//   * parent (worker_endpoint_id == 0): full runtime + ProcessControl
//     (spawn/stop/kill/pause), SIGCHLD-free per-pid reaping, fault-plan
//     child injector, rt.proc.* metrics.
//   * worker (worker_endpoint_id != 0): the same transport inside a child;
//     the first created endpoint takes the id the parent assigned (so the
//     binding the parent published routes here), and process_control() is
//     null — workers do not spawn grandchildren.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "rt/conn_pool.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

struct ProcessOptions {
  // Pool / backlog knobs, shared with the TCP transports.
  TcpOptions tcp;
  // Directory holding every endpoint's socket plus the per-child OPR/handles
  // files. "" in parent mode = create (and own) a mkdtemp /tmp/legion.XXXXXX;
  // workers are always told the parent's directory.
  std::string socket_dir;
  // != 0 switches to worker mode: serve this parent-assigned endpoint id.
  std::uint64_t worker_endpoint_id = 0;
  // Ready-handshake deadline: how long spawn_object waits for the worker's
  // 'R' byte before declaring the spawn failed.
  SimTime spawn_timeout_us = 10'000'000;
  // stop_child grace: SIGTERM, this long to exit, then SIGKILL.
  SimTime stop_grace_us = 2'000'000;
  // Redirect each child's stderr to <dir>/child-<id>.stderr.log. "" = check
  // the LEGION_CHILD_LOG_DIR environment variable; unset = inherit stderr.
  std::string child_log_dir;
};

class ProcessRuntime final : public Runtime, public ProcessControl {
 public:
  ProcessRuntime();
  explicit ProcessRuntime(ProcessOptions options);
  ~ProcessRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

  [[nodiscard]] ProcessControl* process_control() override {
    return worker_mode() ? nullptr : this;
  }

  // --- ProcessControl -------------------------------------------------
  Result<SpawnInfo> spawn_object(const SpawnSpec& spec) override;
  Status stop_child(EndpointId endpoint) override;
  Status kill_child(EndpointId endpoint) override;
  Status pause_child(EndpointId endpoint) override;
  Status resume_child(EndpointId endpoint) override;
  [[nodiscard]] bool child_alive(EndpointId endpoint) const override;
  [[nodiscard]] std::vector<ChildInfo> children() const override;

  [[nodiscard]] const ProcessOptions& options() const { return options_; }
  [[nodiscard]] const std::string& socket_dir() const { return socket_dir_; }
  [[nodiscard]] bool worker_mode() const {
    return options_.worker_endpoint_id != 0;
  }

 private:
  // Identical shape to TcpRuntime::Endpoint, minus the TCP port.
  struct Endpoint {
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;
    int listen_fd = -1;
    std::string socket_path;

    base::Mutex mutex{base::lock_rank::kEndpoint};
    base::CondVar cv;
    std::deque<Envelope> inbox GUARDED_BY(mutex);
    bool stopping GUARDED_BY(mutex) = false;
    std::uint64_t wakeups GUARDED_BY(mutex) = 0;
    EndpointStats stats GUARDED_BY(mutex);

    std::atomic<bool> alive{true};
    std::thread acceptor;
    std::thread service;  // kServiced only

    base::Mutex conns_mutex{base::lock_rank::kEndpointConns};
    std::vector<int> conn_fds GUARDED_BY(conns_mutex);  // -1 = closed
    std::vector<std::thread> readers GUARDED_BY(conns_mutex);
    std::vector<std::size_t> free_slots GUARDED_BY(conns_mutex);
  };
  using EndpointPtr = std::shared_ptr<Endpoint>;

  // One spawned worker. `outstanding` maps the call_id of every Messenger
  // request posted to the child (and not yet answered) to the local caller
  // endpoint, so the reaper can bounce exactly those calls when the worker
  // dies. Bounded: a child with kMaxOutstanding in-flight calls refuses
  // further posts with kUnavailable rather than growing without limit.
  struct Child {
    EndpointId endpoint;
    std::int64_t pid = -1;
    std::string label;
    HostId host;
    bool alive = true;
    bool paused = false;
    std::unordered_map<std::uint64_t, EndpointId> outstanding;
  };
  static constexpr std::size_t kMaxOutstanding = 4096;

  EndpointPtr find(EndpointId id) const;
  void acceptor_loop(const EndpointPtr& ep);
  void reader_loop(const EndpointPtr& ep, std::size_t slot, int fd);
  void service_loop(const EndpointPtr& ep);
  static bool pop_one(const EndpointPtr& ep, Envelope& out);
  void stop_endpoint(const EndpointPtr& ep);

  // Parent bookkeeping around a request/reply crossing a process boundary.
  // Peeks the Messenger payload kind byte; non-Messenger payloads pass
  // through untouched.
  Status note_outgoing_request(EndpointId src, EndpointId dst,
                               const Envelope& env);
  void forget_outgoing_request(EndpointId dst, const Envelope& env);
  void note_incoming_reply(const Envelope& env);

  // Reaper thread (parent mode): per-pid waitpid(WNOHANG) — never wait(-1),
  // which would steal the exit status of a spawn_object racing us — then
  // bounce the dead child's outstanding calls as kBounceUnavailable.
  void reaper_loop();
  // Collects a dead child's outstanding calls in one phase (children lock,
  // rank 18) and delivers the bounces in a second (endpoint map lock, rank
  // 16, plus per-endpoint locks). The children lock is fully released
  // between phases because the map lock ranks BELOW it — holding both would
  // invert the order against spawn_object, which allocates an endpoint id
  // (map lock) before registering the child (children lock).
  void mark_child_dead(std::uint64_t endpoint_value);
  void deliver_local(Envelope env);

  // Resolves options.socket_dir ("" in parent mode = mkdtemp), setting
  // `owned` when this runtime must remove the directory on destruction.
  static std::string ResolveSocketDir(const ProcessOptions& options,
                                      bool& owned);

  const ProcessOptions options_;
  bool owns_socket_dir_ = false;  // declared before socket_dir_: see ctor
  std::string socket_dir_;        // resolved (possibly mkdtemp-created)
  std::string child_log_dir_;     // resolved from options/env

  mutable base::SharedMutex map_mutex_{base::lock_rank::kEndpointMap};
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_
      GUARDED_BY(map_mutex_);
  std::uint64_t next_endpoint_ GUARDED_BY(map_mutex_) = 1;
  // Worker mode: ids for endpoints beyond the first (parent-assigned) one
  // live in a namespace no parent allocation can collide with.
  std::uint64_t next_local_endpoint_ GUARDED_BY(map_mutex_) = 0;

  mutable base::Mutex children_mutex_{base::lock_rank::kProcChildren};
  std::unordered_map<std::uint64_t, Child> children_
      GUARDED_BY(children_mutex_);
  // Labels ever spawned, to count respawns of the same logical object.
  std::unordered_map<std::string, std::uint64_t> spawn_counts_
      GUARDED_BY(children_mutex_);

  ConnPool pool_;

  mutable base::Mutex rng_mutex_{base::lock_rank::kRng};
  Rng rng_ GUARDED_BY(rng_mutex_);

  obs::Counter& io_retries_{metrics_.counter("rt.eintr_retries")};
  obs::Counter& accept_retries_{metrics_.counter("rt.proc.accept_retries")};
  obs::Counter& reader_slots_{metrics_.counter("rt.proc.reader_slots")};
  // Per-child process metrics (the rt.proc.* plane the CI lane asserts on):
  // live worker processes right now, spawns total, respawns of a label seen
  // before (reactivation landing on this parent again), zombies reaped, and
  // in-flight calls bounced kUnavailable by the reaper.
  obs::Gauge& live_children_{metrics_.gauge("rt.proc.live_children")};
  obs::Counter& spawns_{metrics_.counter("rt.proc.spawns")};
  obs::Counter& respawns_{metrics_.counter("rt.proc.respawns")};
  obs::Counter& zombie_reaps_{metrics_.counter("rt.proc.zombie_reaps")};
  obs::Counter& bounced_unavailable_{
      metrics_.counter("rt.proc.bounced_unavailable")};

  base::Mutex graveyard_mutex_{base::lock_rank::kGraveyard};
  std::vector<std::thread> graveyard_ GUARDED_BY(graveyard_mutex_);

  std::thread reaper_;
  std::atomic<bool> stopping_{false};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
