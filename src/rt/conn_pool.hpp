// Per-destination pool of persistent client sockets (the sending half of
// the socket transports).
//
// A post borrows a keep-alive socket to the destination, writes one
// length-prefixed frame (header and payload coalesced into a single
// sendmsg), and returns the socket for reuse — MRU first, so the warmest
// socket is always next out. Idle sockets are reaped stalest-first on every
// pool touch. Sockets whose peer vanished reconnect exactly once, and a
// refused reconnect surfaces as kStaleBinding so the Section 4.1.4 repair
// loop fires — while fd exhaustion (EMFILE/ENFILE) is kUnavailable, never
// binding invalidation. Shared verbatim by TcpRuntime, EpollRuntime and
// ProcessRuntime so the transports cannot drift apart in failure
// classification.
//
// How a destination becomes a socket is the transport's business: the pool
// keys connections by an opaque 64-bit id and dials through an injected
// `Dialer`. The TCP runtimes key by listener port and dial loopback; the
// process runtime keys by endpoint id and dials the endpoint's Unix-domain
// socket path.
#pragma once

#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/status.hpp"
#include "base/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "rt/envelope.hpp"

namespace legion::rt {

struct TcpOptions {
  // false = one fresh connect per message (the pre-pool transport), kept
  // measurable as the ablation baseline.
  bool pooled = true;
  // Idle sockets cached per destination; a release beyond this closes
  // the socket instead, bounding fd usage per peer.
  std::size_t max_idle_per_peer = 4;
  // Idle sockets unused for longer than this are reaped, stalest first,
  // whenever the pool is touched.
  std::chrono::microseconds idle_reap{30'000'000};
  // listen(2) backlog for endpoint listeners. A connect storm from a
  // fleet-sized peer set overflows a small SYN queue and surfaces as
  // spurious Unavailable, so the default is the system maximum. <= 0 also
  // means SOMAXCONN.
  int listen_backlog = SOMAXCONN;
};

class ConnPool {
 public:
  // Maps a destination key to a freshly connected fd, classifying connect
  // errors (nothing-listens-there must be kStaleBinding, resource
  // exhaustion kUnavailable).
  using Dialer = std::function<Result<int>(std::uint64_t key)>;

  // The classic TCP transport dialer: key = loopback port.
  static Dialer LoopbackDialer();
  // UDS dialer for the process transport: key = endpoint id, path =
  // `<dir>/ep-<key>.sock`. ENOENT/ECONNREFUSED — the socket file is gone or
  // orphaned — is the physical stale binding.
  static Dialer UnixDialer(std::string socket_dir);
  // The Unix-domain socket path UnixDialer(dir) connects to for `key`.
  static std::string UnixSocketPath(const std::string& socket_dir,
                                    std::uint64_t key);

  // `metric_prefix` namespaces the pool gauges ("rt.tcp" for the TCP
  // transports, "rt.proc.pool" for the process transport).
  ConnPool(const TcpOptions& options, obs::Registry& registry, Dialer dialer,
           const std::string& metric_prefix = "rt.tcp");
  ~ConnPool();

  ConnPool(const ConnPool&) = delete;
  ConnPool& operator=(const ConnPool&) = delete;

  // Writes `env` as one frame to the destination named by `key`, honoring
  // the pooled / per-message mode and the reconnect-once contract described
  // above.
  Status send(std::uint64_t key, const Envelope& env);

  // Closes every cached idle socket (runtime teardown).
  void close_all();

 private:
  // A checked-out client socket. Ownership is exclusive between acquire()
  // and release(), so no per-connection lock is needed.
  struct Connection {
    int fd = -1;
    // Borrowed from the pool: the peer may have vanished since the socket
    // was cached, so a failed write earns one reconnect.
    bool reused = false;
    std::chrono::steady_clock::time_point last_used;
  };

  Status dial(std::uint64_t key, Connection& out);
  Status acquire(std::uint64_t key, Connection& out);
  void release(std::uint64_t key, Connection conn);
  void close_conn(Connection& conn);
  bool write_frame(int fd, const Envelope& env);

  const TcpOptions options_;
  const Dialer dialer_;

  base::Mutex mutex_{base::lock_rank::kTcpPool};
  // Idle connections per destination, oldest first (release appends,
  // reaping pops from the front).
  std::unordered_map<std::uint64_t, std::vector<Connection>> pool_
      GUARDED_BY(mutex_);

  // Syscalls retried after an EINTR interruption (regression visibility for
  // the signal-mid-transfer case).
  obs::Counter& io_retries_;
  // Pool observability: dials (fresh connects), hits (reused sockets),
  // reconnects (dead keep-alive replaced), reaped (idle-timeout closes),
  // and the live count of client-side sockets (the soak test's fd bound).
  obs::Counter& dials_;
  obs::Counter& pool_hits_;
  obs::Counter& reconnects_;
  obs::Counter& reaped_;
  obs::Gauge& open_conns_;
};

}  // namespace legion::rt
