// Per-destination pool of persistent client sockets (the sending half of
// the TCP transports).
//
// A post borrows a keep-alive socket to the destination port, writes one
// length-prefixed frame (header and payload coalesced into a single
// sendmsg), and returns the socket for reuse — MRU first, so the warmest
// socket is always next out. Idle sockets are reaped stalest-first on every
// pool touch. Sockets whose peer vanished reconnect exactly once, and a
// refused reconnect surfaces as kStaleBinding so the Section 4.1.4 repair
// loop fires — while fd exhaustion (EMFILE/ENFILE) is kUnavailable, never
// binding invalidation. Shared verbatim by TcpRuntime and EpollRuntime so
// the two transports cannot drift apart in failure classification.
#pragma once

#include <sys/socket.h>

#include <chrono>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/status.hpp"
#include "base/thread_annotations.hpp"
#include "obs/metrics.hpp"
#include "rt/envelope.hpp"

namespace legion::rt {

struct TcpOptions {
  // false = one fresh connect per message (the pre-pool transport), kept
  // measurable as the ablation baseline.
  bool pooled = true;
  // Idle sockets cached per destination port; a release beyond this closes
  // the socket instead, bounding fd usage per peer.
  std::size_t max_idle_per_peer = 4;
  // Idle sockets unused for longer than this are reaped, stalest first,
  // whenever the pool is touched.
  std::chrono::microseconds idle_reap{30'000'000};
  // listen(2) backlog for endpoint listeners. A connect storm from a
  // fleet-sized peer set overflows a small SYN queue and surfaces as
  // spurious Unavailable, so the default is the system maximum. <= 0 also
  // means SOMAXCONN.
  int listen_backlog = SOMAXCONN;
};

class ConnPool {
 public:
  ConnPool(const TcpOptions& options, obs::Registry& registry);
  ~ConnPool();

  ConnPool(const ConnPool&) = delete;
  ConnPool& operator=(const ConnPool&) = delete;

  // Writes `env` as one frame to 127.0.0.1:`port`, honoring the pooled /
  // per-message mode and the reconnect-once contract described above.
  Status send(std::uint16_t port, const Envelope& env);

  // Closes every cached idle socket (runtime teardown).
  void close_all();

 private:
  // A checked-out client socket. Ownership is exclusive between acquire()
  // and release(), so no per-connection lock is needed.
  struct Connection {
    int fd = -1;
    // Borrowed from the pool: the peer may have vanished since the socket
    // was cached, so a failed write earns one reconnect.
    bool reused = false;
    std::chrono::steady_clock::time_point last_used;
  };

  // dial() maps connect errors: ECONNREFUSED is the physical stale binding;
  // fd exhaustion and the rest are kUnavailable.
  Status dial(std::uint16_t port, Connection& out);
  Status acquire(std::uint16_t port, Connection& out);
  void release(std::uint16_t port, Connection conn);
  void close_conn(Connection& conn);
  bool write_frame(int fd, const Envelope& env);

  const TcpOptions options_;

  base::Mutex mutex_{base::lock_rank::kTcpPool};
  // Idle connections per destination port, oldest first (release appends,
  // reaping pops from the front).
  std::unordered_map<std::uint16_t, std::vector<Connection>> pool_
      GUARDED_BY(mutex_);

  // Syscalls retried after an EINTR interruption (regression visibility for
  // the signal-mid-transfer case).
  obs::Counter& io_retries_;
  // Pool observability: dials (fresh connects), hits (reused sockets),
  // reconnects (dead keep-alive replaced), reaped (idle-timeout closes),
  // and the live count of client-side sockets (the soak test's fd bound).
  obs::Counter& dials_;
  obs::Counter& pool_hits_;
  obs::Counter& reconnects_;
  obs::Counter& reaped_;
  obs::Gauge& open_conns_;
};

}  // namespace legion::rt
