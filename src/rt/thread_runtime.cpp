#include "rt/thread_runtime.hpp"

#include <algorithm>
#include <cassert>

namespace legion::rt {

namespace {
// Upper bound on one cv sleep when the waiter's predicate might be
// satisfied by another thread *without* any wakeup on this endpoint (a
// foreign counter, say). Message deliveries and notify() wake the cv
// immediately, so this bounds only the exotic case — it is a re-check
// period, not a delivery latency.
constexpr auto kForeignPredicateSlice = std::chrono::milliseconds(50);
}  // namespace

ThreadRuntime::ThreadRuntime(std::uint64_t seed)
    : rng_(seed), epoch_(std::chrono::steady_clock::now()) {}

ThreadRuntime::~ThreadRuntime() {
  // Stop all serviced endpoints, then reap self-closed threads.
  std::vector<EndpointPtr> eps;
  {
    base::WriterMutexLock lock(map_mutex_);
    for (auto& [_, ep] : endpoints_) eps.push_back(ep);
    endpoints_.clear();
  }
  for (auto& ep : eps) {
    ep->alive.store(false);
    {
      base::MutexLock lock(ep->mutex);
      ep->stopping = true;
      ++ep->wakeups;
    }
    ep->cv.notify_all();
  }
  for (auto& ep : eps) {
    if (ep->service.joinable()) ep->service.join();
  }
  base::MutexLock lock(graveyard_mutex_);
  for (auto& t : graveyard_) {
    if (t.joinable()) t.join();
  }
}

EndpointId ThreadRuntime::create_endpoint(HostId host, std::string label,
                                          MessageHandler handler,
                                          ExecutionMode mode) {
  assert(topology_.host(host) != nullptr && "endpoint on unknown host");
  auto ep = std::make_shared<Endpoint>();
  ep->host = host;
  ep->label = std::move(label);
  ep->handler = std::move(handler);
  ep->mode = mode;

  EndpointId id;
  {
    base::WriterMutexLock lock(map_mutex_);
    id = EndpointId{next_endpoint_++};
    endpoints_.emplace(id.value, ep);
  }
  if (mode == ExecutionMode::kServiced) {
    ep->service = std::thread([this, ep] { service_loop(ep); });
  }
  return id;
}

void ThreadRuntime::close_endpoint(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::WriterMutexLock lock(map_mutex_);
    endpoints_.erase(id.value);
  }
  ep->alive.store(false);
  {
    base::MutexLock lock(ep->mutex);
    ep->stopping = true;
    ++ep->wakeups;
  }
  ep->cv.notify_all();
  if (ep->service.joinable()) {
    if (ep->service.get_id() == std::this_thread::get_id()) {
      // An endpoint closing itself from its own handler: defer the join to
      // the runtime destructor so we do not deadlock on self-join.
      base::MutexLock lock(graveyard_mutex_);
      graveyard_.push_back(std::move(ep->service));
    } else {
      ep->service.join();
    }
  }
}

bool ThreadRuntime::endpoint_alive(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep && ep->alive.load();
}

HostId ThreadRuntime::host_of(EndpointId id) const {
  EndpointPtr ep = find(id);
  return ep ? ep->host : HostId{};
}

ThreadRuntime::EndpointPtr ThreadRuntime::find(EndpointId id) const {
  base::ReaderMutexLock lock(map_mutex_);
  auto it = endpoints_.find(id.value);
  return it == endpoints_.end() ? nullptr : it->second;
}

Status ThreadRuntime::post(Envelope env) {
  EndpointPtr src = find(env.src);
  if (!src) return InternalError("post from unknown endpoint");
  EndpointPtr dst = find(env.dst);
  if (!dst || !dst->alive.load()) {
    return StaleBindingError("destination endpoint closed");
  }

  const net::LatencyClass cls = topology_.classify(src->host, dst->host);
  if (faults_.any_faults()) {
    // Fault checks need the shared RNG; skip the lock entirely on the
    // (common) fault-free configuration.
    base::MutexLock lock(rng_mutex_);
    if (faults_.should_drop(src->host, dst->host, cls, rng_)) {
      transport_.dropped.inc();
      return OkStatus();
    }
  }

  {
    base::MutexLock lock(src->mutex);
    src->stats.sent += 1;
    src->stats.bytes_sent += env.payload.size();
  }
  {
    base::MutexLock lock(dst->mutex);
    if (dst->stopping) {
      // Lost the race with close: fail fast like a bounce.
      return StaleBindingError("destination endpoint closing");
    }
    dst->stats.received += 1;
    dst->stats.bytes_received += env.payload.size();
    env.queued_at = now();  // enqueue stamp: queue time = dequeue - this
    dst->inbox.push_back(std::move(env));
    ++dst->wakeups;
  }
  transport_.delivered.inc();
  transport_.by_class[static_cast<std::size_t>(cls)]->inc();
  dst->cv.notify_all();
  return OkStatus();
}

void ThreadRuntime::notify(EndpointId id) {
  EndpointPtr ep = find(id);
  if (!ep) return;
  {
    base::MutexLock lock(ep->mutex);
    ++ep->wakeups;
  }
  ep->cv.notify_all();
}

SimTime ThreadRuntime::now() const {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

bool ThreadRuntime::pop_one(const EndpointPtr& ep, Envelope& out) {
  base::MutexLock lock(ep->mutex);
  if (ep->inbox.empty()) return false;
  out = std::move(ep->inbox.front());
  ep->inbox.pop_front();
  return true;
}

void ThreadRuntime::service_loop(const EndpointPtr& ep) {
  for (;;) {
    Envelope env;
    {
      base::MutexLock lock(ep->mutex);
      while (!ep->stopping && ep->inbox.empty()) ep->cv.wait(ep->mutex);
      if (ep->inbox.empty()) return;  // stopping and drained
      env = std::move(ep->inbox.front());
      ep->inbox.pop_front();
    }
    if (ep->handler) ep->handler(std::move(env));
  }
}

bool ThreadRuntime::wait(EndpointId self, const std::function<bool()>& ready,
                         SimTime timeout_us) {
  EndpointPtr ep = find(self);
  if (!ep) return ready();
  const auto deadline =
      timeout_us == kSimTimeNever
          ? std::chrono::steady_clock::time_point::max()
          : std::chrono::steady_clock::now() +
                std::chrono::microseconds(timeout_us);
  for (;;) {
    if (ready()) return true;
    Envelope env;
    if (pop_one(ep, env)) {
      if (ep->handler) ep->handler(std::move(env));
      continue;
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return ready();
    {
      base::MutexLock lock(ep->mutex);
      if (!ep->inbox.empty()) continue;
      // Block until the next wakeup generation: a delivery, an explicit
      // notify(), close, or the deadline — no fixed-slice polling on the hot
      // path. A closed endpoint gets no further generations, so re-check its
      // predicate at a short period instead of sleeping out the deadline.
      const std::uint64_t seen = ep->wakeups;
      const auto cap = ep->stopping ? now + std::chrono::milliseconds(1)
                                    : now + kForeignPredicateSlice;
      const auto until = std::min(deadline, cap);
      while (ep->wakeups == seen) {
        if (ep->cv.wait_until(ep->mutex, until)) break;  // timed out
      }
    }
  }
}

void ThreadRuntime::run_until_idle() {
  // Best-effort settle: spin until all mailboxes look empty twice in a row.
  for (int calm = 0; calm < 2;) {
    bool busy = false;
    {
      base::ReaderMutexLock lock(map_mutex_);
      for (const auto& [_, ep] : endpoints_) {
        base::MutexLock elock(ep->mutex);
        if (!ep->inbox.empty()) {
          busy = true;
          break;
        }
      }
    }
    if (busy) {
      calm = 0;
    } else {
      ++calm;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
}

RuntimeStats ThreadRuntime::stats() const { return transport_.view(); }

EndpointStats ThreadRuntime::endpoint_stats(EndpointId id) const {
  EndpointPtr ep = find(id);
  if (!ep) return EndpointStats{};
  base::MutexLock lock(ep->mutex);
  return ep->stats;
}

std::map<std::string, std::uint64_t> ThreadRuntime::received_by_label() const {
  std::map<std::string, std::uint64_t> out;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    out[ep->label] += ep->stats.received;
  }
  return out;
}

std::uint64_t ThreadRuntime::max_received_with_label(
    const std::string& label) const {
  std::uint64_t best = 0;
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    if (ep->label != label) continue;
    base::MutexLock elock(ep->mutex);
    best = std::max(best, ep->stats.received);
  }
  return best;
}

void ThreadRuntime::reset_stats() {
  transport_.reset();
  base::ReaderMutexLock lock(map_mutex_);
  for (const auto& [_, ep] : endpoints_) {
    base::MutexLock elock(ep->mutex);
    ep->stats = EndpointStats{};
  }
}

}  // namespace legion::rt
