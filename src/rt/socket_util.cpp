#include "rt/socket_util.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace legion::rt {

ListenerSocket CreateLoopbackListener(std::uint16_t port, int backlog) {
  ListenerSocket out;
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return out;
  const int one = 1;
  // Without this, rebinding the port of a just-died listener fails with
  // EADDRINUSE for the whole TIME_WAIT period — fatal to fast recovery.
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog > 0 ? backlog : SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return out;
  }
  socklen_t len = sizeof addr;
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return out;
  }
  out.fd = fd;
  out.port = ntohs(addr.sin_port);
  return out;
}

namespace {
bool FillSunPath(const std::string& path, sockaddr_un& addr) {
  if (path.size() >= sizeof addr.sun_path) {
    errno = ENAMETOOLONG;
    return false;
  }
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return true;
}
}  // namespace

int CreateUnixListener(const std::string& path, int backlog) {
  sockaddr_un addr{};
  if (!FillSunPath(path, addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  // A stale socket file from a previous (killed) incarnation makes bind()
  // fail with EADDRINUSE even though nothing listens — the UDS analogue of
  // TIME_WAIT on a TCP port.
  ::unlink(path.c_str());
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(fd, backlog > 0 ? backlog : SOMAXCONN) != 0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  return fd;
}

int DialUnix(const std::string& path) {
  sockaddr_un addr{};
  if (!FillSunPath(path, addr)) return -1;
  const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) !=
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    return -1;
  }
  return fd;
}

int AcceptConn(int listen_fd) {
  return ::accept4(listen_fd, nullptr, nullptr, SOCK_CLOEXEC);
}

bool SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return false;
  return ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

// A signal landing mid-transfer interrupts the syscall with EINTR; that is
// a retry, not a failure — treating it as fatal silently drops frames.
bool ReadAll(int fd, void* data, std::size_t n, obs::Counter& retries) {
  char* p = static_cast<char*>(data);
  while (n > 0) {
    const ssize_t got = ::read(fd, p, n);
    if (got < 0) {
      if (errno == EINTR) {
        retries.inc();
        continue;
      }
      return false;
    }
    if (got == 0) return false;  // peer closed mid-frame
    p += got;
    n -= static_cast<std::size_t>(got);
  }
  return true;
}

// Gathered write of the whole frame in one syscall on the fast path,
// advancing the iovec on partial writes. MSG_NOSIGNAL: a pooled socket whose
// peer endpoint closed must fail with EPIPE (and reconnect), not kill the
// process with SIGPIPE. A full socket buffer on a nonblocking fd parks in
// poll(POLLOUT) instead of spinning.
bool WritevAll(int fd, iovec* iov, int iovcnt, obs::Counter& retries) {
  msghdr msg{};
  msg.msg_iov = iov;
  msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
  while (msg.msg_iovlen > 0) {
    const ssize_t written = ::sendmsg(fd, &msg, MSG_NOSIGNAL);
    if (written < 0) {
      if (errno == EINTR) {
        retries.inc();
        continue;
      }
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        pollfd pfd{fd, POLLOUT, 0};
        if (::poll(&pfd, 1, -1) < 0 && errno != EINTR) return false;
        continue;
      }
      return false;
    }
    std::size_t left = static_cast<std::size_t>(written);
    while (msg.msg_iovlen > 0 && left >= msg.msg_iov[0].iov_len) {
      left -= msg.msg_iov[0].iov_len;
      ++msg.msg_iov;
      --msg.msg_iovlen;
    }
    if (msg.msg_iovlen > 0 && left > 0) {
      msg.msg_iov[0].iov_base =
          static_cast<char*>(msg.msg_iov[0].iov_base) + left;
      msg.msg_iov[0].iov_len -= left;
    }
  }
  return true;
}

}  // namespace legion::rt
