// Deterministic virtual-time runtime.
//
// A single-threaded discrete-event kernel: post() schedules delivery at
// now + sampled latency; step() pops the earliest event, advances the clock,
// and dispatches the handler inline. With a fixed seed, every run produces
// identical message counts and virtual timings — the measurement instrument
// for the Section 5 experiments.
#pragma once

#include <cstdint>
#include <deque>
#include <queue>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/rng.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

class SimRuntime final : public Runtime {
 public:
  explicit SimRuntime(std::uint64_t seed = Rng::kDefaultSeed);
  ~SimRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override { return now_; }
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void run_until_idle() override;
  [[nodiscard]] bool quiescent() const override { return queue_.empty(); }

  [[nodiscard]] RuntimeStats stats() const override {
    return transport_.view();
  }
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

  // Number of events currently in flight (tests).
  [[nodiscard]] std::size_t pending_events() const { return queue_.size(); }

  // Advances the virtual clock by `delta_us`, delivering everything due in
  // the interval — lets tests and benches model idle wall time (e.g. cache
  // TTL expiry between workload phases).
  void advance(SimTime delta_us);

 private:
  struct Endpoint {
    HostId host;
    std::string label;
    MessageHandler handler;
    bool alive = true;
    EndpointStats stats;
  };

  struct Event {
    SimTime at;
    std::uint64_t seq;  // FIFO tiebreak for equal timestamps
    Envelope env;
  };
  struct EventLater {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  // Processes the earliest event. Returns false if the queue is empty.
  bool step();
  void deliver(Event&& ev);
  Endpoint* find(EndpointId id);
  [[nodiscard]] const Endpoint* find(EndpointId id) const;

  std::unordered_map<std::uint64_t, Endpoint> endpoints_;
  std::priority_queue<Event, std::vector<Event>, EventLater> queue_;
  SimTime now_ = 0;
  std::uint64_t next_endpoint_ = 1;
  std::uint64_t next_seq_ = 0;
  Rng rng_;
};

}  // namespace legion::rt
