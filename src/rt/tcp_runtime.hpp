// Real-sockets runtime: envelopes over TCP loopback.
//
// Paper Section 3.3: "Legion uses standard protocols and the communication
// facilities of host operating systems to support communication between
// Legion objects." This runtime is that claim made literal: every endpoint
// listens on a real 127.0.0.1 TCP port, posts open a connection and write a
// framed envelope, and delivery failure manifests as ECONNREFUSED — the
// physical form of a stale binding.
//
// Simple by design (one connection per message, one acceptor thread per
// endpoint): it exists to validate the model over a real transport, not to
// win throughput contests — SimRuntime measures, ThreadRuntime stresses,
// TcpRuntime grounds.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "rt/runtime.hpp"

namespace legion::rt {

class TcpRuntime final : public Runtime {
 public:
  TcpRuntime();
  ~TcpRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

  // The real TCP port an endpoint listens on (tests, curiosity).
  [[nodiscard]] std::uint16_t port_of(EndpointId id) const;

 private:
  struct Endpoint {
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;
    int listen_fd = -1;
    std::uint16_t port = 0;

    std::mutex mutex;
    std::condition_variable cv;
    std::deque<Envelope> inbox;
    bool stopping = false;
    std::uint64_t wakeups = 0;  // see ThreadRuntime::Endpoint::wakeups
    EndpointStats stats;        // guarded by mutex

    std::atomic<bool> alive{true};
    std::thread acceptor;
    std::thread service;  // kServiced only
  };
  using EndpointPtr = std::shared_ptr<Endpoint>;

  EndpointPtr find(EndpointId id) const;
  void acceptor_loop(const EndpointPtr& ep);
  void service_loop(const EndpointPtr& ep);
  static bool pop_one(const EndpointPtr& ep, Envelope& out);

  mutable std::shared_mutex map_mutex_;
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_;
  std::uint64_t next_endpoint_ = 1;  // guarded by map_mutex_

  // Syscalls retried after an EINTR interruption (regression visibility for
  // the signal-mid-transfer case).
  obs::Counter& io_retries_{metrics_.counter("rt.eintr_retries")};

  std::mutex graveyard_mutex_;
  std::vector<std::thread> graveyard_;

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
