// Real-sockets runtime: envelopes over TCP loopback.
//
// Paper Section 3.3: "Legion uses standard protocols and the communication
// facilities of host operating systems to support communication between
// Legion objects." This runtime is that claim made literal: every endpoint
// listens on a real 127.0.0.1 TCP port and delivery failure manifests as
// ECONNREFUSED — the physical form of a stale binding.
//
// The hot path runs over *persistent* connections. A post borrows a
// keep-alive socket to the destination port from a per-peer pool, writes one
// length-prefixed frame (33-byte header and payload coalesced into a single
// writev), and returns the socket for reuse; the receiving endpoint reads
// frames off each accepted stream until EOF. Sockets whose peer vanished
// reconnect once, and a refused reconnect surfaces as kStaleBinding so the
// Section 4.1.4 repair loop fires — while fd-exhaustion (EMFILE/ENFILE) is
// kUnavailable, never binding invalidation. The historical
// one-connection-per-message path survives behind TcpOptions::pooled = false
// as the measured ablation baseline (bench_tcp_throughput, EXPERIMENTS E11).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

struct TcpOptions {
  // false = one fresh connect per message (the pre-pool transport), kept
  // measurable as the ablation baseline.
  bool pooled = true;
  // Idle sockets cached per destination port; a release beyond this closes
  // the socket instead, bounding fd usage per peer.
  std::size_t max_idle_per_peer = 4;
  // Idle sockets unused for longer than this are reaped, stalest first,
  // whenever the pool is touched.
  std::chrono::microseconds idle_reap{30'000'000};
};

class TcpRuntime final : public Runtime {
 public:
  TcpRuntime();
  explicit TcpRuntime(TcpOptions options);
  ~TcpRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

  // The real TCP port an endpoint listens on (tests, curiosity).
  [[nodiscard]] std::uint16_t port_of(EndpointId id) const;

  [[nodiscard]] const TcpOptions& options() const { return options_; }

 private:
  struct Endpoint {
    // host/label/handler/mode/listen_fd/port are set before the endpoint is
    // published (and before its acceptor/service threads start), then never
    // written: immutable-after-init, no guard needed.
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;
    int listen_fd = -1;
    std::uint16_t port = 0;

    base::Mutex mutex{base::lock_rank::kEndpoint};
    base::CondVar cv;
    std::deque<Envelope> inbox GUARDED_BY(mutex);
    bool stopping GUARDED_BY(mutex) = false;
    // See ThreadRuntime::Endpoint::wakeups.
    std::uint64_t wakeups GUARDED_BY(mutex) = 0;
    EndpointStats stats GUARDED_BY(mutex);

    std::atomic<bool> alive{true};
    std::thread acceptor;
    std::thread service;  // kServiced only

    // Accepted persistent connections: one reader thread per stream. A
    // reader closes its own fd on exit (marking the slot -1); teardown
    // shutdowns every live fd, joins the readers, then closes stragglers.
    base::Mutex conns_mutex{base::lock_rank::kEndpointConns};
    std::vector<int> conn_fds GUARDED_BY(conns_mutex);  // -1 = closed
    std::vector<std::thread> readers GUARDED_BY(conns_mutex);
  };
  using EndpointPtr = std::shared_ptr<Endpoint>;

  // A checked-out client socket. Ownership is exclusive between acquire()
  // and release(), so no per-connection lock is needed.
  struct Connection {
    int fd = -1;
    // Borrowed from the pool: the peer may have vanished since the socket
    // was cached, so a failed write earns one reconnect.
    bool reused = false;
    std::chrono::steady_clock::time_point last_used;
  };

  EndpointPtr find(EndpointId id) const;
  void acceptor_loop(const EndpointPtr& ep);
  void reader_loop(const EndpointPtr& ep, std::size_t slot, int fd);
  void service_loop(const EndpointPtr& ep);
  static bool pop_one(const EndpointPtr& ep, Envelope& out);
  void stop_endpoint(const EndpointPtr& ep);

  // Client-side pool. dial() maps connect errors: ECONNREFUSED is the
  // physical stale binding; fd exhaustion and the rest are kUnavailable.
  Status dial(std::uint16_t port, Connection& out);
  Status acquire(std::uint16_t port, Connection& out);
  void release(std::uint16_t port, Connection conn);
  void close_conn(Connection& conn);
  bool write_frame(int fd, const Envelope& env);

  // Immutable after construction (copied in the constructor, only read
  // thereafter) — the audited answer to the PR 6 pre-lock-config question.
  const TcpOptions options_;

  mutable base::SharedMutex map_mutex_{base::lock_rank::kEndpointMap};
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_
      GUARDED_BY(map_mutex_);
  std::uint64_t next_endpoint_ GUARDED_BY(map_mutex_) = 1;

  base::Mutex pool_mutex_{base::lock_rank::kTcpPool};
  // Idle connections per destination port, oldest first (release appends,
  // reaping pops from the front).
  std::unordered_map<std::uint16_t, std::vector<Connection>> pool_
      GUARDED_BY(pool_mutex_);

  // Syscalls retried after an EINTR interruption (regression visibility for
  // the signal-mid-transfer case).
  obs::Counter& io_retries_{metrics_.counter("rt.eintr_retries")};
  // Pool observability: dials (fresh connects), hits (reused sockets),
  // reconnects (dead keep-alive replaced), reaped (idle-timeout closes),
  // and the live count of client-side sockets (the soak test's fd bound).
  obs::Counter& dials_{metrics_.counter("rt.tcp.dials")};
  obs::Counter& pool_hits_{metrics_.counter("rt.tcp.pool_hits")};
  obs::Counter& reconnects_{metrics_.counter("rt.tcp.reconnects")};
  obs::Counter& reaped_{metrics_.counter("rt.tcp.reaped")};
  obs::Gauge& open_conns_{metrics_.gauge("rt.tcp.open_connections")};

  base::Mutex graveyard_mutex_{base::lock_rank::kGraveyard};
  std::vector<std::thread> graveyard_ GUARDED_BY(graveyard_mutex_);

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
