// Real-sockets runtime: envelopes over TCP loopback.
//
// Paper Section 3.3: "Legion uses standard protocols and the communication
// facilities of host operating systems to support communication between
// Legion objects." This runtime is that claim made literal: every endpoint
// listens on a real 127.0.0.1 TCP port and delivery failure manifests as
// ECONNREFUSED — the physical form of a stale binding.
//
// The hot path runs over *persistent* connections. A post borrows a
// keep-alive socket to the destination port from the shared ConnPool (see
// rt/conn_pool.hpp for the reuse / reconnect-once / failure-classification
// contract), writes one length-prefixed frame (rt/frame.hpp), and the
// receiving endpoint reads frames off each accepted stream until EOF with
// one reader thread per connection. The historical one-connection-per-message
// path survives behind TcpOptions::pooled = false as the measured ablation
// baseline (bench_tcp_throughput, EXPERIMENTS E11). EpollRuntime
// (rt/epoll_runtime.hpp) is the M:N reactor answer to this design's
// thread-per-connection and thread-per-endpoint scaling walls.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/thread_annotations.hpp"
#include "rt/conn_pool.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

class TcpRuntime final : public Runtime {
 public:
  TcpRuntime();
  explicit TcpRuntime(TcpOptions options);
  ~TcpRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

  // The real TCP port an endpoint listens on (tests, curiosity).
  [[nodiscard]] std::uint16_t port_of(EndpointId id) const;

  [[nodiscard]] const TcpOptions& options() const { return options_; }

 private:
  struct Endpoint {
    // host/label/handler/mode/listen_fd/port are set before the endpoint is
    // published (and before its acceptor/service threads start), then never
    // written: immutable-after-init, no guard needed.
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;
    int listen_fd = -1;
    std::uint16_t port = 0;

    base::Mutex mutex{base::lock_rank::kEndpoint};
    base::CondVar cv;
    std::deque<Envelope> inbox GUARDED_BY(mutex);
    bool stopping GUARDED_BY(mutex) = false;
    // See ThreadRuntime::Endpoint::wakeups.
    std::uint64_t wakeups GUARDED_BY(mutex) = 0;
    EndpointStats stats GUARDED_BY(mutex);

    std::atomic<bool> alive{true};
    std::thread acceptor;
    std::thread service;  // kServiced only

    // Accepted persistent connections: one reader thread per stream. A
    // reader closes its own fd on exit, marks the slot -1, and lists it in
    // free_slots; the acceptor reuses freed slots before growing the
    // vectors, so connection churn cannot grow them without bound (the
    // PR 9 slot-leak fix). Teardown shutdowns every live fd, joins the
    // readers, then closes stragglers.
    base::Mutex conns_mutex{base::lock_rank::kEndpointConns};
    std::vector<int> conn_fds GUARDED_BY(conns_mutex);  // -1 = closed
    std::vector<std::thread> readers GUARDED_BY(conns_mutex);
    std::vector<std::size_t> free_slots GUARDED_BY(conns_mutex);
  };
  using EndpointPtr = std::shared_ptr<Endpoint>;

  EndpointPtr find(EndpointId id) const;
  void acceptor_loop(const EndpointPtr& ep);
  void reader_loop(const EndpointPtr& ep, std::size_t slot, int fd);
  void service_loop(const EndpointPtr& ep);
  static bool pop_one(const EndpointPtr& ep, Envelope& out);
  void stop_endpoint(const EndpointPtr& ep);

  // Immutable after construction (copied in the constructor, only read
  // thereafter) — the audited answer to the PR 6 pre-lock-config question.
  const TcpOptions options_;

  mutable base::SharedMutex map_mutex_{base::lock_rank::kEndpointMap};
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_
      GUARDED_BY(map_mutex_);
  std::uint64_t next_endpoint_ GUARDED_BY(map_mutex_) = 1;

  // Client-side connection pool, shared implementation with EpollRuntime.
  ConnPool pool_{options_, metrics_, ConnPool::LoopbackDialer()};

  // Syscalls retried after an EINTR interruption (regression visibility for
  // the signal-mid-transfer case).
  obs::Counter& io_retries_{metrics_.counter("rt.eintr_retries")};
  // accept() failures survived without killing the acceptor (ECONNABORTED
  // retries and fd-exhaustion backoffs) — the accept-robustness regression
  // tests assert this moves while delivery continues.
  obs::Counter& accept_retries_{metrics_.counter("rt.tcp.accept_retries")};
  // Reader slots ever created (NOT currently occupied): stays flat while
  // connections churn through freed slots, so the soak test can pin the
  // slot-reuse behavior directly.
  obs::Counter& reader_slots_{metrics_.counter("rt.tcp.reader_slots")};

  base::Mutex graveyard_mutex_{base::lock_rank::kGraveyard};
  std::vector<std::thread> graveyard_ GUARDED_BY(graveyard_mutex_);

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
