#include "rt/messenger.hpp"

#include <utility>

namespace legion::rt {

Messenger::Messenger(Runtime& runtime, HostId host, std::string label,
                     ExecutionMode mode, RequestDispatcher dispatcher)
    : runtime_(runtime), host_(host), dispatcher_(std::move(dispatcher)) {
  endpoint_ = runtime_.create_endpoint(
      host, std::move(label), [this](Envelope&& env) { on_message(std::move(env)); },
      mode);
}

Messenger::~Messenger() { close(); }

void Messenger::close() {
  if (closed_) return;
  closed_ = true;
  runtime_.close_endpoint(endpoint_);
  // Fail anything still pending: replies can no longer arrive.
  std::lock_guard lock(pending_mutex_);
  for (auto& [_, promise] : pending_) {
    promise.set(ReplyMsg{AbortedError("messenger closed"), Buffer{}});
  }
  pending_.clear();
}

Future<ReplyMsg> Messenger::invoke(EndpointId dst, std::string_view method,
                                   Buffer args, const EnvTriple& env) {
  std::uint64_t call_id;
  Promise<ReplyMsg> promise;
  Future<ReplyMsg> future = promise.future();
  {
    std::lock_guard lock(pending_mutex_);
    call_id = next_call_id_++;
    pending_.emplace(call_id, promise);
  }

  Buffer payload;
  Writer w(payload);
  w.u8(static_cast<std::uint8_t>(FrameKind::kRequest));
  w.u64(call_id);
  env.Serialize(w);
  w.str(method);
  w.buffer(args);

  const Status sent = runtime_.post(
      Envelope{endpoint_, dst, DeliveryKind::kData, std::move(payload)});
  if (!sent.ok()) {
    fail_pending(call_id, sent);
  }
  return future;
}

Result<Buffer> Messenger::await(Future<ReplyMsg> future, SimTime timeout_us) {
  const bool ok = runtime_.wait(
      endpoint_, [&future] { return future.ready(); }, timeout_us);
  if (!ok || !future.ready()) {
    return TimeoutError("no reply before deadline");
  }
  ReplyMsg reply = future.take();
  if (!reply.status.ok()) return reply.status;
  return std::move(reply.result);
}

Result<Buffer> Messenger::call(EndpointId dst, std::string_view method,
                               Buffer args, const EnvTriple& env,
                               SimTime timeout_us) {
  return await(invoke(dst, method, std::move(args), env), timeout_us);
}

bool Messenger::wait(const std::function<bool()>& ready, SimTime timeout_us) {
  return runtime_.wait(endpoint_, ready, timeout_us);
}

void Messenger::fail_pending(std::uint64_t call_id, Status status) {
  Promise<ReplyMsg> promise;
  {
    std::lock_guard lock(pending_mutex_);
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    promise = it->second;
    pending_.erase(it);
  }
  promise.set(ReplyMsg{std::move(status), Buffer{}});
}

void Messenger::on_message(Envelope&& env) {
  Reader r(env.payload);
  if (env.kind == DeliveryKind::kBounce) {
    handle_bounce(r);
    return;
  }
  const auto kind = static_cast<FrameKind>(r.u8());
  switch (kind) {
    case FrameKind::kRequest:
      handle_request(std::move(env), r);
      break;
    case FrameKind::kReply:
      handle_reply(r);
      break;
    default:
      break;  // malformed frame: drop
  }
}

void Messenger::handle_request(Envelope&& env, Reader& r) {
  CallInfo info;
  info.call_id = r.u64();
  info.env = EnvTriple::Deserialize(r);
  info.method = r.str();
  Buffer args = r.buffer();
  info.reply_to = env.src;
  if (!r.ok()) return;  // malformed: drop

  Result<Buffer> result = [&]() -> Result<Buffer> {
    if (!dispatcher_) {
      return UnimplementedError("endpoint accepts no requests");
    }
    ServerContext ctx{*this, info};
    Reader args_reader(args);
    return dispatcher_(ctx, args_reader);
  }();

  Buffer payload;
  Writer w(payload);
  w.u8(static_cast<std::uint8_t>(FrameKind::kReply));
  w.u64(info.call_id);
  const Status status = result.status();
  w.u8(static_cast<std::uint8_t>(status.code()));
  w.str(status.message());
  w.buffer(result.ok() ? result.value() : Buffer{});
  // A failed reply post means the caller is gone; nothing useful to do.
  (void)runtime_.post(Envelope{endpoint_, info.reply_to, DeliveryKind::kData,
                               std::move(payload)});
}

void Messenger::handle_reply(Reader& r) {
  const std::uint64_t call_id = r.u64();
  const auto code = static_cast<StatusCode>(r.u8());
  std::string message = r.str();
  Buffer result = r.buffer();
  if (!r.ok()) return;

  Promise<ReplyMsg> promise;
  {
    std::lock_guard lock(pending_mutex_);
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;  // late reply for a timed-out call
    promise = it->second;
    pending_.erase(it);
  }
  promise.set(ReplyMsg{Status{code, std::move(message)}, std::move(result)});
}

void Messenger::handle_bounce(Reader& r) {
  // The payload is one of *our own* frames returned undelivered. Only
  // bounced requests matter: fail the pending call with kStaleBinding so the
  // object's communication layer can refresh its binding and retry.
  const auto kind = static_cast<FrameKind>(r.u8());
  if (kind != FrameKind::kRequest) return;
  const std::uint64_t call_id = r.u64();
  if (!r.ok()) return;
  fail_pending(call_id, StaleBindingError("request bounced: endpoint gone"));
}

}  // namespace legion::rt
