#include "rt/messenger.hpp"

#include <utility>

#include "obs/monitor.hpp"

namespace legion::rt {

Messenger::Messenger(Runtime& runtime, HostId host, std::string label,
                     ExecutionMode mode, RequestDispatcher dispatcher)
    : runtime_(runtime),
      host_(host),
      dispatcher_(std::move(dispatcher)),
      invokes_(runtime.metrics().counter("msg.invokes")),
      requests_(runtime.metrics().counter("msg.requests")),
      timeouts_(runtime.metrics().counter("msg.timeouts")),
      unreachables_(runtime.metrics().counter("msg.unreachable")),
      pending_gauge_(runtime.metrics().gauge("msg.pending")),
      queue_us_(runtime.metrics().histogram("msg.queue_us")),
      service_us_(runtime.metrics().histogram("msg.service_us")),
      host_requests_(runtime.metrics().counter(
          "msg.requests" + obs::MetricHostSuffix(host.value))),
      host_queue_us_(runtime.metrics().histogram(
          "msg.queue_us" + obs::MetricHostSuffix(host.value))),
      host_service_us_(runtime.metrics().histogram(
          "msg.service_us" + obs::MetricHostSuffix(host.value))),
      host_pending_(runtime.metrics().gauge(
          "msg.pending" + obs::MetricHostSuffix(host.value))) {
  endpoint_ = runtime_.create_endpoint(
      host, std::move(label), [this](Envelope&& env) { on_message(std::move(env)); },
      mode);
}

Messenger::~Messenger() { close(); }

void Messenger::close() {
  if (closed_.exchange(true)) return;
  runtime_.close_endpoint(endpoint_);
  // Fail anything still pending: replies can no longer arrive. Swap the map
  // out under the lock so a racing invoke()/handle_reply() either sees the
  // entry here (failed exactly once below) or not at all.
  std::unordered_map<std::uint64_t, Promise<ReplyMsg>> orphans;
  {
    base::MutexLock lock(pending_mutex_);
    orphans.swap(pending_);
  }
  pending_gauge_.sub(static_cast<std::int64_t>(orphans.size()));
  host_pending_.sub(static_cast<std::int64_t>(orphans.size()));
  for (auto& [_, promise] : orphans) {
    promise.set(ReplyMsg{AbortedError("messenger closed"), Buffer{}});
  }
  // A thread blocked in await() on this endpoint saw no delivery; wake it so
  // it observes the failed future immediately.
  runtime_.notify(endpoint_);
}

Future<ReplyMsg> Messenger::invoke(EndpointId dst, std::string_view method,
                                   Buffer args, const EnvTriple& env) {
  Promise<ReplyMsg> promise;
  Future<ReplyMsg> future = promise.future();

  // Stamp the causal trace. Sampled roots mint a fresh trace and a root
  // span; nested invocations (env propagated from an inbound request)
  // advance the hop count and open a child span beneath the span they are
  // serving. Unsampled roots stay at trace_id == 0 end to end: the whole
  // call tree is either traced at full fidelity or not at all.
  EnvTriple traced = env;
  if (traced.trace_id == 0) {
    if (traced.hop != EnvTriple::kHopNotSampled && runtime_.sampler().sample()) {
      traced.trace_id = obs::NextTraceId();
      traced.hop = 0;
      traced.parent_span_id = 0;
      traced.span_id = obs::NextSpanId();
    } else {
      // The head decision (here or at the true root upstream) was "no";
      // stamp the verdict so calls nested under this one stay untraced too.
      traced.hop = EnvTriple::kHopNotSampled;
    }
  } else {
    traced.hop += 1;
    traced.parent_span_id = traced.span_id;
    traced.span_id = obs::NextSpanId();
  }

  std::uint64_t call_id;
  {
    base::MutexLock lock(pending_mutex_);
    if (closed_.load(std::memory_order_relaxed)) {
      // Lost the race with close(): resolve locally, exactly once.
      promise.set(ReplyMsg{AbortedError("messenger closed"), Buffer{}});
      return future;
    }
    call_id = next_call_id_++;
    pending_.emplace(call_id, promise);
  }
  pending_gauge_.add(1);
  host_pending_.add(1);
  invokes_.inc();

  Buffer payload;
  Writer w(payload);
  w.u8(static_cast<std::uint8_t>(FrameKind::kRequest));
  w.u64(call_id);
  traced.Serialize(w);
  w.str(method);
  w.buffer(args);

  Envelope envelope{endpoint_, dst, DeliveryKind::kData, std::move(payload)};
  envelope.trace_id = traced.trace_id;
  envelope.hop = traced.hop;
  envelope.span_id = traced.span_id;
  envelope.parent_span_id = traced.parent_span_id;
  record_hop(obs::HopKind::kInvoke, envelope, method);

  const Status sent = runtime_.post(std::move(envelope));
  if (!sent.ok()) {
    fail_pending(call_id, sent);
  }
  return future;
}

Result<Buffer> Messenger::await(Future<ReplyMsg> future, SimTime timeout_us) {
  const bool ok = runtime_.wait(
      endpoint_, [&future] { return future.ready(); }, timeout_us);
  if (!ok || !future.ready()) {
    if (runtime_.quiescent()) {
      // The runtime proved no event can ever resolve this future (the
      // request or its reply was dropped): the peer is unreachable, not
      // merely slow. Retry loops treat both the same, but failure-detection
      // sweeps distinguish a dead host from a congested one.
      unreachables_.inc();
      return UnavailableError("no reply and no further progress possible");
    }
    timeouts_.inc();
    return TimeoutError("no reply before deadline");
  }
  ReplyMsg reply = future.take();
  if (!reply.status.ok()) return reply.status;
  return std::move(reply.result);
}

Result<Buffer> Messenger::await_any(std::vector<Future<ReplyMsg>>& futures,
                                    SimTime timeout_us) {
  const SimTime deadline = timeout_us == kSimTimeNever
                               ? kSimTimeNever
                               : runtime_.now() + timeout_us;
  Status last = UnavailableError("no pending futures");
  for (;;) {
    bool any_pending = false;
    for (auto& future : futures) {
      if (!future.valid()) continue;
      if (!future.ready()) {
        any_pending = true;
        continue;
      }
      ReplyMsg reply = future.take();
      if (reply.status.ok()) return std::move(reply.result);
      last = std::move(reply.status);
    }
    if (!any_pending) return last;

    SimTime remaining = kSimTimeNever;
    if (deadline != kSimTimeNever) {
      const SimTime now = runtime_.now();
      if (now >= deadline) {
        timeouts_.inc();
        return TimeoutError("no reply before deadline");
      }
      remaining = deadline - now;
    }
    const bool woke = runtime_.wait(
        endpoint_,
        [&futures] {
          for (const auto& f : futures) {
            if (f.valid() && f.ready()) return true;
          }
          return false;
        },
        remaining);
    if (!woke) {
      // Deadline passed — or, in the sim, the event queue drained with
      // nothing left that could ever resolve us. Scan once more before
      // reporting the timeout.
      bool ready_now = false;
      for (const auto& f : futures) {
        if (f.valid() && f.ready()) ready_now = true;
      }
      if (!ready_now) {
        if (runtime_.quiescent()) {
          unreachables_.inc();
          return UnavailableError("no reply and no further progress possible");
        }
        timeouts_.inc();
        return TimeoutError("no reply before deadline");
      }
    }
  }
}

Result<Buffer> Messenger::call(EndpointId dst, std::string_view method,
                               Buffer args, const EnvTriple& env,
                               SimTime timeout_us) {
  return await(invoke(dst, method, std::move(args), env), timeout_us);
}

bool Messenger::wait(const std::function<bool()>& ready, SimTime timeout_us) {
  return runtime_.wait(endpoint_, ready, timeout_us);
}

void Messenger::fail_pending(std::uint64_t call_id, Status status) {
  Promise<ReplyMsg> promise;
  {
    base::MutexLock lock(pending_mutex_);
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;
    promise = it->second;
    pending_.erase(it);
  }
  pending_gauge_.sub(1);
  host_pending_.sub(1);
  promise.set(ReplyMsg{std::move(status), Buffer{}});
  // The promise may satisfy another thread's await() predicate without any
  // message delivery; make sure that waiter wakes.
  runtime_.notify(endpoint_);
}

void Messenger::record_hop(obs::HopKind kind, const Envelope& env,
                           std::string_view method, std::uint32_t queue_us,
                           std::uint32_t service_us) {
  if (env.trace_id == 0) return;
  obs::TraceRing& ring = runtime_.traces();
  if (!ring.enabled()) return;
  obs::TraceHop hop;
  hop.trace_id = env.trace_id;
  hop.hop = env.hop;
  hop.at = runtime_.now();
  hop.src = env.src.value;
  hop.dst = env.dst.value;
  hop.kind = kind;
  hop.span_id = env.span_id;
  hop.parent_span_id = env.parent_span_id;
  hop.host = host_.value;
  hop.queue_us = queue_us;
  hop.service_us = service_us;
  if (!method.empty()) hop.set_method(method);
  ring.record(hop);
}

obs::Histogram& Messenger::method_service_hist(std::string_view method) {
  std::string key(method);
  auto it = method_hists_.find(key);
  if (it != method_hists_.end()) return *it->second;
  obs::Histogram& hist = runtime_.metrics().histogram(
      "msg.method_us." + key + obs::MetricHostSuffix(host_.value));
  method_hists_.emplace(std::move(key), &hist);
  return hist;
}

void Messenger::on_message(Envelope&& env) {
  Reader r(env.payload);
  if (env.kind == DeliveryKind::kBounce ||
      env.kind == DeliveryKind::kBounceUnavailable) {
    record_hop(obs::HopKind::kBounce, env, {});
    handle_bounce(r, env.kind);
    return;
  }
  const auto kind = static_cast<FrameKind>(r.u8());
  switch (kind) {
    case FrameKind::kRequest:
      // The kRequest hop is recorded inside handle_request, once the frame
      // is parsed: that hop carries the method label and the queue split.
      handle_request(std::move(env), r);
      break;
    case FrameKind::kReply:
      record_hop(obs::HopKind::kReply, env, {});
      handle_reply(r);
      break;
    default:
      break;  // malformed frame: drop
  }
}

void Messenger::handle_request(Envelope&& env, Reader& r) {
  const SimTime dequeued_at = runtime_.now();
  requests_.inc();
  host_requests_.inc();
  CallInfo info;
  info.call_id = r.u64();
  info.env = EnvTriple::Deserialize(r);
  info.method = r.str();
  Buffer args = r.buffer();
  info.reply_to = env.src;
  if (!r.ok()) return;  // malformed: drop

  // Queue time: inbox-entry stamp (set by the runtime at enqueue) to this
  // dequeue. The sim dispatches inline at delivery, so its queue time is a
  // true zero; the thread and tcp runtimes measure real mailbox residency.
  std::uint64_t queue_us = 0;
  if (env.queued_at > 0 && dequeued_at > env.queued_at) {
    queue_us = static_cast<std::uint64_t>(dequeued_at - env.queued_at);
  }
  queue_us_.record(queue_us);
  host_queue_us_.record(queue_us);
  record_hop(obs::HopKind::kRequest, env, info.method,
             static_cast<std::uint32_t>(queue_us), 0);

  Result<Buffer> result = [&]() -> Result<Buffer> {
    if (!dispatcher_) {
      return UnimplementedError("endpoint accepts no requests");
    }
    ServerContext ctx{*this, info};
    Reader args_reader(args);
    return dispatcher_(ctx, args_reader);
  }();

  // Service time: dequeue to reply post, nested awaits included (they are
  // part of serving this call).
  const SimTime done_at = runtime_.now();
  const std::uint64_t service_us =
      done_at > dequeued_at ? static_cast<std::uint64_t>(done_at - dequeued_at)
                            : 0;
  service_us_.record(service_us);
  host_service_us_.record(service_us);
  method_service_hist(info.method).record(service_us);

  Buffer payload;
  Writer w(payload);
  w.u8(static_cast<std::uint8_t>(FrameKind::kReply));
  w.u64(info.call_id);
  const Status status = result.status();
  w.u8(static_cast<std::uint8_t>(status.code()));
  w.str(status.message());
  w.buffer(result.ok() ? result.value() : Buffer{});
  Envelope reply{endpoint_, info.reply_to, DeliveryKind::kData,
                 std::move(payload)};
  reply.trace_id = info.env.trace_id;
  reply.hop = info.env.hop + 1;
  // The reply closes the same span the request opened: both sides of the
  // call edge carry one span_id.
  reply.span_id = info.env.span_id;
  reply.parent_span_id = info.env.parent_span_id;
  record_hop(obs::HopKind::kServe, reply, info.method,
             static_cast<std::uint32_t>(queue_us),
             static_cast<std::uint32_t>(service_us));
  // A failed reply post means the caller is gone; nothing useful to do.
  (void)runtime_.post(std::move(reply));
}

void Messenger::handle_reply(Reader& r) {
  const std::uint64_t call_id = r.u64();
  const auto code = static_cast<StatusCode>(r.u8());
  std::string message = r.str();
  Buffer result = r.buffer();
  if (!r.ok()) return;

  Promise<ReplyMsg> promise;
  {
    base::MutexLock lock(pending_mutex_);
    auto it = pending_.find(call_id);
    if (it == pending_.end()) return;  // late reply for a timed-out call
    promise = it->second;
    pending_.erase(it);
  }
  pending_gauge_.sub(1);
  host_pending_.sub(1);
  promise.set(ReplyMsg{Status{code, std::move(message)}, std::move(result)});
}

void Messenger::handle_bounce(Reader& r, DeliveryKind kind_of_bounce) {
  // The payload is one of *our own* frames returned undelivered. Only
  // bounced requests matter: fail the pending call so the object's
  // communication layer reacts — kStaleBinding (refresh the binding and
  // retry) for an endpoint that no longer exists, kUnavailable for a worker
  // process that exited with the request in flight (the binding was valid;
  // the address space behind it died — retry after reactivation, and never
  // burn a full timeout discovering it).
  const auto kind = static_cast<FrameKind>(r.u8());
  if (kind != FrameKind::kRequest) return;
  const std::uint64_t call_id = r.u64();
  if (!r.ok()) return;
  if (kind_of_bounce == DeliveryKind::kBounceUnavailable) {
    fail_pending(call_id,
                 UnavailableError("request bounced: worker process exited"));
    return;
  }
  fail_pending(call_id, StaleBindingError("request bounced: endpoint gone"));
}

}  // namespace legion::rt
