// The length-prefixed envelope frame shared by every socket transport.
//
// Frame: u32 payload length | u64 src | u64 dst | u8 kind | u64 trace_id |
// u32 hop | u64 span_id | u64 parent_span_id | payload bytes. Frames are
// self-delimiting, so any number of them multiplex over one persistent
// stream. (queued_at is receiver-local and deliberately NOT on the wire.)
//
// TcpRuntime's per-connection reader threads and EpollRuntime's reactor
// parse the identical 49-byte header, so the two transports are wire
// compatible by construction.
#pragma once

#include <cstddef>
#include <cstdint>

#include "rt/envelope.hpp"

namespace legion::rt {

inline constexpr std::size_t kFrameHeaderBytes = 4 + 8 + 8 + 1 + 8 + 4 + 8 + 8;
inline constexpr std::uint32_t kMaxFrameBytes = 64u << 20;  // 64 MiB sanity cap

namespace frame_detail {
inline void PutU32(std::uint8_t* out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline void PutU64(std::uint8_t* out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<std::uint8_t>(v >> (8 * i));
}
inline std::uint32_t GetU32(const std::uint8_t* in) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(in[i]) << (8 * i);
  return v;
}
inline std::uint64_t GetU64(const std::uint8_t* in) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(in[i]) << (8 * i);
  return v;
}
}  // namespace frame_detail

// Writes the header for `env` into `out` (at least kFrameHeaderBytes).
inline void EncodeFrameHeader(const Envelope& env, std::uint8_t* out) {
  using frame_detail::PutU32;
  using frame_detail::PutU64;
  PutU32(out, static_cast<std::uint32_t>(env.payload.size()));
  PutU64(out + 4, env.src.value);
  PutU64(out + 12, env.dst.value);
  out[20] = static_cast<std::uint8_t>(env.kind);
  PutU64(out + 21, env.trace_id);
  PutU32(out + 29, env.hop);
  PutU64(out + 33, env.span_id);
  PutU64(out + 41, env.parent_span_id);
}

// Fills everything except the payload bytes from a raw header; returns the
// payload length the sender declared (callers must still range-check it
// against kMaxFrameBytes before trusting it).
inline std::uint32_t DecodeFrameHeader(const std::uint8_t* in, Envelope& env) {
  using frame_detail::GetU32;
  using frame_detail::GetU64;
  env.src = EndpointId{GetU64(in + 4)};
  env.dst = EndpointId{GetU64(in + 12)};
  env.kind = static_cast<DeliveryKind>(in[20]);
  env.trace_id = GetU64(in + 21);
  env.hop = GetU32(in + 29);
  env.span_id = GetU64(in + 33);
  env.parent_span_id = GetU64(in + 41);
  return GetU32(in);
}

}  // namespace legion::rt
