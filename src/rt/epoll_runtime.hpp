// M:N event-driven runtime: one epoll reactor, a fixed work-stealing worker
// pool, and per-endpoint actor mailboxes.
//
// ThreadRuntime spends one OS thread per serviced endpoint and TcpRuntime
// adds one acceptor plus one reader thread per accepted connection — both
// hit the kernel's thread ceiling orders of magnitude before the paper's
// "millions of objects" target. Here threads are decoupled from objects:
//
//   * A single *reactor* thread owns every socket. Per-HOST nonblocking
//     loopback listeners (ephemeral ports are ~28k; per-endpoint listeners
//     cannot reach 1M objects) are accepted and read with epoll; complete
//     frames (rt/frame.hpp, identical wire format to TcpRuntime) are routed
//     to the destination endpoint's mailbox by the env.dst header field.
//   * A fixed pool of *workers* (default: hardware_concurrency) drains
//     mailboxes. Each endpoint is a tiny actor: kIdle until a message
//     arrives, then kScheduled on a run queue, then kRunning on exactly one
//     worker at a time — the same no-concurrent-handler guarantee the
//     thread-per-object runtimes give, without the threads. Workers pop
//     their own deque LIFO, then the shared injector, then steal from
//     victims FIFO.
//   * A worker whose handler blocks in wait() (nested call chains:
//     object -> class -> magistrate -> host) announces itself blocked and
//     the pool spawns a bounded spare so mailbox draining never deadlocks
//     behind awaiting handlers — essential on small machines where the pool
//     may be a single worker.
//
// Sending reuses the shared ConnPool (MRU reuse, idle reap, reconnect-once,
// ECONNREFUSED -> kStaleBinding), so posting semantics — including the
// failure classification the Section 4.1.4 repair loop depends on — are
// byte-for-byte those of TcpRuntime. The fault plan is consulted on post
// like ThreadRuntime's, so recovery experiments (host down, partitions,
// lossy classes) run unchanged over real sockets.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "base/mutex.hpp"
#include "base/rng.hpp"
#include "base/thread_annotations.hpp"
#include "rt/conn_pool.hpp"
#include "rt/runtime.hpp"

namespace legion::rt {

struct EpollOptions {
  // Client-socket pooling and listener tuning, shared with TcpRuntime.
  TcpOptions tcp;
  // Fixed worker-pool size; 0 = std::thread::hardware_concurrency(). The
  // pool may temporarily exceed this with spares spawned while workers
  // block in wait() (bounded at 16x).
  std::size_t workers = 0;
  // Seed for the fault-plan RNG (drop-probability draws).
  std::uint64_t seed = Rng::kDefaultSeed;
};

class EpollRuntime final : public Runtime {
 public:
  EpollRuntime();
  explicit EpollRuntime(EpollOptions options);
  // Convenience: TcpRuntime-shaped construction for transport-parameterized
  // tests (pool knobs, backlog) with default worker sizing.
  explicit EpollRuntime(TcpOptions tcp);
  ~EpollRuntime() override;

  EndpointId create_endpoint(HostId host, std::string label,
                             MessageHandler handler,
                             ExecutionMode mode) override;
  void close_endpoint(EndpointId id) override;
  [[nodiscard]] bool endpoint_alive(EndpointId id) const override;
  [[nodiscard]] HostId host_of(EndpointId id) const override;

  Status post(Envelope env) override;
  [[nodiscard]] SimTime now() const override;
  bool wait(EndpointId self, const std::function<bool()>& ready,
            SimTime timeout_us) override;
  void notify(EndpointId id) override;
  void run_until_idle() override;

  [[nodiscard]] RuntimeStats stats() const override;
  [[nodiscard]] EndpointStats endpoint_stats(EndpointId id) const override;
  [[nodiscard]] std::map<std::string, std::uint64_t> received_by_label()
      const override;
  [[nodiscard]] std::uint64_t max_received_with_label(
      const std::string& label) const override;
  void reset_stats() override;

  // The real TCP port an endpoint receives on — its HOST's listener port
  // (endpoints share their host's listener; frames are demultiplexed by the
  // dst header field).
  [[nodiscard]] std::uint16_t port_of(EndpointId id) const;

  [[nodiscard]] const TcpOptions& options() const { return options_.tcp; }

  // Threads the runtime currently owns: reactor + workers (spares
  // included). bench_epoll_scaling reports this against the endpoint count;
  // it is the whole point of the M:N design that it does not scale with
  // endpoints.
  [[nodiscard]] std::size_t runtime_threads() const;

 private:
  // Actor mailbox lifecycle. Exactly one worker runs an endpoint at a time:
  //   kIdle --(first message)--> kScheduled --(worker pops)--> kRunning
  //   kRunning --(drained)--> kIdle, or --(budget left work)--> kScheduled.
  // Driver-mode endpoints stay kIdle forever; their owner drains them
  // inline from wait().
  enum class MailboxState : std::uint8_t { kIdle, kScheduled, kRunning };

  struct Endpoint {
    // Immutable after create_endpoint publishes the endpoint.
    HostId host;
    std::string label;
    MessageHandler handler;
    ExecutionMode mode = ExecutionMode::kServiced;
    std::uint16_t host_port = 0;  // the host listener this endpoint shares
    EndpointId id;

    base::Mutex mutex{base::lock_rank::kEndpoint};
    base::CondVar cv;
    // FIFO as vector + head index: an idle endpoint holds no heap block
    // (libstdc++ deque allocates ~512B even when empty — real money at the
    // 1M-endpoint scale this runtime exists for).
    std::vector<Envelope> inbox GUARDED_BY(mutex);
    std::size_t inbox_head GUARDED_BY(mutex) = 0;
    bool stopping GUARDED_BY(mutex) = false;
    // See ThreadRuntime::Endpoint::wakeups.
    std::uint64_t wakeups GUARDED_BY(mutex) = 0;
    EndpointStats stats GUARDED_BY(mutex);
    MailboxState mstate GUARDED_BY(mutex) = MailboxState::kIdle;
    // Valid while mstate == kRunning: lets a nested wait() recognize "I am
    // the thread servicing this endpoint" and keep draining inline.
    std::thread::id running_thread GUARDED_BY(mutex);

    std::atomic<bool> alive{true};
  };
  using EndpointPtr = std::shared_ptr<Endpoint>;

  struct Worker {
    // Run queue: owner pops the back (LIFO, cache-warm), thieves and the
    // owner-after-own-work take the front (FIFO, oldest first).
    base::Mutex mutex{base::lock_rank::kScheduler};
    std::deque<EndpointPtr> queue GUARDED_BY(mutex);
    std::thread thread;
  };

  // Socket registrations handed to the reactor thread (it alone touches
  // epoll) alongside an eventfd kick.
  struct ControlOp {
    enum class Kind : std::uint8_t { kAddListener, kStop } kind;
    int fd = -1;
  };

  EndpointPtr find(EndpointId id) const;
  static bool pop_one(const EndpointPtr& ep, Envelope& out);

  // --- scheduler ---
  void schedule(const EndpointPtr& ep);  // endpoint must be kScheduled
  void worker_loop(Worker* self);
  EndpointPtr next_endpoint(Worker* self);
  void run_endpoint(const EndpointPtr& ep);
  void spawn_worker() REQUIRES(pool_mutex_);
  // RAII around a potentially-blocking region on a worker thread: tells the
  // pool so it can compensate with a spare and the system keeps draining.
  class BlockedScope;

  // --- reactor ---
  void reactor_loop();
  void post_control(ControlOp op);
  void enqueue(Envelope env);  // reactor -> mailbox handoff

  const EpollOptions options_;

  mutable base::SharedMutex map_mutex_{base::lock_rank::kEndpointMap};
  std::unordered_map<std::uint64_t, EndpointPtr> endpoints_
      GUARDED_BY(map_mutex_);
  std::uint64_t next_endpoint_ GUARDED_BY(map_mutex_) = 1;

  // One shared listener per host (lazily bound on the host's first
  // endpoint): HostId -> listener port, for stamping Endpoint::host_port.
  base::Mutex listeners_mutex_{base::lock_rank::kListeners};
  std::unordered_map<std::uint32_t, std::uint16_t> listener_ports_
      GUARDED_BY(listeners_mutex_);

  // Worker pool. `workers_` only grows (spares are kept until teardown);
  // elements are stable unique_ptrs so lock-free readers of a Worker* are
  // fine once they hold a pointer.
  mutable base::Mutex pool_mutex_{base::lock_rank::kWorkerPool};
  std::vector<std::unique_ptr<Worker>> workers_ GUARDED_BY(pool_mutex_);
  std::size_t blocked_workers_ GUARDED_BY(pool_mutex_) = 0;
  std::size_t target_workers_ = 0;  // immutable after construction

  // Injector queue for submissions from non-worker threads (the reactor,
  // external posters) plus the sleep/wake epoch for idle workers.
  base::Mutex sched_mutex_{base::lock_rank::kScheduler};
  base::CondVar sched_cv_;
  std::deque<EndpointPtr> injector_ GUARDED_BY(sched_mutex_);
  std::uint64_t sched_epoch_ GUARDED_BY(sched_mutex_) = 0;
  bool sched_stopping_ GUARDED_BY(sched_mutex_) = false;

  // Reactor control: ops + eventfd kick. The reactor drains ops whenever
  // the eventfd fires.
  base::Mutex reactor_mutex_{base::lock_rank::kReactorControl};
  std::vector<ControlOp> control_ops_ GUARDED_BY(reactor_mutex_);
  int epoll_fd_ = -1;
  int wake_fd_ = -1;
  std::thread reactor_;

  base::Mutex rng_mutex_{base::lock_rank::kRng};
  Rng rng_ GUARDED_BY(rng_mutex_);

  // Client-side connection pool, shared implementation with TcpRuntime.
  ConnPool pool_{options_.tcp, metrics_, ConnPool::LoopbackDialer()};

  obs::Counter& io_retries_{metrics_.counter("rt.eintr_retries")};
  // accept() failures survived without deafening a host listener
  // (ECONNABORTED retries, fd-exhaustion backoffs).
  obs::Counter& accept_retries_{metrics_.counter("rt.tcp.accept_retries")};
  // Spare workers spawned to cover blocked ones (wakeups visible in tests
  // exercising deep nested call chains).
  obs::Counter& spares_spawned_{metrics_.counter("rt.epoll.spare_workers")};

  std::chrono::steady_clock::time_point epoch_;
};

}  // namespace legion::rt
