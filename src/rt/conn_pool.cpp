#include "rt/conn_pool.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "rt/frame.hpp"
#include "rt/socket_util.hpp"

namespace legion::rt {

ConnPool::Dialer ConnPool::LoopbackDialer() {
  return [](std::uint64_t key) -> Result<int> {
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
      // Per-message sockets made fd exhaustion easy to hit; it is a local
      // resource failure, not evidence the binding went stale.
      if (errno == EMFILE || errno == ENFILE) {
        return UnavailableError("socket(): fd exhausted");
      }
      return UnavailableError(std::string("socket(): ") +
                              std::strerror(errno));
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<std::uint16_t>(key));
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0) {
      const int err = errno;
      ::close(fd);
      if (err == ECONNREFUSED) {
        // The physical stale binding: nothing listens there anymore.
        return StaleBindingError("connection refused");
      }
      if (err == EMFILE || err == ENFILE) {
        return UnavailableError("connect(): fd exhausted");
      }
      return UnavailableError(std::string("connect(): ") + std::strerror(err));
    }
    return fd;
  };
}

std::string ConnPool::UnixSocketPath(const std::string& socket_dir,
                                     std::uint64_t key) {
  return socket_dir + "/ep-" + std::to_string(key) + ".sock";
}

ConnPool::Dialer ConnPool::UnixDialer(std::string socket_dir) {
  return [dir = std::move(socket_dir)](std::uint64_t key) -> Result<int> {
    const int fd = DialUnix(UnixSocketPath(dir, key));
    if (fd >= 0) return fd;
    const int err = errno;
    if (err == ENOENT || err == ECONNREFUSED) {
      // The socket file was never bound, was unlinked on endpoint close, or
      // belongs to a process that died: nothing serves this endpoint.
      return StaleBindingError("unix socket gone");
    }
    if (err == EMFILE || err == ENFILE) {
      return UnavailableError("connect(): fd exhausted");
    }
    return UnavailableError(std::string("connect(unix): ") +
                            std::strerror(err));
  };
}

ConnPool::ConnPool(const TcpOptions& options, obs::Registry& registry,
                   Dialer dialer, const std::string& metric_prefix)
    : options_(options),
      dialer_(std::move(dialer)),
      io_retries_(registry.counter("rt.eintr_retries")),
      dials_(registry.counter(metric_prefix + ".dials")),
      pool_hits_(registry.counter(metric_prefix + ".pool_hits")),
      reconnects_(registry.counter(metric_prefix + ".reconnects")),
      reaped_(registry.counter(metric_prefix + ".reaped")),
      open_conns_(registry.gauge(metric_prefix + ".open_connections")) {}

ConnPool::~ConnPool() { close_all(); }

void ConnPool::close_all() {
  base::MutexLock lock(mutex_);
  for (auto& [_, idle] : pool_) {
    for (auto& conn : idle) {
      ::close(conn.fd);
      open_conns_.sub(1);
    }
  }
  pool_.clear();
}

Status ConnPool::dial(std::uint64_t key, Connection& out) {
  Result<int> fd = dialer_(key);
  if (!fd.ok()) return fd.status();
  dials_.inc();
  open_conns_.add(1);
  out.fd = *fd;
  out.reused = false;
  out.last_used = std::chrono::steady_clock::now();
  return OkStatus();
}

Status ConnPool::acquire(std::uint64_t key, Connection& out) {
  {
    base::MutexLock lock(mutex_);
    auto it = pool_.find(key);
    if (it != pool_.end()) {
      auto& idle = it->second;
      // Reap idle-timeout expirees, stalest first (release appends, so the
      // vector is ordered by last use).
      const auto cutoff = std::chrono::steady_clock::now() - options_.idle_reap;
      std::size_t dead = 0;
      while (dead < idle.size() && idle[dead].last_used < cutoff) ++dead;
      for (std::size_t i = 0; i < dead; ++i) {
        ::close(idle[i].fd);
        reaped_.inc();
        open_conns_.sub(1);
      }
      idle.erase(idle.begin(),
                 idle.begin() + static_cast<std::ptrdiff_t>(dead));
      if (!idle.empty()) {
        out = idle.back();  // most recently used: warmest socket
        idle.pop_back();
        out.reused = true;
        pool_hits_.inc();
        return OkStatus();
      }
    }
  }
  return dial(key, out);
}

void ConnPool::release(std::uint64_t key, Connection conn) {
  conn.last_used = std::chrono::steady_clock::now();
  {
    base::MutexLock lock(mutex_);
    auto& idle = pool_[key];
    if (idle.size() < options_.max_idle_per_peer) {
      idle.push_back(conn);
      return;
    }
  }
  // Pool full: the bound on cached fds wins over reuse.
  close_conn(conn);
}

void ConnPool::close_conn(Connection& conn) {
  if (conn.fd < 0) return;
  ::close(conn.fd);
  conn.fd = -1;
  open_conns_.sub(1);
}

bool ConnPool::write_frame(int fd, const Envelope& env) {
  std::uint8_t header[kFrameHeaderBytes];
  EncodeFrameHeader(env, header);
  iovec iov[2];
  iov[0].iov_base = header;
  iov[0].iov_len = kFrameHeaderBytes;
  int iovcnt = 1;
  if (!env.payload.empty()) {
    iov[1].iov_base = const_cast<std::uint8_t*>(env.payload.data());
    iov[1].iov_len = env.payload.size();
    iovcnt = 2;
  }
  return WritevAll(fd, iov, iovcnt, io_retries_);
}

Status ConnPool::send(std::uint64_t key, const Envelope& env) {
  Connection conn;
  if (!options_.pooled) {
    // Ablation baseline: connect, one frame, close.
    Status st = dial(key, conn);
    if (!st.ok()) return st;
    const bool ok = write_frame(conn.fd, env);
    close_conn(conn);
    if (!ok) return UnavailableError("short write on socket send");
    return OkStatus();
  }
  Status st = acquire(key, conn);
  if (!st.ok()) return st;
  bool ok = write_frame(conn.fd, env);
  if (!ok && conn.reused) {
    // The cached socket's peer vanished (endpoint closed, listener
    // restarted) — exactly one reconnect. A refusal here is the stale
    // binding the Section 4.1.4 repair loop exists for.
    close_conn(conn);
    reconnects_.inc();
    st = dial(key, conn);
    if (!st.ok()) return st;
    ok = write_frame(conn.fd, env);
  }
  if (!ok) {
    close_conn(conn);
    return UnavailableError("short write on socket send");
  }
  release(key, conn);
  return OkStatus();
}

}  // namespace legion::rt
