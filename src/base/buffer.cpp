#include "base/buffer.hpp"

// Header-only today; the translation unit anchors the target and keeps room
// for out-of-line growth (e.g. rope-style buffers) without touching users.
