// Error model for the Legion libraries.
//
// Remote failures are data: they are marshalled over the (simulated) wire and
// inspected by retry logic, so the RPC-facing API reports them as Status /
// Result<T> values rather than exceptions. Exceptions remain for programmer
// errors via assertions.
#pragma once

#include <cassert>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace legion {

enum class StatusCode : std::uint8_t {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kPermissionDenied = 4,   // MayI() refused the invocation.
  kFailedPrecondition = 5, // e.g. Create() on an Abstract class.
  kUnavailable = 6,        // transient: endpoint congested / partitioned.
  kStaleBinding = 7,       // delivery failed: the Object Address is dead.
  kTimeout = 8,
  kUnimplemented = 9,
  kAborted = 10,
  kOutOfRange = 11,
  kResourceExhausted = 12, // host refused: CPU/memory limits (Section 3.9).
  kInternal = 13,
};

[[nodiscard]] std::string_view to_string(StatusCode code);

// A status is a code plus an optional human-readable detail message.
class [[nodiscard]] Status {
 public:
  Status() = default;  // OK
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status{}; }

  [[nodiscard]] bool ok() const { return code_ == StatusCode::kOk; }
  [[nodiscard]] StatusCode code() const { return code_; }
  [[nodiscard]] const std::string& message() const { return message_; }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
Status InvalidArgumentError(std::string_view msg);
Status NotFoundError(std::string_view msg);
Status AlreadyExistsError(std::string_view msg);
Status PermissionDeniedError(std::string_view msg);
Status FailedPreconditionError(std::string_view msg);
Status UnavailableError(std::string_view msg);
Status StaleBindingError(std::string_view msg);
Status TimeoutError(std::string_view msg);
Status UnimplementedError(std::string_view msg);
Status AbortedError(std::string_view msg);
Status OutOfRangeError(std::string_view msg);
Status ResourceExhaustedError(std::string_view msg);
Status InternalError(std::string_view msg);

// Result<T>: either a value or a non-OK status.
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : rep_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : rep_(std::move(status)) {  // NOLINT
    assert(!std::get<Status>(rep_).ok() && "Result built from OK status");
  }

  [[nodiscard]] bool ok() const { return std::holds_alternative<T>(rep_); }
  explicit operator bool() const { return ok(); }

  [[nodiscard]] Status status() const {
    return ok() ? Status::Ok() : std::get<Status>(rep_);
  }

  [[nodiscard]] const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  [[nodiscard]] T&& take() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }
  [[nodiscard]] T value_or(T fallback) const& {
    return ok() ? std::get<T>(rep_) : std::move(fallback);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

// Propagate non-OK statuses up the call stack.
#define LEGION_RETURN_IF_ERROR(expr)          \
  do {                                        \
    ::legion::Status _st = (expr);            \
    if (!_st.ok()) return _st;                \
  } while (0)

#define LEGION_ASSIGN_OR_RETURN(lhs, expr)    \
  auto LEGION_CONCAT_(_res_, __LINE__) = (expr);             \
  if (!LEGION_CONCAT_(_res_, __LINE__).ok())                 \
    return LEGION_CONCAT_(_res_, __LINE__).status();         \
  lhs = std::move(LEGION_CONCAT_(_res_, __LINE__)).take()

#define LEGION_CONCAT_IMPL_(a, b) a##b
#define LEGION_CONCAT_(a, b) LEGION_CONCAT_IMPL_(a, b)

}  // namespace legion
