// Legion Object Identifiers (paper Section 3.2).
//
// "The 128 high order bits are separated into CLASS IDENTIFIER (64 bits) and
//  CLASS SPECIFIC (64 bits) parts. The P low order bits comprise the PUBLIC
//  KEY of the object." The paper leaves P open ("a constant whose size has
//  yet to be determined"), so the key field here is a run-length-configurable
//  byte string; identity comparisons include it, while routing uses only the
//  128 identity bits.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "base/interner.hpp"
#include "base/serialize.hpp"

namespace legion {

class Loid {
 public:
  Loid() = default;
  Loid(std::uint64_t class_id, std::uint64_t class_specific,
       std::vector<std::uint8_t> public_key = {})
      : class_id_(class_id),
        class_specific_(class_specific),
        public_key_(std::move(public_key)) {}

  // LegionClass hands out class identifiers; conventionally the class-
  // specific field of a *class object's* LOID is zero (Section 3.7).
  static Loid ForClass(std::uint64_t class_id,
                       std::vector<std::uint8_t> public_key = {}) {
    return Loid{class_id, 0, std::move(public_key)};
  }

  [[nodiscard]] std::uint64_t class_id() const { return class_id_; }
  [[nodiscard]] std::uint64_t class_specific() const { return class_specific_; }
  [[nodiscard]] const std::vector<std::uint8_t>& public_key() const {
    return public_key_;
  }

  // The nil LOID (0,0) names nothing.
  [[nodiscard]] bool valid() const {
    return class_id_ != 0 || class_specific_ != 0;
  }
  // Class objects carry class-specific == 0 by convention.
  [[nodiscard]] bool names_class_object() const {
    return valid() && class_specific_ == 0;
  }

  // Section 4.1.3: "the LOID of the responsible class can be determined by
  // setting the Class Identifier field to match [the object's] and setting
  // the Class Specific field to zero."
  [[nodiscard]] Loid responsible_class() const {
    return Loid::ForClass(class_id_);
  }

  [[nodiscard]] std::string to_string() const;

  void Serialize(Writer& w) const {
    w.u64(class_id_);
    w.u64(class_specific_);
    w.bytes(public_key_);
  }
  static Loid Deserialize(Reader& r) {
    Loid l;
    l.class_id_ = r.u64();
    l.class_specific_ = r.u64();
    l.public_key_ = r.bytes();
    return l;
  }

  // Equality, ordering, and hashing use only the 128 identity bits. The
  // paper's Section 4.1.3 locating trick — "setting the Class Identifier
  // field to match [the object's] and setting the Class Specific field to
  // zero" — produces LOIDs *without* the target's public key, so naming must
  // resolve on identity alone; the key authenticates (Section 3.2), it does
  // not disambiguate.
  friend bool operator==(const Loid& a, const Loid& b) {
    return a.class_id_ == b.class_id_ &&
           a.class_specific_ == b.class_specific_;
  }
  friend bool operator<(const Loid& a, const Loid& b) {
    if (a.class_id_ != b.class_id_) return a.class_id_ < b.class_id_;
    return a.class_specific_ < b.class_specific_;
  }
  // Full comparison including the public key field.
  [[nodiscard]] bool identical_including_key(const Loid& other) const {
    return *this == other && public_key_ == other.public_key_;
  }

 private:
  std::uint64_t class_id_ = 0;
  std::uint64_t class_specific_ = 0;
  std::vector<std::uint8_t> public_key_;
};

struct LoidHash {
  std::size_t operator()(const Loid& l) const noexcept;
};

// Dense-id interning keyed by LOID identity. The packed core tables
// (LogicalTable, BindingCache, ...) intern each LOID once, store payloads in
// segmented per-id slots, and keep 4-byte ids in their long-lived links;
// fat Loids appear only at the table edges (arguments and results).
using LoidInterner = Interner<Loid, LoidHash>;

}  // namespace legion

namespace std {
template <>
struct hash<legion::Loid> {
  size_t operator()(const legion::Loid& l) const noexcept {
    return legion::LoidHash{}(l);
  }
};
}  // namespace std
