// Portable little-endian wire serialization.
//
// Writer appends fixed-width primitives, length-prefixed strings/blobs, and
// containers to a Buffer. Reader consumes them; any malformed read trips a
// sticky failure flag that callers check once after parsing (the usual
// pattern for untrusted wire input — no partial-trust exceptions).
#pragma once

#include <array>
#include <concepts>
#include <cstdint>
#include <cstring>
#include <optional>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "base/buffer.hpp"

namespace legion {

class Writer {
 public:
  explicit Writer(Buffer& out) : out_(out) {}

  void u8(std::uint8_t v) { out_.append(&v, 1); }
  void u16(std::uint16_t v) { put_le(v); }
  void u32(std::uint32_t v) { put_le(v); }
  void u64(std::uint64_t v) { put_le(v); }
  void i64(std::int64_t v) { put_le(static_cast<std::uint64_t>(v)); }
  void f64(double v) {
    std::uint64_t bits;
    static_assert(sizeof bits == sizeof v);
    std::memcpy(&bits, &v, sizeof bits);
    put_le(bits);
  }
  void boolean(bool v) { u8(v ? 1 : 0); }

  void bytes(std::span<const std::uint8_t> b) {
    u32(static_cast<std::uint32_t>(b.size()));
    out_.append(b);
  }
  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    out_.append(s.data(), s.size());
  }
  void buffer(const Buffer& b) { bytes(b.span()); }

 private:
  template <typename T>
  void put_le(T v) {
    std::array<std::uint8_t, sizeof(T)> raw;
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      raw[i] = static_cast<std::uint8_t>(v >> (8 * i));
    }
    out_.append(raw.data(), raw.size());
  }

  Buffer& out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> in) : in_(in) {}
  explicit Reader(const Buffer& b) : in_(b.span()) {}

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] bool exhausted() const { return pos_ == in_.size(); }
  [[nodiscard]] std::size_t remaining() const { return in_.size() - pos_; }

  std::uint8_t u8() { return take_le<std::uint8_t>(); }
  std::uint16_t u16() { return take_le<std::uint16_t>(); }
  std::uint32_t u32() { return take_le<std::uint32_t>(); }
  std::uint64_t u64() { return take_le<std::uint64_t>(); }
  std::int64_t i64() { return static_cast<std::int64_t>(take_le<std::uint64_t>()); }
  double f64() {
    const std::uint64_t bits = take_le<std::uint64_t>();
    double v = 0.0;
    std::memcpy(&v, &bits, sizeof v);
    return v;
  }
  bool boolean() { return u8() != 0; }

  // Marks the stream failed (used by callers that detect a structurally
  // impossible length or count); sticky like any malformed read.
  void mark_failed() { fail(); }

  // Consumes and returns all remaining bytes (no length prefix) — used to
  // capture raw arguments for verbatim forwarding.
  Buffer remainder() {
    std::vector<std::uint8_t> out(
        in_.begin() + static_cast<std::ptrdiff_t>(pos_), in_.end());
    pos_ = in_.size();
    return Buffer{std::move(out)};
  }

  std::vector<std::uint8_t> bytes() {
    const std::uint32_t n = u32();
    if (!ok_ || remaining() < n) {
      fail();
      return {};
    }
    std::vector<std::uint8_t> out(in_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                  in_.begin() + static_cast<std::ptrdiff_t>(pos_ + n));
    pos_ += n;
    return out;
  }
  std::string str() {
    auto raw = bytes();
    return std::string(raw.begin(), raw.end());
  }
  Buffer buffer() { return Buffer{bytes()}; }

 private:
  template <typename T>
  T take_le() {
    if (!ok_ || remaining() < sizeof(T)) {
      fail();
      return T{};
    }
    T v{};
    for (std::size_t i = 0; i < sizeof(T); ++i) {
      v = static_cast<T>(v | (static_cast<T>(in_[pos_ + i]) << (8 * i)));
    }
    pos_ += sizeof(T);
    return v;
  }
  void fail() { ok_ = false; pos_ = in_.size(); }

  std::span<const std::uint8_t> in_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// Serialization adapters for common aggregates. A type opts in by providing
//   void Serialize(Writer&) const;  and  static T Deserialize(Reader&);
template <typename T>
concept WireSerializable = requires(const T& t, Writer& w, Reader& r) {
  { t.Serialize(w) } -> std::same_as<void>;
  { T::Deserialize(r) } -> std::same_as<T>;
};

template <WireSerializable T>
void WriteVector(Writer& w, const std::vector<T>& v) {
  w.u32(static_cast<std::uint32_t>(v.size()));
  for (const auto& item : v) item.Serialize(w);
}

template <WireSerializable T>
std::vector<T> ReadVector(Reader& r) {
  const std::uint32_t n = r.u32();
  std::vector<T> out;
  if (!r.ok()) return out;
  // Guard against hostile lengths: each element consumes >= 1 byte, so a
  // count beyond the remaining bytes is structurally impossible. Fail the
  // stream rather than silently returning a shorter vector.
  if (n > r.remaining()) {
    r.mark_failed();
    return out;
  }
  out.reserve(n);
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) out.push_back(T::Deserialize(r));
  return out;
}

}  // namespace legion
