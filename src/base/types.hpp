// Strong identifier types shared across the Legion substrate layers.
//
// Each id is a distinct struct wrapping an integer so that a HostId can never
// be passed where an EndpointId is expected (C++ Core Guidelines I.4: make
// interfaces precisely and strongly typed).
#pragma once

#include <compare>
#include <cstdint>
#include <functional>

namespace legion {

namespace detail {

// CRTP-free tagged integer id. `Tag` makes each instantiation a unique type.
template <typename Tag, typename Rep = std::uint64_t>
struct TaggedId {
  Rep value{0};

  constexpr TaggedId() = default;
  constexpr explicit TaggedId(Rep v) : value(v) {}

  [[nodiscard]] constexpr bool valid() const { return value != 0; }
  friend constexpr auto operator<=>(TaggedId, TaggedId) = default;
};

}  // namespace detail

// A physical machine participating in (or hosting part of) a Legion system.
struct HostTag {};
using HostId = detail::TaggedId<HostTag, std::uint32_t>;

// A message destination registered with the runtime. Each *active* Legion
// object owns exactly one endpoint; endpoints die when objects deactivate.
struct EndpointTag {};
using EndpointId = detail::TaggedId<EndpointTag, std::uint64_t>;

// An autonomous resource partition (set of hosts + persistent storage).
struct JurisdictionTag {};
using JurisdictionId = detail::TaggedId<JurisdictionTag, std::uint32_t>;

// One unit of aggregate persistent storage inside a jurisdiction ("disk").
struct DiskTag {};
using DiskId = detail::TaggedId<DiskTag, std::uint32_t>;

// Virtual time, in microseconds, advanced by the simulation kernel. The
// thread kernel maps it onto the steady clock instead.
using SimTime = std::int64_t;
inline constexpr SimTime kSimTimeNever = INT64_MAX;

}  // namespace legion

namespace std {
template <typename Tag, typename Rep>
struct hash<legion::detail::TaggedId<Tag, Rep>> {
  size_t operator()(const legion::detail::TaggedId<Tag, Rep>& id) const noexcept {
    return std::hash<Rep>{}(id.value);
  }
};
}  // namespace std
