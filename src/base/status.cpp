#include "base/status.hpp"

namespace legion {

std::string_view to_string(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kStaleBinding: return "STALE_BINDING";
    case StatusCode::kTimeout: return "TIMEOUT";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kAborted: return "ABORTED";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kResourceExhausted: return "RESOURCE_EXHAUSTED";
    case StatusCode::kInternal: return "INTERNAL";
  }
  return "UNKNOWN";
}

std::string Status::to_string() const {
  std::string out{legion::to_string(code_)};
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

namespace {
Status Make(StatusCode code, std::string_view msg) {
  return Status{code, std::string{msg}};
}
}  // namespace

Status InvalidArgumentError(std::string_view msg) { return Make(StatusCode::kInvalidArgument, msg); }
Status NotFoundError(std::string_view msg) { return Make(StatusCode::kNotFound, msg); }
Status AlreadyExistsError(std::string_view msg) { return Make(StatusCode::kAlreadyExists, msg); }
Status PermissionDeniedError(std::string_view msg) { return Make(StatusCode::kPermissionDenied, msg); }
Status FailedPreconditionError(std::string_view msg) { return Make(StatusCode::kFailedPrecondition, msg); }
Status UnavailableError(std::string_view msg) { return Make(StatusCode::kUnavailable, msg); }
Status StaleBindingError(std::string_view msg) { return Make(StatusCode::kStaleBinding, msg); }
Status TimeoutError(std::string_view msg) { return Make(StatusCode::kTimeout, msg); }
Status UnimplementedError(std::string_view msg) { return Make(StatusCode::kUnimplemented, msg); }
Status AbortedError(std::string_view msg) { return Make(StatusCode::kAborted, msg); }
Status OutOfRangeError(std::string_view msg) { return Make(StatusCode::kOutOfRange, msg); }
Status ResourceExhaustedError(std::string_view msg) { return Make(StatusCode::kResourceExhausted, msg); }
Status InternalError(std::string_view msg) { return Make(StatusCode::kInternal, msg); }

}  // namespace legion
