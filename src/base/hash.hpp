// Small non-cryptographic hash helpers used for LOID hashing and for
// synthesizing deterministic "public keys" in tests and benchmarks.
#pragma once

#include <cstdint>
#include <string_view>

namespace legion {

// SplitMix64 finalizer: excellent avalanche for 64-bit integers.
constexpr std::uint64_t Mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t Fnv1a64(std::string_view s) {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 0x100000001B3ULL;
  }
  return h;
}

}  // namespace legion
