// Clang thread-safety-analysis attribute macros.
//
// These wrap Clang's `-Wthread-safety` capability attributes so guarded
// invariants are machine-checked at compile time instead of sampled by TSan
// at runtime. Under GCC (which has no capability analysis) every macro
// expands to nothing, so the annotated tree builds identically everywhere;
// the `thread-safety` CI job builds with clang and
// `-Wthread-safety -Werror=thread-safety` to enforce them.
//
// Usage conventions (see DESIGN.md "Concurrency discipline"):
//   - Every lock-bearing structure uses base::Mutex / base::SharedMutex
//     (see base/mutex.hpp), never raw std primitives — enforced by
//     scripts/lint_invariants.py.
//   - Every member a mutex protects carries GUARDED_BY(mutex) (or
//     PT_GUARDED_BY for the pointee of a pointer member).
//   - Private helpers that assume the lock is already held carry
//     REQUIRES(mutex) instead of re-locking.
//   - NO_THREAD_SAFETY_ANALYSIS is a last resort; each use needs a comment
//     explaining why the analysis cannot see the invariant.
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#if __has_attribute(capability)
#define LEGION_THREAD_ANNOTATION(x) __attribute__((x))
#endif
#endif
#ifndef LEGION_THREAD_ANNOTATION
#define LEGION_THREAD_ANNOTATION(x)  // no-op outside clang
#endif

// Type attribute: this class is a synchronization capability (a lock).
#define CAPABILITY(x) LEGION_THREAD_ANNOTATION(capability(x))

// Type attribute: RAII object that acquires a capability in its constructor
// and releases it in its destructor.
#define SCOPED_CAPABILITY LEGION_THREAD_ANNOTATION(scoped_lockable)

// Data members: reading/writing requires holding the named capability
// (shared suffices for reads, exclusive for writes).
#define GUARDED_BY(x) LEGION_THREAD_ANNOTATION(guarded_by(x))
#define PT_GUARDED_BY(x) LEGION_THREAD_ANNOTATION(pt_guarded_by(x))

// Functions: caller must already hold the capability.
#define REQUIRES(...) \
  LEGION_THREAD_ANNOTATION(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  LEGION_THREAD_ANNOTATION(requires_shared_capability(__VA_ARGS__))

// Functions: acquire/release the capability (lock()/unlock() style).
#define ACQUIRE(...) LEGION_THREAD_ANNOTATION(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  LEGION_THREAD_ANNOTATION(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) LEGION_THREAD_ANNOTATION(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  LEGION_THREAD_ANNOTATION(release_shared_capability(__VA_ARGS__))
#define TRY_ACQUIRE(...) \
  LEGION_THREAD_ANNOTATION(try_acquire_capability(__VA_ARGS__))

// Functions: caller must NOT hold the capability (deadlock prevention for
// APIs that lock internally).
#define EXCLUDES(...) LEGION_THREAD_ANNOTATION(locks_excluded(__VA_ARGS__))

// Declares lock-acquisition ordering to the analysis.
#define ACQUIRED_BEFORE(...) LEGION_THREAD_ANNOTATION(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) LEGION_THREAD_ANNOTATION(acquired_after(__VA_ARGS__))

// Functions: return a reference to a capability-protected value; the
// analysis maps lock expressions through the call.
#define RETURN_CAPABILITY(x) LEGION_THREAD_ANNOTATION(lock_returned(x))

// Escape hatch. Every use must carry a justification comment.
#define NO_THREAD_SAFETY_ANALYSIS \
  LEGION_THREAD_ANNOTATION(no_thread_safety_analysis)
