// Deterministic pseudo-random generation.
//
// Every stochastic choice in the simulator (latency jitter, placement,
// workload targets) draws from a seeded SplitMix64 stream so that tests and
// message-count benchmarks are exactly reproducible run to run.
#pragma once

#include <cassert>
#include <cstdint>

#include "base/hash.hpp"

namespace legion {

class Rng {
 public:
  static constexpr std::uint64_t kDefaultSeed = 0x4C4547494F4E2131ULL;  // "LEGION!1"

  explicit Rng(std::uint64_t seed = kDefaultSeed) : state_(seed) {}

  std::uint64_t next() {
    state_ += 0x9E3779B97F4A7C15ULL;
    return Mix64(state_);
  }

  // Uniform in [0, bound). bound must be nonzero.
  std::uint64_t below(std::uint64_t bound) {
    assert(bound != 0);
    // Multiply-shift mapping; bias is negligible for the bounds used here
    // (simulation choices, not cryptography).
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  // Uniform in [lo, hi] inclusive.
  std::int64_t between(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    below(static_cast<std::uint64_t>(hi - lo + 1)));
  }

  // Uniform double in [0, 1).
  double unit() { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

  bool chance(double p) { return unit() < p; }

  // Derive an independent stream (e.g. one per simulated host).
  [[nodiscard]] Rng fork(std::uint64_t salt) const {
    return Rng{Mix64(state_ ^ Mix64(salt))};
  }

 private:
  std::uint64_t state_;
};

}  // namespace legion
