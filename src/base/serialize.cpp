#include "base/serialize.hpp"

// Intentionally empty: templates live in the header. The TU anchors the
// library target.
