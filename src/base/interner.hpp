// Dense-id interning for the packed core tables.
//
// Interner<Key> assigns each distinct key a dense uint32_t id in insertion
// order (the fast-downward StateRegistry idea): long-lived references hold
// the 4-byte id, fat keys live exactly once in segmented storage, and every
// per-id payload becomes an array slot instead of a hash-map node. The index
// is open-addressing over a flat uint32_t slot array — probing touches ids,
// keys are only compared on a hash hit — so steady-state lookups and inserts
// perform no per-entry heap allocation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <vector>

#include "base/segmented_vector.hpp"

namespace legion {

template <typename Key, typename Hash = std::hash<Key>>
class Interner {
 public:
  // The reserved "no such key" id; real ids are 0 .. size()-1.
  static constexpr std::uint32_t kNoId = 0xFFFFFFFFu;

  // Returns the id of `key`, assigning the next dense id on first sight.
  std::uint32_t intern(const Key& key) {
    grow_if_needed();
    const std::size_t slot = probe(key);
    if (slots_[slot] != kNoId) return slots_[slot];
    const auto id = static_cast<std::uint32_t>(keys_.size());
    keys_.push_back(key);
    slots_[slot] = id;
    return id;
  }

  // Returns the id of `key`, or kNoId without interning (the read path).
  [[nodiscard]] std::uint32_t find(const Key& key) const {
    if (keys_.empty()) return kNoId;
    return slots_[probe(key)];
  }

  [[nodiscard]] const Key& key_of(std::uint32_t id) const { return keys_[id]; }
  [[nodiscard]] std::size_t size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }

  void clear() {
    keys_.clear();
    slots_.clear();
  }

  [[nodiscard]] std::size_t allocated_bytes() const {
    return keys_.allocated_bytes() + slots_.capacity() * sizeof(std::uint32_t);
  }

 private:
  // Linear probing; returns the slot holding `key`'s id or the empty slot
  // where it would be inserted. slots_ is always a non-full power of two
  // when called (grow_if_needed guarantees a free slot).
  [[nodiscard]] std::size_t probe(const Key& key) const {
    const std::size_t mask = slots_.size() - 1;
    std::size_t i = Hash{}(key)&mask;
    while (slots_[i] != kNoId && !(keys_[slots_[i]] == key)) {
      i = (i + 1) & mask;
    }
    return i;
  }

  void grow_if_needed() {
    if (slots_.empty()) {
      slots_.assign(kInitialSlots, kNoId);
      return;
    }
    // Rehash at 70% load: doubling keeps probe chains short and costs
    // O(log n) reallocations over a table's lifetime.
    if ((keys_.size() + 1) * 10 <= slots_.size() * 7) return;
    std::vector<std::uint32_t> old = std::move(slots_);
    slots_.assign(old.size() * 2, kNoId);
    const std::size_t mask = slots_.size() - 1;
    for (std::uint32_t id = 0; id < keys_.size(); ++id) {
      std::size_t i = Hash{}(keys_[id]) & mask;
      while (slots_[i] != kNoId) i = (i + 1) & mask;
      slots_[i] = id;
    }
  }

  static constexpr std::size_t kInitialSlots = 64;

  SegmentedVector<Key> keys_;
  std::vector<std::uint32_t> slots_;  // open addressing; kNoId == empty
};

}  // namespace legion
