// A byte buffer: the unit of everything marshalled in Legion.
//
// Object Persistent Representations (Section 3.1.1 of the paper) are "a
// sequential set of bytes"; method arguments, replies, and saved state all
// travel as Buffers between disjoint address spaces.
#pragma once

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace legion {

class Buffer {
 public:
  Buffer() = default;
  explicit Buffer(std::vector<std::uint8_t> bytes) : bytes_(std::move(bytes)) {}
  static Buffer FromString(std::string_view s) {
    return Buffer{std::vector<std::uint8_t>(s.begin(), s.end())};
  }

  [[nodiscard]] std::size_t size() const { return bytes_.size(); }
  [[nodiscard]] bool empty() const { return bytes_.empty(); }
  [[nodiscard]] const std::uint8_t* data() const { return bytes_.data(); }
  [[nodiscard]] std::uint8_t* data() { return bytes_.data(); }
  [[nodiscard]] std::span<const std::uint8_t> span() const { return bytes_; }

  void append(const void* src, std::size_t n) {
    const auto* p = static_cast<const std::uint8_t*>(src);
    bytes_.insert(bytes_.end(), p, p + n);
  }
  void append(std::span<const std::uint8_t> src) { append(src.data(), src.size()); }
  void clear() { bytes_.clear(); }
  void reserve(std::size_t n) { bytes_.reserve(n); }

  [[nodiscard]] std::string as_string() const {
    return std::string(bytes_.begin(), bytes_.end());
  }

  friend bool operator==(const Buffer& a, const Buffer& b) {
    return a.bytes_ == b.bytes_;
  }

 private:
  std::vector<std::uint8_t> bytes_;
};

}  // namespace legion
