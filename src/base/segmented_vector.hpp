// Segmented, packed storage for the dense-id core tables.
//
// SegmentedVector<T> is an append-only vector that stores elements in
// fixed-size heap segments (the fast-downward SegmentedArrayVector idea):
// growth allocates one segment at a time, never reallocates or moves
// existing elements, so references returned by operator[] stay valid for
// the life of the container. A table holding N rows performs O(N / K)
// allocations (K = elements per segment) instead of one per row, and the
// rows of one segment are contiguous in memory — the property the packed
// LogicalTable / BindingCache / ImplementationRegistry layouts rely on.
#pragma once

#include <algorithm>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace legion {

template <typename T>
class SegmentedVector {
 public:
  // Segments target ~16 KiB, rounded to a power of two element count so
  // index splitting is a shift/mask, not a division.
  static constexpr std::size_t kTargetSegmentBytes = std::size_t{1} << 14;
  static constexpr std::size_t kElementsPerSegment =
      std::bit_floor(std::max<std::size_t>(kTargetSegmentBytes / sizeof(T), 1));
  static constexpr std::size_t kSegmentShift =
      std::countr_zero(kElementsPerSegment);
  static constexpr std::size_t kSegmentMask = kElementsPerSegment - 1;

  SegmentedVector() = default;
  SegmentedVector(SegmentedVector&&) noexcept = default;
  SegmentedVector& operator=(SegmentedVector&&) noexcept = default;
  SegmentedVector(const SegmentedVector& other) { *this = other; }
  SegmentedVector& operator=(const SegmentedVector& other) {
    if (this == &other) return *this;
    clear();
    reserve_segments(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) {
      segments_[i >> kSegmentShift][i & kSegmentMask] = other[i];
    }
    size_ = other.size_;
    return *this;
  }

  [[nodiscard]] std::size_t size() const { return size_; }
  [[nodiscard]] bool empty() const { return size_ == 0; }

  [[nodiscard]] T& operator[](std::size_t i) {
    return segments_[i >> kSegmentShift][i & kSegmentMask];
  }
  [[nodiscard]] const T& operator[](std::size_t i) const {
    return segments_[i >> kSegmentShift][i & kSegmentMask];
  }

  void push_back(T value) {
    reserve_segments(size_ + 1);
    segments_[size_ >> kSegmentShift][size_ & kSegmentMask] = std::move(value);
    ++size_;
  }

  // Grows to `n` default-constructed elements (never shrinks): the tables
  // use this to keep one slot per interned id.
  void resize(std::size_t n) {
    if (n <= size_) return;
    reserve_segments(n);
    size_ = n;
  }

  void clear() {
    segments_.clear();
    size_ = 0;
  }

  // Allocation accounting for bench_memory_per_object: segments allocated
  // so far and the bytes they pin.
  [[nodiscard]] std::size_t segment_count() const { return segments_.size(); }
  [[nodiscard]] std::size_t allocated_bytes() const {
    return segments_.size() * kElementsPerSegment * sizeof(T);
  }

 private:
  // Ensures capacity for `n` elements. Segments are value-initialized on
  // allocation, so slots are usable the moment an id names them.
  void reserve_segments(std::size_t n) {
    const std::size_t needed = (n + kElementsPerSegment - 1) >> kSegmentShift;
    while (segments_.size() < needed) {
      segments_.push_back(std::make_unique<T[]>(kElementsPerSegment));
    }
  }

  std::vector<std::unique_ptr<T[]>> segments_;
  std::size_t size_ = 0;
};

}  // namespace legion
