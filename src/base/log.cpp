#include "base/log.hpp"

#include <atomic>
#include <cstdio>
#include <mutex>

namespace legion {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kNone)};
std::mutex g_mutex;

const char* Prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogLine(LogLevel level, const std::string& line) {
  if (static_cast<int>(GetLogLevel()) < static_cast<int>(level)) return;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[legion %s] %s\n", Prefix(level), line.c_str());
}

}  // namespace legion
