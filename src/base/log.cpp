#include "base/log.hpp"

#include <atomic>
#include <cstdio>

#include "base/mutex.hpp"

namespace legion {

namespace {
std::atomic<int> g_level{static_cast<int>(LogLevel::kNone)};
// Highest rank in the global order: any thread may log while holding any
// other lock, and the log sink acquires nothing beneath it.
base::Mutex g_mutex{base::lock_rank::kLog};

const char* Prefix(LogLevel level) {
  switch (level) {
    case LogLevel::kError: return "E";
    case LogLevel::kWarn: return "W";
    case LogLevel::kInfo: return "I";
    case LogLevel::kDebug: return "D";
    default: return "?";
  }
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level.store(static_cast<int>(level)); }
LogLevel GetLogLevel() { return static_cast<LogLevel>(g_level.load()); }

void LogLine(LogLevel level, const std::string& line) {
  if (static_cast<int>(GetLogLevel()) < static_cast<int>(level)) return;
  base::MutexLock lock(g_mutex);
  std::fprintf(stderr, "[legion %s] %s\n", Prefix(level), line.c_str());
}

}  // namespace legion
