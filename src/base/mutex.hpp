// Annotated synchronization primitives.
//
// base::Mutex / base::SharedMutex / base::CondVar wrap the std primitives
// with Clang capability annotations (base/thread_annotations.hpp) so that
// every guarded member and every "caller must hold the lock" helper is
// checked at compile time under -Wthread-safety. All lock-bearing code in
// src/ uses these wrappers; raw std::mutex et al. outside base/ is a lint
// error (scripts/lint_invariants.py rule no-raw-std-sync).
//
// Lock ranks: with -DLEGION_LOCK_RANK_CHECKS=ON every ranked mutex also
// participates in a runtime acquisition-order check — a thread may only
// acquire a ranked mutex whose rank is strictly greater than every ranked
// mutex it already holds. Ranks encode the global order documented in the
// DESIGN.md lock-order table; violations abort with a diagnostic (even in
// NDEBUG builds, so the check works under the RelWithDebInfo presets).
// Unranked mutexes (the default) are leaf-local and skip the check.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <shared_mutex>

#include "base/thread_annotations.hpp"

namespace legion::base {

// The global acquisition order (see DESIGN.md "Concurrency discipline").
// A thread holding a mutex of rank R may only acquire ranks > R. Gaps are
// deliberate so future locks can slot in without renumbering.
namespace lock_rank {
inline constexpr int kUnranked = -1;
// rt: EpollRuntime's per-host listener map — resolved before the endpoint
// map is touched on create_endpoint, hence ranked above(-before) it.
inline constexpr int kListeners = 12;
// rt: EpollRuntime worker-pool accounting (blocked counts, spare spawning).
// Always taken with nothing held (wait() marks itself blocked before
// locking its endpoint).
inline constexpr int kWorkerPool = 14;
// rt: the runtime's endpoint map is held (shared) while per-endpoint
// mutexes are taken beneath it (run_until_idle, stats sweeps).
inline constexpr int kEndpointMap = 16;
// rt: ProcessRuntime's child-process table — consulted on post() beneath
// the endpoint map (unknown dst may be a child), and taken by the reaper
// with nothing held (bounce delivery reacquires the map afterwards).
inline constexpr int kProcChildren = 18;
// rt: per-endpoint inbox/cv state, then tcp per-endpoint connection set.
inline constexpr int kEndpoint = 20;
// rt: EpollRuntime scheduler run queues (injector + per-worker deques).
// Below kEndpoint so an endpoint can be scheduled while its mailbox lock
// decides the state transition.
inline constexpr int kScheduler = 22;
inline constexpr int kEndpointConns = 24;
// rt: EpollRuntime reactor control queue (socket registrations handed to
// the reactor thread alongside an eventfd kick).
inline constexpr int kReactorControl = 26;
// rt: tcp per-destination connection pool (taken with no endpoint lock).
inline constexpr int kTcpPool = 28;
// rt: ThreadRuntime joined-thread graveyard.
inline constexpr int kGraveyard = 32;
// rt/core: fault-injection rng draws (leaf under the runtime's send path).
inline constexpr int kRng = 36;
// net: fault-plan sets, consulted beneath the rng lock on the send path.
inline constexpr int kFaultPlan = 38;
// core: resolver singleflight table, then an individual flight.
inline constexpr int kFlights = 40;
inline constexpr int kFlight = 44;
// core: binding cache (acquires the metrics registry beneath it).
inline constexpr int kBindingCache = 50;
// rt: messenger pending-call table, then a future's state (invoke() fulfils
// promises while holding the pending table).
inline constexpr int kPending = 60;
inline constexpr int kFutureState = 64;
// obs: metrics registry, trace ring (leaf-most shared services).
inline constexpr int kMetricsRegistry = 90;
inline constexpr int kTraceRing = 94;
// base: the log-line serialization mutex. Any thread may log while holding
// anything, so this is the maximum rank; the log sink acquires nothing.
inline constexpr int kLog = 100;
}  // namespace lock_rank

#ifdef LEGION_LOCK_RANK_CHECKS
namespace lock_rank_detail {
// Per-thread stack of held ranked locks. Fixed capacity: a thread holding
// more than 16 ranked mutexes at once is itself an ordering bug.
struct HeldLocks {
  int ranks[16];
  int depth = 0;
};
inline thread_local HeldLocks tl_held;

// Independent of NDEBUG: the rank checker must fire under the
// RelWithDebInfo presets the CI jobs build with.
[[noreturn]] inline void rank_fail(const char* what, int rank, int held) {
  std::fprintf(stderr,
               "lock-rank violation: %s rank %d while holding rank %d "
               "(see DESIGN.md lock-order table)\n",
               what, rank, held);
  std::abort();
}

inline void note_acquire(int rank) {
  if (rank == lock_rank::kUnranked) return;
  HeldLocks& h = tl_held;
  if (h.depth >= 16) rank_fail("stack overflow acquiring", rank, -1);
  for (int i = 0; i < h.depth; ++i) {
    if (h.ranks[i] >= rank) rank_fail("acquiring", rank, h.ranks[i]);
  }
  h.ranks[h.depth++] = rank;
}

inline void note_release(int rank) {
  if (rank == lock_rank::kUnranked) return;
  HeldLocks& h = tl_held;
  for (int i = h.depth - 1; i >= 0; --i) {
    if (h.ranks[i] == rank) {
      for (int j = i; j + 1 < h.depth; ++j) h.ranks[j] = h.ranks[j + 1];
      --h.depth;
      return;
    }
  }
  rank_fail("releasing un-held", rank, -1);
}
}  // namespace lock_rank_detail
#define LEGION_LOCK_RANK_ACQUIRE(rank) ::legion::base::lock_rank_detail::note_acquire(rank)
#define LEGION_LOCK_RANK_RELEASE(rank) ::legion::base::lock_rank_detail::note_release(rank)
#define LEGION_LOCK_RANK_SET(rank) (rank_ = (rank))
#else
#define LEGION_LOCK_RANK_ACQUIRE(rank) ((void)0)
#define LEGION_LOCK_RANK_RELEASE(rank) ((void)0)
#define LEGION_LOCK_RANK_SET(rank) ((void)0)
#endif

class CondVar;

class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  explicit Mutex(int rank) { (void)rank; LEGION_LOCK_RANK_SET(rank); }

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void lock() ACQUIRE() {
    m_.lock();
    LEGION_LOCK_RANK_ACQUIRE(rank_value());
  }
  void unlock() RELEASE() {
    LEGION_LOCK_RANK_RELEASE(rank_value());
    m_.unlock();
  }
  bool try_lock() TRY_ACQUIRE(true) {
    if (!m_.try_lock()) return false;
    LEGION_LOCK_RANK_ACQUIRE(rank_value());
    return true;
  }

 private:
  friend class CondVar;
  std::mutex m_;
#ifdef LEGION_LOCK_RANK_CHECKS
  int rank_ = lock_rank::kUnranked;
  int rank_value() const { return rank_; }
#else
  static constexpr int rank_value() { return lock_rank::kUnranked; }
#endif
};

class CAPABILITY("shared_mutex") SharedMutex {
 public:
  SharedMutex() = default;
  explicit SharedMutex(int rank) { (void)rank; LEGION_LOCK_RANK_SET(rank); }

  SharedMutex(const SharedMutex&) = delete;
  SharedMutex& operator=(const SharedMutex&) = delete;

  void lock() ACQUIRE() {
    m_.lock();
    LEGION_LOCK_RANK_ACQUIRE(rank_value());
  }
  void unlock() RELEASE() {
    LEGION_LOCK_RANK_RELEASE(rank_value());
    m_.unlock();
  }
  void lock_shared() ACQUIRE_SHARED() {
    m_.lock_shared();
    LEGION_LOCK_RANK_ACQUIRE(rank_value());
  }
  void unlock_shared() RELEASE_SHARED() {
    LEGION_LOCK_RANK_RELEASE(rank_value());
    m_.unlock_shared();
  }

 private:
  std::shared_mutex m_;
#ifdef LEGION_LOCK_RANK_CHECKS
  int rank_ = lock_rank::kUnranked;
  int rank_value() const { return rank_; }
#else
  static constexpr int rank_value() { return lock_rank::kUnranked; }
#endif
};

// RAII exclusive lock on a Mutex.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.lock(); }
  ~MutexLock() RELEASE() { mu_.unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

// RAII exclusive lock on a SharedMutex.
class SCOPED_CAPABILITY WriterMutexLock {
 public:
  explicit WriterMutexLock(SharedMutex& mu) ACQUIRE(mu) : mu_(mu) {
    mu_.lock();
  }
  ~WriterMutexLock() RELEASE() { mu_.unlock(); }

  WriterMutexLock(const WriterMutexLock&) = delete;
  WriterMutexLock& operator=(const WriterMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// RAII shared (reader) lock on a SharedMutex.
class SCOPED_CAPABILITY ReaderMutexLock {
 public:
  explicit ReaderMutexLock(SharedMutex& mu) ACQUIRE_SHARED(mu) : mu_(mu) {
    mu_.lock_shared();
  }
  // Scoped destructors use the generic release form: it matches however the
  // constructor acquired (clang pairs RELEASE() with ACQUIRE_SHARED here).
  ~ReaderMutexLock() RELEASE() { mu_.unlock_shared(); }

  ReaderMutexLock(const ReaderMutexLock&) = delete;
  ReaderMutexLock& operator=(const ReaderMutexLock&) = delete;

 private:
  SharedMutex& mu_;
};

// Condition variable bound to base::Mutex. Implemented on
// std::condition_variable (not _any) via adopt/release, so it keeps the
// native futex fast path. No predicate overloads on purpose: callers write
// the wait loop in the function that holds the lock, where the analysis can
// see every guarded read the predicate makes (lambdas passed into a wait()
// would be analyzed as unannotated functions and rejected).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  // Atomically releases `mu` and blocks; re-acquires before returning.
  // Spurious wakeups happen: always wait in a predicate loop.
  void wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  // Returns true iff the wait timed out (the deadline passed without a
  // matching notify); the lock is re-acquired either way.
  template <class Clock, class Duration>
  bool wait_until(Mutex& mu,
                  const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    const bool timed_out =
        cv_.wait_until(lk, deadline) == std::cv_status::timeout;
    lk.release();
    return timed_out;
  }

  template <class Rep, class Period>
  bool wait_for(Mutex& mu, const std::chrono::duration<Rep, Period>& rel)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.m_, std::adopt_lock);
    const bool timed_out = cv_.wait_for(lk, rel) == std::cv_status::timeout;
    lk.release();
    return timed_out;
  }

  void notify_one() { cv_.notify_one(); }
  void notify_all() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace legion::base
