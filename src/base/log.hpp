// Minimal leveled logger.
//
// Silent by default (benchmarks print tables, tests must stay clean); raise
// the level for debugging. Thread-safe: a single mutex serializes lines from
// the ThreadRuntime's many object threads.
#pragma once

#include <sstream>
#include <string>

namespace legion {

enum class LogLevel : int { kNone = 0, kError = 1, kWarn = 2, kInfo = 3, kDebug = 4 };

void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();
void LogLine(LogLevel level, const std::string& line);

namespace detail {
class LogStream {
 public:
  explicit LogStream(LogLevel level) : level_(level) {}
  ~LogStream() { LogLine(level_, stream_.str()); }
  template <typename T>
  LogStream& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};
}  // namespace detail

#define LEGION_LOG(level)                                      \
  if (static_cast<int>(::legion::GetLogLevel()) >=             \
      static_cast<int>(::legion::LogLevel::level))             \
  ::legion::detail::LogStream(::legion::LogLevel::level)

}  // namespace legion
