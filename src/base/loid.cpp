#include "base/loid.hpp"

#include <array>
#include <cstdio>

#include "base/hash.hpp"

namespace legion {

std::string Loid::to_string() const {
  std::array<char, 64> head{};
  const int n = std::snprintf(head.data(), head.size(), "L%llu.%llu",
                              static_cast<unsigned long long>(class_id_),
                              static_cast<unsigned long long>(class_specific_));
  std::string out(head.data(), static_cast<std::size_t>(n));
  if (!public_key_.empty()) {
    out += ':';
    static constexpr char kHex[] = "0123456789abcdef";
    for (std::uint8_t b : public_key_) {
      out += kHex[b >> 4];
      out += kHex[b & 0xF];
    }
  }
  return out;
}

std::size_t LoidHash::operator()(const Loid& l) const noexcept {
  // Identity bits only, consistent with operator==.
  return static_cast<std::size_t>(
      Mix64(l.class_id() * 0x9E3779B97F4A7C15ULL ^ l.class_specific()));
}

}  // namespace legion
