#include "naming/context.hpp"

#include "core/active_object.hpp"
#include "core/wire.hpp"

namespace legion::naming {

using core::ObjectContext;
using core::wire::LoidReply;
using core::wire::StringRequest;

namespace {
struct BindRequest {
  std::string name;
  Loid loid;

  [[nodiscard]] Buffer to_buffer() const {
    Buffer out;
    Writer w(out);
    w.str(name);
    loid.Serialize(w);
    return out;
  }
  static BindRequest Deserialize(Reader& r) {
    BindRequest b;
    b.name = r.str();
    b.loid = Loid::Deserialize(r);
    return b;
  }
};

bool ValidName(const std::string& name) {
  return !name.empty() && name.find('/') == std::string::npos;
}
}  // namespace

void ContextImpl::RegisterMethods(core::MethodTable& table) {
  table.add(methods::kBind, [this](ObjectContext&, Reader& args) -> Result<Buffer> {
    auto req = BindRequest::Deserialize(args);
    if (!args.ok()) return InvalidArgumentError("bad Bind args");
    if (!ValidName(req.name)) {
      return InvalidArgumentError("names must be non-empty and '/'-free");
    }
    if (!req.loid.valid()) return InvalidArgumentError("nil LOID");
    entries_[req.name] = req.loid;
    return Buffer{};
  });
  table.add(methods::kUnbind,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              const std::string name = args.str();
              if (!args.ok()) return InvalidArgumentError("bad Unbind args");
              if (entries_.erase(name) == 0) {
                return NotFoundError("no binding for name: " + name);
              }
              return Buffer{};
            });
  table.add(methods::kLookup,
            [this](ObjectContext&, Reader& args) -> Result<Buffer> {
              const std::string name = args.str();
              if (!args.ok()) return InvalidArgumentError("bad Lookup args");
              auto it = entries_.find(name);
              if (it == entries_.end()) {
                return NotFoundError("no binding for name: " + name);
              }
              return LoidReply{it->second}.to_buffer();
            });
  table.add(methods::kList, [this](ObjectContext&, Reader&) -> Result<Buffer> {
    Buffer out;
    Writer w(out);
    w.u32(static_cast<std::uint32_t>(entries_.size()));
    for (const auto& [name, loid] : entries_) {
      NameEntry{name, loid}.Serialize(w);
    }
    return out;
  });
}

void ContextImpl::SaveState(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(entries_.size()));
  for (const auto& [name, loid] : entries_) {
    NameEntry{name, loid}.Serialize(w);
  }
}

Status ContextImpl::RestoreState(Reader& r) {
  if (r.exhausted()) return OkStatus();
  const std::uint32_t n = r.u32();
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    NameEntry e = NameEntry::Deserialize(r);
    entries_[e.name] = e.loid;
  }
  return r.ok() ? OkStatus() : InvalidArgumentError("bad context state");
}

core::InterfaceDescription ContextImpl::interface() const {
  core::InterfaceDescription d("LegionContext");
  d.add_method(core::MethodSignature{"void", std::string(methods::kBind),
                                     {{"string", "name"}, {"loid", "target"}}});
  d.add_method(core::MethodSignature{"void", std::string(methods::kUnbind),
                                     {{"string", "name"}}});
  d.add_method(core::MethodSignature{"loid", std::string(methods::kLookup),
                                     {{"string", "name"}}});
  d.add_method(core::MethodSignature{"entries", std::string(methods::kList), {}});
  return d;
}

Status RegisterNamingImpls(core::ImplementationRegistry& registry) {
  return registry.add(std::string(kContextImpl),
                      [] { return std::make_unique<ContextImpl>(); });
}

Result<Loid> CreateContext(core::Client& client) {
  LEGION_ASSIGN_OR_RETURN(core::wire::CreateReply reply,
                          client.create(core::LegionContextLoid()));
  return reply.loid;
}

Status Bind(core::Client& client, const Loid& context, const std::string& name,
            const Loid& loid) {
  return client.ref(context)
      .call(methods::kBind, BindRequest{name, loid}.to_buffer())
      .status();
}

Status Unbind(core::Client& client, const Loid& context,
              const std::string& name) {
  Buffer args;
  Writer w(args);
  w.str(name);
  return client.ref(context).call(methods::kUnbind, std::move(args)).status();
}

Result<Loid> Lookup(core::Client& client, const Loid& context,
                    const std::string& name) {
  Buffer args;
  Writer w(args);
  w.str(name);
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          client.ref(context).call(methods::kLookup,
                                                   std::move(args)));
  LEGION_ASSIGN_OR_RETURN(LoidReply reply, LoidReply::from_buffer(raw));
  return reply.loid;
}

Result<std::vector<NameEntry>> List(core::Client& client, const Loid& context) {
  LEGION_ASSIGN_OR_RETURN(Buffer raw,
                          client.ref(context).call(methods::kList, Buffer{}));
  Reader r(raw);
  const std::uint32_t n = r.u32();
  std::vector<NameEntry> out;
  for (std::uint32_t i = 0; i < n && r.ok(); ++i) {
    out.push_back(NameEntry::Deserialize(r));
  }
  if (!r.ok()) return InvalidArgumentError("bad List reply");
  return out;
}

namespace {
std::vector<std::string> SplitPath(const std::string& path) {
  std::vector<std::string> parts;
  std::size_t start = 0;
  while (start <= path.size()) {
    const std::size_t end = path.find('/', start);
    const std::string part =
        path.substr(start, end == std::string::npos ? end : end - start);
    if (!part.empty()) parts.push_back(part);
    if (end == std::string::npos) break;
    start = end + 1;
  }
  return parts;
}
}  // namespace

Result<Loid> ResolvePath(core::Client& client, const Loid& root,
                         const std::string& path) {
  const auto parts = SplitPath(path);
  if (parts.empty()) return root;
  Loid current = root;
  for (const std::string& part : parts) {
    LEGION_ASSIGN_OR_RETURN(current, Lookup(client, current, part));
  }
  return current;
}

Status BindPath(core::Client& client, const Loid& root, const std::string& path,
                const Loid& loid) {
  const auto parts = SplitPath(path);
  if (parts.empty()) return InvalidArgumentError("empty path");
  Loid current = root;
  for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
    auto next = Lookup(client, current, parts[i]);
    if (!next.ok()) {
      if (next.status().code() != StatusCode::kNotFound) return next.status();
      LEGION_ASSIGN_OR_RETURN(Loid fresh, CreateContext(client));
      LEGION_RETURN_IF_ERROR(Bind(client, current, parts[i], fresh));
      current = fresh;
    } else {
      current = *next;
    }
  }
  return Bind(client, current, parts.back(), loid);
}

}  // namespace legion::naming
