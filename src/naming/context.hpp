// The single persistent name space (paper Sections 1 and 4.1).
//
// "A single persistent name space unites the objects in the Legion system."
// "The compiler uses the context to map string names to LOID's, which then
//  become embedded within Legion executable programs."
//
// Contexts are themselves Legion objects (instances of the core
// LegionContext class): they persist, migrate, and secure themselves like
// anything else. A context maps simple names to LOIDs; hierarchical paths
// ("home/data/results") resolve by walking subcontext objects.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "core/object_impl.hpp"
#include "core/system.hpp"

namespace legion::naming {

inline constexpr std::string_view kContextImpl = "legion.context";

// Wire methods exported by context objects.
namespace methods {
inline constexpr std::string_view kBind = "Bind";
inline constexpr std::string_view kUnbind = "Unbind";
inline constexpr std::string_view kLookup = "Lookup";
inline constexpr std::string_view kList = "List";
}  // namespace methods

struct NameEntry {
  std::string name;
  Loid loid;

  void Serialize(Writer& w) const {
    w.str(name);
    loid.Serialize(w);
  }
  static NameEntry Deserialize(Reader& r) {
    NameEntry e;
    e.name = r.str();
    e.loid = Loid::Deserialize(r);
    return e;
  }
};

class ContextImpl final : public core::ObjectImpl {
 public:
  [[nodiscard]] std::string implementation_name() const override {
    return std::string(kContextImpl);
  }
  void RegisterMethods(core::MethodTable& table) override;
  void SaveState(Writer& w) const override;
  Status RestoreState(Reader& r) override;
  [[nodiscard]] core::InterfaceDescription interface() const override;

 private:
  std::map<std::string, Loid> entries_;
};

// Registers the context implementation; call once per system before
// creating contexts.
Status RegisterNamingImpls(core::ImplementationRegistry& registry);

// --- Client-side helpers ------------------------------------------------

// Creates a fresh, empty context object.
Result<Loid> CreateContext(core::Client& client);

// Binds `name` (a single path component) to `loid` in `context`.
Status Bind(core::Client& client, const Loid& context, const std::string& name,
            const Loid& loid);
Status Unbind(core::Client& client, const Loid& context,
              const std::string& name);

// Looks up a single component.
Result<Loid> Lookup(core::Client& client, const Loid& context,
                    const std::string& name);

// Lists the entries of one context.
Result<std::vector<NameEntry>> List(core::Client& client, const Loid& context);

// Resolves a '/'-separated path by walking subcontexts from `root`.
Result<Loid> ResolvePath(core::Client& client, const Loid& root,
                         const std::string& path);

// Creates intermediate contexts as needed and binds the final component —
// like `mkdir -p` plus `ln`.
Status BindPath(core::Client& client, const Loid& root, const std::string& path,
                const Loid& loid);

}  // namespace legion::naming
