#include "net/topology.hpp"

#include <algorithm>

namespace legion::net {

std::string_view to_string(LatencyClass c) {
  switch (c) {
    case LatencyClass::kSameHost: return "same-host";
    case LatencyClass::kIntraJurisdiction: return "intra-jurisdiction";
    case LatencyClass::kCrossJurisdiction: return "cross-jurisdiction";
  }
  return "unknown";
}

JurisdictionId Topology::add_jurisdiction(std::string name) {
  const JurisdictionId id{static_cast<std::uint32_t>(jurisdictions_.size() + 1)};
  jurisdictions_.push_back(JurisdictionInfo{id, std::move(name)});
  return id;
}

HostId Topology::add_host(std::string name,
                          std::vector<JurisdictionId> jurisdictions,
                          double capacity) {
  const HostId id{static_cast<std::uint32_t>(hosts_.size() + 1)};
  hosts_.push_back(HostInfo{id, std::move(name), std::move(jurisdictions),
                            capacity});
  return id;
}

const HostInfo* Topology::host(HostId id) const {
  if (!id.valid() || id.value > hosts_.size()) return nullptr;
  return &hosts_[id.value - 1];
}

const JurisdictionInfo* Topology::jurisdiction(JurisdictionId id) const {
  if (!id.valid() || id.value > jurisdictions_.size()) return nullptr;
  return &jurisdictions_[id.value - 1];
}

std::vector<HostId> Topology::hosts_in(JurisdictionId id) const {
  std::vector<HostId> out;
  for (const auto& h : hosts_) {
    if (std::find(h.jurisdictions.begin(), h.jurisdictions.end(), id) !=
        h.jurisdictions.end()) {
      out.push_back(h.id);
    }
  }
  return out;
}

bool Topology::share_jurisdiction(HostId a, HostId b) const {
  const HostInfo* ha = host(a);
  const HostInfo* hb = host(b);
  if (ha == nullptr || hb == nullptr) return false;
  for (JurisdictionId ja : ha->jurisdictions) {
    if (std::find(hb->jurisdictions.begin(), hb->jurisdictions.end(), ja) !=
        hb->jurisdictions.end()) {
      return true;
    }
  }
  return false;
}

LatencyClass Topology::classify(HostId a, HostId b) const {
  if (a == b) return LatencyClass::kSameHost;
  if (share_jurisdiction(a, b)) return LatencyClass::kIntraJurisdiction;
  return LatencyClass::kCrossJurisdiction;
}

SimTime Topology::sample_latency(HostId a, HostId b, Rng& rng,
                                 std::size_t bytes) const {
  SimTime mean = 0;
  double bytes_per_us = 0.0;
  switch (classify(a, b)) {
    case LatencyClass::kSameHost:
      mean = profile_.same_host_us;
      bytes_per_us = profile_.same_host_bytes_per_us;
      break;
    case LatencyClass::kIntraJurisdiction:
      mean = profile_.intra_jurisdiction_us;
      bytes_per_us = profile_.intra_bytes_per_us;
      break;
    case LatencyClass::kCrossJurisdiction:
      mean = profile_.cross_jurisdiction_us;
      bytes_per_us = profile_.cross_bytes_per_us;
      break;
  }
  SimTime total = mean;
  if (bytes > 0 && bytes_per_us > 0.0) {
    total += static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_us);
  }
  if (profile_.jitter > 0.0) {
    const double scale = 1.0 + profile_.jitter * (2.0 * rng.unit() - 1.0);
    total = static_cast<SimTime>(static_cast<double>(total) * scale);
  }
  return total > 1 ? total : 1;
}

}  // namespace legion::net
