// Simulated wide-area topology.
//
// Hosts are grouped into jurisdictions (paper Section 2.2; membership may be
// non-disjoint). The latency model has three classes — same host, intra-
// jurisdiction, cross-jurisdiction — because Section 5's locality argument
// ("most accesses will be local") is about exactly this distinction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "base/rng.hpp"
#include "base/status.hpp"
#include "base/types.hpp"

namespace legion::net {

enum class LatencyClass : std::uint8_t {
  kSameHost = 0,
  kIntraJurisdiction = 1,
  kCrossJurisdiction = 2,
};
inline constexpr std::size_t kNumLatencyClasses = 3;

[[nodiscard]] std::string_view to_string(LatencyClass c);

// Mean one-way delivery latencies (virtual microseconds) plus a relative
// jitter fraction applied uniformly in [1-jitter, 1+jitter], plus per-class
// throughput so that large transfers (OPR migration, Section 3.8) cost what
// they should on mid-90s links.
struct LatencyProfile {
  SimTime same_host_us = 20;
  SimTime intra_jurisdiction_us = 500;      // campus LAN
  SimTime cross_jurisdiction_us = 40'000;   // mid-90s wide area
  double jitter = 0.10;
  // Bytes per virtual microsecond (0 = infinite bandwidth).
  double same_host_bytes_per_us = 1000.0;   // memory-speed loopback
  double intra_bytes_per_us = 1.25;         // 10 Mb/s Ethernet
  double cross_bytes_per_us = 0.5;          // shared T3-era wide area
};

struct HostInfo {
  HostId id;
  std::string name;
  std::vector<JurisdictionId> jurisdictions;
  // Relative compute capacity; Host Objects report load against this.
  double capacity = 1.0;
};

struct JurisdictionInfo {
  JurisdictionId id;
  std::string name;
};

class Topology {
 public:
  JurisdictionId add_jurisdiction(std::string name);
  HostId add_host(std::string name, std::vector<JurisdictionId> jurisdictions,
                  double capacity = 1.0);

  [[nodiscard]] const HostInfo* host(HostId id) const;
  [[nodiscard]] const JurisdictionInfo* jurisdiction(JurisdictionId id) const;
  [[nodiscard]] const std::vector<HostInfo>& hosts() const { return hosts_; }
  [[nodiscard]] const std::vector<JurisdictionInfo>& jurisdictions() const {
    return jurisdictions_;
  }
  [[nodiscard]] std::vector<HostId> hosts_in(JurisdictionId id) const;

  [[nodiscard]] bool share_jurisdiction(HostId a, HostId b) const;
  [[nodiscard]] LatencyClass classify(HostId a, HostId b) const;

  void set_latency_profile(LatencyProfile profile) { profile_ = profile; }
  [[nodiscard]] const LatencyProfile& latency_profile() const { return profile_; }

  // One-way delivery latency sample for a `bytes`-sized message a -> b:
  // propagation (with jitter) plus serialization at the class bandwidth.
  [[nodiscard]] SimTime sample_latency(HostId a, HostId b, Rng& rng,
                                       std::size_t bytes = 0) const;

 private:
  std::vector<HostInfo> hosts_;
  std::vector<JurisdictionInfo> jurisdictions_;
  LatencyProfile profile_;
};

}  // namespace legion::net
