#include "net/address.hpp"

#include <cassert>
#include <cstdio>

namespace legion::net {

void NetworkAddress::put_u64(std::size_t offset, std::uint64_t v) {
  for (std::size_t i = 0; i < 8; ++i) {
    payload_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
std::uint64_t NetworkAddress::get_u64(std::size_t offset) const {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(payload_[offset + i]) << (8 * i);
  }
  return v;
}
void NetworkAddress::put_u32(std::size_t offset, std::uint32_t v) {
  for (std::size_t i = 0; i < 4; ++i) {
    payload_[offset + i] = static_cast<std::uint8_t>(v >> (8 * i));
  }
}
std::uint32_t NetworkAddress::get_u32(std::size_t offset) const {
  std::uint32_t v = 0;
  for (std::size_t i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(payload_[offset + i]) << (8 * i);
  }
  return v;
}
void NetworkAddress::put_u16(std::size_t offset, std::uint16_t v) {
  payload_[offset] = static_cast<std::uint8_t>(v);
  payload_[offset + 1] = static_cast<std::uint8_t>(v >> 8);
}
std::uint16_t NetworkAddress::get_u16(std::size_t offset) const {
  return static_cast<std::uint16_t>(payload_[offset] |
                                    (payload_[offset + 1] << 8));
}

NetworkAddress NetworkAddress::Sim(EndpointId endpoint) {
  NetworkAddress a;
  a.type_ = AddressType::kSim;
  a.put_u64(0, endpoint.value);
  return a;
}

NetworkAddress NetworkAddress::IpV4(std::uint32_t ip, std::uint16_t port,
                                    std::uint32_t node) {
  // Paper layout: "For a normal IP address, 48 of the 256 bits will be
  // utilized: 32 bits for the IP address, and 16 bits for a port number. On
  // multiprocessors, a 32 bit platform-specific internal node number may be
  // used."
  NetworkAddress a;
  a.type_ = AddressType::kIpV4;
  a.put_u32(0, ip);
  a.put_u16(4, port);
  a.put_u32(6, node);
  return a;
}

EndpointId NetworkAddress::sim_endpoint() const {
  assert(type_ == AddressType::kSim);
  return EndpointId{get_u64(0)};
}
std::uint32_t NetworkAddress::ipv4_address() const {
  assert(type_ == AddressType::kIpV4);
  return get_u32(0);
}
std::uint16_t NetworkAddress::ipv4_port() const {
  assert(type_ == AddressType::kIpV4);
  return get_u16(4);
}
std::uint32_t NetworkAddress::ipv4_node() const {
  assert(type_ == AddressType::kIpV4);
  return get_u32(6);
}

std::string NetworkAddress::to_string() const {
  char buf[64];
  switch (type_) {
    case AddressType::kInvalid:
      return "invalid";
    case AddressType::kSim:
      std::snprintf(buf, sizeof buf, "sim:%llu",
                    static_cast<unsigned long long>(get_u64(0)));
      return buf;
    case AddressType::kIpV4: {
      const std::uint32_t ip = ipv4_address();
      std::snprintf(buf, sizeof buf, "ip:%u.%u.%u.%u:%u/%u", (ip >> 24) & 0xFF,
                    (ip >> 16) & 0xFF, (ip >> 8) & 0xFF, ip & 0xFF,
                    ipv4_port(), ipv4_node());
      return buf;
    }
  }
  return "unknown";
}

void NetworkAddress::Serialize(Writer& w) const {
  w.u32(static_cast<std::uint32_t>(type_));
  w.bytes(std::span<const std::uint8_t>(payload_.data(), payload_.size()));
}

NetworkAddress NetworkAddress::Deserialize(Reader& r) {
  NetworkAddress a;
  a.type_ = static_cast<AddressType>(r.u32());
  auto raw = r.bytes();
  if (raw.size() == kPayloadBytes) {
    std::copy(raw.begin(), raw.end(), a.payload_.begin());
  } else {
    a.type_ = AddressType::kInvalid;
  }
  return a;
}

}  // namespace legion::net
