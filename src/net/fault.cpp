#include "net/fault.hpp"

// Header-only; TU anchors the target.
