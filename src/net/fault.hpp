// Fault injection for the simulated network.
//
// Supports per-latency-class message drop probabilities, pairwise host
// partitions, and whole-host outages. The runtime consults the plan at
// delivery time, so faults interact naturally with in-flight messages —
// which is how stale bindings (paper Section 4.1.4) arise in practice.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>

#include "base/rng.hpp"
#include "base/types.hpp"
#include "net/topology.hpp"

namespace legion::net {

class FaultPlan {
 public:
  void set_drop_probability(LatencyClass c, double p) {
    drop_p_[static_cast<std::size_t>(c)] = p;
  }
  [[nodiscard]] double drop_probability(LatencyClass c) const {
    return drop_p_[static_cast<std::size_t>(c)];
  }

  void partition(HostId a, HostId b) { partitions_.insert(key(a, b)); }
  void heal(HostId a, HostId b) { partitions_.erase(key(a, b)); }
  [[nodiscard]] bool partitioned(HostId a, HostId b) const {
    return partitions_.contains(key(a, b));
  }

  void take_host_down(HostId h) { down_.insert(h.value); }
  void bring_host_up(HostId h) { down_.erase(h.value); }
  [[nodiscard]] bool host_down(HostId h) const { return down_.contains(h.value); }

  // True if a message from a to b (class c) should be silently dropped.
  [[nodiscard]] bool should_drop(HostId a, HostId b, LatencyClass c,
                                 Rng& rng) const {
    if (host_down(a) || host_down(b) || partitioned(a, b)) return true;
    const double p = drop_probability(c);
    return p > 0.0 && rng.chance(p);
  }

  [[nodiscard]] bool any_faults() const {
    if (!partitions_.empty() || !down_.empty()) return true;
    for (double p : drop_p_) {
      if (p > 0.0) return true;
    }
    return false;
  }

 private:
  static std::uint64_t key(HostId a, HostId b) {
    const std::uint64_t lo = a.value < b.value ? a.value : b.value;
    const std::uint64_t hi = a.value < b.value ? b.value : a.value;
    return (hi << 32) | lo;
  }

  std::array<double, kNumLatencyClasses> drop_p_{};
  std::unordered_set<std::uint64_t> partitions_;
  std::unordered_set<std::uint32_t> down_;
};

}  // namespace legion::net
